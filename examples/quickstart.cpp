// Quickstart: bring up a 4-node CANELy bus, form a membership view, watch
// a crash being detected and agreed on.
//
//   $ ./examples/quickstart
//
// Everything runs inside the deterministic CAN simulator at 1 Mbps — no
// hardware required.  The flow mirrors the paper's Figure 5: the upper
// layer joins, gets the view, and receives membership-change
// notifications with the sets of active and failed nodes.

#include <iostream>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace canely;

  sim::Engine engine;
  can::Bus bus{engine};  // single CAN channel, 1 Mbps

  Params params;
  params.n = 4;
  params.heartbeat_period = sim::Time::ms(10);   // Th
  params.membership_cycle = sim::Time::ms(30);   // Tm

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }

  // Subscribe to membership changes on node 0 (msh-can.nty).
  nodes[0]->on_membership_change([&](can::NodeSet active,
                                     can::NodeSet failed) {
    std::cout << "[" << engine.now() << "] node 0 notified: active=" << active;
    if (!failed.empty()) std::cout << " failed=" << failed;
    std::cout << "\n";
  });

  // Everyone asks to join (msh-can.req JOIN).
  std::cout << "--- all nodes join\n";
  for (auto& n : nodes) n->join();
  engine.run_until(sim::Time::ms(300));
  std::cout << "view at node 0: " << nodes[0]->view() << "\n";
  std::cout << "view at node 3: " << nodes[3]->view() << "\n";

  // Application traffic doubles as heartbeat (can-data.nty, §6.3).
  nodes[1]->start_periodic(/*stream=*/1, sim::Time::ms(5), {0xCA, 0xFE});

  // Crash node 2; the failure detector + FDA agree on the failure and the
  // membership protocol folds it into the next view.
  std::cout << "--- node 2 crashes at t=" << engine.now() << "\n";
  nodes[2]->crash();
  engine.run_until(engine.now() + sim::Time::ms(100));

  std::cout << "final view at node 0: " << nodes[0]->view() << "\n";
  std::cout << "final view at node 1: " << nodes[1]->view() << "\n";
  std::cout << "final view at node 3: " << nodes[3]->view() << "\n";
  std::cout << "bus: " << bus.stats().ok << " frames ok, "
            << bus.stats().bits_total << " bit-times on the wire\n";

  const bool consistent = nodes[0]->view() == (can::NodeSet{0, 1, 3}) &&
                          nodes[1]->view() == nodes[0]->view() &&
                          nodes[3]->view() == nodes[0]->view();
  std::cout << (consistent ? "SUCCESS: views are consistent\n"
                           : "FAILURE: views diverged\n");
  return consistent ? 0 : 1;
}
