// What does the FDA's eager failure-sign diffusion actually buy?  An
// ablation study driven by the checker (src/check), end to end:
//
//   1. With FDA agreement ON, exhaustive single-fault enumeration over
//      the n=8 membership scenario comes back clean: every frame x
//      victim-subset x sender-crash placement is tolerated.
//   2. With FDA agreement OFF, the same search finds a membership-
//      agreement counterexample: an inconsistently-omitted life-sign
//      plus an inconsistently-omitted failure-sign (both senders
//      crashing, §6.1's inconsistent message omission) make survivors
//      disagree on the view history.
//   3. The counterexample is shrunk to a locally minimal reproducer,
//      written to a JSON artifact, loaded back, and replayed — same
//      monitor, same wire trace, deterministically.
//
//   $ ./examples/check_ablation
//
// Exits non-zero if any of those steps fails to behave as described.

#include <cstdio>
#include <iostream>
#include <string>

#include "check/artifact.hpp"
#include "check/explore.hpp"
#include "check/shrink.hpp"

int main() {
  using namespace canely;

  // --- 1. FDA on: exhaustive single-fault enumeration is clean ---------
  check::ExploreConfig on_cfg;
  on_cfg.scenario = check::ScenarioConfig::membership(8, /*fda_on=*/true);
  on_cfg.depth = 1;
  on_cfg.threads = 0;  // hardware concurrency
  const check::ExploreResult on = check::explore(on_cfg);
  std::cout << "FDA on:  " << on.placements << " single-fault placements, "
            << on.violations.size() << " violations\n";
  if (!on.violations.empty()) {
    std::cerr << "FAIL: FDA-on single-fault exploration should be clean\n";
    return 1;
  }

  // --- 2. FDA off: the targeted search finds a counterexample ----------
  check::ExploreConfig off_cfg = on_cfg;
  off_cfg.scenario = check::ScenarioConfig::membership(8, /*fda_on=*/false);
  off_cfg.depth = 2;
  const check::ExploreResult off = check::explore(off_cfg);
  std::cout << "FDA off: " << off.placements << " placements, "
            << off.violations.size() << " violations\n";
  if (off.violations.empty()) {
    std::cerr << "FAIL: ablated exploration should find a violation\n";
    return 1;
  }
  const check::FoundViolation& found = off.violations.front();
  std::cout << "  [" << found.violation.monitor << "] "
            << found.violation.detail << "\n";

  // --- 3. Shrink, persist, replay --------------------------------------
  const check::ShrinkResult shrunk =
      check::shrink(off_cfg.scenario, found.script, found.violation.monitor);
  std::cout << "shrunk to " << shrunk.script.size() << " fault events ("
            << (shrunk.locally_minimal ? "locally minimal" : "NOT minimal")
            << ")\n";
  if (shrunk.script.size() > 3 || !shrunk.locally_minimal) {
    std::cerr << "FAIL: expected a locally minimal script of <= 3 events\n";
    return 1;
  }

  check::Artifact artifact;
  artifact.scenario = off_cfg.scenario;
  artifact.script = shrunk.script;
  artifact.monitor = shrunk.violation.monitor;
  artifact.trace_hash =
      check::run_checked(off_cfg.scenario, shrunk.script).trace_hash;
  artifact.violation = shrunk.violation;

  const std::string path = "check_ablation_counterexample.json";
  check::write_artifact(path, artifact);
  const check::Artifact loaded = check::load_artifact(path);
  std::remove(path.c_str());

  const check::RunResult replayed =
      check::run_checked(loaded.scenario, loaded.script);
  bool reproduced = false;
  for (const check::Violation& v : replayed.violations) {
    if (v.monitor == loaded.monitor) reproduced = true;
  }
  if (!reproduced || replayed.trace_hash != loaded.trace_hash) {
    std::cerr << "FAIL: replayed artifact did not reproduce the violation\n";
    return 1;
  }
  std::cout << "replayed: [" << loaded.monitor << "] reproduced, trace hash "
            << std::hex << replayed.trace_hash << std::dec << " matches\n";

  // The very same fault script is harmless with the FDA back on — the
  // eager diffusion closes exactly this window.
  const check::RunResult repaired =
      check::run_checked(on_cfg.scenario, loaded.script);
  for (const check::Violation& v : repaired.violations) {
    if (v.monitor == loaded.monitor) {
      std::cerr << "FAIL: script should be harmless with FDA enabled\n";
      return 1;
    }
  }
  std::cout << "same script with FDA on: consistent (ablation isolated)\n";
  return 0;
}
