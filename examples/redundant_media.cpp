// Media redundancy demo ([17]): a medium partition that would split a
// single-medium bus into two mutually-suspicious islands is fully masked
// by the "Columbus' egg" replicated-media scheme.
//
//   $ ./examples/redundant_media

#include <iostream>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "media/redundancy.hpp"
#include "sim/engine.hpp"

namespace {

/// Run one scenario and report whether the 6-node view survived a
/// partition of medium 0 between nodes {0,1,2} and {3,4,5}.
bool run(std::size_t media_count) {
  using namespace canely;
  sim::Engine engine;
  can::Bus bus{engine};
  Params params;
  params.n = 6;

  media::MediaSet media{media_count};
  media::RedundantMedia msu{media};
  bus.set_reception_filter(&msu);

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 6; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }
  for (auto& n : nodes) n->join();
  engine.run_until(sim::Time::ms(400));

  std::cout << "  formed view: " << nodes[0]->view() << "\n";
  std::cout << "  cutting medium 0 between {0,1,2} and {3,4,5}...\n";
  media.partition_medium(0, can::NodeSet{0, 1, 2});
  engine.run_until(engine.now() + sim::Time::sec(1));

  const can::NodeSet full = can::NodeSet::first_n(6);
  bool consistent = true;
  for (auto& n : nodes) {
    if (n->view() != full) consistent = false;
  }
  std::cout << "  after 1 s: view at node 0 = " << nodes[0]->view()
            << ", node 5 = " << nodes[5]->view() << "\n";
  std::cout << "  frames lost to the partition: " << msu.total_losses()
            << "\n";
  if (media_count > 1) {
    std::cout << "  medium 0 quarantined at node 3: "
              << (msu.quarantined(3, 0) ? "yes" : "no (no disagreement seen)")
              << "\n";
  }
  return consistent;
}

}  // namespace

int main() {
  std::cout << "=== single medium (the failure mode §4 must assume away) ===\n";
  const bool single = run(1);
  std::cout << (single ? "  view survived (!?)\n"
                       : "  view broke apart, as expected without redundancy\n");

  std::cout << "\n=== dual media (Columbus' egg scheme of [17]) ===\n";
  const bool dual = run(2);
  std::cout << (dual ? "  SUCCESS: partition fully masked\n"
                     : "  FAILURE: view broke despite redundancy\n");

  return (!single && dual) ? 0 : 1;
}
