// Inaccessibility in action ([22], MCAN4): an EMI burst makes the bus
// useless-but-operational for a bounded period; the failure detector must
// ride it out without false suspicions — provided Ttd was budgeted from
// the analysis.  This example computes the budget with the bundled
// response-time analysis and inaccessibility model, then injects a burst
// of exactly that size.
//
//   $ ./examples/inaccessibility_demo

#include <iostream>
#include <memory>
#include <vector>

#include "analysis/inaccessibility.hpp"
#include "analysis/response_time.hpp"
#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace canely;

  // --- 1. budget Ttd analytically -------------------------------------
  // Message set: 4 cyclic application streams + the protocol frames.
  std::vector<analysis::MessageSpec> set;
  for (int i = 0; i < 4; ++i) {
    set.push_back({"app" + std::to_string(i),
                   static_cast<std::uint32_t>(0x10000 + i), 8,
                   can::IdFormat::kExtended, false, sim::Time::ms(5),
                   sim::Time::zero(), sim::Time::zero()});
  }
  analysis::ResponseTimeAnalysis rta{set, 1'000'000,
                                     analysis::ErrorHypothesis{
                                         2, sim::Time::ms(10)}};
  const auto ttd_normal = rta.worst_response();
  analysis::InaccessibilityModel ina{};
  const auto tina = sim::bits_to_time(
      static_cast<std::int64_t>(ina.tina_bits(5)), 1'000'000);
  std::cout << "response-time analysis: worst R = "
            << ttd_normal.value() << ", utilization "
            << rta.utilization() * 100 << "%\n";
  std::cout << "inaccessibility budget (burst of 5): " << tina << "\n";
  const sim::Time ttd = ttd_normal.value() + tina + sim::Time::ms(1);
  std::cout << "=> Ttd = Ttd_normal + Tina = " << ttd << "\n\n";

  // --- 2. run the system under a burst of exactly that size ------------
  sim::Engine engine;
  can::Bus bus{engine};
  Params params;
  params.n = 4;
  params.tx_delay_bound = ttd;

  // MCAN3 bounds the burst by *count* (k omissions in Trd), not by a time
  // window: inject exactly 5 consecutive destroyed transmissions, errors
  // hitting at the end of each frame (the worst case the model charges).
  can::ScriptedFaults burst;
  sim::Time burst_from = sim::Time::max();
  burst.add(
      [&burst_from](const can::TxContext& ctx) {
        return ctx.start >= burst_from;
      },
      can::Verdict::global_error(), /*shots=*/5);
  bus.set_fault_injector(&burst);

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 4; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }
  int false_failures = 0;
  for (auto& n : nodes) {
    n->on_membership_change([&](can::NodeSet, can::NodeSet failed) {
      if (!failed.empty()) ++false_failures;
    });
    n->join();
  }
  engine.run_until(sim::Time::ms(400));
  for (auto& n : nodes) {
    n->start_periodic(1, sim::Time::ms(5), {0xEE});
  }
  engine.run_until(sim::Time::ms(500));
  std::cout << "view formed: " << nodes[0]->view() << "\n";

  const sim::Time t0 = engine.now();
  burst_from = t0;
  std::cout << "EMI burst: next 5 transmissions destroyed (worst-case "
            << "inaccessibility " << tina << ") starting at " << t0 << "\n";
  engine.run_until(t0 + sim::Time::ms(100));

  std::cout << "after the burst: view = " << nodes[0]->view()
            << ", false failure notifications = " << false_failures << "\n";
  std::cout << "bus error frames during the run: " << bus.stats().errors
            << "\n";

  const bool ok =
      false_failures == 0 && nodes[0]->view() == can::NodeSet::first_n(4);
  std::cout << (ok ? "SUCCESS: inaccessibility ridden out, no false alarms\n"
                   : "FAILURE: burst caused false suspicions\n");
  return ok ? 0 : 1;
}
