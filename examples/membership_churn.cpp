// Membership under churn and faults: joins, leaves, crashes, and random
// bus errors — all while the views stay consistent and the protocol's
// bandwidth appetite stays modest (the property Figure 10 quantifies).
//
//   $ ./examples/membership_churn

#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

int main() {
  using namespace canely;

  sim::Engine engine;
  can::Bus bus{engine};
  Params params;
  params.n = 12;
  params.tx_delay_bound = sim::Time::ms(3);

  // Random global errors + inconsistent omissions on ~2% of frames.
  can::RandomFaults faults{sim::Rng{2026}, 0.01, 0.01};
  bus.set_fault_injector(&faults);

  // Classify protocol traffic on the wire.
  std::map<MsgType, std::uint64_t> bits_by_type;
  bus.set_observer([&](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value()) bits_by_type[mid->type] += r.bits;
  });

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 12; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }

  auto print_views = [&](const char* label) {
    std::cout << std::setw(28) << label << "  view=" << nodes[0]->view()
              << "\n";
  };

  // Phase 1: 6 founding members.
  for (int i = 0; i < 6; ++i) nodes[static_cast<std::size_t>(i)]->join();
  engine.run_until(sim::Time::ms(400));
  print_views("after founding join");

  // Half the members generate cyclic traffic (implicit heartbeats).
  for (int i = 0; i < 3; ++i) {
    nodes[static_cast<std::size_t>(i)]->start_periodic(
        1, sim::Time::ms(6), {static_cast<std::uint8_t>(i)});
  }

  // Phase 2: late joiners trickle in while node 4 leaves.
  nodes[6]->join();
  nodes[7]->join();
  nodes[4]->leave();
  engine.run_until(engine.now() + sim::Time::ms(300));
  print_views("after churn #1");

  // Phase 3: two crashes in the same cycle + more joiners.
  nodes[1]->crash();
  nodes[5]->crash();
  nodes[8]->join();
  nodes[9]->join();
  nodes[10]->join();
  engine.run_until(engine.now() + sim::Time::ms(400));
  print_views("after crashes + joins");

  // Verify every live participant agrees.
  const can::NodeSet expect{0, 2, 3, 6, 7, 8, 9, 10};
  bool ok = true;
  for (can::NodeId id : expect) {
    if (nodes[id]->view() != expect) {
      std::cout << "  !! node " << int{id} << " disagrees: "
                << nodes[id]->view() << "\n";
      ok = false;
    }
  }

  // Bandwidth ledger.
  const double total_bits =
      engine.now().to_us_f();  // 1 Mbps: 1 bit-time == 1 us
  std::cout << "\nprotocol bandwidth over " << engine.now().to_ms()
            << " ms (1 Mbps bus):\n";
  for (const auto& [type, bits] : bits_by_type) {
    std::cout << "  " << std::setw(10) << to_string(type) << "  "
              << std::setw(8) << bits << " bit-times  ("
              << std::fixed << std::setprecision(2)
              << 100.0 * static_cast<double>(bits) / total_bits << "% of bus)\n";
  }
  std::cout << "bus errors seen: " << bus.stats().errors
            << " global, " << bus.stats().inconsistent << " inconsistent\n";
  std::cout << (ok ? "SUCCESS: all views consistent under churn and faults\n"
                   : "FAILURE: views diverged\n");
  return ok ? 0 : 1;
}
