// Process groups over site membership — the composition the paper calls
// "a crucial assistant for process group membership management" (§6).
//
// A 6-node system hosts two overlapping process groups: "sensors" and
// "control".  Group views follow announcements AND the site membership:
// when a node crashes, every group it belonged to shrinks consistently
// everywhere, with no group-level agreement traffic at all.
//
//   $ ./examples/process_groups

#include <iostream>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"

namespace {
constexpr canely::GroupId kSensors = 1;
constexpr canely::GroupId kControl = 2;
}  // namespace

int main() {
  using namespace canely;

  sim::Engine engine;
  can::Bus bus{engine};
  Params params;
  params.n = 6;

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 6; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }
  for (auto& n : nodes) n->join();
  engine.run_until(sim::Time::ms(300));
  std::cout << "site membership: " << nodes[0]->view() << "\n";

  // Nodes 0-3 host sensor processes; nodes 2-5 host control processes.
  for (can::NodeId id = 0; id <= 3; ++id) nodes[id]->join_group(kSensors);
  for (can::NodeId id = 2; id <= 5; ++id) nodes[id]->join_group(kControl);
  engine.run_until(engine.now() + sim::Time::ms(20));

  std::cout << "sensors group: " << nodes[5]->group_view(kSensors) << "\n";
  std::cout << "control group: " << nodes[0]->group_view(kControl) << "\n";

  // Watch group changes from node 5's perspective.
  nodes[5]->on_group_change([&](GroupId g, can::NodeSet members) {
    std::cout << "[" << engine.now() << "] node 5 sees group "
              << int{g} << " -> " << members << "\n";
  });

  // Node 2 belongs to BOTH groups; crash it.
  std::cout << "--- node 2 (in both groups) crashes\n";
  nodes[2]->crash();
  engine.run_until(engine.now() + sim::Time::ms(100));

  std::cout << "sensors group now: " << nodes[5]->group_view(kSensors)
            << "\n";
  std::cout << "control group now: " << nodes[0]->group_view(kControl)
            << "\n";

  // Node 3 withdraws its sensor process only — site membership unchanged.
  std::cout << "--- node 3 leaves the sensors group (stays a site member)\n";
  nodes[3]->leave_group(kSensors);
  engine.run_until(engine.now() + sim::Time::ms(20));
  std::cout << "sensors group now: " << nodes[5]->group_view(kSensors)
            << "\n";
  std::cout << "site membership:   " << nodes[5]->view() << "\n";

  const bool ok =
      nodes[5]->group_view(kSensors) == (can::NodeSet{0, 1}) &&
      nodes[0]->group_view(kControl) == (can::NodeSet{3, 4, 5}) &&
      nodes[5]->view() == (can::NodeSet{0, 1, 3, 4, 5});
  std::cout << (ok ? "SUCCESS: group views tracked site + announcements\n"
                   : "FAILURE: group views inconsistent\n");
  return ok ? 0 : 1;
}
