// Distributed control with failover — the application class the paper's
// introduction motivates: "distributed critical control applications".
//
// Topology: 2 sensor nodes stream measurements cyclically; 2 controller
// nodes (primary + hot standby) compute an actuation command; 1 actuator
// node applies whichever command comes from the controller it believes
// is primary.  "Primary" is defined purely by the CANELy membership view:
// the lowest-numbered controller in the view.  When the primary crashes,
// the consistent membership change promotes the standby at every node in
// the same instant — no ad-hoc election traffic.
//
//   $ ./examples/distributed_control

#include <iostream>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"

namespace {

constexpr canely::can::NodeId kSensorA = 0;
constexpr canely::can::NodeId kSensorB = 1;
constexpr canely::can::NodeId kCtrlPrimary = 2;
constexpr canely::can::NodeId kCtrlStandby = 3;
constexpr canely::can::NodeId kActuator = 4;

constexpr std::uint8_t kStreamMeasurement = 1;
constexpr std::uint8_t kStreamCommand = 2;

}  // namespace

int main() {
  using namespace canely;

  sim::Engine engine;
  can::Bus bus{engine};
  Params params;
  params.n = 5;

  std::vector<std::unique_ptr<Node>> nodes;
  for (can::NodeId id = 0; id < 5; ++id) {
    nodes.push_back(std::make_unique<Node>(bus, id, params));
  }

  // --- controllers: consume measurements, the acting primary commands ---
  struct ControllerState {
    int last_measurement{0};
    int commands_sent{0};
  };
  ControllerState ctrl[2];

  for (int k = 0; k < 2; ++k) {
    Node& me = *nodes[k == 0 ? kCtrlPrimary : kCtrlStandby];
    ControllerState& st = ctrl[k];
    me.on_message([&me, &st](can::NodeId /*from*/, std::uint8_t stream,
                             std::span<const std::uint8_t> data, bool own) {
      if (own || stream != kStreamMeasurement || data.empty()) return;
      st.last_measurement = data[0];
      // Only the primary (lowest controller in the view) actuates.
      const auto view = me.view();
      const bool primary =
          view.contains(me.id()) &&
          (!view.contains(kCtrlPrimary) || me.id() == kCtrlPrimary);
      if (primary) {
        const std::uint8_t cmd[] = {
            static_cast<std::uint8_t>(255 - st.last_measurement)};
        me.send(kStreamCommand, cmd);
        ++st.commands_sent;
      }
    });
  }

  // --- actuator: applies commands, tracks who commanded ---
  int applied = 0;
  can::NodeId last_commander = 255;
  nodes[kActuator]->on_message(
      [&](can::NodeId from, std::uint8_t stream,
          std::span<const std::uint8_t> data, bool own) {
        if (own || stream != kStreamCommand || data.empty()) return;
        ++applied;
        last_commander = from;
      });

  // --- bring the system up ---
  for (auto& n : nodes) n->join();
  engine.run_until(sim::Time::ms(300));
  std::cout << "membership: " << nodes[kActuator]->view() << "\n";

  // Sensors stream every 4 ms (< Th: zero explicit life-signs needed).
  nodes[kSensorA]->start_periodic(kStreamMeasurement, sim::Time::ms(4), {42});
  nodes[kSensorB]->start_periodic(kStreamMeasurement, sim::Time::ms(4), {99});

  engine.run_until(engine.now() + sim::Time::ms(200));
  std::cout << "after 200 ms: actuator applied " << applied
            << " commands, last from node " << int{last_commander} << "\n";
  const int applied_before = applied;
  if (last_commander != kCtrlPrimary) {
    std::cout << "FAILURE: primary controller was not in command\n";
    return 1;
  }

  // --- kill the primary mid-operation ---
  std::cout << "--- primary controller (node " << int{kCtrlPrimary}
            << ") crashes at " << engine.now() << "\n";
  nodes[kCtrlPrimary]->crash();
  engine.run_until(engine.now() + sim::Time::ms(200));

  std::cout << "membership now: " << nodes[kActuator]->view() << "\n";
  std::cout << "actuator applied " << applied - applied_before
            << " further commands, last from node " << int{last_commander}
            << "\n";

  const bool ok = last_commander == kCtrlStandby &&
                  applied > applied_before + 20 &&
                  nodes[kActuator]->view() ==
                      (can::NodeSet{kSensorA, kSensorB, kCtrlStandby,
                                    kActuator});
  std::cout << (ok ? "SUCCESS: standby took over seamlessly\n"
                   : "FAILURE: failover did not complete\n");
  std::cout << "explicit life-signs sent by sensor A: "
            << nodes[kSensorA]->fd().els_sent()
            << " (its 4 ms cyclic traffic is the heartbeat)\n";
  return ok ? 0 : 1;
}
