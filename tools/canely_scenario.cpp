// canely_scenario — run a membership scenario script (see
// src/scenario/scenario.hpp for the DSL) and report expectations.
//
//   $ ./tools/canely_scenario scenarios/crash_detection.scn
//
// Exit status: 0 when every expectation held, 1 otherwise.

#include <cstring>
#include <iostream>

#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  bool trace = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0 ||
        std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::cerr << "usage: canely_scenario [-t] <script.scn>\n"
              << "  -t   dump every bus frame (candump-style)\n";
    return 2;
  }
  canely::scenario::FrameTrace sink;
  if (trace) {
    sink = [](const std::string& line) { std::cout << line << "\n"; };
  }
  const auto report = canely::scenario::run_script_file(path, sink);
  if (!report.parse_error.empty()) {
    std::cerr << "error: " << report.parse_error << "\n";
    return 2;
  }
  for (const auto& e : report.expectations) {
    std::cout << (e.passed ? "  PASS  " : "  FAIL  ") << e.description;
    if (!e.passed && !e.detail.empty()) std::cout << "  (" << e.detail << ")";
    std::cout << "\n";
  }
  std::cout << "bus: " << report.frames_ok << " frames ok, "
            << report.frames_error << " destroyed, " << report.bits_total
            << " bit-times over " << report.duration.to_ms() << " ms\n";
  std::cout << (report.ok ? "OK\n" : "FAILED\n");
  return report.ok ? 0 : 1;
}
