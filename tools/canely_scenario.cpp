// canely_scenario — run a membership scenario script (see
// src/scenario/scenario.hpp for the DSL) and report expectations.
//
//   $ ./tools/canely_scenario scenarios/crash_detection.scn
//   $ ./tools/canely_scenario --trace-out=trace.json scenarios/crash.scn
//
// Exit status: 0 when every expectation held, 1 otherwise.

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/perfetto.hpp"
#include "obs/recorder.hpp"
#include "scenario/scenario.hpp"

int main(int argc, char** argv) {
  bool trace = false;
  std::string trace_out;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-t") == 0 ||
        std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      path = argv[i];
    }
  }
  if (path == nullptr) {
    std::cerr << "usage: canely_scenario [-t] [--trace-out=<file>] "
                 "<script.scn>\n"
              << "  -t                  dump every bus frame "
                 "(candump-style)\n"
              << "  --trace-out=<file>  write a Chrome trace_event JSON "
                 "(Perfetto-loadable)\n";
    return 2;
  }
  canely::scenario::RunOptions options;
  if (trace) {
    options.trace = [](const std::string& line) {
      std::cout << line << "\n";
    };
  }
  std::unique_ptr<canely::obs::Recorder> recorder;
  if (!trace_out.empty()) {
    recorder = std::make_unique<canely::obs::Recorder>();
    options.recorder = recorder.get();
  }
  const auto report = canely::scenario::run_script_file(path, options);
  if (!report.parse_error.empty()) {
    std::cerr << "error: " << report.parse_error << "\n";
    return 2;
  }
  for (const auto& e : report.expectations) {
    std::cout << (e.passed ? "  PASS  " : "  FAIL  ") << e.description;
    if (!e.passed && !e.detail.empty()) std::cout << "  (" << e.detail << ")";
    std::cout << "\n";
  }
  std::cout << "bus: " << report.frames_ok << " frames ok, "
            << report.frames_error << " destroyed, " << report.bits_total
            << " bit-times over " << report.duration.to_ms() << " ms\n";
  if (recorder != nullptr) {
    const auto events = canely::obs::build_trace_events(recorder->ring());
    const auto check = canely::obs::validate_trace_events(events);
    if (!check.ok) {
      std::cerr << "trace validation failed: " << check.error << "\n";
      return 2;
    }
    std::ofstream out{trace_out};
    if (!out) {
      std::cerr << "error: cannot write " << trace_out << "\n";
      return 2;
    }
    out << canely::obs::render_trace_json(events, &recorder->metrics(),
                                          recorder->ring());
    std::cout << "trace: " << recorder->ring().size() << " events ("
              << recorder->ring().dropped() << " dropped) -> " << trace_out
              << "\n";
  }
  std::cout << (report.ok ? "OK\n" : "FAILED\n");
  return report.ok ? 0 : 1;
}
