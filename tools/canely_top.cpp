// canely_top — live status for sharded exploration campaigns.
//
// Tails one or many canely-telemetry-1 JSONL files (one per shard,
// written by `check_explorer --telemetry` or any obs::Telemetry user)
// plus the frontier checkpoints they advertise, and renders per-shard
// progress, placements/s, dedup %, prefix-cache hit %, dropped-line
// counts and an ETA.  All parsing and reduction lives in
// src/check/telemetry_view.hpp; this file owns only the loop, the clock
// and the screen.
//
//   canely_top telemetry0.jsonl telemetry1.jsonl      # live, 1s refresh
//   canely_top --once --json telemetry.jsonl          # scripting / CI
//
// Exit codes: 0 = ok (with --once: status rendered), 2 = usage/IO error.
// Live mode tolerates files that are briefly unreadable (mid-create):
// the shard shows as "waiting" and the loop keeps going.

#include <chrono>
#include <exception>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "check/telemetry_view.hpp"

namespace {

using namespace canely;

void usage(std::ostream& os) {
  os << "usage: canely_top [options] FILE...\n"
        "  FILE                canely-telemetry-1 JSONL file(s), one per "
        "shard\n"
        "  --once              render one status block and exit\n"
        "  --json              machine-readable output (implies stable "
        "bytes\n"
        "                      for identical inputs)\n"
        "  --refresh MS        live refresh period (default 1000)\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool json = false;
  std::uint64_t refresh_ms = 1000;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--refresh") {
      if (i + 1 >= argc) {
        std::cerr << "--refresh needs a value\n";
        return 2;
      }
      refresh_ms = std::stoull(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "canely_top: no telemetry files given\n";
    usage(std::cerr);
    return 2;
  }

  for (;;) {
    std::vector<check::ShardStatus> shards;
    std::vector<std::string> waiting;
    for (const std::string& file : files) {
      try {
        shards.push_back(check::load_shard_status(file));
      } catch (const std::exception& e) {
        if (once) {
          std::cerr << "canely_top: " << e.what() << "\n";
          return 2;
        }
        waiting.push_back(file);
      }
    }

    if (json) {
      std::cout << check::status_json(shards).dump(once ? 0 : 2) << "\n";
    } else {
      if (!once) std::cout << "\033[2J\033[H";  // clear, home
      std::cout << check::render_status_text(shards);
      for (const std::string& file : waiting) {
        std::cout << "waiting for " << file << "\n";
      }
      std::cout.flush();
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds{refresh_ms});
  }
}
