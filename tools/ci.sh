#!/usr/bin/env bash
# CI driver: the checks a change must pass before merging.
#
#   tools/ci.sh            run every stage
#   tools/ci.sh tier1      strict build (CANELY_WERROR=ON) + full ctest
#   tools/ci.sh asan       AddressSanitizer + UBSan build, full ctest
#   tools/ci.sh ubsan      UBSan-only build (catches UB that ASan's
#                          shadow memory hides or alters), full ctest
#   tools/ci.sh tsan       ThreadSanitizer build, campaign-runner tests
#                          (the only code that spawns threads) + benches
#                          at --threads 4
#   tools/ci.sh perf       Release build, full perf_core run; regression
#                          guard against the committed BENCH_core.json:
#                          any cell slower than (1 - CANELY_PERF_TOLERANCE,
#                          default 0.30) x baseline fails the stage
#   tools/ci.sh check      Release build of the checker (src/check);
#                          check_explorer --quick must come back clean and
#                          byte-identical across thread counts
#   tools/ci.sh shootout   Release build of bench/membership_shootout;
#                          the --quick grid (4 protocols x n=8,32) must
#                          converge on every cell, emit a structurally
#                          valid trajectory, and be byte-identical across
#                          thread counts
#   tools/ci.sh lint       build canely_lint and run it over src/, tests/,
#                          bench/ and examples/ (zero unsuppressed findings
#                          required; see DESIGN.md §10), then run-clang-tidy
#                          against the exported compile database when
#                          clang-tidy is installed
#
# Each stage uses its own build tree under build-ci/ so the stages never
# poison each other's CMake caches or object files.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

configure_build_test() {
  local dir="$1" ctest_args="$2"
  shift 2
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && eval ctest --output-on-failure -j "$JOBS" "$ctest_args")
}

stage_tier1() {
  echo "=== tier1: -Werror build + full test suite ==="
  configure_build_test build-ci/tier1 ""
}

stage_asan() {
  echo "=== asan: AddressSanitizer + UBSan, full test suite ==="
  configure_build_test build-ci/asan "" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
}

stage_tsan() {
  echo "=== tsan: ThreadSanitizer over the campaign thread pool ==="
  local dir=build-ci/tsan
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" >/dev/null
  # Only the campaign runner spawns threads; build and exercise exactly
  # the targets that drive its pool, rather than the whole (serial) suite.
  cmake --build "$dir" -j "$JOBS" --target \
    test_campaign fault_campaign fig10_bandwidth \
    ablation_heartbeat ablation_cycle_skip ablation_fda
  "$dir/tests/test_campaign"
  for bench in fault_campaign fig10_bandwidth ablation_heartbeat \
               ablation_cycle_skip ablation_fda; do
    echo "--- tsan: $bench --threads 4 ---"
    "$dir/bench/$bench" --threads 4 --no-json >/dev/null
  done
}

stage_ubsan() {
  echo "=== ubsan: UndefinedBehaviorSanitizer alone, full test suite ==="
  configure_build_test build-ci/ubsan "" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all"
}

stage_perf() {
  echo "=== perf: Release perf_core vs committed BENCH_core.json ==="
  local dir=build-ci/perf
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target perf_core
  local json=build-ci/perf/BENCH_fresh.json
  (cd "$dir" && ./bench/perf_core --json BENCH_fresh.json)
  # Structural validation + regression guard: every expected cell must be
  # present with a positive rate, and no cell may fall more than
  # CANELY_PERF_TOLERANCE (default 30%) below the committed baseline.
  # Absolute numbers are machine-dependent; the tolerance absorbs normal
  # scheduling noise while catching order-of-magnitude regressions.
  CANELY_PERF_TOLERANCE="${CANELY_PERF_TOLERANCE:-0.30}" \
    python3 - "$json" "$ROOT/BENCH_core.json" <<'EOF'
import json, os, sys

def rates(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == "perf_core", doc.get("bench")
    cells = {}
    for cell in doc["cells"]:
        p = cell["params"]
        key = p["scenario"]
        if "nodes" in p:
            key += ":%d" % p["nodes"]
        if "obs" in p:
            key += ":obs%d" % p["obs"]
        if "tel" in p:
            key += ":tel%d" % p["tel"]
        (metric,) = cell["metrics"].values()
        # Best-of rate: on a shared host the max over reps is the least
        # noise-contaminated estimate of the true speed (same estimator
        # the bench uses for the trace-overhead comparison).
        cells[key] = metric["max"]
    return cells

fresh, baseline = rates(sys.argv[1]), rates(sys.argv[2])
tolerance = float(os.environ["CANELY_PERF_TOLERANCE"])

expected = ["engine_churn", "engine_fifo", "bus_load:8", "bus_load:32",
            "bus_load:64", "membership_cycle:8", "lint_full_tree",
            "net_medium:64", "swim_steady:128", "trace_overhead:obs0",
            "trace_overhead:obs1", "check_explore:8",
            "check_explore_naive:8", "telemetry_overhead:tel0",
            "telemetry_overhead:tel1"]
missing = [k for k in expected if k not in fresh]
assert not missing, f"missing cells: {missing}"
bad = {k: v for k, v in fresh.items() if not v > 0}
assert not bad, f"non-positive rates: {bad}"

# A cell the fresh run emits but the committed baseline lacks means a
# benchmark was added without regenerating BENCH_core.json — that cell
# would silently escape the regression guard forever.  Fail loudly and
# say how to fix it.
unbaselined = sorted(k for k in fresh if k not in baseline)
if unbaselined:
    print("perf baseline is STALE — fresh cells missing from "
          f"{sys.argv[2]}:")
    for k in unbaselined:
        print(f"  {k}: {fresh[k]:.3g}/s has no committed baseline")
    print("fix: rerun `./bench/perf_core --json BENCH_core.json` on the "
          "reference machine and commit the result")
    sys.exit(1)

regressions = []
for key, base in sorted(baseline.items()):
    now = fresh.get(key)
    if now is None:
        regressions.append(f"{key}: cell vanished (baseline {base:.3g}/s)")
        continue
    ratio = now / base
    flag = "REGRESSION" if ratio < 1 - tolerance else "ok"
    print(f"  {key:24s} {now:14.3g}/s  baseline {base:14.3g}/s  "
          f"x{ratio:.2f}  {flag}")
    if ratio < 1 - tolerance:
        regressions.append(f"{key}: {now:.3g}/s is {1 - ratio:.0%} below "
                           f"baseline {base:.3g}/s (tolerance {tolerance:.0%})")
if regressions:
    print("perf regression guard FAILED:")
    for r in regressions:
        print("  " + r)
    sys.exit(1)
print(f"perf guard: {len(baseline)} cells within {tolerance:.0%} of baseline")
EOF
}

stage_check() {
  echo "=== check: explorer smoke + thread-count byte-identity ==="
  local dir=build-ci/check
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target check_explorer
  local out1 out4
  out1="$("$dir/bench/check_explorer" --quick --threads 1)"
  out4="$("$dir/bench/check_explorer" --quick --threads 4)"
  echo "$out4"
  local h1 h4
  h1="$(echo "$out1" | grep 'aggregate hash')"
  h4="$(echo "$out4" | grep 'aggregate hash')"
  if [ "$h1" != "$h4" ]; then
    echo "check: aggregate hash differs between thread counts:" >&2
    echo "  threads 1: $h1" >&2
    echo "  threads 4: $h4" >&2
    exit 1
  fi
  echo "check: --quick clean, aggregate byte-identical for 1 and 4 threads"

  # Depth-2 exhaustive smoke: a tightly budgeted cross product must
  # complete, and two shards merged must be byte-identical to the
  # unsharded frontier — the scale engine's sharding contract.
  local fdir=build-ci/check/frontiers
  rm -rf "$fdir" && mkdir -p "$fdir"
  local caps="--exhaustive --max-frames 8 --max-victim-sets 4 \
              --max-bases 8 --targets 2 --no-shrink"
  # shellcheck disable=SC2086
  "$dir/bench/check_explorer" $caps --frontier "$fdir/all.json" \
    --threads 4 >/dev/null
  # shellcheck disable=SC2086
  "$dir/bench/check_explorer" $caps --shard 0/2 \
    --frontier "$fdir/s0.json" --threads 1 >/dev/null
  # shellcheck disable=SC2086
  "$dir/bench/check_explorer" $caps --shard 1/2 \
    --frontier "$fdir/s1.json" --threads 4 >/dev/null
  "$dir/bench/check_explorer" --merge "$fdir/merged.json" \
    "$fdir/s0.json" "$fdir/s1.json" >/dev/null
  if ! cmp -s "$fdir/all.json" "$fdir/merged.json"; then
    echo "check: merged shard frontier differs from the unsharded run" >&2
    exit 1
  fi
  echo "check: depth-2 exhaustive smoke ok, shard union byte-identical"
}

stage_shootout() {
  echo "=== shootout: membership baselines smoke + thread byte-identity ==="
  local dir=build-ci/shootout
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target membership_shootout
  local j1=build-ci/shootout/shootout_t1.json
  local j4=build-ci/shootout/shootout_t4.json
  # The bench exits nonzero itself if any cell fails to re-converge.
  "$dir/bench/membership_shootout" --quick --threads 1 --json "$j1" >/dev/null
  "$dir/bench/membership_shootout" --quick --threads 4 --json "$j4"
  if ! cmp -s "$j1" "$j4"; then
    echo "shootout: trajectory differs between thread counts" >&2
    exit 1
  fi
  # Structural validation: every protocol x n cell present, converged,
  # with plausible curve points (positive bandwidth, nonnegative
  # detection latency, no false positives at these loss rates).
  python3 - "$j4" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "membership_shootout", doc.get("bench")

cells = {(int(c["params"]["protocol"]), int(c["params"]["nodes"])): c["metrics"]
         for c in doc["cells"]}
protos = {0: "canely", 1: "swim", 2: "gossip", 3: "rapid"}
expected = [(p, n) for p in protos for n in (8, 32)]
missing = [k for k in expected if k not in cells]
assert not missing, f"missing cells: {missing}"
for (p, n), m in sorted(cells.items()):
    name = f"{protos[p]}:{n}"
    assert m["converged"] == 1, f"{name}: survivors never re-agreed"
    assert m["measured"] == 1, f"{name}: quick cells must all be measured"
    assert m["detection_first_ms"] > 0, f"{name}: no detection recorded"
    assert m["detection_last_ms"] >= m["detection_first_ms"], name
    assert m["bytes_per_node_s"] > 0, f"{name}: zero protocol traffic"
    assert m["false_positives"] == 0, f"{name}: false positives"
    assert m["view_changes"] >= n - 1, f"{name}: too few view changes"
print(f"shootout: {len(cells)} cells converged, curves well-formed, "
      "byte-identical across thread counts")
EOF
}

stage_obs() {
  echo "=== obs: scenario trace export, structural + loss validation ==="
  local dir=build-ci/obs
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target canely_scenario_tool
  local trace=build-ci/obs/trace_crash_detection.json
  "$dir/tools/canely_scenario" --trace-out="$trace" \
    "$ROOT/scenarios/crash_detection.scn"
  # The exported timeline must parse as Chrome trace_event JSON, keep
  # every B/E duration pair balanced per track, carry the §6.3 metrics
  # with nonzero values, and record zero drops at the default ring size.
  python3 - "$trace" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

events = doc["traceEvents"]
assert events, "empty traceEvents"

stacks = {}
async_open = {}
last_ts = {}
for ev in events:
    ph = ev["ph"]
    if ph == "M":
        continue
    track = (ev["pid"], ev["tid"])
    ts = ev["ts"]
    assert last_ts.get(track, -1e18) <= ts, f"ts not monotone on {track}"
    last_ts[track] = ts
    if ph == "B":
        stacks.setdefault(track, []).append(ev["name"])
    elif ph == "E":
        stack = stacks.get(track)
        assert stack, f"E without B on {track}"
        stack.pop()
    elif ph == "b":
        async_open[(ev["cat"], ev["id"])] = ev["name"]
    elif ph == "e":
        assert (ev["cat"], ev["id"]) in async_open, "e without b"
        del async_open[(ev["cat"], ev["id"])]
leftover = {t: s for t, s in stacks.items() if s}
assert not leftover, f"unbalanced duration events: {leftover}"

other = doc["otherData"]
assert other["dropped_events"] == 0, \
    f"{other['dropped_events']} events dropped at default ring size"

counters = doc["metrics"]["counters"]
for name in ("els.frames_sent", "heartbeat.implicit"):
    total = counters[name]["total"] if isinstance(counters[name], dict) \
        else counters[name]
    assert total > 0, f"{name} is zero"
detect = doc["metrics"]["histograms"]["fd.detection_latency_us"]
assert detect["count"] > 0, "no detection-latency samples"
print(f"obs: {len(events)} trace events, spans balanced, 0 dropped, "
      f"detection latency max {detect['max']} us over "
      f"{detect['count']} samples")
EOF

  # Campaign telemetry: a sharded depth-2 run must stream valid
  # canely-telemetry-1 JSONL that canely_top can reduce.  The JSONL is
  # validated independently in Python (not through the C++ reader the
  # tool itself uses) so a schema bug in writer AND reader still fails.
  cmake --build "$dir" -j "$JOBS" --target check_explorer canely_top_tool
  local tdir=build-ci/obs/telemetry
  rm -rf "$tdir" && mkdir -p "$tdir"
  local tcaps="--exhaustive --max-frames 8 --max-victim-sets 4 \
               --max-bases 8 --targets 2 --no-shrink"
  local s
  for s in 0 1; do
    # shellcheck disable=SC2086
    "$dir/bench/check_explorer" $tcaps --shard "$s/2" \
      --frontier "$tdir/f$s.json" --telemetry "$tdir/t$s.jsonl" \
      --telemetry-period 50 --threads 2 >/dev/null
  done
  python3 - "$tdir/t0.jsonl" "$tdir/t1.jsonl" <<'EOF'
import json, sys

counters = ["runs", "units_judged", "dedup_skips", "units_resumed",
            "prefix_cache_hits", "prefix_cache_misses", "violations",
            "shrink_steps", "checkpoints"]
stages = ["judge", "replay", "hash", "checkpoint_io"]
total = 0
for path in sys.argv[1:]:
    with open(path) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    assert lines, f"{path}: no snapshots"
    prev_seq = 0
    for snap in lines:
        assert snap["schema"] == "canely-telemetry-1", snap.get("schema")
        assert snap["seq"] > prev_seq, f"{path}: seq not monotone"
        prev_seq = snap["seq"]
        for c in counters:
            assert isinstance(snap["counters"][c], int), c
        for s in stages:
            st = snap["stages"][s]
            assert st["count"] == sum(st["buckets"]), f"{s}: bucket sum"
    last = lines[-1]["counters"]
    assert last["units_judged"] + last["dedup_skips"] > 0, \
        f"{path}: no units accounted"
    assert last["checkpoints"] > 0, f"{path}: no checkpoints recorded"
    total += len(lines)
print(f"obs: {total} telemetry snapshots across 2 shards, schema valid")
EOF
  # canely_top must reduce the same files to a machine-readable status.
  "$dir/tools/canely_top" --once --json "$tdir/t0.jsonl" "$tdir/t1.jsonl" \
    >"$tdir/status.json"
  python3 - "$tdir/status.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "canely-top-1", doc.get("schema")
assert len(doc["shards"]) == 2, doc["shards"]
assert doc["total"]["done"] > 0, "no progress visible"
assert doc["total"]["shards_complete"] == 2, "shards not complete"
print(f"obs: canely_top sees {doc['total']['done']} units done, "
      "both shard frontiers complete")
EOF
}

stage_lint() {
  echo "=== lint: canely_lint whole-program + clang-tidy (when available) ==="
  local dir=build-ci/lint
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target canely_lint_tool
  # Whole-program pass with a per-file index cache (keyed on content
  # hash).  Two runs — the second entirely cache-served — must produce
  # byte-identical reports; exit codes are checked by the diff gate
  # below, not here.
  local cache="$dir/lint-index-cache"
  mkdir -p "$cache"
  local r1="$dir/lint_run1.json" r2="$dir/lint_run2.json"
  "$dir/tools/canely_lint" --root "$ROOT" --whole-program \
    --threads "$JOBS" --index-cache "$cache" --json \
    src tests bench examples tools >"$r1" || true
  "$dir/tools/canely_lint" --root "$ROOT" --whole-program \
    --threads "$JOBS" --index-cache "$cache" --json \
    src tests bench examples tools >"$r2" || true
  if ! cmp -s "$r1" "$r2"; then
    echo "lint: report not byte-stable across cached re-run" >&2
    exit 1
  fi
  # Diff gate: only findings NOT in the committed baseline fail the
  # stage.  The baseline is regenerated with
  #   canely_lint --whole-program --json src tests bench examples tools \
  #     > tools/lint_baseline.json
  # and reviewed like any other diff.
  "$dir/tools/canely_lint" --root "$ROOT" --whole-program \
    --threads "$JOBS" --index-cache "$cache" \
    --diff "$ROOT/tools/lint_baseline.json" \
    src tests bench examples tools
  # clang-tidy runs the generic AST-level checks (.clang-tidy at the repo
  # root) against the compile database the configure step exported.  The
  # default toolchain here is GCC-only, so absence is a skip, not a failure.
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$dir" "$ROOT/src/.*\.cpp"
  elif command -v clang-tidy >/dev/null 2>&1; then
    find "$ROOT/src" -name '*.cpp' -print0 |
      xargs -0 clang-tidy -quiet -p "$dir"
  else
    echo "lint: clang-tidy not installed; skipping the AST-level pass"
  fi
}

main() {
  local stages=("$@")
  if [ ${#stages[@]} -eq 0 ]; then
    stages=(lint tier1 asan ubsan tsan perf check shootout obs)
  fi
  for s in "${stages[@]}"; do
    case "$s" in
      tier1) stage_tier1 ;;
      asan) stage_asan ;;
      ubsan) stage_ubsan ;;
      tsan) stage_tsan ;;
      perf) stage_perf ;;
      check) stage_check ;;
      shootout) stage_shootout ;;
      obs) stage_obs ;;
      lint) stage_lint ;;
      *)
        echo "unknown stage: $s (expected lint, tier1, asan, ubsan, tsan," \
             "perf, check, shootout, or obs)" >&2
        exit 2
        ;;
    esac
  done
  echo "=== ci: all stages passed ==="
}

main "$@"
