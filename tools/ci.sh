#!/usr/bin/env bash
# CI driver: the checks a change must pass before merging.
#
#   tools/ci.sh            run every stage
#   tools/ci.sh tier1      strict build (CANELY_WERROR=ON) + full ctest
#   tools/ci.sh asan       AddressSanitizer + UBSan build, full ctest
#   tools/ci.sh tsan       ThreadSanitizer build, campaign-runner tests
#                          (the only code that spawns threads) + benches
#                          at --threads 4
#   tools/ci.sh perf       Release build, perf_core --quick smoke: the
#                          bench must run and emit a structurally valid
#                          BENCH_core.json (rates are a tracked
#                          trajectory, never threshold-gated in CI)
#
# Each stage uses its own build tree under build-ci/ so the stages never
# poison each other's CMake caches or object files.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 4)"

configure_build_test() {
  local dir="$1" ctest_args="$2"
  shift 2
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  (cd "$dir" && eval ctest --output-on-failure -j "$JOBS" "$ctest_args")
}

stage_tier1() {
  echo "=== tier1: -Werror build + full test suite ==="
  configure_build_test build-ci/tier1 ""
}

stage_asan() {
  echo "=== asan: AddressSanitizer + UBSan, full test suite ==="
  configure_build_test build-ci/asan "" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
}

stage_tsan() {
  echo "=== tsan: ThreadSanitizer over the campaign thread pool ==="
  local dir=build-ci/tsan
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread" >/dev/null
  # Only the campaign runner spawns threads; build and exercise exactly
  # the targets that drive its pool, rather than the whole (serial) suite.
  cmake --build "$dir" -j "$JOBS" --target \
    test_campaign fault_campaign fig10_bandwidth \
    ablation_heartbeat ablation_cycle_skip ablation_fda
  "$dir/tests/test_campaign"
  for bench in fault_campaign fig10_bandwidth ablation_heartbeat \
               ablation_cycle_skip ablation_fda; do
    echo "--- tsan: $bench --threads 4 ---"
    "$dir/bench/$bench" --threads 4 --no-json >/dev/null
  done
}

stage_perf() {
  echo "=== perf: Release perf_core smoke + BENCH_core.json shape ==="
  local dir=build-ci/perf
  cmake -S "$ROOT" -B "$dir" -DCANELY_WERROR=ON \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$dir" -j "$JOBS" --target perf_core
  local json=build-ci/perf/BENCH_core.json
  (cd "$dir" && ./bench/perf_core --quick --json BENCH_core.json)
  # Structural validation only: the emitted trajectory must contain every
  # scenario cell with a positive rate.  Absolute numbers are machine-
  # dependent and tracked via the committed BENCH_core.json, not gated.
  python3 - "$json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["bench"] == "perf_core", doc.get("bench")
cells = {}
for cell in doc["cells"]:
    p = cell["params"]
    key = p["scenario"] + (":%d" % p["nodes"] if "nodes" in p else "")
    (metric,) = cell["metrics"].values()
    cells[key] = metric["mean"]

expected = ["engine_churn", "engine_fifo", "bus_load:8", "bus_load:32",
            "bus_load:64", "membership_cycle:8"]
missing = [k for k in expected if k not in cells]
assert not missing, f"missing cells: {missing}"
bad = {k: v for k, v in cells.items() if not v > 0}
assert not bad, f"non-positive rates: {bad}"
print("BENCH_core.json: %d cells, all rates positive" % len(cells))
EOF
}

main() {
  local stages=("$@")
  if [ ${#stages[@]} -eq 0 ]; then
    stages=(tier1 asan tsan perf)
  fi
  for s in "${stages[@]}"; do
    case "$s" in
      tier1) stage_tier1 ;;
      asan) stage_asan ;;
      tsan) stage_tsan ;;
      perf) stage_perf ;;
      *)
        echo "unknown stage: $s (expected tier1, asan, tsan, or perf)" >&2
        exit 2
        ;;
    esac
  done
  echo "=== ci: all stages passed ==="
}

main "$@"
