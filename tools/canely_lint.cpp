// canely_lint — project-specific static analysis for the CANELy repro
// (DESIGN.md §10).  Enforces the invariants the test suite can only
// check after the fact: determinism zones stay free of nondeterministic
// sources, tagged hot paths stay allocation-free, wire structs stay
// fixed-width.
//
//   canely_lint [--root DIR] [--json] PATH...   lint files/trees
//   canely_lint --list-rules                    print the rule table
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage/IO error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int list_rules() {
  std::printf("%-26s %-12s %s\n", "rule", "zone", "summary");
  for (const canely::lint::RuleInfo& r : canely::lint::rule_table()) {
    std::printf("%-26s %-12s %.*s\n", std::string(r.id).c_str(),
                std::string(r.zone).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] PATH...\n"
               "       %s --list-rules\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--json") {
      json = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  canely::lint::RunResult result;
  std::string error;
  if (!canely::lint::lint_paths(root, paths, result, error)) {
    std::fprintf(stderr, "canely_lint: %s\n", error.c_str());
    return 2;
  }
  const std::string report = json ? canely::lint::to_json(result)
                                  : canely::lint::to_text(result);
  std::fputs(report.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
