// canely_lint — project-specific static analysis for the CANELy repro
// (DESIGN.md §10, docs/LINT.md).  Enforces the invariants the test suite
// can only check after the fact: determinism zones stay free of
// nondeterministic sources, tagged hot paths stay allocation-free, wire
// structs stay fixed-width and padding-free.
//
//   canely_lint [--root DIR] [--json] PATH...   per-file rules
//   canely_lint --whole-program [opts] PATH...  + call-graph analyses
//     --threads N          parallel per-file indexing (same bytes out)
//     --index-cache DIR    cache per-TU indexes keyed on content hash
//     --diff BASELINE      report only findings not in BASELINE (a saved
//                          --json report); exit 0 if none are new
//   canely_lint --index FILE                    dump one TU's index JSON
//   canely_lint --list-rules                    print the rule table
//
// Exit status: 0 = clean, 1 = unsuppressed findings, 2 = usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace {

int list_rules() {
  std::printf("%-26s %-12s %s\n", "rule", "zone", "summary");
  for (const canely::lint::RuleInfo& r : canely::lint::rule_table()) {
    std::printf("%-26s %-12s %.*s\n", std::string(r.id).c_str(),
                std::string(r.zone).c_str(),
                static_cast<int>(r.summary.size()), r.summary.data());
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--whole-program] "
               "[--threads N] [--index-cache DIR] [--diff BASELINE] "
               "PATH...\n"
               "       %s --index FILE\n"
               "       %s --list-rules\n",
               argv0, argv0, argv0);
  return 2;
}

int dump_index(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "canely_lint: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const canely::lint::FileIndex fi =
      canely::lint::build_index(path, buf.str());
  std::fputs(canely::lint::index_to_json(fi).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  canely::lint::Options opts;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--index") {
      if (++i >= argc) return usage(argv[0]);
      return dump_index(argv[i]);
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--whole-program") {
      opts.whole_program = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--threads") {
      if (++i >= argc) return usage(argv[0]);
      opts.threads = std::atoi(argv[i]);
      if (opts.threads < 1) return usage(argv[0]);
    } else if (arg == "--index-cache") {
      if (++i >= argc) return usage(argv[0]);
      opts.index_cache = argv[i];
    } else if (arg == "--diff") {
      if (++i >= argc) return usage(argv[0]);
      opts.diff_baseline = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);
  if ((!opts.index_cache.empty() || !opts.diff_baseline.empty() ||
       opts.threads > 1) &&
      !opts.whole_program) {
    std::fprintf(stderr,
                 "canely_lint: --threads/--index-cache/--diff require "
                 "--whole-program\n");
    return 2;
  }

  canely::lint::RunResult result;
  std::string error;
  if (!canely::lint::lint_paths(root, paths, opts, result, error)) {
    std::fprintf(stderr, "canely_lint: %s\n", error.c_str());
    return 2;
  }
  const std::string report = json ? canely::lint::to_json(result)
                                  : canely::lint::to_text(result);
  std::fputs(report.c_str(), stdout);
  return result.findings.empty() ? 0 : 1;
}
