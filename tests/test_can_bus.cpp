// Unit tests for the CAN bus + controller models (src/can/bus.hpp,
// src/can/controller.hpp): arbitration, timing, clustering, fault
// confinement, and the inconsistent-omission failure mode of [18].

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"

namespace canely::can {
namespace {

struct Recorder final : ControllerClient {
  struct Rx {
    Frame frame;
    bool own;
    sim::Time at;
  };
  explicit Recorder(sim::Engine& e) : engine{&e} {}
  void on_rx(const Frame& frame, bool own) override {
    rx.push_back({frame, own, engine->now()});
  }
  void on_tx_confirm(const Frame& frame) override { cnf.push_back(frame); }
  void on_bus_off() override { bus_off = true; }

  sim::Engine* engine;
  std::vector<Rx> rx;
  std::vector<Frame> cnf;
  bool bus_off{false};
};

class BusTest : public ::testing::Test {
 protected:
  void make_nodes(std::size_t n, BusConfig config = {}) {
    bus = std::make_unique<Bus>(engine, config);
    for (std::size_t i = 0; i < n; ++i) {
      ctl.push_back(std::make_unique<Controller>(
          static_cast<NodeId>(i), *bus));
      rec.push_back(std::make_unique<Recorder>(engine));
      ctl.back()->set_client(rec.back().get());
    }
  }

  sim::Engine engine;
  std::unique_ptr<Bus> bus;
  std::vector<std::unique_ptr<Controller>> ctl;
  std::vector<std::unique_ptr<Recorder>> rec;
};

TEST_F(BusTest, SingleFrameDeliveredToAllIncludingSender) {
  make_nodes(3);
  const std::uint8_t payload[] = {0xDE, 0xAD};
  ctl[0]->request_tx(Frame::make_data(0x10, payload));
  engine.run_until(sim::Time::ms(1));

  ASSERT_EQ(rec[0]->cnf.size(), 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(rec[i]->rx.size(), 1u) << "node " << i;
    EXPECT_EQ(rec[i]->rx[0].own, i == 0);
    EXPECT_EQ(rec[i]->rx[0].frame.dlc, 2);
  }
}

TEST_F(BusTest, DeliveryTimeMatchesBitAccurateLength) {
  make_nodes(2);
  const std::uint8_t payload[] = {0x00};
  const Frame f = Frame::make_data(0x7FF, payload);
  const std::size_t bits = frame_bits_on_wire(f) + kIntermissionBits;
  ctl[0]->request_tx(f);
  engine.run_until(sim::Time::sec(1));
  ASSERT_EQ(rec[1]->rx.size(), 1u);
  EXPECT_EQ(rec[1]->rx[0].at,
            sim::bits_to_time(static_cast<std::int64_t>(bits), 1'000'000));
}

TEST_F(BusTest, LowestIdentifierWinsArbitration) {
  make_nodes(3);
  // Two nodes contend; high-priority (low id) goes first.
  ctl[1]->request_tx(Frame::make_data(0x200, {}));
  ctl[2]->request_tx(Frame::make_data(0x100, {}));
  engine.run_until(sim::Time::ms(1));
  ASSERT_EQ(rec[0]->rx.size(), 2u);
  EXPECT_EQ(rec[0]->rx[0].frame.id, 0x100u);
  EXPECT_EQ(rec[0]->rx[1].frame.id, 0x200u);
}

TEST_F(BusTest, LosingFrameRetransmitsAfterWinner) {
  make_nodes(2);
  ctl[0]->request_tx(Frame::make_data(0x300, {}));
  ctl[1]->request_tx(Frame::make_data(0x100, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(rec[0]->cnf.size(), 1u);
  EXPECT_EQ(rec[1]->cnf.size(), 1u);
  EXPECT_EQ(bus->stats().ok, 2u);
}

TEST_F(BusTest, IdenticalRemoteFramesCluster) {
  make_nodes(4);
  // Three nodes request the same remote frame simultaneously: one
  // physical frame, every requester confirmed (the FDA bandwidth trick).
  for (int i = 0; i < 3; ++i) {
    ctl[static_cast<std::size_t>(i)]->request_tx(Frame::make_remote(0x42));
  }
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(bus->stats().attempts, 1u);
  EXPECT_EQ(bus->stats().ok, 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rec[static_cast<std::size_t>(i)]->cnf.size(), 1u);
    ASSERT_EQ(rec[static_cast<std::size_t>(i)]->rx.size(), 1u);
    EXPECT_TRUE(rec[static_cast<std::size_t>(i)]->rx[0].own);
  }
  ASSERT_EQ(rec[3]->rx.size(), 1u);
  EXPECT_FALSE(rec[3]->rx[0].own);
}

TEST_F(BusTest, ClusteringDisabledSerializesIdenticalFrames) {
  BusConfig cfg;
  cfg.clustering = false;
  make_nodes(3, cfg);
  ctl[0]->request_tx(Frame::make_remote(0x42));
  ctl[1]->request_tx(Frame::make_remote(0x42));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(bus->stats().ok, 2u);  // two physical frames
  EXPECT_EQ(rec[2]->rx.size(), 2u);
}

TEST_F(BusTest, SameIdDifferentDataIsACollision) {
  make_nodes(3);
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2};
  ctl[0]->request_tx(Frame::make_data(0x42, a));
  ctl[1]->request_tx(Frame::make_data(0x42, b));
  engine.run_until(sim::Time::ms(2));
  EXPECT_GE(bus->stats().collisions, 1u);
  // CAN retransmits after errors; eventually both frames go through
  // (second arbitration round: still same key -> this setup keeps
  // colliding until fault confinement silences one transmitter).
  EXPECT_GT(bus->stats().attempts, 1u);
}

TEST_F(BusTest, CollisionErrorBitTracksPayloadDivergence) {
  // The destroyed-frame length of a collision is the first stuffed wire
  // bit where the contenders diverge, not a fixed arbitration+control
  // constant: frames that agree deep into the data field occupy the bus
  // correspondingly longer before the bit error is signalled.
  auto first_collision_bits = [](std::uint8_t diff_byte) {
    sim::Engine eng;
    Bus wire{eng};
    Controller a{0, wire}, b{1, wire};
    std::uint8_t pa[8] = {}, pb[8] = {};
    pb[diff_byte] = 0xFF;  // identical up to (excluding) diff_byte
    a.request_tx(Frame::make_data(0x42, pa));
    b.request_tx(Frame::make_data(0x42, pb));
    std::size_t bits = 0;
    wire.set_observer([&](const TxRecord& r) {
      if (bits == 0 && r.outcome == TxOutcome::kCollision) bits = r.bits;
    });
    eng.run_until(sim::Time::ms(1));
    return bits;
  };
  const std::size_t early = first_collision_bits(0);
  const std::size_t late = first_collision_bits(7);
  // Divergence in data byte 0 is detected right after the control field
  // (~19 unstuffed bits + stuffing + error flag + intermission)...
  EXPECT_GT(early, 19u + kErrorFlagBits + kIntermissionBits);
  EXPECT_LT(early, 50u);
  // ...while 7 identical leading bytes push detection ~56 wire bits out.
  EXPECT_GT(late, early + 50);
}

TEST_F(BusTest, CollisionNeverMergesAndConfinesBothTransmitters) {
  // MID aliasing end-game: two nodes emitting the same identifier with
  // different payloads must never have their frames merged or delivered;
  // the deadlock resolves through fault confinement (TEC +8 per
  // collision, bus-off at 256 clears both queues) — CAN's answer to a
  // protocol configuration error.
  make_nodes(3);
  const std::uint8_t a[] = {1};
  const std::uint8_t b[] = {2};
  ctl[0]->request_tx(Frame::make_data(0x42, a));
  ctl[1]->request_tx(Frame::make_data(0x42, b));
  engine.run_until(sim::Time::ms(20));
  EXPECT_TRUE(rec[2]->rx.empty());  // neither payload, and no hybrid
  EXPECT_EQ(bus->stats().collisions, 32u);  // 32 * 8 = 256 = bus-off
  EXPECT_TRUE(rec[0]->bus_off);
  EXPECT_TRUE(rec[1]->bus_off);
  EXPECT_FALSE(ctl[0]->alive());
  EXPECT_FALSE(ctl[1]->alive());
}

TEST_F(BusTest, GlobalErrorCausesRetransmission) {
  make_nodes(2);
  ScriptedFaults faults;
  faults.kill_nth(0);
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(bus->stats().errors, 1u);
  EXPECT_EQ(bus->stats().ok, 1u);
  ASSERT_EQ(rec[1]->rx.size(), 1u);  // delivered exactly once
  EXPECT_EQ(ctl[0]->tec(), 7);       // +8 on error, -1 on success
  EXPECT_EQ(ctl[1]->rec(), 0);       // +1 on error, -1 on reception
}

TEST_F(BusTest, InconsistentOmissionDeliversToSubsetThenDuplicates) {
  make_nodes(4);
  // Victims 2,3 miss the first copy; retransmission reaches everyone, so
  // nodes 1 sees a duplicate — exactly the scenario of [18] §3.
  ScriptedFaults faults;
  faults.inconsistent_once(
      [](const TxContext& c) { return c.frame.id == 0x10; },
      NodeSet{2, 3});
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(bus->stats().inconsistent, 1u);
  EXPECT_EQ(bus->stats().ok, 1u);
  EXPECT_EQ(rec[1]->rx.size(), 2u);  // duplicate
  EXPECT_EQ(rec[2]->rx.size(), 1u);
  EXPECT_EQ(rec[3]->rx.size(), 1u);
  EXPECT_EQ(rec[0]->cnf.size(), 1u);  // confirmed once, on the retry
}

TEST_F(BusTest, SenderCrashAfterInconsistentOmissionIsMessageOmission) {
  make_nodes(4);
  ScriptedFaults faults;
  faults.inconsistent_once(
      [](const TxContext& c) { return c.frame.id == 0x10; },
      NodeSet{2, 3});
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  // Crash the sender right after the first (inconsistent) attempt
  // completes but before the retransmission: attempt takes < 100 us.
  const Frame f = Frame::make_data(0x10, {});
  const auto first_attempt_bits = frame_bits_on_wire(f) +
                                  (kErrorFlagBits + kErrorDelimiterBits) +
                                  kIntermissionBits;
  engine.schedule_at(
      sim::bits_to_time(static_cast<std::int64_t>(first_attempt_bits),
                        1'000'000) +
          sim::Time::us(1),  // just after the attempt completes
      [this] { ctl[0]->crash(); });
  engine.run_until(sim::Time::ms(5));
  // Node 1 got the message; victims 2 and 3 never will: inconsistency.
  EXPECT_EQ(rec[1]->rx.size(), 1u);
  EXPECT_EQ(rec[2]->rx.size(), 0u);
  EXPECT_EQ(rec[3]->rx.size(), 0u);
}

TEST_F(BusTest, LoneNodeGetsAckErrorsAndRetries) {
  make_nodes(1);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(2));
  EXPECT_GT(bus->stats().ack_errors, 2u);
  EXPECT_EQ(rec[0]->cnf.size(), 0u);
  // ISO 11898 ACK-error exception: TEC saturates at error-passive, the
  // node never reaches bus-off.
  EXPECT_EQ(ctl[0]->error_state(), ErrorState::kErrorPassive);
}

TEST_F(BusTest, PersistentErrorsDriveTransmitterBusOff) {
  make_nodes(2);
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/-1);
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(20));
  // TEC: 32 consecutive failures x8 = 256 -> bus-off (weak-fail-silent
  // enforcement of §4).
  EXPECT_EQ(ctl[0]->error_state(), ErrorState::kBusOff);
  EXPECT_TRUE(rec[0]->bus_off);
  EXPECT_FALSE(ctl[0]->alive());
  EXPECT_EQ(rec[1]->rx.size(), 0u);
}

TEST_F(BusTest, AbortRemovesPendingNotInFlight) {
  make_nodes(2);
  // Queue two frames; while the first transmits the second is pending.
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  ctl[0]->request_tx(Frame::make_data(0x20, {}));
  engine.run_until(sim::Time::us(10));  // first frame now in flight
  const auto dropped = ctl[0]->abort_matching(
      [](const Frame& f) { return f.id == 0x20; });
  EXPECT_EQ(dropped, 1u);
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(rec[1]->rx.size(), 1u);
  EXPECT_EQ(rec[1]->rx[0].frame.id, 0x10u);
}

TEST_F(BusTest, CrashedControllerIsSilentAndDeaf) {
  make_nodes(3);
  ctl[2]->crash();
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(rec[1]->rx.size(), 1u);
  EXPECT_EQ(rec[2]->rx.size(), 0u);
  ctl[2]->request_tx(Frame::make_data(0x30, {}));  // dropped silently
  engine.run_until(sim::Time::ms(2));
  EXPECT_EQ(rec[1]->rx.size(), 1u);
}

TEST_F(BusTest, TxQueueDrainsInPriorityOrder) {
  make_nodes(2);
  ctl[0]->request_tx(Frame::make_data(0x300, {}));
  ctl[0]->request_tx(Frame::make_data(0x100, {}));
  ctl[0]->request_tx(Frame::make_data(0x200, {}));
  engine.run_until(sim::Time::ms(1));
  ASSERT_EQ(rec[1]->rx.size(), 3u);
  EXPECT_EQ(rec[1]->rx[0].frame.id, 0x100u);
  EXPECT_EQ(rec[1]->rx[1].frame.id, 0x200u);
  EXPECT_EQ(rec[1]->rx[2].frame.id, 0x300u);
}

TEST_F(BusTest, ObserverSeesEveryAttempt) {
  make_nodes(2);
  ScriptedFaults faults;
  faults.kill_nth(0);
  bus->set_fault_injector(&faults);
  std::vector<TxRecord> log;
  bus->set_observer([&](const TxRecord& r) { log.push_back(r); });
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(1));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].outcome, TxOutcome::kError);
  EXPECT_EQ(log[0].attempt, 0);
  EXPECT_EQ(log[1].outcome, TxOutcome::kOk);
  EXPECT_EQ(log[1].attempt, 1);
  EXPECT_EQ(log[1].delivered_to, (NodeSet{0, 1}));
}

TEST_F(BusTest, StatsAccounting) {
  make_nodes(2);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  ctl[1]->request_tx(Frame::make_data(0x20, {}));
  engine.run_until(sim::Time::ms(1));
  const auto& s = bus->stats();
  EXPECT_EQ(s.attempts, 2u);
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(s.bits_total, s.bits_good);
  EXPECT_EQ(s.bits_wasted, 0u);
  EXPECT_GT(s.bits_total, 2 * 47u);
}

TEST_F(BusTest, BurstFaultsBlockWindow) {
  make_nodes(2);
  BurstFaults burst;
  burst.add_window(sim::Time::zero(), sim::Time::us(500));
  bus->set_fault_injector(&burst);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::us(400));
  EXPECT_EQ(rec[1]->rx.size(), 0u);  // inaccessibility: bus up, no service
  engine.run_until(sim::Time::ms(2));
  EXPECT_EQ(rec[1]->rx.size(), 1u);  // delivered after the burst
  EXPECT_GT(bus->stats().errors, 0u);
}

TEST_F(BusTest, DuplicateNodeIdRejected) {
  make_nodes(1);
  EXPECT_THROW(Controller(0, *bus), std::logic_error);
}

TEST_F(BusTest, OverloadFramesDelayNextArbitration) {
  make_nodes(2);
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.tx_index == 0; },
             Verdict::with_overloads(2));
  bus->set_fault_injector(&faults);
  const Frame f = Frame::make_data(0x10, {});
  ctl[0]->request_tx(f);
  ctl[0]->request_tx(Frame::make_data(0x20, {}));
  engine.run_until(sim::Time::ms(2));
  ASSERT_EQ(rec[1]->rx.size(), 2u);
  // Second frame starts exactly 2 * (6+8) bit-times later than it would
  // without the overload condition.
  const auto base = frame_bits_on_wire(f) + kIntermissionBits;
  const auto expected_start =
      sim::bits_to_time(static_cast<std::int64_t>(
                            base + 2 * (kOverloadFlagBits +
                                        kOverloadDelimiterBits)),
                        1'000'000);
  const auto second = Frame::make_data(0x20, {});
  EXPECT_EQ(rec[1]->rx[1].at,
            expected_start +
                sim::bits_to_time(static_cast<std::int64_t>(
                                      frame_bits_on_wire(second) +
                                      kIntermissionBits),
                                  1'000'000));
  EXPECT_EQ(bus->stats().overload_frames, 2u);
}

TEST_F(BusTest, OverloadCountClampedToTwo) {
  make_nodes(2);
  ScriptedFaults faults;
  faults.add([](const TxContext&) { return true; },
             Verdict::with_overloads(7));
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(bus->stats().overload_frames, 2u);  // ISO 11898 max
}

TEST_F(BusTest, ErrorPassiveTransmitterSuspends) {
  make_nodes(2);
  // Drive node 0 error-passive (17 x 8 = 136; the final success only
  // takes it to 135), then measure the gap
  // between its two back-to-back transmissions: 8 extra bit-times.
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/17);
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  engine.run_until(sim::Time::ms(5));
  ASSERT_EQ(rec[1]->rx.size(), 1u);
  ASSERT_EQ(ctl[0]->error_state(), ErrorState::kErrorPassive);

  const sim::Time first_end = rec[1]->rx[0].at;
  ctl[0]->request_tx(Frame::make_data(0x20, {}));
  engine.run_until(engine.now() + sim::Time::ms(2));
  ASSERT_EQ(rec[1]->rx.size(), 2u);
  const Frame f2 = Frame::make_data(0x20, {});
  const auto tx_time = sim::bits_to_time(
      static_cast<std::int64_t>(frame_bits_on_wire(f2) + kIntermissionBits),
      1'000'000);
  // Request was issued right at first_end... the suspension pushes the
  // start at least kSuspendTransmissionBits past the previous completion.
  EXPECT_GE(rec[1]->rx[1].at - first_end,
            tx_time + sim::bits_to_time(kSuspendTransmissionBits, 1'000'000));
}

TEST_F(BusTest, SuspendDoesNotBlockOtherTransmitters) {
  make_nodes(3);
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/17);
  bus->set_fault_injector(&faults);
  ctl[0]->request_tx(Frame::make_data(0x10, {}));
  // Step in 2 us increments so we stop right at the successful
  // completion — within node 0's 8-bit suspension window.
  while (rec[2]->rx.empty() && engine.now() < sim::Time::ms(10)) {
    engine.run_until(engine.now() + sim::Time::us(2));
  }
  ASSERT_EQ(ctl[0]->error_state(), ErrorState::kErrorPassive);
  ASSERT_GT(ctl[0]->suspended_until(), engine.now());
  // While node 0 is suspended, node 1's frame goes out immediately.
  ctl[0]->request_tx(Frame::make_data(0x08, {}));  // higher priority!
  ctl[1]->request_tx(Frame::make_data(0x30, {}));
  engine.run_until(engine.now() + sim::Time::ms(2));
  // Node 1's lower-priority frame won the first arbitration because the
  // passive node was suspended.
  ASSERT_GE(rec[2]->rx.size(), 2u);
  EXPECT_EQ(rec[2]->rx[rec[2]->rx.size() - 2].frame.id, 0x30u);
  EXPECT_EQ(rec[2]->rx.back().frame.id, 0x08u);
}

TEST_F(BusTest, CrashedControllersLeaveTheLiveSet) {
  // The datapath is O(active listeners): crashing a controller removes
  // it from the live list and the contender list immediately, so a frame
  // sent after n-1 crashes touches one-element structures — while its
  // TxRecord stays bit-identical to what a full scan would produce.
  constexpr std::size_t kN = 64;
  make_nodes(kN);
  EXPECT_EQ(bus->live_count(), kN);
  for (std::size_t i = 2; i < kN; ++i) ctl[i]->crash();
  EXPECT_EQ(bus->live_count(), 2u);
  EXPECT_EQ(bus->contender_count(), 0u);

  std::vector<TxRecord> log;
  bus->set_observer([&](const TxRecord& r) { log.push_back(r); });
  const std::uint8_t payload[] = {0xAB};
  ctl[0]->request_tx(Frame::make_data(0x123, payload));
  EXPECT_EQ(bus->contender_count(), 1u);
  engine.run_until(sim::Time::ms(1));

  // Seed-identical record: ok outcome, transmitter 0, delivered to the
  // two survivors only.
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].outcome, TxOutcome::kOk);
  EXPECT_EQ(log[0].transmitter, 0);
  EXPECT_EQ(log[0].co_transmitters.bits(), 0b01u);
  EXPECT_EQ(log[0].delivered_to.bits(), 0b11u);
  EXPECT_EQ(log[0].attempt, 0);
  ASSERT_EQ(rec[1]->rx.size(), 1u);
  EXPECT_EQ(rec[2]->rx.size(), 0u);  // crashed: silent and deaf
  EXPECT_EQ(bus->contender_count(), 0u);

  // With every peer gone the lone transmitter gets no ACK — same record
  // the full-scan datapath produced in the seed.
  ctl[1]->crash();
  EXPECT_EQ(bus->live_count(), 1u);
  log.clear();
  ctl[0]->request_tx(Frame::make_data(0x222, payload));
  engine.run_until(sim::Time::us(1200));
  ASSERT_GE(log.size(), 1u);
  EXPECT_EQ(log[0].outcome, TxOutcome::kAckError);
  EXPECT_EQ(log[0].transmitter, 0);
  EXPECT_EQ(log[0].delivered_to.bits(), 0u);
}

TEST_F(BusTest, AllCoTransmittersDyingMidFrameChargesErrorToTheBus) {
  // §6.1: when every co-transmitter dies mid-frame the truncated frame
  // is a global error, but no live node owns it — the stats and obs
  // layers must charge the error to the bus, not to the dead
  // transmitter's per-node slot, and must flag the event as orphaned.
  make_nodes(2);
  obs::Recorder recorder;
  bus->set_recorder(&recorder);
  std::vector<TxRecord> log;
  bus->set_observer([&](const TxRecord& r) { log.push_back(r); });

  const std::uint8_t payload[] = {0x5A};
  ctl[0]->request_tx(Frame::make_data(0x100, payload));
  engine.run_until(sim::Time::us(20));  // mid-frame (~68 us on the wire)
  ctl[0]->crash();
  engine.run_until(sim::Time::ms(1));

  // The TxRecord itself is unchanged by the relabeling: historical
  // transmitter 0, error outcome, first attempt, nothing delivered, no
  // retransmission (the sender is gone).
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].outcome, TxOutcome::kError);
  EXPECT_EQ(log[0].transmitter, 0);
  EXPECT_EQ(log[0].attempt, 0);
  EXPECT_EQ(log[0].delivered_to.bits(), 0u);
  EXPECT_EQ(bus->stats().errors, 1u);
  EXPECT_EQ(bus->stats().ok, 0u);
  EXPECT_EQ(rec[1]->rx.size(), 0u);

  // Obs: the error counts globally but not against any node.
  const obs::Counter* errors =
      recorder.metrics().find_counter("bus.frames_error");
  ASSERT_NE(errors, nullptr);
  EXPECT_EQ(errors->total(), 1u);
  EXPECT_EQ(errors->node(0), 0u);
  // And the frame event carries the orphaned flag.
  bool saw_orphaned_tx = false;
  for (std::size_t i = 0; i < recorder.ring().size(); ++i) {
    const obs::Event& e = recorder.ring().at(i);
    if (e.kind == obs::EventKind::kFrameTx) {
      EXPECT_EQ(e.node, 0);
      EXPECT_EQ(e.u.frame.orphaned, 1);
      saw_orphaned_tx = true;
    }
  }
  EXPECT_TRUE(saw_orphaned_tx);
}

TEST_F(BusTest, FailedDuplicateAttachLeavesBusIntact) {
  make_nodes(2);
  EXPECT_THROW(Controller(1, *bus), std::logic_error);
  // The rejected attach mutated nothing: both originals still listed,
  // and the incumbent with id 1 still transmits and receives.
  EXPECT_EQ(bus->live_count(), 2u);
  EXPECT_EQ(bus->contender_count(), 0u);
  ctl[1]->request_tx(Frame::make_data(0x55, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(rec[1]->cnf.size(), 1u);
  ASSERT_EQ(rec[0]->rx.size(), 1u);
  EXPECT_EQ(rec[0]->rx[0].frame.id, 0x55u);
  EXPECT_EQ(bus->stats().ok, 1u);
}

}  // namespace
}  // namespace canely::can
