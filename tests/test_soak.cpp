// Long-haul soak: a 16-node system living through 20 simulated seconds of
// continuous traffic, periodic churn and background faults.  Catches slow
// state leaks (counters that never reset, sets that only grow, timers
// that multiply) that short scenario tests cannot see.

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

TEST(Soak, TwentySimulatedSecondsOfLife) {
  constexpr std::size_t kN = 16;
  Params params;
  params.n = kN;
  params.tx_delay_bound = Time::ms(4);
  Cluster c{kN, params};

  sim::Rng rng{20260706};
  can::RandomFaults faults{rng.fork(), 0.002, 0.002};
  c.bus().set_fault_injector(&faults);

  // 10 permanent members with mixed traffic; 6 churners.
  for (std::size_t i = 0; i < 10; ++i) c.node(i).join();
  c.settle(Time::ms(600));
  NodeSet stable = NodeSet::first_n(10);
  ASSERT_TRUE(c.views_agree(stable));
  for (std::size_t i = 0; i < 10; i += 2) {
    c.node(i).start_periodic(1, Time::ms(3 + static_cast<int>(i)),
                             {static_cast<std::uint8_t>(i)});
  }

  // Churners 10..15 join and leave in rotation, forever.
  bool in[6] = {false, false, false, false, false, false};
  for (int round = 0; round < 40; ++round) {
    const std::size_t k = static_cast<std::size_t>(rng.below(6));
    const auto id = static_cast<can::NodeId>(10 + k);
    if (!in[k]) {
      c.node(id).join();
      in[k] = true;
    } else {
      c.node(id).leave();
      in[k] = false;
    }
    c.settle(Time::ms(500));

    NodeSet expect = stable;
    for (std::size_t j = 0; j < 6; ++j) {
      if (in[j]) expect.insert(static_cast<can::NodeId>(10 + j));
    }
    ASSERT_TRUE(c.views_agree(expect))
        << "round " << round << " expect=" << expect
        << " got=" << c.any_view();
  }

  // ~20 s simulated.  Sanity on aggregates:
  EXPECT_GT(c.engine().now(), Time::sec(20));
  const auto& bs = c.bus().stats();
  EXPECT_GT(bs.ok, 10'000u);                      // the bus carried real load
  EXPECT_LT(bs.bits_wasted, bs.bits_total / 5);   // faults stayed background
  // No runaway state: pending timers stay bounded (every node holds a
  // handful of surveillance + cycle + traffic timers, not thousands).
  EXPECT_LT(c.engine().pending(), 1000u);
  // Permanent members never emitted a false failure-sign for each other:
  // their views still contain all of `stable`.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(stable.subset_of(c.node(i).view())) << "node " << i;
  }
  // Stats plumbing agrees with membership history.
  const auto st = c.node(0).stats();
  EXPECT_GT(st.rha_executions, 30u);   // one per churn round at least
  EXPECT_GT(st.views_installed, 30u);
  EXPECT_EQ(st.failures_signalled, 0u);
}

}  // namespace
}  // namespace canely::testing
