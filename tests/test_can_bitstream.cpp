// Unit tests for CAN frame serialization: CRC-15, bit stuffing, exact
// on-wire lengths (src/can/bitstream.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "can/bitstream.hpp"
#include "sim/rng.hpp"

namespace canely::can {
namespace {

TEST(Crc15, KnownVectors) {
  // CRC of the empty sequence is 0 (register starts at 0).
  EXPECT_EQ(crc15({}), 0);
  // A single recessive bit: register shifts in a 1 -> XOR with polynomial.
  const std::uint8_t one[] = {1};
  EXPECT_EQ(crc15(one), 0x4599);
  // Linearity sanity: CRC(0 bit) leaves register at 0.
  const std::uint8_t zero[] = {0};
  EXPECT_EQ(crc15(zero), 0);
}

TEST(Crc15, DetectsSingleBitFlips) {
  sim::Rng rng{123};
  std::vector<std::uint8_t> bits(64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  const auto reference = crc15(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] ^= 1;
    EXPECT_NE(crc15(bits), reference) << "flip at " << i;
    bits[i] ^= 1;
  }
}

TEST(Crc15, DetectsBurstsUpTo15Bits) {
  sim::Rng rng{77};
  std::vector<std::uint8_t> bits(80);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
  const auto reference = crc15(bits);
  for (std::size_t len = 1; len <= 15; ++len) {
    auto corrupted = bits;
    for (std::size_t i = 0; i < len; ++i) corrupted[10 + i] ^= 1;
    EXPECT_NE(crc15(corrupted), reference) << "burst length " << len;
  }
}

TEST(Stuffing, InsertsComplementAfterFiveEqualBits) {
  const std::vector<std::uint8_t> five_zero{0, 0, 0, 0, 0};
  const auto out = stuff(five_zero);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[5], 1);  // complement inserted

  const std::vector<std::uint8_t> five_one{1, 1, 1, 1, 1};
  const auto out2 = stuff(five_one);
  ASSERT_EQ(out2.size(), 6u);
  EXPECT_EQ(out2[5], 0);
}

TEST(Stuffing, StuffBitStartsNewRun) {
  // 0 0 0 0 0 [1] 1 1 1 1 -> the inserted 1 plus four more 1s = run of 5
  // -> another stuff bit (0).
  const std::vector<std::uint8_t> bits{0, 0, 0, 0, 0, 1, 1, 1, 1};
  const auto out = stuff(bits);
  // After position 4 a '1' is inserted; the four data 1s then complete a
  // run of five 1s -> '0' inserted.
  EXPECT_EQ(out.size(), bits.size() + 2);
  EXPECT_EQ(count_stuff_bits(bits), 2u);
}

TEST(Stuffing, AlternatingBitsNeedNoStuffing) {
  std::vector<std::uint8_t> bits(100);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = i % 2;
  EXPECT_EQ(count_stuff_bits(bits), 0u);
  EXPECT_EQ(stuff(bits).size(), bits.size());
}

TEST(Stuffing, WorstCasePattern) {
  // The classic worst case: 0000 1111 0000 ... after an initial run of 5
  // yields one stuff bit per 4 data bits.
  std::vector<std::uint8_t> bits;
  for (int i = 0; i < 5; ++i) bits.push_back(0);
  for (int block = 0; block < 10; ++block) {
    for (int i = 0; i < 4; ++i) bits.push_back(block % 2 ? 0 : 1);
  }
  EXPECT_EQ(count_stuff_bits(bits), 11u);  // 1 + one per block
}

TEST(Stuffing, CountMatchesStuffOutput) {
  sim::Rng rng{2026};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> bits(1 + rng.below(120));
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    EXPECT_EQ(stuff(bits).size(), bits.size() + count_stuff_bits(bits));
  }
}

TEST(RawBits, BaseDataFrameLayout) {
  // Base data frame: SOF + 11 id + RTR + IDE + r0 + 4 DLC + data + 15 CRC.
  const std::uint8_t payload[] = {0xAA};
  const Frame f = Frame::make_data(0x555, payload);
  const auto bits = raw_bits(f);
  EXPECT_EQ(bits.size(), 1u + 11 + 1 + 1 + 1 + 4 + 8 + 15);
  EXPECT_EQ(bits[0], 0);  // SOF dominant
  // Identifier 0x555 = 101 0101 0101 MSB-first.
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(bits[1 + static_cast<std::size_t>(i)], (i % 2 == 0) ? 1 : 0);
  }
  EXPECT_EQ(bits[12], 0);  // RTR dominant for data frame
  EXPECT_EQ(bits[13], 0);  // IDE dominant for base format
}

TEST(RawBits, RemoteFrameCarriesNoData) {
  const Frame f = Frame::make_remote(0x123, 4);
  const auto bits = raw_bits(f);
  // SOF + 11 + RTR + IDE + r0 + DLC + CRC, no data bits.
  EXPECT_EQ(bits.size(), 1u + 11 + 1 + 1 + 1 + 4 + 15);
  EXPECT_EQ(bits[12], 1);  // RTR recessive for remote frame
}

TEST(RawBits, ExtendedFrameLayout) {
  const std::uint8_t payload[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const Frame f = Frame::make_data(0x1234567, payload, IdFormat::kExtended);
  const auto bits = raw_bits(f);
  // SOF + 11 + SRR + IDE + 18 + RTR + r1 + r0 + DLC + 64 data + CRC.
  EXPECT_EQ(bits.size(), 1u + 11 + 1 + 1 + 18 + 1 + 1 + 1 + 4 + 64 + 15);
  EXPECT_EQ(bits[12], 1);  // SRR recessive
  EXPECT_EQ(bits[13], 1);  // IDE recessive for extended format
}

TEST(FrameBits, WithinTheoreticalBounds) {
  // Exact length must always lie between the no-stuffing minimum and the
  // Tindell/Burns worst case.
  sim::Rng rng{99};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t dlc = rng.below(9);
    std::vector<std::uint8_t> payload(dlc);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto fmt = rng.chance(0.5) ? IdFormat::kBase : IdFormat::kExtended;
    const auto id = static_cast<std::uint32_t>(
        rng.below(fmt == IdFormat::kBase ? 0x800 : 0x20000000));
    const Frame f = Frame::make_data(id, payload, fmt);
    const std::size_t exact = frame_bits_on_wire(f);
    const std::size_t min_len =
        (fmt == IdFormat::kBase ? 34u : 54u) + 8 * dlc + kFrameTailBits;
    EXPECT_GE(exact, min_len);
    EXPECT_LE(exact, max_frame_bits_on_wire(dlc, fmt));
  }
}

TEST(FrameBits, ClassicReferenceLengths) {
  // An 8-byte base-format data frame is at most 135 bits papers usually
  // quote (125 + 10-tail... conventions differ); our exact computation
  // must match the analytic worst case formula.
  EXPECT_EQ(max_frame_bits_on_wire(8, IdFormat::kBase), 34 + 64 + 24 + 10u);
  EXPECT_EQ(max_frame_bits_on_wire(0, IdFormat::kBase), 34 + 8 + 10u);
  EXPECT_EQ(max_frame_bits_on_wire(8, IdFormat::kExtended), 54 + 64 + 29 + 10u);
}

TEST(FrameBits, RemoteShorterThanData) {
  const std::uint8_t payload[] = {0, 0, 0, 0};
  const Frame d = Frame::make_data(0x100, payload);
  const Frame r = Frame::make_remote(0x100, 4);
  EXPECT_LT(frame_bits_on_wire(r), frame_bits_on_wire(d));
}

TEST(Frame, ArbitrationOrdering) {
  // Lower identifier wins.
  EXPECT_LT(Frame::make_data(0x100, {}).arbitration_key(),
            Frame::make_data(0x200, {}).arbitration_key());
  // Data frame beats remote frame with the same identifier (RTR dominant).
  EXPECT_LT(Frame::make_data(0x100, {}).arbitration_key(),
            Frame::make_remote(0x100).arbitration_key());
  // Base frame beats extended frame with the same leading 11 bits.
  EXPECT_LT(Frame::make_data(0x100, {}).arbitration_key(),
            Frame::make_data(0x100 << 18, {}, IdFormat::kExtended)
                .arbitration_key());
  // Extended id ordering follows the 29-bit value.
  EXPECT_LT(
      Frame::make_data(0x100, {}, IdFormat::kExtended).arbitration_key(),
      Frame::make_data(0x101, {}, IdFormat::kExtended).arbitration_key());
}

TEST(Frame, EqualityIsWireIdentity) {
  const std::uint8_t a[] = {1, 2};
  const std::uint8_t b[] = {1, 3};
  EXPECT_EQ(Frame::make_data(5, a), Frame::make_data(5, a));
  EXPECT_FALSE(Frame::make_data(5, a) == Frame::make_data(5, b));
  EXPECT_FALSE(Frame::make_data(5, a) == Frame::make_remote(5, 2));
  // Remote frames with equal id+dlc are identical regardless of data array.
  Frame r1 = Frame::make_remote(9, 0);
  Frame r2 = Frame::make_remote(9, 0);
  r2.data[0] = 0xFF;  // junk in the unused data field
  EXPECT_EQ(r1, r2);
}

TEST(Frame, InvalidConstructionThrows) {
  std::vector<std::uint8_t> nine(9);
  EXPECT_THROW((void)Frame::make_data(1, nine), std::invalid_argument);
  EXPECT_THROW((void)Frame::make_remote(1, 9), std::invalid_argument);
}

/// Ground-truth wire length, bypassing the memo entirely.
std::size_t wire_bits_fresh(const Frame& f) {
  const auto raw = raw_bits(f);
  return raw.size() + count_stuff_bits(raw) + kFrameTailBits;
}

TEST(WireLength, MemoMatchesRecomputationAcrossAllShapes) {
  // Property: for every format x {data, remote} x DLC, the memoized
  // frame_bits_on_wire equals a from-scratch recomputation — on the first
  // call (cold memo) and on a repeat call (memo hit) — and the
  // allocation-free *_into paths produce the same bits as the
  // vector-returning ones.
  sim::Rng rng{0xB175};
  for (const IdFormat format : {IdFormat::kBase, IdFormat::kExtended}) {
    for (const bool remote : {false, true}) {
      for (std::uint8_t dlc = 0; dlc <= 8; ++dlc) {
        for (int rep = 0; rep < 8; ++rep) {
          const std::uint32_t id = static_cast<std::uint32_t>(rng.below(
              format == IdFormat::kBase ? 0x800 : 0x2000'0000));
          Frame f;
          if (remote) {
            f = Frame::make_remote(id, dlc, format);
          } else {
            std::vector<std::uint8_t> payload(dlc);
            for (auto& b : payload) {
              b = static_cast<std::uint8_t>(rng.below(256));
            }
            f = Frame::make_data(id, payload, format);
          }
          const std::size_t expect = wire_bits_fresh(f);
          ASSERT_EQ(frame_bits_on_wire(f), expect) << f;  // cold memo
          ASSERT_EQ(frame_bits_on_wire(f), expect) << f;  // memo hit

          std::uint8_t raw_buf[kMaxRawBits];
          const auto raw_vec = raw_bits(f);
          const std::size_t raw_n = raw_bits_into(f, raw_buf);
          ASSERT_EQ(raw_n, raw_vec.size()) << f;
          ASSERT_TRUE(std::equal(raw_vec.begin(), raw_vec.end(), raw_buf))
              << f;

          std::uint8_t stuffed_buf[kMaxStuffedBits];
          const auto stuffed_vec = stuff(raw_vec);
          const std::size_t stuffed_n = stuff_into(raw_vec, stuffed_buf);
          ASSERT_EQ(stuffed_n, stuffed_vec.size()) << f;
          ASSERT_TRUE(std::equal(stuffed_vec.begin(), stuffed_vec.end(),
                                 stuffed_buf))
              << f;
        }
      }
    }
  }
}

TEST(WireLength, MemoInvalidatedByFieldMutation) {
  // The memo key mirrors every serialized field; mutating a frame after a
  // length query must trigger recomputation, never a stale hit.
  const std::uint8_t payload[] = {0xAA, 0x55, 0x00, 0xFF};
  Frame f = Frame::make_data(0x123, payload);
  (void)frame_bits_on_wire(f);  // prime the memo

  f.data[2] = 0xFF;  // changes stuffing runs
  EXPECT_EQ(frame_bits_on_wire(f), wire_bits_fresh(f));
  f.id = 0x000;
  EXPECT_EQ(frame_bits_on_wire(f), wire_bits_fresh(f));
  f.dlc = 2;
  EXPECT_EQ(frame_bits_on_wire(f), wire_bits_fresh(f));
  f.remote = true;
  EXPECT_EQ(frame_bits_on_wire(f), wire_bits_fresh(f));
  f.format = IdFormat::kExtended;
  EXPECT_EQ(frame_bits_on_wire(f), wire_bits_fresh(f));
}

TEST(WireLength, FirstDivergentWireBitMatchesNaiveComparison) {
  // The allocation-free collision helper must agree with a direct
  // comparison of the stuffed streams.
  sim::Rng rng{0xD1FF};
  for (int rep = 0; rep < 200; ++rep) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.below(0x800));
    std::vector<std::uint8_t> pa(rng.below(9));
    std::vector<std::uint8_t> pb(rng.below(9));
    for (auto& b : pa) b = static_cast<std::uint8_t>(rng.below(256));
    for (auto& b : pb) b = static_cast<std::uint8_t>(rng.below(256));
    const Frame a = Frame::make_data(id, pa);
    const Frame b = rng.below(4) == 0 ? Frame::make_remote(id, a.dlc)
                                      : Frame::make_data(id, pb);

    const auto wa = stuff(raw_bits(a));
    const auto wb = stuff(raw_bits(b));
    const std::size_t n = std::min(wa.size(), wb.size());
    std::int32_t want = static_cast<std::int32_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (wa[i] != wb[i]) {
        want = static_cast<std::int32_t>(i);
        break;
      }
    }
    EXPECT_EQ(first_divergent_wire_bit(a, b), want) << a << " vs " << b;
    EXPECT_EQ(first_divergent_wire_bit(b, a), want) << a << " vs " << b;
  }
}

}  // namespace
}  // namespace canely::can
