// Integration tests: the full CANELy stack — driver, FDA, RHA, failure
// detection, membership — running over the simulated bus.

#include <gtest/gtest.h>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

TEST(Integration, FourNodesBootstrapACommonView) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(4)))
      << "view=" << c.any_view();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(c.node(i).is_member()) << "node " << i;
  }
}

TEST(Integration, SingleNodeBootstrapsAlone) {
  Cluster c{1};
  c.node(0).join();
  c.settle(Time::ms(500));
  EXPECT_EQ(c.node(0).view(), (NodeSet{0}));
  EXPECT_TRUE(c.node(0).is_member());
}

TEST(Integration, LateJoinerIsAdmitted) {
  Cluster c{4};
  for (std::size_t i = 0; i < 3; ++i) c.node(i).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));

  c.node(3).join();
  c.settle(Time::ms(200));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(4)))
      << "view=" << c.any_view();
  EXPECT_TRUE(c.node(3).is_member());
}

TEST(Integration, CrashIsDetectedAndRemovedFromView) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  c.node(2).crash();
  c.settle(Time::ms(200));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 3})) << "view=" << c.any_view();
}

TEST(Integration, FailureNotificationIsTimelyAndConsistent) {
  Params p;
  p.heartbeat_period = Time::ms(10);
  p.membership_cycle = Time::ms(30);
  Cluster c{4, p};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  // Record when each surviving node hears about the failure.
  std::array<Time, 4> heard{};
  heard.fill(Time::max());
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).on_membership_change(
        [&c, &heard, i](NodeSet /*active*/, NodeSet failed) {
          if (failed.contains(2) && heard[i] == Time::max()) {
            heard[i] = c.engine().now();
          }
        });
  }
  const Time t_crash = c.engine().now();
  c.node(2).crash();
  c.settle(Time::ms(200));

  for (std::size_t i : {0u, 1u, 3u}) {
    ASSERT_NE(heard[i], Time::max()) << "node " << i << " never notified";
    const Time latency = heard[i] - t_crash;
    // Detection bound: Th + Ttd (surveillance) + FDA dissemination.
    EXPECT_LT(latency, Time::ms(15)) << "node " << i;
    EXPECT_GT(latency, Time::zero());
  }
  // Consistency: all survivors notified within one broadcast of each other.
  const Time spread =
      std::max({heard[0], heard[1], heard[3]}) -
      std::min({heard[0], heard[1], heard[3]});
  EXPECT_LT(spread, Time::ms(1));
}

TEST(Integration, VoluntaryLeaveShrinksView) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  bool leaver_notified = false;
  c.node(1).on_membership_change(
      [&](NodeSet /*active*/, NodeSet failed) {
        if (failed.contains(1)) leaver_notified = true;
      });
  c.node(1).leave();
  c.settle(Time::ms(200));
  EXPECT_EQ(c.node(0).view(), (NodeSet{0, 2, 3}));
  EXPECT_EQ(c.node(2).view(), (NodeSet{0, 2, 3}));
  EXPECT_EQ(c.node(3).view(), (NodeSet{0, 2, 3}));
  EXPECT_FALSE(c.node(1).is_member());
  EXPECT_TRUE(leaver_notified);
}

TEST(Integration, ImplicitHeartbeatsSuppressExplicitLifeSigns) {
  Params p;
  p.heartbeat_period = Time::ms(10);
  Cluster c{3, p};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));

  // Node 0 chatters every 2 ms (< Th): it should emit no further ELS.
  // Node 1 stays quiet: it must emit roughly one ELS per Th.
  c.node(0).start_periodic(1, Time::ms(2), {0xAB});
  const auto els0_before = c.node(0).fd().els_sent();
  const auto els1_before = c.node(1).fd().els_sent();
  c.settle(Time::ms(100));
  EXPECT_EQ(c.node(0).fd().els_sent(), els0_before);
  const auto els1 = c.node(1).fd().els_sent() - els1_before;
  EXPECT_GE(els1, 8u);   // ~100ms / 10ms, minus scheduling slack
  EXPECT_LE(els1, 12u);
}

TEST(Integration, BusyTrafficDoesNotMaskRealCrash) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).start_periodic(1, Time::ms(3), {static_cast<std::uint8_t>(i)});
  }
  c.settle(Time::ms(50));
  c.node(3).crash();
  c.settle(Time::ms(200));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 2})) << "view=" << c.any_view();
}

TEST(Integration, TwoSimultaneousCrashes) {
  Cluster c{5};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(5)));
  c.node(1).crash();
  c.node(4).crash();
  c.settle(Time::ms(300));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 2, 3})) << "view=" << c.any_view();
}

TEST(Integration, RejoinAfterLeave) {
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));
  c.node(2).leave();
  c.settle(Time::ms(200));
  ASSERT_TRUE(c.node(0).view() == (NodeSet{0, 1}));
  c.node(2).join();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(3))) << "view=" << c.any_view();
}

TEST(Integration, ViewSurvivesQuietPeriods) {
  // With no changes pending, cycles skip RHA entirely (s24-s25); the view
  // must remain stable and consistent over many cycles.
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));
  const auto views_before = c.node(0).membership().views_installed();
  c.settle(Time::sec(2));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(3)));
  EXPECT_EQ(c.node(0).membership().views_installed(), views_before);
}

TEST(Integration, AppTrafficFlowsUnderMembership) {
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  int received = 0;
  c.node(2).on_message([&](can::NodeId from, std::uint8_t stream,
                           std::span<const std::uint8_t> data, bool own) {
    if (!own && from == 0 && stream == 7 && data.size() == 3) ++received;
  });
  const std::uint8_t payload[] = {1, 2, 3};
  c.node(0).send(7, payload);
  c.node(0).send(7, payload);
  c.settle(Time::ms(10));
  EXPECT_EQ(received, 2);
}

}  // namespace
}  // namespace canely::testing
