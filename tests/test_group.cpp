// Tests for the process-group membership extension (canely/group.hpp):
// group views are the intersection of announcements and the site view,
// and site failures cascade into groups consistently.

#include <gtest/gtest.h>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

class GroupTest : public ::testing::Test {
 protected:
  GroupTest() : c{5} {
    c.join_all();
    c.settle(Time::ms(500));
  }
  Cluster c;
};

TEST_F(GroupTest, JoinGroupVisibleEverywhere) {
  c.node(0).join_group(7);
  c.node(2).join_group(7);
  c.settle(Time::ms(10));
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.node(i).group_view(7), (NodeSet{0, 2})) << "node " << i;
  }
  EXPECT_TRUE(c.node(0).groups().in_group(7));
  EXPECT_FALSE(c.node(1).groups().in_group(7));
}

TEST_F(GroupTest, GroupsAreIndependent) {
  c.node(0).join_group(1);
  c.node(1).join_group(2);
  c.settle(Time::ms(10));
  EXPECT_EQ(c.node(3).group_view(1), (NodeSet{0}));
  EXPECT_EQ(c.node(3).group_view(2), (NodeSet{1}));
  EXPECT_TRUE(c.node(3).group_view(3).empty());
}

TEST_F(GroupTest, LeaveGroupShrinksView) {
  c.node(0).join_group(5);
  c.node(1).join_group(5);
  c.settle(Time::ms(10));
  ASSERT_EQ(c.node(4).group_view(5), (NodeSet{0, 1}));
  c.node(0).leave_group(5);
  c.settle(Time::ms(10));
  EXPECT_EQ(c.node(4).group_view(5), (NodeSet{1}));
}

TEST_F(GroupTest, SiteFailureCascadesIntoGroupView) {
  c.node(0).join_group(9);
  c.node(1).join_group(9);
  c.node(2).join_group(9);
  c.settle(Time::ms(10));
  ASSERT_EQ(c.node(3).group_view(9), (NodeSet{0, 1, 2}));

  NodeSet seen_view;
  int notifications = 0;
  c.node(3).on_group_change([&](GroupId g, NodeSet members) {
    if (g == 9) {
      seen_view = members;
      ++notifications;
    }
  });
  c.node(1).crash();
  c.settle(Time::ms(100));
  EXPECT_EQ(c.node(3).group_view(9), (NodeSet{0, 2}));
  EXPECT_EQ(seen_view, (NodeSet{0, 2}));
  EXPECT_GE(notifications, 1);
}

TEST_F(GroupTest, SiteLeaveCascadesIntoGroupView) {
  c.node(2).join_group(4);
  c.node(3).join_group(4);
  c.settle(Time::ms(10));
  c.node(2).leave();
  c.settle(Time::ms(200));
  EXPECT_EQ(c.node(0).group_view(4), (NodeSet{3}));
}

TEST_F(GroupTest, NonSiteMemberCannotJoinGroup) {
  Cluster fresh{3};
  fresh.node(0).join();
  fresh.node(1).join();
  fresh.settle(Time::ms(500));
  // Node 2 never joined the site membership: group join is refused.
  fresh.node(2).join_group(1);
  fresh.settle(Time::ms(50));
  EXPECT_TRUE(fresh.node(0).group_view(1).empty());
}

TEST_F(GroupTest, GroupViewsConsistentUnderChurn) {
  for (std::size_t i = 0; i < 5; ++i) c.node(i).join_group(2);
  c.settle(Time::ms(10));
  c.node(4).leave_group(2);
  c.node(3).crash();
  c.settle(Time::ms(100));
  const NodeSet expect{0, 1, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.node(i).group_view(2), expect) << "node " << i;
  }
}

TEST_F(GroupTest, RejoinGroupAfterLeave) {
  c.node(1).join_group(6);
  c.settle(Time::ms(10));
  c.node(1).leave_group(6);
  c.settle(Time::ms(10));
  EXPECT_TRUE(c.node(0).group_view(6).empty());
  c.node(1).join_group(6);
  c.settle(Time::ms(10));
  EXPECT_EQ(c.node(0).group_view(6), (NodeSet{1}));
}

}  // namespace
}  // namespace canely::testing
