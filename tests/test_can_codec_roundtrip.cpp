// Property tests for the frame codec: serialize -> (stuff -> destuff) ->
// decode must reproduce every frame bit-exactly, and every single-bit
// corruption must be caught (MCAN2's receiver-side error detection) by
// CRC, format rules, or stuffing rules.

#include <gtest/gtest.h>

#include "can/bitstream.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace canely::can {
namespace {

Frame random_frame(sim::Rng& rng) {
  const bool ext = rng.chance(0.5);
  const bool remote = rng.chance(0.3);
  const auto id = static_cast<std::uint32_t>(
      rng.below(ext ? 0x20000000 : 0x800));
  const std::size_t dlc = rng.below(9);
  if (remote) {
    return Frame::make_remote(id, static_cast<std::uint8_t>(dlc),
                              ext ? IdFormat::kExtended : IdFormat::kBase);
  }
  std::vector<std::uint8_t> payload(dlc);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  return Frame::make_data(id, payload,
                          ext ? IdFormat::kExtended : IdFormat::kBase);
}

class CodecRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundtrip, EncodeDecodeIsIdentity) {
  sim::Rng rng{GetParam()};
  for (int trial = 0; trial < 100; ++trial) {
    const Frame f = random_frame(rng);
    const auto raw = raw_bits(f);
    const auto decoded = decode_raw_bits(raw);
    ASSERT_TRUE(decoded.has_value()) << f;
    EXPECT_EQ(*decoded, f);
    EXPECT_EQ(decoded->format, f.format);
    EXPECT_EQ(decoded->dlc, f.dlc);
  }
}

TEST_P(CodecRoundtrip, StuffDestuffIsIdentity) {
  sim::Rng rng{GetParam() ^ 0x5117};
  for (int trial = 0; trial < 100; ++trial) {
    const Frame f = random_frame(rng);
    const auto raw = raw_bits(f);
    const auto stuffed = stuff(raw);
    const auto unstuffed = destuff(stuffed);
    ASSERT_TRUE(unstuffed.has_value());
    EXPECT_EQ(*unstuffed, raw);
  }
}

TEST_P(CodecRoundtrip, EverySingleBitFlipIsDetected) {
  sim::Rng rng{GetParam() ^ 0xF11B};
  for (int trial = 0; trial < 10; ++trial) {
    const Frame f = random_frame(rng);
    auto raw = raw_bits(f);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      raw[i] ^= 1;
      const auto decoded = decode_raw_bits(raw);
      // Either rejected outright, or decoded into a DIFFERENT frame is
      // impossible: the CRC covers every bit before it, and a flip inside
      // the CRC field breaks the comparison.  Exception-free guarantee:
      EXPECT_FALSE(decoded.has_value())
          << "undetected flip at bit " << i << " of " << f;
      raw[i] ^= 1;
    }
  }
}

TEST_P(CodecRoundtrip, StuffViolationsAreDetected) {
  sim::Rng rng{GetParam() ^ 0xABCD};
  for (int trial = 0; trial < 50; ++trial) {
    const Frame f = random_frame(rng);
    const auto stuffed = stuff(raw_bits(f));
    // Force six equal bits somewhere by overwriting a stuff position:
    // find any position where out[i] != out[i-1] after 5-run; simpler:
    // append five copies of the last bit (guaranteed violation window).
    auto corrupted = stuffed;
    const std::uint8_t last = corrupted.back();
    for (int k = 0; k < 6; ++k) corrupted.push_back(last);
    EXPECT_FALSE(destuff(corrupted).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundtrip,
                         ::testing::Values(3u, 17u, 4242u));

// --- TimeSeries stats helper -------------------------------------------------

TEST(TimeSeries, SummaryStatistics) {
  sim::TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.mean(), sim::Time::zero());
  for (int v : {1, 2, 3, 4, 5}) ts.add(sim::Time::ms(v));
  EXPECT_EQ(ts.count(), 5u);
  EXPECT_EQ(ts.min(), sim::Time::ms(1));
  EXPECT_EQ(ts.max(), sim::Time::ms(5));
  EXPECT_EQ(ts.mean(), sim::Time::ms(3));
  EXPECT_NEAR(ts.stddev_us(), 1581.1, 1.0);
}

TEST(TimeSeries, Percentiles) {
  sim::TimeSeries ts;
  for (int v = 1; v <= 100; ++v) ts.add(sim::Time::us(v));
  EXPECT_EQ(ts.percentile(0), sim::Time::us(1));
  EXPECT_EQ(ts.percentile(100), sim::Time::us(100));
  EXPECT_NEAR(static_cast<double>(ts.percentile(50).to_us()), 50.0, 1.0);
  EXPECT_GE(ts.percentile(99).to_us(), 98);
}

}  // namespace
}  // namespace canely::can
