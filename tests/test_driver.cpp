// Tests for the CAN standard layer + extension (paper §5, Figure 4) and
// the mid / NodeSet value types.

#include <gtest/gtest.h>

#include <vector>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

// ------------------------------------------------------------------ NodeSet --

TEST(NodeSet, BasicSetAlgebra) {
  NodeSet a{1, 2, 3};
  NodeSet b{3, 4};
  EXPECT_EQ(a.united(b), (NodeSet{1, 2, 3, 4}));
  EXPECT_EQ(a.intersected(b), (NodeSet{3}));
  EXPECT_EQ(a.minus(b), (NodeSet{1, 2}));
  EXPECT_TRUE((NodeSet{1, 2}).subset_of(a));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(NodeSet{}.empty());
}

TEST(NodeSet, FirstN) {
  EXPECT_EQ(NodeSet::first_n(3), (NodeSet{0, 1, 2}));
  EXPECT_EQ(NodeSet::first_n(0), NodeSet{});
  EXPECT_EQ(NodeSet::first_n(64).size(), 64u);
}

TEST(NodeSet, IterationInOrder) {
  NodeSet s{5, 1, 63, 0};
  std::vector<int> seen;
  for (can::NodeId id : s) seen.push_back(id);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 5, 63}));
}

TEST(NodeSet, InsertEraseContains) {
  NodeSet s;
  s.insert(7);
  EXPECT_TRUE(s.contains(7));
  s.erase(7);
  EXPECT_FALSE(s.contains(7));
  s.erase(7);  // idempotent
  EXPECT_TRUE(s.empty());
}

// --------------------------------------------------------------------- Mid --

TEST(Mid, EncodeDecodeRoundTrip) {
  for (auto type : {MsgType::kFda, MsgType::kEls, MsgType::kJoin,
                    MsgType::kLeave, MsgType::kRha, MsgType::kApp}) {
    for (std::uint8_t ref : {0, 1, 17, 255}) {
      for (can::NodeId node : {0, 5, 63}) {
        const Mid m{type, ref, node};
        const auto f = can::Frame::make_remote(m.encode(), 0,
                                               can::IdFormat::kExtended);
        const auto d = Mid::decode(f);
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(*d, m);
      }
    }
  }
}

TEST(Mid, BaseFormatFramesAreNotCanely) {
  EXPECT_FALSE(Mid::decode(can::Frame::make_data(0x123, {})).has_value());
}

TEST(Mid, TypeDominatesBusPriority) {
  // FDA failure-signs must win arbitration against everything else.
  const auto fda = can::Frame::make_remote(Mid{MsgType::kFda, 0, 63}.encode(),
                                           0, can::IdFormat::kExtended);
  const auto els = can::Frame::make_remote(Mid{MsgType::kEls, 0, 0}.encode(),
                                           0, can::IdFormat::kExtended);
  const std::uint8_t payload[8] = {};
  const auto app = can::Frame::make_data(Mid{MsgType::kApp, 0, 0}.encode(),
                                         payload, can::IdFormat::kExtended);
  EXPECT_LT(fda.arbitration_key(), els.arbitration_key());
  EXPECT_LT(els.arbitration_key(), app.arbitration_key());
}

TEST(Mid, SameFailedNodeSameIdentifier) {
  // Clustering precondition: failure-signs for node r are wire-identical
  // no matter who transmits them.
  EXPECT_EQ((Mid{MsgType::kFda, 0, 9}).encode(),
            (Mid{MsgType::kFda, 0, 9}).encode());
  EXPECT_NE((Mid{MsgType::kFda, 0, 9}).encode(),
            (Mid{MsgType::kFda, 0, 10}).encode());
}

// ------------------------------------------------------------------ driver --

class DriverTest : public ::testing::Test {
 protected:
  Cluster c{3};
};

TEST_F(DriverTest, DataReqDeliversIndAndNty) {
  std::vector<Mid> inds, ntys;
  bool own_at_sender = false;
  c.node(1).driver().on_data_ind(
      MsgType::kApp, [&](const Mid& m, std::span<const std::uint8_t> d,
                         bool /*own*/) {
        EXPECT_EQ(d.size(), 2u);
        inds.push_back(m);
      });
  c.node(1).driver().on_data_nty([&](const Mid& m) { ntys.push_back(m); });
  c.node(0).driver().on_data_ind(
      MsgType::kApp,
      [&](const Mid&, std::span<const std::uint8_t>, bool own) {
        own_at_sender = own;
      });

  const std::uint8_t d[] = {1, 2};
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 3, 0}, d);
  c.settle(Time::ms(1));
  ASSERT_EQ(inds.size(), 1u);
  EXPECT_EQ(inds[0].ref, 3);
  ASSERT_EQ(ntys.size(), 1u);  // .nty fired for the data frame
  EXPECT_TRUE(own_at_sender);  // own transmissions included (§5)
}

TEST_F(DriverTest, NtyCarriesControlFieldOnly) {
  // The handler signature enforces it: no payload parameter exists.
  Mid seen{};
  c.node(1).driver().on_data_nty([&](const Mid& m) { seen = m; });
  const std::uint8_t d[] = {0xAA, 0xBB, 0xCC};
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 9, 0}, d);
  c.settle(Time::ms(1));
  EXPECT_EQ(seen.ref, 9);
  EXPECT_EQ(seen.node, 0);
}

TEST_F(DriverTest, RemoteFramesDoNotTriggerNty) {
  int ntys = 0;
  c.node(1).driver().on_data_nty([&](const Mid&) { ++ntys; });
  c.node(0).driver().can_rtr_req(Mid{MsgType::kEls, 0, 0});
  c.settle(Time::ms(1));
  // One ELS remote frame -> zero .nty (it only covers data frames).
  EXPECT_EQ(ntys, 0);
}

TEST_F(DriverTest, CnfRoutedByType) {
  int data_cnf = 0, rtr_cnf = 0;
  c.node(0).driver().on_data_cnf(MsgType::kApp, [&](const Mid&) { ++data_cnf; });
  c.node(0).driver().on_rtr_cnf(MsgType::kEls, [&](const Mid&) { ++rtr_cnf; });
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 0, 0}, {});
  c.node(0).driver().can_rtr_req(Mid{MsgType::kEls, 0, 0});
  c.settle(Time::ms(1));
  EXPECT_EQ(data_cnf, 1);
  EXPECT_EQ(rtr_cnf, 1);
}

TEST_F(DriverTest, AbortDropsPendingByExactMid) {
  // Queue three frames; the bus is busy with the first, abort the second.
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 1, 0}, {});
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 2, 0}, {});
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 3, 0}, {});
  int received = 0;
  c.node(1).driver().on_data_ind(
      MsgType::kApp,
      [&](const Mid& m, std::span<const std::uint8_t>, bool) {
        EXPECT_NE(m.ref, 2);
        ++received;
      });
  c.engine().run_until(Time::us(10));  // first frame in flight
  EXPECT_EQ(c.node(0).driver().can_abort_req(Mid{MsgType::kApp, 2, 0}), 1u);
  c.settle(Time::ms(2));
  EXPECT_EQ(received, 2);
}

TEST_F(DriverTest, AbortMissesAlreadyTransmitted) {
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 1, 0}, {});
  c.settle(Time::ms(1));
  EXPECT_EQ(c.node(0).driver().can_abort_req(Mid{MsgType::kApp, 1, 0}), 0u);
}

TEST_F(DriverTest, RtrIndIncludesOwnTransmissions) {
  bool own_seen = false;
  c.node(0).driver().on_rtr_ind(MsgType::kEls, [&](const Mid&, bool own) {
    own_seen = own_seen || own;
  });
  c.node(0).driver().can_rtr_req(Mid{MsgType::kEls, 0, 0});
  c.settle(Time::ms(1));
  EXPECT_TRUE(own_seen);
}

TEST_F(DriverTest, MultipleNtySubscribersAllFire) {
  int a = 0, b = 0;
  c.node(1).driver().on_data_nty([&](const Mid&) { ++a; });
  c.node(1).driver().on_data_nty([&](const Mid&) { ++b; });
  c.node(0).driver().can_data_req(Mid{MsgType::kApp, 0, 0}, {});
  c.settle(Time::ms(1));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

}  // namespace
}  // namespace canely::testing
