// Adversarial property tests: faults aimed at the protocols' OWN frames
// (RHV signals, failure-signs, sync frames), and the global view-sequence
// consistency invariant.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "clocksync/clock.hpp"
#include "clocksync/sync_service.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

bool is_type(const can::TxContext& c, MsgType t) {
  const auto mid = Mid::decode(c.frame);
  return mid.has_value() && mid->type == t;
}

// --- RHA frames under inconsistent omissions -------------------------------
//
// The k-th RHV transmission of an execution suffers an inconsistent
// omission at a chosen victim; with at most j = 2 such omissions the
// j+1-copies rule must still deliver a common vector everywhere.

class RhaFrameFaults
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(RhaFrameFaults, AgreementSurvivesOmissionsOnRhvSignals) {
  const auto [which_copy, victim_mask] = GetParam();
  Cluster c{5};
  // Up to j = 2 inconsistent omissions on RHA data frames: the
  // `which_copy`-th RHA transmission, plus the one after it.
  int rha_seen = 0;
  can::ScriptedFaults faults;
  for (int hit = which_copy; hit < which_copy + 2; ++hit) {
    NodeSet victims;
    for (can::NodeId n = 0; n < 5; ++n) {
      if (victim_mask & (1u << n)) victims.insert(n);
    }
    faults.add(
        [&rha_seen, hit](const can::TxContext& ctx) {
          if (!is_type(ctx, MsgType::kRha)) return false;
          return rha_seen++ == hit;  // counts every judged RHA attempt
        },
        can::Verdict::inconsistent(victims));
  }
  c.bus().set_fault_injector(&faults);

  c.join_all();
  c.settle(Time::ms(600));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(5)))
      << "copy=" << which_copy << " mask=" << victim_mask
      << " view=" << c.any_view();
}

INSTANTIATE_TEST_SUITE_P(
    CopiesAndVictims, RhaFrameFaults,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0x02u, 0x06u, 0x1Cu, 0x0Au)));

// --- failure-sign storms -----------------------------------------------------

TEST(FaultProperties, ConcurrentCrashesWithFdaFrameFaults) {
  Cluster c{6};
  can::ScriptedFaults faults;
  // Every FDA frame's first attempt is inconsistently omitted at node 5.
  faults.add(
      [](const can::TxContext& ctx) {
        return is_type(ctx, MsgType::kFda) && ctx.attempt == 0;
      },
      can::Verdict::inconsistent(NodeSet{5}), /*shots=*/4);
  c.bus().set_fault_injector(&faults);

  c.join_all();
  c.settle(Time::ms(600));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(6)));
  c.node(2).crash();
  c.node(3).crash();
  c.settle(Time::ms(300));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 4, 5})) << c.any_view();
}

// --- view sequence consistency ------------------------------------------------
//
// Stronger than point-in-time agreement: every pair of nodes that both
// install views must install *compatible sequences* — for any two
// installed views at the same index offset from the end, the sets agree.
// We check the practical variant: the full sequence of distinct views
// seen by continuous members is identical.

TEST(FaultProperties, ContinuousMembersSeeTheSameViewSequence) {
  Cluster c{6};
  std::map<std::size_t, std::vector<NodeSet>> seq;
  for (std::size_t i = 0; i < 3; ++i) {  // nodes 0..2 stay forever
    c.node(i).on_membership_change(
        [&seq, i](NodeSet active, NodeSet /*failed*/) {
          auto& s = seq[i];
          if (s.empty() || s.back() != active) s.push_back(active);
        });
  }
  c.join_all();
  c.settle(Time::ms(600));
  c.node(3).leave();
  c.settle(Time::ms(200));
  c.node(4).crash();
  c.settle(Time::ms(200));
  c.node(5).leave();
  c.settle(Time::ms(200));

  ASSERT_FALSE(seq[0].empty());
  EXPECT_EQ(seq[0], seq[1]);
  EXPECT_EQ(seq[0], seq[2]);
  EXPECT_EQ(seq[0].back(), (NodeSet{0, 1, 2}));
}

// --- clock sync under frame loss ----------------------------------------------

TEST(FaultProperties, ClockSyncToleratesLostRounds) {
  Cluster c{4};
  std::vector<std::unique_ptr<clocksync::DriftClock>> clocks;
  std::vector<std::unique_ptr<clocksync::ClockSyncService>> svc;
  for (std::size_t i = 0; i < 4; ++i) {
    clocks.push_back(std::make_unique<clocksync::DriftClock>(
        -80.0 + 50.0 * static_cast<double>(i)));
    svc.push_back(std::make_unique<clocksync::ClockSyncService>(
        c.node(i).driver(), c.node(i).timers(), *clocks[i],
        clocksync::SyncParams{}, 99 + i));
    svc.back()->start(static_cast<unsigned>(i));
  }
  // Destroy every 3rd SYNC frame globally (CAN retransmits them; the
  // protocol must simply keep converging).
  int sync_count = 0;
  can::ScriptedFaults faults;
  faults.add(
      [&sync_count](const can::TxContext& ctx) {
        return is_type(ctx, MsgType::kSync) && (sync_count++ % 3 == 0);
      },
      can::Verdict::global_error(), /*shots=*/-1);
  c.bus().set_fault_injector(&faults);

  c.engine().run_until(Time::sec(2));
  Time worst = Time::zero();
  for (int s = 0; s < 15; ++s) {
    c.engine().run_for(Time::ms(41));
    Time lo = Time::max(), hi = Time::ns(INT64_MIN);
    for (auto& clk : clocks) {
      const Time r = clk->read(c.engine().now());
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    worst = std::max(worst, hi - lo);
  }
  EXPECT_LT(worst, Time::us(60));
  EXPECT_GE(svc[3]->rounds_observed(), 15u);
}

// --- detection under error bursts ----------------------------------------------

TEST(FaultProperties, BurstDoesNotMaskARealCrash) {
  Params p;
  p.tx_delay_bound = Time::ms(3);
  Cluster c{4, p};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  // Node 2 crashes; simultaneously a 5-omission burst hammers the bus.
  can::ScriptedFaults burst;
  burst.add([](const can::TxContext&) { return true; },
            can::Verdict::global_error(), /*shots=*/5);
  c.bus().set_fault_injector(&burst);
  c.node(2).crash();
  c.settle(Time::ms(300));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 3})) << c.any_view();
}

}  // namespace
}  // namespace canely::testing
