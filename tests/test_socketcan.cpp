// Tests for the SocketCAN bridge.  Frame conversion is pure and always
// tested; the live-socket paths skip gracefully when the host has no CAN
// interface (typical CI container).

#include <gtest/gtest.h>

#include <chrono>

#include "can/bus.hpp"
#include "sim/engine.hpp"
#include "socketcan/frame_conv.hpp"
#include "socketcan/gateway.hpp"
#include "socketcan/realtime.hpp"

namespace canely::socketcan {
namespace {

TEST(FrameConv, DataFrameRoundTrip) {
  const std::uint8_t payload[] = {1, 2, 3};
  const can::Frame f = can::Frame::make_data(0x123, payload);
  const auto lin = to_linux(f);
  EXPECT_EQ(lin.can_id, 0x123u);
  EXPECT_EQ(lin.can_dlc, 3);
  const auto back = from_linux(lin);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST(FrameConv, ExtendedIdSetsEffFlag) {
  const can::Frame f =
      can::Frame::make_data(0x1ABCDEF, {}, can::IdFormat::kExtended);
  const auto lin = to_linux(f);
  EXPECT_TRUE(lin.can_id & CAN_EFF_FLAG);
  EXPECT_EQ(lin.can_id & CAN_EFF_MASK, 0x1ABCDEFu);
  const auto back = from_linux(lin);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->format, can::IdFormat::kExtended);
  EXPECT_EQ(back->id, 0x1ABCDEFu);
}

TEST(FrameConv, RemoteFrameSetsRtrFlag) {
  const can::Frame f = can::Frame::make_remote(0x77, 2);
  const auto lin = to_linux(f);
  EXPECT_TRUE(lin.can_id & CAN_RTR_FLAG);
  const auto back = from_linux(lin);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->remote);
  EXPECT_EQ(back->dlc, 2);
}

TEST(FrameConv, ErrorFramesRejected) {
  ::can_frame err{};
  err.can_id = CAN_ERR_FLAG | 0x1;
  EXPECT_FALSE(from_linux(err).has_value());
}

TEST(FrameConv, OversizedDlcRejected) {
  ::can_frame bad{};
  bad.can_id = 0x10;
  bad.can_dlc = 9;
  EXPECT_FALSE(from_linux(bad).has_value());
}

TEST(Gateway, ThrowsWithoutInterface) {
  sim::Engine engine;
  can::Bus bus{engine};
  // "nosuchcan0" certainly does not exist; PF_CAN itself may be missing
  // too.  Either way: a clean exception, no crash, controller detached.
  EXPECT_THROW(SocketCanGateway(bus, 63, "nosuchcan0"), std::runtime_error);
}

TEST(Gateway, LiveLoopbackIfAvailable) {
  sim::Engine engine;
  can::Bus bus{engine};
  std::unique_ptr<SocketCanGateway> gw;
  try {
    gw = std::make_unique<SocketCanGateway>(bus, 63, "vcan0");
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "no vcan0 interface on this host";
  }
  // With a live vcan0: a frame injected into the simulated bus must
  // appear on the socket of a second gateway-style observer, and poll()
  // must not inject our own echoes.
  can::Controller sender{1, bus};
  const std::uint8_t payload[] = {0xAB};
  sender.request_tx(can::Frame::make_data(0x100, payload));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(gw->frames_out(), 1u);
}

/// Virtual wall clock: time advances only when the runner sleeps, so a
/// run is a pure function of the poll interval — no host-scheduler
/// dependence, hence exact (not banded) assertions under any CI load.
class FakeWallClock final : public WallClock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() override { return now_; }
  void sleep_for(std::chrono::microseconds d) override { now_ += d; }

 private:
  std::chrono::nanoseconds now_{0};
};

TEST(RealTime, RunnerTracksWallClockExactlyUnderVirtualTime) {
  sim::Engine engine;
  int ticks = 0;
  // A self-rescheduling 5 ms tick.
  std::function<void()> tick = [&] {
    ++ticks;
    engine.schedule_after(sim::Time::ms(5), tick);
  };
  engine.schedule_after(sim::Time::ms(5), tick);

  FakeWallClock clock;
  RealTimeRunner runner{engine, &clock};
  int polls = 0;
  runner.add_poller([&] { ++polls; });
  runner.set_poll_interval(std::chrono::microseconds{500});
  runner.run_for(std::chrono::milliseconds{50});

  // 50 ms / 500 us = exactly 100 poll iterations (t = 0, 0.5, ... 49.5),
  // and the final catch-up lands the engine on exactly 50 ms, firing the
  // 5, 10, ..., 50 ms ticks: exactly 10.
  EXPECT_EQ(polls, 100);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(engine.now(), sim::Time::ms(50));
}

TEST(RealTime, RunnerAgainstTheRealClockStaysLive) {
  sim::Engine engine;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    engine.schedule_after(sim::Time::ms(2), tick);
  };
  engine.schedule_after(sim::Time::ms(2), tick);

  RealTimeRunner runner{engine};
  int polls = 0;
  runner.add_poller([&] { ++polls; });
  runner.set_poll_interval(std::chrono::microseconds{500});
  runner.run_for(std::chrono::milliseconds{20});

  // Only load-immune lower bounds here: the loop always runs at least
  // once, and the catch-up guarantees the full 20 ms of simulated time
  // (10 ticks) no matter how the host schedules us.
  EXPECT_GE(polls, 1);
  EXPECT_EQ(ticks, 10);
  EXPECT_EQ(engine.now(), sim::Time::ms(20));
}

}  // namespace
}  // namespace canely::socketcan
