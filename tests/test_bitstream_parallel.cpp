// Property suite for the word-parallel bitstream paths (DESIGN.md §8):
// every packed-word routine (crc15, stuff_into, count_stuff_bits,
// destuff, and the packed serialization inside frame_bits_on_wire) is
// checked against its retained bit-at-a-time *_reference oracle over
// random frames (all DLCs, both formats, data and remote), adversarial
// run-structured sequences, and exhaustive byte-gather patterns.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "can/bitstream.hpp"
#include "can/frame.hpp"
#include "sim/rng.hpp"

namespace canely::can {
namespace {

Frame random_frame(sim::Rng& rng) {
  Frame f;
  f.format = rng.below(2) == 0 ? IdFormat::kBase : IdFormat::kExtended;
  f.id = static_cast<std::uint32_t>(
      rng.below(f.format == IdFormat::kBase ? 0x800 : 0x2000'0000));
  f.remote = rng.below(4) == 0;
  f.dlc = static_cast<std::uint8_t>(rng.below(9));  // all DLCs 0..8
  if (!f.remote) {
    for (std::size_t i = 0; i < f.dlc; ++i) {
      // Bias toward run-heavy payloads (0x00/0xFF) so stuffing edge
      // cases — runs spanning field boundaries, stuff-after-stuff — show
      // up far more often than under uniform bytes.
      const auto roll = rng.below(4);
      f.data[i] = roll == 0   ? 0x00
                  : roll == 1 ? 0xFF
                              : static_cast<std::uint8_t>(rng.below(256));
    }
  }
  return f;
}

/// Random bit sequence with geometric-ish run lengths: adversarial for
/// the run-based scanners (lots of runs straddling 5, 10, word edges).
std::vector<std::uint8_t> random_runs(sim::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> bits;
  const std::size_t target = rng.below(max_len + 1);
  std::uint8_t v = static_cast<std::uint8_t>(rng.below(2));
  while (bits.size() < target) {
    const std::size_t run = 1 + rng.below(7);  // 1..7: crosses the 5-limit
    for (std::size_t i = 0; i < run && bits.size() < target; ++i) {
      bits.push_back(v);
    }
    v ^= 1;
  }
  return bits;
}

TEST(BitstreamParallel, Crc15MatchesReferenceOnRandomSequences) {
  sim::Rng rng{2026};
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bits(rng.below(200));
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng.below(2));
    ASSERT_EQ(crc15(bits), crc15_reference(bits)) << "len " << bits.size();
  }
}

TEST(BitstreamParallel, Crc15GatherExhaustiveOverBytePatterns) {
  // Every 8-bit pattern, at every alignment 0..7 relative to the start:
  // pins the multiply-gather (bit order, carry freedom) and the byte
  // table step against the bit-at-a-time register.
  for (unsigned pattern = 0; pattern < 256; ++pattern) {
    for (std::size_t lead = 0; lead < 8; ++lead) {
      std::vector<std::uint8_t> bits(lead, 1);
      for (int i = 7; i >= 0; --i) {
        bits.push_back(static_cast<std::uint8_t>((pattern >> i) & 1));
      }
      ASSERT_EQ(crc15(bits), crc15_reference(bits))
          << "pattern " << pattern << " lead " << lead;
    }
  }
}

TEST(BitstreamParallel, Crc15FixedVectors) {
  // Known-answer vectors, precomputed with the ISO 11898-1 bit-serial
  // register (poly 0x4599): guards table generation itself — a reference
  // bug would slip through pure cross-checking.
  std::vector<std::uint8_t> bits;
  for (const std::uint8_t byte : {0x43, 0x41, 0x4E}) {  // "CAN", MSB-first
    for (int i = 7; i >= 0; --i) {
      bits.push_back(static_cast<std::uint8_t>((byte >> i) & 1));
    }
  }
  EXPECT_EQ(crc15(bits), 0x1B9E);
  EXPECT_EQ(crc15_reference(bits), 0x1B9E);

  // The 19-bit header of a base data frame id=0x555, dlc=8.
  const std::uint32_t hdr = (0x555U << 7) | 8U;
  std::vector<std::uint8_t> hdr_bits;
  for (int i = 18; i >= 0; --i) {
    hdr_bits.push_back(static_cast<std::uint8_t>((hdr >> i) & 1));
  }
  EXPECT_EQ(crc15(hdr_bits), 0x134B);
}

TEST(BitstreamParallel, StuffingMatchesReferenceOnAdversarialRuns) {
  sim::Rng rng{7};
  for (int iter = 0; iter < 4000; ++iter) {
    // Up to 600 bits: crosses the 512-bit packing cap, so the fallback
    // path runs under the same property.
    const auto bits = random_runs(rng, 600);
    std::vector<std::uint8_t> got(bits.size() + bits.size() / 4 + 1);
    std::vector<std::uint8_t> want(bits.size() + bits.size() / 4 + 1);
    got.resize(stuff_into(bits, got.data()));
    want.resize(stuff_into_reference(bits, want.data()));
    ASSERT_EQ(got, want) << "iter " << iter << " len " << bits.size();
    ASSERT_EQ(count_stuff_bits(bits), count_stuff_bits_reference(bits));
    ASSERT_EQ(count_stuff_bits(bits), got.size() - bits.size());
  }
}

TEST(BitstreamParallel, DestuffInvertsStuffAndMatchesReference) {
  sim::Rng rng{99};
  for (int iter = 0; iter < 4000; ++iter) {
    const auto bits = random_runs(rng, 600);
    const auto stuffed = stuff(bits);
    const auto back = destuff(stuffed);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(*back, bits) << "iter " << iter;

    // Raw (possibly invalid) streams: the word-parallel destuffer and
    // the reference must agree on both acceptance and output.
    ASSERT_EQ(destuff(bits), destuff_reference(bits)) << "iter " << iter;
  }
  // Six equal bits is a stuff error in both implementations.
  const std::vector<std::uint8_t> six(6, 1);
  EXPECT_FALSE(destuff(six).has_value());
  EXPECT_FALSE(destuff_reference(six).has_value());
}

TEST(BitstreamParallel, PackedSerializationMatchesRawBitsOn10kFrames) {
  sim::Rng rng{424242};
  for (int iter = 0; iter < 10000; ++iter) {
    const Frame f = random_frame(rng);

    // Oracle: byte-per-bit serialization + reference CRC + reference
    // stuff count.
    std::uint8_t raw[kMaxRawBits];
    const std::size_t n = raw_bits_into(f, raw);
    ASSERT_EQ(crc15({raw, n - 15}), crc15_reference({raw, n - 15}));
    const std::size_t want =
        n + count_stuff_bits_reference({raw, n}) + kFrameTailBits;

    // frame_bits_on_wire runs the fully packed path on a memo miss.
    Frame fresh = f;
    fresh.wire_memo_key = 0;
    ASSERT_EQ(frame_bits_on_wire(fresh), want)
        << "iter " << iter << " id " << f.id << " dlc " << int{f.dlc}
        << " remote " << f.remote
        << " ext " << (f.format == IdFormat::kExtended);
    // And the memo returns the same answer.
    ASSERT_EQ(frame_bits_on_wire(fresh), want);
  }
}

TEST(BitstreamParallel, PackedSerializationCoversEveryDlcAndFormat) {
  // Deterministic corner sweep: every DLC x format x remote with
  // all-zero, all-one and alternating payloads (maximum / minimum
  // stuffing density).
  for (const auto format : {IdFormat::kBase, IdFormat::kExtended}) {
    for (unsigned dlc = 0; dlc <= 8; ++dlc) {
      for (const std::uint8_t fill : {0x00, 0xFF, 0xAA}) {
        for (const bool remote : {false, true}) {
          Frame f;
          f.format = format;
          f.id = format == IdFormat::kBase ? 0x2AA : 0x15555555;
          f.remote = remote;
          f.dlc = static_cast<std::uint8_t>(dlc);
          if (!remote) f.data.fill(fill);
          std::uint8_t raw[kMaxRawBits];
          const std::size_t n = raw_bits_into(f, raw);
          const std::size_t want =
              n + count_stuff_bits_reference({raw, n}) + kFrameTailBits;
          EXPECT_EQ(frame_bits_on_wire(f), want)
              << "dlc " << dlc << " fill " << int{fill} << " remote "
              << remote;
        }
      }
    }
  }
}

}  // namespace
}  // namespace canely::can
