// Randomized stress / property suite: arbitrary churn schedules under
// randomized bus faults, parameterized by seed.  Invariants checked after
// every settling window:
//
//   SAFETY    all current members hold identical views;
//   ACCURACY  the common view equals the model's expected live set;
//   LIVENESS  every legal request (join/leave/crash detection) takes
//             effect within a bounded settling time.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

class StressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressTest, RandomChurnKeepsViewsConsistent) {
  sim::Rng rng{GetParam()};
  constexpr std::size_t kN = 10;

  Params params;
  params.n = kN;
  params.tx_delay_bound = Time::ms(4);
  Cluster c{kN, params};

  // Mild random faults on the wire throughout.
  can::RandomFaults faults{rng.fork(), 0.005, 0.005};
  c.bus().set_fault_injector(&faults);

  // Model state.
  enum class S { kOut, kMember, kCrashed };
  std::array<S, kN> state{};
  state.fill(S::kOut);

  // Founding members.
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).join();
    state[i] = S::kMember;
  }
  c.settle(Time::ms(500));

  // Some traffic so implicit heartbeats are exercised too.
  c.node(0).start_periodic(1, Time::ms(7), {0});
  c.node(2).start_periodic(1, Time::ms(9), {2});

  auto expected = [&] {
    NodeSet s;
    for (std::size_t i = 0; i < kN; ++i) {
      if (state[i] == S::kMember) s.insert(static_cast<can::NodeId>(i));
    }
    return s;
  };
  ASSERT_TRUE(c.views_agree(expected()));

  int crashes = 0;
  for (int step = 0; step < 12; ++step) {
    // Pick a random applicable operation.
    const std::size_t who = static_cast<std::size_t>(rng.below(kN));
    const auto op = rng.below(3);
    switch (op) {
      case 0:  // join
        if (state[who] == S::kOut) {
          c.node(who).join();
          state[who] = S::kMember;
        }
        break;
      case 1:  // leave (keep at least 3 members)
        if (state[who] == S::kMember && expected().size() > 3) {
          c.node(who).leave();
          state[who] = S::kOut;
        }
        break;
      case 2:  // crash (at most 3 per run, keep at least 3 members)
        if (state[who] == S::kMember && expected().size() > 3 &&
            crashes < 3) {
          c.node(who).crash();
          state[who] = S::kCrashed;
          ++crashes;
        }
        break;
    }
    c.settle(Time::ms(400));
    const NodeSet expect = expected();
    EXPECT_TRUE(c.views_agree(expect))
        << "seed=" << GetParam() << " step=" << step << " expect=" << expect
        << " got=" << c.any_view();
  }

  // Final quiescence: run on and re-check stability.
  c.settle(Time::sec(1));
  EXPECT_TRUE(c.views_agree(expected()))
      << "seed=" << GetParam() << " final, expect=" << expected()
      << " got=" << c.any_view();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

// --- fault-heavy variant: inconsistent omissions against protocol frames ----

class ProtocolFaultStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFaultStress, ViewsSurviveInconsistentProtocolOmissions) {
  sim::Rng rng{GetParam() ^ 0xA5A5};
  Params params;
  params.n = 6;
  params.tx_delay_bound = Time::ms(4);
  Cluster c{6, params};

  // Target protocol frames specifically with inconsistent omissions,
  // staying within the j-per-interval spirit (2% of frames).
  can::RandomFaults faults{rng.fork(), 0.0, 0.02};
  c.bus().set_fault_injector(&faults);

  c.join_all();
  c.settle(Time::ms(600));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(6)))
      << "seed=" << GetParam() << " got=" << c.any_view();

  c.node(4).crash();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 2, 3, 5}))
      << "seed=" << GetParam() << " got=" << c.any_view();

  c.node(1).leave();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 2, 3, 5}))
      << "seed=" << GetParam() << " got=" << c.any_view();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFaultStress,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace canely::testing
