// Scale tests: the stack at its architectural limit of 64 nodes (the RHV
// bitmap fills the full 8-byte CAN data field), plus parameter scaling
// checks across system sizes.

#include <gtest/gtest.h>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

Params scaled_params(std::size_t n) {
  Params p;
  p.n = n;
  // Ttd must cover the post-admission ELS burst (n * ~80 bit-times) plus
  // load; Th scaled up so the life-sign load stays moderate at n=64.
  p.heartbeat_period = Time::ms(20);
  p.tx_delay_bound = Time::ms(2) + Time::us(100) * static_cast<int>(n);
  p.rha_timeout = Time::ms(10);
  p.membership_cycle = Time::ms(50);
  return p;
}

TEST(Scale, SixtyFourNodesFormOneView) {
  constexpr std::size_t kN = 64;
  Cluster c{kN, scaled_params(kN)};
  c.join_all();
  c.settle(Time::ms(800));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(kN)))
      << "view=" << c.any_view() << " (" << c.any_view().size() << ")";
  EXPECT_EQ(c.node(63).view().size(), kN);
}

TEST(Scale, SixtyFourNodesSurviveCrashes) {
  constexpr std::size_t kN = 64;
  Cluster c{kN, scaled_params(kN)};
  c.join_all();
  c.settle(Time::ms(800));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(kN)));
  c.node(10).crash();
  c.node(40).crash();
  c.node(63).crash();
  c.settle(Time::sec(1));
  NodeSet expect = NodeSet::first_n(kN);
  expect.erase(10);
  expect.erase(40);
  expect.erase(63);
  EXPECT_TRUE(c.views_agree(expect)) << c.any_view();
}

TEST(Scale, RhvBitmapUsesWholePayloadAt64) {
  // The wire format must carry node 63: join a view that includes it and
  // check the RHV-carrying frames use all 8 data bytes.
  constexpr std::size_t kN = 64;
  Cluster c{kN, scaled_params(kN)};
  bool rhv_seen_with_top_bit = false;
  c.bus().set_observer([&](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == MsgType::kRha && !r.frame.remote &&
        r.frame.dlc == 8 && (r.frame.data[7] & 0x80)) {
      rhv_seen_with_top_bit = true;
    }
  });
  c.join_all();
  c.settle(Time::ms(800));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(kN)));
  EXPECT_TRUE(rhv_seen_with_top_bit);
}

TEST(Scale, FormationCostGrowsModestly) {
  // Frames needed to form the view should grow roughly linearly in n
  // (join requests dominate), not quadratically.
  std::uint64_t frames_8 = 0, frames_32 = 0;
  {
    Cluster c{8, scaled_params(8)};
    c.join_all();
    c.settle(Time::ms(800));
    ASSERT_TRUE(c.views_agree(NodeSet::first_n(8)));
    frames_8 = c.bus().stats().ok;
  }
  {
    Cluster c{32, scaled_params(32)};
    c.join_all();
    c.settle(Time::ms(800));
    ASSERT_TRUE(c.views_agree(NodeSet::first_n(32)));
    frames_32 = c.bus().stats().ok;
  }
  EXPECT_LT(frames_32, frames_8 * 16);  // far below quadratic scaling
  EXPECT_GT(frames_32, frames_8);
}

}  // namespace
}  // namespace canely::testing
