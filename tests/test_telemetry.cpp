// Tests for the campaign telemetry service (src/obs/telemetry) and its
// consumers: JSONL schema round-trip through the canely_top reader,
// monotone snapshot sequencing, explorer byte-identity with telemetry on
// vs off at several thread counts, the counterexample flight recorder's
// artifact round-trip + Perfetto re-export, and the telemetry_view
// reduction canely_top --once --json is built on.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/artifact.hpp"
#include "check/explore.hpp"
#include "check/harness.hpp"
#include "check/telemetry_view.hpp"
#include "obs/perfetto.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"

namespace canely::testing {
namespace {

using check::FaultEvent;
using check::FaultOp;
using check::FaultScript;
using check::RunResult;
using check::ScenarioConfig;

/// Wall clock returning a scripted sequence of instants (sticky last
/// value), so snapshot timestamps and rates are exact.
class ScriptedClock final : public socketcan::WallClock {
 public:
  explicit ScriptedClock(std::vector<std::int64_t> times_ns)
      : times_ns_{std::move(times_ns)} {}
  std::chrono::nanoseconds now() override {
    const std::size_t i = next_ < times_ns_.size() ? next_ : times_ns_.size() - 1;
    ++next_;
    return std::chrono::nanoseconds{times_ns_[i]};
  }
  void sleep_for(std::chrono::microseconds) override {}

 private:
  std::vector<std::int64_t> times_ns_;
  std::size_t next_{0};
};

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The verified FDA-ablation counterexample (same script as
// test_check.cpp): with FDA off, survivors split over an intermediate
// view — the flight-recorder tests need a real violating run.
FaultScript ablation_counterexample() {
  FaultEvent base;
  base.tx = 32;
  base.op = FaultOp::kOmit;
  base.victims = can::NodeSet{0};
  base.crash_sender = true;
  FaultEvent second;
  second.tx = 35;
  second.op = FaultOp::kOmit;
  second.victims = can::NodeSet{7};
  second.crash_sender = true;
  return FaultScript{base, second};
}

// --- JSONL schema round-trip -------------------------------------------------

TEST(TelemetryJsonl, ManualSnapshotsRoundTripWithMonotoneSeq) {
  const std::string path = ::testing::TempDir() + "telemetry_roundtrip.jsonl";
  std::remove(path.c_str());
  // One now() in the ctor (start), one per snapshot line.
  ScriptedClock clock{{0, 1'000'000'000, 2'500'000'000}};

  obs::TelemetryConfig cfg;
  cfg.path = path;
  cfg.sample_period_ms = 0;  // manual mode: exact snapshot counts
  cfg.label = "fixture";
  cfg.shard_index = 1;
  cfg.shard_count = 4;
  cfg.clock = &clock;
  {
    obs::Telemetry tel{std::move(cfg)};
    tel.set_total_units(500);
    tel.add(obs::TelemetryCounter::kUnitsJudged, 40);
    tel.add(obs::TelemetryCounter::kDedupSkips, 10);
    tel.add(obs::TelemetryCounter::kPrefixHits, 3);
    tel.add(obs::TelemetryCounter::kPrefixMisses, 1);
    tel.stage_us(obs::TelemetryStage::kJudge, 120);
    tel.stage_us(obs::TelemetryStage::kJudge, 80);
    ASSERT_TRUE(tel.sample_now());
    tel.add(obs::TelemetryCounter::kUnitsJudged, 60);
    tel.add(obs::TelemetryCounter::kCheckpoints, 2);
    tel.stage_us(obs::TelemetryStage::kCheckpointIo, 5000);
    ASSERT_TRUE(tel.sample_now());
  }

  const std::vector<check::TelemetrySnapshot> snaps =
      check::load_telemetry(path);
  std::remove(path.c_str());
  ASSERT_EQ(snaps.size(), 2u);

  // seq strictly monotone from 1; timestamps from the scripted clock.
  EXPECT_EQ(snaps[0].seq, 1u);
  EXPECT_EQ(snaps[1].seq, 2u);
  EXPECT_EQ(snaps[0].t_ms, 1000u);
  EXPECT_EQ(snaps[1].t_ms, 2500u);
  EXPECT_EQ(snaps[0].label, "fixture");
  EXPECT_EQ(snaps[0].shard, 1u);
  EXPECT_EQ(snaps[0].shards, 4u);
  EXPECT_EQ(snaps[0].total_units, 500u);

  // Counters are cumulative across lines.
  EXPECT_EQ(snaps[0].counter(obs::TelemetryCounter::kUnitsJudged), 40u);
  EXPECT_EQ(snaps[1].counter(obs::TelemetryCounter::kUnitsJudged), 100u);
  EXPECT_EQ(snaps[1].counter(obs::TelemetryCounter::kDedupSkips), 10u);
  EXPECT_EQ(snaps[1].counter(obs::TelemetryCounter::kCheckpoints), 2u);
  EXPECT_EQ(snaps[1].units_done(), 110u);  // judged + skips + resumed

  // Stage histograms: counts and sums survive the round trip.
  const auto judge = static_cast<std::size_t>(obs::TelemetryStage::kJudge);
  const auto ckpt =
      static_cast<std::size_t>(obs::TelemetryStage::kCheckpointIo);
  EXPECT_EQ(snaps[0].stage_count[judge], 2u);
  EXPECT_EQ(snaps[0].stage_sum_us[judge], 200u);
  EXPECT_EQ(snaps[1].stage_count[ckpt], 1u);
  EXPECT_EQ(snaps[1].stage_sum_us[ckpt], 5000u);
  EXPECT_EQ(snaps[0].dropped_lines, 0u);
}

TEST(TelemetryJsonl, RejectsForeignSchemaAndGarbage) {
  EXPECT_THROW((void)check::parse_telemetry_line(
                   R"({"schema":"canely-frontier-1","seq":1})"),
               std::runtime_error);
  EXPECT_THROW((void)check::parse_telemetry_line("not json"),
               std::runtime_error);
}

// --- explorer byte-identity, telemetry on vs off -----------------------------

TEST(TelemetryByteIdentity, FrontierAndAggregateIdenticalAcrossThreads) {
  // Same tightly-capped depth-2 space as the CI smoke; four runs cross
  // {telemetry off, on} x {1 thread, 4 threads} and must agree on both
  // the frontier bytes and the record-mode aggregate hash.
  const auto run = [](std::size_t threads, obs::Telemetry* tel,
                      const std::string& frontier) {
    check::ExploreConfig cfg;
    cfg.scenario = ScenarioConfig::membership(8, /*fda_on=*/true);
    cfg.threads = threads;
    cfg.depth = 2;
    cfg.exhaustive = true;
    cfg.dedup = true;
    cfg.max_frames = 8;
    cfg.max_victim_sets = 4;
    cfg.max_bases = 8;
    cfg.depth2_targets = 2;
    cfg.frontier_path = frontier;
    cfg.telemetry = tel;
    if (tel != nullptr) cfg.checkpoint_secs = 3600;  // time trigger armed
    return check::explore(cfg);
  };

  const std::string dir = ::testing::TempDir();
  const std::string f_off1 = dir + "tel_off_t1.json";
  const std::string f_off4 = dir + "tel_off_t4.json";
  const std::string f_on1 = dir + "tel_on_t1.json";
  const std::string f_on4 = dir + "tel_on_t4.json";
  const std::string jsonl = dir + "tel_identity.jsonl";
  for (const std::string& f : {f_off1, f_off4, f_on1, f_on4, jsonl}) {
    std::remove(f.c_str());
  }

  const check::ExploreResult off1 = run(1, nullptr, f_off1);
  const check::ExploreResult off4 = run(4, nullptr, f_off4);

  obs::TelemetryConfig tcfg;
  tcfg.path = jsonl;
  tcfg.sample_period_ms = 0;
  obs::Telemetry tel{std::move(tcfg)};
  const check::ExploreResult on1 = run(1, &tel, f_on1);
  const check::ExploreResult on4 = run(4, &tel, f_on4);

  EXPECT_EQ(off1.aggregate_hash, off4.aggregate_hash);
  EXPECT_EQ(off1.aggregate_hash, on1.aggregate_hash);
  EXPECT_EQ(off1.aggregate_hash, on4.aggregate_hash);
  const std::string bytes = read_file(f_off1);
  EXPECT_GT(bytes.size(), 0u);
  EXPECT_EQ(bytes, read_file(f_off4));
  EXPECT_EQ(bytes, read_file(f_on1));
  EXPECT_EQ(bytes, read_file(f_on4));

  // The service really observed the instrumented runs.
  EXPECT_GT(tel.counter(obs::TelemetryCounter::kUnitsJudged), 0u);
  EXPECT_GT(tel.counter(obs::TelemetryCounter::kCheckpoints), 0u);

  for (const std::string& f : {f_off1, f_off4, f_on1, f_on4, jsonl}) {
    std::remove(f.c_str());
  }
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, ArtifactRoundTripReplaysAndReExportsIdentically) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/false);
  const FaultScript script = ablation_counterexample();
  obs::Recorder rec;
  const RunResult run =
      check::run_checked(cfg, script, /*want_tx_log=*/false, &rec);
  ASSERT_FALSE(run.violations.empty());
  ASSERT_GT(rec.ring().size(), 0u);

  check::Artifact artifact;
  artifact.scenario = cfg;
  artifact.script = script;
  artifact.monitor = run.violations.front().monitor;
  artifact.trace_hash = run.trace_hash;
  artifact.violation = run.violations.front();
  artifact.flight.present = true;
  artifact.flight.ring_capacity = rec.ring().capacity();
  artifact.flight.dropped = rec.ring().dropped();
  for (std::size_t i = 0; i < rec.ring().size(); ++i) {
    artifact.flight.events.push_back(rec.ring().at(i));
  }
  artifact.flight.has_metrics = true;
  artifact.flight.metrics = rec.metrics().snapshot_json(true);

  const std::string path = ::testing::TempDir() + "flight_roundtrip.json";
  check::write_artifact(path, artifact);
  const check::Artifact loaded = check::load_artifact(path);
  std::remove(path.c_str());

  // Flight payload survives byte-faithfully.
  ASSERT_TRUE(loaded.flight.present);
  EXPECT_EQ(loaded.flight.ring_capacity, artifact.flight.ring_capacity);
  EXPECT_EQ(loaded.flight.dropped, artifact.flight.dropped);
  ASSERT_EQ(loaded.flight.events.size(), artifact.flight.events.size());
  for (std::size_t i = 0; i < loaded.flight.events.size(); ++i) {
    const obs::Event& a = artifact.flight.events[i];
    const obs::Event& b = loaded.flight.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.when, b.when) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    if (a.kind == obs::EventKind::kFrameTx) {
      EXPECT_EQ(a.u.frame.id, b.u.frame.id);
      EXPECT_EQ(a.u.frame.bits, b.u.frame.bits);
      EXPECT_EQ(a.u.frame.outcome, b.u.frame.outcome);
    } else if (a.kind == obs::EventKind::kViewInstall) {
      EXPECT_EQ(a.u.view.members, b.u.view.members);
    }
  }
  ASSERT_TRUE(loaded.flight.has_metrics);

  // A replay of the loaded artifact still reproduces the recorded run.
  const RunResult replayed = check::run_checked(loaded.scenario, loaded.script);
  EXPECT_EQ(replayed.trace_hash, loaded.trace_hash);

  // The archived trace re-export is byte-identical to a live export of
  // the same run (the contract check_explorer --replay --trace-out
  // relies on).
  const auto live_events = obs::build_trace_events(rec.ring());
  const std::string live =
      obs::render_trace_json(live_events, &rec.metrics(), rec.ring());
  obs::EventRing ring{loaded.flight.ring_capacity};
  for (const obs::Event& e : loaded.flight.events) ring.push(e);
  const auto archived_events = obs::build_trace_events(ring);
  const obs::RingStats stats{loaded.flight.ring_capacity,
                             loaded.flight.events.size(),
                             loaded.flight.dropped};
  const std::string archived =
      obs::render_trace_json(archived_events, &loaded.flight.metrics, stats);
  EXPECT_EQ(live, archived);
}

TEST(FlightRecorder, V1ArtifactsStillLoadWithoutFlight) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/false);
  check::Artifact artifact;
  artifact.scenario = cfg;
  artifact.script = ablation_counterexample();
  artifact.monitor = "view-consistency";
  artifact.trace_hash = 0x1234;
  artifact.violation =
      check::Violation{"view-consistency", sim::Time::ms(160), "detail"};

  // A v1 file is exactly a v2 file minus the flight key and schema bump.
  std::string v1 = check::artifact_json(artifact).dump(2);
  const std::string::size_type at = v1.find("canely-check-2");
  ASSERT_NE(at, std::string::npos);
  v1.replace(at, std::string{"canely-check-2"}.size(), "canely-check-1");
  const std::string path = ::testing::TempDir() + "flight_v1.json";
  {
    std::ofstream out{path, std::ios::binary};
    out << v1;
  }

  const check::Artifact loaded = check::load_artifact(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.flight.present);
  EXPECT_EQ(loaded.monitor, artifact.monitor);
  EXPECT_EQ(loaded.trace_hash, artifact.trace_hash);
  EXPECT_EQ(loaded.script, artifact.script);
}

// --- telemetry_view (the canely_top core) ------------------------------------

TEST(TelemetryView, ShardStatusRatesAndSummaryFromFixtureFile) {
  const std::string path = ::testing::TempDir() + "telemetry_view.jsonl";
  std::remove(path.c_str());
  ScriptedClock clock{{0, 1'000'000'000, 3'000'000'000}};
  obs::TelemetryConfig cfg;
  cfg.path = path;
  cfg.sample_period_ms = 0;
  cfg.label = "explore";
  cfg.clock = &clock;
  {
    obs::Telemetry tel{std::move(cfg)};
    tel.set_total_units(400);
    tel.add(obs::TelemetryCounter::kUnitsJudged, 100);
    ASSERT_TRUE(tel.sample_now());  // t=1000ms, done=100
    tel.add(obs::TelemetryCounter::kUnitsJudged, 120);
    tel.add(obs::TelemetryCounter::kDedupSkips, 80);
    ASSERT_TRUE(tel.sample_now());  // t=3000ms, done=300
  }

  const check::ShardStatus sh = check::load_shard_status(path);
  std::remove(path.c_str());
  ASSERT_TRUE(sh.have_prev);
  EXPECT_FALSE(sh.frontier_loaded);  // fixture advertises no frontier
  // (300 - 100) units over (3000 - 1000) ms.
  EXPECT_DOUBLE_EQ(sh.rate(), 100.0);

  const check::StatusSummary sum = check::summarize({sh});
  EXPECT_EQ(sum.done, 300u);
  EXPECT_EQ(sum.total, 400u);
  EXPECT_DOUBLE_EQ(sum.rate, 100.0);
  EXPECT_DOUBLE_EQ(sum.eta_sec, 1.0);  // 100 left at 100 u/s
  EXPECT_NEAR(sum.dedup_pct, 100.0 * 80 / 300, 1e-9);

  // Machine-readable status: the canely_top --once --json schema.
  const campaign::Json status = check::status_json({sh});
  const std::string dumped = status.dump();
  EXPECT_NE(dumped.find("\"schema\":\"canely-top-1\""), std::string::npos);
  EXPECT_NE(dumped.find("\"done\":300"), std::string::npos);
  EXPECT_NE(dumped.find("\"shards_complete\":0"), std::string::npos);

  // Human rendering: one shard line plus the TOTAL line.
  const std::string text = check::render_status_text({sh});
  EXPECT_NE(text.find("explore"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
  EXPECT_NE(text.find("dedup"), std::string::npos);
}

}  // namespace
}  // namespace canely::testing
