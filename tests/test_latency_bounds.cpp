// Cross-validation of the analytic latency bounds (analysis/latency.hpp)
// against the running stack: measured latencies must respect the bounds
// over randomized crash/join phases — and not be vacuously loose (within
// ~3x of observations).

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/latency.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

class LatencyBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyBoundTest, DetectionLatencyWithinAnalyticBound) {
  Params p;
  p.n = 6;
  const auto bounds = analysis::latency_bounds(p, 6);
  sim::Rng rng{GetParam()};

  sim::TimeSeries observed;
  for (int trial = 0; trial < 4; ++trial) {
    Cluster c{6, p};
    c.join_all();
    c.settle(Time::ms(500));
    ASSERT_TRUE(c.views_agree(NodeSet::first_n(6)));
    // Random crash phase within a heartbeat period.
    c.settle(Time::us(static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(
            p.heartbeat_period.to_us())))));
    Time last = Time::zero();
    int notified = 0;
    for (std::size_t i = 0; i < 6; ++i) {
      if (i == 4) continue;
      c.node(i).on_membership_change(
          [&c, &last, &notified](NodeSet, NodeSet failed) {
            if (failed.contains(4)) {
              last = std::max(last, c.engine().now());
              ++notified;
            }
          });
    }
    const Time t_crash = c.engine().now();
    c.node(4).crash();
    c.settle(bounds.detection + Time::ms(5));
    ASSERT_EQ(notified, 5) << "trial " << trial;
    observed.add(last - t_crash);
  }
  EXPECT_LE(observed.max(), bounds.detection);
  // The bound is meaningful: not more than ~4x the worst observation.
  EXPECT_GE(observed.max() * 4, bounds.detection);
}

TEST_P(LatencyBoundTest, JoinLatencyWithinAnalyticBound) {
  Params p;
  p.n = 6;
  const auto bounds = analysis::latency_bounds(p, 6);
  sim::Rng rng{GetParam() ^ 0x9999};

  sim::TimeSeries observed;
  for (int trial = 0; trial < 4; ++trial) {
    Cluster c{6, p};
    for (std::size_t i = 0; i < 5; ++i) c.node(i).join();
    c.settle(Time::ms(500));
    ASSERT_TRUE(c.views_agree(NodeSet::first_n(5)));
    // Random join phase within a membership cycle.
    c.settle(Time::us(static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(
            p.membership_cycle.to_us())))));
    Time installed = Time::max();
    c.node(0).on_membership_change(
        [&c, &installed](NodeSet active, NodeSet) {
          if (active.contains(5) && installed == Time::max()) {
            installed = c.engine().now();
          }
        });
    const Time t_join = c.engine().now();
    c.node(5).join();
    c.settle(bounds.join + Time::ms(5));
    ASSERT_NE(installed, Time::max()) << "trial " << trial;
    observed.add(installed - t_join);
  }
  EXPECT_LE(observed.max(), bounds.join);
  EXPECT_GE(observed.max() * 4, bounds.join);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyBoundTest,
                         ::testing::Values(100u, 200u, 300u));

TEST(LatencyBounds, ScaleWithParameters) {
  Params fast, slow;
  fast.heartbeat_period = Time::ms(5);
  slow.heartbeat_period = Time::ms(100);
  EXPECT_LT(analysis::latency_bounds(fast, 8).detection,
            analysis::latency_bounds(slow, 8).detection);
  Params small_tm, big_tm;
  small_tm.membership_cycle = Time::ms(20);
  big_tm.membership_cycle = Time::ms(90);
  EXPECT_LT(analysis::latency_bounds(small_tm, 8).join,
            analysis::latency_bounds(big_tm, 8).join);
  // More nodes -> more surveillance skew -> larger detection bound.
  EXPECT_LT(analysis::latency_bounds(fast, 4).detection,
            analysis::latency_bounds(fast, 32).detection);
}

}  // namespace
}  // namespace canely::testing
