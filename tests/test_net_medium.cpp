// Tests for the media-agnostic network layer (DESIGN.md §13): the lossy
// point-to-point Medium's determinism contract, partition-mask and
// fail-stop semantics, the FIFO degeneracy property, and the CanTransport
// adapter that carries the same Transport vocabulary over the CAN bus.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "net/can_transport.hpp"
#include "net/medium.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace canely::net {
namespace {

using sim::Time;

/// One observed delivery, stringified for easy trace comparison.
struct TraceEntry {
  std::int64_t at_ns;
  NodeId to;
  NodeId from;
  std::uint32_t kind;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// Attach every node with a handler that appends to a shared trace.
void attach_all(Medium& medium, sim::Engine& engine,
                std::vector<TraceEntry>& trace) {
  for (NodeId i = 0; i < medium.config().n; ++i) {
    medium.attach(i, [&trace, &engine, i](const Message& m) {
      trace.push_back({engine.now().to_ns(), i, m.from, m.kind});
    });
  }
}

Message make_msg(NodeId from, NodeId to, std::uint32_t kind,
                 std::size_t payload = 4) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = kind;
  m.bytes.assign(payload, static_cast<std::uint8_t>(kind));
  return m;
}

// ------------------------------------------------------------ degeneracy --

// Property: with zero loss, zero duplication and constant delay the
// medium is a global FIFO — delivery order equals send order, for any
// seeded random send sequence.
TEST(NetMedium, ZeroLossZeroSpreadDegeneratesToFifo) {
  for (std::uint64_t seed : {1ull, 42ull, 9000ull}) {
    sim::Engine engine;
    MediumConfig cfg;
    cfg.n = 6;
    cfg.default_link.delay_min = Time::us(10);
    cfg.default_link.delay_max = Time::us(10);  // constant => no reorder
    Medium medium{engine, cfg, seed};

    std::vector<TraceEntry> trace;
    attach_all(medium, engine, trace);

    sim::Rng workload{seed ^ 0xABCD};
    std::vector<std::uint32_t> sent_kinds;
    for (std::uint32_t k = 0; k < 200; ++k) {
      const auto from = static_cast<NodeId>(workload.below(cfg.n));
      auto to = static_cast<NodeId>(workload.below(cfg.n - 1));
      if (to >= from) ++to;
      medium.send(make_msg(from, to, k));
      sent_kinds.push_back(k);
    }
    engine.run_until(Time::ms(10));

    ASSERT_EQ(trace.size(), sent_kinds.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      EXPECT_EQ(trace[i].kind, sent_kinds[i]) << "reordered at " << i;
    }
    EXPECT_EQ(medium.stats().dropped, 0u);
    EXPECT_EQ(medium.stats().duplicated, 0u);
  }
}

// ---------------------------------------------------------- determinism --

std::vector<TraceEntry> lossy_run(std::uint64_t seed) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 8;
  cfg.default_link.delay_min = Time::us(50);
  cfg.default_link.delay_max = Time::ms(2);  // spread => reordering
  cfg.default_link.drop_p = 0.2;
  cfg.default_link.dup_p = 0.15;
  Medium medium{engine, cfg, seed};

  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  sim::Rng workload{777};  // same send sequence in every run
  for (std::uint32_t k = 0; k < 300; ++k) {
    const auto from = static_cast<NodeId>(workload.below(cfg.n));
    if (k % 17 == 0) {
      medium.send(make_msg(from, kBroadcast, k));
    } else {
      auto to = static_cast<NodeId>(workload.below(cfg.n - 1));
      if (to >= from) ++to;
      medium.send(make_msg(from, to, k));
    }
  }
  engine.run_until(Time::sec(1));
  return trace;
}

TEST(NetMedium, SameSeedSameByteIdenticalDeliverySchedule) {
  const auto a = lossy_run(123456);
  const auto b = lossy_run(123456);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a.empty());
}

TEST(NetMedium, DifferentSeedsDiverge) {
  const auto a = lossy_run(123456);
  const auto b = lossy_run(654321);
  EXPECT_FALSE(a == b);  // 300 sends at 20% loss: collision is ~impossible
}

// ------------------------------------------------------------ partitions --

TEST(NetMedium, PartitionMaskBlocksCrossGroupTraffic) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 4;
  Medium medium{engine, cfg, 7};
  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  // {0,1} | {2,3}: disjoint mask bits.
  medium.set_partition({1, 1, 2, 2});
  medium.send(make_msg(0, 1, 100));  // same side: delivered
  medium.send(make_msg(0, 2, 101));  // across: dropped
  medium.send(make_msg(3, 2, 102));  // same side: delivered
  medium.send(make_msg(0, kBroadcast, 103));  // only 1 reachable
  engine.run_until(Time::ms(1));

  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].kind, 100u);
  EXPECT_EQ(trace[1].kind, 102u);
  EXPECT_EQ(trace[2].kind, 103u);
  EXPECT_EQ(trace[2].to, 1u);
  EXPECT_EQ(medium.stats().dropped, 3u);  // 0->2, and broadcast to 2 and 3

  medium.clear_partition();
  medium.send(make_msg(0, 2, 104));
  engine.run_until(Time::ms(2));
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[3].kind, 104u);
}

TEST(NetMedium, InFlightCopiesSurviveAPartitionChange) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 2;
  cfg.default_link.delay_min = Time::ms(5);
  cfg.default_link.delay_max = Time::ms(5);
  Medium medium{engine, cfg, 7};
  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  medium.send(make_msg(0, 1, 1));  // on the wire at t=0
  engine.schedule_after(Time::ms(1), [&medium] {
    medium.set_partition({1, 2});  // partition closes mid-flight
  });
  engine.run_until(Time::ms(10));
  ASSERT_EQ(trace.size(), 1u);  // already-transmitted copy still arrives

  medium.send(make_msg(0, 1, 2));  // new send: filtered
  engine.run_until(Time::ms(20));
  EXPECT_EQ(trace.size(), 1u);
}

// ------------------------------------------------------------- fail-stop --

TEST(NetMedium, CrashedNodeNeitherSendsNorReceives) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 3;
  cfg.default_link.delay_min = Time::ms(1);
  cfg.default_link.delay_max = Time::ms(1);
  Medium medium{engine, cfg, 7};
  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  medium.send(make_msg(0, 2, 1));  // in flight toward 2...
  medium.crash(2);                 // ...crash before delivery
  medium.send(make_msg(2, 0, 2));  // dead node transmits nothing
  medium.send(make_msg(0, 2, 3));  // toward a dead node: dropped at arrival
  medium.send(make_msg(0, 1, 4));  // live traffic unaffected
  engine.run_until(Time::ms(10));

  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, 4u);
  EXPECT_TRUE(medium.crashed(2));
  EXPECT_FALSE(medium.crashed(0));
  EXPECT_EQ(medium.stats().dropped, 2u);  // both copies addressed to 2
}

// --------------------------------------------------------------- faults --

TEST(NetMedium, CertainDropAndCertainDuplicationAreCounted) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 3;
  Medium medium{engine, cfg, 7};
  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  LinkModel drop_all;
  drop_all.drop_p = 1.0;
  medium.set_link(0, 1, drop_all);
  LinkModel dup_all;
  dup_all.dup_p = 1.0;  // exactly one extra copy (duplicates never re-dup)
  medium.set_link(0, 2, dup_all);

  medium.send(make_msg(0, 1, 1));
  medium.send(make_msg(0, 2, 2));
  engine.run_until(Time::ms(1));

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, 2u);
  EXPECT_EQ(trace[1].kind, 2u);
  EXPECT_EQ(medium.stats().dropped, 1u);
  EXPECT_EQ(medium.stats().duplicated, 1u);
  EXPECT_EQ(medium.stats().sent, 3u);       // 1 dropped + original + dup
  EXPECT_EQ(medium.stats().delivered, 2u);
}

TEST(NetMedium, BandwidthChargesHeaderPlusPayloadPerCopy) {
  sim::Engine engine;
  MediumConfig cfg;
  cfg.n = 4;
  cfg.header_bytes = 32;
  Medium medium{engine, cfg, 7};
  std::vector<TraceEntry> trace;
  attach_all(medium, engine, trace);

  medium.send(make_msg(0, 1, 1, /*payload=*/10));          // 42 bytes
  medium.send(make_msg(1, kBroadcast, 2, /*payload=*/8));  // 3 x 40 bytes
  engine.run_until(Time::ms(1));

  EXPECT_EQ(medium.stats().sent, 4u);
  EXPECT_EQ(medium.stats().bytes_sent, 42u + 3u * 40u);
  EXPECT_EQ(medium.stats().bytes_delivered, 42u + 3u * 40u);
}

// ------------------------------------------------------- CanTransport ----

TEST(NetCanTransport, UnicastAndBroadcastOverTheSharedBus) {
  sim::Engine engine;
  can::Bus bus{engine};
  CanTransport net{bus};

  std::vector<TraceEntry> trace;
  for (NodeId i = 0; i < 3; ++i) {
    net.attach(i, [&trace, &engine, i](const Message& m) {
      trace.push_back({engine.now().to_ns(), i, m.from, m.kind});
    });
  }

  Message uni = make_msg(0, 2, 7, /*payload=*/4);
  net.send(uni);
  engine.run_until(Time::ms(1));
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].to, 2u);
  EXPECT_EQ(trace[0].from, 0u);
  EXPECT_EQ(trace[0].kind, 7u);

  // One frame on a broadcast wire reaches everyone: sent += 1 only.
  const std::uint64_t sent_before = net.stats().sent;
  Message bc = make_msg(1, kBroadcast, 9, /*payload=*/2);
  net.send(bc);
  engine.run_until(Time::ms(2));
  EXPECT_EQ(net.stats().sent, sent_before + 1);
  ASSERT_EQ(trace.size(), 3u);  // nodes 0 and 2
  EXPECT_EQ(trace[1].kind, 9u);
  EXPECT_EQ(trace[2].kind, 9u);

  // The adapter enforces CAN's physical limits instead of truncating.
  EXPECT_THROW(net.send(make_msg(0, 1, 1, /*payload=*/9)),
               std::invalid_argument);
  EXPECT_THROW(net.send(make_msg(5, 1, 1)), std::logic_error);
}

}  // namespace
}  // namespace canely::net
