// Reintegration scenarios: nodes that leave, are expelled, or bounce in
// and out of the membership — the paper's assumption (§6.4) is only that
// a removed node waits much longer than Tm before reintegrating; these
// tests pin down what the implementation guarantees around that.

#include <gtest/gtest.h>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

TEST(Reintegration, LeaveRejoinRepeatedly) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));
  for (int round = 0; round < 5; ++round) {
    c.node(3).leave();
    c.settle(Time::ms(300));
    ASSERT_TRUE(c.views_agree(NodeSet{0, 1, 2})) << "round " << round;
    c.node(3).join();
    c.settle(Time::ms(300));
    ASSERT_TRUE(c.views_agree(NodeSet::first_n(4))) << "round " << round;
  }
}

TEST(Reintegration, ExpelledNodeLearnsAndCanRejoin) {
  // Force a false suspicion of node 2 by invoking FDA directly (as if a
  // faulty observer suspected it): node 2 is expelled while alive, must
  // be told, and must be able to rejoin afterwards.
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  bool expelled_notified = false;
  c.node(2).on_membership_change([&](NodeSet active, NodeSet) {
    if (!active.contains(2)) expelled_notified = true;
  });
  c.node(0).fda().fda_can_req(2);  // false failure-sign
  c.settle(Time::ms(200));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1, 3})) << c.any_view();
  EXPECT_TRUE(expelled_notified);
  EXPECT_FALSE(c.node(2).is_member());

  // Reintegration (well after Tm): fda state for node 2 is reset on
  // admission, so the stale failure-sign cannot kill it again.
  c.settle(Time::ms(200));
  c.node(2).join();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(4))) << c.any_view();
  EXPECT_TRUE(c.node(2).is_member());
}

TEST(Reintegration, CrashedNodeStaysOut) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  c.node(1).crash();
  c.settle(Time::ms(200));
  ASSERT_TRUE(c.views_agree(NodeSet{0, 2, 3}));
  // A crashed node's API is inert; nothing ever re-admits it.
  c.node(1).join();
  c.settle(Time::sec(1));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 2, 3})) << c.any_view();
}

TEST(Reintegration, LastMemberLeavesThenSystemReforms) {
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  c.node(0).leave();
  c.settle(Time::ms(300));
  c.node(1).leave();
  c.settle(Time::ms(300));
  // Node 2 alone in the view.
  EXPECT_EQ(c.node(2).view(), (NodeSet{2}));
  c.node(2).leave();
  c.settle(Time::ms(300));
  EXPECT_FALSE(c.node(2).is_member());

  // Everyone rejoins from nothing: a fresh bootstrap must work.
  c.join_all();
  c.settle(Time::ms(500));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(3))) << c.any_view();
}

TEST(Reintegration, JoinDuringAnotherNodesFailureHandling) {
  Params p;
  p.tx_delay_bound = Time::ms(3);
  Cluster c{5, p};
  for (std::size_t i = 0; i < 4; ++i) c.node(i).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));
  // Crash and join land in the same cycle.
  c.node(1).crash();
  c.node(4).join();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 2, 3, 4})) << c.any_view();
}

TEST(Reintegration, GroupMembershipSurvivesSiteRejoin) {
  Cluster c{4};
  c.join_all();
  c.settle(Time::ms(500));
  c.node(2).join_group(5);
  c.settle(Time::ms(20));
  ASSERT_EQ(c.node(0).group_view(5), (NodeSet{2}));

  c.node(2).leave();
  c.settle(Time::ms(300));
  // Out of the site view => out of every group view.
  EXPECT_TRUE(c.node(0).group_view(5).empty());

  c.node(2).join();
  c.settle(Time::ms(400));
  ASSERT_TRUE(c.node(2).is_member());
  // The old announcement is still on the books: the group view follows
  // the site view back.  (Upper layers wanting leave-means-leave should
  // send leave_group explicitly before leaving the site.)
  EXPECT_EQ(c.node(0).group_view(5), (NodeSet{2}));
}

}  // namespace
}  // namespace canely::testing
