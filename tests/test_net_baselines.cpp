// Tests for the distributed-membership shootout baselines (DESIGN.md
// §13): SWIM, gossip heartbeating and the Rapid-style cut detector on
// the lossy net::Medium — crash detection, no false positives under
// zero loss, refutation, view-stability batching, and cross-run
// determinism.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "baselines/gossip.hpp"
#include "baselines/rapid.hpp"
#include "baselines/swim.hpp"
#include "net/medium.hpp"
#include "sim/engine.hpp"

namespace canely::baselines {
namespace {

using sim::Time;

net::MediumConfig lan(std::size_t n) {
  net::MediumConfig cfg;
  cfg.n = n;
  cfg.default_link.delay_min = Time::us(100);
  cfg.default_link.delay_max = Time::ms(2);
  return cfg;
}

struct Detection {
  net::NodeId observer;
  net::NodeId failed;
  std::int64_t at_ns;
};

// ------------------------------------------------------------------ SWIM --

TEST(Swim, DetectsCrashEverywhereAndConverges) {
  sim::Engine engine;
  net::Medium medium{engine, lan(16), 11};
  SwimCluster swim{medium, 16, SwimParams{}, 22};

  std::vector<Detection> detections;
  swim.set_failure_handler([&](net::NodeId obs, net::NodeId failed) {
    detections.push_back({obs, failed, engine.now().to_ns()});
  });

  swim.start();
  engine.schedule_at(Time::sec(5), [&] {
    medium.crash(3);
    swim.crash(3);
  });
  engine.run_until(Time::sec(30));

  net::Members expect = net::Members::all(16);
  expect.erase(3);
  EXPECT_TRUE(swim.views_agree(expect));

  // Every survivor eventually removed node 3, nobody removed anyone else.
  std::set<net::NodeId> observers;
  for (const Detection& d : detections) {
    EXPECT_EQ(d.failed, 3u);
    EXPECT_GT(d.at_ns, Time::sec(5).to_ns());
    observers.insert(d.observer);
  }
  EXPECT_EQ(observers.size(), 15u);
  EXPECT_EQ(swim.view_changes(), 15u);
}

TEST(Swim, NoFalsePositivesOnLosslessNetwork) {
  sim::Engine engine;
  net::Medium medium{engine, lan(16), 33};
  SwimCluster swim{medium, 16, SwimParams{}, 44};
  swim.set_failure_handler([&](net::NodeId, net::NodeId) {
    FAIL() << "false positive on a lossless network";
  });
  swim.start();
  engine.run_until(Time::sec(60));
  EXPECT_EQ(swim.view_changes(), 0u);
  EXPECT_TRUE(swim.views_agree(net::Members::all(16)));
}

TEST(Swim, SuspicionRefutationSurvivesModerateLoss) {
  // 5% loss, no crashes: probes and acks go missing, suspicions arise,
  // and the incarnation mechanism must refute every one of them before
  // the suspicion timeout turns it into a confirmed (false) death.
  sim::Engine engine;
  net::MediumConfig cfg = lan(12);
  cfg.default_link.drop_p = 0.05;
  net::Medium medium{engine, cfg, 55};
  SwimParams params;
  params.suspicion_periods = 5;
  SwimCluster swim{medium, 12, params, 66};
  swim.start();
  engine.run_until(Time::sec(120));
  EXPECT_EQ(swim.view_changes(), 0u);
  EXPECT_TRUE(swim.views_agree(net::Members::all(12)));
}

// ---------------------------------------------------------------- gossip --

TEST(Gossip, AllToAllDetectsCrashWithinTimeoutBound) {
  sim::Engine engine;
  net::Medium medium{engine, lan(16), 11};
  GossipParams params;  // fanout = 0: all-to-all heartbeating
  GossipCluster gossip{medium, 16, params, 22};

  std::vector<Detection> detections;
  gossip.set_failure_handler([&](net::NodeId obs, net::NodeId failed) {
    detections.push_back({obs, failed, engine.now().to_ns()});
  });

  gossip.start();
  const Time crash_at = Time::sec(5);
  engine.schedule_at(crash_at, [&] {
    medium.crash(7);
    gossip.crash(7);
  });
  engine.run_until(Time::sec(30));

  net::Members expect = net::Members::all(16);
  expect.erase(7);
  EXPECT_TRUE(gossip.views_agree(expect));
  ASSERT_EQ(detections.size(), 15u);
  for (const Detection& d : detections) {
    EXPECT_EQ(d.failed, 7u);
    // Detection is timeout-bound: last heartbeat before the crash plus
    // fail_timeout plus one period of sweep granularity (and slack for
    // the 2 ms worst-case link delay).
    const std::int64_t bound = crash_at.to_ns() +
                               params.fail_timeout.to_ns() +
                               2 * params.period.to_ns() + Time::ms(4).to_ns();
    EXPECT_GT(d.at_ns, crash_at.to_ns());
    EXPECT_LE(d.at_ns, bound);
  }
}

TEST(Gossip, NoFalsePositivesOnLosslessNetwork) {
  sim::Engine engine;
  net::Medium medium{engine, lan(16), 33};
  GossipCluster gossip{medium, 16, GossipParams{}, 44};
  gossip.set_failure_handler([&](net::NodeId, net::NodeId) {
    FAIL() << "false positive on a lossless network";
  });
  gossip.start();
  engine.run_until(Time::sec(60));
  EXPECT_EQ(gossip.view_changes(), 0u);
}

TEST(Gossip, EpidemicFanoutModeAlsoConverges) {
  sim::Engine engine;
  net::Medium medium{engine, lan(24), 11};
  GossipParams params;
  params.fanout = 3;  // push full table to 3 random peers per period
  params.fail_timeout = Time::ms(2000);   // epidemic spread needs slack:
  params.cleanup_timeout = Time::ms(4000);  // counters hop, not beam
  GossipCluster gossip{medium, 24, params, 22};
  gossip.start();
  engine.schedule_at(Time::sec(5), [&] {
    medium.crash(1);
    gossip.crash(1);
  });
  engine.run_until(Time::sec(40));
  net::Members expect = net::Members::all(24);
  expect.erase(1);
  EXPECT_TRUE(gossip.views_agree(expect));
}

// ----------------------------------------------------------------- Rapid --

TEST(Rapid, CorrelatedCrashBatchesIntoASingleCut) {
  sim::Engine engine;
  net::Medium medium{engine, lan(32), 11};
  RapidCluster rapid{medium, 32, RapidParams{}, 22};

  std::vector<Detection> detections;
  rapid.set_failure_handler([&](net::NodeId obs, net::NodeId failed) {
    detections.push_back({obs, failed, engine.now().to_ns()});
  });

  rapid.start();
  engine.schedule_at(Time::sec(5), [&] {
    for (net::NodeId f : {4u, 9u, 17u, 23u}) {
      medium.crash(f);
      rapid.crash(f);
    }
  });
  engine.run_until(Time::sec(30));

  net::Members expect = net::Members::all(32);
  for (net::NodeId f : {4u, 9u, 17u, 23u}) expect.erase(f);
  EXPECT_TRUE(rapid.views_agree(expect));

  // The stability rule turns 4 simultaneous failures into ONE view
  // change per survivor (28 installs), not 4 — the metric that
  // separates Rapid from SWIM/gossip in the shootout.
  EXPECT_EQ(rapid.view_changes(), 28u);
  for (net::NodeId i = 0; i < 32; ++i) {
    if (!rapid.crashed(i)) {
      EXPECT_EQ(rapid.cuts_installed(i), 1u) << "node " << i;
    }
  }
  EXPECT_EQ(detections.size(), 4u * 28u);
}

TEST(Rapid, NoFalsePositivesOnLosslessNetwork) {
  sim::Engine engine;
  net::Medium medium{engine, lan(16), 33};
  RapidCluster rapid{medium, 16, RapidParams{}, 44};
  rapid.set_failure_handler([&](net::NodeId, net::NodeId) {
    FAIL() << "false positive on a lossless network";
  });
  rapid.start();
  engine.run_until(Time::sec(60));
  EXPECT_EQ(rapid.view_changes(), 0u);
}

// ----------------------------------------------------------- determinism --

/// Fingerprint of a full protocol run: traffic totals + view state.
std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>
swim_fingerprint() {
  sim::Engine engine;
  net::MediumConfig cfg = lan(16);
  cfg.default_link.drop_p = 0.03;
  cfg.default_link.dup_p = 0.01;
  net::Medium medium{engine, cfg, 99};
  SwimCluster swim{medium, 16, SwimParams{}, 100};
  swim.start();
  engine.schedule_at(Time::sec(4), [&] {
    medium.crash(2);
    swim.crash(2);
  });
  engine.run_until(Time::sec(20));
  std::uint64_t view_hash = 0;
  for (net::NodeId i = 0; i < 16; ++i) {
    for (std::uint64_t w : swim.view(i).words()) {
      view_hash = view_hash * 1099511628211ULL + w;
    }
  }
  return {medium.stats().sent, medium.stats().bytes_sent,
          swim.view_changes(), view_hash};
}

TEST(NetBaselines, LossySwimRunsAreBitIdenticalAcrossRuns) {
  const auto a = swim_fingerprint();
  const auto b = swim_fingerprint();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace canely::baselines
