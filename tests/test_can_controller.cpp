// Focused unit tests for the CAN controller's fault confinement state
// machine (ISO 11898 error counters) and queue semantics — the machinery
// that enforces the paper's weak-fail-silent assumption (§3, §4).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "sim/engine.hpp"

namespace canely::can {
namespace {

struct Sink final : ControllerClient {
  void on_rx(const Frame& f, bool own) override {
    if (!own) rx.push_back(f);
  }
  void on_tx_confirm(const Frame& f) override { cnf.push_back(f); }
  void on_bus_off() override { ++bus_offs; }
  void on_bus_off_recovered() override { ++recoveries; }
  std::vector<Frame> rx;
  std::vector<Frame> cnf;
  int bus_offs{0};
  int recoveries{0};
};

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    a = std::make_unique<Controller>(0, bus);
    b = std::make_unique<Controller>(1, bus);
    a->set_client(&sa);
    b->set_client(&sb);
  }
  sim::Engine engine;
  Bus bus{engine};
  std::unique_ptr<Controller> a, b;
  Sink sa, sb;
};

TEST_F(ControllerTest, StartsErrorActiveWithZeroCounters) {
  EXPECT_EQ(a->error_state(), ErrorState::kErrorActive);
  EXPECT_EQ(a->tec(), 0);
  EXPECT_EQ(a->rec(), 0);
  EXPECT_TRUE(a->alive());
}

TEST_F(ControllerTest, TecRisesByEightPerTxErrorFallsByOnePerSuccess) {
  ScriptedFaults faults;
  faults.add([](const TxContext&) { return true; }, Verdict::global_error(),
             /*shots=*/2);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::ms(5));
  // 2 errors (+16), 1 success (-1).
  EXPECT_EQ(a->tec(), 15);
  EXPECT_EQ(sa.cnf.size(), 1u);
}

TEST_F(ControllerTest, RecRisesByOnePerRxErrorFallsOnReception) {
  ScriptedFaults faults;
  faults.add([](const TxContext&) { return true; }, Verdict::global_error(),
             /*shots=*/3);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::ms(5));
  EXPECT_EQ(b->rec(), 2);  // 3 errors, 1 good reception
}

TEST_F(ControllerTest, ErrorPassiveAt128) {
  ScriptedFaults faults;
  faults.add([](const TxContext&) { return true; }, Verdict::global_error(),
             /*shots=*/16);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::ms(10));
  // 16 x 8 = 128 reached mid-way: error passive, but the frame finally
  // made it through.
  EXPECT_EQ(sa.cnf.size(), 1u);
  EXPECT_EQ(a->tec(), 127);  // 128 - 1 on the final success
  // It *was* passive at its peak; drive it there again and check.
  faults.add([](const TxContext&) { return true; }, Verdict::global_error(),
             /*shots=*/1);
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::ms(20));
  EXPECT_EQ(a->tec(), 134);  // 127 + 8 - 1
  EXPECT_EQ(a->error_state(), ErrorState::kErrorPassive);
}

TEST_F(ControllerTest, RecRehabilitatesTo119FromPassive) {
  // Drive b's REC past 127 via receive errors.  A single transmitter
  // cannot do it (it bus-offs after 32 consecutive errors), so a relay of
  // five transmitters supplies 140 destroyed transmissions; the last
  // living one finally succeeds.
  std::vector<std::unique_ptr<Controller>> senders;
  std::vector<std::unique_ptr<Sink>> sinks;
  for (NodeId id = 2; id < 7; ++id) {
    senders.push_back(std::make_unique<Controller>(id, bus));
    sinks.push_back(std::make_unique<Sink>());
    senders.back()->set_client(sinks.back().get());
  }
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter >= 2; },
             Verdict::global_error(), /*shots=*/140);
  bus.set_fault_injector(&faults);
  for (std::size_t i = 0; i < senders.size(); ++i) {
    senders[i]->request_tx(
        Frame::make_data(0x10 + static_cast<std::uint32_t>(i), {}));
  }
  // Walk forward, recording b's worst REC and whether it went passive.
  int max_rec = 0;
  bool was_passive = false;
  for (int step = 0; step < 600; ++step) {
    engine.run_until(engine.now() + sim::Time::us(100));
    max_rec = std::max(max_rec, b->rec());
    was_passive =
        was_passive || b->error_state() == ErrorState::kErrorPassive;
  }
  EXPECT_GE(max_rec, 128);
  EXPECT_TRUE(was_passive);
  // The surviving sender's success rehabilitated b to the ISO re-arm
  // value (119) minus subsequent good receptions.
  EXPECT_LE(b->rec(), 119);
  EXPECT_GE(b->rec(), 110);
  EXPECT_EQ(b->error_state(), ErrorState::kErrorActive);
}

TEST_F(ControllerTest, BusOffClearsQueueAndGoesSilent) {
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/-1);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  a->request_tx(Frame::make_data(0x2, {}));
  engine.run_until(sim::Time::ms(30));
  EXPECT_EQ(a->error_state(), ErrorState::kBusOff);
  EXPECT_EQ(sa.bus_offs, 1);
  EXPECT_EQ(a->tx_queue_depth(), 0u);
  EXPECT_FALSE(a->alive());
  // Deaf too: b's frames no longer reach it.
  b->request_tx(Frame::make_data(0x3, {}));
  engine.run_until(sim::Time::ms(40));
  EXPECT_TRUE(sa.rx.empty());
}

TEST_F(ControllerTest, BusOffRecoveryRejoinsAfter128x11Bits) {
  a->enable_bus_off_recovery(true);
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/32);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  // Step until fault confinement fires (32 errors, a few ms).
  while (sa.bus_offs == 0 && engine.now() < sim::Time::ms(20)) {
    engine.run_until(engine.now() + sim::Time::us(50));
  }
  ASSERT_EQ(sa.bus_offs, 1);
  ASSERT_EQ(a->error_state(), ErrorState::kBusOff);
  // 128 * 11 bit-times at 1 Mbps = 1408 us later: error-active again.
  engine.run_until(engine.now() + sim::Time::us(1500));
  EXPECT_EQ(a->error_state(), ErrorState::kErrorActive);
  EXPECT_EQ(a->tec(), 0);
  EXPECT_EQ(sa.recoveries, 1);
  // And it can transmit again.
  a->request_tx(Frame::make_data(0x5, {}));
  engine.run_until(engine.now() + sim::Time::ms(5));
  ASSERT_FALSE(sb.rx.empty());
  EXPECT_EQ(sb.rx.back().id, 0x5u);
}

TEST_F(ControllerTest, NoRecoveryWithoutOptIn) {
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/-1);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::sec(1));
  EXPECT_EQ(a->error_state(), ErrorState::kBusOff);
  EXPECT_EQ(sa.recoveries, 0);
}

TEST_F(ControllerTest, CrashBeatsRecovery) {
  a->enable_bus_off_recovery(true);
  ScriptedFaults faults;
  faults.add([](const TxContext& c) { return c.transmitter == 0; },
             Verdict::global_error(), /*shots=*/32);
  bus.set_fault_injector(&faults);
  a->request_tx(Frame::make_data(0x1, {}));
  while (sa.bus_offs == 0 && engine.now() < sim::Time::ms(20)) {
    engine.run_until(engine.now() + sim::Time::us(50));
  }
  ASSERT_EQ(a->error_state(), ErrorState::kBusOff);
  a->crash();  // dies during the recovery wait
  engine.run_until(engine.now() + sim::Time::ms(10));
  EXPECT_EQ(sa.recoveries, 0);
  EXPECT_FALSE(a->alive());
}

TEST_F(ControllerTest, RequestsWhileDeadAreDropped) {
  a->crash();
  a->request_tx(Frame::make_data(0x1, {}));
  EXPECT_EQ(a->tx_queue_depth(), 0u);
}

TEST_F(ControllerTest, QueueOrdersByPriorityThenFifo) {
  // Block the bus with a transmission from b, then fill a's queue.
  b->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::us(5));  // b's frame in flight
  const std::uint8_t p1[] = {1};
  const std::uint8_t p2[] = {2};
  a->request_tx(Frame::make_data(0x300, p1));
  a->request_tx(Frame::make_data(0x100, {}));
  a->request_tx(Frame::make_data(0x300, p2));  // same id, FIFO after first
  engine.run_until(sim::Time::ms(2));
  ASSERT_EQ(sb.rx.size(), 3u);
  EXPECT_EQ(sb.rx[0].id, 0x100u);
  EXPECT_EQ(sb.rx[1].data[0], 1);
  EXPECT_EQ(sb.rx[2].data[0], 2);
}

TEST_F(ControllerTest, AcceptanceFiltersGateDelivery) {
  // b accepts only ids matching 0x100/0x700 (i.e. 0x100..0x1FF).
  b->add_acceptance_filter(0x100, 0x700);
  a->request_tx(Frame::make_data(0x123, {}));
  a->request_tx(Frame::make_data(0x223, {}));
  engine.run_until(sim::Time::ms(1));
  ASSERT_EQ(sb.rx.size(), 1u);
  EXPECT_EQ(sb.rx[0].id, 0x123u);
  // Filtering is receive-side only: the sender still got both confirms
  // (b acknowledged at the bus level).
  EXPECT_EQ(sa.cnf.size(), 2u);
}

TEST_F(ControllerTest, MultipleFiltersAreOrEd) {
  b->add_acceptance_filter(0x100, 0x7FF);
  b->add_acceptance_filter(0x200, 0x7FF);
  a->request_tx(Frame::make_data(0x100, {}));
  a->request_tx(Frame::make_data(0x200, {}));
  a->request_tx(Frame::make_data(0x300, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(sb.rx.size(), 2u);
}

TEST_F(ControllerTest, ClearFiltersRestoresPromiscuity) {
  b->add_acceptance_filter(0x0, 0x7FF);
  EXPECT_FALSE(b->accepts(0x5));
  b->clear_acceptance_filters();
  EXPECT_TRUE(b->accepts(0x5));
  a->request_tx(Frame::make_data(0x5, {}));
  engine.run_until(sim::Time::ms(1));
  EXPECT_EQ(sb.rx.size(), 1u);
}

TEST_F(ControllerTest, OwnTransmissionsBypassFilters) {
  a->add_acceptance_filter(0x700, 0x7FF);  // matches nothing a sends
  a->request_tx(Frame::make_data(0x5, {}));
  engine.run_until(sim::Time::ms(1));
  // a's client still saw its own frame via the self-reception path.
  EXPECT_EQ(sa.cnf.size(), 1u);
}

TEST_F(ControllerTest, AbortInFlightFrameSuppressesConfirm) {
  // Abort the frame while it is on the wire: the queue entry disappears,
  // so the completion finds nothing to confirm (matches controllers where
  // an abort during transmission takes effect without a success report).
  a->request_tx(Frame::make_data(0x1, {}));
  engine.run_until(sim::Time::us(5));
  EXPECT_EQ(a->abort_matching([](const Frame&) { return true; }), 1u);
  engine.run_until(sim::Time::ms(2));
  EXPECT_TRUE(sa.cnf.empty());
  // The receiver still got the frame — the wire does not un-transmit.
  EXPECT_EQ(sb.rx.size(), 1u);
}

}  // namespace
}  // namespace canely::can
