// Tests for the checker subsystem (src/check): checked-run determinism,
// invariant monitors on known-good and known-bad scripts, exploration
// thread-count invariance, counterexample shrinking, and the replayable
// artifact round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/artifact.hpp"
#include "check/explore.hpp"
#include "check/harness.hpp"
#include "check/monitor.hpp"
#include "check/shrink.hpp"

namespace canely::testing {
namespace {

using check::FaultEvent;
using check::FaultOp;
using check::FaultScript;
using check::RunResult;
using check::ScenarioConfig;
using check::Violation;

// The verified FDA-ablation counterexample (found by check_explorer's
// depth-2 search): omit n5's life-sign at n0 and crash n5 — n0 detects a
// whole heartbeat period early, just before a membership cycle boundary —
// then omit n0's resulting failure-sign at n7 and crash n0.  Survivors
// split over whether the intermediate view was installed.
FaultScript ablation_counterexample() {
  FaultEvent base;
  base.tx = 32;
  base.op = FaultOp::kOmit;
  base.victims = can::NodeSet{0};
  base.crash_sender = true;
  FaultEvent second;
  second.tx = 35;
  second.op = FaultOp::kOmit;
  second.victims = can::NodeSet{7};
  second.crash_sender = true;
  return FaultScript{base, second};
}

bool violates(const RunResult& run, std::string_view monitor) {
  for (const Violation& v : run.violations) {
    if (v.monitor == monitor) return true;
  }
  return false;
}

// --- checked-run determinism ------------------------------------------------

TEST(CheckHarness, FaultFreeMembershipRunIsClean) {
  const auto cfg = ScenarioConfig::membership(8);
  const RunResult run = check::run_checked(cfg, {});
  EXPECT_TRUE(run.violations.empty()) << run.violations.front().detail;
  EXPECT_GT(run.attempts, 0u);
}

TEST(CheckHarness, SameScriptSameSeedSameTraceHash) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/false);
  const FaultScript script = ablation_counterexample();
  const RunResult a = check::run_checked(cfg, script);
  const RunResult b = check::run_checked(cfg, script);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(CheckHarness, DifferentScriptsDifferentTraceHash) {
  const auto cfg = ScenarioConfig::membership(8);
  FaultEvent ev;
  ev.tx = 12;
  ev.op = FaultOp::kOmit;
  ev.victims = can::NodeSet{3};
  ev.crash_sender = false;
  const RunResult clean = check::run_checked(cfg, {});
  const RunResult faulty = check::run_checked(cfg, {ev});
  EXPECT_NE(clean.trace_hash, faulty.trace_hash);
}

TEST(CheckHarness, ScenarioBoundsAreOrdered) {
  const auto cfg = ScenarioConfig::membership(8);
  EXPECT_LT(cfg.detection_bound(), cfg.expel_grace());
  EXPECT_LT(cfg.converge_by(), cfg.duration - cfg.expel_grace());
}

// --- monitors on known scripts ----------------------------------------------

TEST(CheckMonitors, AblatedFdaCounterexampleViolatesViewConsistency) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/false);
  const RunResult run = check::run_checked(cfg, ablation_counterexample());
  EXPECT_TRUE(violates(run, "view-consistency"));
}

TEST(CheckMonitors, SameScriptWithFdaEnabledIsConsistent) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/true);
  const RunResult run = check::run_checked(cfg, ablation_counterexample());
  EXPECT_FALSE(violates(run, "view-consistency"));
}

TEST(CheckMonitors, CrashedNodeIsExpelledFromSurvivorViews) {
  const auto cfg = ScenarioConfig::membership(8);
  FaultEvent ev;
  ev.tx = 11;  // n0's first life-sign
  ev.op = FaultOp::kOmit;
  ev.victims = can::NodeSet{1};
  ev.crash_sender = true;
  const RunResult run = check::run_checked(cfg, {ev}, /*want_tx_log=*/true);
  EXPECT_TRUE(run.violations.empty()) << run.violations.front().detail;
  // Survivors converged on the 7-node view; the installs are visible.
  bool saw_expulsion = false;
  for (std::size_t i = 1; i < 8; ++i) {
    for (const check::ViewInstall& vi : run.installs[i]) {
      if (!vi.view.contains(0)) saw_expulsion = true;
    }
  }
  EXPECT_TRUE(saw_expulsion);
}

TEST(CheckMonitors, IsInfixContract) {
  using Seq = std::vector<can::NodeSet>;
  const can::NodeSet a{1}, b{2}, c{3};
  EXPECT_TRUE(check::is_infix(Seq{}, Seq{a, b}));
  EXPECT_TRUE(check::is_infix(Seq{a, b}, Seq{a, b, c}));
  EXPECT_TRUE(check::is_infix(Seq{b, c}, Seq{a, b, c}));
  EXPECT_FALSE(check::is_infix(Seq{a, c}, Seq{a, b, c}));
}

// --- exploration ------------------------------------------------------------

TEST(CheckExplore, SmallBudgetExplorationIsCleanWithFdaOn) {
  check::ExploreConfig cfg;
  cfg.scenario = ScenarioConfig::membership(8);
  cfg.threads = 2;
  cfg.max_frames = 8;
  cfg.max_victim_sets = 8;
  const check::ExploreResult result = check::explore(cfg);
  EXPECT_GT(result.placements, 0u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(CheckExplore, AggregateIsByteIdenticalForAnyThreadCount) {
  check::ExploreConfig cfg;
  cfg.scenario = ScenarioConfig::membership(8);
  cfg.max_frames = 10;
  cfg.max_victim_sets = 8;
  cfg.random_walks = 16;

  cfg.threads = 1;
  const check::ExploreResult seq = check::explore(cfg);
  cfg.threads = 4;
  const check::ExploreResult par = check::explore(cfg);

  EXPECT_EQ(seq.placements, par.placements);
  EXPECT_EQ(seq.runs, par.runs);
  EXPECT_EQ(seq.aggregate_hash, par.aggregate_hash);
  ASSERT_EQ(seq.violations.size(), par.violations.size());
  for (std::size_t i = 0; i < seq.violations.size(); ++i) {
    EXPECT_EQ(seq.violations[i].run_index, par.violations[i].run_index);
    EXPECT_EQ(seq.violations[i].script, par.violations[i].script);
  }
}

// --- shrinking --------------------------------------------------------------

TEST(CheckShrink, PaddedCounterexampleShrinksToMinimalCore) {
  const auto cfg = ScenarioConfig::membership(8, /*fda_on=*/false);
  // Pad the real counterexample with two inert events.  They must come
  // AFTER the core events in wire order: a fault on an earlier frame
  // inserts a retransmission attempt and shifts every later tx index,
  // which would derail the core script.  Late faults on steady-state
  // life-signs are absorbed (the retransmission restores consistency).
  FaultScript padded = ablation_counterexample();
  FaultEvent junk1;
  junk1.tx = 70;
  junk1.op = FaultOp::kOmit;
  junk1.victims = can::NodeSet{2};
  junk1.crash_sender = false;
  FaultEvent junk2;
  junk2.tx = 80;
  junk2.op = FaultOp::kError;
  junk2.victims = can::NodeSet{};
  junk2.crash_sender = false;
  padded.push_back(junk1);
  padded.push_back(junk2);
  ASSERT_TRUE(
      violates(check::run_checked(cfg, padded), "view-consistency"));

  const check::ShrinkResult shrunk =
      check::shrink(cfg, padded, "view-consistency");
  EXPECT_LE(shrunk.script.size(), 2u);
  EXPECT_TRUE(shrunk.locally_minimal);
  EXPECT_EQ(shrunk.violation.monitor, "view-consistency");

  // The shrunk script still violates, and removing any single event no
  // longer does — local minimality, checked from the outside.
  EXPECT_TRUE(
      violates(check::run_checked(cfg, shrunk.script), "view-consistency"));
  for (std::size_t drop = 0; drop < shrunk.script.size(); ++drop) {
    FaultScript smaller = shrunk.script;
    smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(drop));
    EXPECT_FALSE(
        violates(check::run_checked(cfg, smaller), "view-consistency"));
  }
}

// --- artifact round-trip ----------------------------------------------------

TEST(CheckArtifact, JsonRoundTripPreservesEverything) {
  check::Artifact artifact;
  artifact.scenario = ScenarioConfig::membership(8, /*fda_on=*/false);
  artifact.script = ablation_counterexample();
  artifact.monitor = "view-consistency";
  artifact.trace_hash = 0x64b9f50534ae66b0ULL;
  artifact.violation =
      Violation{"view-consistency", sim::Time::ms(160), "detail text"};

  const std::string path =
      ::testing::TempDir() + "check_artifact_roundtrip.json";
  check::write_artifact(path, artifact);
  const check::Artifact loaded = check::load_artifact(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.monitor, artifact.monitor);
  EXPECT_EQ(loaded.trace_hash, artifact.trace_hash);
  EXPECT_EQ(loaded.script, artifact.script);
  EXPECT_EQ(loaded.scenario.n, artifact.scenario.n);
  EXPECT_EQ(loaded.scenario.params.fda_agreement,
            artifact.scenario.params.fda_agreement);
  EXPECT_EQ(loaded.scenario.duration, artifact.scenario.duration);
  EXPECT_EQ(loaded.scenario.settle, artifact.scenario.settle);
  EXPECT_EQ(loaded.violation.monitor, artifact.violation.monitor);
  EXPECT_EQ(loaded.violation.when, artifact.violation.when);

  // A replay of the loaded artifact reproduces the recorded run exactly.
  const RunResult replayed =
      check::run_checked(loaded.scenario, loaded.script);
  EXPECT_EQ(replayed.trace_hash, artifact.trace_hash);
  EXPECT_TRUE(violates(replayed, loaded.monitor));
}

}  // namespace
}  // namespace canely::testing
