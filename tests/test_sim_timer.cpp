// Unit tests for the alarm service (src/sim/timer.hpp) and the RNG.

#include <gtest/gtest.h>

#include <set>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/timer.hpp"

namespace canely::sim {
namespace {

class TimerTest : public ::testing::Test {
 protected:
  Engine engine;
  TimerService timers{engine};
};

TEST_F(TimerTest, AlarmFiresAfterDuration) {
  bool fired = false;
  timers.start_alarm(Time::ms(5), [&] { fired = true; });
  engine.run_until(Time::ms(4));
  EXPECT_FALSE(fired);
  engine.run_until(Time::ms(5));
  EXPECT_TRUE(fired);
}

TEST_F(TimerTest, NullTimerIsNeverActive) {
  EXPECT_FALSE(timers.active(kNullTimer));
  EXPECT_FALSE(timers.cancel_alarm(kNullTimer));
}

TEST_F(TimerTest, CancelPreventsExpiry) {
  bool fired = false;
  TimerId id = timers.start_alarm(Time::ms(5), [&] { fired = true; });
  EXPECT_TRUE(timers.active(id));
  EXPECT_TRUE(timers.cancel_alarm(id));
  EXPECT_FALSE(timers.active(id));
  engine.run_until(Time::ms(10));
  EXPECT_FALSE(fired);
}

TEST_F(TimerTest, CancelExpiredAlarmFails) {
  TimerId id = timers.start_alarm(Time::ms(1), [] {});
  engine.run_until(Time::ms(2));
  EXPECT_FALSE(timers.cancel_alarm(id));
}

TEST_F(TimerTest, AlarmInactiveDuringItsOwnCallback) {
  bool was_active = true;
  TimerId id{};
  id = timers.start_alarm(Time::ms(1), [&] { was_active = timers.active(id); });
  engine.run_until(Time::ms(1));
  EXPECT_FALSE(was_active);
}

TEST_F(TimerTest, RestartFromCallback) {
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) timers.start_alarm(Time::ms(1), tick);
  };
  timers.start_alarm(Time::ms(1), tick);
  engine.run_until(Time::ms(10));
  EXPECT_EQ(fires, 3);
}

TEST_F(TimerTest, DeadlineReporting) {
  TimerId id = timers.start_alarm(Time::ms(7), [] {});
  EXPECT_EQ(timers.deadline(id), Time::ms(7));
  EXPECT_EQ(timers.deadline(kNullTimer), Time::max());
}

TEST_F(TimerTest, CancelAllClearsEverything) {
  int fires = 0;
  for (int i = 1; i <= 5; ++i) {
    timers.start_alarm(Time::ms(i), [&] { ++fires; });
  }
  EXPECT_EQ(timers.pending_count(), 5u);
  timers.cancel_all();
  EXPECT_EQ(timers.pending_count(), 0u);
  engine.run_until(Time::ms(10));
  EXPECT_EQ(fires, 0);
}

TEST_F(TimerTest, IndependentTimersCoexist) {
  std::vector<int> order;
  timers.start_alarm(Time::ms(2), [&] { order.push_back(2); });
  timers.start_alarm(Time::ms(1), [&] { order.push_back(1); });
  engine.run_until(Time::ms(3));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- RNG -------------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, Uniform01Bounds) {
  Rng rng{9};
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, SampleDistinct) {
  Rng rng{11};
  const auto picks = rng.sample(20, 8);
  EXPECT_EQ(picks.size(), 8u);
  std::set<std::size_t> uniq(picks.begin(), picks.end());
  EXPECT_EQ(uniq.size(), 8u);
  for (auto p : picks) EXPECT_LT(p, 20u);
}

TEST(Rng, ForkIndependence) {
  Rng parent{5};
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

}  // namespace
}  // namespace canely::sim
