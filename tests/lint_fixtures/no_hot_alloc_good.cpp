namespace canely::tools {

// canely-lint: hot-path
int hot_sum(const int* xs, int n, int* scratch) {
  int s = 0;
  for (int i = 0; i < n; ++i) {
    scratch[i] = xs[i];
    s += scratch[i];
  }
  return s;
}

}  // namespace canely::tools
