#include <string>

namespace canely::tools {

struct FakeTracer {
  void emit(long when, int level, const char* cat,
            const std::string& text) const;
};

std::string cat_str(const char* head, int tail);

// Untagged: eager message building is allowed here (and must not be
// reported).
void cold_note(const FakeTracer& tracer, int node) {
  tracer.emit(0, 2, "fd", cat_str("node ", node));
}

// canely-lint: hot-path
void hot_note(const FakeTracer& tracer, int node) {
  tracer.emit(0, 2, "fd", cat_str("node ", node));
}

}  // namespace canely::tools
