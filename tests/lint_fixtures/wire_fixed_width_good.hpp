#pragma once

#include <array>
#include <cstdint>

namespace canely::can {

enum class Kind : std::uint8_t { kData, kRemote };

struct GoodHeader {
  std::uint32_t id{0};
  std::uint8_t dlc{0};
  std::array<std::uint8_t, 8> data{};
  Kind kind{Kind::kData};

  // Member functions may use whatever types they like; only data
  // members cross the wire.
  [[nodiscard]] bool extended() const { return (id >> 29) != 0U; }
  [[nodiscard]] int payload_bits() const { return dlc * 8; }
};

}  // namespace canely::can
