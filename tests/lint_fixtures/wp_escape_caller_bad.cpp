// Whole-program fixture, bad twin: determinism-zone code (lint under a
// src/sim/ pretend path) calling a helper that touches rand() in a
// non-zone TU (wp_escape_util.cpp).  Per-file rules see nothing wrong in
// either file; only the cross-TU escape analysis can convict.
namespace esc {
int entropy_word();
int sample() { return entropy_word(); }
}  // namespace esc
