#include <cstdint>
#include <map>

namespace canely::check {

struct Node {
  int id;
};

// Pointer *values* are fine; only pointer keys order by address.
std::map<std::uint32_t, Node*> index_by_id();

}  // namespace canely::check
