#pragma once

#include <cstdint>

namespace canely::can {

struct BadHeader {
  unsigned id;
  std::uint8_t dlc;
  std::size_t payload_len;
};

}  // namespace canely::can
