#include <vector>

namespace canely::tools {

// canely-lint: hot-path
std::vector<int> doubled(const std::vector<int>& xs) {
  std::vector<int> out;
  int sum = 0;
  for (int x : xs) {
    out.push_back(2 * x);
    sum += x;
  }
  out.push_back(sum);
  return out;
}

}  // namespace canely::tools
