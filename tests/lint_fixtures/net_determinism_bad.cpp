#include <chrono>
#include <random>

namespace canely::net {

// A lossy medium drawing delays from OS entropy and stamping deliveries
// with host time: exactly what the determinism zone exists to reject.
long long draw_delay_ns() {
  std::random_device entropy;
  const auto stamp = std::chrono::steady_clock::now();
  return static_cast<long long>(entropy()) +
         stamp.time_since_epoch().count();
}

}  // namespace canely::net
