#include <unordered_map>

namespace canely::check {

int sum_all() {
  std::unordered_map<int, int> counts;
  counts[3] = 4;
  int s = 0;
  for (const auto& kv : counts) s += kv.second;
  return s + counts.begin()->first;
}

}  // namespace canely::check
