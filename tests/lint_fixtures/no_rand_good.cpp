namespace canely::sim {

template <typename Rng>
int noise(Rng& rng) {
  return static_cast<int>(rng.next()) + static_cast<int>(rng.random());
}

int mix(int seed) { return seed * 40503; }

}  // namespace canely::sim
