// Whole-program fixture, bad twin: src/obs code (a determinism zone)
// reaching a wall-clock helper in a non-zone TU without declaring the
// seam — the shape an unannotated telemetry sampler would have.  Only
// the cross-TU escape analysis can convict.
namespace obsclock {
long long wall_ns();
long long sample_stamp() { return wall_ns(); }
}  // namespace obsclock
