#include <string>

namespace canely::campaign {

std::string trace_dir(const std::string& configured) { return configured; }

}  // namespace canely::campaign
