#include <string>

namespace canely::tools {

struct FakeTracer {
  template <typename MakeText>
  void emit(long when, int level, const char* cat, MakeText&& make) const;
};

std::string cat_str(const char* head, int tail);

// canely-lint: hot-path
void hot_note(const FakeTracer& tracer, int node) {
  // Lazy form: the message is built only when the record reaches a sink.
  tracer.emit(0, 2, "fd", [&] { return cat_str("node ", node); });
}

}  // namespace canely::tools
