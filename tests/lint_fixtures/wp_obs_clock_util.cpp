// Whole-program fixture: the wall-clock sink for the src/obs seam test.
// Lives outside every determinism directory (pretend path tools/...), so
// the per-file no-wall-clock rule stays silent — but the extractor
// records the steady_clock fact, seeding the escape analysis.
#include <chrono>

namespace obsclock {
long long wall_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace obsclock
