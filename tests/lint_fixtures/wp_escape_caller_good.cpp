// Whole-program fixture, good twin: the same cross-TU call, annotated as
// a deliberate nondeterminism seam — no finding.
namespace esc {
int entropy_word();
int sample() {
  // canely-lint: nondeterministic-ok(fixture: entropy is injected only on the non-replay path)
  return entropy_word();
}
}  // namespace esc
