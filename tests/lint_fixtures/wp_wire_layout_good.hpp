#pragma once
// Whole-program fixture, good twin: same members sorted by decreasing
// alignment — offsets tile exactly, zero padding, no finding.
#include <cstdint>

namespace fix {
struct Packet {
  std::uint64_t body[kWords]{};
  std::uint32_t crc{0};
  SeqNo seq{0};
  std::uint8_t tag{0};
  std::uint8_t flag{0};
};
}  // namespace fix
