// Whole-program fixture: a well-formed allow() that silences nothing.
// The per-file pass tolerates it; the whole-program pass flags it as
// unused-suppression so stale suppressions cannot accumulate.
namespace wp {
// canely-lint: allow(no-rand) — fixture: there is nothing to silence here
int five() { return 5; }
}  // namespace wp
