#include <cstdlib>

namespace canely::sim {

int jitter() {
  // canely-lint: allow(no-rand, no-teleportation) — one rule name is wrong
  return rand();
}

}  // namespace canely::sim
