// Whole-program fixture, good twin: the same cross-TU wall-clock use,
// annotated as a deliberate nondeterminism seam (the telemetry sampler
// convention, src/obs/telemetry.cpp) — no finding.
namespace obsclock {
long long wall_ns();
long long sample_stamp() {
  // canely-lint: nondeterministic-ok(fixture: sampler pacing is wall-time by design, observational only)
  return wall_ns();
}
}  // namespace obsclock
