#include <cstdlib>

namespace canely::campaign {

const char* trace_dir() { return std::getenv("CANELY_TRACE_DIR"); }

}  // namespace canely::campaign
