#include <map>

namespace canely::check {

struct Node {
  int id;
};

int count(std::map<Node*, int>& by_addr) {
  return static_cast<int>(by_addr.size());
}

}  // namespace canely::check
