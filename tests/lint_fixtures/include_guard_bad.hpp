#include <cstdint>

inline std::uint8_t zero() { return 0; }
