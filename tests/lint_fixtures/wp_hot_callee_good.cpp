// Whole-program fixture, good twin: the same dispatch() reserves before
// pushing, so reaching it from a hot-path region is fine.
#include <cstddef>
#include <vector>

namespace wp {
void sink(int v);
void dispatch(int n) {
  std::vector<int> batch;
  batch.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) batch.push_back(i);
  sink(static_cast<int>(batch.size()));
}
}  // namespace wp
