namespace canely::tools {

// canely-lint: hot-path
template <typename F>
int apply_hot(F&& f, int x) {
  return f(x);
}

}  // namespace canely::tools
