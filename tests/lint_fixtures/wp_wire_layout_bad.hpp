#pragma once
// Whole-program fixture, bad twin: natural alignment inserts padding
// after tag (u16 follows u8) and after seq (u64 array follows), and the
// tail pads to 8 — the audit must report the computed layout and the
// reorder hint.  SeqNo and kWords resolve via wp_wire_types.hpp.
#include <cstdint>

namespace fix {
struct Packet {
  std::uint8_t tag{0};
  SeqNo seq{0};
  std::uint64_t body[kWords]{};
  std::uint32_t crc{0};
  std::uint8_t flag{0};
};
}  // namespace fix
