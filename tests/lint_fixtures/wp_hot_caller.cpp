// Whole-program fixture: a tagged hot-path region whose only sin is
// calling dispatch(), defined in another TU (wp_hot_callee_bad.cpp /
// wp_hot_callee_good.cpp).  The finding, if any, lands on the callee.
namespace wp {
void dispatch(int n);
// canely-lint: hot-path
void pump(int n) { dispatch(n); }
}  // namespace wp
