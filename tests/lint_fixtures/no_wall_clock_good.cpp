namespace canely::sim {

// Member calls named like wall-clock functions are fine — the rule only
// bans the ambient (plain or std::-qualified) spellings.
template <typename Source>
long long sim_ms(Source& src) {
  return src.time(0) + src.clock();
}

long long now_from(long long engine_now) { return engine_now; }

}  // namespace canely::sim
