namespace canely::tools {

// TODO: tighten this bound once the scheduler model lands
int bound() { return 64; }

/* FIXME the overflow path is untested */
int overflow_guard() { return 1; }

}  // namespace canely::tools
