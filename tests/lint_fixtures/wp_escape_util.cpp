// Whole-program fixture: the nondeterministic sink.  Lives outside every
// determinism directory (pretend path tools/...), so the per-file
// no-rand rule stays silent — but the extractor records the rand() fact,
// seeding the escape analysis.
#include <cstdlib>

namespace esc {
int entropy_word() { return std::rand(); }
}  // namespace esc
