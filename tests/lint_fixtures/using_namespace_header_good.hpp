#pragma once

#include <cstdint>

// using-declarations (single names) are fine; only directives leak.
using std::uint8_t;

inline std::uint8_t low(std::uint16_t v) {
  return static_cast<std::uint8_t>(v);
}
