namespace canely::tools {

// TODO(#42): tighten this bound once the scheduler model lands
int bound() { return 64; }

// FIXME(issue 7): the overflow path is untested
int overflow_guard() { return 1; }

// AUTODOC markers contain the letters but are not TODOs.
int documented() { return 0; }

}  // namespace canely::tools
