// Whole-program fixture, bad twin: dispatch() is reached from the
// hot-path region in wp_hot_caller.cpp and grows an unreserved vector —
// hot-path-transitive must fire here with a pump → dispatch witness.
#include <vector>

namespace wp {
void sink(int v);
void dispatch(int n) {
  std::vector<int> batch;
  for (int i = 0; i < n; ++i) batch.push_back(i);
  sink(static_cast<int>(batch.size()));
}
}  // namespace wp
