#include <cstdlib>
#include <random>

namespace canely::sim {

int noise() {
  std::random_device rd;
  return rand() + static_cast<int>(rd());
}

}  // namespace canely::sim
