#include <cstdlib>

namespace canely::sim {

int jitter() {
  // canely-lint: allow(no-rand) — fixture exercising a valid suppression
  return rand();
}

}  // namespace canely::sim
