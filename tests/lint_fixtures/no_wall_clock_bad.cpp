#include <chrono>
#include <ctime>

namespace canely::sim {

long long wall_ms() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

long long unix_now() { return std::time(nullptr); }

}  // namespace canely::sim
