#include <vector>

namespace canely::tools {

// canely-lint: hot-path
std::vector<int> doubled(const std::vector<int>& xs) {
  std::vector<int> out;
  out.reserve(xs.size() + 1);
  int sum = 0;
  for (int x : xs) {
    out.push_back(2 * x);
    sum += x;
  }
  out.push_back(sum);
  // Member vectors are declared elsewhere; the rule only tracks vectors
  // declared inside the region.
  trace_.push_back(sum);
  return out;
}

}  // namespace canely::tools
