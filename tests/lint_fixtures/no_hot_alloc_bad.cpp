#include <cstddef>
#include <memory>

namespace canely::tools {

// Untagged: allocation here is allowed (and must not be reported).
int* cold_alloc() { return new int{0}; }

// canely-lint: hot-path
int hot_sum(const int* xs, int n) {
  auto scratch = std::make_unique<int[]>(static_cast<std::size_t>(n));
  int s = 0;
  for (int i = 0; i < n; ++i) s += xs[i];
  return s + scratch[0];
}

}  // namespace canely::tools
