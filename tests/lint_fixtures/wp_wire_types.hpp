#pragma once
// Whole-program fixture: alias + extent providers for the wire-layout
// pair.  Linted under a different pretend path than the struct file, so
// resolving SeqNo / kWords proves the type tables merge across TUs.
#include <cstddef>
#include <cstdint>

namespace fix {
using SeqNo = std::uint16_t;
inline constexpr std::size_t kWords = 3;
}  // namespace fix
