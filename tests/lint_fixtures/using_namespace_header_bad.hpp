#pragma once

#include <cstdint>

using namespace std;

inline uint8_t low(uint16_t v) { return static_cast<uint8_t>(v); }
