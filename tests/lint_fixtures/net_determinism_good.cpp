#include <cstdint>

namespace canely::net {

// The compliant counterpart: delay comes from the medium's own seeded
// stream, "now" comes from the engine — a pure function of its inputs.
template <typename Rng>
std::int64_t draw_delay_ns(Rng& rng, std::int64_t engine_now_ns) {
  return engine_now_ns + static_cast<std::int64_t>(rng.below(1000));
}

}  // namespace canely::net
