#include <cstdlib>

namespace canely::sim {

int jitter() {
  // canely-lint: allow(no-rand)
  return rand();
}

}  // namespace canely::sim
