#include <functional>

namespace canely::tools {

// canely-lint: hot-path
int apply_hot(const std::function<int(int)>& f, int x) { return f(x); }

}  // namespace canely::tools
