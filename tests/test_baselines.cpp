// Tests for the related-work baselines (§6.6, Fig. 1): CANopen node
// guarding + heartbeat, OSEK NM logical ring, TTP/TDMA membership.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "baselines/canopen.hpp"
#include "baselines/osek_nm.hpp"
#include "baselines/ttp.hpp"
#include "can/bus.hpp"
#include "sim/engine.hpp"

namespace canely::baselines {
namespace {

using sim::Time;

// ---------------------------------------------------------------- CANopen --

class CanopenTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  can::Bus bus{engine};
  sim::TimerService timers{engine};
};

TEST_F(CanopenTest, NodeGuardingDetectsSlaveCrashAtMasterOnly) {
  CanopenMaster master{bus, 0, timers, Time::ms(10), Time::ms(5)};
  CanopenSlave s1{bus, 1, timers};
  CanopenSlave s2{bus, 2, timers};

  std::vector<can::NodeId> detected;
  master.set_failure_handler([&](can::NodeId n) { detected.push_back(n); });
  master.start_guarding({1, 2});
  engine.run_until(Time::ms(100));
  EXPECT_TRUE(detected.empty());

  s1.crash();
  engine.run_until(Time::ms(200));
  ASSERT_EQ(detected.size(), 1u);
  EXPECT_EQ(detected[0], 1);
}

TEST_F(CanopenTest, NodeGuardingLatencyIsBoundedByGuardCycle) {
  const Time guard = Time::ms(10), timeout = Time::ms(5);
  CanopenMaster master{bus, 0, timers, guard, timeout};
  CanopenSlave s1{bus, 1, timers};
  CanopenSlave s2{bus, 2, timers};
  CanopenSlave s3{bus, 3, timers};

  Time when = Time::max();
  master.set_failure_handler([&](can::NodeId n) {
    if (n == 2 && when == Time::max()) when = engine.now();
  });
  master.start_guarding({1, 2, 3});
  engine.run_until(Time::ms(95));
  const Time t_crash = engine.now();
  s2.crash();
  engine.run_until(Time::ms(300));
  ASSERT_NE(when, Time::max());
  // Worst case: full cycle over 3 slaves + response timeout.
  EXPECT_LE(when - t_crash, guard * 3 + timeout + Time::ms(1));
}

TEST_F(CanopenTest, HeartbeatDetectionIsLocalAndUnsynchronized) {
  CanopenSlave producer{bus, 1, timers};
  HeartbeatConsumer c1{bus, 2, timers};
  HeartbeatConsumer c2{bus, 3, timers};

  std::map<int, Time> heard;
  c1.set_failure_handler([&](can::NodeId) { heard[2] = engine.now(); });
  c2.set_failure_handler([&](can::NodeId) { heard[3] = engine.now(); });

  producer.start_heartbeat(Time::ms(10));
  c1.watch(1, Time::ms(25));
  c2.watch(1, Time::ms(40));  // differently configured consumer
  engine.run_until(Time::ms(100));
  EXPECT_TRUE(heard.empty());

  const Time t_crash = engine.now();
  producer.crash();
  engine.run_until(Time::ms(300));
  ASSERT_EQ(heard.size(), 2u);
  // The two consumers detect at different instants (no agreement!) —
  // the inconsistency CANELy's FDA exists to remove.
  EXPECT_NE(heard[2], heard[3]);
  EXPECT_GT(heard[3] - heard[2], Time::ms(5));
  EXPECT_LE(heard[2] - t_crash, Time::ms(26));
}

TEST_F(CanopenTest, SlaveAnswersCarryToggleBit) {
  CanopenMaster master{bus, 0, timers, Time::ms(5), Time::ms(3)};
  CanopenSlave s1{bus, 1, timers};
  // Observe answers on the wire.
  std::vector<std::uint8_t> answers;
  bus.set_observer([&](const can::TxRecord& r) {
    if (!r.frame.remote && r.frame.id == kErrorControlBase + 1) {
      answers.push_back(r.frame.data[0]);
    }
  });
  master.start_guarding({1});
  engine.run_until(Time::ms(50));
  ASSERT_GE(answers.size(), 4u);
  for (std::size_t i = 1; i < answers.size(); ++i) {
    EXPECT_NE(answers[i] & 0x80, answers[i - 1] & 0x80) << i;
  }
}

// ----------------------------------------------------------------- OSEK NM --

class OsekTest : public ::testing::Test {
 protected:
  void make(std::size_t n, OsekNmParams p = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<OsekNmNode>(
          bus, static_cast<can::NodeId>(i), timers, p));
    }
    for (auto& nd : nodes) nd->start();
  }
  sim::Engine engine;
  can::Bus bus{engine};
  sim::TimerService timers{engine};
  std::vector<std::unique_ptr<OsekNmNode>> nodes;
};

TEST_F(OsekTest, RingFormsAndConfigConverges) {
  make(4);
  engine.run_until(Time::sec(2));
  for (auto& nd : nodes) {
    EXPECT_EQ(nd->config(), can::NodeSet::first_n(4))
        << "node " << int{nd->id()} << " config " << nd->config();
  }
}

TEST_F(OsekTest, RingKeepsCirculating) {
  make(3);
  std::uint64_t ring_msgs = 0;
  bus.set_observer([&](const can::TxRecord& r) {
    if (!r.frame.remote && r.frame.id >= kNmBase &&
        r.frame.id < kNmBase + can::kMaxNodes && r.frame.data[0] == 2) {
      ++ring_msgs;
    }
  });
  engine.run_until(Time::sec(3));
  // One ring message per TTyp (100 ms) => ~30 in 3 s.
  EXPECT_GE(ring_msgs, 20u);
}

TEST_F(OsekTest, CrashedNodeIsRemovedFromAllConfigs) {
  make(4);
  engine.run_until(Time::sec(2));
  nodes[2]->crash();
  engine.run_until(engine.now() + Time::sec(2));
  for (auto& nd : nodes) {
    if (nd->crashed()) continue;
    EXPECT_EQ(nd->config(), (can::NodeSet{0, 1, 3}))
        << "node " << int{nd->id()};
  }
}

TEST_F(OsekTest, DetectionLatencyIsOrderOfSeconds) {
  // §6.6: with TTyp = 100 ms, detection "may be in the order of one
  // second" — the ring must walk around to the dead node.
  OsekNmParams p;
  p.t_typ = Time::ms(100);
  p.t_max = Time::ms(260);
  make(8, p);
  engine.run_until(Time::sec(3));

  Time detected = Time::max();
  for (auto& nd : nodes) {
    nd->set_leave_handler([&](can::NodeId dead) {
      if (dead == 5 && engine.now() < detected) detected = engine.now();
    });
  }
  const Time t_crash = engine.now();
  nodes[5]->crash();
  engine.run_until(engine.now() + Time::sec(5));
  ASSERT_NE(detected, Time::max());
  const Time latency = detected - t_crash;
  EXPECT_GT(latency, Time::ms(100));   // far slower than CANELy's ~11 ms
  EXPECT_LT(latency, Time::sec(2));    // but bounded by one ring walk
}

TEST_F(OsekTest, IsolatedNodeEntersLimpHome) {
  make(3);
  engine.run_until(Time::sec(2));
  EXPECT_FALSE(nodes[0]->limp_home());
  // Cut node 0 off by crashing everyone else.
  nodes[1]->crash();
  nodes[2]->crash();
  engine.run_until(engine.now() + Time::sec(3));
  EXPECT_TRUE(nodes[0]->limp_home());
}

TEST_F(OsekTest, LimpHomeClearsWhenTrafficReturns) {
  OsekNmParams p;
  std::vector<std::unique_ptr<OsekNmNode>> late;
  make(2, p);
  engine.run_until(Time::sec(1));
  nodes[1]->crash();
  engine.run_until(engine.now() + Time::sec(3));
  ASSERT_TRUE(nodes[0]->limp_home());
  // A new node appears: traffic resumes, limp-home clears.
  late.push_back(std::make_unique<OsekNmNode>(bus, 5, timers, p));
  late.back()->start();
  engine.run_until(engine.now() + Time::sec(2));
  EXPECT_FALSE(nodes[0]->limp_home());
  EXPECT_TRUE(nodes[0]->config().contains(5));
}

TEST_F(OsekTest, RingResumesAfterCrash) {
  make(4);
  engine.run_until(Time::sec(2));
  nodes[1]->crash();
  engine.run_until(engine.now() + Time::sec(2));
  std::uint64_t ring_after = 0;
  bus.set_observer([&](const can::TxRecord& r) {
    if (!r.frame.remote && r.frame.data[0] == 2) ++ring_after;
  });
  engine.run_until(engine.now() + Time::sec(2));
  EXPECT_GE(ring_after, 10u);  // the ring still turns among survivors
}

// --------------------------------------------------------------------- TTP --

TEST(TtpTest, MembershipConsistentAndFast) {
  sim::Engine engine;
  TtpParams p;
  p.n = 4;
  p.slot_time = Time::us(200);
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(10));
  EXPECT_TRUE(ttp.views_consistent());
  EXPECT_EQ(ttp.membership(0), can::NodeSet::first_n(4));

  Time first_detect = Time::max();
  ttp.set_failure_handler([&](can::NodeId, can::NodeId failed) {
    if (failed == 2 && engine.now() < first_detect) {
      first_detect = engine.now();
    }
  });
  const Time t_crash = engine.now();
  ttp.crash(2);
  engine.run_until(Time::ms(20));
  ASSERT_NE(first_detect, Time::max());
  // Detection within one TDMA round + one slot.
  EXPECT_LE(first_detect - t_crash,
            p.slot_time * static_cast<std::int64_t>(p.n + 1));
  EXPECT_TRUE(ttp.views_consistent());
  EXPECT_EQ(ttp.membership(0), (can::NodeSet{0, 1, 3}));
}

TEST(TtpTest, ChannelRedundancyMasksOneChannel) {
  sim::Engine engine;
  TtpParams p;
  p.n = 3;
  p.channel_a_ok = false;  // one channel dead from the start
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(10));
  EXPECT_TRUE(ttp.views_consistent());
  EXPECT_EQ(ttp.membership(1), can::NodeSet::first_n(3));
}

TEST(TtpTest, ReintegrationAfterRestart) {
  sim::Engine engine;
  TtpParams p;
  p.n = 4;
  p.slot_time = Time::us(100);
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(5));
  ttp.crash(1);
  engine.run_until(Time::ms(10));
  ASSERT_EQ(ttp.membership(0), (can::NodeSet{0, 2, 3}));

  ttp.restart(1);
  // One round to be heard + one round to relearn the full view.
  engine.run_until(Time::ms(12));
  EXPECT_TRUE(ttp.views_consistent());
  EXPECT_EQ(ttp.membership(0), can::NodeSet::first_n(4));
  EXPECT_EQ(ttp.membership(1), can::NodeSet::first_n(4));
}

TEST(TtpTest, TransientChannelLossMaskedByReplication) {
  sim::Engine engine;
  TtpParams p;
  p.n = 4;
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(5));
  ttp.set_channels(false, true);  // channel A dies...
  engine.run_until(Time::ms(10));
  ttp.set_channels(true, true);   // ...and comes back
  engine.run_until(Time::ms(15));
  EXPECT_TRUE(ttp.views_consistent());
  EXPECT_EQ(ttp.membership(2), can::NodeSet::first_n(4));  // nobody dropped
}

TEST(TtpTest, DoubleChannelLossCollapsesMembership) {
  sim::Engine engine;
  TtpParams p;
  p.n = 3;
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(5));
  ttp.set_channels(false, false);  // both channels gone: silence
  engine.run_until(Time::ms(10));
  // Everyone dropped everyone they listened for: no replication left.
  EXPECT_LT(ttp.membership(0).size(), 3u);
}

// --------------------------------------------------------- CANopen NMT --

TEST_F(CanopenTest, SlaveBootsIntoPreOperational) {
  CanopenSlave s{bus, 1, timers};
  CanopenNmtMaster master{bus, 0};
  s.boot();
  engine.run_until(Time::ms(1));
  EXPECT_EQ(s.state(), NmtState::kPreOperational);
  // Boot-up message visible on the error-control COB-ID with state 0.
}

TEST_F(CanopenTest, NmtCommandsDriveSlaveStates) {
  CanopenSlave s1{bus, 1, timers};
  CanopenSlave s2{bus, 2, timers};
  CanopenNmtMaster master{bus, 0};
  s1.boot();
  s2.boot();
  engine.run_until(Time::ms(1));

  master.command(NmtCommand::kStart, 1);  // addressed: only slave 1
  engine.run_until(Time::ms(2));
  EXPECT_EQ(s1.state(), NmtState::kOperational);
  EXPECT_EQ(s2.state(), NmtState::kPreOperational);

  master.command(NmtCommand::kStart, 0);  // broadcast
  engine.run_until(Time::ms(3));
  EXPECT_EQ(s2.state(), NmtState::kOperational);

  master.command(NmtCommand::kStop, 2);
  engine.run_until(Time::ms(4));
  EXPECT_EQ(s2.state(), NmtState::kStopped);

  master.command(NmtCommand::kResetNode, 2);
  engine.run_until(Time::ms(5));
  EXPECT_EQ(s2.state(), NmtState::kPreOperational);  // re-booted
}

TEST_F(CanopenTest, HeartbeatCarriesNmtState) {
  CanopenSlave s{bus, 1, timers};
  CanopenNmtMaster master{bus, 0};
  std::vector<std::uint8_t> states;
  bus.set_observer([&](const can::TxRecord& r) {
    if (!r.frame.remote && r.frame.id == kErrorControlBase + 1 &&
        r.outcome == can::TxOutcome::kOk) {
      states.push_back(r.frame.data[0]);
    }
  });
  s.boot();
  s.start_heartbeat(Time::ms(10));
  engine.run_until(Time::ms(25));
  master.command(NmtCommand::kStart, 1);
  engine.run_until(Time::ms(60));
  // Saw pre-operational (0x7F) heartbeats first, then operational (0x05).
  ASSERT_GE(states.size(), 4u);
  EXPECT_EQ(states[1], 0x7F);  // [0] is the boot-up message (0x00)
  EXPECT_EQ(states[0], 0x00);
  EXPECT_EQ(states.back(), 0x05);
}

TEST(TtpTest, RoundsProgress) {
  sim::Engine engine;
  TtpParams p;
  p.n = 4;
  p.slot_time = Time::us(100);
  TtpCluster ttp{engine, p};
  ttp.start();
  engine.run_until(Time::ms(4));
  EXPECT_GE(ttp.rounds_completed(), 9u);
}

}  // namespace
}  // namespace canely::baselines
