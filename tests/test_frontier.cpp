// Tests for the explorer's scale engine (record mode): shard-union
// byte-identity, dedup-on vs dedup-off verdict equality, prefix-cache
// replay against the from-scratch oracle, frontier resume-after-kill,
// merge validation, and --shard argument parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cli.hpp"
#include "check/explore.hpp"
#include "check/frontier.hpp"
#include "check/harness.hpp"
#include "check/prefix_cache.hpp"

namespace canely::testing {
namespace {

using check::ExploreConfig;
using check::ExploreResult;
using check::FrontierFile;
using check::FrontierRecord;
using check::ScenarioConfig;

// The CI smoke budget: depth-2 exhaustive over a clipped space (8 frames
// x 4 victim sets -> 32 bases, capped to 8, x 2 targets x 4 sets x 2
// crash flags = 128 units) — violation-free with FDA on, sub-second.
ExploreConfig smoke_config() {
  ExploreConfig cfg;
  cfg.scenario = ScenarioConfig::membership(8);
  cfg.exhaustive = true;
  cfg.dedup = true;
  cfg.depth = 2;
  cfg.max_frames = 8;
  cfg.max_victim_sets = 4;
  cfg.max_bases = 8;
  cfg.depth2_targets = 2;
  cfg.threads = 2;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- shard union == unsharded, across thread counts -------------------------

TEST(Frontier, ShardUnionIsByteIdenticalToUnshardedRun) {
  const std::string all = temp_path("frontier_all.json");
  const std::string s0 = temp_path("frontier_s0.json");
  const std::string s1 = temp_path("frontier_s1.json");
  std::remove(all.c_str());
  std::remove(s0.c_str());
  std::remove(s1.c_str());

  ExploreConfig cfg = smoke_config();
  cfg.frontier_path = all;
  const ExploreResult whole = check::explore(cfg);
  EXPECT_GT(whole.placements, 0u);

  // Shards deliberately run with different thread counts: the frontier
  // bytes must not care.
  cfg.shard_count = 2;
  cfg.shard_index = 0;
  cfg.threads = 1;
  cfg.frontier_path = s0;
  (void)check::explore(cfg);
  cfg.shard_index = 1;
  cfg.threads = 4;
  cfg.frontier_path = s1;
  (void)check::explore(cfg);

  const FrontierFile merged =
      check::merge_frontiers({check::load_frontier(s0),
                              check::load_frontier(s1)});
  const FrontierFile unsharded = check::load_frontier(all);
  EXPECT_EQ(check::frontier_json(merged).dump(2),
            check::frontier_json(unsharded).dump(2));
  EXPECT_EQ(merged.aggregate, whole.aggregate_hash);

  std::remove(all.c_str());
  std::remove(s0.c_str());
  std::remove(s1.c_str());
}

// --- dedup on == dedup off ---------------------------------------------------

TEST(Frontier, DedupOnAndOffProduceIdenticalVerdicts) {
  const std::string on = temp_path("frontier_dedup_on.json");
  const std::string off = temp_path("frontier_dedup_off.json");
  std::remove(on.c_str());
  std::remove(off.c_str());

  ExploreConfig cfg = smoke_config();
  cfg.dedup = true;
  cfg.dedup_verify_every = 1;  // tripwire every skip: must all agree
  cfg.frontier_path = on;
  const ExploreResult deduped = check::explore(cfg);

  cfg.dedup = false;
  cfg.dedup_verify_every = 0;
  cfg.frontier_path = off;
  const ExploreResult plain = check::explore(cfg);

  // The dedup run must actually have skipped something for this test to
  // mean anything, and every tripwire re-execution must have agreed.
  EXPECT_GT(deduped.dedup_skips, 0u);
  EXPECT_EQ(deduped.dedup_verified, deduped.dedup_skips);
  EXPECT_EQ(deduped.dedup_mismatches, 0u);
  // Discounting the tripwire re-executions, dedup saved real runs.
  EXPECT_LT(deduped.runs - deduped.dedup_verified, plain.runs);

  EXPECT_EQ(deduped.placements, plain.placements);
  EXPECT_EQ(deduped.aggregate_hash, plain.aggregate_hash);
  ASSERT_EQ(deduped.violations.size(), plain.violations.size());
  for (std::size_t i = 0; i < plain.violations.size(); ++i) {
    EXPECT_EQ(deduped.violations[i].run_index, plain.violations[i].run_index);
    EXPECT_EQ(deduped.violations[i].script, plain.violations[i].script);
  }
  EXPECT_EQ(slurp(on), slurp(off));

  std::remove(on.c_str());
  std::remove(off.c_str());
}

// --- prefix cache vs from-scratch oracle ------------------------------------

TEST(PrefixCache, ReplayMatchesFromScratchOracle) {
  const auto scenario = ScenarioConfig::membership(8);
  check::FaultScript base;
  check::FaultEvent ev;
  ev.tx = 12;
  ev.op = check::FaultOp::kOmit;
  ev.victims = can::NodeSet{3};
  ev.crash_sender = true;
  base.push_back(ev);

  check::RunOptions opts;
  opts.want_tx_log = true;
  opts.want_samples = true;
  const check::RunResult oracle = check::run_checked(scenario, base, opts);
  ASSERT_FALSE(oracle.tx_log.empty());
  ASSERT_FALSE(oracle.samples.empty());

  check::PrefixCache cache(4);
  const std::uint64_t key = check::hash_script(base);
  EXPECT_EQ(cache.find(key), nullptr);  // cold: miss
  const check::PrefixProbe* probe =
      cache.insert(key, oracle.tx_log, oracle.samples);
  ASSERT_NE(probe, nullptr);

  // A second from-scratch run is the oracle the cached replay must match
  // entry for entry (the harness is deterministic, so it equals the first).
  const check::RunResult fresh = check::run_checked(scenario, base, opts);
  const check::PrefixProbe* hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->tx_log.size(), fresh.tx_log.size());
  for (std::size_t i = 0; i < fresh.tx_log.size(); ++i) {
    EXPECT_EQ(hit->tx_log[i].tx_index, fresh.tx_log[i].tx_index);
    EXPECT_EQ(hit->tx_log[i].transmitter, fresh.tx_log[i].transmitter);
    EXPECT_EQ(hit->tx_log[i].receivers, fresh.tx_log[i].receivers);
    EXPECT_EQ(hit->tx_log[i].start, fresh.tx_log[i].start);
  }
  ASSERT_EQ(hit->samples.size(), fresh.samples.size());
  for (std::size_t i = 0; i < fresh.samples.size(); ++i) {
    EXPECT_EQ(hit->samples[i].tx_index, fresh.samples[i].tx_index);
    EXPECT_EQ(hit->samples[i].state_hash, fresh.samples[i].state_hash);
  }
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PrefixCache, LruEvictsLeastRecentlyUsedSlot) {
  check::PrefixCache cache(2);
  const std::vector<check::TxLogEntry> log(1);
  const std::vector<check::StateSample> samples(1);
  (void)cache.insert(10, log, samples);
  (void)cache.insert(20, log, samples);
  EXPECT_NE(cache.find(10), nullptr);  // refresh 10: 20 is now LRU
  (void)cache.insert(30, log, samples);
  EXPECT_EQ(cache.find(20), nullptr);
  EXPECT_NE(cache.find(10), nullptr);
  EXPECT_NE(cache.find(30), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

// --- resume after a kill -----------------------------------------------------

TEST(Frontier, ResumeAfterStopYieldsByteIdenticalFrontier) {
  const std::string resumable = temp_path("frontier_resume.json");
  const std::string straight = temp_path("frontier_straight.json");
  std::remove(resumable.c_str());
  std::remove(straight.c_str());

  ExploreConfig cfg = smoke_config();
  cfg.frontier_path = resumable;
  cfg.checkpoint_every = 8;
  cfg.stop_after_units = 40;  // "kill" mid-run, after a checkpoint
  (void)check::explore(cfg);
  const FrontierFile at_stop = check::load_frontier(resumable);
  EXPECT_FALSE(at_stop.complete);
  // `total` only counts units enumerated so far (depth-2 units surface
  // lazily, base by base), so cursor == total here; incomplete is what
  // distinguishes a stopped run from a finished one.
  EXPECT_GE(at_stop.cursor, 40u);

  cfg.stop_after_units = 0;
  const ExploreResult resumed = check::explore(cfg);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(check::load_frontier(resumable).complete);

  cfg.frontier_path = straight;
  const ExploreResult whole = check::explore(cfg);
  EXPECT_FALSE(whole.resumed);
  EXPECT_EQ(resumed.aggregate_hash, whole.aggregate_hash);
  EXPECT_EQ(slurp(resumable), slurp(straight));

  std::remove(resumable.c_str());
  std::remove(straight.c_str());
}

// --- merge validation --------------------------------------------------------

FrontierFile shard_stub(std::uint32_t index, std::uint32_t count) {
  FrontierFile f;
  f.fingerprint = 0xF00D;
  f.shard_index = index;
  f.shard_count = count;
  f.total = 1;
  f.cursor = 1;
  f.complete = true;
  FrontierRecord r;
  r.u = index;
  f.records.push_back(r);
  f.aggregate = check::fold_records(f.records);
  return f;
}

TEST(Frontier, MergeRejectsInvalidShardSets) {
  const FrontierFile s0 = shard_stub(0, 2);
  const FrontierFile s1 = shard_stub(1, 2);
  EXPECT_NO_THROW((void)check::merge_frontiers({s0, s1}));

  // Missing shard 1.
  EXPECT_THROW((void)check::merge_frontiers({s0}), std::runtime_error);
  // Duplicate shard index.
  EXPECT_THROW((void)check::merge_frontiers({s0, s0}), std::runtime_error);
  // Mixed fingerprints.
  FrontierFile other = s1;
  other.fingerprint = 0xBEEF;
  EXPECT_THROW((void)check::merge_frontiers({s0, other}), std::runtime_error);
  // Incomplete shard.
  FrontierFile unfinished = s1;
  unfinished.complete = false;
  EXPECT_THROW((void)check::merge_frontiers({s0, unfinished}),
               std::runtime_error);
}

// --- --shard parsing ---------------------------------------------------------

TEST(Frontier, ParseShardAcceptsOnlyValidSlices) {
  std::size_t index = 99;
  std::size_t count = 99;
  EXPECT_TRUE(campaign::parse_shard("0/1", index, count));
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(campaign::parse_shard("3/12", index, count));
  EXPECT_EQ(index, 3u);
  EXPECT_EQ(count, 12u);

  index = count = 99;
  EXPECT_FALSE(campaign::parse_shard("2/2", index, count));   // i >= N
  EXPECT_FALSE(campaign::parse_shard("0/0", index, count));   // N == 0
  EXPECT_FALSE(campaign::parse_shard("1", index, count));     // no slash
  EXPECT_FALSE(campaign::parse_shard("a/4", index, count));   // junk index
  EXPECT_FALSE(campaign::parse_shard("1/4x", index, count));  // junk count
  EXPECT_FALSE(campaign::parse_shard("", index, count));
  EXPECT_EQ(index, 99u);  // failures leave the outputs untouched
  EXPECT_EQ(count, 99u);
}

}  // namespace
}  // namespace canely::testing
