// Property suites for the CAN MAC-level properties (paper Figure 2,
// MCAN1-4) and LLC-level properties (Figure 3, LCAN1-4), validated on the
// simulated bus under randomized fault injection — the operational
// assumptions everything above them relies on.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace canely::can {
namespace {

using sim::Time;

struct Sink final : ControllerClient {
  void on_rx(const Frame& frame, bool own) override {
    if (!own) rx.push_back(frame);
  }
  void on_tx_confirm(const Frame& frame) override { cnf.push_back(frame); }
  std::vector<Frame> rx;
  std::vector<Frame> cnf;
};

class PropertyRig {
 public:
  PropertyRig(std::size_t n, std::uint64_t seed, double p_global,
              double p_inconsistent)
      : faults{sim::Rng{seed}, p_global, p_inconsistent} {
    for (std::size_t i = 0; i < n; ++i) {
      ctl.push_back(std::make_unique<Controller>(
          static_cast<NodeId>(i), bus));
      sinks.push_back(std::make_unique<Sink>());
      ctl.back()->set_client(sinks.back().get());
    }
    bus.set_fault_injector(&faults);
  }

  sim::Engine engine;
  Bus bus{engine};
  RandomFaults faults;
  std::vector<std::unique_ptr<Controller>> ctl;
  std::vector<std::unique_ptr<Sink>> sinks;
};

class MacLlcProperties : public ::testing::TestWithParam<std::uint64_t> {};

// MCAN1 (Broadcast) + MCAN2 (Error Detection): every copy of a frame that
// any correct node accepts is bit-identical to what was sent — receivers
// never see corrupted-but-accepted data.
TEST_P(MacLlcProperties, Mcan1Mcan2ValueDomainCorrectness) {
  PropertyRig rig{4, GetParam(), 0.05, 0.05};
  std::map<std::uint32_t, std::vector<std::uint8_t>> sent;
  sim::Rng rng{GetParam() ^ 0xBEEF};
  for (int k = 0; k < 50; ++k) {
    const auto id = static_cast<std::uint32_t>(0x100 + k);
    std::vector<std::uint8_t> payload(1 + rng.below(8));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    sent[id] = payload;
    rig.ctl[k % 4]->request_tx(Frame::make_data(id, payload));
  }
  rig.engine.run_until(Time::ms(100));
  for (const auto& sink : rig.sinks) {
    for (const auto& f : sink->rx) {
      ASSERT_TRUE(sent.contains(f.id));
      const auto& expect = sent[f.id];
      ASSERT_EQ(f.dlc, expect.size());
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(f.data[i], expect[i]);
      }
    }
  }
}

// MCAN4 (Bounded Transmission Delay, fault-free): a frame queued on an
// otherwise idle bus completes within its exact wire length.
TEST_P(MacLlcProperties, Mcan4BoundedDelayFaultFree) {
  PropertyRig rig{3, GetParam(), 0.0, 0.0};
  sim::Rng rng{GetParam()};
  for (int k = 0; k < 20; ++k) {
    std::vector<std::uint8_t> payload(rng.below(9));
    const Frame f = Frame::make_data(static_cast<std::uint32_t>(k), payload);
    const Time start = rig.engine.now();
    const auto bound = sim::bits_to_time(
        static_cast<std::int64_t>(frame_bits_on_wire(f) + kIntermissionBits),
        1'000'000);
    rig.ctl[0]->request_tx(f);
    rig.engine.run_until(start + bound);
    ASSERT_EQ(rig.sinks[1]->rx.size(), static_cast<std::size_t>(k + 1))
        << "frame " << k << " exceeded its bound";
  }
}

// LCAN1 (Validity) + LCAN3 (At-least-once): a correct, non-crashing
// sender's message is eventually delivered to every correct node, at
// least once, despite random global errors and inconsistent omissions
// (CAN's automatic retransmission masks them at the LLC level).
TEST_P(MacLlcProperties, Lcan1Lcan3ValidityAtLeastOnce) {
  PropertyRig rig{4, GetParam(), 0.10, 0.10};
  for (int k = 0; k < 30; ++k) {
    const std::uint8_t payload[] = {static_cast<std::uint8_t>(k)};
    rig.ctl[0]->request_tx(
        Frame::make_data(static_cast<std::uint32_t>(0x80 + k), payload));
  }
  rig.engine.run_until(Time::ms(200));
  for (std::size_t s = 1; s < 4; ++s) {
    std::map<std::uint32_t, int> copies;
    for (const auto& f : rig.sinks[s]->rx) ++copies[f.id];
    for (int k = 0; k < 30; ++k) {
      EXPECT_GE(copies[static_cast<std::uint32_t>(0x80 + k)], 1)
          << "node " << s << " frame " << k;
    }
  }
  // The sender got exactly one confirmation per message.
  EXPECT_EQ(rig.sinks[0]->cnf.size(), 30u);
}

// LCAN2 (Best-effort Agreement) duplicates clause: inconsistent omissions
// recovered by retransmission show up as duplicates at some receivers —
// the phenomenon the paper's §4 postulates ("there may be message
// duplicates when they are recovered").
TEST_P(MacLlcProperties, Lcan2DuplicatesOnRecovery) {
  PropertyRig rig{4, GetParam(), 0.0, 1.0};  // every attempt inconsistent...
  // ...which the injector applies once per attempt; with retransmission
  // the same frame reaches non-victims multiple times.
  const std::uint8_t payload[] = {7};
  rig.ctl[0]->request_tx(Frame::make_data(0x10, payload));
  rig.engine.run_until(Time::ms(50));
  std::size_t total_copies = 0;
  for (std::size_t s = 1; s < 4; ++s) total_copies += rig.sinks[s]->rx.size();
  // 3 receivers, delivered at least once each, and at least one duplicate
  // somewhere (the non-victims of the first attempt saw it twice).
  EXPECT_GT(total_copies, 3u);
}

// MCAN3 / LCAN4 (Bounded omission degrees): with a *scripted* injector
// respecting bound k, any frame completes within k+1 attempts.
TEST_P(MacLlcProperties, Mcan3BoundedOmissionDegree) {
  const int k = static_cast<int>(2 + GetParam() % 3);
  sim::Engine engine;
  Bus bus{engine};
  ScriptedFaults faults;
  faults.add([](const TxContext&) { return true; },
             Verdict::global_error(), /*shots=*/k);
  bus.set_fault_injector(&faults);
  Controller tx{0, bus}, rx{1, bus};
  Sink s_tx, s_rx;
  tx.set_client(&s_tx);
  rx.set_client(&s_rx);
  tx.request_tx(Frame::make_data(0x1, {}));
  engine.run_until(Time::ms(50));
  ASSERT_EQ(s_rx.rx.size(), 1u);
  EXPECT_EQ(bus.stats().errors, static_cast<std::uint64_t>(k));
  EXPECT_EQ(bus.stats().ok, 1u);
  EXPECT_EQ(bus.stats().attempts, static_cast<std::uint64_t>(k) + 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacLlcProperties,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99991u));

}  // namespace
}  // namespace canely::can
