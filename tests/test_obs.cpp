// Observability subsystem (DESIGN.md §11, docs/OBSERVABILITY.md): the
// bounded event ring, the bounded sim::TraceBuffer, Perfetto export
// structure, end-to-end metric capture on a crash-detection scenario
// (fd.detection_latency_us must respect the §6.3 bound), and snapshot
// byte-identity across campaign thread counts.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/grid.hpp"
#include "campaign/runner.hpp"
#include "canely/params.hpp"
#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/recorder.hpp"
#include "obs/ring.hpp"
#include "scenario/scenario.hpp"
#include "sim/trace.hpp"

namespace canely {
namespace {

obs::Event raw_event(std::int64_t when_us, std::uint64_t tag) {
  obs::Event e;
  e.when = sim::Time::us(when_us);
  e.kind = obs::EventKind::kViewInstall;
  e.node = 0;
  e.u.raw = tag;
  return e;
}

obs::Event peer_event(std::int64_t when_us, obs::EventKind kind,
                      std::uint8_t node, std::uint8_t peer) {
  obs::Event e;
  e.when = sim::Time::us(when_us);
  e.kind = kind;
  e.node = node;
  e.u.peer = {peer};
  return e;
}

TEST(EventRing, KeepsNewestAndCountsDrops) {
  obs::EventRing ring{8};
  for (std::uint64_t i = 0; i < 11; ++i) {
    ring.push(raw_event(static_cast<std::int64_t>(i), i));
  }
  EXPECT_EQ(ring.capacity(), 8U);
  EXPECT_EQ(ring.size(), 8U);
  EXPECT_EQ(ring.dropped(), 3U);
  // Drop-oldest: the retained window is events 3..10, oldest first.
  EXPECT_EQ(ring.at(0).u.raw, 3U);
  EXPECT_EQ(ring.at(7).u.raw, 10U);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LT(ring.at(i - 1).when, ring.at(i).when);
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.dropped(), 0U);
}

TEST(EventRing, CapacityZeroRefusesAndCounts) {
  obs::EventRing ring{0};
  ring.push(raw_event(0, 1));
  ring.push(raw_event(1, 2));
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.dropped(), 2U);
}

TEST(TraceBuffer, OverwritesOldestAndCountsDrops) {
  sim::TraceBuffer buf{4};
  const auto sink = buf.sink();
  for (int i = 0; i < 7; ++i) {
    std::string text = "r";
    text += std::to_string(i);
    sink(sim::TraceRecord{sim::Time::us(i), sim::TraceLevel::kInfo, "t",
                          std::move(text)});
  }
  EXPECT_EQ(buf.capacity(), 4U);
  EXPECT_EQ(buf.dropped(), 3U);
  const auto& records = buf.records();
  ASSERT_EQ(records.size(), 4U);
  EXPECT_EQ(records.front().text, "r3");
  EXPECT_EQ(records.back().text, "r6");
  // The linearized view stays consistent across further pushes.
  sink(sim::TraceRecord{sim::Time::us(7), sim::TraceLevel::kInfo, "t", "r7"});
  EXPECT_EQ(buf.records().front().text, "r4");
  EXPECT_EQ(buf.dropped(), 4U);
}

TEST(Perfetto, PairsSpansAndDemotesUnmatchedHalves) {
  obs::EventRing ring{64};
  // A complete frame attempt ('X'), a paired FDA round (b/e), an FDA
  // round whose nty never arrived (demotes to 'i'), a paired RHA
  // execution (B/E) and an unterminated one (demotes to 'i').
  obs::Event frame;
  frame.when = sim::Time::us(10);
  frame.kind = obs::EventKind::kFrameTx;
  frame.node = 1;
  frame.u.frame = {0x100, 135, 135'000, 0, 0, 0, 0};
  ring.push(frame);
  ring.push(peer_event(20, obs::EventKind::kFdaRoundStart, 1, 2));
  ring.push(peer_event(30, obs::EventKind::kFdaNty, 1, 2));
  ring.push(peer_event(40, obs::EventKind::kFdaRoundStart, 3, 2));
  ring.push(peer_event(50, obs::EventKind::kRhaRoundStart, 1, 0));
  ring.push(peer_event(60, obs::EventKind::kRhaRoundEnd, 1, 0));
  ring.push(peer_event(70, obs::EventKind::kRhaRoundStart, 3, 0));

  const auto events = obs::build_trace_events(ring);
  const auto check = obs::validate_trace_events(events);
  EXPECT_TRUE(check.ok) << check.error;

  std::string phases;
  for (const auto& t : events) {
    if (t.ph != 'M') phases += t.ph;
  }
  EXPECT_EQ(phases, "XbeiBEi");
  EXPECT_DOUBLE_EQ(events[events.size() - 7].dur_us, 135.0);

  const std::string json =
      obs::render_trace_json(events, nullptr, ring);
  EXPECT_NE(json.find("canely-trace-1"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(Perfetto, ValidatorRejectsMalformedStreams) {
  obs::TraceEvent open;
  open.name = "span";
  open.ph = 'B';
  open.ts_us = 1;
  obs::TraceEvent close = open;
  close.ph = 'E';
  close.ts_us = 2;

  // 'E' with no open 'B'.
  EXPECT_FALSE(obs::validate_trace_events({close}).ok);
  // Unclosed 'B'.
  EXPECT_FALSE(obs::validate_trace_events({open}).ok);
  // Timestamps running backwards on one track.
  obs::TraceEvent late = open;
  late.ts_us = 5;
  obs::TraceEvent early = close;
  early.ts_us = 3;
  EXPECT_FALSE(obs::validate_trace_events({late, early}).ok);
  // Negative duration on a complete event.
  obs::TraceEvent complete;
  complete.name = "frame";
  complete.ph = 'X';
  complete.ts_us = 1;
  complete.dur_us = -1;
  EXPECT_FALSE(obs::validate_trace_events({complete}).ok);
  // The happy path for the same shapes.
  EXPECT_TRUE(obs::validate_trace_events({open, close}).ok);
}

/// The scenario mirrored by scenarios/crash_detection.scn: node 0 carries
/// cyclic app traffic faster than Th (implicit heartbeats), node 2
/// crashes, the three survivors detect and agree.
constexpr const char* kCrashScript = R"(nodes 4
param heartbeat_ms 10
param cycle_ms 30
at 0    join 0..3
at 100  traffic 0 5
at 400  expect-view 0,1,2,3
at 450  crash 2
at 600  expect-view 0,1,3
run 700
)";

TEST(ObsEndToEnd, CrashDetectionLatencyWithinPaperBound) {
  obs::Recorder recorder;
  scenario::RunOptions options;
  options.recorder = &recorder;
  const auto report = scenario::run_script(kCrashScript, options);
  ASSERT_TRUE(report.ok);

  const obs::MetricsRegistry& m = recorder.metrics();
  const obs::Counter* els = m.find_counter("els.frames_sent");
  const obs::Counter* implicit = m.find_counter("heartbeat.implicit");
  ASSERT_NE(els, nullptr);
  ASSERT_NE(implicit, nullptr);
  EXPECT_GT(els->total(), 0U);
  EXPECT_GT(implicit->total(), 0U);
  // Node 0's app traffic (period 5 ms < Th = 10 ms) suppresses all of its
  // explicit life-signs (§6.3: "any frame doubles as a life-sign").
  EXPECT_EQ(els->node(0), 0U);
  EXPECT_GT(implicit->node(0), 0U);

  // §6.3: a crashed node is suspected within Th + Ttd (+ the simulator's
  // deliberate per-node skew) and the FDA round needs at most one more
  // bounded transmission delay, so end-to-end detection at every
  // survivor stays below Th + 2*Ttd + n*fd_skew_quantum.
  const Params defaults;
  const std::int64_t bound_us =
      (defaults.heartbeat_period + defaults.tx_delay_bound * 2 +
       defaults.fd_skew_quantum * 4)
          .to_us();
  const obs::Histogram* detect = m.find_histogram("fd.detection_latency_us");
  ASSERT_NE(detect, nullptr);
  EXPECT_EQ(detect->count(), 3U);  // one sample per survivor
  EXPECT_GT(detect->min(), 0);
  EXPECT_LE(detect->max(), bound_us);

  // The ring from the same run must export as well-formed trace_event
  // JSON without losses at the default capacity.
  EXPECT_EQ(recorder.ring().dropped(), 0U);
  const auto events = obs::build_trace_events(recorder.ring());
  const auto check = obs::validate_trace_events(events);
  EXPECT_TRUE(check.ok) << check.error;
  const std::string json = obs::render_trace_json(
      events, &recorder.metrics(), recorder.ring());
  EXPECT_NE(json.find("\"fd.detection_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"bus.utilization\""), std::string::npos);
}

TEST(ObsEndToEnd, SnapshotsByteIdenticalAcrossThreadCounts) {
  campaign::Grid grid;
  grid.axis("crash_node", {1, 2, 3}).repeats(2).master_seed(7);

  // Each run builds its own universe and returns the full serialized
  // observability output (metric snapshot + rendered trace): if any byte
  // depended on scheduling, the 1-thread and 4-thread campaigns would
  // disagree somewhere in these strings.
  const auto run_one = [](const campaign::RunSpec& spec) -> std::string {
    const int crash = static_cast<int>(spec.param("crash_node"));
    const std::string script = "nodes 4\nparam heartbeat_ms 10\n"
                               "param cycle_ms 30\nat 0 join 0..3\n"
                               "at 450 crash " + std::to_string(crash) +
                               "\nrun 700\n";
    obs::Recorder recorder;
    scenario::RunOptions options;
    options.recorder = &recorder;
    const auto report = scenario::run_script(script, options);
    if (!report.ok) return "run failed";
    const auto events = obs::build_trace_events(recorder.ring());
    return recorder.metrics().snapshot_json(/*per_node=*/true).dump() +
           obs::render_trace_json(events, &recorder.metrics(),
                                  recorder.ring());
  };

  campaign::Runner serial{1};
  campaign::Runner pooled{4};
  const auto a = serial.run<std::string>(grid, run_one);
  const auto b = pooled.run<std::string>(grid, run_one);
  ASSERT_EQ(a.completed, grid.size());
  ASSERT_EQ(b.completed, grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "run " << i;
    EXPECT_NE(a.results[i], "run failed") << "run " << i;
  }
}

}  // namespace
}  // namespace canely
