// Tests for the Failure Detection Agreement micro-protocol (Fig. 6),
// including a parameterized sweep over every victim subset of the
// inconsistent first transmission — the agreement property FDA exists for.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

class FdaTest : public ::testing::Test {
 protected:
  // Plain cluster; nodes never join membership so only FDA traffic flows.
  Cluster c{4};

  std::array<std::vector<can::NodeId>, 4> ntys;

  void hook_all() {
    for (std::size_t i = 0; i < 4; ++i) {
      c.node(i).fda().set_nty_handler(
          [this, i](can::NodeId r) { ntys[i].push_back(r); });
    }
  }
};

TEST_F(FdaTest, FaultFreeDeliveryToAllInTwoFrames) {
  hook_all();
  c.node(0).fda().fda_can_req(3);
  c.settle(Time::ms(2));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(ntys[i].size(), 1u) << "node " << i;
    EXPECT_EQ(ntys[i][0], 3);
  }
  // Original + clustered echo.
  EXPECT_EQ(c.bus().stats().ok, 2u);
}

TEST_F(FdaTest, DuplicateRequestsCollapse) {
  hook_all();
  // Three nodes invoke FDA for the same failed node simultaneously.
  c.node(0).fda().fda_can_req(3);
  c.node(1).fda().fda_can_req(3);
  c.node(2).fda().fda_can_req(3);
  c.settle(Time::ms(2));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ntys[i].size(), 1u) << "node " << i;  // exactly once
  }
}

TEST_F(FdaTest, RepeatedInvocationSendsOnce) {
  hook_all();
  c.node(0).fda().fda_can_req(2);
  c.node(0).fda().fda_can_req(2);
  c.node(0).fda().fda_can_req(2);
  c.settle(Time::ms(2));
  EXPECT_EQ(c.node(0).fda().fs_nreq(2), 4);  // 3 reqs + 1 on reception
  EXPECT_EQ(ntys[0].size(), 1u);
  EXPECT_EQ(c.bus().stats().ok, 2u);  // still just original + echo
}

TEST_F(FdaTest, IndependentFailuresIndependentSigns) {
  hook_all();
  c.node(0).fda().fda_can_req(2);
  c.node(1).fda().fda_can_req(3);
  c.settle(Time::ms(2));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(ntys[i].size(), 2u) << "node " << i;
  }
}

TEST_F(FdaTest, ResetAllowsReDetection) {
  hook_all();
  c.node(0).fda().fda_can_req(3);
  c.settle(Time::ms(2));
  ASSERT_EQ(ntys[1].size(), 1u);
  for (std::size_t i = 0; i < 4; ++i) c.node(i).fda().reset(3);
  c.node(0).fda().fda_can_req(3);
  c.settle(Time::ms(2));
  EXPECT_EQ(ntys[1].size(), 2u);
}

// --- the agreement property -------------------------------------------------
//
// The first failure-sign transmission suffers an inconsistent omission at
// an arbitrary victim subset, and the original sender crashes right after
// it.  Every correct node must still deliver fda-can.nty exactly once —
// this is precisely what plain (non-agreed) signalling cannot do.

class FdaAgreementTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FdaAgreementTest, SurvivesInconsistentOmissionPlusSenderCrash) {
  const std::uint32_t victim_mask = GetParam();  // subset of {1,2,3}
  Cluster c{4};
  std::array<std::vector<can::NodeId>, 4> ntys;
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).fda().set_nty_handler(
        [&ntys, i](can::NodeId r) { ntys[i].push_back(r); });
  }

  NodeSet victims;
  for (can::NodeId n : {1, 2, 3}) {
    if (victim_mask & (1u << n)) victims.insert(n);
  }

  can::ScriptedFaults faults;
  faults.inconsistent_once(
      [](const can::TxContext& ctx) {
        const auto mid = Mid::decode(ctx.frame);
        return mid.has_value() && mid->type == MsgType::kFda;
      },
      victims);
  c.bus().set_fault_injector(&faults);

  // Node 0 signals the failure of (conceptually dead) node 3 and crashes
  // the instant its first attempt completes.
  c.bus().set_observer([&c](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == MsgType::kFda) {
      c.bus().set_observer({});
      c.engine().schedule_after(Time::ns(1), [&c] { c.node(0).crash(); });
    }
  });
  c.node(0).fda().fda_can_req(3);
  c.settle(Time::ms(5));

  // Every correct node (1, 2 — and 3, which in this harness is alive and
  // simply the subject of the sign) delivers exactly once, unless EVERY
  // correct node was a victim (then nobody ever saw a copy: the sign
  // vanished with its sender, which is indistinguishable from it never
  // being sent — and consistent).
  const bool all_victims = victims == (NodeSet{1, 2, 3});
  for (std::size_t i = 1; i < 4; ++i) {
    if (all_victims) {
      EXPECT_TRUE(ntys[i].empty()) << "node " << i;
    } else {
      ASSERT_EQ(ntys[i].size(), 1u) << "node " << i << " victims=" << victims;
      EXPECT_EQ(ntys[i][0], 3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVictimSubsets, FdaAgreementTest,
                         ::testing::Range(0u, 16u, 2u));  // even masks: node 0 never a victim (it transmits)

}  // namespace
}  // namespace canely::testing
