// NodeId / NodeSet bounds behaviour (src/can/types.hpp).
//
// NodeSet is a 64-bit bitmap; an id >= kMaxNodes used to feed a shift by
// >= 64 — undefined behaviour that on x86 silently aliased id mod 64.
// The fix asserts in debug builds and degrades to the empty mask in
// release builds; both sides are pinned here.

#include <gtest/gtest.h>

#include "can/types.hpp"

namespace canely::can {
namespace {

#ifdef NDEBUG

TEST(NodeSet, OutOfRangeIdsAreNoOpsInRelease) {
  NodeSet s;
  s.insert(static_cast<NodeId>(kMaxNodes));  // would alias node 0 under UB
  s.insert(static_cast<NodeId>(255));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.bits(), 0u);
  EXPECT_FALSE(s.contains(static_cast<NodeId>(kMaxNodes)));
  EXPECT_FALSE(s.contains(static_cast<NodeId>(255)));

  // Out-of-range erase/contains must not disturb valid members.
  s.insert(0);
  s.insert(63);
  s.erase(static_cast<NodeId>(200));
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_EQ(s.size(), 2u);
}

#else

TEST(NodeSetDeathTest, OutOfRangeIdAssertsInDebug) {
  NodeSet s;
  EXPECT_DEATH(s.insert(static_cast<NodeId>(kMaxNodes)),
               "NodeId out of range");
  EXPECT_DEATH((void)s.contains(static_cast<NodeId>(255)),
               "NodeId out of range");
}

#endif

TEST(NodeSet, BoundaryIdsStayExact) {
  NodeSet s;
  s.insert(0);
  s.insert(static_cast<NodeId>(kMaxNodes - 1));
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(static_cast<NodeId>(kMaxNodes - 1)));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.bits(), (1ULL << 63) | 1ULL);
  s.erase(static_cast<NodeId>(kMaxNodes - 1));
  EXPECT_FALSE(s.contains(static_cast<NodeId>(kMaxNodes - 1)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(NodeSet, FirstNSaturatesAtMaxNodes) {
  EXPECT_EQ(NodeSet::first_n(0).size(), 0u);
  EXPECT_EQ(NodeSet::first_n(3).bits(), 0b111u);
  EXPECT_EQ(NodeSet::first_n(kMaxNodes).size(), kMaxNodes);
  EXPECT_EQ(NodeSet::first_n(kMaxNodes + 10).size(), kMaxNodes);
}

}  // namespace
}  // namespace canely::can
