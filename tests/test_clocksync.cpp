// Tests for the clock synchronization service ([15]; Fig. 11 row
// "clock synch precision: tens of us").

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "clocksync/clock.hpp"
#include "clocksync/sync_service.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using clocksync::ClockSyncService;
using clocksync::DriftClock;
using clocksync::SyncParams;
using sim::Time;

TEST(DriftClock, NoDriftTracksRealTime) {
  DriftClock c{0.0};
  EXPECT_EQ(c.read(Time::ms(10)), Time::ms(10));
}

TEST(DriftClock, DriftAccumulates) {
  DriftClock fast{100.0};  // +100 ppm
  // After 1 s: 100 us ahead.
  EXPECT_NEAR(static_cast<double>((fast.read(Time::sec(1)) - Time::sec(1)).to_ns()),
              100'000.0, 1.0);
}

TEST(DriftClock, AdjustShiftsPhase) {
  DriftClock c{0.0};
  c.adjust(Time::us(-250));
  EXPECT_EQ(c.read(Time::ms(1)), Time::ms(1) - Time::us(250));
}

class ClockSyncTest : public ::testing::Test {
 protected:
  void make(std::size_t n, SyncParams sp = {}) {
    cluster = std::make_unique<Cluster>(n);
    // Drifts spread over +/-100 ppm, deterministic per node.
    for (std::size_t i = 0; i < n; ++i) {
      clocks.push_back(std::make_unique<DriftClock>(
          -100.0 + 200.0 * static_cast<double>(i) /
                       static_cast<double>(n > 1 ? n - 1 : 1)));
      svc.push_back(std::make_unique<ClockSyncService>(
          cluster->node(i).driver(), cluster->node(i).timers(), *clocks[i],
          sp, /*seed=*/1000 + i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      svc[i]->start(static_cast<unsigned>(i));
    }
  }

  /// Max pairwise clock difference at the current instant.
  [[nodiscard]] Time precision(const std::vector<std::size_t>& alive) const {
    Time lo = Time::max(), hi = Time::ns(INT64_MIN);
    for (std::size_t i : alive) {
      const Time r = clocks[i]->read(cluster->engine().now());
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    return hi - lo;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<DriftClock>> clocks;
  std::vector<std::unique_ptr<ClockSyncService>> svc;
};

TEST_F(ClockSyncTest, UnsynchronizedClocksDivergeMicrosecondsPerSecond) {
  DriftClock a{-100.0}, b{100.0};
  const Time t = Time::sec(1);
  const Time gap = b.read(t) - a.read(t);
  EXPECT_NEAR(static_cast<double>(gap.to_us()), 200.0, 1.0);
}

TEST_F(ClockSyncTest, AchievesTensOfMicrosecondsPrecision) {
  make(4);
  cluster->engine().run_until(Time::sec(2));
  // Sample precision at several instants mid-interval.
  Time worst = Time::zero();
  for (int s = 0; s < 20; ++s) {
    cluster->engine().run_for(Time::ms(37));
    worst = std::max(worst, precision({0, 1, 2, 3}));
  }
  // Precision budget: latch jitter (<=10us) + drift over the 100 ms
  // period (200 ppm * 100 ms = 20 us) => tens of microseconds.
  EXPECT_LT(worst, Time::us(50));
  EXPECT_GT(worst, Time::zero());  // clocks are distinct, never perfect
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(svc[i]->rounds_observed(), 15u) << "node " << i;
  }
}

TEST_F(ClockSyncTest, SynchronizerCrashTriggersTakeover) {
  make(4);
  cluster->engine().run_until(Time::sec(1));
  ASSERT_TRUE(svc[0]->acting_synchronizer());
  const auto rounds_before = svc[2]->rounds_observed();
  cluster->node(0).crash();
  cluster->engine().run_until(Time::sec(3));
  // Node 1 (next rank) has taken over; rounds keep flowing.
  EXPECT_TRUE(svc[1]->acting_synchronizer());
  EXPECT_FALSE(svc[2]->acting_synchronizer());
  EXPECT_GT(svc[2]->rounds_observed(), rounds_before + 10);
  // Precision still holds among survivors.
  Time worst = Time::zero();
  for (int s = 0; s < 10; ++s) {
    cluster->engine().run_for(Time::ms(41));
    worst = std::max(worst, precision({1, 2, 3}));
  }
  EXPECT_LT(worst, Time::us(50));
}

TEST_F(ClockSyncTest, DoubleSynchronizerCrash) {
  make(5);
  cluster->engine().run_until(Time::sec(1));
  cluster->node(0).crash();
  cluster->node(1).crash();
  cluster->engine().run_until(Time::sec(4));
  EXPECT_TRUE(svc[2]->acting_synchronizer());
  Time worst = Time::zero();
  for (int s = 0; s < 10; ++s) {
    cluster->engine().run_for(Time::ms(43));
    worst = std::max(worst, precision({2, 3, 4}));
  }
  EXPECT_LT(worst, Time::us(50));
}

TEST_F(ClockSyncTest, StopCeasesParticipation) {
  make(3);
  cluster->engine().run_until(Time::sec(1));
  const auto rounds = svc[2]->rounds_observed();
  svc[2]->stop();
  cluster->engine().run_until(Time::sec(2));
  EXPECT_EQ(svc[2]->rounds_observed(), rounds);
}

}  // namespace
}  // namespace canely::testing
