// Allocation accounting for the simulator hot path.
//
// The engine's contract (DESIGN.md "Engine internals") is that
// steady-state schedule -> dispatch performs no heap allocation for
// callbacks that fit sim::Callback's inline buffer: event slots and queue
// storage are pooled and recycled, and the callable lives inside the
// slot.  This binary replaces the global allocator with a counting one
// and pins that contract down, including the deliberate heap fallback for
// oversized captures.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return operator new(size); }
// GCC pairs the replaced operator new with this free() across inlining
// and flags a mismatch; the pairing is correct (new uses malloc above).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_deletes.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}
#pragma GCC diagnostic pop
void operator delete[](void* p) noexcept { operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }

namespace canely::sim {
namespace {

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }
std::uint64_t deletes() { return g_deletes.load(std::memory_order_relaxed); }

TEST(Alloc, SteadyStateScheduleDispatchIsAllocationFree) {
  Engine e;
  std::uint64_t sum = 0;
  // A 32-byte capture — representative of the protocol-layer closures,
  // comfortably inside Callback's 48-byte inline buffer.
  auto round = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::uint64_t x = static_cast<std::uint64_t>(i);
      const std::uint64_t y = x * 3;
      const std::uint64_t z = x ^ 7;
      e.schedule_after(Time::ns(i % 53), [&sum, x, y, z] { sum += x + y + z; });
    }
    e.run();
  };
  round(256);  // warm-up: grows the slot pool and queue storage once
  const std::uint64_t before = news();
  for (int r = 0; r < 10; ++r) round(256);
  const std::uint64_t delta = news() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_NE(sum, 0u);
}

TEST(Alloc, CancelChurnIsAllocationFree) {
  Engine e;
  std::uint64_t sum = 0;
  std::vector<EventId> ids;
  ids.reserve(512);
  auto round = [&](int n) {
    ids.clear();  // capacity survives: no reallocation after warm-up
    for (int i = 0; i < n; ++i) {
      const std::uint64_t x = static_cast<std::uint64_t>(i);
      ids.push_back(
          e.schedule_after(Time::ns(i % 97), [&sum, x] { sum += x; }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) e.cancel(ids[i]);
    e.run();
  };
  round(512);
  const std::uint64_t before = news();
  for (int r = 0; r < 10; ++r) round(512);
  const std::uint64_t delta = news() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Alloc, TimerServiceSteadyStateIsAllocationFree) {
  Engine e;
  TimerService timers{e};
  std::uint64_t fired = 0;
  std::vector<TimerId> ids;
  ids.reserve(128);
  auto round = [&](int n) {
    ids.clear();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t x = static_cast<std::uint64_t>(i);
      ids.push_back(timers.start_alarm(Time::us(1 + i % 5),
                                       Callback{[&fired, x] { fired += x; }}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) {
      timers.cancel_alarm(ids[i]);
    }
    e.run();
  };
  round(128);
  const std::uint64_t before = news();
  for (int r = 0; r < 10; ++r) round(128);
  const std::uint64_t delta = news() - before;
  EXPECT_EQ(delta, 0u);
  EXPECT_EQ(timers.pending_count(), 0u);
}

TEST(Alloc, InlineCallableNeverTouchesHeap) {
  const std::uint64_t heap_before = Callback::heap_constructions();
  const std::uint64_t news_before = news();
  int hit = 0;
  const std::uint64_t a = 1, b = 2, c = 3, d = 4;  // 40-byte capture
  Callback cb{[&hit, a, b, c, d] {
    hit = static_cast<int>(a + b + c + d);
  }};
  Callback cb2 = std::move(cb);
  cb2();
  const std::uint64_t heap_delta = Callback::heap_constructions() - heap_before;
  const std::uint64_t news_delta = news() - news_before;
  EXPECT_EQ(hit, 10);
  EXPECT_EQ(heap_delta, 0u);
  EXPECT_EQ(news_delta, 0u);
}

TEST(Alloc, OversizedCallableFallsBackToHeapAndIsReclaimed) {
  const std::uint64_t heap_before = Callback::heap_constructions();
  const std::uint64_t news_before = news();
  const std::uint64_t deletes_before = deletes();
  int hit = 0;
  {
    std::array<std::uint64_t, 9> big{};  // 72 bytes > kInlineSize
    big[8] = 7;
    Callback cb{[big, &hit] { hit += static_cast<int>(big[8]); }};
    Callback cb2 = std::move(cb);  // relocates the boxed pointer: no alloc
    cb2();
    cb2();
  }
  const std::uint64_t heap_delta = Callback::heap_constructions() - heap_before;
  const std::uint64_t news_delta = news() - news_before;
  const std::uint64_t deletes_delta = deletes() - deletes_before;
  EXPECT_EQ(hit, 14);  // moved-to callback still owns the capture
  EXPECT_EQ(heap_delta, 1u);
  EXPECT_EQ(news_delta, 1u);
  EXPECT_EQ(deletes_delta, 1u);  // exactly one box, freed exactly once
}

TEST(Alloc, OversizedCallableWorksThroughTheEngine) {
  Engine e;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 12> big{};
  big[11] = 41;
  e.schedule_after(Time::us(1), [big, &sum] { sum += big[11] + 1; });
  e.run();
  EXPECT_EQ(sum, 42u);
}

// ---------------------------------------------------------------------------
// sim::Arena (DESIGN.md §8): bump allocation, reverse-order finalizers,
// block retention across reset().
// ---------------------------------------------------------------------------

namespace {
std::vector<int>* g_destroy_order = nullptr;

struct Tracked {
  explicit Tracked(int id) : id_{id} {}
  ~Tracked() {
    if (g_destroy_order != nullptr) g_destroy_order->push_back(id_);
  }
  int id_;
};
}  // namespace

TEST(Arena, DestroysInReverseConstructionOrder) {
  std::vector<int> order;
  g_destroy_order = &order;
  Arena arena;
  arena.make<Tracked>(1);
  arena.make<Tracked>(2);
  arena.make<Tracked>(3);
  EXPECT_EQ(arena.live_finalizers(), 3u);
  arena.reset();
  g_destroy_order = nullptr;
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(arena.live_finalizers(), 0u);
}

TEST(Arena, TriviallyDestructibleCostsNoFinalizer) {
  Arena arena;
  int* p = arena.make<int>(7);
  auto* q = arena.make<std::array<std::uint64_t, 4>>();
  EXPECT_EQ(*p, 7);
  (*q)[3] = 9;
  EXPECT_EQ(arena.live_finalizers(), 0u);
}

TEST(Arena, ResetRetainsBlocksAndSteadyStateIsAllocationFree) {
  Arena arena;
  auto round = [&] {
    for (int i = 0; i < 200; ++i) arena.make<std::uint64_t>(i);
    arena.reset();
  };
  round();  // warm-up: acquires blocks and finalizer capacity
  const std::size_t retained = arena.bytes_retained();
  EXPECT_GE(retained, 200 * sizeof(std::uint64_t));
  const std::uint64_t before = news();
  for (int r = 0; r < 10; ++r) round();
  EXPECT_EQ(news() - before, 0u);  // teardown is a pointer reset
  EXPECT_EQ(arena.bytes_retained(), retained);
}

TEST(Arena, HonorsAlignmentAndOversizeRequests) {
  struct alignas(64) Wide {
    std::uint8_t fill[64];
  };
  Arena arena;
  arena.make<std::uint8_t>(1);  // misalign the bump pointer
  Wide* w = arena.make<Wide>();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % 64, 0u);
  // Larger than a whole block: gets a block of its own.
  auto* big = arena.make<std::array<std::uint8_t, Arena::kBlockBytes + 1>>();
  (*big)[Arena::kBlockBytes] = 42;
  EXPECT_EQ((*big)[Arena::kBlockBytes], 42);
  // The arena can keep allocating small objects afterwards.
  EXPECT_EQ(*arena.make<int>(5), 5);
}

}  // namespace
}  // namespace canely::sim
