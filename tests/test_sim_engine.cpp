// Unit tests for the discrete-event engine (src/sim/engine.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace canely::sim {
namespace {

TEST(Time, FactoriesAndConversions) {
  EXPECT_EQ(Time::us(1).to_ns(), 1'000);
  EXPECT_EQ(Time::ms(1).to_us(), 1'000);
  EXPECT_EQ(Time::sec(1).to_ms(), 1'000);
  EXPECT_EQ(Time::zero().to_ns(), 0);
  EXPECT_DOUBLE_EQ(Time::ms(30).to_sec_f(), 0.030);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ms(2) + Time::ms(3), Time::ms(5));
  EXPECT_EQ(Time::ms(5) - Time::ms(3), Time::ms(2));
  EXPECT_EQ(Time::us(10) * 3, Time::us(30));
  EXPECT_EQ(3 * Time::us(10), Time::us(30));
  EXPECT_EQ(Time::ms(10) / Time::ms(2), 5);
  EXPECT_EQ(Time::ms(10) / 2, Time::ms(5));
  EXPECT_LT(Time::us(999), Time::ms(1));
}

TEST(Time, BitTimeHelpers) {
  EXPECT_EQ(bit_time(1'000'000), Time::us(1));   // 1 Mbps
  EXPECT_EQ(bit_time(50'000), Time::us(20));     // 50 kbps
  EXPECT_EQ(bits_to_time(130, 1'000'000), Time::us(130));
}

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), Time::zero());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  e.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  e.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Time::ms(3));
}

TEST(Engine, SameTimeFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(Time::ms(1), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] { ++fired; });
  e.schedule_at(Time::ms(10), [&] { ++fired; });
  EXPECT_EQ(e.run_until(Time::ms(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Time::ms(5));  // clock advances even with no event
  EXPECT_EQ(e.run_until(Time::ms(10)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtBoundaryIsIncluded) {
  Engine e;
  bool fired = false;
  e.schedule_at(Time::ms(5), [&] { fired = true; });
  e.run_until(Time::ms(5));
  EXPECT_TRUE(fired);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = Time::zero();
  e.schedule_at(Time::ms(2), [&] {
    e.schedule_after(Time::ms(3), [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, Time::ms(5));
}

TEST(Engine, CancelPreventsDispatch) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(Time::ms(1), [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  EventId id = e.schedule_at(Time::ms(1), [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterDispatchFails) {
  Engine e;
  EventId id = e.schedule_at(Time::ms(1), [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelInvalidIdFails) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventId{}));
  EXPECT_FALSE(e.cancel(EventId{12345}));
}

TEST(Engine, CancelOneOfManyLeavesOthersAlive) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] { ++fired; });
  EventId victim = e.schedule_at(Time::ms(2), [&] { ++fired; });
  e.schedule_at(Time::ms(3), [&] { ++fired; });
  e.cancel(victim);
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(Time::ms(5), [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(Time::ms(1), [] {}), std::logic_error);
}

TEST(Engine, EmptyCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(Time::ms(1), Engine::Callback{}),
               std::logic_error);
}

TEST(Engine, StopBreaksRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(Time::ms(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringDispatchRun) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(Time::us(1), recurse);
  };
  e.schedule_at(Time::us(1), recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.dispatched(), 5u);
}

// --- the determinism golden -------------------------------------------------
//
// A pseudo-random schedule/cancel/run interleave whose dispatch order
// (event label + dispatch instant, FNV-1a-mixed) is pinned to a constant
// captured from the seed implementation (PR 1's priority-queue +
// unordered_set engine).  The slot/generation rewrite must preserve the
// dispatch order — and the cancel() return values — bit for bit.
TEST(Engine, GoldenDispatchOrderHash) {
  Engine e;
  Rng rng{0xC0FFEE};
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  std::vector<EventId> issued;
  int label = 0;
  for (int round = 0; round < 200; ++round) {
    const auto burst = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const int my = label++;
      issued.push_back(e.schedule_after(
          Time::ns(static_cast<std::int64_t>(rng.below(5000))),
          [&mix, &e, my] {
            mix(static_cast<std::uint64_t>(my));
            mix(static_cast<std::uint64_t>(e.now().to_ns()));
          }));
    }
    // Cancel a random sample of everything ever issued: hits pending,
    // dispatched, and already-cancelled events alike.
    const auto cancels = rng.below(issued.size()) / 2;
    for (std::uint64_t i = 0; i < cancels; ++i) {
      const auto idx = static_cast<std::size_t>(rng.below(issued.size()));
      mix(e.cancel(issued[idx]) ? 1 : 0);
    }
    e.run_for(Time::ns(static_cast<std::int64_t>(rng.below(3000))));
    mix(e.pending());
  }
  e.run();
  mix(e.dispatched());
  EXPECT_EQ(h, 5039619941919453717ULL);
}

TEST(Engine, RunUntilHandlesEventChainsWithinBound) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    e.schedule_after(Time::ms(1), chain);
  };
  e.schedule_at(Time::ms(1), chain);
  e.run_until(Time::ms(10));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(e.pending(), 1u);  // the 11th link is queued
}

// Reference semantics for the pooled engine: a flat list of events plus a
// live-flag, dispatch order (time, scheduling sequence).  This is what the
// seed implementation (std::priority_queue + live-seq set) computed; the
// slot/generation engine must be observably identical under arbitrary
// schedule/cancel churn.
struct ReferenceEngine {
  struct Ev {
    Time t;
    std::uint64_t seq;
    int label;
    bool live;
  };
  std::vector<Ev> events;  // indexed by label
  std::uint64_t next_seq{1};
  Time now{Time::zero()};

  int schedule(Time t, int label) {
    events.push_back(Ev{t, next_seq++, label, true});
    return label;
  }
  bool cancel(int label) {
    if (label < 0 || static_cast<std::size_t>(label) >= events.size()) {
      return false;
    }
    if (!events[static_cast<std::size_t>(label)].live) return false;
    events[static_cast<std::size_t>(label)].live = false;
    return true;
  }
  // Dispatch everything with t <= horizon, in (t, seq) order; returns the
  // dispatched labels.
  std::vector<int> run_until(Time horizon) {
    std::vector<Ev*> due;
    for (Ev& ev : events) {
      if (ev.live && ev.t <= horizon) due.push_back(&ev);
    }
    std::sort(due.begin(), due.end(), [](const Ev* a, const Ev* b) {
      if (a->t != b->t) return a->t < b->t;
      return a->seq < b->seq;
    });
    std::vector<int> order;
    for (Ev* ev : due) {
      ev->live = false;
      order.push_back(ev->label);
    }
    if (now < horizon) now = horizon;
    return order;
  }
  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const Ev& ev : events) n += ev.live ? 1 : 0;
    return n;
  }
};

TEST(Engine, CancelChurnMatchesReferenceSemantics) {
  // Randomized schedule/cancel/run rounds; the engine and the reference
  // must agree on dispatch order, every cancel() return value, and
  // pending() after each round.  Exercises slot recycling under heavy
  // churn (cancelled slots are reused with fresh generations).
  Engine e;
  ReferenceEngine ref;
  Rng rng{20260806};
  std::vector<EventId> ids;       // engine handle per label
  std::vector<int> engine_order;  // labels in engine dispatch order

  int label = 0;
  for (int round = 0; round < 200; ++round) {
    const auto burst = 1 + rng.below(12);
    for (std::uint64_t i = 0; i < burst; ++i) {
      const Time t =
          e.now() + Time::ns(static_cast<std::int64_t>(rng.below(4000)));
      const int my = label++;
      ids.push_back(e.schedule_at(t, [&engine_order, my] {
        engine_order.push_back(my);
      }));
      ref.schedule(t, my);
    }
    // Cancel a random sample of every handle ever issued — pending,
    // dispatched, cancelled, and forged ids alike.
    const auto cancels = rng.below(static_cast<std::uint64_t>(label)) / 2;
    for (std::uint64_t i = 0; i < cancels; ++i) {
      const auto idx = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(label)));
      ASSERT_EQ(e.cancel(ids[idx]), ref.cancel(static_cast<int>(idx)))
          << "cancel disagreement at round " << round << " label " << idx;
    }
    EXPECT_FALSE(e.cancel(EventId{}));
    EXPECT_FALSE(e.cancel(EventId{0xDEADBEEFULL << 32 | 12345}));

    const Time horizon =
        e.now() + Time::ns(static_cast<std::int64_t>(rng.below(3000)));
    engine_order.clear();
    e.run_until(horizon);
    const std::vector<int> want = ref.run_until(horizon);
    ASSERT_EQ(engine_order, want) << "dispatch order diverged at round "
                                  << round;
    ASSERT_EQ(e.pending(), ref.pending()) << "pending diverged at round "
                                          << round;
  }
  engine_order.clear();
  e.run();
  EXPECT_EQ(engine_order, ref.run_until(Time::max()));
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, PendingAccountingSurvivesMassCancellation) {
  Engine e;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(
        e.schedule_at(Time::us(1 + i % 7), [&fired] { ++fired; }));
  }
  EXPECT_EQ(e.pending(), 1000u);
  for (const EventId id : ids) EXPECT_TRUE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
  for (const EventId id : ids) EXPECT_FALSE(e.cancel(id));  // double cancel
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_EQ(fired, 0);  // every queued entry was stale

  // The pool must be fully recycled: scheduling again reuses the freed
  // slots and the accounting starts clean.
  for (int i = 0; i < 1000; ++i) {
    e.schedule_after(Time::us(1), [&fired] { ++fired; });
  }
  EXPECT_EQ(e.pending(), 1000u);
  e.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(e.pending(), 0u);
}

}  // namespace
}  // namespace canely::sim
