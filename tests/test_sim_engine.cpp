// Unit tests for the discrete-event engine (src/sim/engine.hpp).

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace canely::sim {
namespace {

TEST(Time, FactoriesAndConversions) {
  EXPECT_EQ(Time::us(1).to_ns(), 1'000);
  EXPECT_EQ(Time::ms(1).to_us(), 1'000);
  EXPECT_EQ(Time::sec(1).to_ms(), 1'000);
  EXPECT_EQ(Time::zero().to_ns(), 0);
  EXPECT_DOUBLE_EQ(Time::ms(30).to_sec_f(), 0.030);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ms(2) + Time::ms(3), Time::ms(5));
  EXPECT_EQ(Time::ms(5) - Time::ms(3), Time::ms(2));
  EXPECT_EQ(Time::us(10) * 3, Time::us(30));
  EXPECT_EQ(3 * Time::us(10), Time::us(30));
  EXPECT_EQ(Time::ms(10) / Time::ms(2), 5);
  EXPECT_EQ(Time::ms(10) / 2, Time::ms(5));
  EXPECT_LT(Time::us(999), Time::ms(1));
}

TEST(Time, BitTimeHelpers) {
  EXPECT_EQ(bit_time(1'000'000), Time::us(1));   // 1 Mbps
  EXPECT_EQ(bit_time(50'000), Time::us(20));     // 50 kbps
  EXPECT_EQ(bits_to_time(130, 1'000'000), Time::us(130));
}

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), Time::zero());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::ms(3), [&] { order.push_back(3); });
  e.schedule_at(Time::ms(1), [&] { order.push_back(1); });
  e.schedule_at(Time::ms(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Time::ms(3));
}

TEST(Engine, SameTimeFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(Time::ms(1), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] { ++fired; });
  e.schedule_at(Time::ms(10), [&] { ++fired; });
  EXPECT_EQ(e.run_until(Time::ms(5)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Time::ms(5));  // clock advances even with no event
  EXPECT_EQ(e.run_until(Time::ms(10)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtBoundaryIsIncluded) {
  Engine e;
  bool fired = false;
  e.schedule_at(Time::ms(5), [&] { fired = true; });
  e.run_until(Time::ms(5));
  EXPECT_TRUE(fired);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Time seen = Time::zero();
  e.schedule_at(Time::ms(2), [&] {
    e.schedule_after(Time::ms(3), [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, Time::ms(5));
}

TEST(Engine, CancelPreventsDispatch) {
  Engine e;
  bool fired = false;
  EventId id = e.schedule_at(Time::ms(1), [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  EventId id = e.schedule_at(Time::ms(1), [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterDispatchFails) {
  Engine e;
  EventId id = e.schedule_at(Time::ms(1), [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelInvalidIdFails) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventId{}));
  EXPECT_FALSE(e.cancel(EventId{12345}));
}

TEST(Engine, CancelOneOfManyLeavesOthersAlive) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] { ++fired; });
  EventId victim = e.schedule_at(Time::ms(2), [&] { ++fired; });
  e.schedule_at(Time::ms(3), [&] { ++fired; });
  e.cancel(victim);
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(Time::ms(5), [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(Time::ms(1), [] {}), std::logic_error);
}

TEST(Engine, EmptyCallbackThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(Time::ms(1), Engine::Callback{}),
               std::logic_error);
}

TEST(Engine, StopBreaksRun) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::ms(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(Time::ms(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsScheduledDuringDispatchRun) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(Time::us(1), recurse);
  };
  e.schedule_at(Time::us(1), recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.dispatched(), 5u);
}

TEST(Engine, RunUntilHandlesEventChainsWithinBound) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    e.schedule_after(Time::ms(1), chain);
  };
  e.schedule_at(Time::ms(1), chain);
  e.run_until(Time::ms(10));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(e.pending(), 1u);  // the 11th link is queued
}

}  // namespace
}  // namespace canely::sim
