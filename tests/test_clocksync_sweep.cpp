// Parameterized clock synchronization sweeps: precision as a function of
// the resynchronization period (drift accumulates between rounds) and of
// the latch jitter (the scheme's floor).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "clocksync/clock.hpp"
#include "clocksync/sync_service.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using clocksync::ClockSyncService;
using clocksync::DriftClock;
using clocksync::SyncParams;
using sim::Time;

struct Rig {
  explicit Rig(SyncParams sp) : cluster{4} {
    for (std::size_t i = 0; i < 4; ++i) {
      clocks.push_back(std::make_unique<DriftClock>(
          -100.0 + 66.0 * static_cast<double>(i)));
      svc.push_back(std::make_unique<ClockSyncService>(
          cluster.node(i).driver(), cluster.node(i).timers(), *clocks[i],
          sp, 555 + i));
      svc.back()->start(static_cast<unsigned>(i));
    }
  }

  Time worst_precision(int samples, Time step) {
    Time worst = Time::zero();
    for (int s = 0; s < samples; ++s) {
      cluster.engine().run_for(step);
      Time lo = Time::max(), hi = Time::ns(INT64_MIN);
      for (auto& c : clocks) {
        const Time r = c->read(cluster.engine().now());
        lo = std::min(lo, r);
        hi = std::max(hi, r);
      }
      worst = std::max(worst, hi - lo);
    }
    return worst;
  }

  Cluster cluster;
  std::vector<std::unique_ptr<DriftClock>> clocks;
  std::vector<std::unique_ptr<ClockSyncService>> svc;
};

class PeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweep, PrecisionBoundedByJitterPlusDriftOverPeriod) {
  SyncParams sp;
  sp.period = Time::ms(GetParam());
  Rig rig{sp};
  rig.cluster.engine().run_until(Time::sec(1));
  const Time worst = rig.worst_precision(25, Time::ms(GetParam()) / 3);
  // Budget: latch jitter (<= 10 us at each of two nodes) + total drift
  // spread (200 ppm) over one period, with 50% headroom.
  const auto budget_us = 20.0 + 200e-6 * GetParam() * 1000.0;
  EXPECT_LT(worst.to_us_f(), budget_us * 1.5) << "period " << GetParam();
  EXPECT_GT(worst, Time::zero());
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweep,
                         ::testing::Values(50, 100, 200, 400));

TEST(ClockSyncSweep, ShorterPeriodTightensPrecision) {
  SyncParams fast, slow;
  fast.period = Time::ms(50);
  fast.latch_jitter_max = Time::us(1);
  slow.period = Time::ms(400);
  slow.latch_jitter_max = Time::us(1);
  Rig rf{fast}, rs{slow};
  rf.cluster.engine().run_until(Time::sec(1));
  rs.cluster.engine().run_until(Time::sec(1));
  const Time pf = rf.worst_precision(30, Time::ms(17));
  const Time ps = rs.worst_precision(30, Time::ms(133));
  // With negligible jitter, precision is dominated by drift x period:
  // the 8x slower resync must be several times worse.
  EXPECT_LT(pf * 3, ps);
}

TEST(ClockSyncSweep, JitterSetsTheFloor) {
  SyncParams clean, noisy;
  clean.latch_jitter_max = Time::us(1);
  noisy.latch_jitter_max = Time::us(40);
  Rig rc{clean}, rn{noisy};
  rc.cluster.engine().run_until(Time::sec(1));
  rn.cluster.engine().run_until(Time::sec(1));
  const Time pc = rc.worst_precision(30, Time::ms(33));
  const Time pn = rn.worst_precision(30, Time::ms(33));
  EXPECT_LT(pc, pn);
  EXPECT_GT(pn, Time::us(20));  // jitter dominates
}

}  // namespace
}  // namespace canely::testing
