// Tests for the media redundancy layer ([17]): single-medium faults are
// masked; the faulty medium is quarantined; with one medium, partitions
// cause the receiver-side omissions of [22].

#include <gtest/gtest.h>

#include "media/redundancy.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using media::MediaSet;
using media::RedundantMedia;
using sim::Time;

TEST(MediaSet, PathEvaluation) {
  MediaSet m{2};
  EXPECT_TRUE(m.path_ok(0, 1, 2));
  m.fail_medium(0);
  EXPECT_FALSE(m.path_ok(0, 1, 2));
  EXPECT_TRUE(m.path_ok(1, 1, 2));
  m.repair_medium(0);
  EXPECT_TRUE(m.path_ok(0, 1, 2));
}

TEST(MediaSet, PartitionSeparatesSegments) {
  MediaSet m{2};
  m.partition_medium(0, NodeSet{0, 1});
  EXPECT_FALSE(m.path_ok(0, 0, 2));  // across the cut
  EXPECT_TRUE(m.path_ok(0, 0, 1));   // same segment
  EXPECT_TRUE(m.path_ok(0, 2, 3));   // same segment (other side)
  EXPECT_TRUE(m.path_ok(1, 0, 2));   // replica medium unaffected
}

TEST(MediaSet, InvalidCountRejected) {
  EXPECT_THROW(MediaSet{0}, std::invalid_argument);
  EXPECT_THROW(MediaSet{5}, std::invalid_argument);
}

TEST(RedundantMediaUnit, DeliversWhileAnyMediumWorks) {
  MediaSet m{2};
  RedundantMedia rm{m};
  const auto f = can::Frame::make_data(1, {});
  EXPECT_TRUE(rm.receives(0, 1, f));
  m.fail_medium(1);
  EXPECT_TRUE(rm.receives(0, 1, f));
  EXPECT_EQ(rm.total_losses(), 0u);
}

TEST(RedundantMediaUnit, QuarantinesDisagreeingMedium) {
  MediaSet m{2};
  RedundantMedia rm{m, /*quarantine_threshold=*/3};
  m.partition_medium(0, NodeSet{0});
  const auto f = can::Frame::make_data(1, {});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(rm.receives(0, 1, f));
  EXPECT_TRUE(rm.quarantined(1, 0));   // receiver 1 stopped trusting medium 0
  EXPECT_FALSE(rm.quarantined(1, 1));
  EXPECT_EQ(rm.suspect_count(1, 0), 3);
}

TEST(RedundantMediaUnit, BothMediaDeadMeansLoss) {
  MediaSet m{2};
  RedundantMedia rm{m};
  m.fail_medium(0);
  m.fail_medium(1);
  const auto f = can::Frame::make_data(1, {});
  EXPECT_FALSE(rm.receives(0, 1, f));
  EXPECT_EQ(rm.total_losses(), 1u);
}

// --- end-to-end: membership over redundant media ---------------------------

TEST(MediaIntegration, MembershipSurvivesSingleMediumPartition) {
  Cluster c{4};
  MediaSet m{2};
  RedundantMedia rm{m};
  c.bus().set_reception_filter(&rm);

  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  // Partition medium 0 between {0,1} and {2,3}: with redundancy the view
  // must not change and no node may be suspected.
  m.partition_medium(0, NodeSet{0, 1});
  c.settle(Time::sec(1));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(4))) << c.any_view();
  EXPECT_EQ(rm.total_losses(), 0u);
}

TEST(MediaIntegration, WithoutRedundancyPartitionBreaksConsistency) {
  // Control experiment: a single medium with the same partition makes
  // cross-segment nodes mutually unreachable -> both segments suspect the
  // other side (this is exactly why §4 must assume no medium partition,
  // and why [17] exists).
  Cluster c{4};
  MediaSet m{1};
  RedundantMedia rm{m};
  c.bus().set_reception_filter(&rm);

  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  m.partition_medium(0, NodeSet{0, 1});
  c.settle(Time::sec(1));
  EXPECT_FALSE(c.views_agree(NodeSet::first_n(4)));
  EXPECT_GT(rm.total_losses(), 0u);
}

TEST(MediaIntegration, TrafficKeepsFlowingAcrossMediumFailure) {
  Cluster c{3};
  MediaSet m{2};
  RedundantMedia rm{m};
  c.bus().set_reception_filter(&rm);
  c.join_all();
  c.settle(Time::ms(500));

  int received = 0;
  c.node(2).on_message([&](can::NodeId, std::uint8_t,
                           std::span<const std::uint8_t>, bool own) {
    if (!own) ++received;
  });
  c.node(0).start_periodic(1, Time::ms(5), {0x11});
  c.settle(Time::ms(100));
  const int before = received;
  EXPECT_GT(before, 15);

  m.fail_medium(0);
  c.settle(Time::ms(100));
  EXPECT_GT(received - before, 15);  // no interruption
  EXPECT_EQ(rm.total_losses(), 0u);
}

}  // namespace
}  // namespace canely::testing
