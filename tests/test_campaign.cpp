// Tests for the deterministic campaign runner (src/campaign): grid
// enumeration, seed forking, the sequential/parallel byte-identity
// contract (results AND dumped JSON), cancellation, exception
// propagation, aggregation, and the shared bench CLI.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sim/rng.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using campaign::Grid;
using campaign::Json;
using campaign::Runner;
using campaign::RunSpec;
using sim::Time;

// --- grid enumeration -------------------------------------------------------

TEST(CampaignGrid, EnumeratesCartesianProductFirstAxisSlowest) {
  Grid g;
  g.axis("a", {1, 2, 3}).axis("b", {10, 20}).repeats(2).master_seed(7);
  EXPECT_EQ(g.cells(), 6u);
  EXPECT_EQ(g.size(), 12u);

  // index = ((ia * 2) + ib) * 2 + repeat: axis "a" slowest, repeat innermost.
  const RunSpec r0 = g.run(0);
  EXPECT_EQ(r0.cell, 0u);
  EXPECT_EQ(r0.repeat, 0u);
  EXPECT_EQ(r0.param("a"), 1);
  EXPECT_EQ(r0.param("b"), 10);

  const RunSpec r3 = g.run(3);  // cell 1 (a=1, b=20), repeat 1
  EXPECT_EQ(r3.cell, 1u);
  EXPECT_EQ(r3.repeat, 1u);
  EXPECT_EQ(r3.param("a"), 1);
  EXPECT_EQ(r3.param("b"), 20);

  const RunSpec r11 = g.run(11);  // last: a=3, b=20, repeat 1
  EXPECT_EQ(r11.cell, 5u);
  EXPECT_EQ(r11.repeat, 1u);
  EXPECT_EQ(r11.param("a"), 3);
  EXPECT_EQ(r11.param("b"), 20);

  EXPECT_THROW((void)r0.param("missing"), std::out_of_range);
}

TEST(CampaignGrid, SeedsArePureFunctionsOfTheIndex) {
  Grid g;
  g.axis("x", {0, 1}).repeats(4).master_seed(1234);
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < g.size(); ++i) {
    seeds.push_back(g.run(i).seed);
    EXPECT_EQ(g.run(i).seed, campaign::fork_seed(1234, i)) << "index " << i;
  }
  // All distinct (forked, not sequential draws from one stream)...
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
  // ...and stable across re-enumeration.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.run(i).seed, seeds[i]);
  }
}

// --- the determinism contract ----------------------------------------------

/// A run function with real seed-dependent branching: mixes the seed and
/// the axis values through a private RNG stream.
double synthetic_trial(const RunSpec& spec) {
  sim::Rng rng{spec.seed};
  double acc = spec.param("x") * 1000 + spec.param("y");
  const int steps = static_cast<int>(16 + rng.below(16));
  for (int s = 0; s < steps; ++s) acc += rng.uniform01();
  return acc;
}

TEST(CampaignRunner, ParallelResultsAreByteIdenticalToSequential) {
  Grid g;
  g.axis("x", {0, 1, 2, 3}).axis("y", {5, 6}).repeats(4).master_seed(99);
  ASSERT_EQ(g.size(), 32u);

  const auto seq = Runner{1}.run<double>(g, synthetic_trial);
  ASSERT_EQ(seq.completed, g.size());
  // Repeat the parallel campaign several times: scheduling noise across
  // attempts must never reach the results.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto par = Runner{4}.run<double>(g, synthetic_trial);
    ASSERT_EQ(par.completed, g.size()) << "attempt " << attempt;
    EXPECT_FALSE(par.cancelled);
    for (std::size_t i = 0; i < g.size(); ++i) {
      // Bitwise equality, not tolerance: the slots must hold the very
      // same doubles the sequential pass produced.
      EXPECT_EQ(seq.results[i], par.results[i])
          << "run " << i << " attempt " << attempt;
    }
  }
}

/// A run function that builds a full simulation universe per run, the way
/// the benches do: a 3-node cluster, one seed-chosen crash, detection
/// latency in microseconds.
double simulated_trial(const RunSpec& spec) {
  sim::Rng rng{spec.seed};
  Params p;
  p.heartbeat_period = Time::ms(5 + spec.param("hb"));
  Cluster c{3, p};
  c.join_all();
  c.settle(Time::ms(500));
  if (!c.views_agree(can::NodeSet::first_n(3))) return -1.0;

  const auto victim = static_cast<std::size_t>(rng.below(3));
  const std::size_t observer = (victim + 1) % 3;
  can::NodeSet expect = can::NodeSet::first_n(3);
  expect.erase(static_cast<can::NodeId>(victim));

  const Time crashed_at = c.engine().now();
  c.node(victim).crash();
  while (c.node(observer).view() != expect) {
    if (c.engine().now() - crashed_at > Time::ms(200)) return -2.0;
    c.settle(Time::us(100));
  }
  return static_cast<double>((c.engine().now() - crashed_at).to_us());
}

TEST(CampaignRunner, SimulationBackedRunsAreThreadCountInvariant) {
  Grid g;
  g.axis("hb", {0, 5}).repeats(3).master_seed(2026);
  const auto seq = Runner{1}.run<double>(g, simulated_trial);
  const auto par = Runner{4}.run<double>(g, simulated_trial);
  ASSERT_EQ(seq.completed, g.size());
  ASSERT_EQ(par.completed, g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(seq.results[i], par.results[i]) << "run " << i;
    EXPECT_GT(seq.results[i], 0.0) << "run " << i;  // detected, no timeout
  }
}

/// Dump an Outcome exactly the way the benches build their trajectories.
std::string dump_trajectory(const Grid& g,
                            const campaign::Outcome<double>& out) {
  Json root = campaign::trajectory_header("test_campaign", g);
  Json cells = Json::array();
  for (std::size_t cell = 0; cell < g.cells(); ++cell) {
    std::vector<double> samples;
    for (const double* r : out.cell(g, cell)) samples.push_back(*r);
    const campaign::Summary s = campaign::summarize(samples);
    Json jc = Json::object();
    for (const auto& [name, value] : g.cell_params(cell)) {
      jc.set(name, Json::number(value));
    }
    jc.set("mean", Json::number(s.mean));
    jc.set("p90", Json::number(s.p90));
    jc.set("stddev", Json::number(s.stddev));
    cells.push(std::move(jc));
  }
  root.set("cells", std::move(cells));
  return root.dump(2);
}

/// FNV-1a over a byte string.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// The goldenized determinism contract for the simulator core: a
// simulation-backed campaign (full node stack — engine, timers, bus,
// membership — with a seed-chosen crash per run) must dump byte-identical
// JSON across engine/bus rewrites.  The constant was captured from the
// pre-optimization engine (PR 1); any change to event dispatch order,
// timer semantics, or bus delivery order shows up here as a hash change.
TEST(CampaignRunner, GoldenTrajectoryHashIsStable) {
  Grid g;
  g.axis("hb", {0, 5}).repeats(3).master_seed(2026);
  const std::string json =
      dump_trajectory(g, Runner{1}.run<double>(g, simulated_trial));
  EXPECT_EQ(fnv1a(json), 1069868970218217984ULL)
      << "trajectory bytes changed — event dispatch order is no longer "
         "identical to the goldenized engine:\n"
      << json;
}

TEST(CampaignRunner, DumpedJsonIsByteIdenticalAcrossThreadCounts) {
  Grid g;
  g.axis("x", {1, 2, 3}).axis("y", {0, 1}).repeats(5).master_seed(4242);
  const std::string seq =
      dump_trajectory(g, Runner{1}.run<double>(g, synthetic_trial));
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const std::string par =
        dump_trajectory(g, Runner{threads}.run<double>(g, synthetic_trial));
    EXPECT_EQ(seq, par) << "threads=" << threads;
  }
}

// --- cancellation -----------------------------------------------------------

TEST(CampaignRunner, CancelFromRunBodyStopsClaimingSequential) {
  Grid g;
  g.axis("x", {0}).repeats(64).master_seed(1);
  Runner runner{1};
  const auto out = runner.run<double>(g, [&](const RunSpec& spec) {
    if (spec.index == 4) runner.cancel();
    return static_cast<double>(spec.index);
  });
  EXPECT_TRUE(out.cancelled);
  // Sequential: indices claimed in order, the cancelling run completes.
  EXPECT_EQ(out.completed, 5u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(out.done[i] != 0, i <= 4) << "slot " << i;
    if (out.done[i]) {
      EXPECT_EQ(out.results[i], static_cast<double>(i));
    }
  }
}

TEST(CampaignRunner, CancelMidCampaignParallelLeavesConsistentOutcome) {
  Grid g;
  g.axis("x", {0}).repeats(256).master_seed(1);
  Runner runner{4};
  std::atomic<std::size_t> started{0};
  const auto out = runner.run<double>(g, [&](const RunSpec& spec) {
    if (started.fetch_add(1) == 20) runner.cancel();
    return static_cast<double>(spec.index) * 2;
  });
  EXPECT_TRUE(out.cancelled);
  // In-flight runs complete; nothing new is claimed afterwards.
  EXPECT_LT(out.completed, g.size());
  EXPECT_GE(out.completed, 1u);
  std::size_t done_count = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (out.done[i]) {
      ++done_count;
      // Every completed slot holds its own run's value — never another
      // run's (the slot-by-index discipline holds under cancellation).
      EXPECT_EQ(out.results[i], static_cast<double>(i) * 2) << "slot " << i;
    }
  }
  EXPECT_EQ(done_count, out.completed);
}

TEST(CampaignRunner, CancellationIsNotStickyAcrossCampaigns) {
  Grid g;
  g.axis("x", {0}).repeats(8).master_seed(1);
  Runner runner{2};
  const auto first = runner.run<double>(g, [&](const RunSpec& spec) {
    runner.cancel();
    return static_cast<double>(spec.index);
  });
  EXPECT_TRUE(first.cancelled);
  const auto second =
      runner.run<double>(g, [](const RunSpec& spec) {
        return static_cast<double>(spec.index);
      });
  EXPECT_FALSE(second.cancelled);
  EXPECT_EQ(second.completed, g.size());
}

TEST(CampaignRunner, RunExceptionAbortsCampaignAndRethrows) {
  Grid g;
  g.axis("x", {0}).repeats(32).master_seed(1);
  Runner runner{4};
  EXPECT_THROW(runner.run<double>(g,
                                  [](const RunSpec& spec) -> double {
                                    if (spec.index == 3) {
                                      throw std::runtime_error{"boom"};
                                    }
                                    return 0.0;
                                  }),
               std::runtime_error);
}

// --- aggregation ------------------------------------------------------------

TEST(CampaignAggregate, SummarizeAndPercentilesAreExact) {
  const std::vector<double> samples{5, 1, 4, 2, 3};
  const campaign::Summary s = campaign::summarize(samples);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);   // nearest rank
  EXPECT_EQ(s.p90, 5.0);
  EXPECT_EQ(s.p99, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);

  EXPECT_EQ(campaign::percentile(samples, 0), 1.0);
  EXPECT_EQ(campaign::percentile(samples, 100), 5.0);
  EXPECT_EQ(campaign::percentile(std::vector<double>{}, 50), 0.0);

  const std::vector<std::uint8_t> flags{1, 0, 1, 1};
  EXPECT_DOUBLE_EQ(campaign::fraction_true(flags), 0.75);
  EXPECT_DOUBLE_EQ(campaign::total(samples), 15.0);

  const campaign::Summary empty = campaign::summarize(std::vector<double>{});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

TEST(CampaignJson, NumbersFormatShortestRoundTrip) {
  EXPECT_EQ(campaign::format_number(0.005), "0.005");
  EXPECT_EQ(campaign::format_number(30), "30");
  EXPECT_EQ(campaign::format_number(-1.5), "-1.5");
  Json o = Json::object();
  o.set("b", Json::boolean(true));
  o.set("a", Json::integer(-3));  // insertion order preserved, no sorting
  EXPECT_EQ(o.dump(), "{\"b\":true,\"a\":-3}");
}

// --- the shared bench CLI ---------------------------------------------------

TEST(CampaignCli, ParsesSharedFlags) {
  const char* argv[] = {"bench", "--threads", "3", "--seed", "77",
                        "--json", "out.json"};
  const auto opts = campaign::parse_cli(7, const_cast<char**>(argv), "d.json");
  EXPECT_FALSE(opts.help);
  EXPECT_EQ(opts.threads, 3u);
  EXPECT_EQ(opts.seed, 77u);
  EXPECT_EQ(opts.json_path, "out.json");
}

TEST(CampaignCli, DefaultsAndNoJson) {
  const char* argv1[] = {"bench"};
  const auto defaults =
      campaign::parse_cli(1, const_cast<char**>(argv1), "d.json");
  EXPECT_EQ(defaults.threads, 0u);
  EXPECT_EQ(defaults.seed, 42u);
  EXPECT_EQ(defaults.json_path, "d.json");

  const char* argv2[] = {"bench", "--no-json"};
  const auto nojson =
      campaign::parse_cli(2, const_cast<char**>(argv2), "d.json");
  EXPECT_TRUE(nojson.json_path.empty());

  const char* argv3[] = {"bench", "--frobnicate"};
  const auto unknown =
      campaign::parse_cli(2, const_cast<char**>(argv3), "");
  EXPECT_TRUE(unknown.help);  // unknown flags must not be silently eaten
}

}  // namespace
}  // namespace canely::testing
