#pragma once
// Shared scaffolding for the CANELy test suites.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "can/bus.hpp"
#include "canely/node.hpp"
#include "sim/engine.hpp"

namespace canely::testing {

/// A ready-made cluster: engine + bus + n CANELy nodes (ids 0..n-1).
class Cluster {
 public:
  explicit Cluster(std::size_t n, Params params = {},
                   can::BusConfig bus_config = {})
      : params_{[&] {
          params.n = n;
          return params;
        }()},
        bus_{engine_, bus_config} {
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<Node>(
          bus_, static_cast<can::NodeId>(i), params_));
    }
  }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] can::Bus& bus() { return bus_; }
  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// All nodes request to join.
  void join_all() {
    for (auto& n : nodes_) n->join();
  }

  /// Run until all live nodes agree on the expected full view, or fail.
  void settle(sim::Time budget) {
    engine_.run_until(engine_.now() + budget);
  }

  /// True when every expected member's view equals `expected` exactly.
  /// (Nodes outside `expected` — crashed, left, or never joined — are not
  /// required to hold the view.)
  [[nodiscard]] bool views_agree(can::NodeSet expected) const {
    for (const auto& n : nodes_) {
      if (n->crashed() || !expected.contains(n->id())) continue;
      if (n->view() != expected) return false;
    }
    return true;
  }

  /// The view of the first non-crashed node (for diagnostics).
  [[nodiscard]] can::NodeSet any_view() const {
    for (const auto& n : nodes_) {
      if (!n->crashed()) return n->view();
    }
    return {};
  }

 private:
  sim::Engine engine_;
  Params params_;
  can::Bus bus_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace canely::testing
