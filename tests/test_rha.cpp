// Tests for the Reception History Agreement micro-protocol (Fig. 7):
// convergence by intersection, the j-copies dissemination rule, and the
// agreement property under inconsistent join/leave knowledge.

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

/// Harness: drives RhaProtocol directly with controlled shared sets,
/// bypassing the membership layer.
class RhaHarness {
 public:
  explicit RhaHarness(std::size_t n) : cluster{n} {
    for (std::size_t i = 0; i < n; ++i) {
      auto& rha = cluster.node(i).rha();
      rha.set_shared_sets_provider([this, i] { return sets[i]; });
      rha.set_nty_handler([this, i](RhaEvent e, NodeSet rhv) {
        if (e == RhaEvent::kEnd) ends[i].push_back(rhv);
        if (e == RhaEvent::kInit) ++inits[i];
      });
    }
  }

  Cluster cluster;
  std::map<std::size_t, RhaProtocol::SharedSets> sets;
  std::map<std::size_t, std::vector<NodeSet>> ends;
  std::map<std::size_t, int> inits;
};

TEST(Rha, ConsistentSetsAgreeInOneExecution) {
  RhaHarness h{4};
  const NodeSet members = NodeSet::first_n(4);
  for (std::size_t i = 0; i < 4; ++i) {
    h.sets[i] = {members, NodeSet{}, NodeSet{}};
  }
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u) << "node " << i;
    EXPECT_EQ(h.ends[i][0], members);
    EXPECT_EQ(h.inits[i], 1);
  }
}

TEST(Rha, NonMemberCannotStartInIsolation) {
  RhaHarness h{3};
  for (std::size_t i = 0; i < 3; ++i) {
    h.sets[i] = {NodeSet{0, 1}, NodeSet{}, NodeSet{}};  // node 2 outside
  }
  h.cluster.node(2).rha().rha_can_req();  // s00 guard: must be ignored
  h.cluster.settle(Time::ms(20));
  EXPECT_FALSE(h.cluster.node(2).rha().running());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(h.ends[i].empty());
}

TEST(Rha, ReceptionTriggersExecutionEverywhere) {
  RhaHarness h{4};
  for (std::size_t i = 0; i < 4; ++i) {
    h.sets[i] = {NodeSet::first_n(4), NodeSet{}, NodeSet{}};
  }
  h.cluster.node(1).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  // Everyone ran exactly one execution (r03 reception-triggered start).
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.inits[i], 1);
}

TEST(Rha, InconsistentJoinKnowledgeConvergesToIntersection) {
  // Node 3's join request reached only node 0 (inconsistent omission of
  // the JOIN frame): R_J = {3} at node 0, empty elsewhere.  Agreement
  // must settle on the intersection — node 3 NOT admitted (and the
  // membership layer retries next cycle).
  RhaHarness h{4};
  const NodeSet members{0, 1, 2};
  h.sets[0] = {members, NodeSet{3}, NodeSet{}};
  h.sets[1] = {members, NodeSet{}, NodeSet{}};
  h.sets[2] = {members, NodeSet{}, NodeSet{}};
  h.sets[3] = {members, NodeSet{}, NodeSet{}};  // node 3: not a member
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u) << "node " << i;
    EXPECT_EQ(h.ends[i][0], members) << "node " << i;
  }
}

TEST(Rha, LeaveKnownToOneRemovesEverywhere) {
  // Only node 2 knows node 1 wants to leave; the removal must win (the
  // intersection rule is exactly the "any node not included in both RHV
  // sets is removed" of lines r04-r07).
  RhaHarness h{4};
  const NodeSet members = NodeSet::first_n(4);
  for (std::size_t i = 0; i < 4; ++i) h.sets[i] = {members, {}, {}};
  h.sets[2].leaving = NodeSet{1};
  h.cluster.node(2).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u);
    EXPECT_EQ(h.ends[i][0], (NodeSet{0, 2, 3})) << "node " << i;
  }
}

TEST(Rha, EqualCardinalityDistinctVectorsConvergeWithoutCollision) {
  // Two nodes start concurrent executions holding DIFFERENT vectors of
  // EQUAL cardinality: node 0 believes 3 is leaving, node 1 believes 2
  // is.  Both RHVs have cardinality 3, so a mid keyed only by {RHA,#RHV}
  // would alias onto one identifier and the differing payloads would
  // collide on the wire.  The sender field in the mid keeps the
  // identifiers distinct: the vectors serialize cleanly, intersect, and
  // every node delivers {0,1} with zero bus collisions.
  RhaHarness h{4};
  const NodeSet members = NodeSet::first_n(4);
  for (std::size_t i = 0; i < 4; ++i) h.sets[i] = {members, {}, {}};
  h.sets[0].leaving = NodeSet{3};
  h.sets[1].leaving = NodeSet{2};
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.node(1).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u) << "node " << i;
    EXPECT_EQ(h.ends[i][0], (NodeSet{0, 1})) << "node " << i;
  }
  EXPECT_EQ(h.cluster.bus().stats().collisions, 0u);
}

TEST(Rha, ConfirmedSignalClearsPendingAbortTarget) {
  // Regression: once the own RHV reaches the wire (can-data.cnf) there is
  // nothing left to abort, and the pending flag must drop.  Two nodes
  // with j = 2 never hit the >j-copies abort (r08), so only the cnf path
  // can clear it — under the old code both nodes stayed "pending" for the
  // whole execution, leaving a stale can-abort.req target armed.
  RhaHarness h{2};
  for (std::size_t i = 0; i < 2; ++i) {
    h.sets[i] = {NodeSet::first_n(2), NodeSet{}, NodeSet{}};
  }
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(2));  // mid-execution: Trha = 5 ms
  ASSERT_TRUE(h.cluster.node(0).rha().running());
  EXPECT_FALSE(h.cluster.node(0).rha().pending());
  EXPECT_FALSE(h.cluster.node(1).rha().pending());
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u);
    EXPECT_EQ(h.ends[i][0], NodeSet::first_n(2));
  }
}

TEST(Rha, CopiesBoundedByJPlusOne) {
  // With consistent vectors, at most j+1 copies of the value circulate
  // (line r08 aborts redundant retransmissions) — NOT one per node.
  Params p;
  p.inconsistent_degree_j = 2;
  RhaHarness h{8};
  // Rebuild with 8 nodes and j=2 is the default; count RHA frames.
  for (std::size_t i = 0; i < 8; ++i) {
    h.sets[i] = {NodeSet::first_n(8), NodeSet{}, NodeSet{}};
  }
  std::uint64_t rha_frames = 0;
  h.cluster.bus().set_observer([&](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == MsgType::kRha &&
        r.outcome == can::TxOutcome::kOk) {
      ++rha_frames;
    }
  });
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  for (std::size_t i = 0; i < 8; ++i) ASSERT_EQ(h.ends[i].size(), 1u);
  // j+1 = 3 copies suffice; allow a small margin for frames already
  // queued before their abort landed.
  EXPECT_LE(rha_frames, 5u);
  EXPECT_GE(rha_frames, 3u);
}

TEST(Rha, ExecutionStateClearsAtEnd) {
  RhaHarness h{3};
  for (std::size_t i = 0; i < 3; ++i) {
    h.sets[i] = {NodeSet::first_n(3), NodeSet{}, NodeSet{}};
  }
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  EXPECT_FALSE(h.cluster.node(0).rha().running());
  EXPECT_EQ(h.cluster.node(0).rha().current_rhv(), NodeSet{});
  // A second execution works from scratch.
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));
  EXPECT_EQ(h.ends[1].size(), 2u);
}

// --- agreement property under arbitrary inconsistent R_J patterns ----------
//
// Parameterized: each of nodes 0..2 independently knows / does not know
// about joiner 3 (inconsistent dissemination of the JOIN request).  All
// correct nodes must deliver the SAME final vector, and it must contain
// node 3 only if the intersection rule says so (i.e. if all members knew).

class RhaAgreementTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RhaAgreementTest, AllNodesDeliverTheSameVector) {
  const std::uint32_t mask = GetParam();
  RhaHarness h{4};
  const NodeSet members{0, 1, 2};
  for (std::size_t i = 0; i < 3; ++i) {
    const bool knows = mask & (1u << i);
    h.sets[i] = {members, knows ? NodeSet{3} : NodeSet{}, NodeSet{}};
  }
  h.sets[3] = {members, NodeSet{3}, NodeSet{}};  // the joiner knows itself
  h.cluster.node(0).rha().rha_can_req();
  h.cluster.settle(Time::ms(20));

  ASSERT_EQ(h.ends[0].size(), 1u);
  const NodeSet agreed = h.ends[0][0];
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(h.ends[i].size(), 1u) << "node " << i << " mask=" << mask;
    EXPECT_EQ(h.ends[i][0], agreed) << "node " << i << " mask=" << mask;
  }
  // The intersection admits 3 iff every member proposed it.
  if (mask == 0b111) {
    EXPECT_TRUE(agreed.contains(3));
  } else {
    EXPECT_FALSE(agreed.contains(3));
  }
  EXPECT_EQ(agreed.minus(NodeSet{3}), members);
}

INSTANTIATE_TEST_SUITE_P(AllKnowledgePatterns, RhaAgreementTest,
                         ::testing::Range(0u, 8u));

}  // namespace
}  // namespace canely::testing
