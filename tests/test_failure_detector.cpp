// Tests for the node failure detection protocol (Fig. 8): surveillance
// timers, implicit heartbeats via can-data.nty, explicit life-signs,
// detection latency bounds, FDA-based consistency.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

class FdTest : public ::testing::Test {
 protected:
  FdTest() {
    params.heartbeat_period = Time::ms(10);
    params.tx_delay_bound = Time::ms(1);
    c = std::make_unique<Cluster>(4, params);
    for (std::size_t i = 0; i < 4; ++i) {
      c->node(i).fd().set_nty_handler(
          [this, i](can::NodeId r) { ntys[i].push_back({r, c->engine().now()}); });
    }
  }

  /// Start mutual surveillance among nodes 0..k-1 (as membership would).
  void start_all(std::size_t k) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        c->node(i).fd().fd_can_req_start(static_cast<can::NodeId>(j));
      }
    }
  }

  struct Nty {
    can::NodeId failed;
    Time at;
  };
  Params params;
  std::unique_ptr<Cluster> c;
  std::array<std::vector<Nty>, 4> ntys;
};

TEST_F(FdTest, QuietNodesEmitExplicitLifeSigns) {
  start_all(4);
  c->settle(Time::ms(100));
  // Nobody transmits data: each node must have sent ~10 ELS in 100 ms.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(c->node(i).fd().els_sent(), 9u) << "node " << i;
    EXPECT_LE(c->node(i).fd().els_sent(), 11u) << "node " << i;
    EXPECT_TRUE(ntys[i].empty()) << "node " << i;  // no false suspicion
  }
}

TEST_F(FdTest, DataTrafficSuppressesLifeSigns) {
  start_all(4);
  c->node(0).start_periodic(1, Time::ms(4), {1});  // 4 ms < Th = 10 ms
  c->settle(Time::ms(200));
  EXPECT_EQ(c->node(0).fd().els_sent(), 0u);
  EXPECT_GT(c->node(1).fd().els_sent(), 15u);  // quiet node keeps signing
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(ntys[i].empty());
}

TEST_F(FdTest, PeriodAboveThStillNeedsExplicitSigns) {
  // Periodic traffic slower than Th cannot fully replace life-signs
  // (§6.1: explicit signs are for periods above the detection latency).
  start_all(4);
  c->node(0).start_periodic(1, Time::ms(25), {1});
  c->settle(Time::ms(200));
  const auto els = c->node(0).fd().els_sent();
  EXPECT_GT(els, 0u);
  EXPECT_LT(els, 20u);  // but fewer than a fully quiet node's ~20
}

TEST_F(FdTest, CrashDetectedWithinBound) {
  start_all(4);
  c->settle(Time::ms(50));
  const Time t_crash = c->engine().now();
  c->node(2).crash();
  c->settle(Time::ms(50));
  // All survivors notified, exactly once, within Th + Ttd + skew + FDA.
  for (std::size_t i : {0u, 1u, 3u}) {
    ASSERT_EQ(ntys[i].size(), 1u) << "node " << i;
    EXPECT_EQ(ntys[i][0].failed, 2);
    const Time latency = ntys[i][0].at - t_crash;
    const Time bound = params.heartbeat_period + params.tx_delay_bound +
                       params.fd_skew_quantum * 4 + Time::ms(1);
    EXPECT_LE(latency, bound) << "node " << i;
  }
}

TEST_F(FdTest, NotificationIsConsistentAcrossObservers) {
  start_all(4);
  c->settle(Time::ms(50));
  c->node(1).crash();
  c->settle(Time::ms(50));
  // FDA delivers the failure-sign in the same broadcast: all observers
  // notified at the same instant.
  ASSERT_FALSE(ntys[0].empty());
  ASSERT_FALSE(ntys[2].empty());
  ASSERT_FALSE(ntys[3].empty());
  EXPECT_EQ(ntys[0][0].at, ntys[2][0].at);
  EXPECT_EQ(ntys[0][0].at, ntys[3][0].at);
}

TEST_F(FdTest, StopCancelsSurveillance) {
  start_all(4);
  c->settle(Time::ms(20));
  for (std::size_t i : {0u, 1u, 3u}) {
    c->node(i).fd().fd_can_req_stop(2);
  }
  c->node(2).crash();
  c->settle(Time::ms(100));
  for (std::size_t i : {0u, 1u, 3u}) {
    EXPECT_TRUE(ntys[i].empty()) << "node " << i;
  }
}

TEST_F(FdTest, MonitoringFlagTracksStartStop) {
  auto& fd = c->node(0).fd();
  EXPECT_FALSE(fd.monitoring(2));
  fd.fd_can_req_start(2);
  EXPECT_TRUE(fd.monitoring(2));
  fd.fd_can_req_stop(2);
  EXPECT_FALSE(fd.monitoring(2));
}

TEST_F(FdTest, ActivityOfUnmonitoredNodesIgnored) {
  // Node 0 monitors only itself; node 2's silence must not trigger
  // anything, and node 2's traffic must not create state.
  c->node(0).fd().fd_can_req_start(0);
  c->node(2).start_periodic(1, Time::ms(5), {2});
  c->settle(Time::ms(100));
  EXPECT_TRUE(ntys[0].empty());
  EXPECT_FALSE(c->node(0).fd().monitoring(2));
}

TEST_F(FdTest, LateActivityAfterSuspicionStillConverges) {
  // A node pausing longer than Th + Ttd is declared failed even if it
  // resumes afterwards (the paper's reintegration rule then applies: it
  // must not rejoin before >> Tm).
  start_all(4);
  c->settle(Time::ms(30));
  // Pause node 3 by crashing... we need a pause, not a crash: stop its
  // timers so it stops ELS, then let it resume later is not supported by
  // the facade — emulate with a crash and assert detection.
  c->node(3).crash();
  c->settle(Time::ms(30));
  ASSERT_EQ(ntys[0].size(), 1u);
  EXPECT_EQ(ntys[0][0].failed, 3);
  // After FDA, surveillance of the failed node has stopped everywhere.
  EXPECT_FALSE(c->node(0).fd().monitoring(3));
  EXPECT_FALSE(c->node(1).fd().monitoring(3));
}

TEST(FdLiveness, ElsKilledBeforeWireDoesNotStrandSelfSurveillance) {
  // Regression: the self-surveillance timer must be re-armed on every
  // expiry, not only by the ELS loopback.  If the life-sign dies before
  // reaching the wire — here a bus-error storm drives the sender bus-off,
  // and fault confinement clears its controller queue — the old code left
  // the timer parked waiting for a can-rtr.ind that never comes: the node
  // stayed silent forever and its peers falsely suspected it.
  Params params;
  params.heartbeat_period = Time::ms(10);
  // Generous Ttd so the 20 ms retry beats the peers' ~22 ms budget.
  params.tx_delay_bound = Time::ms(12);
  Cluster c{4, params};
  c.node(0).controller().enable_bus_off_recovery(true);

  // Destroy every ELS node 0 sends before t = 15 ms.  The CAN controller
  // retries each destroyed attempt (TEC +8 per error), so the first ELS
  // at t = 10 ms rides the bus straight into bus-off, which clears the
  // queue: the life-sign is gone for good, not merely delayed.
  can::ScriptedFaults faults;
  faults.add(
      [](const can::TxContext& ctx) {
        const auto mid = Mid::decode(ctx.frame);
        return mid.has_value() && mid->type == MsgType::kEls &&
               mid->node == 0 && ctx.start < Time::ms(15);
      },
      can::Verdict::global_error(), /*shots=*/-1);
  c.bus().set_fault_injector(&faults);

  std::array<std::vector<can::NodeId>, 4> ntys;
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).fd().set_nty_handler(
        [&ntys, i](can::NodeId r) { ntys[i].push_back(r); });
    for (std::size_t j = 0; j < 4; ++j) {
      c.node(i).fd().fd_can_req_start(static_cast<can::NodeId>(j));
    }
  }

  c.settle(Time::ms(40));

  // The storm really happened: errors burned through to bus-off.
  EXPECT_GE(c.bus().stats().errors, 32u);
  // The re-armed timer retried the life-sign at t = 20 ms (post-recovery,
  // post-window), so node 0 signed at least twice...
  EXPECT_GE(c.node(0).fd().els_sent(), 2u);
  EXPECT_TRUE(c.node(0).controller().alive());
  // ...and nobody ever suspected a live node.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ntys[i].empty()) << "node " << i << " falsely suspected";
  }
}

TEST_F(FdTest, ImplicitHeartbeatBandwidthAdvantage) {
  // Measured counterpart of §6.3's claim: with cyclic application traffic
  // below Th, failure detection consumes zero extra frames.
  start_all(4);
  for (std::size_t i = 0; i < 4; ++i) {
    c->node(i).start_periodic(1, Time::ms(3),
                              {static_cast<std::uint8_t>(i)});
  }
  c->settle(Time::ms(300));
  std::uint64_t total_els = 0;
  for (std::size_t i = 0; i < 4; ++i) total_els += c->node(i).fd().els_sent();
  EXPECT_EQ(total_els, 0u);
}

}  // namespace
}  // namespace canely::testing
