// Tests for the workload module: SAE-like sets, utilization accounting,
// and the workload -> response-time-analysis bridge used to budget Ttd.

#include <gtest/gtest.h>

#include <set>

#include "workload/sae.hpp"

namespace canely::workload {
namespace {

TEST(SaeWorkload, HasTheFourClassicBuckets) {
  const auto set = sae_like_set(8);
  EXPECT_EQ(set.size(), 20u);
  std::set<std::int64_t> periods;
  for (const auto& s : set) periods.insert(s.period.to_ms());
  EXPECT_TRUE(periods.contains(5));
  EXPECT_TRUE(periods.contains(10));
  EXPECT_TRUE(periods.contains(100));
  EXPECT_TRUE(periods.contains(1000));
}

TEST(SaeWorkload, SpreadsSendersOverNodes) {
  const auto set = sae_like_set(4);
  std::set<can::NodeId> senders;
  for (const auto& s : set) senders.insert(s.sender);
  EXPECT_EQ(senders.size(), 4u);
  for (can::NodeId n : senders) EXPECT_LT(n, 4);
}

TEST(SaeWorkload, PrioritiesAreUnique) {
  const auto set = sae_like_set(8);
  std::set<std::uint32_t> prios;
  for (const auto& s : set) prios.insert(s.priority);
  EXPECT_EQ(prios.size(), set.size());
}

TEST(SaeWorkload, UtilizationModerateAt1Mbps) {
  const auto set = sae_like_set(8);
  const double u = utilization(set, 1'000'000);
  EXPECT_GT(u, 0.05);
  EXPECT_LT(u, 0.40);  // schedulable headroom, per the module contract
}

TEST(UniformCyclic, OneStreamPerNode) {
  const auto set = uniform_cyclic_set(6, sim::Time::ms(10), 4);
  EXPECT_EQ(set.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(set[i].sender, static_cast<can::NodeId>(i));
    EXPECT_EQ(set[i].dlc, 4u);
    EXPECT_EQ(set[i].period, sim::Time::ms(10));
  }
}

TEST(WorkloadRta, SaeSetIsSchedulable) {
  const auto set = sae_like_set(8);
  analysis::ResponseTimeAnalysis rta{
      to_message_specs(set, /*include_protocol_overlay=*/false, 8,
                       sim::Time::ms(10), sim::Time::ms(30)),
      1'000'000};
  EXPECT_TRUE(rta.all_schedulable());
  ASSERT_TRUE(rta.worst_response().has_value());
  // Everything fits well inside the slowest period.
  EXPECT_LT(*rta.worst_response(), sim::Time::ms(100));
}

TEST(WorkloadRta, ProtocolOverlayInflatesButStaysSchedulable) {
  const auto set = sae_like_set(8);
  analysis::ResponseTimeAnalysis plain{
      to_message_specs(set, false, 8, sim::Time::ms(10), sim::Time::ms(30)),
      1'000'000};
  analysis::ResponseTimeAnalysis overlay{
      to_message_specs(set, true, 8, sim::Time::ms(10), sim::Time::ms(30)),
      1'000'000};
  ASSERT_TRUE(plain.all_schedulable());
  ASSERT_TRUE(overlay.all_schedulable());
  EXPECT_GT(*overlay.worst_response(), *plain.worst_response());
  EXPECT_GT(overlay.utilization(), plain.utilization());
}

TEST(WorkloadRta, OverlayGivesASaneTtdBudget) {
  // The derived Ttd for the default deployment must comfortably contain
  // the Params default (2 ms) plus burst slack — this test documents the
  // link between the analysis and the failure detector's parameter.
  const auto set = uniform_cyclic_set(8, sim::Time::ms(5));
  analysis::ResponseTimeAnalysis rta{
      to_message_specs(set, true, 8, sim::Time::ms(10), sim::Time::ms(30)),
      1'000'000, analysis::ErrorHypothesis{2, sim::Time::ms(10)}};
  ASSERT_TRUE(rta.all_schedulable());
  EXPECT_LT(*rta.worst_response(), sim::Time::ms(3));
}

}  // namespace
}  // namespace canely::workload
