// Tests for the scenario DSL (src/scenario): parsing, execution,
// expectations, and rejection of malformed scripts.

#include <gtest/gtest.h>

#include "scenario/scenario.hpp"
#include "sim/rng.hpp"

namespace canely::scenario {
namespace {

TEST(Scenario, MinimalScriptRuns) {
  const auto r = run_script(R"(
nodes 3
at 0 join 0..2
at 400 expect-view 0,1,2
run 500
)");
  ASSERT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.expectations.size(), 1u);
  EXPECT_TRUE(r.expectations[0].passed);
  EXPECT_GT(r.frames_ok, 0u);
}

TEST(Scenario, FailedExpectationReported) {
  const auto r = run_script(R"(
nodes 3
at 0 join 0,1
at 400 expect-view 0,1,2   # node 2 never joined
run 500
)");
  ASSERT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.expectations.size(), 1u);
  EXPECT_FALSE(r.expectations[0].passed);
}

TEST(Scenario, CrashAndDetect) {
  const auto r = run_script(R"(
nodes 4
param heartbeat_ms 10
at 0 join 0..3
at 400 expect-view 0..3
at 450 crash 1
at 600 expect-view 0,2,3
at 600 expect-member 0 1
run 700
)");
  ASSERT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_TRUE(r.ok) << r.expectations.back().detail;
}

TEST(Scenario, GroupJoinVerb) {
  const auto r = run_script(R"(
nodes 3
at 0 join 0..2
at 400 group-join 7 0,2
at 450 expect-view 0,1,2
run 500
)");
  ASSERT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_TRUE(r.ok);
}

TEST(Scenario, TrafficAndFaults) {
  const auto r = run_script(R"(
nodes 4
faults 1.0 1.0 7
at 0 join 0..3
at 400 traffic 0 5
at 450 traffic 1 8
at 900 expect-view 0..3
run 1000
)");
  ASSERT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.frames_error, 0u);  // faults actually fired
}

TEST(Scenario, CommentsAndBlankLines) {
  const auto r = run_script(R"(
# a comment
nodes 2

at 0 join 0,1   # trailing comment
run 400
)");
  EXPECT_TRUE(r.parse_error.empty()) << r.parse_error;
  EXPECT_TRUE(r.ok);
}

TEST(Scenario, RangesAndListsEquivalent) {
  const auto a = run_script(
      "nodes 4\nat 0 join 0..3\nat 400 expect-view 0,1,2,3\nrun 500\n");
  const auto b = run_script(
      "nodes 4\nat 0 join 0,1,2,3\nat 400 expect-view 0..3\nrun 500\n");
  EXPECT_TRUE(a.ok);
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.frames_ok, b.frames_ok);  // determinism across spellings
}

// --- rejection of malformed input -------------------------------------------

TEST(ScenarioErrors, MissingNodes) {
  const auto r = run_script("run 100\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("nodes"), std::string::npos);
}

TEST(ScenarioErrors, MissingRun) {
  const auto r = run_script("nodes 2\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("run"), std::string::npos);
}

TEST(ScenarioErrors, UnknownStatement) {
  const auto r = run_script("nodes 2\nfrobnicate 3\nrun 100\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("unknown statement"), std::string::npos);
  EXPECT_NE(r.parse_error.find("line 2"), std::string::npos);
}

TEST(ScenarioErrors, UnknownVerb) {
  const auto r = run_script("nodes 2\nat 10 explode 0\nrun 100\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("unknown verb"), std::string::npos);
}

TEST(ScenarioErrors, BadNodeList) {
  const auto r = run_script("nodes 2\nat 0 join 0..99\nrun 100\n");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.parse_error.empty());
}

TEST(ScenarioErrors, BadParamKey) {
  const auto r = run_script("nodes 2\nparam warp_speed 9\nrun 100\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("unknown key"), std::string::npos);
}

TEST(ScenarioErrors, TooManyNodes) {
  const auto r = run_script("nodes 65\nrun 100\n");
  EXPECT_FALSE(r.ok);
}

TEST(ScenarioErrors, MissingFile) {
  const auto r = run_script_file("/nonexistent/path.scn");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.parse_error.find("cannot open"), std::string::npos);
}

TEST(Scenario, FrameTraceIsCandumpLike) {
  std::vector<std::string> lines;
  const auto r = run_script(
      "nodes 3\nat 0 join 0..2\nrun 400\n",
      [&lines](const std::string& l) { lines.push_back(l); });
  ASSERT_TRUE(r.ok) << r.parse_error;
  ASSERT_FALSE(lines.empty());
  // First frames are the JOIN remote frames.
  EXPECT_NE(lines[0].find("ccan0"), std::string::npos);
  EXPECT_NE(lines[0].find("JOIN"), std::string::npos);
  EXPECT_NE(lines[0].find("#R0"), std::string::npos);  // remote, dlc 0
  // Somewhere an RHA data frame with an 8-byte payload shows up.
  bool rha = false;
  for (const auto& l : lines) {
    if (l.find("RHA") != std::string::npos &&
        l.find("#R") == std::string::npos) {
      rha = true;
    }
  }
  EXPECT_TRUE(rha);
}

// --- parser fuzz: random garbage must be rejected, never crash/hang -------

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, GarbageNeverCrashes) {
  sim::Rng rng{GetParam()};
  const char* words[] = {"nodes", "at",    "run",   "join",  "crash",
                         "leave", "param", "0..7",  "1,2,x", "-5",
                         "99999", "#",     "\n",    "traffic",
                         "expect-view",    "faults", "group-join"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string script;
    const int tokens = 1 + static_cast<int>(rng.below(30));
    for (int t = 0; t < tokens; ++t) {
      script += words[rng.below(std::size(words))];
      script += rng.chance(0.3) ? "\n" : " ";
    }
    const auto r = run_script(script);
    // Whatever happened, it terminated and reported coherently: either a
    // parse error, or a successful (possibly trivial) run.
    if (!r.parse_error.empty()) {
      EXPECT_FALSE(r.ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace canely::scenario
