// Tests for the analytic models: bandwidth (Fig. 10), inaccessibility
// (Fig. 11), Tindell-Burns response times (MCAN4's Ttd).

#include <gtest/gtest.h>

#include "analysis/bandwidth.hpp"
#include "analysis/inaccessibility.hpp"
#include "analysis/response_time.hpp"

namespace canely::analysis {
namespace {

// ------------------------------------------------------------- bandwidth --

TEST(BandwidthModel, FrameCostsAreWorstCase) {
  BandwidthModel m{};
  // Extended remote frame: 54 stuffable + 13 stuff + 10 tail + 3 IFS = 80.
  EXPECT_DOUBLE_EQ(m.c_rtr(), 80.0);
  // Extended data frame, 4-byte RHV (n=32): 54+32=86 stuffable + 21 + 13.
  EXPECT_DOUBLE_EQ(m.c_rhv(), 86 + (86 - 1) / 4 + 10 + 3.0);
}

TEST(BandwidthModel, ScenarioOrderingMatchesFigure10) {
  BandwidthModel m{};
  const double tm = 30e-3 * 1e6;  // Tm = 30 ms at 1 Mbps, in bit-times
  const double u0 = BandwidthModel::utilization(m.no_changes(), tm);
  const double u1 = BandwidthModel::utilization(m.crash_failures(), tm);
  const double u2 = BandwidthModel::utilization(m.single_join_leave(), tm);
  const double u3 =
      BandwidthModel::utilization(m.multiple_join_leave(20), tm);
  EXPECT_LT(u0, u1);
  EXPECT_LT(u1, u2);
  EXPECT_LT(u2, u3);
  // Figure 10 magnitudes at Tm = 30 ms: ~2% / ~5-6% / ~7% / ~14%.
  EXPECT_NEAR(u0, 0.02, 0.01);
  EXPECT_NEAR(u1, 0.05, 0.02);
  EXPECT_GT(u3, 0.10);
  EXPECT_LT(u3, 0.25);
}

TEST(BandwidthModel, UtilizationDecaysHyperbolicallyInTm) {
  BandwidthModel m{};
  const double u30 = BandwidthModel::utilization(m.crash_failures(), 30e3);
  const double u60 = BandwidthModel::utilization(m.crash_failures(), 60e3);
  const double u90 = BandwidthModel::utilization(m.crash_failures(), 90e3);
  EXPECT_NEAR(u30 / u60, 2.0, 1e-9);
  EXPECT_NEAR(u30 / u90, 3.0, 1e-9);
}

TEST(BandwidthModel, JoinLeaveMarginalCostMatchesFootnote11) {
  // The paper: "each join/leave request contributes an increase of about
  // 0.6% (Tm = 30 ms)".  With base-format frames (as the paper's stack)
  // the marginal cost per request is c_rtr + c_rhv ~ 0.5-0.7%.
  BandwidthParams p;
  p.format = can::IdFormat::kBase;
  BandwidthModel m{p};
  const double tm = 30e3;
  const double marginal =
      (m.rha_bits(11) - m.rha_bits(10)) / tm;
  EXPECT_NEAR(marginal, 0.006, 0.002);
}

TEST(BandwidthModel, MoreLifeSignIssuersCostMore) {
  BandwidthParams a, b;
  a.b = 8;
  b.b = 16;
  EXPECT_LT(BandwidthModel{a}.life_sign_bits(),
            BandwidthModel{b}.life_sign_bits());
}

// -------------------------------------------------------- inaccessibility --

TEST(Inaccessibility, LowerBoundIsErrorFlagPlusDelimiter) {
  InaccessibilityModel m{};
  EXPECT_EQ(m.standard_can_bounds().min_bits, 14u);
  EXPECT_EQ(m.canely_bounds().min_bits, 14u);
}

TEST(Inaccessibility, UpperBoundsBracketThePaperRange) {
  // Fig. 11: standard CAN 14-2880 bit-times, CANELy 14-2160.  Our
  // reconstruction (exact worst frames, burst degrees 20 vs 15) must land
  // in the same range and preserve the standard > CANELy ordering.
  InaccessibilityModel m{};
  const auto std_b = m.standard_can_bounds();
  const auto ely_b = m.canely_bounds();
  EXPECT_GT(std_b.max_bits, ely_b.max_bits);
  EXPECT_NEAR(static_cast<double>(std_b.max_bits), 2880.0, 600.0);
  EXPECT_NEAR(static_cast<double>(ely_b.max_bits), 2160.0, 450.0);
  EXPECT_NEAR(static_cast<double>(std_b.max_bits) /
                  static_cast<double>(ely_b.max_bits),
              2880.0 / 2160.0, 1e-9);
}

TEST(Inaccessibility, SingleFaultScenariosAreOrdered) {
  InaccessibilityModel m{};
  for (const auto& s : m.single_fault_scenarios()) {
    EXPECT_LE(s.min_bits, s.max_bits) << s.name;
    EXPECT_GE(s.min_bits, 14u) << s.name;
    // A single fault can cost at most one max frame + signaling + slack.
    EXPECT_LE(s.max_bits, m.max_frame_bits() + 40) << s.name;
  }
}

TEST(Inaccessibility, BurstScalesLinearly) {
  InaccessibilityModel m{};
  EXPECT_EQ(m.burst(10).max_bits * 2, m.burst(20).max_bits);
  EXPECT_EQ(m.tina_bits(1), m.burst(1).max_bits);
}

// ----------------------------------------------------------- response time --

TEST(ResponseTime, SingleMessageIsJustItsTransmissionTime) {
  ResponseTimeAnalysis rta{
      {MessageSpec{"only", 1, 8, can::IdFormat::kBase, false,
                   sim::Time::ms(10), sim::Time::zero(), sim::Time::zero()}},
      1'000'000};
  ASSERT_EQ(rta.results().size(), 1u);
  const auto& r = rta.results()[0];
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.b, sim::Time::zero());
  EXPECT_EQ(r.r, r.c);
  EXPECT_EQ(r.c, sim::Time::us(135));  // worst 8-byte base frame
}

TEST(ResponseTime, LowerPriorityWaitsForHigher) {
  std::vector<MessageSpec> set{
      {"hi", 1, 8, can::IdFormat::kBase, false, sim::Time::ms(1),
       sim::Time::zero(), sim::Time::zero()},
      {"lo", 2, 8, can::IdFormat::kBase, false, sim::Time::ms(10),
       sim::Time::zero(), sim::Time::zero()},
  };
  ResponseTimeAnalysis rta{set, 1'000'000};
  ASSERT_TRUE(rta.all_schedulable());
  // lo waits for at least one hi instance (and hi, symmetrically, suffers
  // non-preemptive blocking from lo — both come to C_hi + C_lo here).
  EXPECT_GE(rta.results()[1].r, rta.results()[0].r);
  EXPECT_GE(rta.results()[1].r, sim::Time::us(270));
}

TEST(ResponseTime, BlockingFromLowerPriority) {
  std::vector<MessageSpec> set{
      {"hi", 1, 0, can::IdFormat::kBase, false, sim::Time::ms(10),
       sim::Time::zero(), sim::Time::zero()},
      {"lo", 2, 8, can::IdFormat::kBase, false, sim::Time::ms(10),
       sim::Time::zero(), sim::Time::zero()},
  };
  ResponseTimeAnalysis rta{set, 1'000'000};
  // hi suffers non-preemptive blocking from the long lo frame.
  EXPECT_EQ(rta.results()[0].b, sim::Time::us(135));
}

TEST(ResponseTime, OverloadedSetReportedUnschedulable) {
  std::vector<MessageSpec> set;
  for (int i = 0; i < 20; ++i) {
    // Built with += rather than "m" + std::to_string(i): GCC 12's
    // -Wrestrict misfires on const char* + basic_string&& under -O2.
    std::string name = "m";
    name += std::to_string(i);
    set.push_back({name, static_cast<std::uint32_t>(i),
                   8, can::IdFormat::kBase, false, sim::Time::ms(1),
                   sim::Time::zero(), sim::Time::zero()});
  }
  ResponseTimeAnalysis rta{set, 1'000'000};
  EXPECT_GT(rta.utilization(), 1.0);
  EXPECT_FALSE(rta.all_schedulable());
  EXPECT_FALSE(rta.worst_response().has_value());
}

TEST(ResponseTime, ErrorHypothesisInflatesResponseTimes) {
  std::vector<MessageSpec> set{
      {"m", 1, 8, can::IdFormat::kBase, false, sim::Time::ms(10),
       sim::Time::zero(), sim::Time::zero()},
  };
  ResponseTimeAnalysis clean{set, 1'000'000};
  ResponseTimeAnalysis faulty{set, 1'000'000,
                              ErrorHypothesis{2, sim::Time::ms(10)}};
  ASSERT_TRUE(clean.all_schedulable());
  ASSERT_TRUE(faulty.all_schedulable());
  EXPECT_GT(faulty.results()[0].r, clean.results()[0].r);
  // Two faults cost two (error signal + retransmission) units.
  EXPECT_GE(faulty.results()[0].r - clean.results()[0].r,
            sim::Time::us(2 * 135));
}

TEST(ResponseTime, JitterAddsDirectly) {
  MessageSpec m{"m", 1, 0, can::IdFormat::kBase, false, sim::Time::ms(10),
                sim::Time::us(50), sim::Time::zero()};
  ResponseTimeAnalysis rta{{m}, 1'000'000};
  EXPECT_EQ(rta.results()[0].r, rta.results()[0].c + sim::Time::us(50));
}

}  // namespace
}  // namespace canely::analysis
