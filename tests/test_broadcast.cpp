// Tests for the reliable broadcast suite (EDCAN, RELCAN, TOTCAN) — the
// [18] protocol family the paper's FDA/RHA descend from.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "broadcast/edcan.hpp"
#include "broadcast/relcan.hpp"
#include "broadcast/totcan.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

bool is_type(const can::TxContext& c, MsgType t) {
  const auto mid = Mid::decode(c.frame);
  return mid.has_value() && mid->type == t;
}

/// Crash `node` right after the first completed attempt matching `type`.
void crash_after_first(Cluster& c, can::NodeId node, MsgType type) {
  c.bus().set_observer([&c, node, type](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == type) {
      c.bus().set_observer({});
      c.engine().schedule_after(Time::ns(1),
                                [&c, node] { c.node(node).crash(); });
    }
  });
}

// ------------------------------------------------------------------ EDCAN --

class EdcanTest : public ::testing::Test {
 protected:
  void make(std::size_t n) {
    cluster = std::make_unique<Cluster>(n);
    for (std::size_t i = 0; i < n; ++i) {
      ep.push_back(std::make_unique<broadcast::EdcanBroadcast>(
          cluster->node(i).driver()));
      auto& sink = delivered[i];
      ep.back()->set_deliver_handler(
          [&sink](can::NodeId from, std::uint8_t seq,
                  std::span<const std::uint8_t> data) {
            sink.push_back({from, seq, {data.begin(), data.end()}});
          });
    }
  }
  struct Delivery {
    can::NodeId from;
    std::uint8_t seq;
    std::vector<std::uint8_t> data;
  };
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<broadcast::EdcanBroadcast>> ep;
  std::map<std::size_t, std::vector<Delivery>> delivered;
};

TEST_F(EdcanTest, DeliversToAllExactlyOnce) {
  make(4);
  const std::uint8_t data[] = {1, 2, 3};
  ep[0]->broadcast(data);
  cluster->engine().run_until(Time::ms(5));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(delivered[i].size(), 1u) << "node " << i;
    EXPECT_EQ(delivered[i][0].from, 0);
    EXPECT_EQ(delivered[i][0].data, (std::vector<std::uint8_t>{1, 2, 3}));
  }
}

TEST_F(EdcanTest, FaultFreeCostIsTwoFramesRegardlessOfGroupSize) {
  make(8);
  ep[0]->broadcast(std::array<std::uint8_t, 1>{9});
  cluster->engine().run_until(Time::ms(5));
  // Original + one clustered echo from the 7 recipients.
  EXPECT_EQ(cluster->bus().stats().ok, 2u);
}

TEST_F(EdcanTest, SurvivesInconsistentOmissionWithSenderCrash) {
  make(4);
  can::ScriptedFaults faults;
  faults.inconsistent_once(
      [](const can::TxContext& c) { return is_type(c, MsgType::kEdcan); },
      NodeSet{2, 3});
  cluster->bus().set_fault_injector(&faults);
  crash_after_first(*cluster, 0, MsgType::kEdcan);

  ep[0]->broadcast(std::array<std::uint8_t, 1>{7});
  cluster->engine().run_until(Time::ms(5));
  // Victims 2,3 missed the original and the sender died — but node 1's
  // eager echo rescues them (the failure mode LCAN2 alone cannot mask).
  EXPECT_EQ(delivered[1].size(), 1u);
  EXPECT_EQ(delivered[2].size(), 1u);
  EXPECT_EQ(delivered[3].size(), 1u);
}

TEST_F(EdcanTest, DuplicatesAbsorbed) {
  make(3);
  ep[0]->broadcast(std::array<std::uint8_t, 1>{1});
  cluster->engine().run_until(Time::ms(5));
  // Copies on the wire: original + echo; each node delivered once.
  EXPECT_GE(ep[1]->copies_seen(0, 0), 2);
  EXPECT_EQ(delivered[1].size(), 1u);
}

TEST_F(EdcanTest, ManyBroadcastsKeepSequenceIdentity) {
  make(3);
  for (int k = 0; k < 10; ++k) {
    ep[0]->broadcast(std::array<std::uint8_t, 1>{static_cast<std::uint8_t>(k)});
    ep[1]->broadcast(std::array<std::uint8_t, 1>{static_cast<std::uint8_t>(k)});
  }
  cluster->engine().run_until(Time::ms(20));
  ASSERT_EQ(delivered[2].size(), 20u);
  // Per-sender FIFO by sequence number.
  std::uint8_t next0 = 0, next1 = 0;
  for (const auto& d : delivered[2]) {
    if (d.from == 0) {
      EXPECT_EQ(d.seq, next0++);
    }
    if (d.from == 1) {
      EXPECT_EQ(d.seq, next1++);
    }
  }
}

// ----------------------------------------------------------------- RELCAN --

class RelcanTest : public ::testing::Test {
 protected:
  void make(std::size_t n) {
    cluster = std::make_unique<Cluster>(n);
    for (std::size_t i = 0; i < n; ++i) {
      ep.push_back(std::make_unique<broadcast::RelcanBroadcast>(
          cluster->node(i).driver(), cluster->node(i).timers()));
      auto& count = delivered[i];
      ep.back()->set_deliver_handler(
          [&count](can::NodeId, std::uint8_t,
                   std::span<const std::uint8_t>) { ++count; });
    }
  }
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<broadcast::RelcanBroadcast>> ep;
  std::map<std::size_t, int> delivered;
};

TEST_F(RelcanTest, FaultFreeDeliversWithoutFallback) {
  make(4);
  ep[0]->broadcast(std::array<std::uint8_t, 2>{1, 2});
  cluster->engine().run_until(Time::ms(10));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(delivered[i], 1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(ep[i]->fallbacks(), 0u);
  // Data + confirm = 2 frames.
  EXPECT_EQ(cluster->bus().stats().ok, 2u);
}

TEST_F(RelcanTest, SenderCrashTriggersEagerFallback) {
  make(4);
  can::ScriptedFaults faults;
  faults.inconsistent_once(
      [](const can::TxContext& c) {
        return is_type(c, MsgType::kRelcanData);
      },
      NodeSet{2, 3});
  cluster->bus().set_fault_injector(&faults);
  crash_after_first(*cluster, 0, MsgType::kRelcanData);

  ep[0]->broadcast(std::array<std::uint8_t, 1>{5});
  cluster->engine().run_until(Time::ms(20));
  // Node 1 saw the data but no confirm -> fallback rebroadcast; victims
  // 2 and 3 recover through it.
  EXPECT_GE(ep[1]->fallbacks(), 1u);
  EXPECT_EQ(delivered[1], 1);
  EXPECT_EQ(delivered[2], 1);
  EXPECT_EQ(delivered[3], 1);
}

// ----------------------------------------------------------------- TOTCAN --

class TotcanTest : public ::testing::Test {
 protected:
  void make(std::size_t n) {
    cluster = std::make_unique<Cluster>(n);
    for (std::size_t i = 0; i < n; ++i) {
      ep.push_back(std::make_unique<broadcast::TotcanBroadcast>(
          cluster->node(i).driver(), cluster->node(i).timers()));
      auto& order = delivery_order[i];
      ep.back()->set_deliver_handler(
          [&order](can::NodeId from, std::uint8_t seq,
                   std::span<const std::uint8_t>) {
            order.push_back({from, seq});
          });
    }
  }
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<broadcast::TotcanBroadcast>> ep;
  std::map<std::size_t, std::vector<std::pair<can::NodeId, std::uint8_t>>>
      delivery_order;
};

TEST_F(TotcanTest, ConcurrentBroadcastsDeliverInTheSameTotalOrder) {
  make(4);
  // Three nodes broadcast concurrently, repeatedly.
  for (int k = 0; k < 5; ++k) {
    for (std::size_t s = 0; s < 3; ++s) {
      ep[s]->broadcast(
          std::array<std::uint8_t, 1>{static_cast<std::uint8_t>(k)});
    }
  }
  cluster->engine().run_until(Time::ms(50));
  ASSERT_EQ(delivery_order[0].size(), 15u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(delivery_order[i], delivery_order[0]) << "node " << i;
  }
}

TEST_F(TotcanTest, SenderCrashBeforeAcceptDiscardsUnanimously) {
  make(4);
  crash_after_first(*cluster, 0, MsgType::kTotcanData);
  ep[0]->broadcast(std::array<std::uint8_t, 1>{9});
  cluster->engine().run_until(Time::ms(50));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(delivery_order[i].empty()) << "node " << i;
    EXPECT_EQ(ep[i]->discarded(), 1u) << "node " << i;
  }
}

TEST_F(TotcanTest, DeliveryWaitsForAccept) {
  make(3);
  // Delivery must not happen at data reception: stop the clock just past
  // the end of the (exactly computed) data frame and check nothing was
  // delivered yet.
  const std::array<std::uint8_t, 1> payload{1};
  const auto data_frame = can::Frame::make_data(
      Mid{MsgType::kTotcanData, 0, 0}.encode(), payload,
      can::IdFormat::kExtended);
  const auto data_end = sim::bits_to_time(
      static_cast<std::int64_t>(can::frame_bits_on_wire(data_frame) +
                                can::kIntermissionBits),
      1'000'000);
  ep[0]->broadcast(payload);
  cluster->engine().run_until(data_end + Time::us(2));
  EXPECT_TRUE(delivery_order[1].empty());
  cluster->engine().run_until(Time::ms(5));
  EXPECT_EQ(delivery_order[1].size(), 1u);
}

}  // namespace
}  // namespace canely::testing
