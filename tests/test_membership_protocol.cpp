// Unit-level tests for the site membership protocol (Fig. 9): protocol
// data sets, the two-cycle join pruning (footnote 10), bootstrap rules,
// cycle synchronization, and notification discipline (a10-a18).

#include <gtest/gtest.h>

#include <vector>

#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

TEST(MembershipProtocol, JoinPopulatesRjAtParticipants) {
  Cluster c{3};
  c.node(0).join();
  c.node(1).join();
  c.engine().run_until(Time::ms(5));  // JOIN frames delivered, no cycle yet
  // Service participants collect each other's requests...
  EXPECT_EQ(c.node(0).membership().rj(), (NodeSet{0, 1}));
  EXPECT_EQ(c.node(1).membership().rj(), (NodeSet{0, 1}));
  // ...but a node not running the membership service must NOT accumulate
  // them (it cannot know which requests past cycles already consumed).
  EXPECT_TRUE(c.node(2).membership().rj().empty());
  EXPECT_TRUE(c.node(1).membership().rf().empty());
}

TEST(MembershipProtocol, ViewOnlyInstalledAfterAgreement) {
  Cluster c{3};
  c.join_all();
  c.engine().run_until(Time::ms(100));  // before Tjoin_wait (200 ms)
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.node(i).view().empty()) << "node " << i;
    EXPECT_FALSE(c.node(i).is_member());
  }
  c.engine().run_until(Time::ms(500));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(3)));
}

TEST(MembershipProtocol, RjClearedAfterAdmission) {
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.node(i).membership().rj().empty()) << "node " << i;
    EXPECT_TRUE(c.node(i).membership().rl().empty()) << "node " << i;
  }
}

TEST(MembershipProtocol, StaleJoinRequestPrunedWithinTwoCycles) {
  // Inject a JOIN for node 2 at member nodes only via a real frame that
  // node 2 "sent" — but node 2 never follows through (its Tjoin_wait
  // bootstrap is suppressed by never calling join()).  The request must
  // evaporate from R_J within two membership cycles (footnote 10).
  Cluster c{3};
  c.node(0).join();
  c.node(1).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet{0, 1}));

  // Forge the JOIN using node 2's driver directly (no membership start).
  c.node(2).driver().can_rtr_req(Mid{MsgType::kJoin, 0, 2});
  c.engine().run_until(c.engine().now() + Time::ms(5));
  EXPECT_TRUE(c.node(0).membership().rj().contains(2));

  // Hmm — a real joiner WOULD be admitted; the prune matters when the
  // join is inconsistently known.  Still, after admission-and-silence the
  // node is detected failed (it sends no life-signs) and removed; either
  // way R_J must not retain node 2 indefinitely.
  c.settle(Time::sec(1));
  EXPECT_FALSE(c.node(0).membership().rj().contains(2));
  EXPECT_FALSE(c.node(1).membership().rj().contains(2));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 1})) << c.any_view();
}

TEST(MembershipProtocol, CyclesAreSynchronizedByRhaInit) {
  // Views change (and cycles run) in lockstep: all members install each
  // view at the same simulated instant.
  Cluster c{4};
  std::vector<Time> installed(4, Time::max());
  for (std::size_t i = 0; i < 4; ++i) {
    c.node(i).on_membership_change(
        [&c, &installed, i](NodeSet active, NodeSet) {
          if (active == NodeSet::first_n(4)) {
            installed[i] = c.engine().now();
          }
        });
  }
  c.join_all();
  c.settle(Time::ms(500));
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_NE(installed[i], Time::max());
    EXPECT_EQ(installed[i], installed[0]) << "node " << i;
  }
}

TEST(MembershipProtocol, FailureNotificationPrecedesViewUpdate) {
  // s13-s16: the failure notification is immediate; the view (R_F) is
  // amended only at the next cycle.
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));

  bool notified = false;
  NodeSet active_at_notify;
  c.node(0).on_membership_change([&](NodeSet active, NodeSet failed) {
    if (failed.contains(2)) {
      notified = true;
      active_at_notify = active;
    }
  });
  c.node(2).crash();
  c.settle(Time::ms(20));  // > Th + Ttd, < remaining cycle
  ASSERT_TRUE(notified);
  EXPECT_EQ(active_at_notify, (NodeSet{0, 1}));
  // view() already discounts F_F even before msh-view-proc runs.
  EXPECT_EQ(c.node(0).view(), (NodeSet{0, 1}));
  c.settle(Time::ms(100));
  EXPECT_EQ(c.node(0).membership().rf(), (NodeSet{0, 1}));
  EXPECT_TRUE(c.node(0).membership().ff().empty());
}

TEST(MembershipProtocol, LeaverGetsFinalNotificationAndStops) {
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));

  int notifications_after_leave = 0;
  bool got_final = false;
  c.node(2).on_membership_change([&](NodeSet, NodeSet failed) {
    if (failed.contains(2)) {
      got_final = true;
    } else if (got_final) {
      ++notifications_after_leave;  // must stay zero
    }
  });
  c.node(2).leave();
  c.settle(Time::ms(200));
  EXPECT_TRUE(got_final);
  // Subsequent churn must not reach the departed node.
  c.node(1).leave();
  c.settle(Time::ms(200));
  EXPECT_EQ(notifications_after_leave, 0);
  EXPECT_TRUE(c.node(0).view() == (NodeSet{0}));
}

TEST(MembershipProtocol, JoinWhileMemberIsNoOp) {
  Cluster c{2};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(2)));
  const auto views = c.node(0).membership().views_installed();
  c.node(0).join();  // already a member: must be ignored (s00 guard)
  c.settle(Time::ms(200));
  EXPECT_EQ(c.node(0).membership().views_installed(), views);
}

TEST(MembershipProtocol, LeaveWhileNotMemberIsNoOp) {
  Cluster c{2};
  c.node(0).join();
  c.node(1).leave();  // never joined: must be ignored (s07 guard)
  c.settle(Time::ms(500));
  EXPECT_EQ(c.node(0).view(), (NodeSet{0}));
}

TEST(MembershipProtocol, ConcurrentJoinAndLeave) {
  Cluster c{4};
  for (std::size_t i = 0; i < 3; ++i) c.node(i).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));
  // Node 3 joins in the same cycle node 0 leaves.
  c.node(3).join();
  c.node(0).leave();
  c.settle(Time::ms(300));
  EXPECT_TRUE(c.views_agree(NodeSet{1, 2, 3})) << c.any_view();
}

TEST(MembershipProtocol, CrashDuringJoinCycle) {
  Cluster c{4};
  for (std::size_t i = 0; i < 3; ++i) c.node(i).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));
  c.node(3).join();
  c.node(1).crash();  // crash while the join is being agreed
  c.settle(Time::ms(300));
  EXPECT_TRUE(c.views_agree(NodeSet{0, 2, 3})) << c.any_view();
}

TEST(MembershipProtocol, MassChurnTwentyNodes) {
  // Fig. 10's "massive number of join/leave requests": 20 simultaneous
  // joins into an existing 4-node view, then 10 simultaneous leaves.
  // Ttd sized for 24 nodes (the post-admission life-sign burst of all new
  // members serializes over ~24 * 80 bit-times; see Params doc).
  Params p;
  p.tx_delay_bound = Time::ms(5);
  Cluster c{24, p};
  for (std::size_t i = 0; i < 4; ++i) c.node(i).join();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(4)));

  for (std::size_t i = 4; i < 24; ++i) c.node(i).join();
  c.settle(Time::ms(400));
  EXPECT_TRUE(c.views_agree(NodeSet::first_n(24))) << c.any_view();

  for (std::size_t i = 0; i < 10; ++i) c.node(i).leave();
  c.settle(Time::ms(400));
  NodeSet expect;
  for (can::NodeId i = 10; i < 24; ++i) expect.insert(i);
  EXPECT_TRUE(c.views_agree(expect)) << c.any_view();
}

TEST(MembershipProtocol, SingletonLeaveRetiresServiceLocally) {
  // Regression: the sole member's LEAVE remote frame can never be
  // acknowledged (there is no other controller), so it never loops back
  // and R_L stays empty — under the old code the node cycled and
  // retransmitted the LEAVE forever, unable to depart.  The last member
  // must retire the service locally instead.
  Cluster c{1};
  std::vector<std::pair<NodeSet, NodeSet>> changes;
  c.node(0).on_membership_change([&](NodeSet active, NodeSet departed) {
    changes.emplace_back(active, departed);
  });
  c.node(0).join();
  c.settle(Time::ms(300));  // past Tjoin_wait: bootstrap view {0}
  ASSERT_EQ(c.node(0).view(), NodeSet{0});
  ASSERT_TRUE(c.node(0).is_member());

  c.node(0).leave();
  // The final notification arrives immediately: empty view, self departed.
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.back().first, NodeSet{});
  EXPECT_EQ(changes.back().second, NodeSet{0});
  EXPECT_TRUE(c.node(0).view().empty());
  EXPECT_FALSE(c.node(0).is_member());

  // The service really stopped: the bus stays silent from here on.  (A
  // frame already on the wire at leave time cannot be aborted; give it
  // 1 ms to complete before snapshotting.)
  c.settle(Time::ms(1));
  const std::uint64_t attempts = c.bus().stats().attempts;
  c.settle(Time::ms(500));
  EXPECT_EQ(c.bus().stats().attempts, attempts);

  // And the departure is clean enough to join again afterwards.
  c.node(0).join();
  c.settle(Time::ms(300));
  EXPECT_EQ(c.node(0).view(), NodeSet{0});
}

TEST(MembershipProtocol, LastSurvivorCanLeaveAfterChurnAndFailure) {
  // Same hazard via a different route: node 0 becomes a singleton through
  // a crash (folded in while a quorum could still run FDA) and a peer's
  // voluntary leave.  Its own subsequent leave must complete locally
  // rather than hang on an unacknowledgeable LEAVE frame.
  Cluster c{3};
  c.join_all();
  c.settle(Time::ms(500));
  ASSERT_TRUE(c.views_agree(NodeSet::first_n(3)));

  c.node(1).crash();
  c.settle(Time::ms(200));  // detection + next cycle folds the failure in
  ASSERT_EQ(c.node(0).view(), (NodeSet{0, 2}));

  c.node(2).leave();  // normal handshake: node 0 acknowledges
  c.settle(Time::ms(200));
  ASSERT_EQ(c.node(0).view(), NodeSet{0});

  std::vector<std::pair<NodeSet, NodeSet>> changes;
  c.node(0).on_membership_change([&](NodeSet active, NodeSet departed) {
    changes.emplace_back(active, departed);
  });
  c.node(0).leave();
  c.settle(Time::ms(100));
  ASSERT_FALSE(changes.empty());
  EXPECT_EQ(changes.back().first, NodeSet{});
  EXPECT_EQ(changes.back().second, NodeSet{0});
  EXPECT_FALSE(c.node(0).is_member());
}

}  // namespace
}  // namespace canely::testing
