// canely-lint engine tests (DESIGN.md §10): every rule demonstrated
// firing on a bad fixture and staying silent on its good twin, plus
// suppression grammar, zone scoping, output formats — and a meta-test
// asserting the real tree lints clean.
//
// Fixtures live in tests/lint_fixtures/ and are linted by *content*
// under a pretend zone path; classify() hard-skips that directory in
// tree walks, so the deliberate violations never reach CI.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/lint.hpp"

namespace canely::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(CANELY_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lint a fixture's content under a pretend repo path (which is what
/// decides the zones).
FileResult lint_fixture(const std::string& name,
                        const std::string& pretend_path) {
  return lint_source(pretend_path, read_fixture(name));
}

template <typename Result>
std::vector<std::string> rules_of(const Result& r) {
  std::vector<std::string> out;
  out.reserve(r.findings.size());
  for (const Finding& f : r.findings) out.push_back(f.rule);
  return out;
}

template <typename Result>
std::string dump(const Result& r) {
  std::string out;
  for (const Finding& f : r.findings) {
    out += f.file + ":" + std::to_string(f.line) + ":" + f.rule + ": " +
           f.message + "\n";
  }
  return out;
}

// --- rule table ------------------------------------------------------------

TEST(LintRules, TableListsNineteenRules) {
  EXPECT_EQ(rule_table().size(), 19U);
  EXPECT_TRUE(known_rule("no-wall-clock"));
  EXPECT_TRUE(known_rule("wire-fixed-width"));
  EXPECT_TRUE(known_rule("bad-suppression"));
  // The whole-program rules are real rules: suppressible, listable.
  EXPECT_TRUE(known_rule("hot-path-transitive"));
  EXPECT_TRUE(known_rule("determinism-escape"));
  EXPECT_TRUE(known_rule("wire-layout"));
  EXPECT_TRUE(known_rule("unused-suppression"));
  EXPECT_FALSE(known_rule("no-teleportation"));
}

// --- zone classification ---------------------------------------------------

TEST(LintClassify, DeterminismDirsWireFilesAndSkips) {
  EXPECT_TRUE(classify("src/sim/engine.cpp").flags.determinism);
  EXPECT_TRUE(classify("./src/broadcast/edcan.hpp").flags.determinism);
  EXPECT_TRUE(classify("src/net/medium.cpp").flags.determinism);
  EXPECT_TRUE(classify("src/baselines/swim.cpp").flags.determinism);
  EXPECT_FALSE(classify("src/socketcan/gateway.cpp").flags.determinism);
  EXPECT_FALSE(classify("tools/canely_lint.cpp").flags.determinism);

  EXPECT_TRUE(classify("src/can/types.hpp").flags.wire);
  EXPECT_TRUE(classify("src/canely/mid.hpp").flags.wire);
  EXPECT_TRUE(classify("src/net/types.hpp").flags.wire);
  EXPECT_FALSE(classify("src/can/bus.hpp").flags.wire);

  // The zone tables the docs and this suite are written against.
  EXPECT_EQ(determinism_dirs().size(), 14U);
  EXPECT_EQ(wire_files().size(), 4U);

  EXPECT_TRUE(classify("src/lint/lint.hpp").flags.header);
  EXPECT_FALSE(classify("src/lint/lint.cpp").flags.header);

  EXPECT_TRUE(classify("tests/lint_fixtures/no_rand_bad.cpp").skip);
  EXPECT_FALSE(classify("tests/test_lint.cpp").skip);
}

// --- determinism zone ------------------------------------------------------

TEST(LintDeterminism, NetZoneRejectsEntropyAndWallClocks) {
  // src/net/ is determinism-zoned: a medium seeded from OS entropy and
  // stamping with host time must fire; the seeded-Rng/engine-time
  // counterpart must stay silent; the same bad content outside the zone
  // is not the determinism rules' business.
  const FileResult bad =
      lint_fixture("net_determinism_bad.cpp", "src/net/fixture.cpp");
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"no-rand", "no-wall-clock"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("net_determinism_good.cpp", "src/net/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);

  const FileResult outside =
      lint_fixture("net_determinism_bad.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(outside.findings.empty()) << dump(outside);
}

TEST(LintDeterminism, WallClockFiresAndStaysSilent) {
  const FileResult bad = lint_fixture("no_wall_clock_bad.cpp",
                                      "src/sim/fixture.cpp");
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"no-wall-clock", "no-wall-clock"}))
      << dump(bad);

  const FileResult good = lint_fixture("no_wall_clock_good.cpp",
                                       "src/sim/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintDeterminism, RandFiresAndStaysSilent) {
  const FileResult bad =
      lint_fixture("no_rand_bad.cpp", "src/sim/fixture.cpp");
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"no-rand", "no-rand"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_rand_good.cpp", "src/sim/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintDeterminism, GetenvFiresAndStaysSilent) {
  const FileResult bad =
      lint_fixture("no_getenv_bad.cpp", "src/campaign/fixture.cpp");
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"no-getenv"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_getenv_good.cpp", "src/campaign/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintDeterminism, UnorderedIterFiresOnDeclAndIteration) {
  const FileResult bad =
      lint_fixture("no_unordered_iter_bad.cpp", "src/check/fixture.cpp");
  // Declaration, range-for, and .begin() each get a finding.
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"no-unordered-iter", "no-unordered-iter",
                                      "no-unordered-iter"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_unordered_iter_good.cpp", "src/check/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintDeterminism, PtrKeyedMapFiresAndPointerValuesAllowed) {
  const FileResult bad =
      lint_fixture("no_ptr_keyed_map_bad.cpp", "src/check/fixture.cpp");
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"no-ptr-keyed-map"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_ptr_keyed_map_good.cpp", "src/check/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintDeterminism, SocketcanIsExempt) {
  // The same ambient-randomness content is fine under src/socketcan/ —
  // the gateway is real-time by design.
  const FileResult r =
      lint_fixture("no_rand_bad.cpp", "src/socketcan/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
}

// --- hot-path zone ---------------------------------------------------------

TEST(LintHotPath, AllocFiresInsideTaggedRegionOnly) {
  const FileResult bad =
      lint_fixture("no_hot_alloc_bad.cpp", "tools/fixture.cpp");
  // The make_unique in the tagged function fires; the `new` in the
  // untagged function above it does not.
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"no-hot-alloc"}))
      << dump(bad);
  EXPECT_NE(bad.findings[0].message.find("make_unique"), std::string::npos);

  const FileResult good =
      lint_fixture("no_hot_alloc_good.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintHotPath, StdFunctionFiresAndTemplateParamDoesNot) {
  const FileResult bad =
      lint_fixture("no_hot_function_bad.cpp", "tools/fixture.cpp");
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"no-hot-function"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_hot_function_good.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintHotPath, UnreservedPushFiresAndReserveSilences) {
  const FileResult bad =
      lint_fixture("no_hot_unreserved_push_bad.cpp", "tools/fixture.cpp");
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"no-hot-unreserved-push",
                                      "no-hot-unreserved-push"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("no_hot_unreserved_push_good.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintHotPath, EagerTraceFiresAndLazyLambdaDoesNot) {
  const FileResult bad =
      lint_fixture("no_hot_eager_trace_bad.cpp", "tools/fixture.cpp");
  // The eager cat_str in the tagged function fires; the identical call in
  // the untagged function above it does not.
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"no-hot-eager-trace"}))
      << dump(bad);
  EXPECT_NE(bad.findings[0].message.find("cat_str"), std::string::npos);

  const FileResult good =
      lint_fixture("no_hot_eager_trace_good.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintHotPath, TagBeforeFirstBraceCoversWholeFile) {
  const FileResult r = lint_source("tools/fixture.cpp",
                                   "// canely-lint: hot-path\n"
                                   "int* f() { return new int{0}; }\n"
                                   "int* g() { return new int{1}; }\n");
  EXPECT_EQ(rules_of(r),
            (std::vector<std::string>{"no-hot-alloc", "no-hot-alloc"}))
      << dump(r);
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_EQ(r.findings[1].line, 3);
}

TEST(LintHotPath, RulesRunRegardlessOfPathZone) {
  // Hot-path scope comes from the tag, not the path — even outside every
  // determinism directory.
  const FileResult r = lint_source("examples/fixture.cpp",
                                   "void warm() {}\n"
                                   "// canely-lint: hot-path\n"
                                   "int* f() { return new int{0}; }\n");
  EXPECT_EQ(rules_of(r), (std::vector<std::string>{"no-hot-alloc"}))
      << dump(r);
}

// --- wire zone -------------------------------------------------------------

TEST(LintWire, NonFixedWidthMembersFire) {
  const FileResult bad =
      lint_fixture("wire_fixed_width_bad.hpp", "src/can/types.hpp");
  EXPECT_EQ(rules_of(bad), (std::vector<std::string>{"wire-fixed-width",
                                                     "wire-fixed-width"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("wire_fixed_width_good.hpp", "src/can/types.hpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintWire, RuleOnlyAppliesToWireFiles) {
  // The same struct in a non-wire header only has to satisfy the
  // repo-wide rules.
  const FileResult r =
      lint_fixture("wire_fixed_width_bad.hpp", "src/can/other.hpp");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
}

// --- repo-wide rules -------------------------------------------------------

TEST(LintHeader, UsingNamespaceFiresInHeadersOnly) {
  const FileResult bad = lint_fixture("using_namespace_header_bad.hpp",
                                      "src/util/fixture.hpp");
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"no-using-namespace-header"}))
      << dump(bad);

  const FileResult good = lint_fixture("using_namespace_header_good.hpp",
                                       "src/util/fixture.hpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);

  // The same content under a .cpp path is not a header: no finding.
  const FileResult cpp = lint_fixture("using_namespace_header_bad.hpp",
                                      "src/util/fixture.cpp");
  EXPECT_TRUE(cpp.findings.empty()) << dump(cpp);
}

TEST(LintHeader, IncludeGuardMissingFiresAndIfndefPairCounts) {
  const FileResult bad =
      lint_fixture("include_guard_bad.hpp", "src/util/fixture.hpp");
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"include-guard"}))
      << dump(bad);
  EXPECT_EQ(bad.findings[0].line, 1);

  const FileResult good =
      lint_fixture("include_guard_good.hpp", "src/util/fixture.hpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintTodo, TodoWithoutIssueFiresWithIssueDoesNot) {
  const FileResult bad =
      lint_fixture("todo_issue_bad.cpp", "tools/fixture.cpp");
  EXPECT_EQ(rules_of(bad),
            (std::vector<std::string>{"todo-issue", "todo-issue"}))
      << dump(bad);

  const FileResult good =
      lint_fixture("todo_issue_good.cpp", "tools/fixture.cpp");
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

// --- suppressions ----------------------------------------------------------

TEST(LintSuppress, AllowWithReasonSilencesNextLine) {
  const FileResult r =
      lint_fixture("suppression_ok.cpp", "src/sim/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
  EXPECT_EQ(r.suppressed, 1U);
}

TEST(LintSuppress, AllowOnTheFindingLineWorksToo) {
  const FileResult r = lint_source(
      "src/sim/fixture.cpp",
      "int j() { return rand(); }  "
      "// canely-lint: allow(no-rand) - same-line suppression\n");
  EXPECT_TRUE(r.findings.empty()) << dump(r);
  EXPECT_EQ(r.suppressed, 1U);
}

TEST(LintSuppress, MissingReasonIsAFindingAndDoesNotSuppress) {
  const FileResult r =
      lint_fixture("suppression_missing_reason.cpp", "src/sim/fixture.cpp");
  EXPECT_EQ(rules_of(r),
            (std::vector<std::string>{"bad-suppression", "no-rand"}))
      << dump(r);
  EXPECT_EQ(r.suppressed, 0U);
}

TEST(LintSuppress, UnknownRuleInvalidatesTheWholeDirective) {
  const FileResult r =
      lint_fixture("suppression_unknown_rule.cpp", "src/sim/fixture.cpp");
  EXPECT_EQ(rules_of(r),
            (std::vector<std::string>{"unknown-rule", "no-rand"}))
      << dump(r);
  EXPECT_EQ(r.suppressed, 0U);
}

TEST(LintSuppress, ProseMentioningTheGrammarIsNotADirective) {
  const FileResult r = lint_source(
      "src/sim/fixture.cpp",
      "// See DESIGN.md for canely-lint: allow(no-rand) - grammar docs.\n"
      "int j() { return rand(); }\n");
  // No bad-suppression for the prose, and the rand() is NOT suppressed.
  EXPECT_EQ(rules_of(r), (std::vector<std::string>{"no-rand"})) << dump(r);
}

TEST(LintSuppress, SuppressionFindingsCannotBeSelfSilenced) {
  const FileResult r = lint_source(
      "src/sim/fixture.cpp",
      "// canely-lint: allow(bad-suppression) - pre-silence the next line\n"
      "// canely-lint: allow(no-rand)\n");
  EXPECT_EQ(rules_of(r), (std::vector<std::string>{"bad-suppression"}))
      << dump(r);
}

// --- output formats --------------------------------------------------------

TEST(LintOutput, TextFormatIsFileLineRuleMessage) {
  RunResult r;
  r.findings.push_back(
      Finding{"src/sim/a.cpp", 7, "no-rand", "ambient randomness"});
  r.files = 3;
  r.suppressed = 2;
  EXPECT_EQ(to_text(r),
            "src/sim/a.cpp:7:no-rand: ambient randomness\n"
            "canely_lint: 1 finding (2 suppressed) in 3 files\n");
}

TEST(LintOutput, JsonCarriesSchemaAndEscapes) {
  RunResult r;
  r.findings.push_back(Finding{"src/sim/a.cpp", 7, "no-rand", "say \"no\""});
  r.files = 1;
  EXPECT_EQ(to_json(r),
            "{\"schema\":\"canely-lint-1\",\"files\":1,\"suppressed\":0,"
            "\"findings\":[{\"file\":\"src/sim/a.cpp\",\"line\":7,"
            "\"rule\":\"no-rand\",\"message\":\"say \\\"no\\\"\"}]}\n");
}

TEST(LintOutput, WholeProgramFormatsCarryChainAndGraphStats) {
  RunResult r;
  r.whole_program = true;
  r.findings.push_back(Finding{"src/sim/a.cpp", 7, "hot-path-transitive",
                               "reached from hot region",
                               {"a.cpp:f", "b.cpp:g"}});
  r.files = 2;
  r.functions = 5;
  r.edges = 4;
  r.baselined = 1;
  EXPECT_EQ(to_text(r),
            "src/sim/a.cpp:7:hot-path-transitive: reached from hot region\n"
            "    call chain: a.cpp:f → b.cpp:g\n"
            "canely_lint: 1 finding (0 suppressed, 1 baselined) in 2 files; "
            "call graph: 5 functions, 4 edges\n");
  const std::string j = to_json(r);
  EXPECT_NE(j.find("\"schema\":\"canely-lint-2\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"functions\":5"), std::string::npos) << j;
  EXPECT_NE(j.find("\"chain\":[\"a.cpp:f\",\"b.cpp:g\"]"), std::string::npos)
      << j;
}

// --- whole-program analyses ------------------------------------------------

Options wp_opts() {
  Options o;
  o.whole_program = true;
  return o;
}

std::vector<SourceFile> hot_pair(const std::string& callee_fixture) {
  return {{"src/fix/pump.cpp", read_fixture("wp_hot_caller.cpp")},
          {"src/fix/dispatch.cpp", read_fixture(callee_fixture)}};
}

std::vector<SourceFile> escape_pair(const std::string& caller_fixture) {
  return {{"src/sim/sample.cpp", read_fixture(caller_fixture)},
          {"tools/esc_util.cpp", read_fixture("wp_escape_util.cpp")}};
}

TEST(LintWholeProgram, HotPathPropagatesAcrossFiles) {
  const RunResult bad = lint_sources(hot_pair("wp_hot_callee_bad.cpp"),
                                     wp_opts());
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"hot-path-transitive"}))
      << dump(bad);
  // The finding lands on the callee TU, with a caller → callee witness.
  EXPECT_EQ(bad.findings[0].file, "src/fix/dispatch.cpp");
  ASSERT_EQ(bad.findings[0].chain.size(), 2U);
  EXPECT_EQ(bad.findings[0].chain[0], "pump.cpp:wp::pump");
  EXPECT_EQ(bad.findings[0].chain[1], "dispatch.cpp:wp::dispatch");
  EXPECT_NE(bad.findings[0].message.find("push_back"), std::string::npos);

  const RunResult good = lint_sources(hot_pair("wp_hot_callee_good.cpp"),
                                      wp_opts());
  EXPECT_TRUE(good.findings.empty()) << dump(good);
  EXPECT_GE(good.functions, 2U);
  EXPECT_GE(good.edges, 1U);
}

TEST(LintWholeProgram, DeterminismEscapeConvictsAndAnnotationSilences) {
  const RunResult bad = lint_sources(escape_pair("wp_escape_caller_bad.cpp"),
                                     wp_opts());
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"determinism-escape"}))
      << dump(bad);
  // The finding lands on the determinism-zone caller and names the sink.
  EXPECT_EQ(bad.findings[0].file, "src/sim/sample.cpp");
  EXPECT_NE(bad.findings[0].message.find("rand"), std::string::npos);
  ASSERT_EQ(bad.findings[0].chain.size(), 2U);
  EXPECT_EQ(bad.findings[0].chain[0], "sample.cpp:esc::sample");
  EXPECT_EQ(bad.findings[0].chain[1], "esc_util.cpp:esc::entropy_word");

  const RunResult good = lint_sources(
      escape_pair("wp_escape_caller_good.cpp"), wp_opts());
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintWholeProgram, ObsClockEscapeConvictsAndSeamAnnotationSilences) {
  // src/obs is a determinism zone; the telemetry sampler's wall-clock
  // use is legal only through an annotated seam.  The bad twin models an
  // unannotated sampler calling a clock helper in a non-zone TU.
  const auto pair = [](const std::string& caller_fixture) {
    return std::vector<SourceFile>{
        {"src/obs/sampler.cpp", read_fixture(caller_fixture)},
        {"tools/obs_clock_util.cpp", read_fixture("wp_obs_clock_util.cpp")}};
  };
  const RunResult bad = lint_sources(pair("wp_obs_clock_bad.cpp"), wp_opts());
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"determinism-escape"}))
      << dump(bad);
  EXPECT_EQ(bad.findings[0].file, "src/obs/sampler.cpp");
  EXPECT_NE(bad.findings[0].message.find("steady_clock"), std::string::npos)
      << bad.findings[0].message;
  ASSERT_EQ(bad.findings[0].chain.size(), 2U);
  EXPECT_EQ(bad.findings[0].chain[0], "sampler.cpp:obsclock::sample_stamp");
  EXPECT_EQ(bad.findings[0].chain[1],
            "obs_clock_util.cpp:obsclock::wall_ns");

  const RunResult good =
      lint_sources(pair("wp_obs_clock_good.cpp"), wp_opts());
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintWholeProgram, WireLayoutResolvesAliasesAcrossFiles) {
  // SeqNo / kWords live in a different TU than the struct: only the
  // merged type tables can size Packet.
  const RunResult bad = lint_sources(
      {{"src/can/types.hpp", read_fixture("wp_wire_types.hpp")},
       {"src/canely/mid.hpp", read_fixture("wp_wire_layout_bad.hpp")}},
      wp_opts());
  ASSERT_EQ(rules_of(bad), (std::vector<std::string>{"wire-layout"}))
      << dump(bad);
  EXPECT_EQ(bad.findings[0].file, "src/canely/mid.hpp");
  EXPECT_NE(bad.findings[0].message.find("implicit padding"),
            std::string::npos);
  EXPECT_NE(bad.findings[0].message.find("would save"), std::string::npos);

  const RunResult good = lint_sources(
      {{"src/can/types.hpp", read_fixture("wp_wire_types.hpp")},
       {"src/canely/mid.hpp", read_fixture("wp_wire_layout_good.hpp")}},
      wp_opts());
  EXPECT_TRUE(good.findings.empty()) << dump(good);
}

TEST(LintWholeProgram, UnusedSuppressionFiresOnlyUnderWholeProgram) {
  const std::string content = read_fixture("wp_unused_suppression.cpp");
  const RunResult wp =
      lint_sources({{"src/fix/unused.cpp", content}}, wp_opts());
  ASSERT_EQ(rules_of(wp), (std::vector<std::string>{"unused-suppression"}))
      << dump(wp);

  // The per-file pass tolerates the same stale allow().
  const FileResult pf = lint_source("src/fix/unused.cpp", content);
  EXPECT_TRUE(pf.findings.empty()) << dump(pf);
}

// --- --diff baseline mode --------------------------------------------------

TEST(LintDiff, BaselineHidesOldFindingsAndReportsNewOnes) {
  const std::vector<SourceFile> base =
      escape_pair("wp_escape_caller_bad.cpp");
  const RunResult first = lint_sources(base, wp_opts());
  ASSERT_EQ(rules_of(first),
            (std::vector<std::string>{"determinism-escape"}))
      << dump(first);

  const std::string baseline_path =
      (std::filesystem::temp_directory_path() /
       "canely_lint_test_baseline.json")
          .string();
  {
    std::ofstream out(baseline_path, std::ios::binary);
    out << to_json(first);
  }

  Options diff = wp_opts();
  diff.diff_baseline = baseline_path;
  // Same tree against its own baseline: nothing new.
  const RunResult same = lint_sources(base, diff);
  EXPECT_TRUE(same.findings.empty()) << dump(same);
  EXPECT_EQ(same.baselined, 1U);

  // A freshly introduced violation is the only thing reported.
  std::vector<SourceFile> grown = base;
  for (SourceFile& sf : hot_pair("wp_hot_callee_bad.cpp")) {
    grown.push_back(std::move(sf));
  }
  const RunResult next = lint_sources(grown, diff);
  EXPECT_EQ(rules_of(next),
            (std::vector<std::string>{"hot-path-transitive"}))
      << dump(next);
  EXPECT_EQ(next.baselined, 1U);
  std::filesystem::remove(baseline_path);
}

TEST(LintDiff, MissingBaselineSurfacesAsError) {
  Options diff = wp_opts();
  diff.diff_baseline = "no/such/baseline.json";
  const RunResult r =
      lint_sources(escape_pair("wp_escape_caller_bad.cpp"), diff);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "bad-suppression");
}

// --- index artifact --------------------------------------------------------

TEST(LintIndex, JsonRoundTripIsByteStable) {
  const FileIndex fi =
      build_index("src/fix/pump.cpp", read_fixture("wp_hot_caller.cpp"));
  // pump is defined (dispatch is only declared) and sits in the tagged
  // hot region with one recorded call site.
  ASSERT_EQ(fi.functions.size(), 1U);
  EXPECT_EQ(fi.functions[0].name, "wp::pump");
  EXPECT_TRUE(fi.functions[0].hot);
  ASSERT_EQ(fi.functions[0].calls.size(), 1U);
  EXPECT_EQ(fi.functions[0].calls[0].name, "dispatch");

  const std::string j1 = index_to_json(fi);
  EXPECT_NE(j1.find("canely-lint-index-1"), std::string::npos);
  FileIndex back;
  std::string err;
  ASSERT_TRUE(index_from_json(j1, back, err)) << err;
  EXPECT_EQ(index_to_json(back), j1);
}

// --- tree walking ----------------------------------------------------------

TEST(LintPaths, MissingPathIsAnError) {
  RunResult r;
  std::string err;
  EXPECT_FALSE(lint_paths(CANELY_SOURCE_DIR, {"no/such/dir"}, r, err));
  EXPECT_NE(err.find("no such file"), std::string::npos) << err;
}

// Meta-test: the real tree must lint clean — every rule silent or
// explicitly suppressed with a reason.  This is the same invocation
// `tools/ci.sh lint` makes.
TEST(LintMeta, RepositoryLintsClean) {
  RunResult r;
  std::string err;
  const bool ok = lint_paths(CANELY_SOURCE_DIR,
                             {"src", "tests", "bench", "examples"}, r, err);
  ASSERT_TRUE(ok) << err;
  EXPECT_GT(r.files, 100U);  // sanity: the walk actually found the tree
  EXPECT_TRUE(r.findings.empty()) << to_text(r);
}

// And under the whole-program pass: every transitive conviction either
// fixed or suppressed/annotated with a reason, no stale suppressions.
TEST(LintMeta, RepositoryLintsCleanWholeProgram) {
  RunResult r;
  std::string err;
  const bool ok =
      lint_paths(CANELY_SOURCE_DIR, {"src", "tests", "bench", "examples"},
                 wp_opts(), r, err);
  ASSERT_TRUE(ok) << err;
  EXPECT_GT(r.files, 100U);
  // The graph must actually cover the tree: every function definition is
  // a node (the determinism zone alone defines several hundred).
  EXPECT_GT(r.functions, 500U);
  EXPECT_GT(r.edges, 1000U);
  EXPECT_TRUE(r.findings.empty()) << to_text(r);
}

// Byte-stability contract: the report is identical run-to-run and at any
// --threads count (sorted file order fixes node ids and finding order).
TEST(LintMeta, WholeProgramReportByteStableAcrossThreads) {
  Options one = wp_opts();
  Options four = wp_opts();
  four.threads = 4;
  RunResult r1;
  RunResult r4;
  std::string e1;
  std::string e4;
  ASSERT_TRUE(lint_paths(CANELY_SOURCE_DIR, {"src"}, one, r1, e1)) << e1;
  ASSERT_TRUE(lint_paths(CANELY_SOURCE_DIR, {"src"}, four, r4, e4)) << e4;
  EXPECT_EQ(to_json(r1), to_json(r4));
  EXPECT_EQ(to_text(r1), to_text(r4));
}

}  // namespace
}  // namespace canely::lint
