// Fault matrix for the reliable broadcast suite: each protocol's control
// frames attacked individually — data, confirm, accept — with and without
// sender crashes.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "broadcast/edcan.hpp"
#include "broadcast/relcan.hpp"
#include "broadcast/totcan.hpp"
#include "testing.hpp"

namespace canely::testing {
namespace {

using can::NodeSet;
using sim::Time;

bool is_type(const can::TxContext& c, MsgType t) {
  const auto mid = Mid::decode(c.frame);
  return mid.has_value() && mid->type == t;
}

// ------------------------------------------------------------------ EDCAN --

class EdcanFaultMatrix : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EdcanFaultMatrix, AnySingleVictimPatternOnDataOrEcho) {
  // Parameter encodes: bits 0-1 = which EDCAN attempt is hit (0 =
  // original, 1 = echo), bits 2-4 = victim subset of nodes {1,2,3}.
  const int which = static_cast<int>(GetParam() & 0x3) % 2;
  const std::uint32_t vmask = (GetParam() >> 2) & 0x7;

  Cluster c{4};
  std::map<std::size_t, int> delivered;
  std::vector<std::unique_ptr<broadcast::EdcanBroadcast>> ep;
  for (std::size_t i = 0; i < 4; ++i) {
    ep.push_back(std::make_unique<broadcast::EdcanBroadcast>(
        c.node(i).driver()));
    auto& cnt = delivered[i];
    ep.back()->set_deliver_handler(
        [&cnt](can::NodeId, std::uint8_t, std::span<const std::uint8_t>) {
          ++cnt;
        });
  }
  NodeSet victims;
  for (can::NodeId n : {1, 2, 3}) {
    if (vmask & (1u << (n - 1))) victims.insert(n);
  }
  int seen = 0;
  can::ScriptedFaults faults;
  faults.add(
      [&seen, which](const can::TxContext& ctx) {
        return is_type(ctx, MsgType::kEdcan) && seen++ == which;
      },
      can::Verdict::inconsistent(victims));
  c.bus().set_fault_injector(&faults);

  ep[0]->broadcast(std::array<std::uint8_t, 1>{42});
  c.settle(Time::ms(10));
  // CAN-level retransmission + eager echo: everyone delivers exactly once
  // as long as the sender stays alive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(delivered[i], 1) << "node " << i << " which=" << which
                               << " victims=" << victims;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, EdcanFaultMatrix,
                         ::testing::Range(0u, 32u, 1u));

// ----------------------------------------------------------------- RELCAN --

TEST(RelcanFaults, ConfirmFrameOmissionTriggersFallbackNotLoss) {
  Cluster c{4};
  std::map<std::size_t, int> delivered;
  std::vector<std::unique_ptr<broadcast::RelcanBroadcast>> ep;
  for (std::size_t i = 0; i < 4; ++i) {
    ep.push_back(std::make_unique<broadcast::RelcanBroadcast>(
        c.node(i).driver(), c.node(i).timers()));
    auto& cnt = delivered[i];
    ep.back()->set_deliver_handler(
        [&cnt](can::NodeId, std::uint8_t, std::span<const std::uint8_t>) {
          ++cnt;
        });
  }
  // The CONFIRM remote frame is inconsistently omitted at nodes 2,3 and
  // its sender crashes right after (so no CAN retransmission of it).
  can::ScriptedFaults faults;
  faults.inconsistent_once(
      [](const can::TxContext& ctx) {
        return is_type(ctx, MsgType::kRelcanConfirm);
      },
      NodeSet{2, 3});
  c.bus().set_fault_injector(&faults);
  c.bus().set_observer([&c](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == MsgType::kRelcanConfirm) {
      c.bus().set_observer({});
      c.engine().schedule_after(Time::ns(1), [&c] { c.node(0).crash(); });
    }
  });

  ep[0]->broadcast(std::array<std::uint8_t, 1>{5});
  c.settle(Time::ms(20));
  // Data reached everyone before the confirm games: all deliver once.
  // Victims of the confirm omission merely run the (harmless) fallback.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(delivered[i], 1) << "node " << i;
  }
  EXPECT_GE(ep[2]->fallbacks() + ep[3]->fallbacks(), 1u);
}

// ----------------------------------------------------------------- TOTCAN --

TEST(TotcanFaults, AcceptOmissionStillDeliversAllOrNone) {
  Cluster c{4};
  std::map<std::size_t, std::vector<std::uint8_t>> order;
  std::vector<std::unique_ptr<broadcast::TotcanBroadcast>> ep;
  for (std::size_t i = 0; i < 4; ++i) {
    ep.push_back(std::make_unique<broadcast::TotcanBroadcast>(
        c.node(i).driver(), c.node(i).timers()));
    auto& o = order[i];
    ep.back()->set_deliver_handler(
        [&o](can::NodeId, std::uint8_t seq, std::span<const std::uint8_t>) {
          o.push_back(seq);
        });
  }
  // The ACCEPT is inconsistently omitted at node 3; the eager accept-echo
  // must still get it there (sender stays alive here).
  can::ScriptedFaults faults;
  faults.inconsistent_once(
      [](const can::TxContext& ctx) {
        return is_type(ctx, MsgType::kTotcanAccept);
      },
      NodeSet{3});
  c.bus().set_fault_injector(&faults);

  ep[0]->broadcast(std::array<std::uint8_t, 1>{1});
  ep[1]->broadcast(std::array<std::uint8_t, 1>{2});
  c.settle(Time::ms(20));
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(order[i].size(), 2u) << "node " << i;
    EXPECT_EQ(order[i], order[0]) << "node " << i;  // same total order
  }
}

TEST(TotcanFaults, InterleavedCrashesPreserveOrderAmongDelivered) {
  Cluster c{5};
  std::map<std::size_t, std::vector<std::pair<can::NodeId, std::uint8_t>>>
      order;
  std::vector<std::unique_ptr<broadcast::TotcanBroadcast>> ep;
  for (std::size_t i = 0; i < 5; ++i) {
    ep.push_back(std::make_unique<broadcast::TotcanBroadcast>(
        c.node(i).driver(), c.node(i).timers()));
    auto& o = order[i];
    ep.back()->set_deliver_handler(
        [&o](can::NodeId from, std::uint8_t seq,
             std::span<const std::uint8_t>) { o.push_back({from, seq}); });
  }
  // Node 2's broadcast dies with it before the ACCEPT; 0's and 1's
  // complete.  Survivors must agree on the same delivered sequence, with
  // node 2's message absent everywhere.
  c.bus().set_observer([&c](const can::TxRecord& r) {
    const auto mid = Mid::decode(r.frame);
    if (mid.has_value() && mid->type == MsgType::kTotcanData &&
        mid->node == 2) {
      c.bus().set_observer({});
      c.engine().schedule_after(Time::ns(1), [&c] { c.node(2).crash(); });
    }
  });
  ep[0]->broadcast(std::array<std::uint8_t, 1>{1});
  ep[2]->broadcast(std::array<std::uint8_t, 1>{2});
  ep[1]->broadcast(std::array<std::uint8_t, 1>{3});
  c.settle(Time::ms(30));
  for (std::size_t i : {0u, 1u, 3u, 4u}) {
    ASSERT_EQ(order[i].size(), 2u) << "node " << i;
    EXPECT_EQ(order[i], order[0]) << "node " << i;
    for (const auto& [from, seq] : order[i]) EXPECT_NE(from, 2);
  }
}

}  // namespace
}  // namespace canely::testing
