#include "obs/metrics.hpp"

namespace canely::obs {

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

campaign::Json MetricsRegistry::snapshot_json(bool per_node) const {
  campaign::Json counters = campaign::Json::object();
  for (const auto& [name, c] : counters_) {
    if (!per_node) {
      counters.set(name, campaign::Json::integer(
                             static_cast<std::int64_t>(c.total())));
      continue;
    }
    campaign::Json entry = campaign::Json::object();
    entry.set("total", campaign::Json::integer(
                           static_cast<std::int64_t>(c.total())));
    campaign::Json nodes = campaign::Json::object();
    for (std::size_t n = 0; n < can::kMaxNodes; ++n) {
      const std::uint64_t v = c.node(static_cast<std::uint8_t>(n));
      if (v != 0) {
        nodes.set("node" + std::to_string(n),
                  campaign::Json::integer(static_cast<std::int64_t>(v)));
      }
    }
    entry.set("per_node", std::move(nodes));
    counters.set(name, std::move(entry));
  }

  campaign::Json gauges = campaign::Json::object();
  for (const auto& [name, g] : gauges_) {
    gauges.set(name, campaign::Json::number(g.value()));
  }

  campaign::Json histograms = campaign::Json::object();
  for (const auto& [name, h] : histograms_) {
    campaign::Json entry = campaign::Json::object();
    entry.set("count", campaign::Json::integer(
                           static_cast<std::int64_t>(h.count())));
    entry.set("sum", campaign::Json::integer(h.sum()));
    entry.set("min", campaign::Json::integer(h.count() ? h.min() : 0));
    entry.set("max", campaign::Json::integer(h.count() ? h.max() : 0));
    campaign::Json le = campaign::Json::array();
    for (const std::int64_t b : h.bounds()) {
      le.push(campaign::Json::integer(b));
    }
    entry.set("le", std::move(le));
    campaign::Json buckets = campaign::Json::array();
    for (const std::uint64_t b : h.buckets()) {
      buckets.push(campaign::Json::integer(static_cast<std::int64_t>(b)));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }

  campaign::Json root = campaign::Json::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

}  // namespace canely::obs
