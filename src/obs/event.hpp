#pragma once
// Typed observability events (DESIGN.md §11, docs/OBSERVABILITY.md).
//
// One fixed-size POD record per protocol-visible occurrence, written into
// a preallocated ring (obs/ring.hpp) on the simulator's hot paths — so the
// record must be trivially copyable, self-contained (no pointers, no
// strings) and cheap to construct in place.  The payload union carries the
// few protocol-specific fields a timeline renderer needs; everything else
// (rates, totals, distributions) lives in the metrics registry instead.

#include <cstdint>
#include <type_traits>

#include "sim/time.hpp"

namespace canely::obs {

/// What happened.  The enumerators group by emitting layer; the Perfetto
/// writer (obs/perfetto.hpp) maps each group onto its own track.
enum class EventKind : std::uint8_t {
  // can::Bus — the wire.  One record per completed transmission attempt;
  // `when` is the attempt's start and the payload carries its duration, so
  // a single emit yields a full timeline span (Perfetto 'X' event) at half
  // the hot-path cost of a start/end pair.
  kFrameTx,        ///< transmission attempt: when=start, payload has dur
  // can::Controller — fault confinement.
  kBusOff,         ///< TEC reached 256; the controller silenced itself
  // canely::FailureDetector (§6.3).
  kFdTimerArm,     ///< surveillance of `peer` started (fd-can.req START)
  kFdTimerExpire,  ///< surveillance timer for `peer` ran out
  kElsSent,        ///< explicit life-sign remote frame requested
  kFdSuspect,      ///< remote silent beyond Th+Ttd; FDA invoked for `peer`
  // canely::FdaProtocol (§6.2, Fig. 6).
  kFdaRoundStart,  ///< fda-can.req issued for failed node `peer`
  kFdaNty,         ///< fda-can.nty delivered for failed node `peer`
  // canely::RhaProtocol (§6.2, Fig. 7).
  kRhaRoundStart,  ///< an RHA execution started at this node
  kRhaRoundEnd,    ///< the execution delivered its agreed vector
  // canely::MembershipService (§6.4).
  kViewInstall,    ///< a new view R_F was installed (payload: bitmap)
  // canely::Node lifecycle.
  kNodeJoin,       ///< msh-can.req(JOIN) issued
  kNodeLeave,      ///< msh-can.req(LEAVE) issued
  kNodeCrash,      ///< fail-silent crash of the whole node
};

[[nodiscard]] constexpr const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kFrameTx: return "frame_tx";
    case EventKind::kBusOff: return "bus_off";
    case EventKind::kFdTimerArm: return "fd_timer_arm";
    case EventKind::kFdTimerExpire: return "fd_timer_expire";
    case EventKind::kElsSent: return "els_sent";
    case EventKind::kFdSuspect: return "fd_suspect";
    case EventKind::kFdaRoundStart: return "fda_round_start";
    case EventKind::kFdaNty: return "fda_nty";
    case EventKind::kRhaRoundStart: return "rha_round_start";
    case EventKind::kRhaRoundEnd: return "rha_round_end";
    case EventKind::kViewInstall: return "view_install";
    case EventKind::kNodeJoin: return "node_join";
    case EventKind::kNodeLeave: return "node_leave";
    case EventKind::kNodeCrash: return "node_crash";
  }
  return "?";
}

/// One observability record: 32 bytes, trivially copyable, no heap.
struct Event {
  sim::Time when{};        ///< sim time of the occurrence (never wall clock)
  EventKind kind{};
  std::uint8_t node{};     ///< emitting node (bus events: the transmitter)

  union Payload {
    /// kFrameTx.
    struct Frame {
      std::uint32_t id;       ///< CAN identifier (29-bit extended)
      std::uint32_t bits;     ///< bus time consumed, in bit-times
      std::uint32_t dur_ns;   ///< wire occupancy (frame end - `when`)
      std::uint8_t outcome;   ///< can::TxOutcome
      std::uint8_t attempt;   ///< retransmission ordinal, 0-based
      std::uint8_t remote;    ///< 1 for remote frames
      /// 1 when every co-transmitter died mid-frame (§6.1): `node` is
      /// the historical transmitter, but the error slot belongs to the
      /// bus — no live node completed it.
      std::uint8_t orphaned;
    } frame;
    /// kFdTimerArm/Expire, kFdSuspect, kFdaRoundStart, kFdaNty.
    struct Peer {
      std::uint8_t peer;      ///< the watched / failed node
    } peer;
    /// kViewInstall: the new R_F as a NodeSet bitmap.
    struct View {
      std::uint64_t members;
    } view;
    std::uint64_t raw;
  } u{};
};

static_assert(std::is_trivially_copyable_v<Event>);
static_assert(sizeof(Event) <= 32, "obs::Event must stay ring-friendly");

}  // namespace canely::obs
