#include "obs/telemetry.hpp"

#include <chrono>
#include <utility>

#include "campaign/json.hpp"

namespace canely::obs {
namespace {

/// The one place in src/obs that touches a real clock.  Everything else
/// reaches wall time through the injected WallClock seam, so tests can
/// fake it and the determinism zone stays mockable end to end.
class SteadyTelemetryClock final : public socketcan::WallClock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() override {
    // canely-lint: allow(no-wall-clock) — telemetry sampler wall time behind the WallClock seam; never feeds a simulation
    return std::chrono::steady_clock::now().time_since_epoch();
  }
  void sleep_for(std::chrono::microseconds d) override {
    std::this_thread::sleep_for(d);
  }
};

}  // namespace

socketcan::WallClock& default_wall_clock() {
  static SteadyTelemetryClock clock;
  return clock;
}

Telemetry::Telemetry(TelemetryConfig cfg)
    : cfg_{std::move(cfg)},
      clock_{cfg_.clock != nullptr ? cfg_.clock : &default_wall_clock()} {
  // canely-lint: nondeterministic-ok(campaign telemetry timestamps wall progress through the injected WallClock seam)
  start_ns_ = static_cast<std::uint64_t>(clock_->now().count());
  if (cfg_.sample_period_ms != 0 && !cfg_.path.empty()) {
    // canely-lint: nondeterministic-ok(sampling thread is observational only; results stay byte-identical with it on or off)
    sampler_ = std::thread{[this] { sampler_loop(); }};
  }
}

Telemetry::~Telemetry() {
  const bool had_sampler = sampler_.joinable();
  if (had_sampler) {
    {
      const std::lock_guard<std::mutex> lock{stop_mu_};
      stop_ = true;
    }
    stop_cv_.notify_all();
    sampler_.join();
    // Final snapshot so even campaigns shorter than one sample period
    // leave a complete line.  Manual mode (period 0) writes only when
    // the caller asks, keeping test snapshot counts exact.
    (void)sample_now();
  }
  if (sink_ != nullptr) std::fclose(sink_);
}

std::uint64_t Telemetry::now_ns() {
  // canely-lint: nondeterministic-ok(run-duration brackets come from the injected WallClock seam, observational only)
  return static_cast<std::uint64_t>(clock_->now().count());
}

void Telemetry::on_run_complete(std::uint64_t dur_ns) {
  add(TelemetryCounter::kRuns);
  stage_us(TelemetryStage::kJudge, dur_ns / 1000);
}

void Telemetry::stage_us(TelemetryStage s, std::uint64_t us) {
  Slot& sl = slot();
  const std::size_t si = static_cast<std::size_t>(s);
  std::size_t b = 0;
  while (b < kStageBucketBoundsUs.size() && us > kStageBucketBoundsUs[b]) {
    ++b;
  }
  sl.stage_buckets[si][b].fetch_add(1, std::memory_order_relaxed);
  sl.stage_count[si].fetch_add(1, std::memory_order_relaxed);
  sl.stage_sum_us[si].fetch_add(us, std::memory_order_relaxed);
}

Telemetry::Slot& Telemetry::slot() {
  // Each thread claims a slot on first touch of this instance and keeps
  // it; re-registration only happens when the thread moves to another
  // Telemetry (tests constructing several).  Claim wrap-around shares a
  // slot between threads, which merely merges their atomic adds.
  static thread_local Telemetry* owner = nullptr;
  static thread_local std::uint32_t index = 0;
  if (owner != this) {
    owner = this;
    index = next_slot_.fetch_add(1, std::memory_order_relaxed) % kMaxSlots;
  }
  return slots_[index];
}

std::uint64_t Telemetry::counter(TelemetryCounter c) const {
  const std::size_t ci = static_cast<std::size_t>(c);
  std::uint64_t total = 0;
  for (const Slot& sl : slots_) {
    total += sl.counters[ci].load(std::memory_order_relaxed);
  }
  return total;
}

std::string Telemetry::snapshot_line() {
  campaign::Json root = campaign::Json::object();
  root.set("schema", campaign::Json::string("canely-telemetry-1"));
  root.set("seq",
           campaign::Json::integer(static_cast<std::int64_t>(seq_ + 1)));
  // canely-lint: nondeterministic-ok(snapshot timestamps wall progress through the injected WallClock seam)
  const std::uint64_t now = static_cast<std::uint64_t>(clock_->now().count());
  root.set("t_ms", campaign::Json::integer(static_cast<std::int64_t>(
                       (now - start_ns_) / 1'000'000)));
  root.set("label", campaign::Json::string(cfg_.label));
  root.set("shard", campaign::Json::integer(
                        static_cast<std::int64_t>(cfg_.shard_index)));
  root.set("shards", campaign::Json::integer(
                         static_cast<std::int64_t>(cfg_.shard_count)));
  root.set("total_units",
           campaign::Json::integer(static_cast<std::int64_t>(
               total_units_.load(std::memory_order_relaxed))));
  if (!cfg_.frontier_path.empty()) {
    root.set("frontier", campaign::Json::string(cfg_.frontier_path));
  }

  campaign::Json counters = campaign::Json::object();
  for (std::size_t c = 0; c < kTelemetryCounters; ++c) {
    counters.set(to_string(static_cast<TelemetryCounter>(c)),
                 campaign::Json::integer(static_cast<std::int64_t>(
                     counter(static_cast<TelemetryCounter>(c)))));
  }
  root.set("counters", std::move(counters));

  campaign::Json stages = campaign::Json::object();
  for (std::size_t s = 0; s < kTelemetryStages; ++s) {
    std::uint64_t count = 0, sum = 0;
    std::array<std::uint64_t, kStageBucketBoundsUs.size() + 1> buckets{};
    for (const Slot& sl : slots_) {
      count += sl.stage_count[s].load(std::memory_order_relaxed);
      sum += sl.stage_sum_us[s].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        buckets[b] += sl.stage_buckets[s][b].load(std::memory_order_relaxed);
      }
    }
    campaign::Json stage = campaign::Json::object();
    stage.set("count",
              campaign::Json::integer(static_cast<std::int64_t>(count)));
    stage.set("sum_us",
              campaign::Json::integer(static_cast<std::int64_t>(sum)));
    campaign::Json le = campaign::Json::array();
    for (const std::uint64_t bound : kStageBucketBoundsUs) {
      le.push(campaign::Json::integer(static_cast<std::int64_t>(bound)));
    }
    stage.set("le_us", std::move(le));
    campaign::Json counts = campaign::Json::array();
    for (const std::uint64_t b : buckets) {
      counts.push(campaign::Json::integer(static_cast<std::int64_t>(b)));
    }
    stage.set("buckets", std::move(counts));
    stages.set(to_string(static_cast<TelemetryStage>(s)), std::move(stage));
  }
  root.set("stages", std::move(stages));
  root.set("dropped_lines", campaign::Json::integer(
                                static_cast<std::int64_t>(dropped_lines_)));
  return root.dump() + "\n";
}

bool Telemetry::sample_now() {
  if (cfg_.path.empty()) return false;
  const std::lock_guard<std::mutex> lock{writer_mu_};
  if (sink_ == nullptr) {
    sink_ = std::fopen(cfg_.path.c_str(), "ab");
    if (sink_ == nullptr) {
      ++dropped_lines_;
      return false;
    }
  }
  const std::string line = snapshot_line();
  // One buffered write + flush per line: with O_APPEND semantics a
  // concurrent tail sees whole lines or nothing.
  if (std::fwrite(line.data(), 1, line.size(), sink_) != line.size() ||
      std::fflush(sink_) != 0) {
    ++dropped_lines_;
    return false;
  }
  ++seq_;
  return true;
}

void Telemetry::sampler_loop() {
  std::unique_lock<std::mutex> lock{stop_mu_};
  for (;;) {
    // canely-lint: nondeterministic-ok(sampler pacing is wall-time by design; it only reads counters)
    stop_cv_.wait_for(lock, std::chrono::milliseconds{cfg_.sample_period_ms},
                      [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    (void)sample_now();
    lock.lock();
  }
}

}  // namespace canely::obs
