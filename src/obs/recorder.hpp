#pragma once
// obs::Recorder — the handle instrumented layers share (DESIGN.md §11).
//
// One Recorder per simulated run, owned by whoever builds the system
// (scenario runner, checker harness, bench cell) and handed down as a
// non-owning pointer like the tracer and the fault injector.  A null
// recorder means observability is off and instrumentation costs one
// branch.  The emit path is a POD store into a preallocated ring — no
// std::function, no allocation (canely-lint's hot-path rules apply to the
// instrumented call sites).

#include <cstdint>

#include "obs/event.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "sim/time.hpp"

namespace canely::obs {

class Recorder {
 public:
  explicit Recorder(std::size_t ring_capacity = EventRing::kDefaultCapacity)
      : ring_{ring_capacity} {}
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void emit(const Event& e) { ring_.push(e); }

  [[nodiscard]] EventRing& ring() { return ring_; }
  [[nodiscard]] const EventRing& ring() const { return ring_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

 private:
  EventRing ring_;
  MetricsRegistry metrics_;
};

/// End-of-run gauges derived from state the obs layer must not reach into
/// live (sim never depends on obs): the caller reads engine/bus totals and
/// hands plain numbers over at snapshot time.
inline void set_run_gauges(Recorder& rec, std::uint64_t engine_dispatched,
                           std::uint64_t bus_bits_total,
                           std::int64_t bit_rate_bps, sim::Time elapsed) {
  rec.metrics().gauge("engine.events_dispatched")
      .set(static_cast<double>(engine_dispatched));
  if (elapsed > sim::Time::zero() && bit_rate_bps > 0) {
    const double busy_ns = static_cast<double>(bus_bits_total) *
                           (1e9 / static_cast<double>(bit_rate_bps));
    rec.metrics().gauge("bus.utilization")
        .set(busy_ns / static_cast<double>(elapsed.to_ns()));
  }
}

}  // namespace canely::obs
