#pragma once
// Bounded event ring (DESIGN.md §11).
//
// The structured observability path must be allocation-free after setup:
// the ring preallocates its full capacity at construction and `push` is a
// store plus two index updates — no branches that can allocate, no
// callbacks.  When full it overwrites the oldest record (drop-oldest) and
// counts the loss, so a long soak degrades to "most recent window" instead
// of growing without bound or silently lying about coverage.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.hpp"

namespace canely::obs {

class EventRing {
 public:
  /// 1 MiB of records by default — generous for a scenario run, bounded
  /// for a soak.  tools/ci.sh `obs` fails a reference scenario whose
  /// default-sized ring drops anything.
  static constexpr std::size_t kDefaultCapacity = 1u << 15;

  explicit EventRing(std::size_t capacity = kDefaultCapacity)
      : storage_(capacity) {}

  /// Record an event; O(1), allocation-free.  Capacity 0 drops everything.
  /// The not-yet-full case is the common one (a run that fits its ring)
  /// and takes a single predictable branch.
  void push(const Event& e) {
    const std::size_t cap = storage_.size();
    if (size_ != cap) {
      storage_[next_] = e;
      next_ = next_ + 1 == cap ? 0 : next_ + 1;
      ++size_;
      return;
    }
    ++dropped_;
    if (cap == 0) return;
    storage_[next_] = e;
    next_ = next_ + 1 == cap ? 0 : next_ + 1;
  }

  /// Retained records, oldest first; `i` in [0, size()).
  [[nodiscard]] const Event& at(std::size_t i) const {
    std::size_t idx = start() + i;
    if (idx >= storage_.size()) idx -= storage_.size();
    return storage_[idx];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return storage_.size(); }
  /// Records overwritten (or refused, capacity 0) since construction.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    next_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  [[nodiscard]] std::size_t start() const {
    return size_ < storage_.size() ? 0 : next_;
  }

  std::vector<Event> storage_;
  std::size_t next_{0};
  std::size_t size_{0};
  std::uint64_t dropped_{0};
};

}  // namespace canely::obs
