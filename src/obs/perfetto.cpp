#include "obs/perfetto.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <tuple>

#include "campaign/json.hpp"
#include "can/bus.hpp"

namespace canely::obs {
namespace {

constexpr int kBusPid = 1;
constexpr int kWireTid = 1;
constexpr int kNodePidBase = 10;
constexpr int kFdTid = 1;
constexpr int kFdaTid = 2;
constexpr int kRhaTid = 3;
constexpr int kMshTid = 4;
constexpr int kLifeTid = 5;

[[nodiscard]] int node_pid(std::uint8_t node) { return kNodePidBase + node; }

[[nodiscard]] std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08X", v);
  return std::string{buf};
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llX",
                static_cast<unsigned long long>(v));
  return std::string{buf};
}

[[nodiscard]] const char* outcome_name(std::uint8_t o) {
  switch (static_cast<can::TxOutcome>(o)) {
    case can::TxOutcome::kOk: return "ok";
    case can::TxOutcome::kError: return "error";
    case can::TxOutcome::kInconsistent: return "inconsistent";
    case can::TxOutcome::kAckError: return "ack-error";
    case can::TxOutcome::kCollision: return "collision";
  }
  return "?";
}

/// Span pairing state for pass 1: which ring index opened the span.
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

std::vector<TraceEvent> build_trace_events(const EventRing& ring) {
  const std::size_t n = ring.size();

  // Pass 1: resolve each record's phase so pairs are guaranteed balanced.
  // 'B'/'b' halves whose close never made it into the ring demote to 'i'.
  // (kFrameTx is self-contained — an 'X' complete event — and needs no
  // pairing.)
  std::vector<char> phase(n, 'i');
  std::map<std::uint16_t, std::size_t> open_fda;  // (node<<8)|peer -> index
  std::map<std::uint8_t, std::size_t> open_rha;   // node -> index
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = ring.at(i);
    switch (e.kind) {
      case EventKind::kFrameTx:
        phase[i] = 'X';
        break;
      case EventKind::kFdaRoundStart: {
        const auto key = static_cast<std::uint16_t>((e.node << 8) |
                                                    e.u.peer.peer);
        if (const auto it = open_fda.find(key); it != open_fda.end()) {
          phase[it->second] = 'i';
        }
        open_fda[key] = i;
        phase[i] = 'b';
        break;
      }
      case EventKind::kFdaNty: {
        const auto key = static_cast<std::uint16_t>((e.node << 8) |
                                                    e.u.peer.peer);
        if (const auto it = open_fda.find(key); it != open_fda.end()) {
          phase[i] = 'e';
          open_fda.erase(it);
        }
        break;
      }
      case EventKind::kRhaRoundStart:
        if (const auto it = open_rha.find(e.node); it != open_rha.end()) {
          phase[it->second] = 'i';
        }
        open_rha[e.node] = i;
        phase[i] = 'B';
        break;
      case EventKind::kRhaRoundEnd:
        if (const auto it = open_rha.find(e.node); it != open_rha.end()) {
          phase[i] = 'E';
          open_rha.erase(it);
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [key, idx] : open_fda) phase[idx] = 'i';
  for (const auto& [nd, idx] : open_rha) phase[idx] = 'i';

  // Pass 2: emit in ring order (time order), collecting the tracks used.
  std::vector<TraceEvent> out;
  out.reserve(n + 16);
  std::set<std::pair<int, int>> tracks;
  const auto track = [&](int pid, int tid) {
    tracks.insert({pid, tid});
    return std::pair<int, int>{pid, tid};
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = ring.at(i);
    TraceEvent t;
    t.ts_us = e.when.to_us_f();
    t.ph = phase[i];
    switch (e.kind) {
      case EventKind::kFrameTx: {
        std::tie(t.pid, t.tid) = track(kBusPid, kWireTid);
        t.cat = "bus";
        t.name = (e.u.frame.remote != 0 ? "rtr " : "frame ") +
                 hex32(e.u.frame.id);
        t.dur_us = static_cast<double>(e.u.frame.dur_ns) / 1000.0;
        t.args.emplace_back("outcome", outcome_name(e.u.frame.outcome));
        t.args.emplace_back("bits", std::to_string(e.u.frame.bits));
        t.args.emplace_back("attempt", std::to_string(e.u.frame.attempt));
        t.args.emplace_back("tx_node",
                            e.u.frame.orphaned != 0
                                ? std::to_string(e.node) + " (died mid-frame)"
                                : std::to_string(e.node));
        break;
      }
      case EventKind::kFdaRoundStart:
      case EventKind::kFdaNty: {
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kFdaTid);
        t.cat = "fda";
        t.name = "fda failed=" + std::to_string(e.u.peer.peer);
        if (t.ph == 'b' || t.ph == 'e') {
          t.has_id = true;
          t.id = static_cast<std::uint64_t>((e.node << 8) | e.u.peer.peer);
        } else {
          t.name = std::string{to_string(e.kind)} + " failed=" +
                   std::to_string(e.u.peer.peer);
        }
        break;
      }
      case EventKind::kRhaRoundStart:
      case EventKind::kRhaRoundEnd:
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kRhaTid);
        t.cat = "rha";
        t.name = "rha execution";
        if (t.ph == 'i') t.name = to_string(e.kind);
        break;
      case EventKind::kFdTimerArm:
      case EventKind::kFdTimerExpire:
      case EventKind::kFdSuspect:
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kFdTid);
        t.cat = "fd";
        t.name = std::string{to_string(e.kind)} + " peer=" +
                 std::to_string(e.u.peer.peer);
        break;
      case EventKind::kElsSent:
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kFdTid);
        t.cat = "fd";
        t.name = "els_sent";
        break;
      case EventKind::kViewInstall:
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kMshTid);
        t.cat = "msh";
        t.name = "view_install";
        t.args.emplace_back("members", hex64(e.u.view.members));
        break;
      case EventKind::kNodeJoin:
      case EventKind::kNodeLeave:
      case EventKind::kNodeCrash:
      case EventKind::kBusOff:
        std::tie(t.pid, t.tid) = track(node_pid(e.node), kLifeTid);
        t.cat = "lifecycle";
        t.name = to_string(e.kind);
        break;
    }
    out.push_back(std::move(t));
  }

  // Track-naming metadata, prepended so viewers label everything up front.
  std::vector<TraceEvent> meta;
  std::set<int> pids;
  for (const auto& [pid, tid] : tracks) pids.insert(pid);
  for (const int pid : pids) {
    TraceEvent m;
    m.name = "process_name";
    m.ph = 'M';
    m.pid = pid;
    m.tid = 0;
    m.args.emplace_back(
        "name", pid == kBusPid
                    ? std::string{"bus"}
                    : "node " + std::to_string(pid - kNodePidBase));
    meta.push_back(std::move(m));
  }
  for (const auto& [pid, tid] : tracks) {
    TraceEvent m;
    m.name = "thread_name";
    m.ph = 'M';
    m.pid = pid;
    m.tid = tid;
    const char* label = "?";
    if (pid == kBusPid) {
      label = "wire";
    } else {
      switch (tid) {
        case kFdTid: label = "failure-detector"; break;
        case kFdaTid: label = "fda"; break;
        case kRhaTid: label = "rha"; break;
        case kMshTid: label = "membership"; break;
        case kLifeTid: label = "lifecycle"; break;
        default: break;
      }
    }
    m.args.emplace_back("name", label);
    meta.push_back(std::move(m));
  }
  out.insert(out.begin(), std::make_move_iterator(meta.begin()),
             std::make_move_iterator(meta.end()));
  return out;
}

TraceValidation validate_trace_events(const std::vector<TraceEvent>& events) {
  const auto fail = [](std::string msg) {
    return TraceValidation{false, std::move(msg)};
  };
  std::map<std::pair<int, int>, std::vector<std::string>> duration_stack;
  std::map<std::pair<int, int>, double> last_ts;
  std::map<std::pair<std::string, std::uint64_t>, int> async_open;
  for (const TraceEvent& t : events) {
    if (t.ph == 'M') continue;
    const std::pair<int, int> key{t.pid, t.tid};
    if (const auto it = last_ts.find(key); it != last_ts.end()) {
      if (t.ts_us < it->second) {
        return fail("timestamps not monotone on track pid=" +
                    std::to_string(t.pid) + " tid=" + std::to_string(t.tid));
      }
    }
    last_ts[key] = t.ts_us;
    switch (t.ph) {
      case 'X':
        if (t.dur_us < 0) return fail("'X' with negative dur: " + t.name);
        break;
      case 'B':
        duration_stack[key].push_back(t.name);
        break;
      case 'E': {
        auto& stack = duration_stack[key];
        if (stack.empty()) return fail("'E' without open 'B': " + t.name);
        if (stack.back() != t.name) {
          return fail("'E' name mismatch: open '" + stack.back() +
                      "', close '" + t.name + "'");
        }
        stack.pop_back();
        break;
      }
      case 'b': {
        if (!t.has_id) return fail("'b' without id: " + t.name);
        int& open = async_open[{t.cat, t.id}];
        if (open != 0) return fail("nested async span: " + t.name);
        open = 1;
        break;
      }
      case 'e': {
        if (!t.has_id) return fail("'e' without id: " + t.name);
        int& open = async_open[{t.cat, t.id}];
        if (open != 1) return fail("'e' without open 'b': " + t.name);
        open = 0;
        break;
      }
      case 'i':
        break;
      default:
        return fail(std::string{"unknown phase '"} + t.ph + "'");
    }
  }
  for (const auto& [key, stack] : duration_stack) {
    if (!stack.empty()) {
      return fail("unclosed 'B' span: " + stack.back());
    }
  }
  for (const auto& [key, open] : async_open) {
    if (open != 0) return fail("unclosed 'b' span in cat " + key.first);
  }
  return {};
}

std::string render_trace_json(const std::vector<TraceEvent>& events,
                              const MetricsRegistry* metrics,
                              const EventRing& ring) {
  const campaign::Json snapshot =
      metrics != nullptr ? metrics->snapshot_json(/*per_node=*/true)
                         : campaign::Json{};
  return render_trace_json(
      events, metrics != nullptr ? &snapshot : nullptr,
      RingStats{ring.capacity(), ring.size(), ring.dropped()});
}

std::string render_trace_json(const std::vector<TraceEvent>& events,
                              const campaign::Json* metrics_json,
                              const RingStats& stats) {
  campaign::Json trace_events = campaign::Json::array();
  for (const TraceEvent& t : events) {
    campaign::Json o = campaign::Json::object();
    o.set("name", campaign::Json::string(t.name));
    if (!t.cat.empty()) o.set("cat", campaign::Json::string(t.cat));
    o.set("ph", campaign::Json::string(std::string{t.ph}));
    o.set("ts", campaign::Json::number(t.ts_us));
    if (t.ph == 'X') o.set("dur", campaign::Json::number(t.dur_us));
    o.set("pid", campaign::Json::integer(t.pid));
    o.set("tid", campaign::Json::integer(t.tid));
    if (t.has_id) {
      o.set("id", campaign::Json::integer(static_cast<std::int64_t>(t.id)));
    }
    if (!t.args.empty()) {
      campaign::Json args = campaign::Json::object();
      for (const auto& [k, v] : t.args) {
        args.set(k, campaign::Json::string(v));
      }
      o.set("args", std::move(args));
    }
    trace_events.push(std::move(o));
  }

  campaign::Json other = campaign::Json::object();
  other.set("schema", campaign::Json::string("canely-trace-1"));
  other.set("ring_capacity", campaign::Json::integer(
                                 static_cast<std::int64_t>(stats.capacity)));
  other.set("events_recorded", campaign::Json::integer(
                                   static_cast<std::int64_t>(stats.recorded)));
  other.set("dropped_events", campaign::Json::integer(
                                  static_cast<std::int64_t>(stats.dropped)));

  campaign::Json root = campaign::Json::object();
  root.set("displayTimeUnit", campaign::Json::string("ms"));
  root.set("otherData", std::move(other));
  if (metrics_json != nullptr) {
    root.set("metrics", *metrics_json);
  }
  root.set("traceEvents", std::move(trace_events));
  return root.dump(1) + "\n";
}

}  // namespace canely::obs
