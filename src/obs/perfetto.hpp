#pragma once
// Chrome trace_event timeline export (docs/OBSERVABILITY.md).
//
// Renders the event ring as Chrome's trace_event JSON — loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing.  Track layout:
//
//   pid 1 ("bus")      tid 1 "wire"   — frames as 'X' complete events
//   pid 10+n ("node n")
//     tid 1 "failure-detector"        — timer arms/expiries, ELS, suspects
//     tid 2 "fda"                     — rounds as b/e async spans (id keyed
//                                       by watcher+failed: rounds for
//                                       different peers overlap)
//     tid 3 "rha"                     — executions as B/E duration pairs
//     tid 4 "membership"              — view installs as instants
//     tid 5 "lifecycle"               — join/leave/crash/bus-off instants
//
// The export is split in two stages so tests can assert structure without
// parsing JSON (the repo only writes JSON): `build_trace_events` produces
// the typed list — balanced phase pairs, per-track monotone timestamps —
// and `render_trace_json` serializes it deterministically through
// campaign::Json (same bytes for the same run, any thread count).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace canely::obs {

/// One entry of the "traceEvents" array, already track-assigned.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph{'i'};        ///< 'X' complete | 'B','E' | 'b','e' async | 'i' | 'M'
  double ts_us{0};     ///< sim time in microseconds
  double dur_us{0};    ///< 'X' events: span length in microseconds
  int pid{0};
  int tid{0};
  bool has_id{false};  ///< async events carry an id
  std::uint64_t id{0};
  /// Extra "args" shown in the Perfetto detail pane (string values).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Convert the ring into trace events.  Spans whose opening or closing
/// half fell out of the ring (drop-oldest) or never happened (crash,
/// truncated run) degrade to instants, so the result is always balanced.
[[nodiscard]] std::vector<TraceEvent> build_trace_events(
    const EventRing& ring);

struct TraceValidation {
  bool ok{true};
  std::string error;
};

/// Structural well-formedness: every 'B' has its 'E' (per pid/tid, LIFO),
/// every 'b' its 'e' (per cat/id), 'X' durations non-negative, timestamps
/// monotone per track.
[[nodiscard]] TraceValidation validate_trace_events(
    const std::vector<TraceEvent>& events);

/// Ring bookkeeping for "otherData", decoupled from a live EventRing so
/// a trace can be re-rendered from archived data (the flight recorder
/// embedded in canely-check-2 artifacts records the original drop count,
/// which a ring reconstructed from the surviving events cannot know).
struct RingStats {
  std::size_t capacity{0};
  std::size_t recorded{0};
  std::uint64_t dropped{0};
};

/// Serialize to Chrome trace_event JSON.  `metrics`, when non-null, is
/// embedded as a top-level "metrics" object (Perfetto ignores unknown
/// keys); ring bookkeeping lands in "otherData".
[[nodiscard]] std::string render_trace_json(
    const std::vector<TraceEvent>& events, const MetricsRegistry* metrics,
    const EventRing& ring);

/// Same serialization from pre-serialized parts: `metrics_json` (may be
/// null) is embedded verbatim as the "metrics" object and `stats` stands
/// in for the live ring.  Rendering a live run through this overload
/// with `metrics->snapshot_json(true)` yields byte-identical output to
/// the overload above.
[[nodiscard]] std::string render_trace_json(
    const std::vector<TraceEvent>& events,
    const campaign::Json* metrics_json, const RingStats& stats);

}  // namespace canely::obs
