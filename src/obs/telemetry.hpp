#pragma once
// Run-level campaign telemetry (DESIGN.md §11, docs/OBSERVABILITY.md).
//
// A second observability layer, one level up from the per-run Recorder:
// while obs::Recorder watches one simulated universe from the inside (sim
// time only), Telemetry watches the *campaign* from the outside — how
// fast the explorer is judging units, how much dedup and the prefix cache
// are saving, how long checkpoints take — and publishes periodic
// snapshots to a JSONL file (`canely-telemetry-1`) that tools/canely_top
// tails live.
//
// Design constraints, in order:
//  * The instrumented paths are the campaign hot paths.  Every update is
//    a relaxed atomic add into a cacheline-padded per-worker slot; no
//    locks, no allocation, no false sharing between workers.  A null
//    Telemetry* costs one branch (same convention as obs::Recorder).
//  * Telemetry must not perturb results.  Nothing here feeds back into a
//    run; campaign/checker outputs are byte-identical telemetry-on vs
//    -off (asserted by tests/test_telemetry.cpp at several --threads).
//  * Wall time enters ONLY through the socketcan::WallClock seam (PR 8):
//    src/obs sits in the determinism zone, so the sampler's clock use is
//    injected, mockable, and annotated as a deliberate nondeterminism
//    seam for canely_lint's whole-program escape analysis.
//
// Aggregation: a sampling thread wakes every `sample_period_ms`, sums the
// slots, and appends one self-contained JSON line per wake (single
// buffered write — concurrent tails never see a torn line).  Counters are
// cumulative and `seq` is strictly monotone, so a reader can compute
// rates from any two lines and resync after missing any number of them.
// `sample_period_ms == 0` disables the thread; tests drive `sample_now()`
// manually and get deterministic snapshot counts.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/runner.hpp"
#include "socketcan/realtime.hpp"

namespace canely::obs {

/// Campaign-level monotone counters.  The enumerators are the JSONL
/// field names (see `to_string`); canely_top derives progress, dedup %
/// and cache-hit % from them.
enum class TelemetryCounter : std::uint8_t {
  kRuns,          ///< checked runs executed through the campaign runner
  kUnitsJudged,   ///< explorer units resolved by simulation
  kDedupSkips,    ///< units resolved by equivalence-class inheritance
  kUnitsResumed,  ///< units restored from a resumed frontier file
  kPrefixHits,    ///< probe requests served from the prefix cache
  kPrefixMisses,  ///< probe requests that had to simulate
  kViolations,    ///< monitor violations recorded
  kShrinkSteps,   ///< shrink probes spent minimizing a counterexample
  kCheckpoints,   ///< frontier checkpoint files written
  kCount
};

constexpr std::size_t kTelemetryCounters =
    static_cast<std::size_t>(TelemetryCounter::kCount);

[[nodiscard]] constexpr const char* to_string(TelemetryCounter c) {
  switch (c) {
    case TelemetryCounter::kRuns: return "runs";
    case TelemetryCounter::kUnitsJudged: return "units_judged";
    case TelemetryCounter::kDedupSkips: return "dedup_skips";
    case TelemetryCounter::kUnitsResumed: return "units_resumed";
    case TelemetryCounter::kPrefixHits: return "prefix_cache_hits";
    case TelemetryCounter::kPrefixMisses: return "prefix_cache_misses";
    case TelemetryCounter::kViolations: return "violations";
    case TelemetryCounter::kShrinkSteps: return "shrink_steps";
    case TelemetryCounter::kCheckpoints: return "checkpoints";
    case TelemetryCounter::kCount: break;
  }
  return "?";
}

/// Campaign pipeline stages with per-stage duration histograms.
enum class TelemetryStage : std::uint8_t {
  kJudge,         ///< one checked run through the harness
  kReplay,        ///< prefix probe (tx log + judge-time samples)
  kHash,          ///< unit keying + record folding
  kCheckpointIo,  ///< frontier checkpoint serialization + rename
  kCount
};

constexpr std::size_t kTelemetryStages =
    static_cast<std::size_t>(TelemetryStage::kCount);

[[nodiscard]] constexpr const char* to_string(TelemetryStage s) {
  switch (s) {
    case TelemetryStage::kJudge: return "judge";
    case TelemetryStage::kReplay: return "replay";
    case TelemetryStage::kHash: return "hash";
    case TelemetryStage::kCheckpointIo: return "checkpoint_io";
    case TelemetryStage::kCount: break;
  }
  return "?";
}

/// Fixed microsecond bucket upper bounds shared by every stage histogram
/// (50 us .. 250 ms, roughly x2.2 steps, plus an overflow bucket): wide
/// enough for a sub-ms judge run and a multi-ms checkpoint alike, fixed
/// so snapshots from different shards are directly comparable.
inline constexpr std::array<std::uint64_t, 12> kStageBucketBoundsUs = {
    50,    100,   250,    500,    1000,   2500,
    5000, 10000, 25000, 50000, 100000, 250000};

/// The process-wide steady clock behind the WallClock seam (telemetry's
/// default when no clock is injected).  Lives in telemetry.cpp so the
/// clock tokens stay in one annotated place.
[[nodiscard]] socketcan::WallClock& default_wall_clock();

struct TelemetryConfig {
  std::string path;                     ///< JSONL sink (appended to)
  std::uint64_t sample_period_ms{500};  ///< 0 = manual sample_now() only
  std::string label{"explore"};         ///< workload tag shown by canely_top
  std::size_t shard_index{0};
  std::size_t shard_count{1};
  std::string frontier_path{};  ///< advertised so canely_top can tail it
  /// Injectable wall clock (tests); null = default_wall_clock().
  socketcan::WallClock* clock{nullptr};
};

/// The campaign telemetry service: lock-free per-worker counters, a
/// sampling thread, and an append-only JSONL snapshot stream.
class Telemetry final : public campaign::RunObserver {
 public:
  explicit Telemetry(TelemetryConfig cfg);
  ~Telemetry() override;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Relaxed atomic add into the calling worker's slot.
  void add(TelemetryCounter c, std::uint64_t delta = 1) {
    slot().counters[static_cast<std::size_t>(c)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Record one stage execution of `us` microseconds.
  void stage_us(TelemetryStage s, std::uint64_t us);

  // campaign::RunObserver: every runner-dispatched run counts as a judge.
  [[nodiscard]] std::uint64_t now_ns() override;
  void on_run_complete(std::uint64_t dur_ns) override;

  /// Total units the campaign will resolve (ETA hint; 0 = unknown).
  /// Safe to refine mid-run as depth-2 enumeration reveals the space.
  void set_total_units(std::uint64_t n) {
    total_units_.store(n, std::memory_order_relaxed);
  }

  /// Aggregate the slots and append one snapshot line now.  Returns
  /// false when the sink cannot be written (failure is also counted and
  /// reported in the next successful line as `dropped_lines`).
  bool sample_now();

  /// Cumulative value of one counter across all worker slots.
  [[nodiscard]] std::uint64_t counter(TelemetryCounter c) const;

  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

 private:
  /// One worker's counter block, cacheline-aligned so concurrent workers
  /// never share a line.  Slots are summed at sample time; a thread that
  /// wraps past kMaxSlots shares a slot, which only merges its adds.
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kTelemetryCounters> counters{};
    std::array<std::array<std::atomic<std::uint64_t>,
                          kStageBucketBoundsUs.size() + 1>,
               kTelemetryStages>
        stage_buckets{};
    std::array<std::atomic<std::uint64_t>, kTelemetryStages> stage_count{};
    std::array<std::atomic<std::uint64_t>, kTelemetryStages> stage_sum_us{};
  };
  static constexpr std::size_t kMaxSlots = 64;

  Slot& slot();
  void sampler_loop();
  [[nodiscard]] std::string snapshot_line();

  TelemetryConfig cfg_;
  socketcan::WallClock* clock_;  ///< never null after construction
  std::uint64_t start_ns_{0};
  std::array<Slot, kMaxSlots> slots_{};
  std::atomic<std::uint32_t> next_slot_{0};
  std::atomic<std::uint64_t> total_units_{0};

  // Writer state (sampling thread or manual sample_now callers).
  std::mutex writer_mu_;
  std::FILE* sink_{nullptr};
  std::uint64_t seq_{0};
  std::uint64_t dropped_lines_{0};

  // Sampler thread lifecycle.
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_{false};
  std::thread sampler_;
};

/// Null-safe helpers: instrumented call sites cost one branch when
/// telemetry is off, mirroring the Recorder convention.
inline void telemetry_add(Telemetry* t, TelemetryCounter c,
                          std::uint64_t delta = 1) {
  if (t != nullptr) t->add(c, delta);
}

/// RAII stage timer: times the enclosed scope into `stage` when a
/// telemetry handle is present, does nothing otherwise.
class StageTimer {
 public:
  StageTimer(Telemetry* t, TelemetryStage stage) : t_{t}, stage_{stage} {
    if (t_ != nullptr) t0_ns_ = t_->now_ns();
  }
  ~StageTimer() {
    if (t_ != nullptr) {
      t_->stage_us(stage_, (t_->now_ns() - t0_ns_) / 1000);
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Telemetry* t_;
  TelemetryStage stage_;
  std::uint64_t t0_ns_{0};
};

}  // namespace canely::obs
