#pragma once
// Metrics registry: counters, gauges and fixed-bucket histograms
// (DESIGN.md §11, metric catalog in docs/OBSERVABILITY.md).
//
// Registration happens at setup time (`registry.counter("els.frames_sent")`
// returns a stable reference — node-based map, never invalidated); the
// update path is a plain integer add on a cached pointer, so instrumented
// hot paths pay no lookup, no lock, no allocation.  Snapshots serialize in
// name order through campaign::Json, making them a pure function of the
// run — byte-identical across campaign `--threads` like every other
// artifact in this repo.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "can/types.hpp"

namespace canely::obs {

/// Monotone event count, kept per node and in total.
class Counter {
 public:
  /// Layer-wide occurrence not attributable to one node.
  void add(std::uint64_t delta = 1) { total_ += delta; }

  /// Occurrence at `node` (also accumulated into the total).
  void add_node(std::uint8_t node, std::uint64_t delta = 1) {
    total_ += delta;
    if (node < can::kMaxNodes) per_node_[node] += delta;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t node(std::uint8_t n) const {
    return n < can::kMaxNodes ? per_node_[n] : 0;
  }

 private:
  std::uint64_t total_{0};
  std::array<std::uint64_t, can::kMaxNodes> per_node_{};
};

/// Last-write-wins sampled value (e.g. bus.utilization at snapshot time).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0};
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at registration
/// and never reallocated afterwards, so `add` is a linear scan over a
/// handful of int64 bounds — no floating point, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> upper_bounds)
      : bounds_{std::move(upper_bounds)}, buckets_(bounds_.size() + 1, 0) {}

  void add(std::int64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  std::int64_t sum_{0};
  std::int64_t min_{0};
  std::int64_t max_{0};
};

/// Name -> instrument, get-or-create.  References stay valid for the
/// registry's lifetime (node-based std::map — also the only container
/// with a defined iteration order the determinism zone admits).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> upper_bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{std::move(upper_bounds)}).first;
    }
    return it->second;
  }

  /// Read-only lookups (tests, report printers); nullptr when absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Deterministic snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, names in lexicographic order.  `per_node` adds a
  /// {"node<k>": v} breakdown for counters with per-node attribution.
  [[nodiscard]] campaign::Json snapshot_json(bool per_node = false) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace canely::obs
