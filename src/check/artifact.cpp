#include "check/artifact.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace canely::check {
namespace {

constexpr const char* kSchema = "canely-check-1";

// ------------------------------------------------------------- writing

campaign::Json nodeset_json(can::NodeSet set) {
  campaign::Json arr = campaign::Json::array();
  for (can::NodeId id : set) {
    arr.push(campaign::Json::integer(static_cast<std::int64_t>(id)));
  }
  return arr;
}

campaign::Json time_ns(sim::Time t) {
  return campaign::Json::integer(t.to_ns());
}

}  // namespace

campaign::Json artifact_json(const Artifact& artifact) {
  const ScenarioConfig& cfg = artifact.scenario;
  campaign::Json scenario = campaign::Json::object();
  scenario.set("n", campaign::Json::integer(
                        static_cast<std::int64_t>(cfg.n)));
  scenario.set("clustering", campaign::Json::boolean(cfg.clustering));
  scenario.set("fda_agreement",
               campaign::Json::boolean(cfg.params.fda_agreement));
  scenario.set("skip_idle_cycles",
               campaign::Json::boolean(cfg.params.skip_idle_cycles));
  scenario.set("omission_degree_k",
               campaign::Json::integer(cfg.params.omission_degree_k));
  scenario.set("inconsistent_degree_j",
               campaign::Json::integer(cfg.params.inconsistent_degree_j));
  scenario.set("heartbeat_ns", time_ns(cfg.params.heartbeat_period));
  scenario.set("tx_delay_ns", time_ns(cfg.params.tx_delay_bound));
  scenario.set("cycle_ns", time_ns(cfg.params.membership_cycle));
  scenario.set("rha_timeout_ns", time_ns(cfg.params.rha_timeout));
  scenario.set("join_wait_ns", time_ns(cfg.params.join_wait));
  scenario.set("fd_skew_ns", time_ns(cfg.params.fd_skew_quantum));
  scenario.set("duration_ns", time_ns(cfg.duration));
  scenario.set("settle_ns", time_ns(cfg.settle));
  scenario.set("latency_margin_ns", time_ns(cfg.latency_margin));

  campaign::Json script = campaign::Json::array();
  for (const FaultEvent& ev : artifact.script) {
    campaign::Json e = campaign::Json::object();
    e.set("tx", campaign::Json::integer(static_cast<std::int64_t>(ev.tx)));
    e.set("op", campaign::Json::string(
                    ev.op == FaultOp::kOmit ? "omit" : "error"));
    e.set("victims", nodeset_json(ev.victims));
    e.set("crash_sender", campaign::Json::boolean(ev.crash_sender));
    script.push(std::move(e));
  }

  campaign::Json violation = campaign::Json::object();
  violation.set("monitor", campaign::Json::string(artifact.violation.monitor));
  violation.set("when_ns", time_ns(artifact.violation.when));
  violation.set("detail", campaign::Json::string(artifact.violation.detail));

  campaign::Json root = campaign::Json::object();
  root.set("schema", campaign::Json::string(kSchema));
  root.set("monitor", campaign::Json::string(artifact.monitor));
  root.set("trace_hash",
           campaign::Json::string(std::to_string(artifact.trace_hash)));
  root.set("scenario", std::move(scenario));
  root.set("script", std::move(script));
  root.set("violation", std::move(violation));
  return root;
}

void write_artifact(const std::string& path, const Artifact& artifact) {
  campaign::write_file(path, artifact_json(artifact).dump(2) + "\n");
}

// ------------------------------------------------------------- parsing

namespace {

/// Minimal JSON value for the parser below.  Numbers are kept as int64 —
/// the artifact schema only uses integers (all durations in ns).
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kString,
    kArray,
    kObject
  };
  Kind kind{Kind::kNull};
  bool b{false};
  std::int64_t i{0};
  std::string s;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("artifact JSON: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.s = string();
        return v;
      }
      case 't': {
        if (!consume("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        v.b = true;
        return v;
      }
      case 'f': {
        if (!consume("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        if (!consume("null")) fail("bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // The emitter never produces \u escapes for the artifact's
            // ASCII content; accept and keep the raw sequence.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fail("non-integer number (artifact schema uses integers only)");
    }
    Value v;
    v.kind = Value::Kind::kInt;
    v.i = std::strtoll(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
    return v;
  }

  const std::string& text_;
  std::size_t pos_{0};
};

const Value& require(const Value& obj, const std::string& key,
                     Value::Kind kind) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->kind != kind) {
    throw std::runtime_error("artifact JSON: missing or mistyped field '" +
                             key + "'");
  }
  return *v;
}

std::int64_t get_int(const Value& obj, const std::string& key) {
  return require(obj, key, Value::Kind::kInt).i;
}

bool get_bool(const Value& obj, const std::string& key) {
  return require(obj, key, Value::Kind::kBool).b;
}

}  // namespace

Artifact load_artifact(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("cannot open artifact: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const Value root = Parser{text}.parse();
  if (root.kind != Value::Kind::kObject) {
    throw std::runtime_error("artifact JSON: root is not an object");
  }
  if (require(root, "schema", Value::Kind::kString).s != kSchema) {
    throw std::runtime_error("artifact JSON: unknown schema");
  }

  Artifact artifact;
  artifact.monitor = require(root, "monitor", Value::Kind::kString).s;
  artifact.trace_hash = std::strtoull(
      require(root, "trace_hash", Value::Kind::kString).s.c_str(), nullptr,
      10);

  const Value& sc = require(root, "scenario", Value::Kind::kObject);
  ScenarioConfig& cfg = artifact.scenario;
  cfg.n = static_cast<std::size_t>(get_int(sc, "n"));
  cfg.clustering = get_bool(sc, "clustering");
  cfg.params.n = cfg.n;
  cfg.params.fda_agreement = get_bool(sc, "fda_agreement");
  cfg.params.skip_idle_cycles = get_bool(sc, "skip_idle_cycles");
  cfg.params.omission_degree_k =
      static_cast<int>(get_int(sc, "omission_degree_k"));
  cfg.params.inconsistent_degree_j =
      static_cast<int>(get_int(sc, "inconsistent_degree_j"));
  cfg.params.heartbeat_period = sim::Time::ns(get_int(sc, "heartbeat_ns"));
  cfg.params.tx_delay_bound = sim::Time::ns(get_int(sc, "tx_delay_ns"));
  cfg.params.membership_cycle = sim::Time::ns(get_int(sc, "cycle_ns"));
  cfg.params.rha_timeout = sim::Time::ns(get_int(sc, "rha_timeout_ns"));
  cfg.params.join_wait = sim::Time::ns(get_int(sc, "join_wait_ns"));
  cfg.params.fd_skew_quantum = sim::Time::ns(get_int(sc, "fd_skew_ns"));
  cfg.duration = sim::Time::ns(get_int(sc, "duration_ns"));
  cfg.settle = sim::Time::ns(get_int(sc, "settle_ns"));
  cfg.latency_margin = sim::Time::ns(get_int(sc, "latency_margin_ns"));

  for (const Value& e : require(root, "script", Value::Kind::kArray).array) {
    if (e.kind != Value::Kind::kObject) {
      throw std::runtime_error("artifact JSON: script event is not an object");
    }
    FaultEvent ev;
    ev.tx = static_cast<std::uint64_t>(get_int(e, "tx"));
    const std::string& op = require(e, "op", Value::Kind::kString).s;
    if (op == "omit") {
      ev.op = FaultOp::kOmit;
    } else if (op == "error") {
      ev.op = FaultOp::kError;
    } else {
      throw std::runtime_error("artifact JSON: unknown op '" + op + "'");
    }
    for (const Value& id :
         require(e, "victims", Value::Kind::kArray).array) {
      if (id.kind != Value::Kind::kInt || id.i < 0 ||
          id.i >= static_cast<std::int64_t>(can::kMaxNodes)) {
        throw std::runtime_error("artifact JSON: bad victim id");
      }
      ev.victims.insert(static_cast<can::NodeId>(id.i));
    }
    ev.crash_sender = get_bool(e, "crash_sender");
    artifact.script.push_back(ev);
  }

  const Value& vio = require(root, "violation", Value::Kind::kObject);
  artifact.violation.monitor =
      require(vio, "monitor", Value::Kind::kString).s;
  artifact.violation.when = sim::Time::ns(get_int(vio, "when_ns"));
  artifact.violation.detail = require(vio, "detail", Value::Kind::kString).s;
  return artifact;
}

}  // namespace canely::check
