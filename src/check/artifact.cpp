#include "check/artifact.hpp"

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "check/json_reader.hpp"

namespace canely::check {
namespace {

constexpr const char* kSchema = "canely-check-2";
constexpr const char* kSchemaV1 = "canely-check-1";

// ------------------------------------------------------------- writing

campaign::Json nodeset_json(can::NodeSet set) {
  campaign::Json arr = campaign::Json::array();
  for (can::NodeId id : set) {
    arr.push(campaign::Json::integer(static_cast<std::int64_t>(id)));
  }
  return arr;
}

campaign::Json time_ns(sim::Time t) {
  return campaign::Json::integer(t.to_ns());
}

/// Payload shape of an event kind.  kFrameTx carries the 16-byte frame
/// record (wider than the union's `raw` view), kViewInstall a 64-bit
/// membership bitmap, the detector/FDA kinds a single peer id, and the
/// lifecycle/RHA kinds nothing — so serialization is per kind, the only
/// lossless option.
enum class PayloadShape : std::uint8_t { kNone, kFrame, kPeer, kView };

PayloadShape shape_of(obs::EventKind kind) {
  switch (kind) {
    case obs::EventKind::kFrameTx:
      return PayloadShape::kFrame;
    case obs::EventKind::kFdTimerArm:
    case obs::EventKind::kFdTimerExpire:
    case obs::EventKind::kFdSuspect:
    case obs::EventKind::kFdaRoundStart:
    case obs::EventKind::kFdaNty:
      return PayloadShape::kPeer;
    case obs::EventKind::kViewInstall:
      return PayloadShape::kView;
    case obs::EventKind::kBusOff:
    case obs::EventKind::kElsSent:
    case obs::EventKind::kRhaRoundStart:
    case obs::EventKind::kRhaRoundEnd:
    case obs::EventKind::kNodeJoin:
    case obs::EventKind::kNodeLeave:
    case obs::EventKind::kNodeCrash:
      break;
  }
  return PayloadShape::kNone;
}

constexpr obs::EventKind kAllKinds[] = {
    obs::EventKind::kFrameTx,       obs::EventKind::kBusOff,
    obs::EventKind::kFdTimerArm,    obs::EventKind::kFdTimerExpire,
    obs::EventKind::kElsSent,       obs::EventKind::kFdSuspect,
    obs::EventKind::kFdaRoundStart, obs::EventKind::kFdaNty,
    obs::EventKind::kRhaRoundStart, obs::EventKind::kRhaRoundEnd,
    obs::EventKind::kViewInstall,   obs::EventKind::kNodeJoin,
    obs::EventKind::kNodeLeave,     obs::EventKind::kNodeCrash};

campaign::Json flight_json(const FlightRecording& flight) {
  campaign::Json events = campaign::Json::array();
  for (const obs::Event& ev : flight.events) {
    campaign::Json e = campaign::Json::object();
    e.set("t_ns", campaign::Json::integer(ev.when.to_ns()));
    e.set("kind", campaign::Json::string(obs::to_string(ev.kind)));
    e.set("node",
          campaign::Json::integer(static_cast<std::int64_t>(ev.node)));
    switch (shape_of(ev.kind)) {
      case PayloadShape::kFrame:
        e.set("id", campaign::Json::integer(ev.u.frame.id));
        e.set("bits", campaign::Json::integer(ev.u.frame.bits));
        e.set("dur_ns", campaign::Json::integer(ev.u.frame.dur_ns));
        e.set("outcome", campaign::Json::integer(ev.u.frame.outcome));
        e.set("attempt", campaign::Json::integer(ev.u.frame.attempt));
        e.set("remote", campaign::Json::integer(ev.u.frame.remote));
        e.set("orphaned", campaign::Json::integer(ev.u.frame.orphaned));
        break;
      case PayloadShape::kPeer:
        e.set("peer",
              campaign::Json::integer(static_cast<std::int64_t>(
                  ev.u.peer.peer)));
        break;
      case PayloadShape::kView:
        // 64-bit bitmap: serialized as a decimal string like trace_hash,
        // out of int64 range paranoia.
        e.set("members", campaign::Json::string(
                             std::to_string(ev.u.view.members)));
        break;
      case PayloadShape::kNone:
        break;
    }
    events.push(std::move(e));
  }
  campaign::Json root = campaign::Json::object();
  root.set("ring_capacity",
           campaign::Json::integer(
               static_cast<std::int64_t>(flight.ring_capacity)));
  root.set("dropped", campaign::Json::integer(
                          static_cast<std::int64_t>(flight.dropped)));
  root.set("events", std::move(events));
  if (flight.has_metrics) root.set("metrics", flight.metrics);
  return root;
}

}  // namespace

campaign::Json artifact_json(const Artifact& artifact) {
  const ScenarioConfig& cfg = artifact.scenario;
  campaign::Json scenario = campaign::Json::object();
  scenario.set("n", campaign::Json::integer(
                        static_cast<std::int64_t>(cfg.n)));
  scenario.set("clustering", campaign::Json::boolean(cfg.clustering));
  scenario.set("fda_agreement",
               campaign::Json::boolean(cfg.params.fda_agreement));
  scenario.set("skip_idle_cycles",
               campaign::Json::boolean(cfg.params.skip_idle_cycles));
  scenario.set("omission_degree_k",
               campaign::Json::integer(cfg.params.omission_degree_k));
  scenario.set("inconsistent_degree_j",
               campaign::Json::integer(cfg.params.inconsistent_degree_j));
  scenario.set("heartbeat_ns", time_ns(cfg.params.heartbeat_period));
  scenario.set("tx_delay_ns", time_ns(cfg.params.tx_delay_bound));
  scenario.set("cycle_ns", time_ns(cfg.params.membership_cycle));
  scenario.set("rha_timeout_ns", time_ns(cfg.params.rha_timeout));
  scenario.set("join_wait_ns", time_ns(cfg.params.join_wait));
  scenario.set("fd_skew_ns", time_ns(cfg.params.fd_skew_quantum));
  scenario.set("duration_ns", time_ns(cfg.duration));
  scenario.set("settle_ns", time_ns(cfg.settle));
  scenario.set("latency_margin_ns", time_ns(cfg.latency_margin));

  campaign::Json script = campaign::Json::array();
  for (const FaultEvent& ev : artifact.script) {
    campaign::Json e = campaign::Json::object();
    e.set("tx", campaign::Json::integer(static_cast<std::int64_t>(ev.tx)));
    e.set("op", campaign::Json::string(
                    ev.op == FaultOp::kOmit ? "omit" : "error"));
    e.set("victims", nodeset_json(ev.victims));
    e.set("crash_sender", campaign::Json::boolean(ev.crash_sender));
    script.push(std::move(e));
  }

  campaign::Json violation = campaign::Json::object();
  violation.set("monitor", campaign::Json::string(artifact.violation.monitor));
  violation.set("when_ns", time_ns(artifact.violation.when));
  violation.set("detail", campaign::Json::string(artifact.violation.detail));

  campaign::Json root = campaign::Json::object();
  root.set("schema", campaign::Json::string(kSchema));
  root.set("monitor", campaign::Json::string(artifact.monitor));
  root.set("trace_hash",
           campaign::Json::string(std::to_string(artifact.trace_hash)));
  root.set("scenario", std::move(scenario));
  root.set("script", std::move(script));
  root.set("violation", std::move(violation));
  if (artifact.flight.present) {
    root.set("flight", flight_json(artifact.flight));
  }
  return root;
}

void write_artifact(const std::string& path, const Artifact& artifact) {
  campaign::write_file(path, artifact_json(artifact).dump(2) + "\n");
}

// ------------------------------------------------------------- parsing

namespace {

using jsonin::Value;
constexpr const char* kWhat = "artifact JSON";

const Value& require(const Value& obj, const std::string& key,
                     Value::Kind kind) {
  return jsonin::require(obj, key, kind, kWhat);
}

std::int64_t get_int(const Value& obj, const std::string& key) {
  return jsonin::get_int(obj, key, kWhat);
}

bool get_bool(const Value& obj, const std::string& key) {
  return jsonin::get_bool(obj, key, kWhat);
}

}  // namespace

Artifact load_artifact(const std::string& path) {
  const std::string text = jsonin::read_file(path, kWhat);
  const Value root = jsonin::parse(text, kWhat);
  if (root.kind != Value::Kind::kObject) {
    throw std::runtime_error("artifact JSON: root is not an object");
  }
  const std::string& schema = require(root, "schema", Value::Kind::kString).s;
  if (schema != kSchema && schema != kSchemaV1) {
    throw std::runtime_error("artifact JSON: unknown schema");
  }

  Artifact artifact;
  artifact.monitor = require(root, "monitor", Value::Kind::kString).s;
  artifact.trace_hash = std::strtoull(
      require(root, "trace_hash", Value::Kind::kString).s.c_str(), nullptr,
      10);

  const Value& sc = require(root, "scenario", Value::Kind::kObject);
  ScenarioConfig& cfg = artifact.scenario;
  cfg.n = static_cast<std::size_t>(get_int(sc, "n"));
  cfg.clustering = get_bool(sc, "clustering");
  cfg.params.n = cfg.n;
  cfg.params.fda_agreement = get_bool(sc, "fda_agreement");
  cfg.params.skip_idle_cycles = get_bool(sc, "skip_idle_cycles");
  cfg.params.omission_degree_k =
      static_cast<int>(get_int(sc, "omission_degree_k"));
  cfg.params.inconsistent_degree_j =
      static_cast<int>(get_int(sc, "inconsistent_degree_j"));
  cfg.params.heartbeat_period = sim::Time::ns(get_int(sc, "heartbeat_ns"));
  cfg.params.tx_delay_bound = sim::Time::ns(get_int(sc, "tx_delay_ns"));
  cfg.params.membership_cycle = sim::Time::ns(get_int(sc, "cycle_ns"));
  cfg.params.rha_timeout = sim::Time::ns(get_int(sc, "rha_timeout_ns"));
  cfg.params.join_wait = sim::Time::ns(get_int(sc, "join_wait_ns"));
  cfg.params.fd_skew_quantum = sim::Time::ns(get_int(sc, "fd_skew_ns"));
  cfg.duration = sim::Time::ns(get_int(sc, "duration_ns"));
  cfg.settle = sim::Time::ns(get_int(sc, "settle_ns"));
  cfg.latency_margin = sim::Time::ns(get_int(sc, "latency_margin_ns"));

  for (const Value& e : require(root, "script", Value::Kind::kArray).array) {
    if (e.kind != Value::Kind::kObject) {
      throw std::runtime_error("artifact JSON: script event is not an object");
    }
    FaultEvent ev;
    ev.tx = static_cast<std::uint64_t>(get_int(e, "tx"));
    const std::string& op = require(e, "op", Value::Kind::kString).s;
    if (op == "omit") {
      ev.op = FaultOp::kOmit;
    } else if (op == "error") {
      ev.op = FaultOp::kError;
    } else {
      throw std::runtime_error("artifact JSON: unknown op '" + op + "'");
    }
    for (const Value& id :
         require(e, "victims", Value::Kind::kArray).array) {
      if (id.kind != Value::Kind::kInt || id.i < 0 ||
          id.i >= static_cast<std::int64_t>(can::kMaxNodes)) {
        throw std::runtime_error("artifact JSON: bad victim id");
      }
      ev.victims.insert(static_cast<can::NodeId>(id.i));
    }
    ev.crash_sender = get_bool(e, "crash_sender");
    artifact.script.push_back(ev);
  }

  const Value& vio = require(root, "violation", Value::Kind::kObject);
  artifact.violation.monitor =
      require(vio, "monitor", Value::Kind::kString).s;
  artifact.violation.when = sim::Time::ns(get_int(vio, "when_ns"));
  artifact.violation.detail = require(vio, "detail", Value::Kind::kString).s;

  // Flight recorder: optional (v1 artifacts, or v2 written without a
  // recorder attached).
  const Value* fl = root.find("flight");
  if (fl != nullptr && fl->kind == Value::Kind::kObject) {
    FlightRecording& flight = artifact.flight;
    flight.present = true;
    flight.ring_capacity =
        static_cast<std::size_t>(get_int(*fl, "ring_capacity"));
    flight.dropped = static_cast<std::uint64_t>(get_int(*fl, "dropped"));
    for (const Value& e :
         require(*fl, "events", Value::Kind::kArray).array) {
      if (e.kind != Value::Kind::kObject) {
        throw std::runtime_error(
            "artifact JSON: flight event is not an object");
      }
      obs::Event ev;
      ev.when = sim::Time::ns(get_int(e, "t_ns"));
      const std::string& kind = require(e, "kind", Value::Kind::kString).s;
      bool known = false;
      for (const obs::EventKind k : kAllKinds) {
        if (kind == obs::to_string(k)) {
          ev.kind = k;
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::runtime_error("artifact JSON: unknown event kind '" +
                                 kind + "'");
      }
      ev.node = static_cast<std::uint8_t>(get_int(e, "node"));
      switch (shape_of(ev.kind)) {
        case PayloadShape::kFrame:
          ev.u.frame.id = static_cast<std::uint32_t>(get_int(e, "id"));
          ev.u.frame.bits = static_cast<std::uint32_t>(get_int(e, "bits"));
          ev.u.frame.dur_ns =
              static_cast<std::uint32_t>(get_int(e, "dur_ns"));
          ev.u.frame.outcome =
              static_cast<std::uint8_t>(get_int(e, "outcome"));
          ev.u.frame.attempt =
              static_cast<std::uint8_t>(get_int(e, "attempt"));
          ev.u.frame.remote =
              static_cast<std::uint8_t>(get_int(e, "remote"));
          ev.u.frame.orphaned =
              static_cast<std::uint8_t>(get_int(e, "orphaned"));
          break;
        case PayloadShape::kPeer:
          ev.u.peer.peer = static_cast<std::uint8_t>(get_int(e, "peer"));
          break;
        case PayloadShape::kView:
          ev.u.view.members = std::strtoull(
              require(e, "members", Value::Kind::kString).s.c_str(),
              nullptr, 10);
          break;
        case PayloadShape::kNone:
          break;
      }
      flight.events.push_back(ev);
    }
    const Value* metrics = fl->find("metrics");
    if (metrics != nullptr && metrics->kind == Value::Kind::kObject) {
      flight.has_metrics = true;
      flight.metrics = jsonin::to_json(*metrics);
    }
  }
  return artifact;
}

}  // namespace canely::check
