#include "check/harness.hpp"

#include <functional>
#include <memory>

#include "can/bus.hpp"
#include "canely/mid.hpp"
#include "canely/node.hpp"
#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "sim/hash.hpp"

namespace canely::check {
namespace {

/// Wraps the script injector to also record the per-attempt targeting map
/// (probe runs).  judge() sees every non-collision attempt exactly once,
/// in wire order, with the full TxContext — including the global attempt
/// index the scripts key on.
class LoggingInjector final : public can::FaultInjector {
 public:
  /// Returns the canonical state hash of the whole universe, evaluated at
  /// the instant of the call (judge-time, pre-verdict).
  using Sampler = std::function<std::uint64_t()>;

  LoggingInjector(FaultScript script, bool want_log)
      : inner_{std::move(script)}, want_log_{want_log} {}

  void set_sampler(Sampler sampler, sim::Time until) {
    sampler_ = std::move(sampler);
    sample_until_ = until;
  }

  can::Verdict judge(const can::TxContext& ctx) override {
    if (want_log_) {
      TxLogEntry e;
      e.tx_index = ctx.tx_index;
      e.transmitter = ctx.transmitter;
      e.co_transmitters = ctx.co_transmitters;
      e.receivers = ctx.receivers;
      e.remote = ctx.frame.remote;
      e.start = ctx.start;
      if (const auto mid = Mid::decode(ctx.frame); mid.has_value()) {
        e.msg_type = static_cast<std::uint8_t>(mid->type);
        e.mid_node = mid->node;
      }
      log_.push_back(e);
    }
    // Sample before the verdict: the hash captures the state a fault
    // targeting this attempt would act on.
    if (sampler_ && ctx.start < sample_until_) {
      samples_.push_back(StateSample{ctx.tx_index, sampler_()});
    }
    return inner_.judge(ctx);
  }

  bool take_pending_crash(can::NodeId& node) {
    return inner_.take_pending_crash(node);
  }

  [[nodiscard]] std::vector<TxLogEntry>& log() { return log_; }
  [[nodiscard]] std::vector<StateSample>& samples() { return samples_; }

 private:
  ScriptInjector inner_;
  bool want_log_;
  Sampler sampler_;
  sim::Time sample_until_{sim::Time::max()};
  std::vector<TxLogEntry> log_;
  std::vector<StateSample> samples_;
};

std::uint64_t hash_record(std::uint64_t h, const can::TxRecord& rec) {
  h = fnv1a(h, static_cast<std::uint64_t>(rec.start.to_ns()));
  h = fnv1a(h, static_cast<std::uint64_t>(rec.end.to_ns()));
  h = fnv1a(h, rec.frame.id);
  h = fnv1a(h, (static_cast<std::uint64_t>(rec.frame.format) << 16) |
                   (static_cast<std::uint64_t>(rec.frame.remote) << 8) |
                   rec.frame.dlc);
  for (std::uint8_t byte : rec.frame.payload()) h = fnv1a(h, byte);
  h = fnv1a(h, rec.transmitter);
  h = fnv1a(h, rec.co_transmitters.bits());
  h = fnv1a(h, rec.delivered_to.bits());
  h = fnv1a(h, static_cast<std::uint64_t>(rec.outcome));
  h = fnv1a(h, rec.bits);
  h = fnv1a(h, static_cast<std::uint64_t>(rec.attempt));
  return h;
}

}  // namespace

ScenarioConfig ScenarioConfig::membership(std::size_t n, bool fda_on) {
  ScenarioConfig cfg;
  cfg.n = n;
  cfg.params.n = n;
  cfg.params.heartbeat_period = sim::Time::ms(8);
  cfg.params.tx_delay_bound = sim::Time::ms(2);
  cfg.params.membership_cycle = sim::Time::ms(20);
  cfg.params.rha_timeout = sim::Time::ms(5);
  cfg.params.join_wait = sim::Time::ms(60);
  cfg.params.fda_agreement = fda_on;
  cfg.duration = sim::Time::ms(160);
  return cfg;
}

sim::Time ScenarioConfig::detection_bound() const {
  return params.heartbeat_period + 2 * params.tx_delay_bound +
         params.fd_skew_quantum * static_cast<std::int64_t>(n) +
         latency_margin;
}

sim::Time ScenarioConfig::converge_by() const {
  return params.join_wait + params.membership_cycle + params.rha_timeout +
         latency_margin;
}

sim::Time ScenarioConfig::expel_grace() const {
  return detection_bound() + params.membership_cycle + params.rha_timeout +
         latency_margin;
}

RunResult run_checked(const ScenarioConfig& cfg, const FaultScript& script,
                      bool want_tx_log, obs::Recorder* recorder) {
  RunOptions opts;
  opts.want_tx_log = want_tx_log;
  opts.recorder = recorder;
  return run_checked(cfg, script, opts);
}

RunResult run_checked(const ScenarioConfig& cfg, const FaultScript& script,
                      const RunOptions& opts) {
  const bool want_tx_log = opts.want_tx_log;
  obs::Recorder* recorder = opts.recorder;
  sim::Engine engine;
  can::BusConfig bus_cfg;
  bus_cfg.clustering = cfg.clustering;
  can::Bus bus{engine, bus_cfg};

  LoggingInjector injector{script, want_tx_log};
  bus.set_fault_injector(&injector);
  bus.set_recorder(recorder);

  // Per-worker arena: the whole node universe for this run comes out of
  // retained blocks, and teardown is one reverse finalizer sweep — the
  // second run on a campaign worker thread does no node mallocs at all.
  static thread_local sim::Arena arena;
  struct ArenaScope {
    sim::Arena& a;
    ~ArenaScope() { a.reset(); }
  } arena_scope{arena};  // declared after bus: nodes die before the bus

  std::vector<Node*> nodes;
  nodes.reserve(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) {
    nodes.push_back(arena.make<Node>(bus, static_cast<can::NodeId>(i),
                                     cfg.params, nullptr, recorder));
  }
  obs::Histogram* hist_detect =
      recorder != nullptr
          ? &recorder->metrics().histogram(
                "fd.detection_latency_us",
                {1'000, 2'000, 5'000, 10'000, 20'000, 50'000, 100'000,
                 200'000})
          : nullptr;

  // The monitor panel.
  FdaAgreementMonitor fda_mon;
  RhaAgreementMonitor rha_mon;
  ViewConsistencyMonitor view_mon{cfg.expel_grace(), cfg.converge_by()};
  FailSilenceMonitor silence_mon;
  DetectionLatencyMonitor latency_mon{cfg.detection_bound()};
  const std::array<Monitor*, 5> monitors{&fda_mon, &rha_mon, &view_mon,
                                         &silence_mon, &latency_mon};

  EndState end;
  end.nodes = can::NodeSet::first_n(cfg.n);
  end.settle = cfg.settle;

  RunResult result;

  // Wire the observation seams.  Protocol code keeps its own handler
  // slots; monitors ride the secondary observer slots.
  for (std::size_t i = 0; i < cfg.n; ++i) {
    const auto id = static_cast<can::NodeId>(i);
    Node& node = *nodes[i];
    node.fda().set_nty_observer([&, id](can::NodeId failed) {
      for (Monitor* m : monitors) m->on_fda_nty(id, failed, engine.now());
      if (hist_detect != nullptr && end.crashed.contains(failed)) {
        hist_detect->add((engine.now() - end.crash_time[failed]).to_us());
      }
    });
    node.rha().set_observer([&, id](RhaEvent e, can::NodeSet agreed) {
      if (e == RhaEvent::kEnd) {
        for (Monitor* m : monitors) m->on_rha_end(id, agreed, engine.now());
      }
    });
    node.membership().set_view_observer([&, id](can::NodeSet view) {
      for (Monitor* m : monitors) m->on_view_installed(id, view, engine.now());
      if (want_tx_log) {
        result.installs[id].push_back(ViewInstall{engine.now(), view});
      }
    });
  }

  if (opts.want_samples) {
    // Canonical state hash: fixed feed order — instant, bus, nodes 0..n-1,
    // the crash record the harness itself maintains, then the monitor
    // panel.  Everything the run's continuation depends on is in here;
    // each component documents its own exclusions.
    injector.set_sampler(
        [&]() {
          sim::StateHasher h;
          h.feed_time(engine.now());
          bus.hash_state(h);
          for (const Node* node : nodes) node->hash_state(h);
          h.feed(end.crashed.bits());
          for (can::NodeId c : end.crashed) h.feed_time(end.crash_time[c]);
          for (const Monitor* m : monitors) m->hash_state(h, cfg.n);
          return h.digest();
        },
        opts.sample_until);
  }

  std::uint64_t hash = kFnvOffset;
  bus.set_observer([&](const can::TxRecord& rec) {
    hash = hash_record(hash, rec);
    for (Monitor* m : monitors) m->on_tx(rec);
    // Scripted sender crash: end of the judged frame, delivery done, the
    // requeued retransmission still pending — crashing now withdraws it,
    // turning the inconsistent omission into an inconsistent *message*
    // omission (§6.1).
    can::NodeId victim;
    if (injector.take_pending_crash(victim) && victim < cfg.n &&
        !nodes[victim]->crashed()) {
      end.crashed.insert(victim);
      end.crash_time[victim] = engine.now();
      nodes[victim]->crash();
      for (Monitor* m : monitors) m->on_crash(victim, engine.now());
    }
  });

  for (auto& node : nodes) node->join();
  engine.run_until(cfg.duration);

  end.end = engine.now();
  for (std::size_t i = 0; i < cfg.n; ++i) {
    end.final_view[i] = nodes[i]->view();
    if (!nodes[i]->crashed() && nodes[i]->is_member()) {
      end.members_at_end.insert(static_cast<can::NodeId>(i));
    }
  }

  for (Monitor* m : monitors) m->finish(end, result.violations);
  if (recorder != nullptr) {
    obs::set_run_gauges(*recorder, engine.dispatched(),
                        bus.stats().bits_total, bus_cfg.bit_rate_bps,
                        cfg.duration);
  }
  result.trace_hash = hash;
  result.attempts = bus.stats().attempts;
  result.end = end.end;
  if (want_tx_log) result.tx_log = std::move(injector.log());
  if (opts.want_samples) result.samples = std::move(injector.samples());
  return result;
}

}  // namespace canely::check
