#pragma once
// Replayable counterexample artifacts.
//
// A shrunk counterexample is only worth anything if it can be re-executed
// later, elsewhere, byte-for-byte: the artifact JSON therefore carries the
// complete scenario parameterization, the fault script, the violated
// monitor, and the wire-trace hash of the violating run.  Replaying loads
// the artifact, rebuilds the identical run (the checked harness is a pure
// function of scenario + script), and verifies both that the recorded
// monitor still fires and that the wire trace hashes to the recorded
// value.
//
// Writing goes through campaign::Json (insertion-ordered, deterministic
// bytes).  Reading uses the checker's shared minimal JSON reader
// (check/json_reader.hpp).
//
// Schema history: "canely-check-1" carried scenario + script + violation
// only; "canely-check-2" adds the optional flight-recorder payload (the
// violating run's obs::EventRing and metrics snapshot) so a
// counterexample ships with its own timeline — `check_explorer --replay
// --trace-out` re-exports it as Perfetto JSON without re-running
// anything.  Writing always emits v2; loading accepts both.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "check/fault_script.hpp"
#include "check/harness.hpp"
#include "obs/event.hpp"

namespace canely::check {

/// The violating run's observability state, archived inside the
/// artifact.  `events` is the ring contents oldest-first; the original
/// capacity and drop count come along because a ring reconstructed from
/// the surviving events cannot know how many fell out.
struct FlightRecording {
  bool present{false};
  std::size_t ring_capacity{0};
  std::uint64_t dropped{0};
  std::vector<obs::Event> events;
  bool has_metrics{false};
  campaign::Json metrics;  ///< MetricsRegistry::snapshot_json(true)
};

struct Artifact {
  ScenarioConfig scenario;
  FaultScript script;
  std::string monitor;          ///< the invariant the script violates
  std::uint64_t trace_hash{0};  ///< wire-trace hash of the violating run
  Violation violation;          ///< as recorded when the artifact was made
  FlightRecording flight;       ///< absent when loaded from a v1 artifact
};

/// Serialize (deterministic bytes).
[[nodiscard]] campaign::Json artifact_json(const Artifact& artifact);

/// Write `artifact` to `path`; throws std::runtime_error on I/O failure.
void write_artifact(const std::string& path, const Artifact& artifact);

/// Parse an artifact file; throws std::runtime_error on I/O or syntax or
/// schema errors.
[[nodiscard]] Artifact load_artifact(const std::string& path);

}  // namespace canely::check
