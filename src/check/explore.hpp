#pragma once
// Systematic fault-space exploration.
//
// The explorer enumerates fault placements against a scenario and runs
// each through the checked harness, in parallel, with byte-identical
// aggregate output for any thread count (the campaign runner's
// determinism contract: placements are enumerated up front in a fixed
// order, each run is a pure function of its placement, and results are
// collected by index).
//
// Depth 1 (exhaustive): a probe run maps the fault-free attempt timeline;
// every placement is (attempt within the fault window) x (non-empty
// victim subset of that attempt's receivers) x (sender crashes before
// retransmission, or not).  With FDA enabled this space must be violation
// free — that is the checker's reproduction of the paper's §6.1/§6.2
// claim.
//
// Depth 2 (targeted, for ablations): second-order placements layer a
// fault on frames that only exist *because of* the first fault — chiefly
// the FDA failure-sign a first crash provokes.  Bases (single-fault
// placements with a singleton victim and a sender crash) are examined in
// deterministic order; for each, a probe run discovers the new FDA
// attempts and a batch enumerates victim subsets on them.  The search
// stops after the first base whose batch violates (lowest base, then
// lowest in-batch index — deterministic for any thread count).
//
// Record mode (exploration at scale): turning on `exhaustive`, `dedup`,
// sharding, or a frontier path switches the explorer to its scale engine.
// Every placement becomes a *unit* with shard-computable coordinates
// (u, j) — at depth 1, u is the global placement index and j is 0; at
// depth 2, u is the global base index and j the in-base placement index —
// and the exploration is driven unit-by-unit in coordinate order:
//
//  * Equivalence dedup: each unit is keyed by the canonical state hash at
//    the judge-time of the attempt its (last) fault targets, combined
//    with the fault itself.  Equal key means equal post-injection
//    evolution (the harness is deterministic and monitors render
//    verdicts only in finish()), so only the first unit of a class is
//    simulated; the rest inherit its verdict as dedup skips.
//  * Prefix-replay caching: all units of a base share the base's probe
//    run (tx log + judge-time samples).  Probes live in an LRU
//    PrefixCache and are computed once per base instead of once per
//    placement — the dominant saving over naive re-run-from-zero.
//  * Sharding + frontier: shard i of N owns units with u % N == i; a
//    frontier file checkpoints verdict records every `checkpoint_every`
//    units (atomic rename), supports resume after a kill, and merges
//    with the other shards into a file byte-identical to an unsharded
//    run's (check/frontier.hpp).
//  * Depth-2 exhaustive: with `exhaustive`, bases are the *complete*
//    depth-1 placement enumeration and the seconds per base target every
//    post-base attempt in the window (budget-capped, drops reported) —
//    no early stop at the first violating base.
//
// Record mode replaces the legacy trace-hash aggregate with an
// order-sensitive fold over the verdict records, invariant across thread
// count, shard split, and dedup on/off.  Random walks are a legacy-mode
// feature and are not run in record mode.
//
// Seeded random walks complement enumeration with multi-fault scripts
// drawn from per-walk forked seeds (campaign::fork_seed), so walk w is
// reproducible in isolation.

#include <cstdint>
#include <string>
#include <vector>

#include "check/fault_script.hpp"
#include "check/harness.hpp"

namespace canely::obs {
class Telemetry;
}  // namespace canely::obs

namespace canely::check {

struct ExploreConfig {
  ScenarioConfig scenario{ScenarioConfig::membership()};
  std::size_t threads{0};       ///< 0 = hardware concurrency (repo-wide
                                ///< convention, same as campaign::Runner)
  std::uint64_t seed{42};       ///< master seed for random walks
  int depth{1};                 ///< 1 = exhaustive single fault, 2 = targeted
  std::size_t random_walks{0};  ///< extra multi-fault random scripts

  // Budget caps (0 = unlimited).  Capped explorations report what they
  // dropped via the dropped_* counters and mark the result partial.
  std::size_t max_frames{0};       ///< attempts targeted (depth 1)
  std::size_t max_victim_sets{0};  ///< victim subsets per attempt
  std::size_t max_bases{0};        ///< depth 2: cap bases examined (0 = all)
  std::size_t depth2_targets{6};   ///< depth 2: new attempts per base

  /// Only attempts starting before this are targeted, so consequences
  /// surface inside the run.  zero() = duration - expel_grace - settle.
  sim::Time fault_window{sim::Time::zero()};

  // -- exploration at scale (record mode; see header comment) --------------

  /// Depth 2: full base x second cross product, no early stop.
  bool exhaustive{false};
  /// Skip units whose equivalence class has already been simulated.
  bool dedup{false};
  /// This shard owns units with u % shard_count == shard_index.
  std::size_t shard_index{0};
  std::size_t shard_count{1};
  /// Persistent frontier file: checkpointed during the run, resumed from
  /// when it already exists, final on completion.  Empty = none.
  std::string frontier_path{};
  /// Units per processing chunk (= frontier checkpoint interval).
  std::size_t checkpoint_every{16};
  /// Also checkpoint the frontier once this much wall time has elapsed
  /// since the last write, so slow cells (deep scenarios, few units per
  /// second) still leave resumable state behind.  0 = unit-count trigger
  /// only.  Wall time comes from the telemetry handle's clock when one is
  /// attached, else obs::default_wall_clock(); frontier *content* stays a
  /// pure function of the records either way.
  double checkpoint_secs{0};
  /// Live campaign telemetry (non-owning, may be null).  Purely
  /// observational — campaign output is byte-identical with it on or off.
  obs::Telemetry* telemetry{nullptr};
  /// Test hook: stop (checkpoint, complete=false) once this many units
  /// are done.  0 = run to completion.
  std::size_t stop_after_units{0};
  /// LRU capacity of the prefix-replay cache (probe runs retained).
  std::size_t prefix_cache_cells{64};
  /// Tripwire: re-execute every k-th dedup skip and compare its verdict
  /// against the class representative's (0 = off).  Mismatches count in
  /// ExploreResult::dedup_mismatches — any nonzero value means the state
  /// hash missed behavior-determining state.
  std::size_t dedup_verify_every{0};
  /// Bench comparator (perf_core `check_explore_naive`): cost out the
  /// naive re-run-from-zero strategy — every unit re-simulates every
  /// proper prefix of its script from t=0 (the tx-log probes a stateless
  /// worker needs to locate each fault's target attempt) before running
  /// the unit itself, nothing is shared across units, and dedup is
  /// ignored.  Records and aggregate stay byte-identical to the scale
  /// engine's; only the cost differs.
  bool naive_rerun{false};
};

struct FoundViolation {
  std::size_t run_index{};  ///< position in the deterministic run order
  FaultScript script;
  Violation violation;      ///< first violation of that run
};

struct ExploreResult {
  std::size_t placements{0};        ///< enumerated placements executed
  std::size_t runs{0};              ///< total checked runs (incl. probes)
  std::size_t frames_in_window{0};  ///< attempts eligible for targeting
  std::size_t frames_targeted{0};   ///< attempts actually targeted
  std::vector<FoundViolation> violations;  ///< in run order
  std::uint64_t aggregate_hash{0};  ///< digest of every run's outcome, in
                                    ///< enumeration order — the thread-
                                    ///< invariance anchor (record mode:
                                    ///< fold_records over the frontier)

  // -- record-mode accounting ----------------------------------------------
  std::size_t probe_runs{0};         ///< prefix probes executed
  std::size_t prefix_cache_hits{0};  ///< probes served from the cache
  std::size_t dedup_classes{0};      ///< distinct equivalence classes
  std::size_t dedup_skips{0};        ///< units resolved without simulation
  std::size_t dedup_verified{0};     ///< tripwire re-executions
  std::size_t dedup_mismatches{0};   ///< tripwire disagreements (expect 0)
  std::size_t dropped_frames{0};     ///< in-window attempts over max_frames
  std::size_t dropped_victim_sets{0};///< subsets over max_victim_sets
  std::size_t dropped_bases{0};      ///< depth-2 bases over max_bases
  std::size_t dropped_targets{0};    ///< depth-2 seconds over depth2_targets
  bool partial{false};   ///< any budget cap truncated the space
  bool resumed{false};   ///< continued from an existing frontier file
};

[[nodiscard]] ExploreResult explore(const ExploreConfig& cfg);

}  // namespace canely::check
