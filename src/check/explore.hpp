#pragma once
// Systematic fault-space exploration.
//
// The explorer enumerates fault placements against a scenario and runs
// each through the checked harness, in parallel, with byte-identical
// aggregate output for any thread count (the campaign runner's
// determinism contract: placements are enumerated up front in a fixed
// order, each run is a pure function of its placement, and results are
// collected by index).
//
// Depth 1 (exhaustive): a probe run maps the fault-free attempt timeline;
// every placement is (attempt within the fault window) x (non-empty
// victim subset of that attempt's receivers) x (sender crashes before
// retransmission, or not).  With FDA enabled this space must be violation
// free — that is the checker's reproduction of the paper's §6.1/§6.2
// claim.
//
// Depth 2 (targeted, for ablations): second-order placements layer a
// fault on frames that only exist *because of* the first fault — chiefly
// the FDA failure-sign a first crash provokes.  Bases (single-fault
// placements with a singleton victim and a sender crash) are examined in
// deterministic order; for each, a probe run discovers the new FDA
// attempts and a batch enumerates victim subsets on them.  The search
// stops after the first base whose batch violates (lowest base, then
// lowest in-batch index — deterministic for any thread count).
//
// Seeded random walks complement enumeration with multi-fault scripts
// drawn from per-walk forked seeds (campaign::fork_seed), so walk w is
// reproducible in isolation.

#include <cstdint>
#include <vector>

#include "check/fault_script.hpp"
#include "check/harness.hpp"

namespace canely::check {

struct ExploreConfig {
  ScenarioConfig scenario{ScenarioConfig::membership()};
  std::size_t threads{1};       ///< 0 = hardware concurrency
  std::uint64_t seed{42};       ///< master seed for random walks
  int depth{1};                 ///< 1 = exhaustive single fault, 2 = targeted
  std::size_t random_walks{0};  ///< extra multi-fault random scripts

  // Budget caps (0 = unlimited).  Capped explorations report what they
  // dropped via ExploreResult::frames_in_window vs frames_targeted.
  std::size_t max_frames{0};       ///< attempts targeted (depth 1)
  std::size_t max_victim_sets{0};  ///< victim subsets per attempt
  std::size_t max_bases{0};        ///< depth 2: cap bases examined (0 = all)
  std::size_t depth2_targets{6};   ///< depth 2: new attempts per base

  /// Only attempts starting before this are targeted, so consequences
  /// surface inside the run.  zero() = duration - expel_grace - settle.
  sim::Time fault_window{sim::Time::zero()};
};

struct FoundViolation {
  std::size_t run_index{};  ///< position in the deterministic run order
  FaultScript script;
  Violation violation;      ///< first violation of that run
};

struct ExploreResult {
  std::size_t placements{0};        ///< enumerated placements executed
  std::size_t runs{0};              ///< total checked runs (incl. probes)
  std::size_t frames_in_window{0};  ///< attempts eligible for targeting
  std::size_t frames_targeted{0};   ///< attempts actually targeted
  std::vector<FoundViolation> violations;  ///< in run order
  std::uint64_t aggregate_hash{0};  ///< digest of every run's outcome, in
                                    ///< enumeration order — the thread-
                                    ///< invariance anchor
};

[[nodiscard]] ExploreResult explore(const ExploreConfig& cfg);

}  // namespace canely::check
