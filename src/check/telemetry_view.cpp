#include "check/telemetry_view.hpp"

#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "check/frontier.hpp"
#include "check/json_reader.hpp"

namespace canely::check {
namespace {

using jsonin::Value;
constexpr const char* kWhat = "telemetry JSONL";

}  // namespace

std::uint64_t TelemetrySnapshot::units_done() const {
  return counter(obs::TelemetryCounter::kUnitsJudged) +
         counter(obs::TelemetryCounter::kDedupSkips) +
         counter(obs::TelemetryCounter::kUnitsResumed);
}

TelemetrySnapshot parse_telemetry_line(const std::string& line) {
  const Value root = jsonin::parse(line, kWhat);
  if (root.kind != Value::Kind::kObject) {
    throw std::runtime_error("telemetry JSONL: line is not an object");
  }
  if (jsonin::require(root, "schema", Value::Kind::kString, kWhat).s !=
      "canely-telemetry-1") {
    throw std::runtime_error("telemetry JSONL: unknown schema");
  }
  TelemetrySnapshot snap;
  snap.seq = static_cast<std::uint64_t>(jsonin::get_int(root, "seq", kWhat));
  snap.t_ms =
      static_cast<std::uint64_t>(jsonin::get_int(root, "t_ms", kWhat));
  snap.label = jsonin::require(root, "label", Value::Kind::kString, kWhat).s;
  snap.shard =
      static_cast<std::size_t>(jsonin::get_int(root, "shard", kWhat));
  snap.shards =
      static_cast<std::size_t>(jsonin::get_int(root, "shards", kWhat));
  snap.total_units = static_cast<std::uint64_t>(
      jsonin::get_int(root, "total_units", kWhat));
  if (const Value* frontier = root.find("frontier");
      frontier != nullptr && frontier->kind == Value::Kind::kString) {
    snap.frontier = frontier->s;
  }

  const Value& counters =
      jsonin::require(root, "counters", Value::Kind::kObject, kWhat);
  for (std::size_t c = 0; c < obs::kTelemetryCounters; ++c) {
    snap.counters[c] = static_cast<std::uint64_t>(jsonin::get_int(
        counters, obs::to_string(static_cast<obs::TelemetryCounter>(c)),
        kWhat));
  }
  const Value& stages =
      jsonin::require(root, "stages", Value::Kind::kObject, kWhat);
  for (std::size_t s = 0; s < obs::kTelemetryStages; ++s) {
    const Value& stage = jsonin::require(
        stages, obs::to_string(static_cast<obs::TelemetryStage>(s)),
        Value::Kind::kObject, kWhat);
    snap.stage_count[s] =
        static_cast<std::uint64_t>(jsonin::get_int(stage, "count", kWhat));
    snap.stage_sum_us[s] =
        static_cast<std::uint64_t>(jsonin::get_int(stage, "sum_us", kWhat));
  }
  snap.dropped_lines = static_cast<std::uint64_t>(
      jsonin::get_int(root, "dropped_lines", kWhat));
  return snap;
}

std::vector<TelemetrySnapshot> load_telemetry(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    throw std::runtime_error("telemetry JSONL: cannot open " + path);
  }
  std::vector<TelemetrySnapshot> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out.push_back(parse_telemetry_line(line));
  }
  return out;
}

double ShardStatus::rate() const {
  if (have_prev && last.t_ms > prev.t_ms) {
    const std::uint64_t du = last.units_done() - prev.units_done();
    return static_cast<double>(du) * 1000.0 /
           static_cast<double>(last.t_ms - prev.t_ms);
  }
  if (last.t_ms > 0) {
    return static_cast<double>(last.units_done()) * 1000.0 /
           static_cast<double>(last.t_ms);
  }
  return 0;
}

ShardStatus load_shard_status(const std::string& path) {
  const std::vector<TelemetrySnapshot> lines = load_telemetry(path);
  if (lines.empty()) {
    throw std::runtime_error("telemetry JSONL: " + path + " has no lines");
  }
  ShardStatus status;
  status.path = path;
  status.last = lines.back();
  if (lines.size() >= 2) {
    status.have_prev = true;
    status.prev = lines[lines.size() - 2];
  }
  if (!status.last.frontier.empty()) {
    try {
      const FrontierFile f = load_frontier(status.last.frontier);
      status.frontier_loaded = true;
      status.frontier_complete = f.complete;
      status.frontier_partial = f.partial;
      status.frontier_records = f.records.size();
    } catch (const std::exception&) {
      // A frontier mid-rename or not yet written is normal while live.
    }
  }
  return status;
}

StatusSummary summarize(const std::vector<ShardStatus>& shards) {
  StatusSummary sum;
  std::uint64_t dedup_skips = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const ShardStatus& sh : shards) {
    const TelemetrySnapshot& last = sh.last;
    sum.done += last.units_done();
    sum.total += last.total_units;
    sum.rate += sh.rate();
    sum.runs += last.counter(obs::TelemetryCounter::kRuns);
    sum.violations += last.counter(obs::TelemetryCounter::kViolations);
    sum.dropped_lines += last.dropped_lines;
    dedup_skips += last.counter(obs::TelemetryCounter::kDedupSkips);
    hits += last.counter(obs::TelemetryCounter::kPrefixHits);
    misses += last.counter(obs::TelemetryCounter::kPrefixMisses);
    if (sh.frontier_complete) ++sum.shards_complete;
  }
  if (sum.done > 0) {
    sum.dedup_pct =
        100.0 * static_cast<double>(dedup_skips) /
        static_cast<double>(sum.done);
  }
  if (hits + misses > 0) {
    sum.cache_pct = 100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses);
  }
  if (sum.total > sum.done && sum.rate > 0) {
    sum.eta_sec =
        static_cast<double>(sum.total - sum.done) / sum.rate;
  } else if (sum.total != 0 && sum.done >= sum.total) {
    sum.eta_sec = 0;
  }
  return sum;
}

namespace {

campaign::Json shard_json(const ShardStatus& sh) {
  const TelemetrySnapshot& last = sh.last;
  campaign::Json j = campaign::Json::object();
  j.set("file", campaign::Json::string(sh.path));
  j.set("label", campaign::Json::string(last.label));
  j.set("shard",
        campaign::Json::integer(static_cast<std::int64_t>(last.shard)));
  j.set("shards",
        campaign::Json::integer(static_cast<std::int64_t>(last.shards)));
  j.set("seq", campaign::Json::integer(static_cast<std::int64_t>(last.seq)));
  j.set("t_ms",
        campaign::Json::integer(static_cast<std::int64_t>(last.t_ms)));
  j.set("done", campaign::Json::integer(
                    static_cast<std::int64_t>(last.units_done())));
  j.set("total_units", campaign::Json::integer(
                           static_cast<std::int64_t>(last.total_units)));
  j.set("rate", campaign::Json::number(sh.rate()));
  campaign::Json counters = campaign::Json::object();
  for (std::size_t c = 0; c < obs::kTelemetryCounters; ++c) {
    counters.set(obs::to_string(static_cast<obs::TelemetryCounter>(c)),
                 campaign::Json::integer(
                     static_cast<std::int64_t>(last.counters[c])));
  }
  j.set("counters", std::move(counters));
  j.set("dropped_lines", campaign::Json::integer(static_cast<std::int64_t>(
                             last.dropped_lines)));
  if (!last.frontier.empty()) {
    campaign::Json f = campaign::Json::object();
    f.set("file", campaign::Json::string(last.frontier));
    f.set("loaded", campaign::Json::boolean(sh.frontier_loaded));
    if (sh.frontier_loaded) {
      f.set("records", campaign::Json::integer(static_cast<std::int64_t>(
                           sh.frontier_records)));
      f.set("complete", campaign::Json::boolean(sh.frontier_complete));
      f.set("partial", campaign::Json::boolean(sh.frontier_partial));
    }
    j.set("frontier", std::move(f));
  }
  return j;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v);
  return buf;
}

std::string eta_text(double eta_sec) {
  if (eta_sec < 0) return "?";
  char buf[32];
  if (eta_sec >= 3600) {
    std::snprintf(buf, sizeof buf, "%.1fh", eta_sec / 3600.0);
  } else if (eta_sec >= 60) {
    std::snprintf(buf, sizeof buf, "%.1fm", eta_sec / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", eta_sec);
  }
  return buf;
}

}  // namespace

campaign::Json status_json(const std::vector<ShardStatus>& shards) {
  campaign::Json root = campaign::Json::object();
  root.set("schema", campaign::Json::string("canely-top-1"));
  campaign::Json arr = campaign::Json::array();
  for (const ShardStatus& sh : shards) arr.push(shard_json(sh));
  root.set("shards", std::move(arr));

  const StatusSummary sum = summarize(shards);
  campaign::Json total = campaign::Json::object();
  total.set("done",
            campaign::Json::integer(static_cast<std::int64_t>(sum.done)));
  total.set("total",
            campaign::Json::integer(static_cast<std::int64_t>(sum.total)));
  total.set("rate", campaign::Json::number(sum.rate));
  total.set("dedup_pct", campaign::Json::number(sum.dedup_pct));
  total.set("cache_pct", campaign::Json::number(sum.cache_pct));
  total.set("eta_sec", campaign::Json::number(sum.eta_sec));
  total.set("runs",
            campaign::Json::integer(static_cast<std::int64_t>(sum.runs)));
  total.set("violations", campaign::Json::integer(
                              static_cast<std::int64_t>(sum.violations)));
  total.set("dropped_lines", campaign::Json::integer(static_cast<std::int64_t>(
                                 sum.dropped_lines)));
  total.set("shards_complete",
            campaign::Json::integer(
                static_cast<std::int64_t>(sum.shards_complete)));
  root.set("total", std::move(total));
  return root;
}

std::string render_status_text(const std::vector<ShardStatus>& shards) {
  std::string out;
  char buf[256];
  for (const ShardStatus& sh : shards) {
    const TelemetrySnapshot& last = sh.last;
    const std::uint64_t done = last.units_done();
    std::snprintf(
        buf, sizeof buf, "%-10s shard %zu/%zu  %10llu", last.label.c_str(),
        last.shard, last.shards,
        static_cast<unsigned long long>(done));
    out += buf;
    if (last.total_units != 0) {
      std::snprintf(
          buf, sizeof buf, "/%llu (%s)",
          static_cast<unsigned long long>(last.total_units),
          pct(100.0 * static_cast<double>(done) /
              static_cast<double>(last.total_units))
              .c_str());
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "  %8.1f u/s", sh.rate());
    out += buf;
    const std::uint64_t skips =
        last.counter(obs::TelemetryCounter::kDedupSkips);
    if (done > 0) {
      out += "  dedup " + pct(100.0 * static_cast<double>(skips) /
                              static_cast<double>(done));
    }
    const std::uint64_t hits =
        last.counter(obs::TelemetryCounter::kPrefixHits);
    const std::uint64_t misses =
        last.counter(obs::TelemetryCounter::kPrefixMisses);
    if (hits + misses > 0) {
      out += "  cache " + pct(100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses));
    }
    const std::uint64_t violations =
        last.counter(obs::TelemetryCounter::kViolations);
    if (violations != 0) {
      out += "  VIOLATIONS " + std::to_string(violations);
    }
    if (last.dropped_lines != 0) {
      out += "  dropped_lines " + std::to_string(last.dropped_lines);
    }
    if (sh.frontier_loaded) {
      out += sh.frontier_complete ? "  [frontier complete]"
                                  : "  [frontier ckpt " +
                                        std::to_string(sh.frontier_records) +
                                        "]";
    }
    out += "\n";
  }
  const StatusSummary sum = summarize(shards);
  std::snprintf(buf, sizeof buf, "%-10s %zu shard(s)   %10llu", "TOTAL",
                shards.size(), static_cast<unsigned long long>(sum.done));
  out += buf;
  if (sum.total != 0) {
    // Appended in two steps: `"/" + std::to_string(...)` trips a GCC 12
    // -Wrestrict false positive in the libstdc++ operator+ under -O2.
    out += '/';
    out += std::to_string(sum.total);
  }
  std::snprintf(buf, sizeof buf, "  %8.1f u/s  eta %s", sum.rate,
                eta_text(sum.eta_sec).c_str());
  out += buf;
  if (sum.violations != 0) {
    out += "  VIOLATIONS " + std::to_string(sum.violations);
  }
  out += "\n";
  return out;
}

}  // namespace canely::check
