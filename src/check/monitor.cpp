#include "check/monitor.hpp"

#include <algorithm>

#include "sim/trace.hpp"

namespace canely::check {

bool is_infix(const std::vector<can::NodeSet>& a,
              const std::vector<can::NodeSet>& b) {
  if (a.size() > b.size()) return is_infix(b, a);
  if (a.empty()) return true;
  for (std::size_t off = 0; off + a.size() <= b.size(); ++off) {
    bool match = true;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i] != b[off + i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

namespace {

std::string seq_str(const std::vector<can::NodeSet>& seq) {
  std::string out = "[";
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) out += " ";
    out += sim::cat_str(seq[i]);
  }
  return out + "]";
}

void hash_string(sim::StateHasher& h, const std::string& s) {
  h.feed(s.size());
  for (char c : s) h.feed(static_cast<std::uint8_t>(c));
}

}  // namespace

// ---------------------------------------------------------------- FDA

void FdaAgreementMonitor::on_fda_nty(can::NodeId at, can::NodeId failed,
                                     sim::Time when) {
  Delivery& d = first_[at][failed];
  if (!d.delivered) {
    d.delivered = true;
    d.when = when;
  }
}

void FdaAgreementMonitor::finish(const EndState& end,
                                 std::vector<Violation>& out) {
  const can::NodeSet correct = end.nodes.minus(end.crashed);
  for (can::NodeId failed : end.nodes) {
    // Validity: a delivered failure-sign names a node that crashed first.
    for (can::NodeId at : correct) {
      const Delivery& d = first_[at][failed];
      if (!d.delivered) continue;
      if (!end.crashed.contains(failed) ||
          end.crash_time[failed] >= d.when) {
        out.push_back(Violation{
            std::string{name()}, d.when,
            sim::cat_str("n", int{at}, " delivered failure-sign for node ",
                         int{failed}, " which had not crashed")});
      }
    }
    // Agreement: earliest correct-node delivery obligates every correct
    // node — unless it arose inside the settle window, where the
    // laggards' deadline lies beyond the end of the run.
    sim::Time earliest = sim::Time::max();
    for (can::NodeId at : correct) {
      const Delivery& d = first_[at][failed];
      if (d.delivered && d.when < earliest) earliest = d.when;
    }
    if (earliest == sim::Time::max() || earliest > end.end - end.settle) {
      continue;
    }
    for (can::NodeId at : correct) {
      if (!first_[at][failed].delivered) {
        out.push_back(Violation{
            std::string{name()}, end.end,
            sim::cat_str("failure-sign for node ", int{failed},
                         " delivered at some correct node (first ",
                         earliest, ") but never at n", int{at})});
      }
    }
  }
}

void FdaAgreementMonitor::hash_state(sim::StateHasher& h,
                                     std::size_t n) const {
  // Full first-delivery table for the n scenario nodes: finish() reads
  // exactly these coordinates plus the EndState (which the harness feeds
  // separately).
  for (std::size_t at = 0; at < n; ++at) {
    for (std::size_t failed = 0; failed < n; ++failed) {
      const Delivery& d = first_[at][failed];
      h.feed_bool(d.delivered);
      if (d.delivered) h.feed_time(d.when);
    }
  }
}

// ---------------------------------------------------------------- RHA

void RhaAgreementMonitor::on_rha_end(can::NodeId at, can::NodeSet agreed,
                                     sim::Time /*when*/) {
  seqs_[at].push_back(agreed);
}

void RhaAgreementMonitor::finish(const EndState& end,
                                 std::vector<Violation>& out) {
  const can::NodeSet correct = end.nodes.minus(end.crashed);
  for (can::NodeId a : correct) {
    for (can::NodeId b : correct) {
      if (b <= a) continue;
      if (seqs_[a].empty() || seqs_[b].empty()) continue;
      if (!is_infix(seqs_[a], seqs_[b])) {
        out.push_back(Violation{
            std::string{name()}, end.end,
            sim::cat_str("agreed-RHV sequences diverge: n", int{a}, "=",
                         seq_str(seqs_[a]), " n", int{b}, "=",
                         seq_str(seqs_[b]))});
      }
    }
  }
}

void RhaAgreementMonitor::hash_state(sim::StateHasher& h,
                                     std::size_t n) const {
  for (std::size_t at = 0; at < n; ++at) {
    h.feed(seqs_[at].size());
    for (can::NodeSet agreed : seqs_[at]) h.feed(agreed.bits());
  }
}

// --------------------------------------------------------- membership

void ViewConsistencyMonitor::on_view_installed(can::NodeId at,
                                               can::NodeSet view,
                                               sim::Time when) {
  installs_[at].push_back(Install{when, view});
}

void ViewConsistencyMonitor::finish(const EndState& end,
                                    std::vector<Violation>& out) {
  const can::NodeSet correct = end.nodes.minus(end.crashed);
  const can::NodeSet members = end.members_at_end.intersected(correct);

  // Install-sequence agreement (common-prefix rule): once the join phase
  // has settled into an agreed view (converge_by), surviving members
  // must walk through the very same succession of views.  The only
  // tolerated difference is a tail of installs the shorter node had
  // still in flight when the run ended — each surplus install must fall
  // inside the settle window.  A node that skips a view the others
  // installed mid-run (or installs one they never do) diverged.  Installs
  // before converge_by are exempt (bootstrap histories legitimately
  // differ, Fig. 9 s18-s19), and the comparison binds current members
  // only: a node expelled while alive stops cycling, and membership
  // agreement no longer applies to it.
  std::array<std::vector<Install>, can::kMaxNodes> settledseq{};
  for (can::NodeId m : members) {
    for (const Install& in : installs_[m]) {
      if (in.when >= converge_by_) settledseq[m].push_back(in);
    }
  }
  const auto seq_str = [&settledseq](can::NodeId node) {
    std::string text = "[";
    for (std::size_t i = 0; i < settledseq[node].size(); ++i) {
      if (i != 0) text += " ";
      text += sim::cat_str(settledseq[node][i].view);
    }
    return text + "]";
  };
  const sim::Time settled = end.end - end.settle;
  for (can::NodeId a : members) {
    for (can::NodeId b : members) {
      if (b <= a) continue;
      const auto& sa = settledseq[a];
      const auto& sb = settledseq[b];
      const auto& shorter = sa.size() <= sb.size() ? sa : sb;
      const auto& longer = sa.size() <= sb.size() ? sb : sa;
      bool prefix = true;
      for (std::size_t i = 0; i < shorter.size(); ++i) {
        if (shorter[i].view != longer[i].view) {
          prefix = false;
          break;
        }
      }
      if (!prefix) {
        out.push_back(Violation{
            std::string{name()}, end.end,
            sim::cat_str("view sequences diverge: n", int{a}, "=",
                         seq_str(a), " n", int{b}, "=", seq_str(b))});
        continue;
      }
      for (std::size_t i = shorter.size(); i < longer.size(); ++i) {
        if (longer[i].when <= settled) {
          out.push_back(Violation{
              std::string{name()}, longer[i].when,
              sim::cat_str("view ", longer[i].view, " installed at only one "
                           "of n", int{a}, "=", seq_str(a), " n", int{b},
                           "=", seq_str(b), " well before the end")});
          break;
        }
      }
    }
  }

  // Final-view agreement among surviving members.
  bool have_ref = false;
  can::NodeId ref_node = 0;
  can::NodeSet ref;
  for (can::NodeId m : members) {
    if (!have_ref) {
      have_ref = true;
      ref_node = m;
      ref = end.final_view[m];
    } else if (end.final_view[m] != ref) {
      out.push_back(Violation{
          std::string{name()}, end.end,
          sim::cat_str("final views differ: n", int{ref_node}, "=", ref,
                       " n", int{m}, "=", end.final_view[m])});
    }
  }

  // Expulsion: a node crashed long enough ago (detection + one cycle +
  // agreement, all inside the run) must be out of every survivor's view.
  for (can::NodeId c : end.crashed) {
    if (end.crash_time[c] > end.end - expel_grace_) continue;
    for (can::NodeId m : members) {
      if (end.final_view[m].contains(c)) {
        out.push_back(Violation{
            std::string{name()}, end.end,
            sim::cat_str("n", int{m}, " still has node ", int{c},
                         " (crashed at ", end.crash_time[c],
                         ") in its final view ", end.final_view[m])});
      }
    }
  }
}

void ViewConsistencyMonitor::hash_state(sim::StateHasher& h,
                                        std::size_t n) const {
  // Full install history (time + view); expel_grace_/converge_by_ are
  // immutable scenario configuration and not fed.
  for (std::size_t at = 0; at < n; ++at) {
    h.feed(installs_[at].size());
    for (const Install& in : installs_[at]) {
      h.feed_time(in.when);
      h.feed(in.view.bits());
    }
  }
}

// --------------------------------------------------------- fail-silence

void FailSilenceMonitor::on_crash(can::NodeId node, sim::Time when) {
  if (!crashed_.contains(node)) {
    crashed_.insert(node);
    crash_time_[node] = when;
  }
}

void FailSilenceMonitor::on_tx(const can::TxRecord& rec) {
  for (can::NodeId co : rec.co_transmitters) {
    if (crashed_.contains(co) && rec.start > crash_time_[co]) {
      pending_.push_back(Violation{
          std::string{name()}, rec.start,
          sim::cat_str("frame id=", rec.frame.id, " co-transmitted by node ",
                       int{co}, " after its crash at ", crash_time_[co])});
    }
  }
}

void FailSilenceMonitor::finish(const EndState& /*end*/,
                                std::vector<Violation>& out) {
  out.insert(out.end(), pending_.begin(), pending_.end());
}

void FailSilenceMonitor::hash_state(sim::StateHasher& h,
                                    std::size_t n) const {
  h.feed(crashed_.bits());
  for (std::size_t c = 0; c < n; ++c) {
    if (crashed_.contains(static_cast<can::NodeId>(c))) {
      h.feed_time(crash_time_[c]);
    }
  }
  // Violations buffered for finish(): already-observed babbling is part
  // of the run's verdict, so it must separate equivalence classes.
  h.feed(pending_.size());
  for (const Violation& v : pending_) {
    hash_string(h, v.monitor);
    h.feed_time(v.when);
    hash_string(h, v.detail);
  }
}

// ---------------------------------------------------- detection latency

void DetectionLatencyMonitor::on_fda_nty(can::NodeId at, can::NodeId failed,
                                         sim::Time when) {
  deliveries_.push_back(Delivery{at, failed, when});
}

void DetectionLatencyMonitor::on_view_installed(can::NodeId at,
                                                can::NodeSet /*view*/,
                                                sim::Time when) {
  if (!has_install_[at]) {
    has_install_[at] = true;
    first_install_[at] = when;
  }
}

void DetectionLatencyMonitor::finish(const EndState& end,
                                     std::vector<Violation>& out) {
  for (const Delivery& d : deliveries_) {
    if (!end.crashed.contains(d.failed)) continue;  // validity is FDA's job
    // Surveillance of a node starts no later than the observer's first
    // view install (msh-data-proc); a crash before that is detectable
    // only from then on.
    if (!has_install_[d.at]) continue;
    const sim::Time ref = std::max(end.crash_time[d.failed],
                                   first_install_[d.at]);
    if (d.when > ref + bound_) {
      out.push_back(Violation{
          std::string{name()}, d.when,
          sim::cat_str("n", int{d.at}, " detected crash of node ",
                       int{d.failed}, " only at ", d.when, " (crash ",
                       end.crash_time[d.failed], ", bound ", bound_, ")")});
    }
  }
}

void DetectionLatencyMonitor::hash_state(sim::StateHasher& h,
                                         std::size_t n) const {
  h.feed(deliveries_.size());
  for (const Delivery& d : deliveries_) {
    h.feed(d.at);
    h.feed(d.failed);
    h.feed_time(d.when);
  }
  for (std::size_t at = 0; at < n; ++at) {
    h.feed_bool(has_install_[at]);
    if (has_install_[at]) h.feed_time(first_install_[at]);
  }
}

}  // namespace canely::check
