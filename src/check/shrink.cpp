#include "check/shrink.hpp"

#include <optional>

namespace canely::check {
namespace {

/// Runs the script; returns the first violation of `monitor`, if any.
std::optional<Violation> violates(const ScenarioConfig& cfg,
                                  const FaultScript& script,
                                  const std::string& monitor,
                                  std::size_t& probes) {
  ++probes;
  const RunResult r = run_checked(cfg, script);
  for (const Violation& v : r.violations) {
    if (v.monitor == monitor) return v;
  }
  return std::nullopt;
}

}  // namespace

ShrinkResult shrink(const ScenarioConfig& cfg, FaultScript script,
                    const std::string& monitor) {
  ShrinkResult result;
  auto current = violates(cfg, script, monitor, result.probes);
  if (!current.has_value()) {
    result.script = std::move(script);
    return result;  // not a reproducer; nothing to shrink
  }

  bool reduced = true;
  while (reduced) {
    reduced = false;

    // (a) drop whole events.
    for (std::size_t i = 0; i < script.size(); ++i) {
      FaultScript candidate = script;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (auto v = violates(cfg, candidate, monitor, result.probes)) {
        script = std::move(candidate);
        current = std::move(v);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    // (b) weaken sender crashes.
    for (std::size_t i = 0; i < script.size(); ++i) {
      if (!script[i].crash_sender) continue;
      FaultScript candidate = script;
      candidate[i].crash_sender = false;
      if (auto v = violates(cfg, candidate, monitor, result.probes)) {
        script = std::move(candidate);
        current = std::move(v);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;

    // (c) drop individual victims.
    for (std::size_t i = 0; i < script.size() && !reduced; ++i) {
      if (script[i].op != FaultOp::kOmit || script[i].victims.size() <= 1) {
        continue;
      }
      for (can::NodeId victim : script[i].victims) {
        FaultScript candidate = script;
        candidate[i].victims.erase(victim);
        if (auto v = violates(cfg, candidate, monitor, result.probes)) {
          script = std::move(candidate);
          current = std::move(v);
          reduced = true;
          break;
        }
      }
    }
  }

  // Certify: no single event is removable.
  result.locally_minimal = true;
  for (std::size_t i = 0; i < script.size(); ++i) {
    FaultScript candidate = script;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (violates(cfg, candidate, monitor, result.probes).has_value()) {
      result.locally_minimal = false;  // greedy missed a reduction
      break;
    }
  }

  result.script = std::move(script);
  result.violation = std::move(*current);
  return result;
}

}  // namespace canely::check
