#pragma once
// Checked-run harness: build one simulation universe (engine, bus, n-node
// CANELy stack), apply a fault script, watch it with the full monitor
// panel, and report what happened.
//
// A checked run is a pure function of (ScenarioConfig, FaultScript): the
// engine is deterministic, the script keys on the bus's global attempt
// counter, and the harness applies scripted sender-crashes at exact frame
// boundaries.  RunResult::trace_hash digests every completed transmission
// attempt (timing, wire content, outcome, delivery set), so two runs are
// byte-equivalent on the wire iff their hashes match — the anchor for the
// replay-determinism tests and the explorer's thread-count invariance.

#include <array>
#include <cstdint>
#include <vector>

#include "can/types.hpp"
#include "canely/params.hpp"
#include "check/fault_script.hpp"
#include "check/monitor.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"

namespace canely::check {

/// The scenario a checked run simulates: n nodes, all joining at t=0,
/// running the full stack until `duration`.
struct ScenarioConfig {
  std::size_t n{8};
  Params params{};
  bool clustering{true};
  sim::Time duration{sim::Time::ms(160)};
  /// Agreement obligations first arising within `settle` of the end are
  /// exempt (their deadline falls beyond the observation window).
  sim::Time settle{sim::Time::ms(15)};
  /// Slack added to the analytical detection bound (queuing jitter from
  /// injected retransmissions).
  sim::Time latency_margin{sim::Time::ms(2)};

  /// The n=8 membership scenario the explorer enumerates: compressed
  /// timing (Tm=20ms, Th=8ms, join_wait=60ms) so a 160ms run covers the
  /// join phase plus several membership cycles.
  [[nodiscard]] static ScenarioConfig membership(std::size_t n = 8,
                                                 bool fda_on = true);

  /// Detection-latency bound: Th + 2*Ttd + n*skew + margin.
  [[nodiscard]] sim::Time detection_bound() const;
  /// Instant by which the join phase has settled into an agreed view:
  /// join_wait + one membership cycle + RHA termination + margin.  View
  /// agreement is only enforced from here on — before it, nodes may
  /// legitimately hold different bootstrap histories (Fig. 9, s18-s19).
  [[nodiscard]] sim::Time converge_by() const;
  /// Expulsion grace: detection bound + one membership cycle + Trha +
  /// margin — a node crashed longer ago than this must be expelled.
  [[nodiscard]] sim::Time expel_grace() const;
};

/// One transmission attempt as the fault injector saw it (the explorer's
/// targeting map: which attempts exist, who sends them, who can be a
/// victim).
struct TxLogEntry {
  std::uint64_t tx_index{};
  can::NodeId transmitter{};
  can::NodeSet co_transmitters;
  can::NodeSet receivers;
  std::uint8_t msg_type{0xFF};  ///< canely::MsgType, 0xFF = non-CANELy
  can::NodeId mid_node{};       ///< node field of the decoded mid
  bool remote{false};
  sim::Time start{};
};

/// One membership view installation, as seen by the view observer.
struct ViewInstall {
  sim::Time when{};
  can::NodeSet view;
};

/// Canonical whole-universe state hash sampled at the judge-time of one
/// transmission attempt (before any verdict for that attempt applies).
/// Two runs in the same state at the attempt a fault targets evolve
/// identically under the same fault — the explorer's equivalence dedup
/// keys on this.
struct StateSample {
  std::uint64_t tx_index{};
  std::uint64_t state_hash{};
};

/// Knobs for run_checked beyond the scenario and the script.
struct RunOptions {
  /// Collect the per-attempt targeting map (probe runs).
  bool want_tx_log{false};
  /// Sample the canonical state hash at every attempt's judge-time.
  bool want_samples{false};
  /// Stop sampling at this instant (attempts starting later are not
  /// hashed) — bounds probe cost to the fault window under scrutiny.
  sim::Time sample_until{sim::Time::max()};
  /// Structured observability feed (typed events + metrics); used to
  /// attach a Perfetto timeline to counterexample artifacts.
  obs::Recorder* recorder{nullptr};
};

/// Everything a checked run reports.
struct RunResult {
  std::vector<Violation> violations;
  std::uint64_t trace_hash{0};
  std::vector<TxLogEntry> tx_log;  ///< only when requested
  /// Per-node view-install history; only when the tx log is requested.
  std::array<std::vector<ViewInstall>, can::kMaxNodes> installs{};
  /// Judge-time state hashes; only when RunOptions::want_samples.
  std::vector<StateSample> samples;
  std::uint64_t attempts{0};  ///< bus attempts completed
  sim::Time end{};
};

/// Execute one checked run.
[[nodiscard]] RunResult run_checked(const ScenarioConfig& cfg,
                                    const FaultScript& script,
                                    const RunOptions& opts);

/// Convenience overload matching the pre-RunOptions signature.
[[nodiscard]] RunResult run_checked(const ScenarioConfig& cfg,
                                    const FaultScript& script,
                                    bool want_tx_log = false,
                                    obs::Recorder* recorder = nullptr);

/// FNV-1a accumulator used for the trace hash (exposed for aggregate
/// hashing in the explorer).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t hash,
                                            std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

}  // namespace canely::check
