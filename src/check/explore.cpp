#include "check/explore.hpp"

#include <algorithm>
#include <exception>
#include <map>
#include <span>
#include <thread>
#include <utility>

#include "campaign/grid.hpp"
#include "campaign/runner.hpp"
#include "canely/mid.hpp"
#include "check/frontier.hpp"
#include "check/prefix_cache.hpp"
#include "obs/telemetry.hpp"
#include "sim/rng.hpp"

namespace canely::check {
namespace {

/// Per-run outcome, reduced to what the aggregate needs.  Default-
/// constructible placeholder for the campaign runner's result slots.
struct Cell {
  std::uint64_t trace_hash{0};
  bool violated{false};
  Violation first;
};

Cell run_cell(const ScenarioConfig& scenario, const FaultScript& script) {
  RunResult r = run_checked(scenario, script);
  Cell c;
  c.trace_hash = r.trace_hash;
  if (!r.violations.empty()) {
    c.violated = true;
    c.first = r.violations.front();
  }
  return c;
}

std::uint64_t hash_cell(std::uint64_t h, const Cell& c) {
  h = fnv1a(h, c.trace_hash);
  h = fnv1a(h, c.violated ? 1 : 0);
  if (c.violated) {
    for (char ch : c.first.monitor) {
      h = fnv1a(h, static_cast<std::uint8_t>(ch));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(c.first.when.to_ns()));
  }
  return h;
}

/// The ascending list of member ids of `set` (mask bit i of a victim-
/// subset index maps to the i-th receiver in id order).
std::vector<can::NodeId> members(can::NodeSet set) {
  std::vector<can::NodeId> out;
  for (can::NodeId id : set) out.push_back(id);
  return out;
}

can::NodeSet subset_from_mask(const std::vector<can::NodeId>& pool,
                              std::uint64_t mask) {
  can::NodeSet set;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if ((mask >> i) & 1) set.insert(pool[i]);
  }
  return set;
}

/// Enumerate depth-1 placements for one attempt: every non-empty victim
/// subset (capped; the overflow is counted into `dropped`), with and
/// without a sender crash.
void placements_for(const TxLogEntry& entry, std::size_t max_victim_sets,
                    std::vector<FaultScript>& out, std::size_t& dropped) {
  const std::vector<can::NodeId> pool = members(entry.receivers);
  if (pool.empty()) return;
  const std::uint64_t subsets = (1ULL << pool.size()) - 1;
  std::uint64_t used = 0;
  for (std::uint64_t mask = 1; mask <= subsets; ++mask) {
    if (max_victim_sets != 0 && used >= max_victim_sets) {
      dropped += static_cast<std::size_t>(subsets - mask + 1);
      break;
    }
    ++used;
    for (const bool crash : {false, true}) {
      FaultEvent ev;
      ev.tx = entry.tx_index;
      ev.op = FaultOp::kOmit;
      ev.victims = subset_from_mask(pool, mask);
      ev.crash_sender = crash;
      out.push_back(FaultScript{ev});
    }
  }
}

/// Execute `scripts` through the campaign runner (index-slotted results:
/// aggregate order is enumeration order for any thread count).  With
/// `naive_rerun` every worker first re-simulates every proper prefix of
/// its script from t=0 (tx log only, result discarded) — the probes a
/// stateless re-run-from-zero explorer pays to locate each fault's
/// target attempt before it can run the placement itself.
std::vector<Cell> run_batch(const ScenarioConfig& scenario,
                            const std::vector<FaultScript>& scripts,
                            std::size_t threads, std::uint64_t seed,
                            bool naive_rerun = false,
                            obs::Telemetry* telemetry = nullptr) {
  campaign::Grid grid;
  std::vector<double> axis(scripts.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    axis[i] = static_cast<double>(i);
  }
  grid.axis("placement", std::move(axis)).repeats(1).master_seed(seed);
  campaign::Runner runner{threads == 0 ? 0 : threads};
  runner.set_observer(telemetry);  // counts runs + judge durations; null ok
  auto outcome = runner.run<Cell>(grid, [&](const campaign::RunSpec& spec) {
    if (naive_rerun) {
      FaultScript prefix;
      RunOptions opts;
      opts.want_tx_log = true;
      for (const FaultEvent& ev : scripts[spec.index]) {
        (void)run_checked(scenario, prefix, opts);
        prefix.push_back(ev);
      }
    }
    return run_cell(scenario, scripts[spec.index]);
  });
  return std::move(outcome.results);
}

void fold_batch(const std::vector<FaultScript>& scripts,
                const std::vector<Cell>& cells, std::size_t index_base,
                ExploreResult& result,
                obs::Telemetry* telemetry = nullptr) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.aggregate_hash = hash_cell(result.aggregate_hash, cells[i]);
    if (cells[i].violated) {
      result.violations.push_back(
          FoundViolation{index_base + i, scripts[i], cells[i].first});
      obs::telemetry_add(telemetry, obs::TelemetryCounter::kViolations);
    }
  }
  obs::telemetry_add(telemetry, obs::TelemetryCounter::kUnitsJudged,
                     cells.size());
  result.placements += cells.size();
  result.runs += cells.size();
}

FaultScript random_script(sim::Rng& rng,
                          const std::vector<TxLogEntry>& window) {
  FaultScript script;
  const std::size_t n_events = 1 + rng.below(3);
  for (std::size_t e = 0; e < n_events; ++e) {
    const TxLogEntry& entry = window[rng.below(window.size())];
    FaultEvent ev;
    ev.tx = entry.tx_index;
    ev.crash_sender = rng.below(2) == 1;
    if (rng.below(8) == 0) {
      ev.op = FaultOp::kError;
    } else {
      ev.op = FaultOp::kOmit;
      const std::vector<can::NodeId> pool = members(entry.receivers);
      if (pool.empty()) continue;
      can::NodeSet victims;
      for (can::NodeId id : pool) {
        if (rng.below(2) == 1) victims.insert(id);
      }
      if (victims.empty()) victims.insert(pool[rng.below(pool.size())]);
      ev.victims = victims;
    }
    script.push_back(ev);
  }
  return script;
}

sim::Time window_end_for(const ExploreConfig& cfg) {
  return cfg.fault_window > sim::Time::zero()
             ? cfg.fault_window
             : cfg.scenario.duration - cfg.scenario.expel_grace() -
                   cfg.scenario.settle;
}

// ----------------------------------------------------------- record mode

/// Judge-time state hash of the attempt `tx`, from a probe's samples
/// (sorted by tx order).  Targets are selected to start inside the
/// sampling window, so the sample exists; a sentinel keeps a missing one
/// deterministic anyway.
std::uint64_t sample_state(std::span<const StateSample> samples,
                           std::uint64_t tx) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), tx,
      [](const StateSample& s, std::uint64_t t) { return s.tx_index < t; });
  if (it == samples.end() || it->tx_index != tx) return 0;
  return it->state_hash;
}

/// Equivalence-class key of a unit: the canonical universe state at the
/// judge-time of the attempt its last fault targets, combined with that
/// fault's action.  The target's tx index itself is deliberately absent:
/// the index only selects *when* the script fires, and once it has fired
/// (the script is exhausted) the index never influences the run again —
/// equal state plus equal action means equal continuation.
std::uint64_t unit_key(std::uint64_t state, const FaultEvent& last) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, state);
  h = fnv1a(h, last.victims.bits());
  h = fnv1a(h, static_cast<std::uint64_t>(last.op));
  h = fnv1a(h, last.crash_sender ? 1 : 0);
  return h;
}

/// One enumerated unit: shard-computable coordinates, class key, and the
/// full fault script that executes it.
struct Unit {
  std::uint64_t u{};
  std::uint64_t j{};
  std::uint64_t key{};
  FaultScript script;
};

struct ClassOutcome {
  bool violated{false};
  Violation first;
};

/// The exploration-at-scale engine (see explore.hpp header comment).
/// Units stream through in (u, j) order; chunks of `checkpoint_every` are
/// keyed sequentially, executed in parallel (class representatives only
/// when dedup is on), materialized into frontier records, and
/// checkpointed.
class RecordExplorer {
 public:
  explicit RecordExplorer(const ExploreConfig& cfg)
      : cfg_{cfg},
        tel_{cfg.telemetry},
        dedup_{cfg.dedup && !cfg.naive_rerun},
        shard_count_{cfg.shard_count == 0 ? 1 : cfg.shard_count},
        window_end_{window_end_for(cfg)},
        cache_{cfg.prefix_cache_cells} {
    if (cfg_.checkpoint_secs > 0 && !cfg_.frontier_path.empty()) {
      checkpoint_period_ns_ = static_cast<std::uint64_t>(
          cfg_.checkpoint_secs * 1'000'000'000.0);
      last_checkpoint_ns_ = wall_ns();
    }
  }

  ExploreResult run() {
    fingerprint_ = fingerprint();
    resume();

    // Fault-free probe: the attempt timeline every enumeration starts
    // from (and the depth-1 prefix).
    const PrefixProbe* base0 = probe(FaultScript{});
    std::vector<TxLogEntry> window;
    for (const TxLogEntry& e : base0->tx_log) {
      if (e.start < window_end_ && !e.receivers.empty()) {
        window.push_back(e);
      }
    }
    result_.frames_in_window = window.size();
    if (cfg_.max_frames != 0 && window.size() > cfg_.max_frames) {
      result_.dropped_frames = window.size() - cfg_.max_frames;
      window.resize(cfg_.max_frames);
      result_.partial = true;
    }
    result_.frames_targeted = window.size();

    // The depth-1 placement enumeration doubles as the depth-2 base list.
    std::vector<FaultScript> placements;
    for (const TxLogEntry& entry : window) {
      placements_for(entry, cfg_.max_victim_sets, placements,
                     result_.dropped_victim_sets);
    }

    if (cfg_.depth <= 1) {
      if (tel_ != nullptr) {
        // Depth 1 knows its unit count exactly: one unit per owned
        // placement.
        std::uint64_t mine = 0;
        for (std::uint64_t u = 0; u < placements.size(); ++u) {
          if (u % shard_count_ == cfg_.shard_index) ++mine;
        }
        tel_->set_total_units(mine);
      }
      for (std::uint64_t u = 0; u < placements.size() && !stopped_; ++u) {
        if (u % shard_count_ != cfg_.shard_index) continue;
        const FaultEvent& ev = placements[u].front();
        Unit unit;
        unit.u = u;
        unit.j = 0;
        unit.key = unit_key(sample_state(base0->samples, ev.tx), ev);
        unit.script = placements[u];
        push_unit(std::move(unit));
      }
    } else {
      if (cfg_.max_bases != 0 && placements.size() > cfg_.max_bases) {
        result_.dropped_bases = placements.size() - cfg_.max_bases;
        placements.resize(cfg_.max_bases);
        result_.partial = true;
      }
      std::uint64_t my_bases = 0;
      for (std::uint64_t u = 0; u < placements.size(); ++u) {
        if (u % shard_count_ == cfg_.shard_index) ++my_bases;
      }
      std::uint64_t done_bases = 0;
      for (std::uint64_t u = 0; u < placements.size() && !stopped_; ++u) {
        if (u % shard_count_ != cfg_.shard_index) continue;
        process_base(u, placements[u]);
        ++done_bases;
        if (tel_ != nullptr && done_bases != 0) {
          // Depth 2 reveals its unit space base by base; extrapolate the
          // ETA hint from the per-base average so far.
          tel_->set_total_units(enumerated_ * my_bases / done_bases);
        }
      }
    }
    if (result_.dropped_victim_sets != 0) result_.partial = true;

    flush();
    if (!cfg_.frontier_path.empty()) {
      write_checkpoint(/*complete=*/!stopped_);
    }

    result_.placements = records_.size();
    result_.aggregate_hash = fold_records(records_);
    result_.dedup_classes = classes_.size();
    result_.prefix_cache_hits = cache_.stats().hits;
    return std::move(result_);
  }

 private:
  std::uint64_t fingerprint() const {
    const ScenarioConfig& s = cfg_.scenario;
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, s.n);
    h = fnv1a(h, s.clustering ? 1 : 0);
    h = fnv1a(h, s.params.fda_agreement ? 1 : 0);
    h = fnv1a(h, s.params.skip_idle_cycles ? 1 : 0);
    h = fnv1a(h, static_cast<std::uint64_t>(s.params.omission_degree_k));
    h = fnv1a(h, static_cast<std::uint64_t>(s.params.inconsistent_degree_j));
    for (const sim::Time t :
         {s.params.heartbeat_period, s.params.tx_delay_bound,
          s.params.membership_cycle, s.params.rha_timeout,
          s.params.join_wait, s.params.fd_skew_quantum, s.duration,
          s.settle, s.latency_margin, window_end_}) {
      h = fnv1a(h, static_cast<std::uint64_t>(t.to_ns()));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(cfg_.depth));
    h = fnv1a(h, cfg_.exhaustive ? 1 : 0);
    h = fnv1a(h, cfg_.max_frames);
    h = fnv1a(h, cfg_.max_victim_sets);
    h = fnv1a(h, cfg_.max_bases);
    h = fnv1a(h, cfg_.depth2_targets);
    return h;
  }

  void resume() {
    if (cfg_.frontier_path.empty()) return;
    FrontierFile prior;
    try {
      prior = load_frontier(cfg_.frontier_path);
    } catch (const std::exception&) {
      return;  // no usable frontier: start fresh
    }
    if (prior.fingerprint != fingerprint_ ||
        prior.shard_index != cfg_.shard_index ||
        prior.shard_count != shard_count_) {
      return;  // different exploration: start fresh, overwrite on write
    }
    records_ = std::move(prior.records);
    resume_cursor_ = prior.cursor;
    result_.resumed = true;
    obs::telemetry_add(tel_, obs::TelemetryCounter::kUnitsResumed,
                       records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const FrontierRecord& rec = records_[i];
      if (dedup_ && classes_.find(rec.key) == classes_.end()) {
        classes_.emplace(rec.key, ClassOutcome{rec.violated, rec.violation});
      }
      if (rec.violated) {
        result_.violations.push_back(
            FoundViolation{i, rec.script, rec.violation});
      }
    }
  }

  /// Probe run for a prefix script, via the LRU cache.  The returned view
  /// stays valid until the next probe of a *different* prefix at cache
  /// capacity — callers consume it before probing anything else.
  const PrefixProbe* probe(const FaultScript& prefix) {
    const std::uint64_t key = hash_script(prefix);
    if (const PrefixProbe* hit = cache_.find(key)) {
      obs::telemetry_add(tel_, obs::TelemetryCounter::kPrefixHits);
      return hit;
    }
    obs::telemetry_add(tel_, obs::TelemetryCounter::kPrefixMisses);
    obs::telemetry_add(tel_, obs::TelemetryCounter::kRuns);
    RunOptions opts;
    opts.want_tx_log = true;
    opts.want_samples = true;
    opts.sample_until = window_end_;
    const obs::StageTimer timer{tel_, obs::TelemetryStage::kReplay};
    const RunResult r = run_checked(cfg_.scenario, prefix, opts);
    ++result_.runs;
    ++result_.probe_runs;
    return cache_.insert(key, r.tx_log, r.samples);
  }

  /// Enumerate and push every second-fault unit of one base, in
  /// (target, victim mask, crash) order.
  void process_base(std::uint64_t u, const FaultScript& base) {
    const PrefixProbe* p = probe(base);
    const std::uint64_t base_tx = base.back().tx;
    std::vector<TxLogEntry> targets;
    for (const TxLogEntry& e : p->tx_log) {
      if (e.tx_index <= base_tx || e.start >= window_end_ ||
          e.receivers.empty()) {
        continue;
      }
      if (cfg_.depth2_targets != 0 &&
          targets.size() >= cfg_.depth2_targets) {
        ++result_.dropped_targets;
        result_.partial = true;
        continue;
      }
      targets.push_back(e);
    }
    std::uint64_t j = 0;
    for (const TxLogEntry& target : targets) {
      if (stopped_) return;
      const std::uint64_t state = sample_state(p->samples, target.tx_index);
      const std::vector<can::NodeId> pool = members(target.receivers);
      const std::uint64_t subsets = (1ULL << pool.size()) - 1;
      std::uint64_t used = 0;
      for (std::uint64_t mask = 1; mask <= subsets && !stopped_; ++mask) {
        if (cfg_.max_victim_sets != 0 && used >= cfg_.max_victim_sets) {
          result_.dropped_victim_sets +=
              static_cast<std::size_t>(subsets - mask + 1);
          result_.partial = true;
          break;
        }
        ++used;
        for (const bool crash : {false, true}) {
          FaultEvent second;
          second.tx = target.tx_index;
          second.op = FaultOp::kOmit;
          second.victims = subset_from_mask(pool, mask);
          second.crash_sender = crash;
          Unit unit;
          unit.u = u;
          unit.j = j++;
          unit.key = unit_key(state, second);
          unit.script = base;
          unit.script.push_back(second);
          push_unit(std::move(unit));
        }
      }
    }
  }

  void push_unit(Unit unit) {
    if (enumerated_ < resume_cursor_) {
      ++enumerated_;  // already in the resumed records
      return;
    }
    ++enumerated_;
    pending_.push_back(std::move(unit));
    if (pending_.size() >= chunk_size()) flush();
  }

  [[nodiscard]] std::size_t chunk_size() const {
    // The chunk is the checkpoint granularity, and each chunk pays one
    // campaign-runner spin-up.  When nothing consumes checkpoints (no
    // frontier file, no stop hook) nothing caps the chunk, so take big
    // batches for parallel efficiency — record content is chunk-size
    // invariant (keying is sequential in unit order either way).
    if (cfg_.frontier_path.empty() && cfg_.stop_after_units == 0) return 1024;
    const std::size_t every =
        cfg_.checkpoint_every == 0 ? 16 : cfg_.checkpoint_every;
    if (checkpoint_period_ns_ != 0) {
      // Time-based checkpointing needs frequent flush boundaries to poll
      // the clock at; one parallel batch per flush keeps workers busy.
      const std::size_t threads = cfg_.threads == 0
                                      ? std::thread::hardware_concurrency()
                                      : cfg_.threads;
      return std::max<std::size_t>(1, std::min(every, threads));
    }
    return every;
  }

  /// Resolve one chunk: sequential keying picks the units to simulate
  /// (all of them with dedup off; the first of each unseen class with
  /// dedup on), a parallel batch executes them, and the records
  /// materialize in unit order — dups inherit their representative's
  /// verdict, which the determinism of the harness makes *the* verdict.
  void flush() {
    if (pending_.empty()) return;
    std::vector<std::size_t> to_run;
    std::map<std::uint64_t, std::size_t> claimed;
    {
      const obs::StageTimer timer{tel_, obs::TelemetryStage::kHash};
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Unit& unit = pending_[i];
        if (!dedup_) {
          to_run.push_back(i);
          continue;
        }
        if (classes_.find(unit.key) != classes_.end() ||
            claimed.find(unit.key) != claimed.end()) {
          continue;
        }
        claimed.emplace(unit.key, i);
        to_run.push_back(i);
      }
    }

    std::vector<FaultScript> scripts;
    scripts.reserve(to_run.size());
    for (const std::size_t idx : to_run) {
      scripts.push_back(pending_[idx].script);
    }
    const std::vector<Cell> cells =
        run_batch(cfg_.scenario, scripts, cfg_.threads, cfg_.seed,
                  cfg_.naive_rerun, tel_);
    result_.runs += cells.size();
    obs::telemetry_add(tel_, obs::TelemetryCounter::kUnitsJudged,
                       cells.size());
    if (cfg_.naive_rerun) {
      for (const FaultScript& s : scripts) {
        result_.runs += s.size();  // one probe per proper prefix
        result_.probe_runs += s.size();
      }
    }

    std::map<std::size_t, std::size_t> cell_of;
    for (std::size_t k = 0; k < to_run.size(); ++k) {
      cell_of.emplace(to_run[k], k);
      if (dedup_) {
        const Unit& unit = pending_[to_run[k]];
        classes_.emplace(unit.key,
                         ClassOutcome{cells[k].violated, cells[k].first});
      }
    }

    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const Unit& unit = pending_[i];
      ClassOutcome outcome;
      const auto cit = cell_of.find(i);
      if (cit != cell_of.end()) {
        outcome.violated = cells[cit->second].violated;
        outcome.first = cells[cit->second].first;
      } else {
        outcome = classes_.at(unit.key);
        ++result_.dedup_skips;
        obs::telemetry_add(tel_, obs::TelemetryCounter::kDedupSkips);
        verify_skip(unit, outcome);
      }
      FrontierRecord rec;
      rec.u = unit.u;
      rec.j = unit.j;
      rec.key = unit.key;
      rec.violated = outcome.violated;
      if (outcome.violated) {
        rec.violation = outcome.first;
        rec.script = unit.script;
        result_.violations.push_back(
            FoundViolation{records_.size(), unit.script, outcome.first});
        obs::telemetry_add(tel_, obs::TelemetryCounter::kViolations);
      }
      records_.push_back(std::move(rec));
    }
    units_since_checkpoint_ += pending_.size();
    pending_.clear();

    if (cfg_.stop_after_units != 0 &&
        records_.size() >= cfg_.stop_after_units) {
      stopped_ = true;
    }
    if (!cfg_.frontier_path.empty() && checkpoint_due()) {
      write_checkpoint(/*complete=*/false);
    }
  }

  /// Mid-run checkpoint policy.  Without a time trigger every flush
  /// checkpoints (chunk == checkpoint_every, the unit-count trigger).
  /// With `checkpoint_secs` set, chunks shrink so flushes land often and
  /// a write happens when either trigger fires — enough units done, or
  /// enough wall time gone — so slow cells still leave resumable state.
  [[nodiscard]] bool checkpoint_due() const {
    if (checkpoint_period_ns_ == 0) return true;
    if (stopped_) return true;
    if (units_since_checkpoint_ >=
        (cfg_.checkpoint_every == 0 ? 16 : cfg_.checkpoint_every)) {
      return true;
    }
    return wall_ns() - last_checkpoint_ns_ >= checkpoint_period_ns_;
  }

  void write_checkpoint(bool complete) {
    const obs::StageTimer timer{tel_, obs::TelemetryStage::kCheckpointIo};
    write_frontier(cfg_.frontier_path, snapshot(complete));
    obs::telemetry_add(tel_, obs::TelemetryCounter::kCheckpoints);
    units_since_checkpoint_ = 0;
    if (checkpoint_period_ns_ != 0) last_checkpoint_ns_ = wall_ns();
  }

  /// Wall time for the checkpoint timer only — never feeds a simulation
  /// (frontier *content* stays a pure function of the records).
  [[nodiscard]] std::uint64_t wall_ns() const {
    if (tel_ != nullptr) return tel_->now_ns();
    return static_cast<std::uint64_t>(
        obs::default_wall_clock().now().count());
  }

  /// Dedup tripwire: re-simulate every k-th skipped unit and compare its
  /// own verdict to the inherited one.  Any mismatch means the canonical
  /// state hash missed behavior-determining state.
  void verify_skip(const Unit& unit, const ClassOutcome& inherited) {
    if (cfg_.dedup_verify_every == 0) return;
    if (++verify_tick_ % cfg_.dedup_verify_every != 0) return;
    obs::telemetry_add(tel_, obs::TelemetryCounter::kRuns);
    const Cell own = run_cell(cfg_.scenario, unit.script);
    ++result_.runs;
    ++result_.dedup_verified;
    const bool agree =
        own.violated == inherited.violated &&
        (!own.violated || (own.first.monitor == inherited.first.monitor &&
                           own.first.when == inherited.first.when &&
                           own.first.detail == inherited.first.detail));
    if (!agree) ++result_.dedup_mismatches;
  }

  [[nodiscard]] FrontierFile snapshot(bool complete) const {
    FrontierFile f;
    f.fingerprint = fingerprint_;
    f.total = records_.size();
    f.shard_index = static_cast<std::uint32_t>(cfg_.shard_index);
    f.shard_count = static_cast<std::uint32_t>(shard_count_);
    f.cursor = records_.size();
    f.complete = complete;
    f.partial = result_.partial;
    f.records = records_;
    f.aggregate = fold_records(records_);
    return f;
  }

  const ExploreConfig& cfg_;
  obs::Telemetry* tel_;
  const bool dedup_;
  std::size_t shard_count_;
  sim::Time window_end_;
  PrefixCache cache_;
  std::uint64_t checkpoint_period_ns_{0};  ///< 0 = unit-count trigger only
  std::uint64_t last_checkpoint_ns_{0};
  std::size_t units_since_checkpoint_{0};
  ExploreResult result_;
  std::uint64_t fingerprint_{};
  std::uint64_t resume_cursor_{0};
  std::uint64_t enumerated_{0};
  std::uint64_t verify_tick_{0};
  bool stopped_{false};
  std::vector<Unit> pending_;
  std::vector<FrontierRecord> records_;
  std::map<std::uint64_t, ClassOutcome> classes_;
};

}  // namespace

ExploreResult explore(const ExploreConfig& cfg) {
  // Record mode: the scale engine owns dedup, sharding, frontiers, and
  // depth-2 exhaustive.  Everything else stays on the legacy paths,
  // byte-exactly.
  if (cfg.exhaustive || cfg.dedup || cfg.shard_count > 1 ||
      !cfg.frontier_path.empty() || cfg.stop_after_units != 0 ||
      cfg.naive_rerun) {
    return RecordExplorer{cfg}.run();
  }

  ExploreResult result;
  result.aggregate_hash = kFnvOffset;

  // Probe: map the fault-free attempt timeline.
  obs::telemetry_add(cfg.telemetry, obs::TelemetryCounter::kRuns);
  const RunResult probe = run_checked(cfg.scenario, {}, /*want_tx_log=*/true);
  ++result.runs;

  const sim::Time window_end = window_end_for(cfg);
  std::vector<TxLogEntry> window;
  for (const TxLogEntry& e : probe.tx_log) {
    if (e.start < window_end && !e.receivers.empty()) window.push_back(e);
  }
  result.frames_in_window = window.size();

  std::vector<TxLogEntry> targeted = window;
  if (cfg.max_frames != 0 && targeted.size() > cfg.max_frames) {
    result.dropped_frames = targeted.size() - cfg.max_frames;
    targeted.resize(cfg.max_frames);
    result.partial = true;
  }
  result.frames_targeted = targeted.size();

  if (cfg.depth <= 1) {
    std::vector<FaultScript> scripts;
    for (const TxLogEntry& entry : targeted) {
      placements_for(entry, cfg.max_victim_sets, scripts,
                     result.dropped_victim_sets);
    }
    const std::vector<Cell> cells =
        run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed,
                  /*naive_rerun=*/false, cfg.telemetry);
    fold_batch(scripts, cells, 0, result, cfg.telemetry);
  } else {
    // Depth 2: bases in deterministic order — life-sign attempts first
    // (an omitted ELS skews the victim's surveillance timer a whole Th
    // early, the precondition of the inconsistent-message-omission
    // counterexample), then the rest; attempt ascending, victim
    // ascending within each group.  Each base is probed for the FDA
    // attempts it provokes; the search stops after the first base whose
    // batch violates.
    std::vector<FaultScript> bases;
    const auto add_bases = [&](bool els_pass) {
      for (const TxLogEntry& entry : targeted) {
        const bool is_els =
            entry.msg_type == static_cast<std::uint8_t>(MsgType::kEls);
        if (is_els != els_pass) continue;
        for (can::NodeId victim : entry.receivers) {
          FaultEvent ev;
          ev.tx = entry.tx_index;
          ev.op = FaultOp::kOmit;
          ev.victims = can::NodeSet{victim};
          ev.crash_sender = true;
          bases.push_back(FaultScript{ev});
        }
      }
    };
    add_bases(/*els_pass=*/true);
    add_bases(/*els_pass=*/false);
    if (cfg.max_bases != 0 && bases.size() > cfg.max_bases) {
      result.dropped_bases = bases.size() - cfg.max_bases;
      bases.resize(cfg.max_bases);
      result.partial = true;
    }
    std::size_t index_base = 0;
    for (const FaultScript& base : bases) {
      obs::telemetry_add(cfg.telemetry, obs::TelemetryCounter::kRuns);
      const RunResult probe2 =
          run_checked(cfg.scenario, base, /*want_tx_log=*/true);
      ++result.runs;
      // New attempts the base fault provoked: FDA failure-signs after it.
      std::vector<const TxLogEntry*> fda_targets;
      for (const TxLogEntry& e : probe2.tx_log) {
        if (e.tx_index > base.front().tx &&
            e.msg_type == static_cast<std::uint8_t>(MsgType::kFda) &&
            !e.receivers.empty()) {
          if (fda_targets.size() >= cfg.depth2_targets) {
            ++result.dropped_targets;
            result.partial = true;
            continue;
          }
          fda_targets.push_back(&e);
        }
      }
      std::vector<FaultScript> scripts;
      for (const TxLogEntry* target : fda_targets) {
        const std::vector<can::NodeId> pool = members(target->receivers);
        const std::uint64_t subsets = (1ULL << pool.size()) - 1;
        std::uint64_t used = 0;
        for (std::uint64_t mask = 1; mask <= subsets; ++mask) {
          if (cfg.max_victim_sets != 0 && used >= cfg.max_victim_sets) {
            result.dropped_victim_sets +=
                static_cast<std::size_t>(subsets - mask + 1);
            result.partial = true;
            break;
          }
          ++used;
          FaultEvent second;
          second.tx = target->tx_index;
          second.op = FaultOp::kOmit;
          second.victims = subset_from_mask(pool, mask);
          second.crash_sender = true;  // the inconsistent-message-omission arm
          FaultScript script = base;
          script.push_back(second);
          scripts.push_back(std::move(script));
        }
      }
      const std::vector<Cell> cells =
          run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed,
                    /*naive_rerun=*/false, cfg.telemetry);
      const std::size_t before = result.violations.size();
      fold_batch(scripts, cells, index_base, result, cfg.telemetry);
      index_base += cells.size();
      if (result.violations.size() > before) break;
    }
  }

  // Seeded random walks, reproducible per walk index.
  if (cfg.random_walks > 0 && !window.empty()) {
    std::vector<FaultScript> scripts;
    scripts.reserve(cfg.random_walks);
    for (std::size_t w = 0; w < cfg.random_walks; ++w) {
      sim::Rng rng{campaign::fork_seed(cfg.seed, result.placements + w)};
      scripts.push_back(random_script(rng, window));
    }
    const std::size_t index_base = result.placements;
    const std::vector<Cell> cells =
        run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed,
                  /*naive_rerun=*/false, cfg.telemetry);
    fold_batch(scripts, cells, index_base, result, cfg.telemetry);
  }

  return result;
}

}  // namespace canely::check
