#include "check/explore.hpp"

#include <algorithm>

#include "campaign/grid.hpp"
#include "campaign/runner.hpp"
#include "canely/mid.hpp"
#include "sim/rng.hpp"

namespace canely::check {
namespace {

/// Per-run outcome, reduced to what the aggregate needs.  Default-
/// constructible placeholder for the campaign runner's result slots.
struct Cell {
  std::uint64_t trace_hash{0};
  bool violated{false};
  Violation first;
};

Cell run_cell(const ScenarioConfig& scenario, const FaultScript& script) {
  RunResult r = run_checked(scenario, script);
  Cell c;
  c.trace_hash = r.trace_hash;
  if (!r.violations.empty()) {
    c.violated = true;
    c.first = r.violations.front();
  }
  return c;
}

std::uint64_t hash_cell(std::uint64_t h, const Cell& c) {
  h = fnv1a(h, c.trace_hash);
  h = fnv1a(h, c.violated ? 1 : 0);
  if (c.violated) {
    for (char ch : c.first.monitor) {
      h = fnv1a(h, static_cast<std::uint8_t>(ch));
    }
    h = fnv1a(h, static_cast<std::uint64_t>(c.first.when.to_ns()));
  }
  return h;
}

/// The ascending list of member ids of `set` (mask bit i of a victim-
/// subset index maps to the i-th receiver in id order).
std::vector<can::NodeId> members(can::NodeSet set) {
  std::vector<can::NodeId> out;
  for (can::NodeId id : set) out.push_back(id);
  return out;
}

can::NodeSet subset_from_mask(const std::vector<can::NodeId>& pool,
                              std::uint64_t mask) {
  can::NodeSet set;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if ((mask >> i) & 1) set.insert(pool[i]);
  }
  return set;
}

/// Enumerate depth-1 placements for one attempt: every non-empty victim
/// subset (capped), with and without a sender crash.
void placements_for(const TxLogEntry& entry, std::size_t max_victim_sets,
                    std::vector<FaultScript>& out) {
  const std::vector<can::NodeId> pool = members(entry.receivers);
  if (pool.empty()) return;
  const std::uint64_t subsets = (1ULL << pool.size()) - 1;
  std::uint64_t used = 0;
  for (std::uint64_t mask = 1; mask <= subsets; ++mask) {
    if (max_victim_sets != 0 && used >= max_victim_sets) break;
    ++used;
    for (const bool crash : {false, true}) {
      FaultEvent ev;
      ev.tx = entry.tx_index;
      ev.op = FaultOp::kOmit;
      ev.victims = subset_from_mask(pool, mask);
      ev.crash_sender = crash;
      out.push_back(FaultScript{ev});
    }
  }
}

/// Execute `scripts` through the campaign runner (index-slotted results:
/// aggregate order is enumeration order for any thread count).
std::vector<Cell> run_batch(const ScenarioConfig& scenario,
                            const std::vector<FaultScript>& scripts,
                            std::size_t threads, std::uint64_t seed) {
  campaign::Grid grid;
  std::vector<double> axis(scripts.size());
  for (std::size_t i = 0; i < axis.size(); ++i) {
    axis[i] = static_cast<double>(i);
  }
  grid.axis("placement", std::move(axis)).repeats(1).master_seed(seed);
  campaign::Runner runner{threads == 0 ? 0 : threads};
  auto outcome = runner.run<Cell>(grid, [&](const campaign::RunSpec& spec) {
    return run_cell(scenario, scripts[spec.index]);
  });
  return std::move(outcome.results);
}

void fold_batch(const std::vector<FaultScript>& scripts,
                const std::vector<Cell>& cells, std::size_t index_base,
                ExploreResult& result) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    result.aggregate_hash = hash_cell(result.aggregate_hash, cells[i]);
    if (cells[i].violated) {
      result.violations.push_back(
          FoundViolation{index_base + i, scripts[i], cells[i].first});
    }
  }
  result.placements += cells.size();
  result.runs += cells.size();
}

FaultScript random_script(sim::Rng& rng,
                          const std::vector<TxLogEntry>& window) {
  FaultScript script;
  const std::size_t n_events = 1 + rng.below(3);
  for (std::size_t e = 0; e < n_events; ++e) {
    const TxLogEntry& entry = window[rng.below(window.size())];
    FaultEvent ev;
    ev.tx = entry.tx_index;
    ev.crash_sender = rng.below(2) == 1;
    if (rng.below(8) == 0) {
      ev.op = FaultOp::kError;
    } else {
      ev.op = FaultOp::kOmit;
      const std::vector<can::NodeId> pool = members(entry.receivers);
      if (pool.empty()) continue;
      can::NodeSet victims;
      for (can::NodeId id : pool) {
        if (rng.below(2) == 1) victims.insert(id);
      }
      if (victims.empty()) victims.insert(pool[rng.below(pool.size())]);
      ev.victims = victims;
    }
    script.push_back(ev);
  }
  return script;
}

}  // namespace

ExploreResult explore(const ExploreConfig& cfg) {
  ExploreResult result;
  result.aggregate_hash = kFnvOffset;

  // Probe: map the fault-free attempt timeline.
  const RunResult probe = run_checked(cfg.scenario, {}, /*want_tx_log=*/true);
  ++result.runs;

  const sim::Time window_end =
      cfg.fault_window > sim::Time::zero()
          ? cfg.fault_window
          : cfg.scenario.duration - cfg.scenario.expel_grace() -
                cfg.scenario.settle;
  std::vector<TxLogEntry> window;
  for (const TxLogEntry& e : probe.tx_log) {
    if (e.start < window_end && !e.receivers.empty()) window.push_back(e);
  }
  result.frames_in_window = window.size();

  std::vector<TxLogEntry> targeted = window;
  if (cfg.max_frames != 0 && targeted.size() > cfg.max_frames) {
    targeted.resize(cfg.max_frames);
  }
  result.frames_targeted = targeted.size();

  if (cfg.depth <= 1) {
    std::vector<FaultScript> scripts;
    for (const TxLogEntry& entry : targeted) {
      placements_for(entry, cfg.max_victim_sets, scripts);
    }
    const std::vector<Cell> cells =
        run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed);
    fold_batch(scripts, cells, 0, result);
  } else {
    // Depth 2: bases in deterministic order — life-sign attempts first
    // (an omitted ELS skews the victim's surveillance timer a whole Th
    // early, the precondition of the inconsistent-message-omission
    // counterexample), then the rest; attempt ascending, victim
    // ascending within each group.  Each base is probed for the FDA
    // attempts it provokes; the search stops after the first base whose
    // batch violates.
    std::vector<FaultScript> bases;
    const auto add_bases = [&](bool els_pass) {
      for (const TxLogEntry& entry : targeted) {
        const bool is_els =
            entry.msg_type == static_cast<std::uint8_t>(MsgType::kEls);
        if (is_els != els_pass) continue;
        for (can::NodeId victim : entry.receivers) {
          FaultEvent ev;
          ev.tx = entry.tx_index;
          ev.op = FaultOp::kOmit;
          ev.victims = can::NodeSet{victim};
          ev.crash_sender = true;
          bases.push_back(FaultScript{ev});
        }
      }
    };
    add_bases(/*els_pass=*/true);
    add_bases(/*els_pass=*/false);
    if (cfg.max_bases != 0 && bases.size() > cfg.max_bases) {
      bases.resize(cfg.max_bases);
    }
    std::size_t index_base = 0;
    for (const FaultScript& base : bases) {
      const RunResult probe2 =
          run_checked(cfg.scenario, base, /*want_tx_log=*/true);
      ++result.runs;
      // New attempts the base fault provoked: FDA failure-signs after it.
      std::vector<const TxLogEntry*> fda_targets;
      for (const TxLogEntry& e : probe2.tx_log) {
        if (e.tx_index > base.front().tx &&
            e.msg_type == static_cast<std::uint8_t>(MsgType::kFda) &&
            !e.receivers.empty()) {
          fda_targets.push_back(&e);
          if (fda_targets.size() >= cfg.depth2_targets) break;
        }
      }
      std::vector<FaultScript> scripts;
      for (const TxLogEntry* target : fda_targets) {
        const std::vector<can::NodeId> pool = members(target->receivers);
        const std::uint64_t subsets = (1ULL << pool.size()) - 1;
        std::uint64_t used = 0;
        for (std::uint64_t mask = 1; mask <= subsets; ++mask) {
          if (cfg.max_victim_sets != 0 && used >= cfg.max_victim_sets) break;
          ++used;
          FaultEvent second;
          second.tx = target->tx_index;
          second.op = FaultOp::kOmit;
          second.victims = subset_from_mask(pool, mask);
          second.crash_sender = true;  // the inconsistent-message-omission arm
          FaultScript script = base;
          script.push_back(second);
          scripts.push_back(std::move(script));
        }
      }
      const std::vector<Cell> cells =
          run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed);
      const std::size_t before = result.violations.size();
      fold_batch(scripts, cells, index_base, result);
      index_base += cells.size();
      if (result.violations.size() > before) break;
    }
  }

  // Seeded random walks, reproducible per walk index.
  if (cfg.random_walks > 0 && !window.empty()) {
    std::vector<FaultScript> scripts;
    scripts.reserve(cfg.random_walks);
    for (std::size_t w = 0; w < cfg.random_walks; ++w) {
      sim::Rng rng{campaign::fork_seed(cfg.seed, result.placements + w)};
      scripts.push_back(random_script(rng, window));
    }
    const std::size_t index_base = result.placements;
    const std::vector<Cell> cells =
        run_batch(cfg.scenario, scripts, cfg.threads, cfg.seed);
    fold_batch(scripts, cells, index_base, result);
  }

  return result;
}

}  // namespace canely::check
