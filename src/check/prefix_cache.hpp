#pragma once
// Prefix-replay cache for the explorer's depth-2 pipeline.
//
// Every depth-2 placement shares its base (first-fault) script with all
// other placements derived from the same base.  The probe run for that
// base — the tx log enumerating injectable attempts plus the judge-time
// state samples the dedup keys on — is therefore pure reuse: computing it
// once per base instead of once per placement removes the dominant cost
// of naive depth-2 exploration (re-simulating the shared prefix from
// zero).
//
// The cache is an LRU over full probe results, keyed by the base script's
// content hash.  Cell payloads live in one sim::Arena per slot: eviction
// is an arena reset (blocks retained), so a warmed cache performs no
// allocation in steady state.  The cache is owned and touched by the
// explorer's coordinator thread only — probe *execution* fans out to the
// campaign workers, insertion of results does not.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "check/fault_script.hpp"
#include "check/harness.hpp"
#include "sim/arena.hpp"

namespace canely::check {

/// Content hash of a fault script (prefix-cache key).  Scripts are equal
/// iff they drive byte-identical runs, so equal hashes (modulo the usual
/// 64-bit caveat) identify a shared prefix.
[[nodiscard]] std::uint64_t hash_script(const FaultScript& script);

/// One cached probe: the per-attempt targeting map and the judge-time
/// state samples of a base run.  Spans point into the owning cache slot's
/// arena and stay valid until that slot is evicted.
struct PrefixProbe {
  std::span<const TxLogEntry> tx_log;
  std::span<const StateSample> samples;
};

/// LRU-bounded cache of base-run probes.
class PrefixCache {
 public:
  /// `capacity`: maximum live slots (>= 1 enforced).
  explicit PrefixCache(std::size_t capacity);
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Look up the probe for `key`.  Counts a hit or a miss; refreshes the
  /// slot's LRU position on hit.  Returns nullptr when absent.
  [[nodiscard]] const PrefixProbe* find(std::uint64_t key);

  /// Copy a probe into the cache under `key`, evicting the least recently
  /// used slot if full.  Returns the cached view (valid until this slot
  /// is evicted by a later insert).
  const PrefixProbe* insert(std::uint64_t key,
                            const std::vector<TxLogEntry>& tx_log,
                            const std::vector<StateSample>& samples);

  struct Stats {
    std::uint64_t hits{};
    std::uint64_t misses{};
    std::uint64_t evictions{};
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    std::uint64_t key{};
    std::uint64_t last_used{};
    std::unique_ptr<sim::Arena> arena;
    PrefixProbe probe;
  };

  std::size_t capacity_;
  std::uint64_t tick_{0};
  std::vector<Slot> slots_;               // stable: reserved to capacity
  std::map<std::uint64_t, std::size_t> index_;  // key -> slot position
  Stats stats_;
};

}  // namespace canely::check
