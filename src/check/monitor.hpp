#pragma once
// Invariant monitors: passive observers that watch one simulated run and
// report violations of the paper's correctness properties.
//
// A Monitor sees the run through the observation seams the stack already
// exposes — bus transmission records, fda-can.nty deliveries, RHA
// execution ends, membership view installations, and the harness's crash
// applications — and renders a verdict in finish(), once the run is over.
// The protocol code never learns it is being watched: monitors are wired
// from the outside via secondary observer slots (FdaProtocol::
// set_nty_observer, RhaProtocol::set_observer, MembershipService::
// set_view_observer, Bus::set_observer).
//
// The concrete monitors formalize, one each, the properties the paper
// argues for (docs/PROTOCOLS.md cross-references the figures):
//
//  * FdaAgreementMonitor    — FDA agreement & validity (Fig. 6): a
//    failure-sign delivered at any correct node is delivered at all, and
//    only for nodes that actually crashed.
//  * RhaAgreementMonitor    — RHA agreement (Fig. 7): the per-node
//    sequences of agreed RHVs are mutually consistent.
//  * ViewConsistencyMonitor — membership agreement (Fig. 9): surviving
//    members install the same sequence of views (common-prefix rule; only
//    installs still in flight at the end may be missing), agree on the
//    final view, and expel long-crashed nodes from it.
//  * FailSilenceMonitor     — weak-fail-silence (§4): a crashed node puts
//    no further frame on the bus.
//  * DetectionLatencyMonitor — bounded detection (§6.3): every delivered
//    failure-sign for a crashed node arrives within Th + 2·Ttd + n·skew
//    (+ margin) of the crash.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "can/bus.hpp"
#include "can/types.hpp"
#include "sim/hash.hpp"
#include "sim/time.hpp"

namespace canely::check {

/// One detected property violation.
struct Violation {
  std::string monitor;  ///< name() of the reporting monitor
  sim::Time when{};     ///< instant the violation is attributed to
  std::string detail;   ///< human-readable description
};

/// Everything a monitor may consult once the run is over.
struct EndState {
  sim::Time end{};     ///< simulation end instant
  sim::Time settle{};  ///< events after end - settle are still in flight:
                       ///< agreement obligations first arising inside this
                       ///< window are exempt (their deadline is past end)
  can::NodeSet nodes;  ///< the scenario's Omega
  can::NodeSet crashed;
  std::array<sim::Time, can::kMaxNodes> crash_time{};
  std::array<can::NodeSet, can::kMaxNodes> final_view{};
  can::NodeSet members_at_end;  ///< nodes reporting is_member() at end
};

/// Passive run observer.  Callbacks fire in simulated-time order; finish()
/// runs once after the engine stops.
class Monitor {
 public:
  virtual ~Monitor() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void on_tx(const can::TxRecord& rec) { (void)rec; }
  virtual void on_crash(can::NodeId node, sim::Time when) {
    (void)node;
    (void)when;
  }
  virtual void on_fda_nty(can::NodeId at, can::NodeId failed, sim::Time when) {
    (void)at;
    (void)failed;
    (void)when;
  }
  virtual void on_rha_end(can::NodeId at, can::NodeSet agreed,
                          sim::Time when) {
    (void)at;
    (void)agreed;
    (void)when;
  }
  virtual void on_view_installed(can::NodeId at, can::NodeSet view,
                                 sim::Time when) {
    (void)at;
    (void)view;
    (void)when;
  }

  virtual void finish(const EndState& end, std::vector<Violation>& out) = 0;

  /// Feed the monitor's accumulated observation state into `h` (the
  /// checker's equivalence dedup; sim/hash.hpp).  Because every monitor
  /// renders its verdict exclusively in finish(), equal monitor state at
  /// a sampling point implies equal final violation sets for equal
  /// continuations — the soundness anchor of class collapsing.  `n` is
  /// the scenario size, bounding the per-node tables that are fed.
  virtual void hash_state(sim::StateHasher& h, std::size_t n) const {
    (void)h;
    (void)n;
  }
};

/// FDA agreement and validity (Fig. 6).
class FdaAgreementMonitor final : public Monitor {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fda-agreement";
  }
  void on_fda_nty(can::NodeId at, can::NodeId failed,
                  sim::Time when) override;
  void finish(const EndState& end, std::vector<Violation>& out) override;
  void hash_state(sim::StateHasher& h, std::size_t n) const override;

 private:
  struct Delivery {
    bool delivered{false};
    sim::Time when{};
  };
  // first_[at][failed]
  std::array<std::array<Delivery, can::kMaxNodes>, can::kMaxNodes> first_{};
};

/// RHA agreement (Fig. 7): pairwise, one node's sequence of agreed RHVs is
/// a contiguous subsequence of the other's (sequences may differ by runs
/// cut off at either end of the observation window, never by divergence).
class RhaAgreementMonitor final : public Monitor {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "rha-agreement";
  }
  void on_rha_end(can::NodeId at, can::NodeSet agreed,
                  sim::Time when) override;
  void finish(const EndState& end, std::vector<Violation>& out) override;
  void hash_state(sim::StateHasher& h, std::size_t n) const override;

 private:
  std::array<std::vector<can::NodeSet>, can::kMaxNodes> seqs_{};
};

/// Membership agreement (Fig. 9): surviving members install identical
/// view sequences (common-prefix rule: every monitor watches from t=0, so
/// sequences may only differ by installs still in flight when the run
/// ends — surplus installs must fall inside the settle window), members
/// agree on the final view, and long-crashed nodes are expelled.
class ViewConsistencyMonitor final : public Monitor {
 public:
  /// `expel_grace`: a node crashed more than this before the end must no
  /// longer be in any survivor's final view (detection bound + one
  /// membership cycle + RHA termination + margin).
  /// `converge_by`: installs before this instant are outside the
  /// agreement obligation — during the join phase nodes may hold
  /// different bootstrap histories (Fig. 9, s18-s19).
  ViewConsistencyMonitor(sim::Time expel_grace, sim::Time converge_by)
      : expel_grace_{expel_grace}, converge_by_{converge_by} {}

  [[nodiscard]] std::string_view name() const override {
    return "view-consistency";
  }
  void on_view_installed(can::NodeId at, can::NodeSet view,
                         sim::Time when) override;
  void finish(const EndState& end, std::vector<Violation>& out) override;
  void hash_state(sim::StateHasher& h, std::size_t n) const override;

 private:
  struct Install {
    sim::Time when{};
    can::NodeSet view;
  };
  sim::Time expel_grace_;
  sim::Time converge_by_;
  std::array<std::vector<Install>, can::kMaxNodes> installs_{};
};

/// Weak-fail-silence (§4): no frame on the wire from a crashed node.
class FailSilenceMonitor final : public Monitor {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fail-silence";
  }
  void on_crash(can::NodeId node, sim::Time when) override;
  void on_tx(const can::TxRecord& rec) override;
  void finish(const EndState& end, std::vector<Violation>& out) override;
  void hash_state(sim::StateHasher& h, std::size_t n) const override;

 private:
  can::NodeSet crashed_;
  std::array<sim::Time, can::kMaxNodes> crash_time_{};
  std::vector<Violation> pending_;
};

/// Bounded failure detection latency (§6.3).
class DetectionLatencyMonitor final : public Monitor {
 public:
  /// `bound`: maximum crash-to-delivery latency once surveillance runs.
  explicit DetectionLatencyMonitor(sim::Time bound) : bound_{bound} {}

  [[nodiscard]] std::string_view name() const override {
    return "detection-latency";
  }
  void on_fda_nty(can::NodeId at, can::NodeId failed,
                  sim::Time when) override;
  void on_view_installed(can::NodeId at, can::NodeSet view,
                         sim::Time when) override;
  void finish(const EndState& end, std::vector<Violation>& out) override;
  void hash_state(sim::StateHasher& h, std::size_t n) const override;

 private:
  struct Delivery {
    can::NodeId at;
    can::NodeId failed;
    sim::Time when;
  };
  sim::Time bound_;
  std::vector<Delivery> deliveries_;
  std::array<bool, can::kMaxNodes> has_install_{};
  std::array<sim::Time, can::kMaxNodes> first_install_{};
};

/// True iff `a` is a contiguous subsequence (infix) of `b`.
[[nodiscard]] bool is_infix(const std::vector<can::NodeSet>& a,
                            const std::vector<can::NodeSet>& b);

}  // namespace canely::check
