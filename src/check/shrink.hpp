#pragma once
// Counterexample shrinking: reduce a violating fault script to a locally
// minimal reproducer.
//
// Delta-debugging flavour adapted to fault scripts: the reduction moves
// are (a) drop a whole event, (b) weaken an event's sender-crash to a
// plain (recovered) fault, (c) drop individual victims from an event's
// victim set.  A move is kept iff the reduced script still violates the
// *same* invariant (monitor name) — each probe is one deterministic
// checked run.  Greedy to a fixpoint, then a final pass certifies local
// minimality: removing any single remaining event makes the violation
// disappear.

#include <cstdint>
#include <string>

#include "check/fault_script.hpp"
#include "check/harness.hpp"

namespace canely::check {

struct ShrinkResult {
  FaultScript script;       ///< the reduced reproducer
  Violation violation;      ///< the violation the reduced script triggers
  std::size_t probes{0};    ///< checked runs spent shrinking
  bool locally_minimal{false};  ///< no single event can be removed
};

/// Shrink `script` while it keeps violating the monitor named `monitor`.
/// Precondition: the input script does violate it (otherwise the input is
/// returned unchanged with locally_minimal=false).
[[nodiscard]] ShrinkResult shrink(const ScenarioConfig& cfg,
                                  FaultScript script,
                                  const std::string& monitor);

}  // namespace canely::check
