#include "check/frontier.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "check/harness.hpp"
#include "check/json_reader.hpp"

namespace canely::check {
namespace {

constexpr const char* kSchema = "canely-frontier-1";
constexpr const char* kWhat = "frontier JSON";

using jsonin::Value;

const Value& require(const Value& obj, const std::string& key,
                     Value::Kind kind) {
  return jsonin::require(obj, key, kind, kWhat);
}

std::int64_t get_int(const Value& obj, const std::string& key) {
  return jsonin::get_int(obj, key, kWhat);
}

bool get_bool(const Value& obj, const std::string& key) {
  return jsonin::get_bool(obj, key, kWhat);
}

std::uint64_t get_u64_string(const Value& obj, const std::string& key) {
  return std::strtoull(require(obj, key, Value::Kind::kString).s.c_str(),
                       nullptr, 10);
}

campaign::Json u64_string(std::uint64_t v) {
  return campaign::Json::string(std::to_string(v));
}

campaign::Json script_json(const FaultScript& script) {
  campaign::Json arr = campaign::Json::array();
  for (const FaultEvent& ev : script) {
    campaign::Json e = campaign::Json::object();
    e.set("tx", campaign::Json::integer(static_cast<std::int64_t>(ev.tx)));
    e.set("op", campaign::Json::string(
                    ev.op == FaultOp::kOmit ? "omit" : "error"));
    campaign::Json victims = campaign::Json::array();
    for (can::NodeId id : ev.victims) {
      victims.push(campaign::Json::integer(static_cast<std::int64_t>(id)));
    }
    e.set("victims", std::move(victims));
    e.set("crash_sender", campaign::Json::boolean(ev.crash_sender));
    arr.push(std::move(e));
  }
  return arr;
}

FaultScript parse_script(const Value& arr) {
  FaultScript script;
  for (const Value& e : arr.array) {
    if (e.kind != Value::Kind::kObject) {
      throw std::runtime_error(std::string{kWhat} +
                               ": script event is not an object");
    }
    FaultEvent ev;
    ev.tx = static_cast<std::uint64_t>(get_int(e, "tx"));
    const std::string& op = require(e, "op", Value::Kind::kString).s;
    if (op == "omit") {
      ev.op = FaultOp::kOmit;
    } else if (op == "error") {
      ev.op = FaultOp::kError;
    } else {
      throw std::runtime_error(std::string{kWhat} + ": unknown op '" + op +
                               "'");
    }
    for (const Value& id : require(e, "victims", Value::Kind::kArray).array) {
      if (id.kind != Value::Kind::kInt || id.i < 0 ||
          id.i >= static_cast<std::int64_t>(can::kMaxNodes)) {
        throw std::runtime_error(std::string{kWhat} + ": bad victim id");
      }
      ev.victims.insert(static_cast<can::NodeId>(id.i));
    }
    ev.crash_sender = get_bool(e, "crash_sender");
    script.push_back(ev);
  }
  return script;
}

void fold_string(std::uint64_t& h, const std::string& s) {
  h = fnv1a(h, s.size());
  for (char c : s) h = fnv1a(h, static_cast<std::uint8_t>(c));
}

}  // namespace

std::uint64_t fold_records(const std::vector<FrontierRecord>& records) {
  std::uint64_t h = kFnvOffset;
  for (const FrontierRecord& r : records) {
    h = fnv1a(h, r.u);
    h = fnv1a(h, r.j);
    h = fnv1a(h, r.key);
    h = fnv1a(h, r.violated ? 1 : 0);
    if (r.violated) {
      fold_string(h, r.violation.monitor);
      h = fnv1a(h, static_cast<std::uint64_t>(r.violation.when.to_ns()));
      fold_string(h, r.violation.detail);
    }
  }
  return h;
}

campaign::Json frontier_json(const FrontierFile& frontier) {
  campaign::Json records = campaign::Json::array();
  for (const FrontierRecord& r : frontier.records) {
    campaign::Json rec = campaign::Json::object();
    rec.set("u", campaign::Json::integer(static_cast<std::int64_t>(r.u)));
    rec.set("j", campaign::Json::integer(static_cast<std::int64_t>(r.j)));
    rec.set("key", u64_string(r.key));
    rec.set("violated", campaign::Json::boolean(r.violated));
    if (r.violated) {
      campaign::Json vio = campaign::Json::object();
      vio.set("monitor", campaign::Json::string(r.violation.monitor));
      vio.set("when_ns", campaign::Json::integer(r.violation.when.to_ns()));
      vio.set("detail", campaign::Json::string(r.violation.detail));
      rec.set("violation", std::move(vio));
      rec.set("script", script_json(r.script));
    }
    records.push(std::move(rec));
  }

  campaign::Json root = campaign::Json::object();
  root.set("schema", campaign::Json::string(kSchema));
  root.set("fingerprint", u64_string(frontier.fingerprint));
  root.set("total", campaign::Json::integer(
                        static_cast<std::int64_t>(frontier.total)));
  root.set("shard_index", campaign::Json::integer(frontier.shard_index));
  root.set("shard_count", campaign::Json::integer(frontier.shard_count));
  root.set("cursor", campaign::Json::integer(
                         static_cast<std::int64_t>(frontier.cursor)));
  root.set("complete", campaign::Json::boolean(frontier.complete));
  root.set("partial", campaign::Json::boolean(frontier.partial));
  root.set("aggregate", u64_string(fold_records(frontier.records)));
  root.set("records", std::move(records));
  return root;
}

void write_frontier(const std::string& path, const FrontierFile& frontier) {
  const std::string tmp = path + ".tmp";
  campaign::write_file(tmp, frontier_json(frontier).dump(1) + "\n");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("frontier: cannot rename " + tmp + " to " +
                             path);
  }
}

FrontierFile load_frontier(const std::string& path) {
  const std::string text = jsonin::read_file(path, kWhat);
  const Value root = jsonin::parse(text, kWhat);
  if (root.kind != Value::Kind::kObject) {
    throw std::runtime_error(std::string{kWhat} + ": root is not an object");
  }
  if (require(root, "schema", Value::Kind::kString).s != kSchema) {
    throw std::runtime_error(std::string{kWhat} + ": unknown schema");
  }

  FrontierFile f;
  f.fingerprint = get_u64_string(root, "fingerprint");
  f.total = static_cast<std::uint64_t>(get_int(root, "total"));
  f.shard_index = static_cast<std::uint32_t>(get_int(root, "shard_index"));
  f.shard_count = static_cast<std::uint32_t>(get_int(root, "shard_count"));
  f.cursor = static_cast<std::uint64_t>(get_int(root, "cursor"));
  f.complete = get_bool(root, "complete");
  f.partial = get_bool(root, "partial");

  for (const Value& rv : require(root, "records", Value::Kind::kArray).array) {
    if (rv.kind != Value::Kind::kObject) {
      throw std::runtime_error(std::string{kWhat} +
                               ": record is not an object");
    }
    FrontierRecord r;
    r.u = static_cast<std::uint64_t>(get_int(rv, "u"));
    r.j = static_cast<std::uint64_t>(get_int(rv, "j"));
    r.key = get_u64_string(rv, "key");
    r.violated = get_bool(rv, "violated");
    if (r.violated) {
      const Value& vio = require(rv, "violation", Value::Kind::kObject);
      r.violation.monitor = require(vio, "monitor", Value::Kind::kString).s;
      r.violation.when = sim::Time::ns(get_int(vio, "when_ns"));
      r.violation.detail = require(vio, "detail", Value::Kind::kString).s;
      r.script = parse_script(require(rv, "script", Value::Kind::kArray));
    }
    f.records.push_back(std::move(r));
  }

  f.aggregate = fold_records(f.records);
  if (f.aggregate != get_u64_string(root, "aggregate")) {
    throw std::runtime_error(std::string{kWhat} +
                             ": aggregate does not match records in " + path);
  }
  if (f.cursor != f.records.size()) {
    throw std::runtime_error(std::string{kWhat} +
                             ": cursor does not match record count in " +
                             path);
  }
  return f;
}

FrontierFile merge_frontiers(const std::vector<FrontierFile>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("frontier merge: no shards");
  }
  const std::uint32_t count = shards.front().shard_count;
  if (count != shards.size()) {
    throw std::runtime_error("frontier merge: got " +
                             std::to_string(shards.size()) + " shards of " +
                             std::to_string(count));
  }
  std::vector<bool> seen(count, false);
  for (const FrontierFile& s : shards) {
    if (s.fingerprint != shards.front().fingerprint) {
      throw std::runtime_error(
          "frontier merge: shards explore different configurations");
    }
    if (s.shard_count != count || s.shard_index >= count) {
      throw std::runtime_error("frontier merge: inconsistent shard labels");
    }
    if (seen[s.shard_index]) {
      throw std::runtime_error("frontier merge: duplicate shard " +
                               std::to_string(s.shard_index));
    }
    seen[s.shard_index] = true;
    if (!s.complete) {
      throw std::runtime_error("frontier merge: shard " +
                               std::to_string(s.shard_index) +
                               " is incomplete");
    }
  }

  FrontierFile merged;
  merged.fingerprint = shards.front().fingerprint;
  merged.shard_index = 0;
  merged.shard_count = 1;
  merged.complete = true;
  for (const FrontierFile& s : shards) {
    merged.total += s.total;
    merged.cursor += s.cursor;
    merged.partial = merged.partial || s.partial;
    merged.records.insert(merged.records.end(), s.records.begin(),
                          s.records.end());
  }
  std::sort(merged.records.begin(), merged.records.end(),
            [](const FrontierRecord& a, const FrontierRecord& b) {
              return a.u != b.u ? a.u < b.u : a.j < b.j;
            });
  merged.aggregate = fold_records(merged.records);
  return merged;
}

}  // namespace canely::check
