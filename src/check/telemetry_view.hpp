#pragma once
// Reader-side view of the campaign telemetry stream (tools/canely_top).
//
// The telemetry service (src/obs/telemetry.hpp) appends self-contained
// `canely-telemetry-1` JSON lines; this header parses them back and
// reduces one file per shard into the status a live dashboard needs:
// progress against total_units, placements/s from the last two
// snapshots, dedup and prefix-cache ratios, an ETA, and the advertised
// frontier file's checkpoint state.  Everything here is a pure function
// of file bytes — the CLI around it (tools/canely_top.cpp) owns the
// loop, the clock, and the screen.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "obs/telemetry.hpp"

namespace canely::check {

/// One parsed `canely-telemetry-1` snapshot line.
struct TelemetrySnapshot {
  std::uint64_t seq{0};
  std::uint64_t t_ms{0};  ///< wall ms since the emitting service started
  std::string label;
  std::size_t shard{0};
  std::size_t shards{1};
  std::uint64_t total_units{0};  ///< 0 = unknown
  std::string frontier;          ///< advertised frontier path ("" = none)
  std::array<std::uint64_t, obs::kTelemetryCounters> counters{};
  std::array<std::uint64_t, obs::kTelemetryStages> stage_count{};
  std::array<std::uint64_t, obs::kTelemetryStages> stage_sum_us{};
  std::uint64_t dropped_lines{0};

  [[nodiscard]] std::uint64_t counter(obs::TelemetryCounter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  /// Units resolved so far: judged + dedup-skipped + resumed.
  [[nodiscard]] std::uint64_t units_done() const;
};

/// Parse one snapshot line; throws std::runtime_error on syntax or
/// schema errors.
[[nodiscard]] TelemetrySnapshot parse_telemetry_line(const std::string& line);

/// Parse a whole telemetry file, one snapshot per non-empty line, in
/// file order.  Throws when the file cannot be read or a line is bad.
[[nodiscard]] std::vector<TelemetrySnapshot> load_telemetry(
    const std::string& path);

/// One shard's current status: the newest snapshot, the previous one
/// (for rates), and the advertised frontier's checkpoint state.
struct ShardStatus {
  std::string path;  ///< the telemetry file this came from
  TelemetrySnapshot last;
  bool have_prev{false};
  TelemetrySnapshot prev;
  bool frontier_loaded{false};  ///< advertised frontier file parsed ok
  bool frontier_complete{false};
  bool frontier_partial{false};
  std::uint64_t frontier_records{0};

  /// Units/s between the last two snapshots (whole-run average when only
  /// one line exists; 0 when indeterminate).
  [[nodiscard]] double rate() const;
};

/// Load one shard's telemetry file and, when the stream advertises a
/// frontier, its checkpoint.  Throws when the telemetry file is
/// unreadable or malformed; a missing/bad frontier only clears
/// `frontier_loaded`.
[[nodiscard]] ShardStatus load_shard_status(const std::string& path);

/// Fleet summary across shards.
struct StatusSummary {
  std::uint64_t done{0};
  std::uint64_t total{0};  ///< sum of known totals (0 = all unknown)
  double rate{0};          ///< summed units/s
  double dedup_pct{0};     ///< dedup skips / units done
  double cache_pct{0};     ///< prefix hits / (hits + misses)
  double eta_sec{-1};      ///< -1 = unknown (no total or zero rate)
  std::uint64_t runs{0};
  std::uint64_t violations{0};
  std::uint64_t dropped_lines{0};
  std::size_t shards_complete{0};  ///< frontiers marked complete
};

[[nodiscard]] StatusSummary summarize(const std::vector<ShardStatus>& shards);

/// Deterministic machine-readable status (canely_top --once --json).
[[nodiscard]] campaign::Json status_json(
    const std::vector<ShardStatus>& shards);

/// Human-readable status block, one line per shard plus a total line.
[[nodiscard]] std::string render_status_text(
    const std::vector<ShardStatus>& shards);

}  // namespace canely::check
