#include "check/json_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace canely::check::jsonin {
namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& what)
      : text_{text}, what_{what} {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(what_ + ": " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.s = string();
        return v;
      }
      case 't': {
        if (!consume("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        v.b = true;
        return v;
      }
      case 'f': {
        if (!consume("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        if (!consume("null")) fail("bad literal");
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            // The emitter never produces \u escapes for the schemas'
            // ASCII content; accept and keep the raw sequence.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("bad number");
    }
    bool real = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      real = true;
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == frac) fail("bad number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      real = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      if (pos_ == exp) fail("bad number");
    }
    Value v;
    const std::string token = text_.substr(start, pos_ - start);
    if (real) {
      v.kind = Value::Kind::kNumber;
      v.d = std::strtod(token.c_str(), nullptr);
    } else {
      v.kind = Value::Kind::kInt;
      v.i = std::strtoll(token.c_str(), nullptr, 10);
    }
    return v;
  }

  const std::string& text_;
  const std::string& what_;
  std::size_t pos_{0};
};

}  // namespace

Value parse(const std::string& text, const std::string& what) {
  return Parser{text, what}.parse();
}

const Value& require(const Value& obj, const std::string& key,
                     Value::Kind kind, const std::string& what) {
  const Value* v = obj.find(key);
  if (v == nullptr || v->kind != kind) {
    throw std::runtime_error(what + ": missing or mistyped field '" + key +
                             "'");
  }
  return *v;
}

std::int64_t get_int(const Value& obj, const std::string& key,
                     const std::string& what) {
  return require(obj, key, Value::Kind::kInt, what).i;
}

bool get_bool(const Value& obj, const std::string& key,
              const std::string& what) {
  return require(obj, key, Value::Kind::kBool, what).b;
}

campaign::Json to_json(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNull:
      return campaign::Json{};
    case Value::Kind::kBool:
      return campaign::Json::boolean(v.b);
    case Value::Kind::kInt:
      return campaign::Json::integer(v.i);
    case Value::Kind::kNumber:
      return campaign::Json::number(v.d);
    case Value::Kind::kString:
      return campaign::Json::string(v.s);
    case Value::Kind::kArray: {
      campaign::Json arr = campaign::Json::array();
      for (const Value& e : v.array) arr.push(to_json(e));
      return arr;
    }
    case Value::Kind::kObject: {
      campaign::Json obj = campaign::Json::object();
      for (const auto& [key, val] : v.object) obj.set(key, to_json(val));
      return obj;
    }
  }
  return campaign::Json{};
}

std::string read_file(const std::string& path, const std::string& what) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error(what + ": cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace canely::check::jsonin
