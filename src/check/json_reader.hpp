#pragma once
// Minimal JSON reader shared by the checker's file formats (counterexample
// artifacts, exploration frontiers).
//
// The schemas this reads are produced by campaign::Json, so the reader
// supports exactly that dialect: insertion-ordered objects, plain ASCII
// strings, integers for every schema-defined field (durations are ns).
// Doubles appear only inside embedded metrics snapshots (the flight
// recorder in canely-check-2 artifacts carries obs gauge values); they
// parse to kNumber and, because the emitter formats shortest-round-trip,
// re-rendering one through campaign::Json::number reproduces its exact
// bytes.  Unknown fields are preserved in the value tree and simply
// ignored by callers, which is what keeps the formats forward-extensible.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "campaign/json.hpp"

namespace canely::check::jsonin {

/// A parsed JSON value.  Integers are kept as int64; non-integer numbers
/// as double.
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kNumber,
    kString,
    kArray,
    kObject
  };
  Kind kind{Kind::kNull};
  bool b{false};
  std::int64_t i{0};
  double d{0};
  std::string s;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parse `text` completely; throws std::runtime_error (message prefixed
/// with `what`) on syntax errors or trailing input.
[[nodiscard]] Value parse(const std::string& text, const std::string& what);

/// Fetch a mandatory field of the given kind; throws std::runtime_error
/// when missing or mistyped.
[[nodiscard]] const Value& require(const Value& obj, const std::string& key,
                                   Value::Kind kind, const std::string& what);

[[nodiscard]] std::int64_t get_int(const Value& obj, const std::string& key,
                                   const std::string& what);
[[nodiscard]] bool get_bool(const Value& obj, const std::string& key,
                            const std::string& what);

/// Read a whole file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& what);

/// Rebuild a writable campaign::Json tree from a parsed value — the
/// bridge that lets an embedded sub-document (e.g. the flight recorder's
/// metrics snapshot) be re-emitted verbatim into a new artifact.
[[nodiscard]] campaign::Json to_json(const Value& v);

}  // namespace canely::check::jsonin
