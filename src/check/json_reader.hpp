#pragma once
// Minimal JSON reader shared by the checker's file formats (counterexample
// artifacts, exploration frontiers).
//
// The schemas this reads are produced by campaign::Json, so the reader
// supports exactly that dialect: integers only (no floats — every duration
// is in ns), insertion-ordered objects, plain ASCII strings.  Unknown
// fields are preserved in the value tree and simply ignored by callers,
// which is what keeps the formats forward-extensible.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace canely::check::jsonin {

/// A parsed JSON value.  Numbers are kept as int64.
struct Value {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kString,
    kArray,
    kObject
  };
  Kind kind{Kind::kNull};
  bool b{false};
  std::int64_t i{0};
  std::string s;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parse `text` completely; throws std::runtime_error (message prefixed
/// with `what`) on syntax errors or trailing input.
[[nodiscard]] Value parse(const std::string& text, const std::string& what);

/// Fetch a mandatory field of the given kind; throws std::runtime_error
/// when missing or mistyped.
[[nodiscard]] const Value& require(const Value& obj, const std::string& key,
                                   Value::Kind kind, const std::string& what);

[[nodiscard]] std::int64_t get_int(const Value& obj, const std::string& key,
                                   const std::string& what);
[[nodiscard]] bool get_bool(const Value& obj, const std::string& key,
                            const std::string& what);

/// Read a whole file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path,
                                    const std::string& what);

}  // namespace canely::check::jsonin
