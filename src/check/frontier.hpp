#pragma once
// Persistent exploration frontier: resumable, shardable campaign state.
//
// A frontier file (schema "canely-frontier-1") records everything one
// explorer shard has established about its slice of the placement space:
// one record per explored unit — (u, j) coordinates, the unit's
// equivalence-class key, and its verdict (plus the violating script when
// the verdict is a violation).  Coordinates are shard-local knowledge: at
// depth 1, u is the global placement index and j is 0; at depth 2, u is
// the global base index and j the in-base placement index.  Any shard can
// compute its own units' coordinates without probing another shard's
// bases, which is what makes the merged record order — sorted by (u, j) —
// reproducible from shard files alone.
//
// Invariants the format maintains deliberately:
//  * No wall-clock, hostname, or advisory statistics in the file: a
//    frontier's bytes are a pure function of (configuration, slice,
//    progress), so merging complete shards and comparing against an
//    unsharded run is a byte-equality check, not a semantic diff.
//  * The aggregate is an FNV fold over the records in (u, j) order —
//    independent of thread count, shard split, and dedup on/off (dedup
//    changes how a verdict is obtained, never what it is).
//  * Writes go through a temp file + atomic rename, so a killed run
//    leaves either the previous checkpoint or the new one, never a torn
//    file — the anchor of resume-after-kill.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.hpp"
#include "check/fault_script.hpp"
#include "check/monitor.hpp"

namespace canely::check {

/// Verdict of one explored unit.
struct FrontierRecord {
  std::uint64_t u{};    ///< depth-1: global placement index; depth-2: base
  std::uint64_t j{};    ///< depth-2: in-base placement index; else 0
  std::uint64_t key{};  ///< equivalence-class key of the unit
  bool violated{false};
  Violation violation;  ///< first violation; meaningful iff violated
  FaultScript script;   ///< full violating script; recorded iff violated
};

/// One shard's persistent exploration state.
struct FrontierFile {
  std::uint64_t fingerprint{};  ///< explorer configuration digest
  std::uint64_t total{};        ///< units in this shard's slice
  std::uint32_t shard_index{0};
  std::uint32_t shard_count{1};
  std::uint64_t cursor{};      ///< units of the slice completed so far
  bool complete{false};        ///< cursor == total and the run finished
  bool partial{false};         ///< budget caps truncated the space
  std::vector<FrontierRecord> records;
  std::uint64_t aggregate{};   ///< fold_records(records)
};

/// Order-sensitive FNV fold over the records: the explorer's
/// thread/shard/dedup-invariant aggregate.  Callers sort by (u, j) first
/// when records may be out of order (merge).
[[nodiscard]] std::uint64_t fold_records(
    const std::vector<FrontierRecord>& records);

/// Serialize (deterministic bytes; `aggregate` is recomputed from the
/// records, not trusted).
[[nodiscard]] campaign::Json frontier_json(const FrontierFile& frontier);

/// Write `frontier` to `path` atomically (temp file + rename); throws
/// std::runtime_error on I/O failure.
void write_frontier(const std::string& path, const FrontierFile& frontier);

/// Parse a frontier file; throws std::runtime_error on I/O, syntax,
/// schema, or aggregate-mismatch errors.
[[nodiscard]] FrontierFile load_frontier(const std::string& path);

/// Merge complete shard frontiers into the equivalent unsharded frontier:
/// validates that the shards share a fingerprint, form exactly the set
/// 0..shard_count-1, and are all complete; concatenates their records,
/// sorts by (u, j), and refolds the aggregate.  The result serializes to
/// the same bytes an unsharded run over the union would have produced.
/// Throws std::runtime_error on any validation failure.
[[nodiscard]] FrontierFile merge_frontiers(
    const std::vector<FrontierFile>& shards);

}  // namespace canely::check
