#include "check/fault_script.hpp"

namespace canely::check {

can::Verdict ScriptInjector::judge(const can::TxContext& ctx) {
  for (const FaultEvent& ev : script_) {
    if (ev.tx != ctx.tx_index) continue;
    if (ev.crash_sender) {
      crash_pending_ = true;
      crash_node_ = ctx.transmitter;
    }
    switch (ev.op) {
      case FaultOp::kOmit:
        // The bus intersects victims with the actual receivers and
        // downgrades an empty victim set to a clean broadcast.
        return can::Verdict::inconsistent(ev.victims);
      case FaultOp::kError:
        return can::Verdict::global_error();
    }
  }
  return can::Verdict::ok();
}

}  // namespace canely::check
