#pragma once
// Fault scripts: the checker's deterministic description of "what goes
// wrong" in one run.
//
// A script is a list of events keyed on the bus's global transmission
// attempt counter (TxContext::tx_index) — the one coordinate that is a
// pure function of the simulation inputs, independent of wall-clock time
// or thread scheduling.  Each event says what happens to that attempt
// (inconsistent omission at a victim set, or a global error) and whether
// the primary transmitter crashes at the end of the frame, i.e. *before
// its retransmission* — the sender-crash half of the inconsistent message
// omission scenario FDA exists to fix (paper §6.1).
//
// ScriptInjector plugs a script into the existing can::FaultInjector
// seam.  Crashing is not the injector's business (it only judges frames);
// the injector records a pending crash which the harness's bus observer
// applies at end-of-frame, after delivery, before the next arbitration —
// at that point the requeued retransmission is withdrawn by the crash
// (Controller::crash clears the transmit queue).

#include <cstdint>
#include <vector>

#include "can/fault.hpp"
#include "can/types.hpp"

namespace canely::check {

enum class FaultOp : std::uint8_t {
  kOmit,   ///< inconsistent omission: `victims` reject, the rest accept
  kError,  ///< global error: destroyed for everybody, CAN retransmits
};

/// One scripted fault, targeting one transmission attempt.
struct FaultEvent {
  std::uint64_t tx{0};        ///< global attempt index (TxContext::tx_index)
  FaultOp op{FaultOp::kOmit};
  can::NodeSet victims{};     ///< kOmit: receivers that reject the frame
  bool crash_sender{false};   ///< crash the primary transmitter at frame end

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

using FaultScript = std::vector<FaultEvent>;

/// Deterministic injector driven by a FaultScript.  The first event whose
/// `tx` matches the attempt index fires (events are one-shot by
/// construction: attempt indices are unique within a run).
class ScriptInjector final : public can::FaultInjector {
 public:
  explicit ScriptInjector(FaultScript script) : script_{std::move(script)} {}

  can::Verdict judge(const can::TxContext& ctx) override;

  /// Consume the pending sender-crash recorded by the last judge() call,
  /// if any.  The harness calls this from the bus observer (end of the
  /// judged frame); the bus never interleaves another judged attempt in
  /// between, so the pairing is exact.
  bool take_pending_crash(can::NodeId& node) {
    if (!crash_pending_) return false;
    crash_pending_ = false;
    node = crash_node_;
    return true;
  }

 private:
  FaultScript script_;
  bool crash_pending_{false};
  can::NodeId crash_node_{0};
};

}  // namespace canely::check
