#include "check/prefix_cache.hpp"

#include <algorithm>

namespace canely::check {

std::uint64_t hash_script(const FaultScript& script) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, script.size());
  for (const FaultEvent& e : script) {
    h = fnv1a(h, e.tx);
    h = fnv1a(h, static_cast<std::uint64_t>(e.op));
    h = fnv1a(h, e.victims.bits());
    h = fnv1a(h, e.crash_sender ? 1 : 0);
  }
  return h;
}

PrefixCache::PrefixCache(std::size_t capacity)
    : capacity_{capacity == 0 ? 1 : capacity} {
  slots_.reserve(capacity_);  // slot addresses stay stable for the probe views
}

const PrefixProbe* PrefixCache::find(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  Slot& slot = slots_[it->second];
  slot.last_used = ++tick_;
  return &slot.probe;
}

const PrefixProbe* PrefixCache::insert(
    std::uint64_t key, const std::vector<TxLogEntry>& tx_log,
    const std::vector<StateSample>& samples) {
  std::size_t pos;
  if (slots_.size() < capacity_) {
    pos = slots_.size();
    slots_.emplace_back();
    slots_[pos].arena = std::make_unique<sim::Arena>();
  } else {
    pos = 0;
    for (std::size_t i = 1; i < slots_.size(); ++i) {
      if (slots_[i].last_used < slots_[pos].last_used) pos = i;
    }
    index_.erase(slots_[pos].key);
    slots_[pos].arena->reset();  // blocks retained: steady state reallocates nothing
    ++stats_.evictions;
  }
  Slot& slot = slots_[pos];
  slot.key = key;
  slot.last_used = ++tick_;
  const std::span<TxLogEntry> log_cell =
      slot.arena->alloc_span<TxLogEntry>(tx_log.size());
  std::copy(tx_log.begin(), tx_log.end(), log_cell.begin());
  const std::span<StateSample> sample_cell =
      slot.arena->alloc_span<StateSample>(samples.size());
  std::copy(samples.begin(), samples.end(), sample_cell.begin());
  slot.probe = PrefixProbe{log_cell, sample_cell};
  index_[key] = pos;
  return &slot.probe;
}

}  // namespace canely::check
