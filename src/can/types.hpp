#pragma once
// Fundamental identifiers shared by the whole stack: node identifiers and
// node sets.
//
// The paper's protocols manipulate sets of nodes constantly (membership
// views R_F, joining/leaving sets R_J / R_L, reception history vectors
// R_RHV, failed sets F_F).  CAN data frames carry at most 8 bytes, so a
// 64-bit bitmap is both the natural wire format for an RHV and a cheap
// value type in memory.  The stack therefore supports up to 64 nodes.

#include <bit>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>

namespace canely::can {

/// Identifier of a node/site on the bus.  Valid range [0, kMaxNodes).
using NodeId = std::uint8_t;

/// Upper bound on addressable nodes (RHV bitmap fits one CAN data field).
inline constexpr std::size_t kMaxNodes = 64;

/// A set of nodes, value-semantic, encoded as a 64-bit bitmap.
///
/// This is the in-memory and on-wire representation of the paper's
/// reception history vector (RHV) and of every membership set.
class NodeSet {
 public:
  constexpr NodeSet() = default;
  constexpr NodeSet(std::initializer_list<NodeId> ids) {
    for (NodeId id : ids) insert(id);
  }

  /// The set {0, 1, ..., n-1} — the paper's Omega for an n-node system.
  [[nodiscard]] static constexpr NodeSet first_n(std::size_t n) {
    NodeSet s;
    s.bits_ = (n >= kMaxNodes) ? ~0ULL : ((1ULL << n) - 1);
    return s;
  }

  [[nodiscard]] static constexpr NodeSet from_bits(std::uint64_t bits) {
    NodeSet s;
    s.bits_ = bits;
    return s;
  }

  constexpr void insert(NodeId id) { bits_ |= bit(id); }
  constexpr void erase(NodeId id) { bits_ &= ~bit(id); }
  constexpr void clear() { bits_ = 0; }

  [[nodiscard]] constexpr bool contains(NodeId id) const {
    return (bits_ & bit(id)) != 0;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t size() const {
    return static_cast<std::size_t>(std::popcount(bits_));
  }
  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }

  /// Set algebra, matching the paper's notation.
  [[nodiscard]] constexpr NodeSet united(NodeSet o) const {        // A ∪ B
    return from_bits(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr NodeSet intersected(NodeSet o) const {   // A ∩ B
    return from_bits(bits_ & o.bits_);
  }
  [[nodiscard]] constexpr NodeSet minus(NodeSet o) const {         // A − B
    return from_bits(bits_ & ~o.bits_);
  }
  [[nodiscard]] constexpr bool subset_of(NodeSet o) const {
    return (bits_ & ~o.bits_) == 0;
  }

  friend constexpr bool operator==(NodeSet, NodeSet) = default;

  /// Iterate members in increasing NodeId order.
  class iterator {
   public:
    constexpr iterator(std::uint64_t rest) : rest_{rest} {}
    constexpr NodeId operator*() const {
      return static_cast<NodeId>(std::countr_zero(rest_));
    }
    constexpr iterator& operator++() {
      rest_ &= rest_ - 1;
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) = default;

   private:
    std::uint64_t rest_;
  };
  [[nodiscard]] constexpr iterator begin() const { return iterator{bits_}; }
  [[nodiscard]] constexpr iterator end() const { return iterator{0}; }

  friend std::ostream& operator<<(std::ostream& os, NodeSet s) {
    os << "{";
    bool first = true;
    for (NodeId id : s) {
      if (!first) os << ",";
      os << static_cast<int>(id);
      first = false;
    }
    return os << "}";
  }

 private:
  // A shift by id >= 64 is undefined behaviour; ids out of range are a
  // caller bug.  Assert in debug builds; in release the id degrades to
  // the empty mask (insert/erase become no-ops, contains returns false)
  // instead of whatever the hardware's shifter happens to produce.
  static constexpr std::uint64_t bit(NodeId id) {
    assert(id < kMaxNodes && "NodeId out of range");
    return id < kMaxNodes ? 1ULL << id : 0;
  }
  std::uint64_t bits_{0};
};

}  // namespace canely::can
