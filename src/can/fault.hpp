#pragma once
// Fault injection for the CAN bus model.
//
// The system model of the paper (§4) assumes components are weak-fail-
// silent with omission degree k (MCAN3), that some j <= k omissions are
// *inconsistent* — not observed by all recipients (LCAN4) — and that nodes
// crash.  The fault injector is where test suites and benchmarks inject
// exactly those behaviours, deterministically or stochastically:
//
//  * kGlobalError        — the frame is destroyed for everybody (a node
//                          signals an error flag); CAN retransmits.
//  * kInconsistentOmission — a fault hits the last-but-one bit of the
//                          frame at a subset of receivers ("victims"):
//                          victims reject it, the rest accept it; the
//                          transmitter retransmits, so non-victims see a
//                          duplicate — unless the sender crashes first,
//                          which yields an inconsistent message omission.
//                          This is the failure mode FDA/RHA exist to fix.
//  * kAckError           — nobody acknowledged (e.g. all peers crashed).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "can/frame.hpp"
#include "can/types.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace canely::can {

enum class FaultKind : std::uint8_t {
  kNone,
  kGlobalError,
  kInconsistentOmission,
  kAckError,
};

/// The fate of one transmission attempt, decided by the fault injector.
struct Verdict {
  FaultKind kind{FaultKind::kNone};
  /// For kInconsistentOmission: receivers that do NOT accept the frame.
  NodeSet victims{};
  /// For kGlobalError: bit offset where the error hit (the partial frame
  /// up to this bit is wasted bus time). -1 = end of frame.
  std::int32_t error_bit{-1};
  /// Overload frames following this transmission (ISO 11898 allows up to
  /// two): each delays the next arbitration by flag+delimiter bit-times —
  /// one of the inaccessibility scenarios of [22].  Applies to any kind.
  int overloads{0};

  [[nodiscard]] static Verdict ok() { return {}; }
  [[nodiscard]] static Verdict global_error(std::int32_t at_bit = -1) {
    return Verdict{FaultKind::kGlobalError, {}, at_bit, 0};
  }
  [[nodiscard]] static Verdict inconsistent(NodeSet victims) {
    return Verdict{FaultKind::kInconsistentOmission, victims, -1, 0};
  }
  [[nodiscard]] static Verdict with_overloads(int count) {
    Verdict v;
    v.overloads = count;
    return v;
  }
};

/// Everything an injector may key its decision on.
struct TxContext {
  const Frame& frame;
  NodeId transmitter;       ///< primary transmitter (lowest co-transmitter id)
  NodeSet co_transmitters;  ///< all nodes clustered on this physical frame
  NodeSet receivers;        ///< powered nodes excluding co-transmitters
  int attempt;              ///< 0 on first attempt, +1 per retransmission
  sim::Time start;          ///< transmission start instant
  std::uint64_t tx_index;   ///< global transmission attempt counter
};

/// Decides the fate of each transmission attempt.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual Verdict judge(const TxContext& ctx) = 0;
};

/// The default: a perfect channel.
class NoFaults final : public FaultInjector {
 public:
  Verdict judge(const TxContext&) override { return Verdict::ok(); }
};

/// Deterministic, rule-based injection for tests and targeted scenarios.
///
/// Rules are consulted in insertion order; the first rule whose predicate
/// matches (and that still has shots left) supplies the verdict.
class ScriptedFaults final : public FaultInjector {
 public:
  using Predicate = std::function<bool(const TxContext&)>;

  /// Add a rule firing at most `shots` times (default once).
  ScriptedFaults& add(Predicate match, Verdict verdict, int shots = 1) {
    rules_.push_back(Rule{std::move(match), verdict, shots});
    return *this;
  }

  /// Convenience: destroy the n-th transmission attempt (0-based, global).
  ScriptedFaults& kill_nth(std::uint64_t n) {
    return add([n](const TxContext& c) { return c.tx_index == n; },
               Verdict::global_error());
  }

  /// Convenience: first attempt matching `match` suffers an inconsistent
  /// omission with the given victim set.
  ScriptedFaults& inconsistent_once(Predicate match, NodeSet victims) {
    return add(std::move(match), Verdict::inconsistent(victims));
  }

  Verdict judge(const TxContext& ctx) override {
    for (auto& rule : rules_) {
      if (rule.shots != 0 && rule.match(ctx)) {
        if (rule.shots > 0) --rule.shots;
        return rule.verdict;
      }
    }
    return Verdict::ok();
  }

 private:
  struct Rule {
    Predicate match;
    Verdict verdict;
    int shots;  ///< remaining firings; negative = unlimited
  };
  std::vector<Rule> rules_;
};

/// Stochastic injection: each attempt independently suffers a global error
/// with probability `p_global`, or an inconsistent omission with
/// probability `p_inconsistent` (victims: a uniformly sized non-empty,
/// non-full random subset of the receivers).
class RandomFaults final : public FaultInjector {
 public:
  RandomFaults(sim::Rng rng, double p_global, double p_inconsistent)
      : rng_{rng}, p_global_{p_global}, p_inconsistent_{p_inconsistent} {}

  Verdict judge(const TxContext& ctx) override {
    const double roll = rng_.uniform01();
    if (roll < p_global_) {
      return Verdict::global_error(
          static_cast<std::int32_t>(rng_.below(64)));  // early-frame error
    }
    if (roll < p_global_ + p_inconsistent_ && !ctx.receivers.empty()) {
      // Pick 1..|receivers| victims uniformly.
      std::vector<NodeId> pool;
      pool.reserve(ctx.receivers.size());
      for (NodeId id : ctx.receivers) pool.push_back(id);
      const std::size_t n_victims =
          1 + static_cast<std::size_t>(rng_.below(pool.size()));
      NodeSet victims;
      for (std::size_t idx : rng_.sample(pool.size(), n_victims)) {
        victims.insert(pool[idx]);
      }
      return Verdict::inconsistent(victims);
    }
    return Verdict::ok();
  }

 private:
  sim::Rng rng_;
  double p_global_;
  double p_inconsistent_;
};

/// Inaccessibility bursts: every transmission starting inside one of the
/// configured windows is destroyed (models EMI bursts / glitch storms,
/// the phenomenon studied in [22] and bounded by MCAN3's interval Trd).
class BurstFaults final : public FaultInjector {
 public:
  BurstFaults& add_window(sim::Time from, sim::Time to) {
    windows_.push_back({from, to});
    return *this;
  }

  Verdict judge(const TxContext& ctx) override {
    for (const auto& w : windows_) {
      if (ctx.start >= w.from && ctx.start < w.to) {
        return Verdict::global_error(0);
      }
    }
    return Verdict::ok();
  }

 private:
  struct Window {
    sim::Time from, to;
  };
  std::vector<Window> windows_;
};

/// Combines injectors: the first non-kNone verdict wins.
class CompositeFaults final : public FaultInjector {
 public:
  CompositeFaults& add(FaultInjector& injector) {
    children_.push_back(&injector);
    return *this;
  }

  Verdict judge(const TxContext& ctx) override {
    for (FaultInjector* child : children_) {
      Verdict v = child->judge(ctx);
      if (v.kind != FaultKind::kNone) return v;
    }
    return Verdict::ok();
  }

 private:
  std::vector<FaultInjector*> children_;
};

}  // namespace canely::can
