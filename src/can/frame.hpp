#pragma once
// CAN frame value type (ISO 11898, data and remote frames, base and
// extended identifier formats).

#include <array>
#include <cstdint>
#include <ostream>
#include <span>

#include "can/types.hpp"

namespace canely::can {

/// Maximum payload of a classic CAN data frame.
inline constexpr std::size_t kMaxData = 8;

/// Identifier format.
enum class IdFormat : std::uint8_t {
  kBase,      ///< 11-bit identifier (CAN 2.0A)
  kExtended,  ///< 29-bit identifier (CAN 2.0B)
};

/// A CAN data or remote frame.
///
/// Remote frames carry no payload; their DLC still encodes the length of
/// the data frame they solicit.  The paper's protocol suite encapsulates
/// life-signs, failure-signs, JOIN and LEAVE requests in remote frames
/// (saving the data field), and RHV signals in data frames.
// canely-lint: allow(wire-layout) — frames are bit-serialized field by field (bitstream.cpp); in-memory padding never reaches the wire
struct Frame {
  std::uint32_t id{0};          ///< 11-bit (base) or 29-bit (extended) identifier
  IdFormat format{IdFormat::kBase};
  bool remote{false};           ///< true => remote frame (RTR bit recessive)
  std::uint8_t dlc{0};          ///< data length code, 0..8
  std::array<std::uint8_t, kMaxData> data{};

  /// Memoized on-wire length, maintained by frame_bits_on_wire()
  /// (bitstream.cpp).  The key packs every serialized field plus the
  /// cached bit count; `wire_memo_data` snapshots the payload.  A lookup
  /// only hits when both match the frame's current fields, so mutating a
  /// frame after a length query can never return a stale count.  0 = not
  /// yet computed.  Ignored by operator== and never serialized.
  mutable std::uint64_t wire_memo_key{0};
  mutable std::uint64_t wire_memo_data{0};

  [[nodiscard]] static Frame make_data(std::uint32_t id, std::span<const std::uint8_t> payload,
                                        IdFormat format = IdFormat::kBase);
  [[nodiscard]] static Frame make_remote(std::uint32_t id, std::uint8_t dlc = 0,
                                          IdFormat format = IdFormat::kBase);

  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    return {data.data(), static_cast<std::size_t>(dlc > 8 ? 8 : dlc)};
  }

  /// Arbitration key: numerically smaller == higher bus priority.
  ///
  /// Encodes the ISO 11898 arbitration rules: identifiers are compared bit
  /// by bit MSB-first; a base frame wins over an extended frame with the
  /// same leading 11 bits (SRR/IDE recessive in the extended frame); a data
  /// frame wins over a remote frame with the same identifier (RTR
  /// recessive in the remote frame).
  [[nodiscard]] std::uint64_t arbitration_key() const;

  /// Two frames are wire-identical (would merge on the bus) iff every bit
  /// of their serialization matches.
  friend bool operator==(const Frame&, const Frame&);

  friend std::ostream& operator<<(std::ostream& os, const Frame& f);
};

}  // namespace canely::can
