#pragma once
// Bit-accurate CAN frame serialization: CRC-15, bit stuffing, and exact
// on-wire frame lengths.
//
// Bandwidth numbers in the paper's Figure 10 and the inaccessibility
// bounds of Figure 11 are expressed in bit-times; the reproduction earns
// its numbers by serializing every frame exactly as ISO 11898 specifies
// (SOF, arbitration field, control field, data, CRC) and applying real
// bit stuffing, rather than using the usual "47 + 8·dlc + worst-case"
// approximations.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "can/frame.hpp"

namespace canely::can {

/// Fixed field widths (ISO 11898-1).
inline constexpr std::size_t kCrcDelimiterBits = 1;
inline constexpr std::size_t kAckSlotBits = 1;
inline constexpr std::size_t kAckDelimiterBits = 1;
inline constexpr std::size_t kEofBits = 7;
/// Unstuffed tail after the CRC sequence: delimiter + ACK + EOF.
inline constexpr std::size_t kFrameTailBits =
    kCrcDelimiterBits + kAckSlotBits + kAckDelimiterBits + kEofBits;  // 10
/// Interframe space between consecutive frames.
inline constexpr std::size_t kIntermissionBits = 3;

/// Error signaling costs (used by the bus model and by the
/// inaccessibility analysis of Figure 11).
inline constexpr std::size_t kErrorFlagBits = 6;       ///< one error flag
inline constexpr std::size_t kErrorFlagMaxBits = 12;   ///< superposed flags
inline constexpr std::size_t kErrorDelimiterBits = 8;
inline constexpr std::size_t kOverloadFlagBits = 6;
inline constexpr std::size_t kOverloadDelimiterBits = 8;
inline constexpr std::size_t kSuspendTransmissionBits = 8;  ///< error-passive

/// Longest possible unstuffed SOF..CRC sequence: an extended data frame
/// with 8 data bytes (1 SOF + 32 arbitration/control + 64 data + 15 CRC
/// + 6 more arbitration bits of the extended format = 118).  Sizes the
/// stack buffers of the allocation-free serialization paths below.
inline constexpr std::size_t kMaxRawBits = 118;
/// Same, after worst-case bit stuffing (one stuff bit per 4 after the
/// first 5): 118 + (118 - 1) / 4 = 147.
inline constexpr std::size_t kMaxStuffedBits =
    kMaxRawBits + (kMaxRawBits - 1) / 4;

/// Serialize the stuffable portion of a frame (SOF through the 15 CRC
/// bits), one bit per byte (0 = dominant, 1 = recessive), *before*
/// stuffing.  The CRC is computed and appended by this function.
[[nodiscard]] std::vector<std::uint8_t> raw_bits(const Frame& frame);

/// Allocation-free core of raw_bits(): serialize into `out`, which must
/// have room for kMaxRawBits entries.  Returns the number of bits written.
std::size_t raw_bits_into(const Frame& frame, std::uint8_t* out);

/// CRC-15-CAN (x^15+x^14+x^10+x^8+x^7+x^4+x^3+1) over a bit sequence.
/// Word-parallel: gathers eight byte-per-bit input bytes at a time and
/// steps a 256-entry table once per gathered byte.
[[nodiscard]] std::uint16_t crc15(std::span<const std::uint8_t> bits);

/// Bit-at-a-time reference implementations of the word-parallel routines
/// below.  Slow and obviously correct; retained as the oracle for the
/// property suite (tests/test_bitstream_parallel.cpp) and for inputs
/// longer than the stack packing buffers.
[[nodiscard]] std::uint16_t crc15_reference(std::span<const std::uint8_t> bits);
std::size_t stuff_into_reference(std::span<const std::uint8_t> bits,
                                 std::uint8_t* out);
[[nodiscard]] std::size_t count_stuff_bits_reference(
    std::span<const std::uint8_t> bits);
[[nodiscard]] std::optional<std::vector<std::uint8_t>> destuff_reference(
    std::span<const std::uint8_t> bits);

/// Apply ISO 11898 bit stuffing (a complement bit after every run of five
/// equal bits) to a bit sequence.  stuff_into/count_stuff_bits/destuff
/// are word-parallel: the input is packed 64 bits to a word and processed
/// run by run (countl_zero finds each run in one step) instead of bit by
/// bit.
[[nodiscard]] std::vector<std::uint8_t> stuff(std::span<const std::uint8_t> bits);

/// Allocation-free core of stuff(): write the stuffed sequence into
/// `out`, which must have room for `bits.size() + (bits.size() - 1) / 4`
/// entries (kMaxStuffedBits when the input is a frame serialization).
/// Returns the number of bits written.
std::size_t stuff_into(std::span<const std::uint8_t> bits, std::uint8_t* out);

/// Number of stuff bits that stuffing would insert.
[[nodiscard]] std::size_t count_stuff_bits(std::span<const std::uint8_t> bits);

/// Remove stuff bits.  Returns nullopt on a stuffing violation (six equal
/// consecutive bits — what a receiver flags as a stuff error).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> destuff(
    std::span<const std::uint8_t> bits);

/// Parse an unstuffed SOF..CRC bit sequence (as produced by raw_bits)
/// back into a Frame, verifying the CRC.  Returns nullopt on any format
/// or CRC violation — the receiver-side error detection of MCAN2.
[[nodiscard]] std::optional<Frame> decode_raw_bits(
    std::span<const std::uint8_t> bits);

/// Exact number of bits this frame occupies on the wire, from SOF through
/// the last EOF bit (intermission NOT included).  Memoized in the frame
/// (Frame::wire_memo_key): the first call serializes and stuffs, repeat
/// calls on an unmodified frame are a couple of compares.
[[nodiscard]] std::size_t frame_bits_on_wire(const Frame& frame);

/// First stuffed wire bit at which two frames sharing an arbitration key
/// diverge — the instant both colliding transmitters detect the bit
/// error (one of them reads back a dominant bit it did not send, or vice
/// versa).  Divergence is guaranteed for unequal frames: they differ in
/// the RTR bit, the control field, the data field, or the CRC.
/// Allocation-free (stack buffers only).
[[nodiscard]] std::int32_t first_divergent_wire_bit(const Frame& a,
                                                    const Frame& b);

/// Worst-case on-wire length (maximum stuffing) for a frame with `dlc`
/// data bytes — the classic bound used in response-time analysis
/// (Tindell & Burns): stuffable length S = 34 + 8·dlc (base format) or
/// 54 + 8·dlc (extended), worst stuffing floor((S-1)/4), plus the
/// 10-bit tail.
[[nodiscard]] constexpr std::size_t max_frame_bits_on_wire(std::size_t dlc,
                                                           IdFormat format,
                                                           bool remote = false) {
  const std::size_t data_bits = remote ? 0 : 8 * dlc;
  const std::size_t stuffable =
      (format == IdFormat::kBase ? 34 : 54) + data_bits;
  return stuffable + (stuffable - 1) / 4 + kFrameTailBits;
}

}  // namespace canely::can
