#include "can/frame.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

namespace canely::can {

Frame Frame::make_data(std::uint32_t id, std::span<const std::uint8_t> payload,
                       IdFormat format) {
  if (payload.size() > kMaxData) {
    throw std::invalid_argument("CAN payload exceeds 8 bytes");
  }
  Frame f;
  f.id = id;
  f.format = format;
  f.remote = false;
  f.dlc = static_cast<std::uint8_t>(payload.size());
  std::copy(payload.begin(), payload.end(), f.data.begin());
  return f;
}

Frame Frame::make_remote(std::uint32_t id, std::uint8_t dlc, IdFormat format) {
  if (dlc > kMaxData) {
    throw std::invalid_argument("CAN DLC exceeds 8");
  }
  Frame f;
  f.id = id;
  f.format = format;
  f.remote = true;
  f.dlc = dlc;
  return f;
}

std::uint64_t Frame::arbitration_key() const {
  // Layout (MSB first), mirroring the order bits appear on the wire:
  //   [base-11][SRR/RTR'][IDE][ext-18][RTR]
  // For a base frame the 18 extension bits never reach the wire; filling
  // them with zero preserves the dominant-wins ordering because the base
  // frame has already won at the IDE bit.
  const std::uint64_t base11 = (format == IdFormat::kBase)
                                   ? (id & 0x7FF)
                                   : ((id >> 18) & 0x7FF);
  const std::uint64_t ide = (format == IdFormat::kExtended) ? 1 : 0;
  const std::uint64_t srr_or_rtr =
      (format == IdFormat::kExtended) ? 1 : (remote ? 1 : 0);
  const std::uint64_t ext18 =
      (format == IdFormat::kExtended) ? (id & 0x3FFFF) : 0;
  const std::uint64_t rtr_ext =
      (format == IdFormat::kExtended) ? (remote ? 1 : 0) : 0;
  return (base11 << 21) | (srr_or_rtr << 20) | (ide << 19) | (ext18 << 1) |
         rtr_ext;
}

bool operator==(const Frame& a, const Frame& b) {
  if (a.id != b.id || a.format != b.format || a.remote != b.remote ||
      a.dlc != b.dlc) {
    return false;
  }
  if (a.remote) return true;  // remote frames carry no data
  return std::equal(a.data.begin(), a.data.begin() + a.dlc, b.data.begin());
}

std::ostream& operator<<(std::ostream& os, const Frame& f) {
  os << (f.format == IdFormat::kExtended ? "x" : "") << "0x" << std::hex
     << f.id << std::dec << (f.remote ? " RTR" : "") << " dlc=" << int{f.dlc};
  if (!f.remote && f.dlc > 0) {
    os << " [";
    for (std::size_t i = 0; i < f.dlc; ++i) {
      os << (i ? " " : "") << std::hex << std::setw(2) << std::setfill('0')
         << int{f.data[i]} << std::dec << std::setfill(' ');
    }
    os << "]";
  }
  return os;
}

}  // namespace canely::can
