#include "can/bitstream.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#if defined(CANELY_BITSTREAM_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace canely::can {
namespace {

/// Sequential bit writer over a caller-provided buffer — the
/// allocation-free serialization core shares one code path with the
/// vector-returning convenience wrappers.
class BitWriter {
 public:
  explicit BitWriter(std::uint8_t* out) : out_{out} {}
  void bit(bool recessive) { out_[n_++] = recessive ? 1 : 0; }
  void field(std::uint32_t value, int width) {
    for (int i = width - 1; i >= 0; --i) {
      bit((value >> i) & 1);
    }
  }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::uint8_t* out_;
  std::size_t n_{0};
};

// ---------------------------------------------------------------------------
// Word-parallel machinery.
//
// Bit sequences are packed MSB-first into 64-bit words: sequence bit i
// lives in word i>>6 at bit position 63-(i&63), so "earlier on the wire"
// is always "more significant" and countl_zero on a shifted word yields
// the length of the run at the cursor in one instruction.
// ---------------------------------------------------------------------------

constexpr std::uint16_t kCrcPoly = 0x4599;

constexpr std::uint16_t crc15_bit(std::uint16_t crc, unsigned bit) {
  const unsigned fb = ((crc >> 14) ^ bit) & 1;
  crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
  return fb != 0 ? static_cast<std::uint16_t>(crc ^ kCrcPoly) : crc;
}

/// T[x] = register state after clocking 8 zero input bits from state
/// (x << 7).  The per-bit step is linear over GF(2), so for the full
/// 15-bit register D = crc ^ (byte << 7) (input byte folded into the top
/// 8 bits) the 8-step image splits as
///   F(D) = ((D & 0x7F) << 8) ^ T[D >> 7]
/// — the low 7 bits just shift up without ever reaching the feedback tap.
constexpr std::array<std::uint16_t, 256> make_crc15_table() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned x = 0; x < 256; ++x) {
    auto crc = static_cast<std::uint16_t>(x << 7);
    for (int i = 0; i < 8; ++i) crc = crc15_bit(crc, 0);
    t[x] = crc;
  }
  return t;
}

constexpr std::array<std::uint16_t, 256> kCrc15Table = make_crc15_table();

constexpr std::uint16_t crc15_byte(std::uint16_t crc, std::uint8_t byte) {
  return static_cast<std::uint16_t>(
      ((crc << 8) & 0x7FFF) ^ kCrc15Table[((crc >> 7) & 0xFF) ^ byte]);
}

/// Gather 8 byte-per-bit bytes (little-endian load: input bit j at word
/// bit 8j) into one MSB-first byte.  The multiply places bit 8j at
/// position 8j + (63 - 9j) = 63 - j; every other partial product lands
/// strictly below bit 55 with at most one term per position, so no carry
/// can reach the top byte.
inline std::uint8_t gather8(const std::uint8_t* p) {
  std::uint64_t x;
  std::memcpy(&x, p, sizeof x);
  return static_cast<std::uint8_t>(
      ((x & 0x0101010101010101ULL) * 0x8040201008040201ULL) >> 56);
}

#if defined(CANELY_BITSTREAM_SIMD) && defined(__AVX2__)
/// Pack 32 byte-per-bit bytes into one MSB-first 32-bit group: reverse
/// the vector (movemask emits byte 0 at result bit 0; the wire wants it
/// at bit 31), compare against zero, take the sign mask.
inline std::uint32_t pack32_simd(const std::uint8_t* p) {
  const __m256i rev = _mm256_setr_epi8(  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0,  //
      15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
  __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  x = _mm256_shuffle_epi8(x, rev);          // reverse within each lane
  x = _mm256_permute2x128_si256(x, x, 1);   // swap lanes: full reverse
  const __m256i nz = _mm256_cmpgt_epi8(x, _mm256_setzero_si256());
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(nz));
}
#endif

/// Stack packing capacity for the word-parallel public entry points.
/// Frames need 2 words (kMaxRawBits = 118); property tests feed longer
/// adversarial sequences; anything beyond 512 bits falls back to the
/// bit-at-a-time reference.
constexpr std::size_t kPackWords = 8;
constexpr std::size_t kPackCapBits = kPackWords * 64;

/// Pack a byte-per-bit sequence into MSB-first words (zeroing the words
/// it touches).  Caller guarantees bits.size() <= 64 * word capacity.
void pack_bits(std::span<const std::uint8_t> bits, std::uint64_t* w) {
  const std::size_t n = bits.size();
  if (n == 0) return;
  std::memset(w, 0, ((n + 63) >> 6) * sizeof(std::uint64_t));
  std::size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
#if defined(CANELY_BITSTREAM_SIMD) && defined(__AVX2__)
    for (; i + 32 <= n; i += 32) {
      w[i >> 6] |= static_cast<std::uint64_t>(pack32_simd(bits.data() + i))
                   << (32 - (i & 63));
    }
#endif
    for (; i + 8 <= n; i += 8) {
      w[i >> 6] |= static_cast<std::uint64_t>(gather8(bits.data() + i))
                   << (56 - (i & 63));
    }
  }
  for (; i < n; ++i) {
    w[i >> 6] |= static_cast<std::uint64_t>(bits[i] & 1) << (63 - (i & 63));
  }
}

/// Iterate the maximal runs of equal bits in a packed sequence.  Each
/// next() finds one run with countl_zero per touched word instead of a
/// per-bit loop; successive runs always alternate in value.
struct RunWalker {
  const std::uint64_t* w;
  std::size_t n;
  std::size_t pos{0};

  bool next(unsigned& v, std::size_t& len) {
    if (pos >= n) return false;
    v = static_cast<unsigned>((w[pos >> 6] >> (63 - (pos & 63))) & 1);
    len = 0;
    while (pos < n) {
      std::uint64_t t = w[pos >> 6] << (pos & 63);
      if (v != 0) t = ~t;  // run bits become leading zeros either way
      const std::size_t avail = std::min<std::size_t>(64 - (pos & 63), n - pos);
      const auto l =
          std::min<std::size_t>(static_cast<unsigned>(std::countl_zero(t)),
                                avail);
      len += l;
      pos += l;
      if (l < avail) return true;  // run ended inside this word
    }
    return true;  // run ran to end of sequence
  }
};

/// CRC-15 over a packed sequence: one table step per whole byte, bit
/// steps for the tail.
std::uint16_t crc15_packed(const std::uint64_t* w, std::size_t n) {
  std::uint16_t crc = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const auto byte = static_cast<std::uint8_t>(w[i >> 6] >> (56 - (i & 63)));
    crc = crc15_byte(crc, byte);
  }
  for (; i < n; ++i) {
    crc = crc15_bit(
        crc, static_cast<unsigned>((w[i >> 6] >> (63 - (i & 63))) & 1));
  }
  return crc;
}

/// Stuff-bit count over a packed sequence, bit-parallel.
///
/// An equal-run of e bits inserts a stuff at count 5 and then after
/// every 5 more (the inserted complement restarts the counter): in
/// isolation, 1 + (e-5)/5 stuffs.  Runs with e >= 5 are found without
/// scanning: d_i = (bit_i != bit_{i-1}) turns equal-runs into zero-runs
/// of d, and m = z & z<<1 & z<<2 & z<<3 (z = ~d, shifts word-carried)
/// marks exactly the positions heading 4+ consecutive z-ones — a run of
/// e equal bits yields a block of L = e-4 contiguous marks, disjoint
/// from every other run's block, contributing 1 + (L-1)/5 stuffs.
///
/// Runs are *not* quite independent: when a run's count ends exactly on
/// a stuff (effective length ≡ 0 mod 5), the inserted complement is the
/// first bit of the next run's value, crediting it with one extra bit.
/// That credit adds a stuff — and re-arms itself — exactly when the
/// next run's length ≡ 4 (mod 5); a credited run never starts a fresh
/// chain of its own (its remainder is shifted by one).  The chain walk
/// below patches this sparse interaction; typical CAN payloads leave m
/// almost empty, so the whole count touches a handful of mark blocks
/// instead of every bit or every run.
std::size_t count_stuff_bits_packed(const std::uint64_t* w, std::size_t n) {
  if (n < 5) return 0;
  const std::size_t words = (n + 63) >> 6;
  std::uint64_t z[kPackWords + 1];
  for (std::size_t k = 0; k < words; ++k) {
    const std::uint64_t prev = (w[k] >> 1) | (k > 0 ? w[k - 1] << 63 : 0);
    std::uint64_t d = w[k] ^ prev;
    if (k == 0) d |= 1ULL << 63;  // the first bit always starts a run
    z[k] = ~d;
  }
  // Bits past n-1 are garbage: force a run break there.
  if ((n & 63) != 0) z[words - 1] &= ~((1ULL << (64 - (n & 63))) - 1);
  z[words] = 0;

  // Consecutive z-ones from bit index i: the remaining length of the
  // equal-run whose first bit sits just before i.
  const auto ones_from = [&](std::size_t i) {
    std::size_t c = 0;
    while (i < n) {
      const std::uint64_t t = z[i >> 6] << (i & 63);
      const std::size_t avail = std::min<std::size_t>(64 - (i & 63), n - i);
      const auto o =
          std::min<std::size_t>(static_cast<unsigned>(std::countl_one(t)),
                                avail);
      c += o;
      i += o;
      if (o < avail) break;
    }
    return c;
  };

  std::size_t stuffed = 0;
  std::size_t skip_until = 0;  // chain-credited region: no fresh chains
  // A mark block of length L starting at index s covers the run of bits
  // s-1 .. s+L+2 (e = L+4); its base contribution is 1 + (L-1)/5.
  const auto flush_block = [&](std::size_t s, std::size_t len) {
    stuffed += 1 + (len - 1) / 5;
    if (s < skip_until || len % 5 != 1) return;  // e % 5 != 0, or credited
    std::size_t q = s + len + 3;  // first bit of the following run
    while (q < n) {
      const std::size_t rl = 1 + ones_from(q + 1);
      if (rl % 5 != 4) {
        skip_until = q + rl;  // credited but chain-breaking run
        return;
      }
      ++stuffed;  // credit completes a group of 5; chain re-arms
      q += rl;
    }
    skip_until = n;
  };

  std::size_t run = 0;  // mark-block length carried across a word edge
  std::size_t run_start = 0;
  for (std::size_t k = 0; k < words; ++k) {
    const std::uint64_t mk = z[k]                            //
                             & ((z[k] << 1) | (z[k + 1] >> 63))
                             & ((z[k] << 2) | (z[k + 1] >> 62))
                             & ((z[k] << 3) | (z[k + 1] >> 61));
    unsigned pos = 0;
    while (pos < 64) {
      std::uint64_t t = mk << pos;
      if (run == 0) {
        if (t == 0) break;
        pos += static_cast<unsigned>(std::countl_zero(t));
        t = mk << pos;
        run_start = k * 64 + pos;
      }
      const auto ones = static_cast<unsigned>(std::countl_one(t));
      run += ones;
      pos += ones;
      if (pos < 64) {  // block ended inside this word
        flush_block(run_start, run);
        run = 0;
      }
    }
  }
  if (run > 0) flush_block(run_start, run);
  return stuffed;
}

/// Word-packed serialization of the stuffable portion (SOF..CRC),
/// mirroring raw_bits_into bit for bit: the fixed header collapses to a
/// single field insert, data bytes to one more, and the CRC runs
/// byte-at-a-time over the packed words.  `w` must hold 2 words.
std::size_t raw_bits_packed(const Frame& frame, std::uint64_t* w) {
  w[0] = 0;
  w[1] = 0;
  std::size_t n = 0;
  const auto field = [&](std::uint64_t value, unsigned width) {
    const std::size_t word = n >> 6;
    const auto off = static_cast<unsigned>(n & 63);
    n += width;
    if (off + width <= 64) {
      w[word] |= value << (64 - off - width);
    } else {
      const unsigned spill = off + width - 64;
      w[word] |= value >> spill;
      w[word + 1] |= value << (64 - spill);
    }
  };
  if (frame.format == IdFormat::kBase) {
    // SOF(0) id:11 RTR IDE(0) r0(0) DLC:4 — one 19-bit insert.
    field((static_cast<std::uint64_t>(frame.id & 0x7FF) << 7) |
              (frame.remote ? 1ULL << 6 : 0) | (frame.dlc & 0xFU),
          19);
  } else {
    // SOF(0) id>>18:11 SRR(1) IDE(1) id&0x3FFFF:18 RTR r1(0) r0(0) DLC:4
    // — one 39-bit insert.
    field((static_cast<std::uint64_t>((frame.id >> 18) & 0x7FF) << 27) |
              (3ULL << 25) |
              (static_cast<std::uint64_t>(frame.id & 0x3FFFF) << 7) |
              (frame.remote ? 1ULL << 6 : 0) | (frame.dlc & 0xFU),
          39);
  }
  if (!frame.remote && frame.dlc > 0) {
    const unsigned nd = std::min<unsigned>(frame.dlc, kMaxData);
    static_assert(sizeof(frame.data) == sizeof(std::uint64_t));
    std::uint64_t data;
    std::memcpy(&data, frame.data.data(), sizeof data);
    if constexpr (std::endian::native == std::endian::little) {
      data = __builtin_bswap64(data);  // data[0] transmits first (MSB)
    }
    field(data >> (64 - 8 * nd), 8 * nd);
  }
  field(crc15_packed(w, n), 15);
  return n;
}

}  // namespace

std::uint16_t crc15(std::span<const std::uint8_t> bits) {
  std::uint16_t crc = 0;
  std::size_t i = 0;
  const std::size_t n = bits.size();
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= n; i += 8) {
      crc = crc15_byte(crc, gather8(bits.data() + i));
    }
  }
  for (; i < n; ++i) {
    crc = crc15_bit(crc, bits[i] & 1U);
  }
  return crc;
}

std::uint16_t crc15_reference(std::span<const std::uint8_t> bits) {
  // ISO 11898-1 CRC: polynomial 0x4599, 15-bit register, no reflection.
  std::uint16_t crc = 0;
  for (std::uint8_t b : bits) {
    const std::uint16_t crc_next =
        static_cast<std::uint16_t>((b & 1) ^ ((crc >> 14) & 1));
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (crc_next) crc ^= 0x4599;
  }
  return crc;
}

// canely-lint: hot-path
std::size_t raw_bits_into(const Frame& frame, std::uint8_t* out) {
  BitWriter w{out};
  w.bit(false);  // SOF (dominant)
  if (frame.format == IdFormat::kBase) {
    w.field(frame.id & 0x7FF, 11);  // identifier
    w.bit(frame.remote);            // RTR
    w.bit(false);                   // IDE (dominant = base)
    w.bit(false);                   // r0
  } else {
    w.field((frame.id >> 18) & 0x7FF, 11);  // base identifier
    w.bit(true);                            // SRR (recessive)
    w.bit(true);                            // IDE (recessive = ext)
    w.field(frame.id & 0x3FFFF, 18);        // identifier extension
    w.bit(frame.remote);                    // RTR
    w.bit(false);                           // r1
    w.bit(false);                           // r0
  }
  w.field(frame.dlc & 0xF, 4);  // DLC
  if (!frame.remote) {
    for (std::size_t i = 0; i < frame.dlc; ++i) {
      w.field(frame.data[i], 8);
    }
  }
  const std::uint16_t crc = crc15({out, w.size()});
  w.field(crc, 15);
  return w.size();
}

std::vector<std::uint8_t> raw_bits(const Frame& frame) {
  std::vector<std::uint8_t> bits(kMaxRawBits);
  bits.resize(raw_bits_into(frame, bits.data()));
  return bits;
}

// canely-lint: hot-path
std::size_t stuff_into(std::span<const std::uint8_t> bits, std::uint8_t* out) {
  if (bits.size() > kPackCapBits) return stuff_into_reference(bits, out);
  std::uint64_t w[kPackWords];
  pack_bits(bits, w);
  std::size_t written = 0;
  RunWalker rw{w, bits.size()};
  unsigned v = 0;
  std::size_t len = 0;
  int last = -1;
  std::size_t run = 0;
  while (rw.next(v, len)) {
    const std::size_t k = static_cast<int>(v) == last ? run : 0;
    if (k + len < 5) {
      std::memset(out + written, static_cast<int>(v), len);
      written += len;
      last = static_cast<int>(v);
      run = k + len;
      continue;
    }
    const std::uint8_t comp = v != 0 ? 0 : 1;
    const std::size_t first = 5 - k;  // run bits before the first stuff
    std::memset(out + written, static_cast<int>(v), first);
    written += first;
    out[written++] = comp;
    std::size_t rem = len - first;
    while (rem >= 5) {
      std::memset(out + written, static_cast<int>(v), 5);
      written += 5;
      out[written++] = comp;
      rem -= 5;
    }
    std::memset(out + written, static_cast<int>(v), rem);
    written += rem;
    if (rem > 0) {
      last = static_cast<int>(v);
      run = rem;
    } else {
      last = comp;
      run = 1;
    }
  }
  return written;
}

std::size_t stuff_into_reference(std::span<const std::uint8_t> bits,
                                 std::uint8_t* out) {
  std::size_t n = 0;
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    out[n++] = b;
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      const std::uint8_t complement = b ? 0 : 1;
      out[n++] = complement;
      last = complement;
      run = 1;
    }
  }
  return n;
}

std::vector<std::uint8_t> stuff(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out(bits.size() + bits.size() / 4 + 1);
  out.resize(stuff_into(bits, out.data()));
  return out;
}

// canely-lint: hot-path
std::size_t count_stuff_bits(std::span<const std::uint8_t> bits) {
  if (bits.size() > kPackCapBits) return count_stuff_bits_reference(bits);
  std::uint64_t w[kPackWords];
  pack_bits(bits, w);
  return count_stuff_bits_packed(w, bits.size());
}

std::size_t count_stuff_bits_reference(std::span<const std::uint8_t> bits) {
  std::size_t stuffed = 0;
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      last = b ? 0 : 1;  // the inserted complement starts a new run
      run = 1;
    }
  }
  return stuffed;
}

namespace {

/// Frame::wire_memo_key layout: bit 63 = valid, bits 35..42 = cached
/// on-wire bit count (max 147 < 256), bits 0..34 = every field that
/// feeds serialization (id, format, remote, dlc).  The payload snapshot
/// lives separately in wire_memo_data.
constexpr std::uint64_t kMemoBitsMask = 0xFFULL << 35;

constexpr std::uint64_t memo_key(const Frame& f, std::size_t wire_bits) {
  return (1ULL << 63) | (static_cast<std::uint64_t>(wire_bits & 0xFF) << 35) |
         (static_cast<std::uint64_t>(f.dlc & 0xF) << 31) |
         (static_cast<std::uint64_t>(f.remote ? 1 : 0) << 30) |
         (static_cast<std::uint64_t>(f.format == IdFormat::kExtended ? 1 : 0)
          << 29) |
         (f.id & 0x1FFF'FFFF);
}

}  // namespace

// canely-lint: hot-path
std::size_t frame_bits_on_wire(const Frame& frame) {
  static_assert(sizeof(frame.data) == sizeof(std::uint64_t));
  std::uint64_t data;
  std::memcpy(&data, frame.data.data(), sizeof data);
  const std::uint64_t key = memo_key(frame, 0);
  if ((frame.wire_memo_key & ~kMemoBitsMask) == key &&
      frame.wire_memo_data == data) {
    return (frame.wire_memo_key >> 35) & 0xFF;
  }
  // Memo miss: serialize and count stuff bits entirely in packed words —
  // never touches a byte-per-bit buffer.
  std::uint64_t raw[2];
  const std::size_t n = raw_bits_packed(frame, raw);
  const std::size_t wire_bits =
      n + count_stuff_bits_packed(raw, n) + kFrameTailBits;
  frame.wire_memo_key = memo_key(frame, wire_bits);
  frame.wire_memo_data = data;
  return wire_bits;
}

// canely-lint: hot-path
std::int32_t first_divergent_wire_bit(const Frame& a, const Frame& b) {
  std::uint8_t ra[kMaxRawBits];
  std::uint8_t rb[kMaxRawBits];
  std::uint8_t wa[kMaxStuffedBits];
  std::uint8_t wb[kMaxStuffedBits];
  const std::size_t na = stuff_into({ra, raw_bits_into(a, ra)}, wa);
  const std::size_t nb = stuff_into({rb, raw_bits_into(b, rb)}, wb);
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 0; i < n; ++i) {
    if (wa[i] != wb[i]) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(n);  // shorter stream ran out first
}

std::optional<std::vector<std::uint8_t>> destuff(
    std::span<const std::uint8_t> bits) {
  if (bits.size() > kPackCapBits) return destuff_reference(bits);
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  std::uint64_t w[kPackWords];
  pack_bits(bits, w);
  RunWalker rw{w, bits.size()};
  unsigned v = 0;
  std::size_t len = 0;
  int last = -1;
  std::size_t run = 0;
  bool skip = false;
  while (rw.next(v, len)) {
    if (skip) {
      // The stuff bit heads this run.  Maximal runs alternate in value,
      // so it always complements the five preceding bits — a same-value
      // sixth bit would have extended the previous run instead, tripping
      // the length check below.
      skip = false;
      last = static_cast<int>(v);
      run = 1;
      if (--len == 0) continue;
    }
    const std::size_t k = static_cast<int>(v) == last ? run : 0;
    const std::size_t total = k + len;
    if (total > 5) return std::nullopt;  // six equal consecutive bits
    out.insert(out.end(), len, static_cast<std::uint8_t>(v));
    last = static_cast<int>(v);
    run = total;
    if (total == 5) skip = true;
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> destuff_reference(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  int run = 0;
  int last = -1;
  bool skip_next = false;
  for (std::uint8_t b : bits) {
    if (skip_next) {
      // This position holds a stuff bit; it must complement the run.
      if (b == last) return std::nullopt;  // stuff error
      skip_next = false;
      last = b;
      run = 1;
      continue;
    }
    out.push_back(b);
    if (b == last) {
      if (++run == 5) skip_next = true;
    } else {
      last = b;
      run = 1;
    }
  }
  return out;
}

namespace {

/// Sequential bit reader over an unstuffed sequence.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_{bits} {}
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t consumed() const { return pos_; }

  std::uint32_t take(int width) {
    std::uint32_t v = 0;
    for (int i = 0; i < width; ++i) {
      if (pos_ >= bits_.size()) {
        ok_ = false;
        return 0;
      }
      v = (v << 1) | bits_[pos_++];
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace

std::optional<Frame> decode_raw_bits(std::span<const std::uint8_t> bits) {
  BitReader r{bits};
  if (r.take(1) != 0) return std::nullopt;  // SOF must be dominant

  Frame f;
  const std::uint32_t base_id = r.take(11);
  const std::uint32_t rtr_or_srr = r.take(1);
  const std::uint32_t ide = r.take(1);
  if (ide == 0) {
    f.format = IdFormat::kBase;
    f.id = base_id;
    f.remote = rtr_or_srr != 0;
    r.take(1);  // r0
  } else {
    if (rtr_or_srr != 1) return std::nullopt;  // SRR must be recessive
    f.format = IdFormat::kExtended;
    const std::uint32_t ext = r.take(18);
    f.id = (base_id << 18) | ext;
    f.remote = r.take(1) != 0;
    r.take(2);  // r1, r0
  }
  const std::uint32_t dlc = r.take(4);
  if (dlc > kMaxData) return std::nullopt;  // classic CAN caps at 8
  f.dlc = static_cast<std::uint8_t>(dlc);
  if (!f.remote) {
    for (std::size_t i = 0; i < f.dlc; ++i) {
      f.data[i] = static_cast<std::uint8_t>(r.take(8));
    }
  }
  if (!r.ok()) return std::nullopt;
  // CRC covers everything read so far; verify against the trailing 15.
  const std::uint16_t expect = crc15(bits.subspan(0, r.consumed()));
  const auto got = static_cast<std::uint16_t>(r.take(15));
  if (!r.ok() || got != expect) return std::nullopt;
  if (r.consumed() != bits.size()) return std::nullopt;  // trailing junk
  return f;
}

}  // namespace canely::can
