#include "can/bitstream.hpp"

namespace canely::can {
namespace {

void push_bit(std::vector<std::uint8_t>& bits, bool recessive) {
  bits.push_back(recessive ? 1 : 0);
}

void push_field(std::vector<std::uint8_t>& bits, std::uint32_t value,
                int width) {
  for (int i = width - 1; i >= 0; --i) {
    push_bit(bits, (value >> i) & 1);
  }
}

}  // namespace

std::uint16_t crc15(std::span<const std::uint8_t> bits) {
  // ISO 11898-1 CRC: polynomial 0x4599, 15-bit register, no reflection.
  std::uint16_t crc = 0;
  for (std::uint8_t b : bits) {
    const std::uint16_t crc_next =
        static_cast<std::uint16_t>((b & 1) ^ ((crc >> 14) & 1));
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (crc_next) crc ^= 0x4599;
  }
  return crc;
}

std::vector<std::uint8_t> raw_bits(const Frame& frame) {
  std::vector<std::uint8_t> bits;
  bits.reserve(128);

  push_bit(bits, false);  // SOF (dominant)
  if (frame.format == IdFormat::kBase) {
    push_field(bits, frame.id & 0x7FF, 11);  // identifier
    push_bit(bits, frame.remote);            // RTR
    push_bit(bits, false);                   // IDE (dominant = base)
    push_bit(bits, false);                   // r0
  } else {
    push_field(bits, (frame.id >> 18) & 0x7FF, 11);  // base identifier
    push_bit(bits, true);                            // SRR (recessive)
    push_bit(bits, true);                            // IDE (recessive = ext)
    push_field(bits, frame.id & 0x3FFFF, 18);        // identifier extension
    push_bit(bits, frame.remote);                    // RTR
    push_bit(bits, false);                           // r1
    push_bit(bits, false);                           // r0
  }
  push_field(bits, frame.dlc & 0xF, 4);  // DLC
  if (!frame.remote) {
    for (std::size_t i = 0; i < frame.dlc; ++i) {
      push_field(bits, frame.data[i], 8);
    }
  }
  const std::uint16_t crc = crc15(bits);
  push_field(bits, crc, 15);
  return bits;
}

std::vector<std::uint8_t> stuff(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() + bits.size() / 4);
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    out.push_back(b);
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      const std::uint8_t complement = b ? 0 : 1;
      out.push_back(complement);
      last = complement;
      run = 1;
    }
  }
  return out;
}

std::size_t count_stuff_bits(std::span<const std::uint8_t> bits) {
  std::size_t stuffed = 0;
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      last = b ? 0 : 1;  // the inserted complement starts a new run
      run = 1;
    }
  }
  return stuffed;
}

std::size_t frame_bits_on_wire(const Frame& frame) {
  const auto bits = raw_bits(frame);
  return bits.size() + count_stuff_bits(bits) + kFrameTailBits;
}

std::optional<std::vector<std::uint8_t>> destuff(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  int run = 0;
  int last = -1;
  bool skip_next = false;
  for (std::uint8_t b : bits) {
    if (skip_next) {
      // This position holds a stuff bit; it must complement the run.
      if (b == last) return std::nullopt;  // stuff error
      skip_next = false;
      last = b;
      run = 1;
      continue;
    }
    out.push_back(b);
    if (b == last) {
      if (++run == 5) skip_next = true;
    } else {
      last = b;
      run = 1;
    }
  }
  return out;
}

namespace {

/// Sequential bit reader over an unstuffed sequence.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_{bits} {}
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t consumed() const { return pos_; }

  std::uint32_t take(int width) {
    std::uint32_t v = 0;
    for (int i = 0; i < width; ++i) {
      if (pos_ >= bits_.size()) {
        ok_ = false;
        return 0;
      }
      v = (v << 1) | bits_[pos_++];
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace

std::optional<Frame> decode_raw_bits(std::span<const std::uint8_t> bits) {
  BitReader r{bits};
  if (r.take(1) != 0) return std::nullopt;  // SOF must be dominant

  Frame f;
  const std::uint32_t base_id = r.take(11);
  const std::uint32_t rtr_or_srr = r.take(1);
  const std::uint32_t ide = r.take(1);
  if (ide == 0) {
    f.format = IdFormat::kBase;
    f.id = base_id;
    f.remote = rtr_or_srr != 0;
    r.take(1);  // r0
  } else {
    if (rtr_or_srr != 1) return std::nullopt;  // SRR must be recessive
    f.format = IdFormat::kExtended;
    const std::uint32_t ext = r.take(18);
    f.id = (base_id << 18) | ext;
    f.remote = r.take(1) != 0;
    r.take(2);  // r1, r0
  }
  const std::uint32_t dlc = r.take(4);
  if (dlc > kMaxData) return std::nullopt;  // classic CAN caps at 8
  f.dlc = static_cast<std::uint8_t>(dlc);
  if (!f.remote) {
    for (std::size_t i = 0; i < f.dlc; ++i) {
      f.data[i] = static_cast<std::uint8_t>(r.take(8));
    }
  }
  if (!r.ok()) return std::nullopt;
  // CRC covers everything read so far; verify against the trailing 15.
  const std::uint16_t expect = crc15(bits.subspan(0, r.consumed()));
  const auto got = static_cast<std::uint16_t>(r.take(15));
  if (!r.ok() || got != expect) return std::nullopt;
  if (r.consumed() != bits.size()) return std::nullopt;  // trailing junk
  return f;
}

}  // namespace canely::can
