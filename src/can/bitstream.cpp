#include "can/bitstream.hpp"

#include <algorithm>
#include <cstring>

namespace canely::can {
namespace {

/// Sequential bit writer over a caller-provided buffer — the
/// allocation-free serialization core shares one code path with the
/// vector-returning convenience wrappers.
class BitWriter {
 public:
  explicit BitWriter(std::uint8_t* out) : out_{out} {}
  void bit(bool recessive) { out_[n_++] = recessive ? 1 : 0; }
  void field(std::uint32_t value, int width) {
    for (int i = width - 1; i >= 0; --i) {
      bit((value >> i) & 1);
    }
  }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::uint8_t* out_;
  std::size_t n_{0};
};

}  // namespace

std::uint16_t crc15(std::span<const std::uint8_t> bits) {
  // ISO 11898-1 CRC: polynomial 0x4599, 15-bit register, no reflection.
  std::uint16_t crc = 0;
  for (std::uint8_t b : bits) {
    const std::uint16_t crc_next =
        static_cast<std::uint16_t>((b & 1) ^ ((crc >> 14) & 1));
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (crc_next) crc ^= 0x4599;
  }
  return crc;
}

// canely-lint: hot-path
std::size_t raw_bits_into(const Frame& frame, std::uint8_t* out) {
  BitWriter w{out};
  w.bit(false);  // SOF (dominant)
  if (frame.format == IdFormat::kBase) {
    w.field(frame.id & 0x7FF, 11);  // identifier
    w.bit(frame.remote);            // RTR
    w.bit(false);                   // IDE (dominant = base)
    w.bit(false);                   // r0
  } else {
    w.field((frame.id >> 18) & 0x7FF, 11);  // base identifier
    w.bit(true);                            // SRR (recessive)
    w.bit(true);                            // IDE (recessive = ext)
    w.field(frame.id & 0x3FFFF, 18);        // identifier extension
    w.bit(frame.remote);                    // RTR
    w.bit(false);                           // r1
    w.bit(false);                           // r0
  }
  w.field(frame.dlc & 0xF, 4);  // DLC
  if (!frame.remote) {
    for (std::size_t i = 0; i < frame.dlc; ++i) {
      w.field(frame.data[i], 8);
    }
  }
  const std::uint16_t crc = crc15({out, w.size()});
  w.field(crc, 15);
  return w.size();
}

std::vector<std::uint8_t> raw_bits(const Frame& frame) {
  std::vector<std::uint8_t> bits(kMaxRawBits);
  bits.resize(raw_bits_into(frame, bits.data()));
  return bits;
}

// canely-lint: hot-path
std::size_t stuff_into(std::span<const std::uint8_t> bits, std::uint8_t* out) {
  std::size_t n = 0;
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    out[n++] = b;
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      const std::uint8_t complement = b ? 0 : 1;
      out[n++] = complement;
      last = complement;
      run = 1;
    }
  }
  return n;
}

std::vector<std::uint8_t> stuff(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out(bits.size() + bits.size() / 4 + 1);
  out.resize(stuff_into(bits, out.data()));
  return out;
}

// canely-lint: hot-path
std::size_t count_stuff_bits(std::span<const std::uint8_t> bits) {
  std::size_t stuffed = 0;
  int run = 0;
  int last = -1;
  for (std::uint8_t b : bits) {
    if (b == last) {
      ++run;
    } else {
      last = b;
      run = 1;
    }
    if (run == 5) {
      ++stuffed;
      last = b ? 0 : 1;  // the inserted complement starts a new run
      run = 1;
    }
  }
  return stuffed;
}

namespace {

/// Frame::wire_memo_key layout: bit 63 = valid, bits 35..42 = cached
/// on-wire bit count (max 147 < 256), bits 0..34 = every field that
/// feeds serialization (id, format, remote, dlc).  The payload snapshot
/// lives separately in wire_memo_data.
constexpr std::uint64_t kMemoBitsMask = 0xFFULL << 35;

constexpr std::uint64_t memo_key(const Frame& f, std::size_t wire_bits) {
  return (1ULL << 63) | (static_cast<std::uint64_t>(wire_bits & 0xFF) << 35) |
         (static_cast<std::uint64_t>(f.dlc & 0xF) << 31) |
         (static_cast<std::uint64_t>(f.remote ? 1 : 0) << 30) |
         (static_cast<std::uint64_t>(f.format == IdFormat::kExtended ? 1 : 0)
          << 29) |
         (f.id & 0x1FFF'FFFF);
}

}  // namespace

// canely-lint: hot-path
std::size_t frame_bits_on_wire(const Frame& frame) {
  static_assert(sizeof(frame.data) == sizeof(std::uint64_t));
  std::uint64_t data;
  std::memcpy(&data, frame.data.data(), sizeof data);
  const std::uint64_t key = memo_key(frame, 0);
  if ((frame.wire_memo_key & ~kMemoBitsMask) == key &&
      frame.wire_memo_data == data) {
    return (frame.wire_memo_key >> 35) & 0xFF;
  }
  std::uint8_t raw[kMaxRawBits];
  const std::size_t n = raw_bits_into(frame, raw);
  const std::size_t wire_bits =
      n + count_stuff_bits({raw, n}) + kFrameTailBits;
  frame.wire_memo_key = memo_key(frame, wire_bits);
  frame.wire_memo_data = data;
  return wire_bits;
}

// canely-lint: hot-path
std::int32_t first_divergent_wire_bit(const Frame& a, const Frame& b) {
  std::uint8_t ra[kMaxRawBits];
  std::uint8_t rb[kMaxRawBits];
  std::uint8_t wa[kMaxStuffedBits];
  std::uint8_t wb[kMaxStuffedBits];
  const std::size_t na = stuff_into({ra, raw_bits_into(a, ra)}, wa);
  const std::size_t nb = stuff_into({rb, raw_bits_into(b, rb)}, wb);
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 0; i < n; ++i) {
    if (wa[i] != wb[i]) return static_cast<std::int32_t>(i);
  }
  return static_cast<std::int32_t>(n);  // shorter stream ran out first
}

std::optional<std::vector<std::uint8_t>> destuff(
    std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size());
  int run = 0;
  int last = -1;
  bool skip_next = false;
  for (std::uint8_t b : bits) {
    if (skip_next) {
      // This position holds a stuff bit; it must complement the run.
      if (b == last) return std::nullopt;  // stuff error
      skip_next = false;
      last = b;
      run = 1;
      continue;
    }
    out.push_back(b);
    if (b == last) {
      if (++run == 5) skip_next = true;
    } else {
      last = b;
      run = 1;
    }
  }
  return out;
}

namespace {

/// Sequential bit reader over an unstuffed sequence.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_{bits} {}
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t consumed() const { return pos_; }

  std::uint32_t take(int width) {
    std::uint32_t v = 0;
    for (int i = 0; i < width; ++i) {
      if (pos_ >= bits_.size()) {
        ok_ = false;
        return 0;
      }
      v = (v << 1) | bits_[pos_++];
    }
    return v;
  }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_{0};
  bool ok_{true};
};

}  // namespace

std::optional<Frame> decode_raw_bits(std::span<const std::uint8_t> bits) {
  BitReader r{bits};
  if (r.take(1) != 0) return std::nullopt;  // SOF must be dominant

  Frame f;
  const std::uint32_t base_id = r.take(11);
  const std::uint32_t rtr_or_srr = r.take(1);
  const std::uint32_t ide = r.take(1);
  if (ide == 0) {
    f.format = IdFormat::kBase;
    f.id = base_id;
    f.remote = rtr_or_srr != 0;
    r.take(1);  // r0
  } else {
    if (rtr_or_srr != 1) return std::nullopt;  // SRR must be recessive
    f.format = IdFormat::kExtended;
    const std::uint32_t ext = r.take(18);
    f.id = (base_id << 18) | ext;
    f.remote = r.take(1) != 0;
    r.take(2);  // r1, r0
  }
  const std::uint32_t dlc = r.take(4);
  if (dlc > kMaxData) return std::nullopt;  // classic CAN caps at 8
  f.dlc = static_cast<std::uint8_t>(dlc);
  if (!f.remote) {
    for (std::size_t i = 0; i < f.dlc; ++i) {
      f.data[i] = static_cast<std::uint8_t>(r.take(8));
    }
  }
  if (!r.ok()) return std::nullopt;
  // CRC covers everything read so far; verify against the trailing 15.
  const std::uint16_t expect = crc15(bits.subspan(0, r.consumed()));
  const auto got = static_cast<std::uint16_t>(r.take(15));
  if (!r.ok() || got != expect) return std::nullopt;
  if (r.consumed() != bits.size()) return std::nullopt;  // trailing junk
  return f;
}

}  // namespace canely::can
