#include "can/controller.hpp"

#include <algorithm>

#include "can/bus.hpp"

namespace canely::can {

Controller::Controller(NodeId node, Bus& bus) : node_{node}, bus_{bus} {
  bus_.attach(*this);
}

Controller::~Controller() { bus_.detach(*this); }

void Controller::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  ctr_tx_failures_ = recorder_ != nullptr
                         ? &recorder_->metrics().counter("ctrl.tx_failures")
                         : nullptr;
}

void Controller::request_tx(const Frame& frame) {
  if (!alive()) return;  // a mute controller silently drops requests
  PendingTx tx{frame, 0, next_seq_++};
  // Insert keeping (arbitration key, seq) order — priority-sorted transmit
  // mailboxes, FIFO among equal identifiers.
  const auto pos = std::find_if(
      queue_.begin(), queue_.end(), [&](const PendingTx& q) {
        const auto qk = q.frame.arbitration_key();
        const auto nk = tx.frame.arbitration_key();
        return qk > nk;
      });
  queue_.insert(pos, std::move(tx));
  sync_contender();
  bus_.on_tx_request();
}

std::size_t Controller::abort_matching(
    const std::function<bool(const Frame&)>& match) {
  // "Has effect only on pending requests" (Fig. 4): the queue head is
  // abortable too in this model because an in-flight transmission works on
  // a *copy* of the frame — matching real controllers, where an abort
  // during transmission takes effect only if the frame errors out.
  const auto before = queue_.size();
  std::erase_if(queue_, [&](const PendingTx& q) { return match(q.frame); });
  sync_contender();
  return before - queue_.size();
}

void Controller::crash() {
  const bool was_alive = alive();
  crashed_ = true;
  queue_.clear();
  if (was_alive) bus_.on_liveness_lost(*this);
  sync_contender();
}

void Controller::sync_contender() {
  const bool now = !queue_.empty() && alive();
  if (now != contender_) {
    contender_ = now;
    bus_.set_contender(*this, now);
  }
}

void Controller::bus_tx_succeeded(const Frame& frame) {
  // canely-lint: nondeterministic-ok(client seam: the socketcan gateway implements ControllerClient only under the real-time runner; sim runs bind deterministic clients)
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const PendingTx& q) { return q.frame == frame; });
  if (it == queue_.end()) return;  // aborted while in flight
  queue_.erase(it);
  sync_contender();
  bump_tec(-1);
  begin_suspend_if_passive();
  if (client_ != nullptr) client_->on_tx_confirm(frame);
}

void Controller::bus_tx_failed(const Frame& frame, bool ack_error) {
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [&](const PendingTx& q) { return q.frame == frame; });
  if (it != queue_.end()) ++it->attempts;
  if (ctr_tx_failures_ != nullptr) ctr_tx_failures_->add_node(node_);
  // ISO 11898 exception: an error-passive transmitter seeing an ACK error
  // does not increment TEC — otherwise a lone node would count itself out.
  if (!(ack_error && state_ == ErrorState::kErrorPassive)) {
    bump_tec(+8);
  }
  begin_suspend_if_passive();
}

void Controller::begin_suspend_if_passive() {
  if (state_ == ErrorState::kErrorPassive) {
    suspended_until_ =
        bus_.engine().now() + bus_.bit() * kSuspendTransmissionBits;
  }
}

void Controller::add_acceptance_filter(std::uint32_t code,
                                       std::uint32_t mask) {
  filters_.push_back(AcceptanceFilter{code, mask});
}

void Controller::clear_acceptance_filters() { filters_.clear(); }

bool Controller::accepts_filtered(std::uint32_t id) const {
  for (const AcceptanceFilter& f : filters_) {
    if ((id & f.mask) == (f.code & f.mask)) return true;
  }
  return false;
}

void Controller::bus_rx_error() { bump_rec(+1); }

void Controller::bump_tec(int delta) {
  tec_ = std::clamp(tec_ + delta, 0, 256);
  refresh_state();
}

void Controller::bump_rec(int delta) {
  // On correct reception an error-passive receiver's REC re-arms to a
  // value just below the passive threshold (ISO 11898 sets 119..127).
  if (delta < 0 && rec_ > 127) {
    rec_ = 119;
  } else {
    rec_ = std::clamp(rec_ + delta, 0, 255);
  }
  refresh_state();
}

void Controller::refresh_state() {
  if (state_ == ErrorState::kBusOff) return;  // sticky without recovery
  if (tec_ >= 256) {
    state_ = ErrorState::kBusOff;
    queue_.clear();  // fault confinement: the node falls silent
    if (!crashed_) bus_.on_liveness_lost(*this);
    sync_contender();
    if (recorder_ != nullptr) {
      obs::Event ev;
      ev.when = bus_.engine().now();
      ev.kind = obs::EventKind::kBusOff;
      ev.node = node_;
      recorder_->emit(ev);
      recorder_->metrics().counter("ctrl.bus_off").add_node(node_);
    }
    if (client_ != nullptr) client_->on_bus_off();
    if (auto_recovery_) {
      // ISO 11898: rejoin after 128 * 11 recessive bits (approximated as
      // idle bus time — conservative under load, where recovery takes
      // longer in reality too).
      bus_.engine().schedule_after(
          bus_.bit() * (128 * 11), [this] {
            if (crashed_ || state_ != ErrorState::kBusOff) return;
            tec_ = 0;
            rec_ = 0;
            state_ = ErrorState::kErrorActive;
            bus_.on_liveness_gained(*this);
            sync_contender();
            if (client_ != nullptr) client_->on_bus_off_recovered();
          });
    }
    return;
  }
  state_ = (tec_ >= 128 || rec_ >= 128) ? ErrorState::kErrorPassive
                                        : ErrorState::kErrorActive;
}

void Controller::hash_state(sim::StateHasher& h) const {
  // Included: liveness, the suspend window, and the transmit queue in its
  // already-(arbitration key, seq)-sorted order — frame content plus the
  // retransmission count, everything arbitration and delivery read.
  //
  // Excluded, deliberately:
  //  * tec_/rec_/state_: the error-state machine only changes behavior at
  //    thresholds (128/256) that a checker placement cannot reach — each
  //    scripted fault adds at most 8 to the transmitter's TEC and a crash
  //    terminates the counter entirely, so a depth-<=2 script tops out at
  //    TEC 16; excluding the raw counters lets universes whose transient
  //    error history differs (but whose future behavior is identical)
  //    collapse into one equivalence class.
  //  * next_seq_ and per-entry seq: pure relative tiebreaks, fully
  //    captured by hashing the queue in its sorted order.
  //  * acceptance filters and the attach ordinal: immutable scenario
  //    configuration, identical across all placements of one exploration.
  h.feed_bool(crashed_);
  h.feed_time(suspended_until_);
  h.feed(queue_.size());
  for (const PendingTx& p : queue_) {
    h.feed(p.frame.id);
    h.feed((static_cast<std::uint64_t>(p.frame.format) << 16) |
           (static_cast<std::uint64_t>(p.frame.remote) << 8) | p.frame.dlc);
    h.feed_bytes(p.frame.payload());
    h.feed(static_cast<std::uint64_t>(p.attempts));
  }
}

}  // namespace canely::can
