#pragma once
// CAN controller model with ISO 11898 fault confinement.
//
// One controller attaches each node to the bus.  It owns the node's
// transmit queue (priority-ordered, like the mailbox arrays of real
// controllers), delivers received frames to its client (the CANELy
// driver), and implements the transmit/receive error counters whose
// error-active / error-passive / bus-off state machine enforces the
// paper's weak-fail-silent assumption (§3, §4): a babbling or broken
// controller removes itself from the bus after a bounded number of
// omissions.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "can/frame.hpp"
#include "can/types.hpp"
#include "obs/recorder.hpp"
#include "sim/hash.hpp"
#include "sim/time.hpp"

namespace canely::can {

class Bus;

enum class ErrorState : std::uint8_t {
  kErrorActive,
  kErrorPassive,
  kBusOff,
};

/// Callbacks a controller delivers to the layer above (the driver).
class ControllerClient {
 public:
  virtual ~ControllerClient() = default;

  /// A valid frame was observed on the bus.  `own` is true when this node
  /// (co-)transmitted it — the paper's §5 requires reception of own
  /// transmissions for the `.nty` extension.
  virtual void on_rx(const Frame& frame, bool own) = 0;

  /// A previously queued transmit request completed successfully.
  virtual void on_tx_confirm(const Frame& frame) = 0;

  /// Fault confinement shut the controller down (TEC reached 256).
  virtual void on_bus_off() {}

  /// The controller finished bus-off recovery and is error-active again
  /// (only with enable_bus_off_recovery).
  virtual void on_bus_off_recovered() {}
};

/// A node's CAN controller.
class Controller {
 public:
  /// Constructs and attaches to `bus`.  `node` must be unique on the bus.
  Controller(NodeId node, Bus& bus);

  /// Enable ISO 11898 bus-off recovery: after fault confinement silences
  /// the controller, it rejoins error-active once it has observed 128
  /// occurrences of 11 consecutive recessive bits (approximated as 128*11
  /// idle bit-times).  Disabled by default — CANELy's weak-fail-silent
  /// enforcement (§4) treats bus-off as a crash; recovery is an
  /// application decision.
  void enable_bus_off_recovery(bool enable) { auto_recovery_ = enable; }
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  void set_client(ControllerClient* client) { client_ = client; }

  /// Structured observability (non-owning; may be null): transmit
  /// failures and fault-confinement shutdowns.
  void set_recorder(obs::Recorder* recorder);

  [[nodiscard]] NodeId node() const { return node_; }

  // -- transmit side --------------------------------------------------------

  /// Queue a frame for transmission.  Frames contend locally by
  /// arbitration priority (FIFO among equal priorities), mirroring a
  /// controller with priority-sorted transmit mailboxes.
  void request_tx(const Frame& frame);

  /// Abort pending (not in-flight) requests matching the predicate;
  /// returns how many were dropped.  Implements `can-abort.req` (Fig. 4:
  /// "has effect only on pending requests").
  std::size_t abort_matching(const std::function<bool(const Frame&)>& match);

  // -- acceptance filtering ---------------------------------------------------

  /// Hardware-style acceptance filter: a received frame is delivered to
  /// the client iff (id & mask) == (code & mask) for at least one
  /// configured filter (both id formats share the filter bank, as in
  /// simple controllers).  With no filters configured everything is
  /// accepted.  Filtering is receive-side only; it does not affect the
  /// node's participation in error signaling or acknowledgment.
  void add_acceptance_filter(std::uint32_t code, std::uint32_t mask);
  void clear_acceptance_filters();
  /// Inline fast path: the common no-filter configuration costs one
  /// emptiness check per delivery (hot: once per node per frame).
  [[nodiscard]] bool accepts(std::uint32_t id) const {
    return filters_.empty() || accepts_filtered(id);
  }

  [[nodiscard]] std::size_t tx_queue_depth() const { return queue_.size(); }

  // -- failure semantics ----------------------------------------------------

  /// Fail-silent crash: the controller goes mute instantly and forever.
  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// True when the controller takes part in bus traffic.
  [[nodiscard]] bool alive() const {
    return !crashed_ && state_ != ErrorState::kBusOff;
  }

  // -- fault confinement state ----------------------------------------------

  [[nodiscard]] ErrorState error_state() const { return state_; }
  [[nodiscard]] int tec() const { return tec_; }
  [[nodiscard]] int rec() const { return rec_; }

  /// ISO 11898 suspend transmission: an error-passive node must wait 8
  /// extra bit-times after transmitting before contending again.  The bus
  /// skips this controller in arbitrations before this instant.
  [[nodiscard]] sim::Time suspended_until() const { return suspended_until_; }

  // -- bus-facing interface (used by Bus only) --------------------------------

  /// Head of the transmit queue, or nullptr when this controller has
  /// nothing to offer in the next arbitration round.  Inline: called for
  /// every contender in every arbitration pass.
  [[nodiscard]] const Frame* peek_tx() const {
    if (queue_.empty() || !alive()) return nullptr;
    return &queue_.front().frame;
  }

  /// Retransmission attempts already made for the queue head.
  [[nodiscard]] int head_attempts() const {
    return queue_.empty() ? 0 : queue_.front().attempts;
  }

  /// Attach-order ordinal, assigned once by Bus::attach.  Orders the
  /// bus's live-controller list so bus-off recovery re-inserts a
  /// controller at its original delivery position.
  [[nodiscard]] std::uint32_t attach_ordinal() const { return attach_ordinal_; }
  void set_attach_ordinal(std::uint32_t ordinal) { attach_ordinal_ = ordinal; }

  /// Bus: `frame` (queued here, wire-identical match) was transmitted
  /// successfully.  Identified by content, NOT by queue position: a
  /// higher-priority request may have been queued while this frame was in
  /// flight, displacing it from the head.
  void bus_tx_succeeded(const Frame& frame);

  /// Bus: `frame`'s transmission failed; it stays queued for
  /// retransmission.  TEC += 8 (or unchanged for an ACK error while
  /// error-passive — ISO 11898 exception, so a lone node does not drive
  /// itself bus-off).
  void bus_tx_failed(const Frame& frame, bool ack_error);

  /// Bus: deliver a valid frame (REC decrements on correct reception).
  /// Inline: runs once per live node per frame — the simulator's most
  /// frequent call.  REC at 0 stays 0, so the common error-free case
  /// skips the counter/state machinery entirely.
  void bus_rx_deliver(const Frame& frame, bool own) {
    // canely-lint: nondeterministic-ok(client seam: the socketcan gateway implements ControllerClient only under the real-time runner; sim runs bind deterministic clients)
    if (!own) {
      if (rec_ != 0) bump_rec(-1);
      // Acceptance filtering happens after the frame is validated (the
      // controller still acknowledged it); own transmissions bypass
      // filters, as real controllers' self-reception paths do.
      if (!filters_.empty() && !accepts_filtered(frame.id)) return;
    }
    if (client_ != nullptr) client_->on_rx(frame, own);
  }

  /// Bus: this node observed a frame error as a receiver (REC += 1).
  void bus_rx_error();

  /// Canonical state for the checker's equivalence dedup (sim/hash.hpp):
  /// liveness, suspend window, transmit queue in arbitration order.  See
  /// the implementation for the documented exclusions.
  void hash_state(sim::StateHasher& h) const;

 private:
  struct PendingTx {
    Frame frame;
    int attempts{0};
    std::uint64_t seq{0};
  };

  void bump_tec(int delta);
  void bump_rec(int delta);
  void refresh_state();
  void begin_suspend_if_passive();
  [[nodiscard]] bool accepts_filtered(std::uint32_t id) const;
  /// Report queue-emptiness/liveness transitions to the bus's contender
  /// list; called after every operation that can flip the condition.
  void sync_contender();

  struct AcceptanceFilter {
    std::uint32_t code;
    std::uint32_t mask;
  };

  NodeId node_;
  Bus& bus_;
  ControllerClient* client_{nullptr};
  obs::Recorder* recorder_{nullptr};
  obs::Counter* ctr_tx_failures_{nullptr};
  std::vector<AcceptanceFilter> filters_;
  std::deque<PendingTx> queue_;  // kept sorted by (arbitration key, seq)
  std::uint64_t next_seq_{1};
  int tec_{0};
  int rec_{0};
  ErrorState state_{ErrorState::kErrorActive};
  bool crashed_{false};
  bool auto_recovery_{false};
  bool contender_{false};  ///< mirrored in Bus's contender list
  std::uint32_t attach_ordinal_{0};
  sim::Time suspended_until_{sim::Time::zero()};
};

}  // namespace canely::can
