#include "can/bus.hpp"

#include <algorithm>
#include <stdexcept>

namespace canely::can {

Bus::Bus(sim::Engine& engine, BusConfig config, const sim::Tracer* tracer)
    : engine_{engine}, config_{config}, tracer_{tracer} {}

void Bus::attach(Controller& controller) {
  if (controller.node() >= kMaxNodes) {
    throw std::logic_error("Bus::attach: node id out of range");
  }
  if (by_node_[controller.node()] != nullptr) {
    throw std::logic_error("Bus::attach: duplicate node id");
  }
  controller.set_attach_ordinal(next_ordinal_++);
  live_.push_back(&controller);  // new ordinal is the maximum: stays sorted
  live_set_.insert(controller.node());
  by_node_[controller.node()] = &controller;
}

void Bus::detach(Controller& controller) {
  std::erase(live_, &controller);
  std::erase(contenders_, &controller);
  if (controller.node() < kMaxNodes &&
      by_node_[controller.node()] == &controller) {
    by_node_[controller.node()] = nullptr;
    live_set_.erase(controller.node());
  }
}

void Bus::on_liveness_lost(Controller& controller) {
  live_set_.erase(controller.node());
  live_stale_ = true;  // compacted at the next arbitration/completion
}

void Bus::on_liveness_gained(Controller& controller) {
  // Only bus-off recovery lands here — always from its own engine event,
  // never mid-loop, so compacting and inserting is safe.
  compact_live();
  live_set_.insert(controller.node());
  const auto pos = std::lower_bound(
      live_.begin(), live_.end(), &controller,
      [](const Controller* a, const Controller* b) {
        return a->attach_ordinal() < b->attach_ordinal();
      });
  live_.insert(pos, &controller);
}

void Bus::set_contender(Controller& controller, bool contending) {
  if (contending) {
    contenders_.push_back(&controller);
  } else {
    // Swap-remove: contender iteration order carries no semantics.
    if (const auto it = std::find(contenders_.begin(), contenders_.end(),
                                  &controller);
        it != contenders_.end()) {
      *it = contenders_.back();
      contenders_.pop_back();
    }
  }
}

void Bus::on_tx_request() {
  if (!transmitting_) schedule_arbitration();
}

void Bus::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder_ == nullptr) {
    ctr_frames_ok_ = nullptr;
    ctr_frames_error_ = nullptr;
    ctr_retransmissions_ = nullptr;
    ctr_arbitration_losses_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = recorder_->metrics();
  ctr_frames_ok_ = &m.counter("bus.frames_ok");
  ctr_frames_error_ = &m.counter("bus.frames_error");
  ctr_retransmissions_ = &m.counter("bus.retransmissions");
  ctr_arbitration_losses_ = &m.counter("bus.arbitration_losses");
}

/// Shared kFrameTx emission for the collision and regular completions.
/// One record per attempt, timestamped at the attempt's start with the
/// wire occupancy in the payload — a complete timeline span per emit.
/// An orphaned slot (all co-transmitters died mid-frame, §6.1) records
/// the dead transmitter as historical context only: the error completion
/// is counted bus-wide, not charged to a node that could not have taken
/// part in signaling it.
void Bus::record_frame_end(const TxRecord& rec, bool orphaned) {
  obs::Event ev;
  ev.when = rec.start;
  ev.kind = obs::EventKind::kFrameTx;
  ev.node = rec.transmitter;
  ev.u.frame = {rec.frame.id, static_cast<std::uint32_t>(rec.bits),
                static_cast<std::uint32_t>((rec.end - rec.start).to_ns()),
                static_cast<std::uint8_t>(rec.outcome),
                static_cast<std::uint8_t>(rec.attempt),
                static_cast<std::uint8_t>(rec.frame.remote ? 1 : 0),
                static_cast<std::uint8_t>(orphaned ? 1 : 0)};
  recorder_->emit(ev);
  if (rec.outcome == TxOutcome::kOk) {
    ctr_frames_ok_->add_node(rec.transmitter);
  } else if (orphaned) {
    ctr_frames_error_->add();
  } else {
    ctr_frames_error_->add_node(rec.transmitter);
  }
}

void Bus::schedule_arbitration() {
  if (arbitration_scheduled_) return;
  arbitration_scheduled_ = true;
  engine_.schedule_after(sim::Time::zero(), [this] {
    arbitration_scheduled_ = false;
    begin_arbitration();
  });
}

// canely-lint: hot-path
void Bus::begin_arbitration() {
  if (transmitting_) return;
  compact_live();  // safe point: no live_ iteration is in flight

  // Collect the head-of-queue frame of every contender (live controller
  // with queued transmit work — kept current by Controller, so idle and
  // dead nodes cost nothing here).  Error-passive controllers in their
  // suspend-transmission window do not contend (ISO 11898); if they are
  // the only candidates, retry the arbitration when the earliest
  // suspension lapses.  The winner is the strict (arbitration key, node)
  // minimum, so the contender list's iteration order is immaterial.
  const Frame* winner = nullptr;
  Controller* primary = nullptr;
  sim::Time earliest_suspended = sim::Time::max();
  for (Controller* c : contenders_) {
    const Frame* f = c->peek_tx();
    if (f == nullptr) continue;
    if (c->suspended_until() > engine_.now()) {
      earliest_suspended = std::min(earliest_suspended, c->suspended_until());
      continue;
    }
    if (winner == nullptr || f->arbitration_key() < winner->arbitration_key() ||
        (f->arbitration_key() == winner->arbitration_key() &&
         c->node() < primary->node())) {
      winner = f;
      primary = c;
    }
  }
  if (winner == nullptr) {
    if (earliest_suspended != sim::Time::max()) {
      // Coalesce: keep at most one pending wake-up, moved earlier when a
      // shorter suspension appears.  (Previously every idle arbitration
      // scheduled a fresh event, so a busy suspended node piled up
      // duplicate no-op retries.)
      if (!suspend_retry_pending_ || earliest_suspended < suspend_retry_at_) {
        if (suspend_retry_pending_) engine_.cancel(suspend_retry_event_);
        suspend_retry_pending_ = true;
        suspend_retry_at_ = earliest_suspended;
        suspend_retry_event_ = engine_.schedule_at(earliest_suspended, [this] {
          suspend_retry_pending_ = false;
          if (!arbitration_scheduled_) begin_arbitration();
        });
      }
    }
    return;  // bus stays idle
  }

  // Identify co-transmitters: same arbitration key.  Identical frames
  // merge on the wired-AND medium; same key with different content is a
  // genuine collision (two nodes own the same identifier — a protocol
  // configuration error CAN detects as a bit error).
  NodeSet co;
  bool collision = false;
  std::int32_t divergence_bit = -1;
  for (Controller* c : contenders_) {
    const Frame* f = c->peek_tx();
    if (f == nullptr) continue;
    if (c->suspended_until() > engine_.now()) continue;
    if (f->arbitration_key() != winner->arbitration_key()) continue;
    if (!(*f == *winner)) {
      collision = true;
      const std::int32_t d = first_divergent_wire_bit(*f, *winner);
      divergence_bit = divergence_bit < 0 ? d : std::min(divergence_bit, d);
      co.insert(c->node());
      continue;
    }
    if (config_.clustering || c == primary) {
      co.insert(c->node());
    }
  }

  // Everyone live and not co-transmitting receives: one bitmap subtraction
  // instead of a per-node scan.
  const NodeSet receivers = live_set_.minus(co);
  if (ctr_arbitration_losses_ != nullptr) {
    // A live node with pending, non-suspended transmit work that is not
    // co-transmitting lost this arbitration round.
    for (Controller* c : contenders_) {
      if (!co.contains(c->node()) &&
          c->suspended_until() <= engine_.now()) {
        ctr_arbitration_losses_->add_node(c->node());
      }
    }
  }

  // Memoize the wire length on the queued frame first, so the InFlight
  // copy (and any retransmission of the same queue entry) inherits it.
  const std::size_t frame_bits = frame_bits_on_wire(*winner);
  const Frame frame = *winner;  // copy: the queue entry may be popped later
  const int attempt = primary->head_attempts();
  const sim::Time start = engine_.now();

  Verdict verdict;
  if (collision) {
    // The frames ride the wired-AND medium bit-for-bit until they first
    // diverge; there a transmitter reads back a level it did not drive
    // and signals the error.  Identical payloads never reach this branch
    // (they merge as co-transmissions above), so MID aliasing — two nodes
    // emitting the same identifier with different content — destroys the
    // frame at the exact divergence bit instead of silently merging.
    verdict = Verdict::global_error(divergence_bit);
  } else {
    TxContext ctx{frame,   primary->node(), co,
                  receivers, attempt,        start, tx_index_};
    verdict = injector_ != nullptr ? injector_->judge(ctx) : Verdict::ok();
    verdict.victims = verdict.victims.intersected(receivers);
    if (verdict.kind == FaultKind::kNone && receivers.empty()) {
      verdict.kind = FaultKind::kAckError;  // nobody left to acknowledge
    }
    if (verdict.kind == FaultKind::kInconsistentOmission &&
        verdict.victims.empty()) {
      verdict.kind = FaultKind::kNone;  // no victims => clean broadcast
    }
  }
  ++tx_index_;

  std::size_t bits = 0;
  switch (verdict.kind) {
    case FaultKind::kNone:
      bits = frame_bits + kIntermissionBits;
      break;
    case FaultKind::kGlobalError: {
      std::size_t pos = verdict.error_bit < 0
                            ? frame_bits - 1
                            : std::min<std::size_t>(
                                  static_cast<std::size_t>(verdict.error_bit),
                                  frame_bits - 1);
      bits = pos + 1 + config_.error_signal_bits + kIntermissionBits;
      break;
    }
    case FaultKind::kInconsistentOmission:
      // The fault hits the last-but-one bit: the whole frame plus error
      // signaling occupies the bus.
      bits = frame_bits + config_.error_signal_bits + kIntermissionBits;
      break;
    case FaultKind::kAckError:
      bits = frame_bits + config_.error_signal_bits + kIntermissionBits;
      break;
  }
  if (collision) {
    bits = static_cast<std::size_t>(verdict.error_bit) + 1 +
           config_.error_signal_bits + kIntermissionBits;
  }
  // Overload frames (ISO 11898: at most two back to back) stretch the
  // interframe space before the next arbitration.
  const int overloads = std::min(verdict.overloads, 2);
  bits += static_cast<std::size_t>(overloads) *
          (kOverloadFlagBits + kOverloadDelimiterBits);
  stats_.overload_frames += static_cast<std::uint64_t>(overloads);

  transmitting_ = true;
  in_flight_ = InFlight{frame,   co,   receivers, verdict,
                        start,   bits, attempt,   collision};
  if (recorder_ != nullptr && attempt > 0) {
    ctr_retransmissions_->add_node(primary->node());
  }
  engine_.schedule_after(bit() * static_cast<std::int64_t>(bits),
                         [this] { finish_transmission(); });
}

// canely-lint: hot-path
void Bus::finish_transmission() {
  transmitting_ = false;
  // Copy out: controller callbacks may request new transmissions, and the
  // next begin_arbitration() repopulates in_flight_.
  const InFlight fx = in_flight_;
  if (fx.collision) {
    // Penalize all contenders and count the wasted bus time.
    bool any_alive = false;
    for (NodeId id : fx.co) {
      if (Controller* c = controller_for(id); c != nullptr && c->alive()) {
        any_alive = true;
        c->bus_tx_failed(fx.frame, false);
      }
    }
    for (NodeId id : fx.receivers) {
      if (Controller* c = controller_for(id); c != nullptr && c->alive()) {
        c->bus_rx_error();
      }
    }
    ++stats_.attempts;
    ++stats_.collisions;
    stats_.bits_total += fx.bits;
    stats_.bits_wasted += fx.bits;
    const TxRecord rec{fx.start, engine_.now(), fx.frame, *fx.co.begin(),
                       fx.co,    {},           TxOutcome::kCollision,
                       fx.bits,  fx.attempt};
    if (recorder_ != nullptr) record_frame_end(rec, !any_alive);
    if (observer_) {
      auto observer = observer_;  // may replace/clear itself mid-call
      observer(rec);
    }
    schedule_arbitration();
    return;
  }
  complete_transmission(fx.frame, fx.co, fx.receivers, fx.verdict, fx.start,
                        fx.bits, fx.attempt);
}

// canely-lint: hot-path
void Bus::complete_transmission(const Frame& frame, NodeSet co,
                                NodeSet receivers, Verdict verdict,
                                sim::Time start, std::size_t bits,
                                int attempt) {
  compact_live();  // safe point: no live_ iteration is in flight
  // Nodes may have crashed mid-frame; deliver only to the living.  If
  // every co-transmitter died mid-frame the frame was cut short: treat as
  // a global error with no retransmission (the sender is gone) — this is
  // precisely how an inconsistent omission becomes an inconsistent
  // *message* omission when the sender fails before retransmitting (§6.1).
  // One lookup pass over the (small) co-transmitter set; the outcome
  // branches below reuse the pointers.
  Controller* alive[kMaxNodes];
  std::size_t n_alive = 0;
  NodeSet co_alive = co.intersected(live_set_);
  for (NodeId id : co_alive) {
    alive[n_alive++] = by_node_[id];
  }
  const bool orphaned = co_alive.empty();
  if (orphaned) {
    verdict.kind = FaultKind::kGlobalError;
  }

  TxRecord rec;
  rec.start = start;
  rec.end = engine_.now();
  rec.frame = frame;
  rec.transmitter = *co.begin();
  rec.co_transmitters = co;
  rec.bits = bits;
  rec.attempt = attempt;

  ++stats_.attempts;
  stats_.bits_total += bits;

  switch (verdict.kind) {
    case FaultKind::kNone: {
      rec.outcome = TxOutcome::kOk;
      ++stats_.ok;
      stats_.bits_good += bits;
      // Confirm first (pops the queue head), then indicate to everyone,
      // own transmissions included (§5, Fig. 4).
      for (std::size_t i = 0; i < n_alive; ++i) {
        alive[i]->bus_tx_succeeded(frame);
      }
      // Index loop: a delivery callback may kill another controller
      // (flagging live_ stale — compacted next frame) but never inserts,
      // so the bound is fixed and the skip below stays correct.  The
      // delivered set starts as the live-set snapshot and only loses
      // members on a skip — the common full-delivery frame does no
      // per-receiver set work at all.
      rec.delivered_to = live_set_;
      if (filter_ == nullptr) {
        for (std::size_t i = 0; i < live_.size(); ++i) {
          Controller* c = live_[i];
          if (!c->alive()) {  // died earlier in this very loop
            rec.delivered_to.erase(c->node());
            continue;
          }
          c->bus_rx_deliver(frame, co_alive.contains(c->node()));
        }
      } else {
        for (std::size_t i = 0; i < live_.size(); ++i) {
          Controller* c = live_[i];
          if (!c->alive()) {
            rec.delivered_to.erase(c->node());
            continue;
          }
          const bool own = co_alive.contains(c->node());
          if (!own && !filter_->receives(rec.transmitter, c->node(), frame)) {
            rec.delivered_to.erase(c->node());
            continue;  // media partition hid the frame from this node
          }
          c->bus_rx_deliver(frame, own);
        }
      }
      break;
    }
    case FaultKind::kGlobalError: {
      rec.outcome = TxOutcome::kError;
      ++stats_.errors;
      stats_.bits_wasted += bits;
      for (std::size_t i = 0; i < n_alive; ++i) {
        alive[i]->bus_tx_failed(frame, false);
      }
      for (NodeId id : receivers) {
        if (Controller* c = by_node_[id]; c != nullptr && c->alive()) {
          c->bus_rx_error();
        }
      }
      break;
    }
    case FaultKind::kInconsistentOmission: {
      rec.outcome = TxOutcome::kInconsistent;
      ++stats_.inconsistent;
      stats_.bits_wasted += bits;
      // Transmitters observed the error flag in the EOF: they retransmit.
      for (std::size_t i = 0; i < n_alive; ++i) {
        alive[i]->bus_tx_failed(frame, false);
      }
      // Non-victim receivers accepted the frame before the late error.
      for (NodeId id : receivers) {
        Controller* c = by_node_[id];
        if (c == nullptr || !c->alive()) continue;
        if (verdict.victims.contains(id)) {
          c->bus_rx_error();
        } else if (filter_ == nullptr ||
                   filter_->receives(rec.transmitter, id, frame)) {
          c->bus_rx_deliver(frame, false);
          rec.delivered_to.insert(id);
        }
      }
      break;
    }
    case FaultKind::kAckError: {
      rec.outcome = TxOutcome::kAckError;
      ++stats_.ack_errors;
      stats_.bits_wasted += bits;
      for (std::size_t i = 0; i < n_alive; ++i) {
        alive[i]->bus_tx_failed(frame, true);
      }
      break;
    }
  }

  if (tracer_ != nullptr) {
    tracer_->emit(engine_.now(), sim::TraceLevel::kDebug, "bus", [&] {
      return sim::cat_str(frame, " from ", int{rec.transmitter},
                          " outcome=", static_cast<int>(rec.outcome),
                          " bits=", bits);
    });
  }
  if (recorder_ != nullptr) record_frame_end(rec, orphaned);
  if (observer_) {
    // Invoke a copy: the observer may replace/clear itself mid-call.
    auto observer = observer_;
    observer(rec);
  }

  // Anything still pending (including the retransmission just kept
  // queued)?  The contender list is exactly "live with queued work".
  if (!contenders_.empty()) schedule_arbitration();
}

void Bus::hash_state(sim::StateHasher& h) const {
  // Included: the live set, channel occupancy and the scheduled-
  // arbitration flag, and the coalesced suspend-retry wake-up (flag +
  // instant) — the complete event-source state of the channel.
  //
  // Excluded, deliberately:
  //  * tx_index_: the global attempt counter only matters to fault-script
  //    targeting; the dedup samples universes whose remaining script is
  //    empty past the injection point, so differing counters cannot
  //    change any future behavior.
  //  * in_flight_: only meaningful while transmitting_ — the checker
  //    samples inside judge(), before the end-of-frame event exists.
  //  * stats_, next_ordinal_, live_stale_, live_/contenders_: diagnostics,
  //    immutable configuration, or values derived from controller state
  //    (which the controllers hash themselves).
  h.feed(live_set_.bits());
  h.feed_bool(transmitting_);
  h.feed_bool(arbitration_scheduled_);
  h.feed_bool(suspend_retry_pending_);
  h.feed_time(suspend_retry_at_);
}

}  // namespace canely::can
