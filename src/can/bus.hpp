#pragma once
// Single-channel CAN bus model.
//
// Frame-level simulation with bit-accurate timing: arbitration happens at
// frame granularity (the lowest identifier wins — deterministic collision
// resolution, §3), but every duration is computed from the frame's real
// serialized, bit-stuffed length.  The wired-AND physical layer is
// modelled where it matters to the paper:
//
//  * identical remote frames transmitted simultaneously merge ("cluster")
//    into a single physical frame — FDA and RHA depend on this to save
//    bandwidth (§6.2);
//  * a dominant error flag from any node destroys the frame for all, and
//    CAN retransmits automatically;
//  * errors hitting the last-but-one bit at a subset of nodes produce the
//    inconsistent-omission failure mode of [18] (see fault.hpp).

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "can/bitstream.hpp"
#include "can/controller.hpp"
#include "can/fault.hpp"
#include "can/frame.hpp"
#include "can/types.hpp"
#include "obs/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace canely::can {

struct BusConfig {
  /// Data rate; 1 Mbps => 1 us bit-time, 40 m bus (§3).
  std::int64_t bit_rate_bps{1'000'000};
  /// Wired-AND merging of identical simultaneous remote frames.  Disabled
  /// only by the clustering ablation benchmark.
  bool clustering{true};
  /// Bits of error signaling appended to a destroyed frame
  /// (error flag + error delimiter).
  std::size_t error_signal_bits{kErrorFlagBits + kErrorDelimiterBits};
};

enum class TxOutcome : std::uint8_t {
  kOk,
  kError,          ///< globally destroyed; retransmission follows
  kInconsistent,   ///< accepted by a subset only; retransmission follows
  kAckError,       ///< nobody acknowledged
  kCollision,      ///< same identifier, different content (protocol bug)
};

/// One completed transmission attempt, as seen on the wire.
struct TxRecord {
  sim::Time start;
  sim::Time end;
  Frame frame;
  NodeId transmitter{};       ///< lowest-numbered co-transmitter
  NodeSet co_transmitters;
  NodeSet delivered_to;       ///< receivers that accepted the frame
  TxOutcome outcome{TxOutcome::kOk};
  std::size_t bits{};         ///< bus time consumed, incl. error signaling
  int attempt{};              ///< retransmission ordinal, 0-based
};

struct BusStats {
  std::uint64_t attempts{0};
  std::uint64_t ok{0};
  std::uint64_t errors{0};
  std::uint64_t inconsistent{0};
  std::uint64_t ack_errors{0};
  std::uint64_t collisions{0};
  std::uint64_t overload_frames{0};
  std::uint64_t bits_total{0};   ///< all bus-busy bits (frames + errors + IFS)
  std::uint64_t bits_good{0};    ///< bits of successfully delivered frames
  std::uint64_t bits_wasted{0};  ///< partial frames + error signaling
};

/// Hook for the media-redundancy layer: may veto delivery on a per
/// (transmitter, receiver) basis — modelling partitions of individual
/// media — without the transmitter noticing (the subtle inconsistency
/// studied in [22]).
class ReceptionFilter {
 public:
  virtual ~ReceptionFilter() = default;
  virtual bool receives(NodeId tx, NodeId rx, const Frame& frame) = 0;
};

/// The shared broadcast channel.
class Bus {
 public:
  explicit Bus(sim::Engine& engine, BusConfig config = {},
               const sim::Tracer* tracer = nullptr);
  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const BusConfig& config() const { return config_; }
  [[nodiscard]] sim::Time bit() const { return sim::bit_time(config_.bit_rate_bps); }

  /// Fault injection / media hooks (non-owning; may be null).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_reception_filter(ReceptionFilter* filter) { filter_ = filter; }

  /// Structured observability (non-owning; may be null).  Registers the
  /// bus counters once so the hot-path updates are cached-pointer adds.
  void set_recorder(obs::Recorder* recorder);

  /// Observer invoked after every completed transmission attempt; the
  /// benchmarks classify records by protocol type to split bandwidth.
  void set_observer(std::function<void(const TxRecord&)> obs) {
    observer_ = std::move(obs);
  }

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] bool busy() const { return transmitting_; }

  /// Canonical channel state for the checker's equivalence dedup
  /// (sim/hash.hpp): liveness set, occupancy/arbitration flags, pending
  /// suspend-retry wake-up.  See the implementation for exclusions.
  void hash_state(sim::StateHasher& h) const;

  // -- controller registration (Controller ctor/dtor use these) ------------
  void attach(Controller& controller);
  void detach(Controller& controller);
  /// O(1): node ids index a fixed table (kMaxNodes entries).
  [[nodiscard]] Controller* controller_for(NodeId node) const {
    return node < kMaxNodes ? by_node_[node] : nullptr;
  }

  /// A controller signals that it has (new) pending transmit work.
  void on_tx_request();

  // -- liveness bookkeeping (Controller calls these; O(active) datapath) ----
  /// The controller stopped participating (crash or bus-off).  The live
  /// list is compacted lazily at the next safe point: the notification
  /// may arrive mid-delivery-loop, where erasing would invalidate the
  /// iteration.
  void on_liveness_lost(Controller& controller);
  /// The controller rejoined (bus-off recovery).  Re-inserted at its
  /// attach-order position so delivery order is as if it never left.
  void on_liveness_gained(Controller& controller);
  /// The controller's "has queued transmit work while alive" state
  /// flipped; keeps the arbitration passes O(contenders).
  void set_contender(Controller& controller, bool contending);

  /// Introspection for the O(active) regression tests.
  [[nodiscard]] std::size_t live_count() const {
    return live_set_.size();
  }
  [[nodiscard]] std::size_t contender_count() const {
    return contenders_.size();
  }

 private:
  /// The transmission currently occupying the bus.  Kept as a member so
  /// the end-of-frame event is a [this]-only capture (8 bytes, inline in
  /// the engine's slot) instead of a ~90-byte closure; at most one
  /// transmission is in flight (guarded by transmitting_).
  struct InFlight {
    Frame frame;
    NodeSet co;
    NodeSet receivers;
    Verdict verdict;
    sim::Time start;
    std::size_t bits{};
    int attempt{};
    bool collision{false};
  };

  void schedule_arbitration();
  void begin_arbitration();
  void finish_transmission();
  void complete_transmission(const Frame& frame, NodeSet co, NodeSet receivers,
                             Verdict verdict, sim::Time start,
                             std::size_t bits, int attempt);

  /// Drop dead controllers from live_ once no iteration is in flight.
  void compact_live() {
    if (!live_stale_) return;
    std::erase_if(live_, [](const Controller* c) { return !c->alive(); });
    live_stale_ = false;
  }

  /// `orphaned`: every co-transmitter died mid-frame — the error slot has
  /// no live transmitter to charge (see complete_transmission).
  void record_frame_end(const TxRecord& rec, bool orphaned);

  sim::Engine& engine_;
  BusConfig config_;
  const sim::Tracer* tracer_;
  FaultInjector* injector_{nullptr};
  ReceptionFilter* filter_{nullptr};
  obs::Recorder* recorder_{nullptr};
  obs::Counter* ctr_frames_ok_{nullptr};
  obs::Counter* ctr_frames_error_{nullptr};
  obs::Counter* ctr_retransmissions_{nullptr};
  obs::Counter* ctr_arbitration_losses_{nullptr};
  std::function<void(const TxRecord&)> observer_;
  /// Live controllers in attach order — the delivery order.  Dead
  /// controllers leave lazily (live_stale_ + compact_live()); recovered
  /// ones re-enter at their attach ordinal.  Every per-frame loop is
  /// O(live), not O(ever attached).
  std::vector<Controller*> live_;
  /// Live controllers with pending transmit work — the only ones the
  /// arbitration passes look at.  Unordered (the winner is a strict
  /// (key, node) minimum, so iteration order is immaterial); maintained
  /// synchronously by Controller::sync_contender.
  std::vector<Controller*> contenders_;
  NodeSet live_set_;                          ///< nodes of live controllers
  std::array<Controller*, kMaxNodes> by_node_{};  ///< O(1) node -> controller
  std::uint32_t next_ordinal_{0};
  bool live_stale_{false};
  InFlight in_flight_;
  BusStats stats_;
  std::uint64_t tx_index_{0};
  bool transmitting_{false};
  bool arbitration_scheduled_{false};
  // All-contenders-suspended retry, coalesced: at most one pending
  // wake-up, tracked so repeated idle arbitrations don't pile up
  // duplicate events (each failed arbitration used to schedule another).
  bool suspend_retry_pending_{false};
  sim::Time suspend_retry_at_{};
  sim::EventId suspend_retry_event_{};
};

}  // namespace canely::can
