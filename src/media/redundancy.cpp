#include "media/redundancy.hpp"

#include <stdexcept>

namespace canely::media {

MediaSet::MediaSet(std::size_t count) : count_{count} {
  if (count == 0 || count > kMaxMedia) {
    throw std::invalid_argument("MediaSet: 1..4 media supported");
  }
}

void MediaSet::fail_medium(std::size_t m) { media_.at(m).failed = true; }

void MediaSet::partition_medium(std::size_t m, can::NodeSet segment) {
  media_.at(m).partitioned = true;
  media_.at(m).segment = segment;
}

void MediaSet::repair_medium(std::size_t m) {
  media_.at(m) = Medium{};
}

bool MediaSet::path_ok(std::size_t m, can::NodeId tx, can::NodeId rx) const {
  const Medium& med = media_[m];
  if (med.failed) return false;
  if (med.partitioned &&
      med.segment.contains(tx) != med.segment.contains(rx)) {
    return false;  // transmitter and receiver are on opposite segments
  }
  return true;
}

RedundantMedia::RedundantMedia(MediaSet& media, int quarantine_threshold)
    : media_{media}, threshold_{quarantine_threshold} {}

bool RedundantMedia::receives(can::NodeId tx, can::NodeId rx,
                              const can::Frame& /*f*/) {
  // Media driven by the transmitter: all the transmitter's MSU trusts.
  // Media accepted by the receiver: all the receiver's MSU trusts.
  Msu& rx_msu = msu_[rx];
  bool any_delivered = false;
  bool any_missing = false;
  std::array<bool, kMaxMedia> delivered{};
  for (std::size_t m = 0; m < media_.count(); ++m) {
    if (msu_[tx].quarantined[m] || rx_msu.quarantined[m]) continue;
    if (media_.path_ok(m, tx, rx)) {
      delivered[m] = true;
      any_delivered = true;
    } else {
      any_missing = true;
    }
  }
  if (any_delivered && any_missing) {
    // Disagreement between replicas: blame the silent media.
    for (std::size_t m = 0; m < media_.count(); ++m) {
      if (msu_[tx].quarantined[m] || rx_msu.quarantined[m]) continue;
      if (!delivered[m]) {
        if (++rx_msu.suspect[m] >= threshold_) {
          rx_msu.quarantined[m] = true;
        }
      }
    }
  }
  if (!any_delivered) ++losses_;
  return any_delivered;
}

}  // namespace canely::media
