#pragma once
// CAN media redundancy — the "Columbus' egg" scheme of Rufino, Veríssimo,
// Arroz [17] (paper §2, §4, Fig. 11 "media redundancy: yes").
//
// The paper's system model *assumes* no permanent failure of the channel
// (§4); reference [17] discharges that assumption with a scheme of
// striking simplicity: each node's single CAN controller is coupled to
// several replicated media through a media selection unit (MSU) that
//
//   * drives every transmission onto all non-quarantined media
//     simultaneously (the media stay bit-synchronized because they carry
//     the same wired-AND signal), and
//   * combines the received signals, comparing media against each other;
//     a medium that repeatedly disagrees with its replicas (partition,
//     stuck-at-dominant, babbling segment) is quarantined locally.
//
// A single-medium fault therefore never partitions the system: frames
// keep flowing over the surviving media and the faulty one is weeded out
// after `quarantine_threshold` disagreements.
//
// Integration: `RedundantMedia` implements `can::ReceptionFilter`; the
// bus consults it per (transmitter, receiver) pair, so a partitioned
// medium produces exactly the subtle receiver-side omissions studied in
// [22] — unless redundancy masks them.

#include <array>
#include <cstdint>
#include <vector>

#include "can/bus.hpp"
#include "can/types.hpp"

namespace canely::media {

/// Maximum media replicas the MSU model supports.
inline constexpr std::size_t kMaxMedia = 4;

/// Physical state of the replicated media.
class MediaSet {
 public:
  explicit MediaSet(std::size_t count);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Permanently fail medium `m` for every node (e.g. cable cut at the
  /// trunk, stuck-at-dominant driver).
  void fail_medium(std::size_t m);

  /// Partition medium `m`: nodes inside `segment` and nodes outside it
  /// can no longer hear each other *on that medium*.
  void partition_medium(std::size_t m, can::NodeSet segment);

  /// Repair a medium (testing convenience).
  void repair_medium(std::size_t m);

  /// True when medium `m` carries a frame from `tx` to `rx`.
  [[nodiscard]] bool path_ok(std::size_t m, can::NodeId tx,
                             can::NodeId rx) const;

  [[nodiscard]] bool failed(std::size_t m) const { return media_[m].failed; }

 private:
  struct Medium {
    bool failed{false};
    bool partitioned{false};
    can::NodeSet segment;
  };
  std::size_t count_;
  std::array<Medium, kMaxMedia> media_{};
};

/// Per-node media selection units over a shared MediaSet; plugs into the
/// bus as its reception filter.
class RedundantMedia final : public can::ReceptionFilter {
 public:
  /// `quarantine_threshold` — disagreements tolerated before a node stops
  /// trusting a medium.
  explicit RedundantMedia(MediaSet& media, int quarantine_threshold = 3);

  // can::ReceptionFilter
  bool receives(can::NodeId tx, can::NodeId rx, const can::Frame& f) override;

  [[nodiscard]] bool quarantined(can::NodeId node, std::size_t m) const {
    return msu_[node].quarantined[m];
  }
  [[nodiscard]] int suspect_count(can::NodeId node, std::size_t m) const {
    return msu_[node].suspect[m];
  }

  /// Frames lost because *no* medium delivered (diagnostics; should stay
  /// zero under single-medium faults).
  [[nodiscard]] std::uint64_t total_losses() const { return losses_; }

 private:
  struct Msu {
    std::array<bool, kMaxMedia> quarantined{};
    std::array<int, kMaxMedia> suspect{};
  };
  MediaSet& media_;
  int threshold_;
  std::array<Msu, can::kMaxNodes> msu_{};
  std::uint64_t losses_{0};
};

}  // namespace canely::media
