#include "broadcast/totcan.hpp"

#include "broadcast/edcan.hpp"  // MsgKey

namespace canely::broadcast {

TotcanBroadcast::TotcanBroadcast(CanDriver& driver, sim::TimerService& timers,
                                 sim::Time accept_timeout)
    : driver_{driver}, timers_{timers}, accept_timeout_{accept_timeout} {
  driver_.on_data_ind(MsgType::kTotcanData,
                      [this](const Mid& mid,
                             std::span<const std::uint8_t> data,
                             bool own) { on_data_ind(mid, data, own); });
  driver_.on_data_cnf(MsgType::kTotcanData,
                      [this](const Mid& mid) { on_data_cnf(mid); });
  driver_.on_rtr_ind(MsgType::kTotcanAccept,
                     [this](const Mid& mid, bool /*own*/) {
                       on_accept_ind(mid);
                     });
}

std::uint8_t TotcanBroadcast::broadcast(std::span<const std::uint8_t> data) {
  const std::uint8_t seq = next_seq_++;
  driver_.can_data_req(Mid{MsgType::kTotcanData, seq, driver_.node()}, data);
  return seq;
}

void TotcanBroadcast::on_data_ind(const Mid& mid,
                                  std::span<const std::uint8_t> data,
                                  bool /*own*/) {
  // Phase 1: buffer, do not deliver; delivery order is the ACCEPT order.
  const std::uint16_t key = MsgKey{mid.node, mid.ref}.packed();
  if (buffered_.contains(key) || accept_ndup_.contains(key)) return;  // dup
  Buffered& b = buffered_[key];
  b.data.assign(data.begin(), data.end());
  b.timer = timers_.start_alarm(accept_timeout_, [this, key] {
    on_discard_timeout(key);
  });
}

void TotcanBroadcast::on_data_cnf(const Mid& mid) {
  // Sender side, phase 2: the data frame is on every live controller;
  // serialize delivery by broadcasting ACCEPT.
  if (mid.node != driver_.node()) return;
  driver_.can_rtr_req(Mid{MsgType::kTotcanAccept, mid.ref, mid.node});
}

void TotcanBroadcast::on_accept_ind(const Mid& mid) {
  const std::uint16_t key = MsgKey{mid.node, mid.ref}.packed();
  int& ndup = ++accept_ndup_[key];
  if (ndup != 1) return;
  // Deliver in ACCEPT arrival order (identical at all correct nodes).
  if (auto it = buffered_.find(key); it != buffered_.end()) {
    timers_.cancel_alarm(it->second.timer);
    ++delivered_;
    if (deliver_) deliver_(mid.node, mid.ref, it->second.data);
    buffered_.erase(it);
  }
  // Eagerly echo the ACCEPT so its delivery is all-or-none.
  int& nreq = ++accept_nreq_[key];
  if (nreq == 1 && mid.node != driver_.node()) {
    driver_.can_rtr_req(mid);
  }
}

void TotcanBroadcast::on_discard_timeout(std::uint16_t key) {
  // No ACCEPT within the timeout: the sender crashed before phase 2.
  // Discard — every correct node does the same.
  auto it = buffered_.find(key);
  if (it == buffered_.end()) return;
  ++discarded_;
  buffered_.erase(it);
}

}  // namespace canely::broadcast
