#include "broadcast/relcan.hpp"

#include "broadcast/edcan.hpp"  // MsgKey

namespace canely::broadcast {

RelcanBroadcast::RelcanBroadcast(CanDriver& driver, sim::TimerService& timers,
                                 sim::Time confirm_timeout)
    : driver_{driver}, timers_{timers}, confirm_timeout_{confirm_timeout} {
  driver_.on_data_ind(MsgType::kRelcanData,
                      [this](const Mid& mid,
                             std::span<const std::uint8_t> data,
                             bool own) { on_data_ind(mid, data, own); });
  driver_.on_rtr_ind(MsgType::kRelcanConfirm,
                     [this](const Mid& mid, bool /*own*/) {
                       on_confirm_ind(mid);
                     });
  driver_.on_data_cnf(MsgType::kRelcanData,
                      [this](const Mid& mid) { on_data_cnf(mid); });
}

std::uint8_t RelcanBroadcast::broadcast(std::span<const std::uint8_t> data) {
  const std::uint8_t seq = next_seq_++;
  driver_.can_data_req(Mid{MsgType::kRelcanData, seq, driver_.node()}, data);
  return seq;
}

void RelcanBroadcast::on_data_ind(const Mid& mid,
                                  std::span<const std::uint8_t> data,
                                  bool own) {
  const std::uint16_t key = MsgKey{mid.node, mid.ref}.packed();
  int& ndup = ndup_[key];
  ndup += 1;
  if (ndup != 1) return;
  if (deliver_) deliver_(mid.node, mid.ref, data);
  if (own) return;  // the sender itself confirms via .cnf, not a timer
  // Buffer and arm the confirm watchdog.
  Pending& p = pending_[key];
  p.data.assign(data.begin(), data.end());
  p.timer = timers_.start_alarm(confirm_timeout_, [this, key] {
    on_timeout(key);
  });
}

void RelcanBroadcast::on_data_cnf(const Mid& mid) {
  // Sender side: the CAN layer confirmed the data frame; issue CONFIRM.
  if (mid.node != driver_.node()) return;
  driver_.can_rtr_req(Mid{MsgType::kRelcanConfirm, mid.ref, mid.node});
}

void RelcanBroadcast::on_confirm_ind(const Mid& mid) {
  const std::uint16_t key = MsgKey{mid.node, mid.ref}.packed();
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  it->second.confirmed = true;
  timers_.cancel_alarm(it->second.timer);
  pending_.erase(it);
}

void RelcanBroadcast::on_timeout(std::uint16_t key) {
  // No CONFIRM: the sender may have crashed after an inconsistent
  // omission.  Eagerly diffuse the buffered copy (identical frames from
  // all suspecting recipients cluster).
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  ++fallbacks_;
  const Mid mid{MsgType::kRelcanData, static_cast<std::uint8_t>(key & 0xFF),
                static_cast<can::NodeId>(key >> 8)};
  driver_.can_data_req(mid, it->second.data);
  pending_.erase(it);
}

}  // namespace canely::broadcast
