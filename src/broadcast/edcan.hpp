#pragma once
// EDCAN — "Eager Diffusion" reliable broadcast on CAN (Rufino et al.,
// FTCS-28 [18]; paper §2, §6.2).
//
// The native CAN layer only gives *best-effort* agreement (LCAN2): an
// inconsistent omission followed by a sender crash leaves some correct
// nodes without the message.  EDCAN fixes this eagerly: every recipient of
// the first copy of a message immediately requests retransmission of the
// *identical* frame.  On the wired-AND bus the simultaneous copies cluster
// into (typically) one physical frame, so the fault-free cost is two
// frames per broadcast, independent of group size.  The FDA micro-protocol
// of the paper (Fig. 6) is a simplified, single-shot EDCAN.
//
// Message identity: mid{EDCAN, seq, sender}; duplicates are filtered per
// (sender, seq).  The 8-bit sequence number wraps; dedup state for a
// sender resets when a gap larger than half the space is observed.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "can/types.hpp"
#include "canely/driver.hpp"

namespace canely::broadcast {

/// Dedup key for (sender, seq) message identities.
struct MsgKey {
  can::NodeId sender;
  std::uint8_t seq;
  [[nodiscard]] constexpr std::uint16_t packed() const {
    return static_cast<std::uint16_t>((sender << 8) | seq);
  }
};

/// Eager-diffusion reliable broadcast endpoint (one per node).
class EdcanBroadcast {
 public:
  /// Delivery: original sender, sequence number, payload.
  using DeliverHandler = std::function<void(
      can::NodeId from, std::uint8_t seq, std::span<const std::uint8_t>)>;

  explicit EdcanBroadcast(CanDriver& driver);
  EdcanBroadcast(const EdcanBroadcast&) = delete;
  EdcanBroadcast& operator=(const EdcanBroadcast&) = delete;

  /// Reliably broadcast up to 8 bytes.  Returns the sequence number used.
  std::uint8_t broadcast(std::span<const std::uint8_t> data);

  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Diagnostics: copies observed for a message (tests assert clustering).
  [[nodiscard]] int copies_seen(can::NodeId sender, std::uint8_t seq) const;

 private:
  void on_data_ind(const Mid& mid, std::span<const std::uint8_t> data,
                   bool own);

  CanDriver& driver_;
  DeliverHandler deliver_;
  std::uint8_t next_seq_{0};
  // Ordered maps: determinism-zone code holds only containers with a
  // defined iteration order (canely-lint no-unordered-iter); dedup state
  // stays small (per-sender sequence window), so the tree walk is cheap.
  std::map<std::uint16_t, int> ndup_;  // copies seen per message
  std::map<std::uint16_t, int> nreq_;  // own tx requests per message
};

}  // namespace canely::broadcast
