#include "broadcast/edcan.hpp"

namespace canely::broadcast {

EdcanBroadcast::EdcanBroadcast(CanDriver& driver) : driver_{driver} {
  driver_.on_data_ind(MsgType::kEdcan,
                      [this](const Mid& mid,
                             std::span<const std::uint8_t> data,
                             bool own) { on_data_ind(mid, data, own); });
}

std::uint8_t EdcanBroadcast::broadcast(std::span<const std::uint8_t> data) {
  const std::uint8_t seq = next_seq_++;
  const Mid mid{MsgType::kEdcan, seq, driver_.node()};
  nreq_[MsgKey{driver_.node(), seq}.packed()] += 1;
  driver_.can_data_req(mid, data);
  return seq;
}

void EdcanBroadcast::on_data_ind(const Mid& mid,
                                 std::span<const std::uint8_t> data,
                                 bool /*own*/) {
  const MsgKey key{mid.node, mid.ref};
  int& ndup = ndup_[key.packed()];
  ndup += 1;
  if (ndup != 1) return;  // duplicate: absorbed
  // First copy: deliver, then eagerly retransmit the identical frame so
  // any victim of an inconsistent omission receives it even if the
  // original sender crashes.  (Recipients' copies cluster on the bus.)
  if (deliver_) deliver_(mid.node, mid.ref, data);
  int& nreq = nreq_[key.packed()];
  nreq += 1;
  if (nreq == 1) {
    driver_.can_data_req(mid, data);  // identical mid + data => clusters
  }
}

int EdcanBroadcast::copies_seen(can::NodeId sender, std::uint8_t seq) const {
  const auto it = ndup_.find(MsgKey{sender, seq}.packed());
  return it == ndup_.end() ? 0 : it->second;
}

}  // namespace canely::broadcast
