#pragma once
// TOTCAN — totally ordered atomic broadcast on CAN ([18]; paper §2).
//
// The paper's predecessor work dismissed the common misconception that
// native CAN delivers a totally ordered atomic broadcast; TOTCAN restores
// it with a two-phase scheme:
//
//   phase 1  the sender disseminates the message (data frame); recipients
//            *buffer* it, undelivered;
//   phase 2  once the CAN layer confirms the data frame, the sender issues
//            an ACCEPT remote frame; messages are delivered in ACCEPT
//            order — a total order, because the bus serializes frames and
//            every node observes them in the same sequence.
//
// ACCEPT frames themselves are made reliable by eager diffusion (each
// recipient echoes the identical ACCEPT once; copies cluster).  If the
// sender crashes before its ACCEPT is seen, the buffered message is
// discarded after a timeout — unanimously, since no correct node saw an
// ACCEPT either (the eager echo guarantees all-or-none ACCEPT delivery
// under the j-bounded inconsistent-omission assumption).

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "sim/timer.hpp"

namespace canely::broadcast {

/// Total-order atomic broadcast endpoint (one per node).
class TotcanBroadcast {
 public:
  using DeliverHandler = std::function<void(
      can::NodeId from, std::uint8_t seq, std::span<const std::uint8_t>)>;

  TotcanBroadcast(CanDriver& driver, sim::TimerService& timers,
                  sim::Time accept_timeout = sim::Time::ms(5));
  TotcanBroadcast(const TotcanBroadcast&) = delete;
  TotcanBroadcast& operator=(const TotcanBroadcast&) = delete;

  /// Atomically broadcast up to 8 bytes; returns the sequence number.
  std::uint8_t broadcast(std::span<const std::uint8_t> data);

  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Diagnostics.
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t discarded() const { return discarded_; }

 private:
  struct Buffered {
    std::vector<std::uint8_t> data;
    sim::TimerId timer{sim::kNullTimer};
  };

  void on_data_ind(const Mid& mid, std::span<const std::uint8_t> data,
                   bool own);
  void on_data_cnf(const Mid& mid);
  void on_accept_ind(const Mid& mid);
  void on_discard_timeout(std::uint16_t key);

  CanDriver& driver_;
  sim::TimerService& timers_;
  sim::Time accept_timeout_;
  DeliverHandler deliver_;
  std::uint8_t next_seq_{0};
  // Ordered maps: determinism-zone code holds only containers with a
  // defined iteration order (canely-lint no-unordered-iter).
  std::map<std::uint16_t, Buffered> buffered_;
  std::map<std::uint16_t, int> accept_ndup_;
  std::map<std::uint16_t, int> accept_nreq_;
  std::uint64_t delivered_{0};
  std::uint64_t discarded_{0};
};

}  // namespace canely::broadcast
