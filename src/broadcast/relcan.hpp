#pragma once
// RELCAN — lazy reliable broadcast on CAN ([18]; paper §2).
//
// Where EDCAN pays an eager second frame on *every* broadcast, RELCAN is
// optimistic: the sender transmits the data frame, and once the CAN layer
// confirms it (can-data.cnf) it transmits a short CONFIRM remote frame.
// Recipients deliver the data immediately (at-least-once); a recipient
// that saw the data but no CONFIRM within a timeout suspects the sender
// crashed mid-protocol — possibly leaving an inconsistent omission behind
// — and falls back to eager diffusion of the buffered message.
//
// Fault-free cost: one data frame + one 0-byte remote frame.  The fallback
// costs one extra data frame per suspecting recipient (clustered).

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "canely/params.hpp"
#include "sim/timer.hpp"

namespace canely::broadcast {

/// Lazy reliable broadcast endpoint (one per node).
class RelcanBroadcast {
 public:
  using DeliverHandler = std::function<void(
      can::NodeId from, std::uint8_t seq, std::span<const std::uint8_t>)>;

  RelcanBroadcast(CanDriver& driver, sim::TimerService& timers,
                  sim::Time confirm_timeout = sim::Time::ms(2));
  RelcanBroadcast(const RelcanBroadcast&) = delete;
  RelcanBroadcast& operator=(const RelcanBroadcast&) = delete;

  /// Reliably broadcast up to 8 bytes; returns the sequence number.
  std::uint8_t broadcast(std::span<const std::uint8_t> data);

  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Diagnostics: number of eager fallbacks triggered at this node.
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> data;
    sim::TimerId timer{sim::kNullTimer};
    bool confirmed{false};
  };

  void on_data_ind(const Mid& mid, std::span<const std::uint8_t> data,
                   bool own);
  void on_confirm_ind(const Mid& mid);
  void on_data_cnf(const Mid& mid);
  void on_timeout(std::uint16_t key);

  CanDriver& driver_;
  sim::TimerService& timers_;
  sim::Time confirm_timeout_;
  DeliverHandler deliver_;
  std::uint8_t next_seq_{0};
  // Ordered maps: determinism-zone code holds only containers with a
  // defined iteration order (canely-lint no-unordered-iter).
  std::map<std::uint16_t, int> ndup_;
  std::map<std::uint16_t, Pending> pending_;
  std::uint64_t fallbacks_{0};
};

}  // namespace canely::broadcast
