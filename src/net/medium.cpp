#include "net/medium.hpp"

#include <stdexcept>
#include <utility>

namespace canely::net {

Medium::Medium(sim::Engine& engine, MediumConfig config, std::uint64_t seed)
    : engine_{engine},
      config_{config},
      rng_{seed},
      handlers_(config.n),
      crashed_(config.n, false) {
  if (config.n == 0) {
    throw std::invalid_argument("net::Medium: config.n must be > 0");
  }
}

void Medium::attach(NodeId node, Handler handler) {
  if (node >= config_.n) {
    throw std::out_of_range("net::Medium::attach: node id out of range");
  }
  handlers_[node] = std::move(handler);
}

void Medium::set_link(NodeId from, NodeId to, LinkModel model) {
  if (from >= config_.n || to >= config_.n) {
    throw std::out_of_range("net::Medium::set_link: node id out of range");
  }
  links_[static_cast<std::uint64_t>(from) << 32 | to] = model;
}

void Medium::set_partition(std::vector<std::uint64_t> mask) {
  if (mask.size() != config_.n) {
    throw std::invalid_argument(
        "net::Medium::set_partition: mask must have one word per node");
  }
  partition_ = std::move(mask);
}

void Medium::clear_partition() { partition_.clear(); }

void Medium::crash(NodeId node) {
  if (node < config_.n) crashed_[node] = true;
}

const LinkModel& Medium::link(NodeId from, NodeId to) const {
  const auto it = links_.find(static_cast<std::uint64_t>(from) << 32 | to);
  return it != links_.end() ? it->second : config_.default_link;
}

bool Medium::reachable(NodeId from, NodeId to) const {
  if (partition_.empty()) return true;
  return (partition_[from] & partition_[to]) != 0;
}

void Medium::send(Message msg) {
  if (msg.from >= config_.n) {
    throw std::out_of_range("net::Medium::send: sender id out of range");
  }
  if (msg.to != kBroadcast && msg.to >= config_.n) {
    throw std::out_of_range("net::Medium::send: destination out of range");
  }
  if (crashed_[msg.from]) return;  // a dead node transmits nothing
  if (msg.to != kBroadcast) {
    const LinkModel& m = link(msg.from, msg.to);
    transmit_copy(msg, m, /*duplicate=*/false);
    return;
  }
  // Broadcast: one independently-faulted copy per other attached node.
  Message copy = msg;
  for (NodeId to = 0; to < config_.n; ++to) {
    if (to == msg.from) continue;
    copy.to = to;
    transmit_copy(copy, link(msg.from, to), /*duplicate=*/false);
  }
}

void Medium::transmit_copy(const Message& msg, const LinkModel& m,
                           bool duplicate) {
  const std::uint64_t wire_bytes = config_.header_bytes + msg.bytes.size();
  ++stats_.sent;
  stats_.bytes_sent += wire_bytes;
  if (duplicate) ++stats_.duplicated;
  if (recorder_ != nullptr) {
    recorder_->metrics().counter("net.msgs_sent").add();
    recorder_->metrics().counter("net.bytes_sent").add(wire_bytes);
  }
  // Draw order is fixed (drop, delay, dup) so the consumed stream — and
  // with it every later draw — is independent of the outcomes.
  const bool dropped = m.drop_p > 0.0 && rng_.chance(m.drop_p);
  const sim::Time spread = m.delay_max - m.delay_min;
  sim::Time delay = m.delay_min;
  if (spread > sim::Time::zero()) {
    delay += sim::Time::ns(static_cast<std::int64_t>(
        rng_.below(static_cast<std::uint64_t>(spread.to_ns()) + 1)));
  }
  const bool dup = !duplicate && m.dup_p > 0.0 && rng_.chance(m.dup_p);
  if (dropped || !reachable(msg.from, msg.to)) {
    ++stats_.dropped;
    if (recorder_ != nullptr) {
      recorder_->metrics().counter("net.msgs_dropped").add();
    }
  } else {
    engine_.schedule_after(delay, [this, msg] { deliver(msg); });
  }
  // The duplicate re-enters as a fresh copy with its own delay (it may
  // overtake the original) and drop draw, but never re-duplicates: at
  // most one extra copy per transmission, so dup_p = 1.0 terminates.
  if (dup) transmit_copy(msg, m, /*duplicate=*/true);
}

void Medium::deliver(const Message& msg) {
  if (crashed_[msg.to] || !handlers_[msg.to]) {
    ++stats_.dropped;
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += config_.header_bytes + msg.bytes.size();
  handlers_[msg.to](msg);
}

}  // namespace canely::net
