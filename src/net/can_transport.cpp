#include "net/can_transport.hpp"

#include <stdexcept>
#include <utility>

#include "can/bitstream.hpp"

namespace canely::net {
namespace {

// 29-bit extended identifier layout: kind(15) | from(6) | to(7).
// `to` 0x7F is the broadcast destination (net::kBroadcast on the wire).
constexpr std::uint32_t kToBits = 7;
constexpr std::uint32_t kFromBits = 6;
constexpr std::uint32_t kToMask = (1u << kToBits) - 1;
constexpr std::uint32_t kWireBroadcast = kToMask;

constexpr std::uint32_t encode_id(std::uint32_t kind, NodeId from,
                                  std::uint32_t to_field) {
  return kind << (kFromBits + kToBits) | from << kToBits | to_field;
}

}  // namespace

/// One attached node: its controller plus the client glue that routes
/// received frames back through the adapter's destination filter.
struct CanTransport::Port : can::ControllerClient {
  Port(CanTransport& owner, can::Bus& bus, NodeId node, Handler handler)
      : owner_{owner},
        handler_{std::move(handler)},
        node_{node},
        controller_{static_cast<can::NodeId>(node), bus} {
    controller_.set_client(this);
  }

  void on_rx(const can::Frame& frame, bool own) override {
    if (own || frame.remote || frame.format != can::IdFormat::kExtended) {
      return;
    }
    const std::uint32_t to_field = frame.id & kToMask;
    if (to_field != kWireBroadcast && to_field != node_) return;
    Message msg;
    msg.from = frame.id >> kToBits & ((1u << kFromBits) - 1);
    msg.to = to_field == kWireBroadcast ? kBroadcast : node_;
    msg.kind = frame.id >> (kFromBits + kToBits);
    msg.bytes.assign(frame.payload().begin(), frame.payload().end());
    const std::uint64_t bytes = msg.bytes.size();
    ++owner_.stats_.delivered;
    owner_.stats_.bytes_delivered += bytes;
    handler_(msg);
  }

  void on_tx_confirm(const can::Frame&) override {}

  CanTransport& owner_;
  Handler handler_;
  NodeId node_;
  can::Controller controller_;
};

CanTransport::CanTransport(can::Bus& bus) : bus_{bus} {}
CanTransport::~CanTransport() = default;

sim::Engine& CanTransport::engine() { return bus_.engine(); }

void CanTransport::attach(NodeId node, Handler handler) {
  if (node >= can::kMaxNodes) {
    throw std::out_of_range("net::CanTransport: node id exceeds CAN range");
  }
  if (ports_.size() <= node) ports_.resize(node + 1);
  if (ports_[node]) {
    throw std::logic_error("net::CanTransport: node attached twice");
  }
  ports_[node] =
      std::make_unique<Port>(*this, bus_, node, std::move(handler));
}

void CanTransport::send(Message msg) {
  if (msg.from >= ports_.size() || !ports_[msg.from]) {
    throw std::logic_error("net::CanTransport::send: sender not attached");
  }
  if (msg.bytes.size() > kMaxBytes) {
    throw std::invalid_argument(
        "net::CanTransport::send: payload exceeds one CAN data field");
  }
  if (msg.kind > kMaxKind) {
    throw std::invalid_argument("net::CanTransport::send: kind too large");
  }
  const std::uint32_t to_field =
      msg.to == kBroadcast ? kWireBroadcast : msg.to;
  if (msg.to != kBroadcast && msg.to >= can::kMaxNodes) {
    throw std::out_of_range("net::CanTransport::send: destination range");
  }
  const can::Frame frame = can::Frame::make_data(
      encode_id(msg.kind, msg.from, to_field),
      {msg.bytes.data(), msg.bytes.size()}, can::IdFormat::kExtended);
  // CAN is a broadcast wire: one frame reaches every node, so a
  // broadcast costs ONE transmitted copy — the physical-layer asymmetry
  // the membership shootout quantifies.  Bytes are charged at the
  // frame's stuffed on-wire size, matching the bandwidth benches.
  ++stats_.sent;
  stats_.bytes_sent += (can::frame_bits_on_wire(frame) + 7) / 8;
  ports_[msg.from]->controller_.request_tx(frame);
}

}  // namespace canely::net
