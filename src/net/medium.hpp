#pragma once
// Deterministic, seeded, lossy point-to-point message medium
// (DESIGN.md §13) — the non-CAN half of the transmit/deliver seam.
//
// Models a general asynchronous network: every ordered pair of nodes is
// a link with its own delay distribution (uniform in [delay_min,
// delay_max] — a nonzero spread makes reordering possible), independent
// drop and duplicate probabilities, and an optional partition mask.
// All draws come from one xoshiro stream seeded at construction and
// consumed in send order, so a run is a pure function of (seed, send
// sequence): same seed, same sends => byte-identical delivery schedule,
// which tests/test_net_medium.cpp asserts.
//
// Degeneracy property (also asserted): with zero loss, zero duplication
// and a constant delay the medium is a global FIFO — messages deliver in
// exactly the order they were sent, because equal-timestamp events fire
// in scheduling order (sim::Engine's determinism rule).

#include <map>
#include <vector>

#include "net/transport.hpp"
#include "obs/recorder.hpp"
#include "sim/rng.hpp"

namespace canely::net {

/// Per-link behavior.  Defaults are a perfect wire (FIFO degeneracy).
struct LinkModel {
  sim::Time delay_min{sim::Time::zero()};
  sim::Time delay_max{sim::Time::zero()};  ///< uniform in [min, max]
  double drop_p{0.0};
  double dup_p{0.0};
};

struct MediumConfig {
  std::size_t n{0};          ///< nodes 0..n-1
  LinkModel default_link{};  ///< used unless set_link() overrides a pair
  /// Per-copy fixed cost added to the payload size when charging
  /// bytes_sent (transport/IP/UDP-style framing; 32 mirrors common
  /// membership implementations' small-header regime).
  std::uint32_t header_bytes{32};
};

class Medium final : public Transport {
 public:
  Medium(sim::Engine& engine, MediumConfig config, std::uint64_t seed);

  void attach(NodeId node, Handler handler) override;
  void send(Message msg) override;
  [[nodiscard]] sim::Engine& engine() override { return engine_; }
  [[nodiscard]] const TransportStats& stats() const override {
    return stats_;
  }

  /// Override the model of the directed link `from -> to`.
  void set_link(NodeId from, NodeId to, LinkModel model);

  /// Partition mask: node i may talk to node j iff
  /// (mask[i] & mask[j]) != 0.  A node with mask 0 is fully isolated.
  /// Copies in flight when the mask changes still deliver (they are
  /// already "on the wire"); new sends are filtered.  The default mask
  /// is all-ones (one connected component).
  void set_partition(std::vector<std::uint64_t> mask);
  void clear_partition();

  /// Silence a node at the medium level: it neither sends nor receives
  /// from now on (in-flight copies addressed to it are dropped at
  /// delivery time).  This is the fail-stop model the baselines assume.
  void crash(NodeId node);
  [[nodiscard]] bool crashed(NodeId node) const {
    return node < config_.n && crashed_[node];
  }

  /// Structured observability (non-owning; may be null): net.msgs_sent /
  /// net.bytes_sent / net.msgs_dropped counters.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] const MediumConfig& config() const { return config_; }

 private:
  [[nodiscard]] const LinkModel& link(NodeId from, NodeId to) const;
  [[nodiscard]] bool reachable(NodeId from, NodeId to) const;
  void transmit_copy(const Message& msg, const LinkModel& m, bool duplicate);
  void deliver(const Message& msg);

  sim::Engine& engine_;
  MediumConfig config_;
  sim::Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<std::uint64_t> partition_;  ///< empty = no partition
  /// Sparse per-pair overrides, keyed (from << 32 | to); std::map for
  /// deterministic iteration per the zone rules (never iterated hot).
  std::map<std::uint64_t, LinkModel> links_;
  TransportStats stats_;
  obs::Recorder* recorder_{nullptr};
};

}  // namespace canely::net
