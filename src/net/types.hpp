#pragma once
// Fundamental types of the media-agnostic point-to-point network layer
// (DESIGN.md §13).
//
// `src/net` exists so the simulator can host workloads that are *not*
// CAN: general asynchronous distributed-systems protocols (SWIM, gossip,
// Rapid-style cut detection) whose natural medium is a lossy unicast
// network, at node counts far beyond the 64-node CAN bitmap.  NodeId is
// therefore a plain 32-bit index and membership views are dynamic
// bitsets sized at construction, not can::NodeSet.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace canely::net {

/// Index of a process on the simulated network.  Valid range [0, n).
using NodeId = std::uint32_t;

/// Destination meaning "every attached node" (medium-level fan-out; the
/// per-copy cost is still charged once per receiver, see medium.hpp).
inline constexpr NodeId kBroadcast = 0xFFFF'FFFF;

/// One point-to-point message.  `kind` is protocol-defined; `bytes` is
/// the serialized payload.  Bandwidth accounting charges
/// MediumConfig::header_bytes + bytes.size() per transmitted copy.
struct Message {
  NodeId from{0};
  NodeId to{0};
  std::uint32_t kind{0};
  // canely-lint: allow(wire-layout) — variable-length payload; codecs length-prefix it explicitly and bandwidth accounting charges bytes.size()
  std::vector<std::uint8_t> bytes;
};

/// A set of nodes, sized for clusters up to any n (bitmap words).  The
/// net-side analogue of can::NodeSet, used for membership views of the
/// SWIM / gossip / Rapid baselines at n = 8..1024 and beyond.
class Members {
 public:
  Members() = default;
  explicit Members(std::size_t n)
      : n_{static_cast<std::uint32_t>(n)}, words_((n + 63) / 64, 0) {}

  /// The full set {0, ..., n-1}.
  [[nodiscard]] static Members all(std::size_t n) {
    Members m{n};
    for (std::size_t i = 0; i < n; ++i) m.insert(static_cast<NodeId>(i));
    return m;
  }

  [[nodiscard]] std::size_t capacity() const { return n_; }

  void insert(NodeId id) {
    if (id < n_) words_[id >> 6] |= 1ULL << (id & 63);
  }
  void erase(NodeId id) {
    if (id < n_) words_[id >> 6] &= ~(1ULL << (id & 63));
  }
  [[nodiscard]] bool contains(NodeId id) const {
    return id < n_ && (words_[id >> 6] >> (id & 63) & 1) != 0;
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(popcount(w));
    return c;
  }

  friend bool operator==(const Members&, const Members&) = default;

  /// Raw words, low node ids in word 0 bit 0 (state hashing, tests).
  [[nodiscard]] const std::vector<std::uint64_t>& words() const {
    return words_;
  }

 private:
  static int popcount(std::uint64_t w) {
    int c = 0;
    while (w != 0) {
      w &= w - 1;
      ++c;
    }
    return c;
  }
  std::uint32_t n_{0};
  // canely-lint: allow(wire-layout) — in-memory membership bitmap; codecs serialize the words explicitly via put_u64
  std::vector<std::uint64_t> words_;
};

/// Little-endian scalar append/read helpers shared by the baseline
/// protocols' wire codecs (swim.cpp, gossip.cpp, rapid.cpp).  Explicit
/// byte order keeps serialized sizes — and therefore the bandwidth
/// curves — platform-independent.
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}
[[nodiscard]] inline std::uint32_t get_u32(const std::vector<std::uint8_t>& in,
                                           std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         static_cast<std::uint32_t>(in[at + 1]) << 8 |
         static_cast<std::uint32_t>(in[at + 2]) << 16 |
         static_cast<std::uint32_t>(in[at + 3]) << 24;
}
[[nodiscard]] inline std::uint64_t get_u64(const std::vector<std::uint8_t>& in,
                                           std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(in, at)) |
         static_cast<std::uint64_t>(get_u32(in, at + 4)) << 32;
}

}  // namespace canely::net
