#pragma once
// The transmit/deliver seam that makes the engine media-agnostic
// (DESIGN.md §13).
//
// Every medium the simulator hosts — the lossy point-to-point Medium in
// this directory, and the CAN bus via the CanTransport adapter — exposes
// the same three verbs: attach a per-node delivery handler, send a
// message, read traffic counters.  Protocols written against Transport
// (SWIM, gossip, Rapid-style cut detection) run unchanged over either
// medium; the engine itself never learns which one is underneath.
//
// Delivery contract shared by all implementations:
//   * handlers run from engine events, never re-entrantly inside send();
//   * a send() at time t delivers at some t' > t or never (drop);
//   * all nondeterminism (delay draws, drops, duplicates) derives from
//     the medium's own seeded Rng — a run is a pure function of
//     (seed, send sequence), per the determinism zone rules.

#include <functional>

#include "net/types.hpp"
#include "sim/engine.hpp"

namespace canely::net {

/// Cumulative traffic counters of a medium.  `sent` counts transmitted
/// copies as the medium defines them — the point-to-point Medium
/// charges one copy per receiver (a broadcast of fan-out f counts f, a
/// duplicate counts again), while CanTransport charges one frame per
/// broadcast, because a CAN wire physically reaches everyone at once.
/// That asymmetry is data, not noise: it is the bandwidth edge the
/// membership shootout measures.
struct TransportStats {
  std::uint64_t sent{0};
  std::uint64_t delivered{0};
  std::uint64_t dropped{0};     ///< loss draws + partition/crash filtering
  std::uint64_t duplicated{0};  ///< extra copies injected by dup_p
  std::uint64_t bytes_sent{0};
  std::uint64_t bytes_delivered{0};
};

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Transport() = default;

  /// Register `node`'s delivery handler.  One handler per node; a
  /// message to a node with no handler is counted dropped.
  virtual void attach(NodeId node, Handler handler) = 0;

  /// Queue a message.  `to` may be kBroadcast (delivered to every
  /// attached node except `from`, each copy charged separately).
  virtual void send(Message msg) = 0;

  /// The engine this medium schedules on (protocol timers live here).
  [[nodiscard]] virtual sim::Engine& engine() = 0;

  [[nodiscard]] virtual const TransportStats& stats() const = 0;
};

}  // namespace canely::net
