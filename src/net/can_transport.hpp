#pragma once
// CAN side of the transmit/deliver seam (DESIGN.md §13): adapts a
// can::Bus to net::Transport, so a protocol written against the seam
// runs unchanged over the simulated CAN wire.
//
// Mapping: one can::Controller per attached node; a net::Message rides
// a single extended-format data frame whose 29-bit identifier encodes
// (kind, from, to) — CAN is a broadcast medium, so every controller
// hears every frame and the adapter filters on the destination field.
// The data field caps payloads at 8 bytes; protocols needing more must
// run on net::Medium (no fragmentation here — the adapter exists to
// prove the seam, not to turn CAN into UDP).
//
// Loss/partition knobs live with the bus's own fault injector, not
// here: the CAN medium's failure semantics are exactly the ones the
// paper models, which is the point of the comparison.

#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "net/transport.hpp"

namespace canely::net {

class CanTransport final : public Transport {
 public:
  /// Nodes must fit the CAN id budget: [0, can::kMaxNodes).
  explicit CanTransport(can::Bus& bus);
  ~CanTransport() override;

  void attach(NodeId node, Handler handler) override;
  void send(Message msg) override;
  [[nodiscard]] sim::Engine& engine() override;
  [[nodiscard]] const TransportStats& stats() const override {
    return stats_;
  }

  /// Maximum payload a single CAN data frame can carry for us.
  static constexpr std::size_t kMaxBytes = can::kMaxData;
  /// kind must fit the identifier bits left after two node fields.
  static constexpr std::uint32_t kMaxKind = (1u << 15) - 1;

 private:
  struct Port;  // Controller + client glue, one per attached node

  can::Bus& bus_;
  std::vector<std::unique_ptr<Port>> ports_;
  TransportStats stats_;
};

}  // namespace canely::net
