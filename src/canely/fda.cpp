#include "canely/fda.hpp"

namespace canely {

FdaProtocol::FdaProtocol(CanDriver& driver, const sim::Tracer* tracer,
                         obs::Recorder* recorder)
    : driver_{driver}, tracer_{tracer}, recorder_{recorder} {
  if (recorder_ != nullptr) {
    ctr_rounds_ = &recorder_->metrics().counter("fda.rounds");
    ctr_ntys_ = &recorder_->metrics().counter("fda.ntys");
  }
  driver_.on_rtr_ind(MsgType::kFda,
                     [this](const Mid& mid, bool /*own*/) { on_rtr_ind(mid); });
}

void FdaProtocol::fda_can_req(can::NodeId failed) {
  // Sender, lines s00-s05: issue a single transmit request per mid.
  int& nreq = fs_nreq_[failed];
  nreq += 1;
  if (nreq == 1) {
    if (recorder_ != nullptr) {
      obs::Event ev;
      ev.when = driver_.engine().now();
      ev.kind = obs::EventKind::kFdaRoundStart;
      ev.node = driver_.node();
      ev.u.peer = {failed};
      recorder_->emit(ev);
      ctr_rounds_->add_node(driver_.node());
    }
    driver_.can_rtr_req(Mid{MsgType::kFda, 0, failed});  // s03
  }
}

void FdaProtocol::on_rtr_ind(const Mid& mid) {
  // Recipient, lines r00-r09.  Note: own transmissions arrive here too
  // (can-rtr.ind includes them), so the original sender delivers its own
  // notification through the same path.
  const can::NodeId failed = mid.node;
  int& ndup = fs_ndup_[failed];
  ndup += 1;                     // r01
  if (ndup != 1) return;         // duplicates are absorbed
  if (tracer_ != nullptr) {
    tracer_->emit(driver_.engine().now(), sim::TraceLevel::kInfo, "fda", [&] {
      return sim::cat_str("n", int{driver_.node()}, " nty failed=",
                          int{failed});
    });
  }
  ++ntys_;
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.when = driver_.engine().now();
    ev.kind = obs::EventKind::kFdaNty;
    ev.node = driver_.node();
    ev.u.peer = {failed};
    recorder_->emit(ev);
    ctr_ntys_->add_node(driver_.node());
  }
  if (nty_) nty_(failed);        // r03: fda-can.nty delivery
  if (nty_obs_) nty_obs_(failed);
  if (!agreement_) return;       // ablation: deliver but never echo
  int& nreq = fs_nreq_[failed];
  nreq += 1;                     // r04
  if (nreq == 1) {
    driver_.can_rtr_req(Mid{MsgType::kFda, 0, failed});  // r06: retransmit
  }
}

void FdaProtocol::reset(can::NodeId node) {
  fs_ndup_[node] = 0;
  fs_nreq_[node] = 0;
  // Drop any still-pending failure-sign for the reintegrated node.
  driver_.can_abort_req(Mid{MsgType::kFda, 0, node});
}

}  // namespace canely
