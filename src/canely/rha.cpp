#include "canely/rha.hpp"

#include <array>

namespace canely {
namespace {

std::array<std::uint8_t, 8> to_wire(can::NodeSet set) {
  std::array<std::uint8_t, 8> bytes{};
  const std::uint64_t bits = set.bits();
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>((bits >> (8 * i)) & 0xFF);
  }
  return bytes;
}

can::NodeSet from_wire(std::span<const std::uint8_t> payload) {
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < payload.size() && i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return can::NodeSet::from_bits(bits);
}

}  // namespace

RhaProtocol::RhaProtocol(CanDriver& driver, sim::TimerService& timers,
                         const Params& params, const sim::Tracer* tracer,
                         obs::Recorder* recorder)
    : driver_{driver}, timers_{timers}, params_{params}, tracer_{tracer},
      recorder_{recorder} {
  if (recorder_ != nullptr) {
    ctr_executions_ = &recorder_->metrics().counter("rha.executions");
  }
  driver_.on_data_ind(
      MsgType::kRha,
      [this](const Mid& mid, std::span<const std::uint8_t> payload,
             bool /*own*/) { on_data_ind(mid, payload); });
  // Once our RHV reached the wire there is nothing left to abort: clear
  // the pending flag, or a later abort_pending() would issue a stale
  // can-abort.req that can destroy an unrelated, newer RHA frame whose
  // mid happens to match (same cardinality, same sender).
  driver_.on_data_cnf(MsgType::kRha, [this](const Mid& mid) {
    if (have_pending_ && mid == last_sent_mid_) have_pending_ = false;
  });
}

void RhaProtocol::rha_can_req() {
  // Sender, s00-s04: only full members may start in isolation, and only
  // when no execution is running.
  if (!shared_ || !shared_().full.contains(driver_.node())) return;
  if (tid_ != sim::kNullTimer) return;  // s01
  rha_init_send(can::NodeSet::first_n(can::kMaxNodes));  // s02: R_W = Omega
}

void RhaProtocol::rha_init_send(can::NodeSet rw) {
  // a00-a09.  `r` of the pseudo-code is the local node.
  tid_ = timers_.start_alarm(params_.rha_timeout, [this] { on_alarm(); });  // a01
  const SharedSets sets = shared_ ? shared_() : SharedSets{};
  if (sets.full.contains(driver_.node())) {
    // a03: full-member initial vector ((R_F u R_J) - R_L) ^ R_W
    rhv_ = sets.full.united(sets.joining).minus(sets.leaving).intersected(rw);
  } else {
    rhv_ = rw;  // a05: non-members adopt the received vector
  }
  if (tracer_ != nullptr) {
    tracer_->emit(driver_.engine().now(), sim::TraceLevel::kInfo, "rha", [&] {
      return sim::cat_str("n", int{driver_.node()}, " init rhv=", rhv_);
    });
  }
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.when = driver_.engine().now();
    ev.kind = obs::EventKind::kRhaRoundStart;
    ev.node = driver_.node();
    recorder_->emit(ev);
  }
  send_rhv();                                  // a07
  if (nty_) nty_(RhaEvent::kInit, can::NodeSet{});  // a08
  if (obs_) obs_(RhaEvent::kInit, can::NodeSet{});
}

void RhaProtocol::send_rhv() {
  last_sent_mid_ = Mid{MsgType::kRha, static_cast<std::uint8_t>(rhv_.size()),
                       driver_.node()};
  have_pending_ = true;
  const auto bytes = to_wire(rhv_);
  driver_.can_data_req(last_sent_mid_, bytes);
}

void RhaProtocol::abort_pending() {
  if (!have_pending_) return;
  driver_.can_abort_req(last_sent_mid_);
  have_pending_ = false;
}

void RhaProtocol::on_data_ind(const Mid& /*mid*/,
                              std::span<const std::uint8_t> payload) {
  // Recipient, r00-r13.  Own transmissions arrive here too and are counted
  // as circulating copies.
  const can::NodeSet remote = from_wire(payload);
  int& ndup = ++rhv_ndup_[remote.bits()];  // r01
  (void)ndup;
  if (tid_ == sim::kNullTimer) {
    rha_init_send(remote);  // r03: reception-triggered start
    return;
  }
  if (rhv_.intersected(remote) != rhv_) {  // r04: remote removes nodes
    abort_pending();                       // r05
    rhv_ = rhv_.intersected(remote);       // r06
    send_rhv();                            // r07
    return;
  }
  if (rhv_ndup_[rhv_.bits()] > params_.inconsistent_degree_j) {  // r08
    abort_pending();  // r09: >j copies circulated; ours is redundant
  }
}

void RhaProtocol::on_alarm() {
  // r14-r18: the execution ends; deliver the agreed vector upward.
  if (tracer_ != nullptr) {
    tracer_->emit(driver_.engine().now(), sim::TraceLevel::kInfo, "rha", [&] {
      return sim::cat_str("n", int{driver_.node()}, " end rhv=", rhv_);
    });
  }
  const can::NodeSet agreed = rhv_;
  ++executions_;
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.when = driver_.engine().now();
    ev.kind = obs::EventKind::kRhaRoundEnd;
    ev.node = driver_.node();
    recorder_->emit(ev);
    ctr_executions_->add_node(driver_.node());
  }
  tid_ = sim::kNullTimer;  // r16
  rhv_.clear();            // r17
  rhv_ndup_.clear();       // fresh counters for the next execution (i00)
  // Deviation from the letter of Fig. 7: abort any still-pending own
  // signal, so a queued stale vector cannot trigger a ghost execution
  // after this one ended.  (Trha is sized so this never fires in a
  // correctly parameterized system.)
  abort_pending();
  if (nty_) nty_(RhaEvent::kEnd, agreed);  // r15
  if (obs_) obs_(RhaEvent::kEnd, agreed);
}

}  // namespace canely
