#pragma once
// CANELy protocol parameters (paper §4, §6; defaults per DESIGN.md §5).

#include <cstddef>

#include "sim/time.hpp"

namespace canely {

/// System-wide protocol parameters shared by the failure detection and
/// membership suite.  One instance is configured per deployment and given
/// to every node.
struct Params {
  /// Number of addressable nodes in the system (the paper's Omega has
  /// n elements; Fig. 10 uses n = 32).  Max 64 (RHV fits a data field).
  std::size_t n{8};

  /// Bounded omission degree k of MCAN3: at most k omission failures in a
  /// reference interval Trd.
  int omission_degree_k{2};

  /// Bounded *inconsistent* omission degree j of LCAN4 (j <= k); the RHA
  /// protocol keeps at least j+1 copies of each RHV value circulating
  /// (Fig. 7, line r08).
  int inconsistent_degree_j{2};

  /// Th — heartbeat period: maximum interval between consecutive
  /// life-sign transmit requests of a node (§6.3).
  sim::Time heartbeat_period{sim::Time::ms(10)};

  /// Ttd — bounded frame transmission delay of MCAN4 (worst-case queuing
  /// + transmission + inaccessibility).  Surveillance timers for remote
  /// nodes run for Th + Ttd.  Must be derived from response-time analysis
  /// of the deployment's message set (analysis/response_time.hpp): note
  /// that after a view change every new member's first explicit life-sign
  /// is released at the same instant, so Ttd must cover an n-deep
  /// life-sign queue (~n * 80 bit-times) plus application load.  The
  /// default is sized for n <= 16 at 1 Mbps.
  sim::Time tx_delay_bound{sim::Time::ms(2)};

  /// Tm — membership cycle period (§6.4; Fig. 10 sweeps 30..90 ms).
  sim::Time membership_cycle{sim::Time::ms(30)};

  /// Trha — maximum termination time of one RHA execution (Fig. 7, a01).
  sim::Time rha_timeout{sim::Time::ms(5)};

  /// Tjoin_wait — initial timeout of a joining node, much longer than Tm
  /// (Fig. 9 footnote 9): if no full member answers within it, the joiner
  /// bootstraps a view from the join requests it has seen.
  sim::Time join_wait{sim::Time::ms(200)};

  /// Skip the RHA execution in cycles with no pending join/leave request
  /// (Fig. 9, s24-s25: "in order to save CAN bandwidth").  Disabled only
  /// by the cycle-skip ablation benchmark.
  bool skip_idle_cycles{true};

  /// Run the FDA agreement step (Fig. 6): on delivering a failure-sign,
  /// echo it so every correct node delivers it too.  Disabled only by the
  /// checker's ablation mode, which demonstrates the membership-agreement
  /// violations inconsistent omissions cause without FDA.
  bool fda_agreement{true};

  /// Per-node skew added to *remote* surveillance timers (node i waits
  /// Th + Ttd + i*fd_skew_quantum).  Physical CAN nodes have independent
  /// oscillators, so their timers never expire in perfect lockstep; the
  /// simulator must break the tie explicitly or every survivor would
  /// co-transmit the identical FDA failure-sign simultaneously, leaving
  /// no node to acknowledge it (a transmitter cannot ACK its own frame).
  sim::Time fd_skew_quantum{sim::Time::us(50)};
};

}  // namespace canely
