#pragma once
// Site membership protocol (paper §6.4, Figure 9).
//
// Maintains R_F, the site membership view, consistently at all correct
// nodes.  Join/leave requests travel as remote frames and are collected
// into R_J / R_L during a membership cycle (period Tm); when the cycle
// timer expires with requests pending, the RHA micro-protocol establishes
// an agreed reception history vector from which the new view is computed.
// Node crash failures, signalled consistently by the companion failure
// detection service (FDA), produce immediate membership-change
// notifications and are folded into the view at the next cycle.
//
// Cycle synchronization is implicit: every node — members and joiners —
// restarts its cycle timer whenever an RHA execution starts (Fig. 9,
// line s17 reacts to rha-can.nty(INIT)), and RHA executions start
// quasi-simultaneously everywhere because the triggering RHV frame is
// received quasi-simultaneously.

#include <functional>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "canely/failure_detector.hpp"
#include "canely/fda.hpp"
#include "canely/params.hpp"
#include "canely/rha.hpp"
#include "obs/recorder.hpp"
#include "sim/hash.hpp"
#include "sim/timer.hpp"

namespace canely {

/// One instance per node.
class MembershipService {
 public:
  /// msh-can.nty — membership change notification: the set of active
  /// nodes and the set of nodes that failed (Fig. 5).
  using ChangeHandler =
      std::function<void(can::NodeSet active, can::NodeSet failed)>;

  MembershipService(CanDriver& driver, sim::TimerService& timers,
                    RhaProtocol& rha, FailureDetector& fd, FdaProtocol& fda,
                    const Params& params,
                    const sim::Tracer* tracer = nullptr,
                    obs::Recorder* recorder = nullptr);
  MembershipService(const MembershipService&) = delete;
  MembershipService& operator=(const MembershipService&) = delete;

  /// msh-can.req(JOIN) — request integration of the local node (s00-s03).
  void msh_can_req_join();

  /// msh-can.req(LEAVE) — request withdrawal of the local node (s07-s09).
  void msh_can_req_leave();

  /// msh-can.req(GET) — the current view, net of already-notified
  /// failures (R_F − F_F).
  [[nodiscard]] can::NodeSet view() const { return rf_.minus(ff_); }

  [[nodiscard]] bool is_member() const {
    return view().contains(driver_.node());
  }

  void set_change_handler(ChangeHandler handler) {
    change_ = std::move(handler);
  }

  /// Observer fired every time a view is actually installed (views_
  /// increments), with the new R_F.  External checkers compare these
  /// install sequences across nodes; change notifications are unsuitable
  /// because they also fire for failure amendments within a cycle.
  using ViewObserver = std::function<void(can::NodeSet)>;
  void set_view_observer(ViewObserver observer) {
    view_obs_ = std::move(observer);
  }

  // Introspection for tests (protocol data sets of Fig. 9, i01).
  [[nodiscard]] can::NodeSet rf() const { return rf_; }
  [[nodiscard]] can::NodeSet rj() const { return rj_; }
  [[nodiscard]] can::NodeSet rl() const { return rl_; }
  [[nodiscard]] can::NodeSet ff() const { return ff_; }
  [[nodiscard]] std::uint64_t views_installed() const { return views_; }

  /// Canonical protocol state for the checker's equivalence dedup: the
  /// Fig. 9 data sets, the cycle-timer deadline, and the service/
  /// re-entrancy flags.  views_ and pending_cycles_ are excluded — they
  /// only feed diagnostics and obs histograms, never a protocol branch.
  void hash_state(sim::StateHasher& h) const {
    h.feed(rf_.bits());
    h.feed(rj_.bits());
    h.feed(rjp_.bits());
    h.feed(rl_.bits());
    h.feed(ff_.bits());
    h.feed_time(timers_.deadline(tid_));
    h.feed_bool(started_);
    h.feed_bool(in_cycle_);
  }

 private:
  void on_join_ind(const Mid& mid);          // s04-s06
  void on_leave_ind(const Mid& mid);         // s10-s12
  void on_fd_nty(can::NodeId r);             // s13-s16
  void on_rha_nty(RhaEvent e, can::NodeSet rhv);
  void cycle(bool timer_expired);            // s17-s27
  void on_rha_end(can::NodeSet rhv);         // s28-s34
  void msh_view_proc(can::NodeSet rw);       // a00-a02
  void msh_data_proc();                      // a03-a09
  void msh_chg_nty(can::NodeSet rw, can::NodeSet fw);  // a10-a18
  void restart_cycle_timer(sim::Time duration);
  void record_view_install();  // obs: kViewInstall + settle histogram

  /// Lazy trace helper: `make_text` runs only when tracing is enabled.
  template <typename MakeText>
  void trace(MakeText&& make_text) const {
    if (tracer_ != nullptr) {
      tracer_->emit(driver_.engine().now(), sim::TraceLevel::kInfo, "msh",
                    [&] {
                      return sim::cat_str("n", int{driver_.node()}, " ",
                                          make_text());
                    });
    }
  }

  CanDriver& driver_;
  sim::TimerService& timers_;
  RhaProtocol& rha_;
  FailureDetector& fd_;
  FdaProtocol& fda_;
  const Params& params_;
  const sim::Tracer* tracer_;
  obs::Recorder* recorder_;
  obs::Counter* ctr_view_changes_{nullptr};
  obs::Histogram* hist_settle_{nullptr};
  ChangeHandler change_;
  ViewObserver view_obs_;

  can::NodeSet rf_;   // full members (the view)
  can::NodeSet rj_;   // joining
  can::NodeSet rjp_;  // auxiliary joining set (footnote 10: 2-cycle prune)
  can::NodeSet rl_;   // leaving
  can::NodeSet ff_;   // failed during the current cycle
  sim::TimerId tid_{sim::kNullTimer};
  bool started_{false};   // service running at this node (join was called)
  bool in_cycle_{false};  // re-entrancy guard (rha INIT during cycle())
  std::uint64_t views_{0};
  /// Cycles elapsed since a join/leave request first went pending; sampled
  /// into msh.settle_cycles at the view install that absorbs it (-1: idle).
  int pending_cycles_{-1};
};

}  // namespace canely
