#pragma once
// canely::Node — the public facade of the CANELy stack.
//
// One Node owns a complete per-node protocol stack wired together the way
// Figure 5 of the paper draws it:
//
//     upper layer  (join/leave/view, membership-change notifications)
//        |  msh-can.req / msh-can.nty
//     MembershipService  --  RhaProtocol (reception history agreement)
//        |  fd-can.nty            |
//     FailureDetector  --  FdaProtocol (failure detection agreement)
//        |  can-*.req / .cnf / .ind / .nty
//     CanDriver (CAN standard layer + extension, Fig. 4)
//        |
//     can::Controller  ->  can::Bus
//
// plus a periodic traffic generator, because CANELy's failure detection
// leans on *implicit* heartbeats: any data frame a node transmits renews
// its life-sign, so cyclic control traffic with a period below Th costs
// zero extra bandwidth for failure detection (§6.3).

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "canely/driver.hpp"
#include "canely/failure_detector.hpp"
#include "canely/fda.hpp"
#include "canely/group.hpp"
#include "canely/membership.hpp"
#include "canely/mid.hpp"
#include "canely/params.hpp"
#include "canely/rha.hpp"
#include "obs/recorder.hpp"
#include "sim/timer.hpp"

namespace canely {

/// A CANELy node: CAN controller + driver + protocol suite + traffic.
class Node {
 public:
  /// Handler for application messages: sender, stream id, payload, and
  /// whether this is the node's own transmission looping back.
  using AppHandler = std::function<void(can::NodeId from, std::uint8_t stream,
                                        std::span<const std::uint8_t> data,
                                        bool own)>;

  Node(can::Bus& bus, can::NodeId id, const Params& params,
       const sim::Tracer* tracer = nullptr, obs::Recorder* recorder = nullptr);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] can::NodeId id() const { return controller_.node(); }

  // -- membership -----------------------------------------------------------

  /// Request integration into the set of active sites.
  void join();

  /// Request withdrawal from the site membership view.
  void leave();

  /// Current site membership view (msh-can.req GET).
  [[nodiscard]] can::NodeSet view() const { return msh_.view(); }
  [[nodiscard]] bool is_member() const { return msh_.is_member(); }

  /// Membership change notifications (msh-can.nty): active set + failed set.
  void on_membership_change(MembershipService::ChangeHandler handler) {
    site_change_ = std::move(handler);
  }

  // -- process groups (extension; see canely/group.hpp) -----------------------

  /// Announce the local process joining/leaving a process group.
  void join_group(GroupId group) { groups_.join_group(group); }
  void leave_group(GroupId group) { groups_.leave_group(group); }

  /// Current process-group view: announced members that are live sites.
  [[nodiscard]] can::NodeSet group_view(GroupId group) const {
    return groups_.group_view(group);
  }

  void on_group_change(GroupMembership::GroupChangeHandler handler) {
    groups_.set_change_handler(std::move(handler));
  }

  // -- application traffic ----------------------------------------------------

  /// Broadcast an application message on `stream` (0..255).  Doubles as an
  /// implicit life-sign.
  void send(std::uint8_t stream, std::span<const std::uint8_t> data);

  /// Receive application messages (own transmissions included).
  void on_message(AppHandler handler) { app_ = std::move(handler); }

  /// Start transmitting `payload` on `stream` every `period` — the cyclic
  /// traffic pattern typical of CAN control applications [20].
  void start_periodic(std::uint8_t stream, sim::Time period,
                      std::vector<std::uint8_t> payload);
  void stop_periodic(std::uint8_t stream);

  // -- failure semantics --------------------------------------------------------

  /// Fail-silent crash of the whole node (process + controller), §4:
  /// "when a process crashes, the whole node crashes".
  void crash();

  /// Schedule a crash at an absolute simulated time.
  void crash_at(sim::Time when);

  [[nodiscard]] bool crashed() const { return crashed_; }

  // -- diagnostics ------------------------------------------------------------

  /// Per-node protocol counters, aggregated across the stack.
  struct Stats {
    std::uint64_t els_sent{};          ///< explicit life-signs broadcast
    std::uint64_t failures_signalled{};///< fda-can.nty deliveries
    std::uint64_t rha_executions{};    ///< completed RHA rounds
    std::uint64_t views_installed{};   ///< membership views adopted
  };
  [[nodiscard]] Stats stats() const {
    return Stats{fd_.els_sent(), fda_.ntys_delivered(), rha_.executions(),
                 msh_.views_installed()};
  }

  // -- component access (tests, benchmarks, examples) -------------------------

  [[nodiscard]] CanDriver& driver() { return driver_; }
  [[nodiscard]] can::Controller& controller() { return controller_; }
  [[nodiscard]] FdaProtocol& fda() { return fda_; }
  [[nodiscard]] RhaProtocol& rha() { return rha_; }
  [[nodiscard]] FailureDetector& fd() { return fd_; }
  [[nodiscard]] MembershipService& membership() { return msh_; }
  [[nodiscard]] GroupMembership& groups() { return groups_; }
  [[nodiscard]] sim::TimerService& timers() { return timers_; }

  /// Canonical whole-node state for the checker's equivalence dedup:
  /// controller + every protocol component + the periodic traffic
  /// streams.  See node.cpp for the feed order and exclusions.
  void hash_state(sim::StateHasher& h) const;

 private:
  void periodic_tick(std::uint8_t stream);
  void emit_lifecycle(obs::EventKind kind);

  sim::Engine& engine_;
  Params params_;
  obs::Recorder* recorder_;
  can::Controller controller_;
  CanDriver driver_;
  sim::TimerService timers_;
  FdaProtocol fda_;
  RhaProtocol rha_;
  FailureDetector fd_;
  MembershipService msh_;
  GroupMembership groups_;
  MembershipService::ChangeHandler site_change_;
  AppHandler app_;

  struct PeriodicStream {
    bool active{false};
    sim::Time period{};
    std::vector<std::uint8_t> payload;
    sim::TimerId timer{sim::kNullTimer};
  };
  std::array<PeriodicStream, 256> periodic_{};
  bool crashed_{false};
};

}  // namespace canely
