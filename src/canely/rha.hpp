#pragma once
// Reception History Agreement micro-protocol (paper §6.2, Figure 7).
//
// RHA drives all correct nodes to agree on a *reception history vector*
// (RHV) — the bitmap of nodes to be included in the next membership view —
// despite inconsistent omissions having left the shared join/leave sets
// (R_J, R_L) inconsistent across nodes.  Mechanics:
//
//  * every participant broadcasts its candidate RHV (a data frame whose
//    mid carries #RHV, the vector's cardinality — Fig. 7 footnote);
//  * on receiving a vector that removes nodes from the local candidate,
//    a participant aborts its pending signal, intersects, and re-sends
//    (lines r04-r07) — convergence is monotonic (vectors only shrink);
//  * once more than j copies of the current value have been observed on
//    the wire, further own retransmissions are aborted (line r08): with
//    at most j inconsistent omissions per interval (LCAN4), j+1 copies
//    guarantee every correct node received the value at least once;
//  * a local timer (Trha) bounds termination; at expiry the converged
//    vector is delivered upward (lines r14-r18).
//
// Nodes outside the membership view participate too: they must adopt the
// first received vector as their initial value (line a05) and relay it —
// this is how joining nodes learn the view.

#include <cstdint>
#include <functional>
#include <map>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "canely/params.hpp"
#include "obs/recorder.hpp"
#include "sim/hash.hpp"
#include "sim/timer.hpp"

namespace canely {

enum class RhaEvent : std::uint8_t {
  kInit,  ///< an RHA execution started at this node (Fig. 7, a08)
  kEnd,   ///< execution finished; the agreed vector accompanies (r15)
};

/// One instance per node.
class RhaProtocol {
 public:
  /// The shared variables of Fig. 7 line i03/i04, owned by the membership
  /// service: full members R_F, joining R_J, leaving R_L.
  struct SharedSets {
    can::NodeSet full;
    can::NodeSet joining;
    can::NodeSet leaving;
  };
  using SharedSetsProvider = std::function<SharedSets()>;
  using NtyHandler = std::function<void(RhaEvent, can::NodeSet)>;

  RhaProtocol(CanDriver& driver, sim::TimerService& timers,
              const Params& params, const sim::Tracer* tracer = nullptr,
              obs::Recorder* recorder = nullptr);
  RhaProtocol(const RhaProtocol&) = delete;
  RhaProtocol& operator=(const RhaProtocol&) = delete;

  void set_shared_sets_provider(SharedSetsProvider provider) {
    shared_ = std::move(provider);
  }
  void set_nty_handler(NtyHandler handler) { nty_ = std::move(handler); }

  /// Secondary notification slot for external observers (checkers,
  /// benchmarks).  Called with the same events as the nty handler, after
  /// it; does not displace the membership service's wiring.
  void set_observer(NtyHandler observer) { obs_ = std::move(observer); }

  /// rha-can.req — start an execution (Fig. 7, s00-s04).  Acts only at
  /// full members and only when no execution is in progress.
  void rha_can_req();

  [[nodiscard]] bool running() const { return tid_ != sim::kNullTimer; }
  [[nodiscard]] can::NodeSet current_rhv() const { return rhv_; }

  /// Completed executions at this node (diagnostics).
  [[nodiscard]] std::uint64_t executions() const { return executions_; }

  /// True while an own RHV signal is queued but not yet on the wire
  /// (can-data.cnf pending).  Diagnostics/tests: a confirmed signal must
  /// clear this, or a later abort could target a newer frame whose mid
  /// collides with the transmitted one.
  [[nodiscard]] bool pending() const { return have_pending_; }

  /// Canonical protocol state for the checker's equivalence dedup:
  /// termination-timer deadline, current vector, per-value duplicate
  /// counters (ordered map — deterministic iteration), and the pending
  /// own-signal bookkeeping.  executions_ is excluded (diagnostic);
  /// last_sent_mid_ is fed only while a signal is pending — it is the
  /// abort target and dead state otherwise.
  void hash_state(sim::StateHasher& h) const {
    h.feed_time(timers_.deadline(tid_));
    h.feed(rhv_.bits());
    h.feed(rhv_ndup_.size());
    for (const auto& [value, count] : rhv_ndup_) {
      h.feed(value);
      h.feed(static_cast<std::uint64_t>(count));
    }
    h.feed_bool(have_pending_);
    if (have_pending_) {
      h.feed(static_cast<std::uint64_t>(last_sent_mid_.encode()));
    }
  }

 private:
  void rha_init_send(can::NodeSet rw);                         // a00-a09
  void on_data_ind(const Mid& mid, std::span<const std::uint8_t> payload);
  void on_alarm();                                             // r14-r18
  void send_rhv();       // can-data.req(mid{RHA,#RHV,p}, RHV)
  void abort_pending();  // can-abort.req of the last queued signal

  CanDriver& driver_;
  sim::TimerService& timers_;
  const Params& params_;
  const sim::Tracer* tracer_;
  obs::Recorder* recorder_;
  obs::Counter* ctr_executions_{nullptr};
  SharedSetsProvider shared_;
  NtyHandler nty_;
  NtyHandler obs_;

  sim::TimerId tid_{sim::kNullTimer};  // i01
  can::NodeSet rhv_;                   // i02: R_RHV
  /// rhv_ndup of line i00 — copies observed per vector value.  The paper
  /// keys this by mid{RHA, #RHV}; we key by the vector value itself, which
  /// is strictly finer (two distinct concurrent vectors of equal
  /// cardinality no longer share a counter) and equal in the common case.
  /// Ordered map: determinism-zone code holds only containers with a
  /// defined iteration order (canely-lint no-unordered-iter), and an RHA
  /// execution tracks a handful of concurrent vector values at most.
  std::map<std::uint64_t, int> rhv_ndup_;
  Mid last_sent_mid_{};  // target for can-abort.req (r05/r09)
  bool have_pending_{false};
  std::uint64_t executions_{0};
};

}  // namespace canely
