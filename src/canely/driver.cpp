#include "canely/driver.hpp"

namespace canely {

CanDriver::CanDriver(can::Controller& controller, sim::Engine& engine,
                     const sim::Tracer* tracer)
    : controller_{controller}, engine_{engine}, tracer_{tracer} {
  controller_.set_client(this);
}

void CanDriver::can_data_req(const Mid& mid,
                             std::span<const std::uint8_t> data) {
  trace("data.req", mid);
  controller_.request_tx(
      can::Frame::make_data(mid.encode(), data, can::IdFormat::kExtended));
}

void CanDriver::can_rtr_req(const Mid& mid) {
  trace("rtr.req", mid);
  controller_.request_tx(
      can::Frame::make_remote(mid.encode(), 0, can::IdFormat::kExtended));
}

std::size_t CanDriver::can_abort_req(const Mid& mid) {
  trace("abort.req", mid);
  const std::uint32_t id = mid.encode();
  return controller_.abort_matching([id](const can::Frame& f) {
    return f.format == can::IdFormat::kExtended && f.id == id;
  });
}

void CanDriver::on_data_ind(MsgType type, DataIndHandler handler) {
  data_ind_[slot(type)] = std::move(handler);
}

void CanDriver::on_rtr_ind(MsgType type, RtrIndHandler handler) {
  rtr_ind_[slot(type)] = std::move(handler);
}

void CanDriver::on_data_cnf(MsgType type, CnfHandler handler) {
  data_cnf_[slot(type)] = std::move(handler);
}

void CanDriver::on_rtr_cnf(MsgType type, CnfHandler handler) {
  rtr_cnf_[slot(type)] = std::move(handler);
}

void CanDriver::on_data_nty(DataNtyHandler handler) {
  data_nty_.push_back(std::move(handler));
}

void CanDriver::on_rx(const can::Frame& frame, bool own) {
  const auto mid = Mid::decode(frame);
  if (!mid.has_value()) return;  // non-CANELy traffic
  if (frame.remote) {
    trace(own ? "rtr.ind(own)" : "rtr.ind", *mid);
    if (auto& h = rtr_ind_[slot(mid->type)]; h) h(*mid, own);
  } else {
    // The .nty extension fires for every data frame, before the data
    // indication, own transmissions included (§5, §6.3).
    trace(own ? "data.nty(own)" : "data.nty", *mid);
    for (auto& h : data_nty_) h(*mid);
    if (auto& h = data_ind_[slot(mid->type)]; h) h(*mid, frame.payload(), own);
  }
}

void CanDriver::on_tx_confirm(const can::Frame& frame) {
  const auto mid = Mid::decode(frame);
  if (!mid.has_value()) return;
  trace(frame.remote ? "rtr.cnf" : "data.cnf", *mid);
  if (frame.remote) {
    if (auto& h = rtr_cnf_[slot(mid->type)]; h) h(*mid);
  } else {
    if (auto& h = data_cnf_[slot(mid->type)]; h) h(*mid);
  }
}

void CanDriver::on_bus_off() {
  if (bus_off_) bus_off_();
}

void CanDriver::trace(const char* what, const Mid& mid) const {
  if (tracer_ != nullptr) {
    tracer_->emit(engine_.now(), sim::TraceLevel::kDebug, "drv", [&] {
      return sim::cat_str("n", int{controller_.node()}, " ", what, " ",
                          to_string(mid.type), " ref=", int{mid.ref},
                          " node=", int{mid.node});
    });
  }
}

}  // namespace canely
