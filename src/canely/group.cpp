#include "canely/group.hpp"

namespace canely {

GroupMembership::GroupMembership(CanDriver& driver, MembershipService& site)
    : driver_{driver}, site_{site} {
  driver_.on_rtr_ind(MsgType::kGroupJoin,
                     [this](const Mid& mid, bool /*own*/) {
                       on_announce(mid, /*joining=*/true);
                     });
  driver_.on_rtr_ind(MsgType::kGroupLeave,
                     [this](const Mid& mid, bool /*own*/) {
                       on_announce(mid, /*joining=*/false);
                     });
}

void GroupMembership::join_group(GroupId group) {
  if (!site_.is_member()) return;  // group service rides on site membership
  driver_.can_rtr_req(Mid{MsgType::kGroupJoin, group, driver_.node()});
}

void GroupMembership::leave_group(GroupId group) {
  driver_.can_rtr_req(Mid{MsgType::kGroupLeave, group, driver_.node()});
}

void GroupMembership::on_announce(const Mid& mid, bool joining) {
  const GroupId group = mid.ref;
  can::NodeSet& members = announced_[group];
  const can::NodeSet before = members.intersected(site_.view());
  if (joining) {
    members.insert(mid.node);
  } else {
    members.erase(mid.node);
  }
  if (members.intersected(site_.view()) != before) notify(group);
}

void GroupMembership::on_site_change(can::NodeSet active,
                                     can::NodeSet /*failed*/) {
  // A site change may shrink (failure/leave) or grow (rejoin) any group
  // view; notify every group whose effective view changed.
  for (int g = 0; g < 256; ++g) {
    const can::NodeSet& members = announced_[static_cast<GroupId>(g)];
    if (members.empty()) continue;
    // The effective view uses the *current* site view; report groups that
    // intersect the delta.
    if (!members.intersected(active).empty() ||
        !members.minus(active).empty()) {
      notify(static_cast<GroupId>(g));
    }
  }
}

void GroupMembership::notify(GroupId group) {
  if (on_change_) on_change_(group, group_view(group));
}

}  // namespace canely
