#pragma once
// Process group membership on top of the site membership service.
//
// The paper motivates site membership as "a crucial assistant for process
// group membership management" (§6): once every node agrees on which
// *sites* are alive, per-group membership reduces to disseminating
// join/leave announcements reliably and reacting to site failures — no
// extra agreement rounds are needed, because
//
//   group view = (announced members)  ∩  (site membership view)
//
// and both operands converge at all correct nodes: the site view through
// RHA/FDA, the announcements through the CAN LLC guarantees (LCAN1/LCAN2:
// a correct announcer's frame reaches every correct node, retransmitted
// as long as the announcer stays correct) plus idempotent per-node
// insert/erase updates — an announcer that crashes mid-announcement is
// removed from the intersection by the site view anyway.
//
// This layer demonstrates the composition the paper gestures at; it is an
// extension beyond the paper's evaluated scope (documented in DESIGN.md).

#include <array>
#include <cstdint>
#include <functional>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "canely/membership.hpp"
#include "canely/mid.hpp"
#include "sim/hash.hpp"

namespace canely {

/// Identifier of a process group (0..255).
using GroupId = std::uint8_t;

/// Process-group membership endpoint (one per node; a node hosts one
/// process per group in this model — §4: process and node crash together).
class GroupMembership {
 public:
  /// Group view change: group, members now in the group (and alive).
  using GroupChangeHandler =
      std::function<void(GroupId group, can::NodeSet members)>;

  GroupMembership(CanDriver& driver, MembershipService& site);
  GroupMembership(const GroupMembership&) = delete;
  GroupMembership& operator=(const GroupMembership&) = delete;

  /// Announce that the local process enters `group`.  Requires site
  /// membership (the announcement rides on the site-level guarantees).
  void join_group(GroupId group);

  /// Announce that the local process leaves `group`.
  void leave_group(GroupId group);

  /// Current view of `group`: announced members that are live sites.
  [[nodiscard]] can::NodeSet group_view(GroupId group) const {
    return announced_[group].intersected(site_.view());
  }

  [[nodiscard]] bool in_group(GroupId group) const {
    return group_view(group).contains(driver_.node());
  }

  void set_change_handler(GroupChangeHandler handler) {
    on_change_ = std::move(handler);
  }

  /// Must be invoked from the owner's site membership-change handler (the
  /// Node facade wires this) so that site failures cascade into group
  /// views.
  void on_site_change(can::NodeSet active, can::NodeSet failed);

  /// Canonical state for the checker's equivalence dedup: the non-empty
  /// announcement sets, index-framed (the count feed keeps a sparse table
  /// from aliasing with a different sparse table of equal total bits).
  void hash_state(sim::StateHasher& h) const {
    std::uint64_t populated = 0;
    for (const can::NodeSet& set : announced_) {
      if (!set.empty()) ++populated;
    }
    h.feed(populated);
    for (std::size_t g = 0; g < announced_.size(); ++g) {
      if (announced_[g].empty()) continue;
      h.feed(g);
      h.feed(announced_[g].bits());
    }
  }

 private:
  void on_announce(const Mid& mid, bool joining);
  void notify(GroupId group);

  CanDriver& driver_;
  MembershipService& site_;
  GroupChangeHandler on_change_;
  /// Who has announced membership of each group (gated by the site view
  /// on read).
  std::array<can::NodeSet, 256> announced_{};
};

}  // namespace canely
