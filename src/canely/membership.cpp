#include "canely/membership.hpp"

namespace canely {

MembershipService::MembershipService(CanDriver& driver,
                                     sim::TimerService& timers,
                                     RhaProtocol& rha, FailureDetector& fd,
                                     FdaProtocol& fda, const Params& params,
                                     const sim::Tracer* tracer,
                                     obs::Recorder* recorder)
    : driver_{driver}, timers_{timers}, rha_{rha}, fd_{fd}, fda_{fda},
      params_{params}, tracer_{tracer}, recorder_{recorder} {
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& m = recorder_->metrics();
    ctr_view_changes_ = &m.counter("msh.view_changes");
    hist_settle_ = &m.histogram("msh.settle_cycles", {1, 2, 3, 4, 6, 8, 12, 16});
  }
  driver_.on_rtr_ind(MsgType::kJoin, [this](const Mid& mid, bool /*own*/) {
    on_join_ind(mid);
  });
  driver_.on_rtr_ind(MsgType::kLeave, [this](const Mid& mid, bool /*own*/) {
    on_leave_ind(mid);
  });
  fd_.set_nty_handler([this](can::NodeId r) { on_fd_nty(r); });
  rha_.set_shared_sets_provider([this] {
    return RhaProtocol::SharedSets{rf_, rj_, rl_};
  });
  rha_.set_nty_handler([this](RhaEvent e, can::NodeSet rhv) {
    on_rha_nty(e, rhv);
  });
}

void MembershipService::msh_can_req_join() {
  // s00-s03: only non-members ask to join.  The joiner arms a long timer
  // (Tjoin_wait >> Tm): if no full member manifests itself through an RHA
  // execution within it, the joiner will bootstrap a view from the join
  // requests it has observed (s18-s19).
  if (rf_.contains(driver_.node())) return;
  // Start from fresh protocol data sets (Fig. 9, i01): requests observed
  // while the service was not running belong to cycles this node never
  // took part in — replaying them (e.g. a leave from seconds ago) would
  // wrongly expel current members.
  rj_.clear();
  rjp_.clear();
  rl_.clear();
  ff_.clear();
  started_ = true;
  restart_cycle_timer(params_.join_wait);  // s01
  driver_.can_rtr_req(Mid{MsgType::kJoin, 0, driver_.node()});  // s02
  // Deviation (documented): record the local request immediately rather
  // than waiting for the own can-rtr.ind.  On a bus with no other live
  // node a frame is never acknowledged, so the indication never comes and
  // a singleton could not bootstrap a view at all (s18-s19).
  rj_.insert(driver_.node());
}

void MembershipService::msh_can_req_leave() {
  // s07-s09: only members ask to leave.
  if (!rf_.contains(driver_.node())) return;
  // Deviation (documented): a singleton member cannot run the leave
  // handshake.  With no other live node the LEAVE remote frame is never
  // acknowledged (perpetual kAckError), so it never loops back as
  // can-rtr.ind, R_L stays empty, and the cycle timer retransmits the
  // frame forever — the node can never depart.  Retire the service
  // locally instead; anyone joining later finds a silent bus and
  // bootstraps afresh (s18-s19).
  if (rf_.minus(can::NodeSet{driver_.node()}).empty() && rj_.empty()) {
    for (can::NodeId s : rf_) fd_.fd_can_req_stop(s);
    timers_.cancel_alarm(tid_);
    tid_ = sim::kNullTimer;
    started_ = false;
    rf_.clear();
    rl_.clear();
    rjp_.clear();
    ff_.clear();
    ++views_;
    record_view_install();
    trace([] { return "singleton leave: no peer can acknowledge; retiring "
                      "locally"; });
    if (view_obs_) view_obs_(rf_);
    if (change_) change_(can::NodeSet{}, can::NodeSet{driver_.node()});
    return;
  }
  driver_.can_rtr_req(Mid{MsgType::kLeave, 0, driver_.node()});  // s08
}

void MembershipService::on_join_ind(const Mid& mid) {
  if (!started_) return;  // only service participants collect requests
  rj_.insert(mid.node);   // s05
  trace([&] {
    return sim::cat_str("join request from ", int{mid.node}, " rj=", rj_);
  });
}

void MembershipService::on_leave_ind(const Mid& mid) {
  if (!started_) return;
  rl_.insert(mid.node);  // s11
}

void MembershipService::on_fd_nty(can::NodeId r) {
  if (!started_) return;
  // s13-s16: immediate (consistent) notification of a node crash; the
  // view itself is amended at the next cycle (msh-view-proc).
  ff_.insert(r);
  trace([&] {
    return sim::cat_str("node ", int{r}, " failed; active=", rf_.minus(ff_));
  });
  msh_chg_nty(rf_.minus(ff_), can::NodeSet{r});  // s15
}

void MembershipService::on_rha_nty(RhaEvent e, can::NodeSet rhv) {
  if (!started_) return;  // node is not running the membership service
  if (e == RhaEvent::kInit) {
    cycle(/*timer_expired=*/false);  // s17
  } else {
    on_rha_end(rhv);  // s28
  }
}

void MembershipService::restart_cycle_timer(sim::Time duration) {
  timers_.cancel_alarm(tid_);
  tid_ = timers_.start_alarm(duration, [this] {
    tid_ = sim::kNullTimer;
    cycle(/*timer_expired=*/true);  // s17, alarm branch
  });
}

void MembershipService::cycle(bool timer_expired) {
  if (in_cycle_) return;  // rha INIT raised by our own rha_can_req below
  in_cycle_ = true;

  if (timer_expired && !rf_.contains(driver_.node())) {
    if (rf_.empty()) {
      // s18-s19: the timer ran out at a non-integrated node that knows of
      // no live full member — bootstrap a (temporary) view from the join
      // requests observed so far.
      rf_ = rj_;
      trace([&] { return sim::cat_str("bootstrap view from joins: ", rf_); });
    } else {
      // Deviation (documented): the node has *learned* a view through RHA
      // (full members are alive) but its own join has not succeeded —
      // e.g. the JOIN was pruned after two cycles (footnote 10).
      // Bootstrapping here would inject a bogus tiny RHV and collapse the
      // members' view through the intersection rule; re-announce instead.
      trace([] { return "join retry: full members exist, re-announcing"; });
      driver_.can_rtr_req(Mid{MsgType::kJoin, 0, driver_.node()});
      rj_.insert(driver_.node());
    }
  }

  // s21.  Deviation (documented in DESIGN.md): at a node outside the view
  // the period is stretched by Ttd so that a cycle started by full members
  // — whose RHV frame needs up to Ttd to arrive — always reaches the
  // joiner before its own timer can misfire into the bootstrap path.
  const sim::Time period = rf_.contains(driver_.node())
                               ? params_.membership_cycle
                               : params_.membership_cycle +
                                     params_.tx_delay_bound;
  restart_cycle_timer(period);

  if (!rj_.empty() || !rl_.empty()) {
    // obs: a join/leave request is pending — count the cycles it takes
    // until a view install absorbs it (msh.settle_cycles).
    if (pending_cycles_ < 0) pending_cycles_ = 0;
    ++pending_cycles_;
  }
  if (!rj_.empty() || !rl_.empty() || !params_.skip_idle_cycles) {
    rha_.rha_can_req();  // s22-s23
  } else {
    msh_view_proc(rf_);  // s25: no changes pending; just fold failures in
  }
  in_cycle_ = false;
}

void MembershipService::record_view_install() {
  if (recorder_ == nullptr) return;
  obs::Event ev;
  ev.when = driver_.engine().now();
  ev.kind = obs::EventKind::kViewInstall;
  ev.node = driver_.node();
  ev.u.view = {rf_.bits()};
  recorder_->emit(ev);
  ctr_view_changes_->add_node(driver_.node());
  if (pending_cycles_ > 0) hist_settle_->add(pending_cycles_);
  pending_cycles_ = -1;
}

void MembershipService::on_rha_end(can::NodeSet rhv) {
  const can::NodeSet old_view = rf_;
  msh_view_proc(rhv);  // s29
  if (!rj_.intersected(rf_).empty() || !rl_.minus(rf_).empty()) {
    msh_chg_nty(rf_, can::NodeSet{});  // s30-s32: join/leave took effect
  } else if (rf_ != old_view && rf_.contains(driver_.node())) {
    // Safety net beyond the pseudo-code: any other view alteration (e.g.
    // a node expelled through a failure folded in by msh-view-proc) is
    // also worth notifying.
    msh_chg_nty(rf_, can::NodeSet{});
  }
  msh_data_proc();  // s33
}

void MembershipService::msh_view_proc(can::NodeSet rw) {
  // a00-a02: install the new view, discounting failures detected during
  // the cycle.
  const can::NodeSet before = rf_;
  rf_ = rw.minus(ff_);
  ff_.clear();
  if (rf_ != before) {
    ++views_;
    record_view_install();
    trace([&] { return sim::cat_str("view installed: ", rf_); });
    if (view_obs_) view_obs_(rf_);
  }
  // Deviation (documented): a node that drops out of the view while alive
  // stops its surveillance duties; if it was not leaving voluntarily (it
  // was expelled by a false suspicion) it also stops cycling and tells the
  // upper layer, which may re-join.  The paper leaves this housekeeping
  // implicit ("some details have been omitted for simplicity").
  if (before.contains(driver_.node()) && !rf_.contains(driver_.node())) {
    for (can::NodeId s : before) fd_.fd_can_req_stop(s);
    if (!rl_.contains(driver_.node())) {
      timers_.cancel_alarm(tid_);
      tid_ = sim::kNullTimer;
      started_ = false;
      if (change_) change_(rf_, can::NodeSet{});
    }
  }
}

void MembershipService::msh_data_proc() {
  // a03-a09.
  const can::NodeSet admitted = rj_.intersected(rf_);
  for (can::NodeId s : admitted) {
    fda_.reset(s);            // forget any stale failure-sign of a rejoiner
    fd_.fd_can_req_start(s);  // a04-a05
  }
  if (admitted.contains(driver_.node())) {
    // The join is satisfied; withdraw the request frame if it is still
    // queued.  A node that bootstrapped on a previously-silent bus
    // (s18-s19) got in through the locally-recorded request — its JOIN
    // frame was never acknowledged and would otherwise retry forever.
    driver_.can_abort_req(Mid{MsgType::kJoin, 0, driver_.node()});
    // The local node just became a member: begin surveillance of every
    // member, not only fellow joiners.  (The paper omits this detail "for
    // simplicity of exposition"; without it a joiner would monitor nobody.)
    for (can::NodeId s : rf_) fd_.fd_can_req_start(s);
  }
  // a06 with the footnote-10 semantics: a join request not satisfied
  // within two membership cycles is discarded (the requester suffered an
  // inconsistent failure).  Fresh leftovers get one retry cycle.
  const can::NodeSet leftover = rj_.minus(rf_);
  rj_ = leftover.minus(rjp_);
  rjp_ = leftover;

  const can::NodeSet departed = rl_.minus(rf_);
  for (can::NodeId s : departed) {
    fd_.fd_can_req_stop(s);  // a07-a08
  }
  rl_ = rl_.intersected(rf_);  // a09
}

void MembershipService::msh_chg_nty(can::NodeSet rw, can::NodeSet fw) {
  // a10-a18.
  if (rf_.contains(driver_.node())) {
    if (change_) change_(rw, fw);  // a11-a12: full members
  } else if (rl_.contains(driver_.node())) {
    // a13-a16: the local node's leave completed — final notification,
    // stop cycling; the node departs the service.
    timers_.cancel_alarm(tid_);
    tid_ = sim::kNullTimer;
    started_ = false;
    if (change_) change_(rf_, can::NodeSet{driver_.node()});
  }
  // Joining nodes not yet admitted receive no notification (a10-a18).
}

}  // namespace canely
