#pragma once
// The CANELy message control field ("mid", paper §5): every frame's
// identifier encodes a message *type*, an optional *reference number* and
// the *node identifier* of the sender (or subject).
//
// Encoding: 29-bit extended CAN identifier, laid out MSB-first as
//     [ type : 5 ][ ref : 8 ][ node : 6 ]   (19 bits, upper bits zero)
// so that message type dominates bus priority, then the reference
// number, then the node id — protocol traffic outranks application
// traffic, and FDA failure-signs outrank everything.
//
// Two properties the protocols rely on:
//  * FDA failure-signs for the same failed node map to the *same*
//    identifier at every sender, so simultaneous copies cluster into one
//    physical frame on the wired-AND bus (§6.2);
//  * RHA signals carry #RHV (the cardinality of the vector) in `ref`
//    (Fig. 7), so each narrowing of the vector changes the identifier.

#include <cstdint>
#include <optional>
#include <ostream>

#include "can/frame.hpp"
#include "can/types.hpp"

namespace canely {

/// Message type reference; enumerator value doubles as bus priority
/// (lower = wins arbitration).
enum class MsgType : std::uint8_t {
  kFda = 0x01,       ///< failure-sign (FDA micro-protocol), remote frame
  kEls = 0x02,       ///< explicit life-sign, remote frame
  kJoin = 0x03,      ///< membership join request, remote frame
  kLeave = 0x04,     ///< membership leave request, remote frame
  kRha = 0x05,       ///< RHV signal (RHA micro-protocol), data frame
  kSync = 0x06,      ///< clock sync: synchronizer's SYNC frame
  kSyncAdj = 0x07,   ///< clock sync: adjustment (timestamp) frame
  kEdcan = 0x08,     ///< EDCAN eager-diffusion broadcast
  kRelcanData = 0x09,    ///< RELCAN data frame
  kRelcanConfirm = 0x0A, ///< RELCAN confirmation
  kTotcanData = 0x0B,    ///< TOTCAN data frame
  kTotcanAccept = 0x0C,  ///< TOTCAN accept frame
  kGroupJoin = 0x0D,     ///< process-group join announcement (ref = group)
  kGroupLeave = 0x0E,    ///< process-group leave announcement (ref = group)
  kApp = 0x10,       ///< application data (ref = stream id)
};

/// The decoded message control field.
struct Mid {
  MsgType type{MsgType::kApp};
  std::uint8_t ref{0};
  can::NodeId node{0};

  /// Pack into a 29-bit extended identifier.
  [[nodiscard]] constexpr std::uint32_t encode() const {
    return (static_cast<std::uint32_t>(type) << 14) |
           (static_cast<std::uint32_t>(ref) << 6) |
           (static_cast<std::uint32_t>(node) & 0x3F);
  }

  /// Decode from a frame identifier; nullopt for non-CANELy frames
  /// (base-format identifiers).
  [[nodiscard]] static constexpr std::optional<Mid> decode(const can::Frame& f) {
    if (f.format != can::IdFormat::kExtended) return std::nullopt;
    Mid m;
    m.type = static_cast<MsgType>((f.id >> 14) & 0x1F);
    m.ref = static_cast<std::uint8_t>((f.id >> 6) & 0xFF);
    m.node = static_cast<can::NodeId>(f.id & 0x3F);
    return m;
  }

  friend constexpr bool operator==(const Mid&, const Mid&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Mid& m) {
    return os << "mid{" << static_cast<int>(m.type) << ","
              << static_cast<int>(m.ref) << "," << static_cast<int>(m.node)
              << "}";
  }
};

[[nodiscard]] constexpr const char* to_string(MsgType t) {
  switch (t) {
    case MsgType::kFda: return "FDA";
    case MsgType::kEls: return "ELS";
    case MsgType::kJoin: return "JOIN";
    case MsgType::kLeave: return "LEAVE";
    case MsgType::kRha: return "RHA";
    case MsgType::kSync: return "SYNC";
    case MsgType::kSyncAdj: return "SYNC-ADJ";
    case MsgType::kEdcan: return "EDCAN";
    case MsgType::kRelcanData: return "RELCAN";
    case MsgType::kRelcanConfirm: return "RELCAN-CNF";
    case MsgType::kTotcanData: return "TOTCAN";
    case MsgType::kTotcanAccept: return "TOTCAN-ACC";
    case MsgType::kGroupJoin: return "GRP-JOIN";
    case MsgType::kGroupLeave: return "GRP-LEAVE";
    case MsgType::kApp: return "APP";
  }
  return "?";
}

}  // namespace canely
