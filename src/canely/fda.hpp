#pragma once
// Failure Detection Agreement micro-protocol (paper §6.2, Figure 6).
//
// FDA secures the *reliable broadcast of a failure-sign*: once any correct
// node delivers `fda-can.nty(r)`, every correct node eventually does —
// even if the original failure-sign suffered an inconsistent omission and
// its sender crashed.  It is a simplified, optimized Eager Diffusion
// (EDCAN [18]): every recipient of the first copy re-requests transmission
// of the *identical* remote frame, and the wired-AND bus clusters all the
// simultaneous copies into (typically) one physical frame, so the
// fault-free cost is just two frames regardless of n.

#include <array>
#include <functional>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "obs/recorder.hpp"
#include "sim/hash.hpp"

namespace canely {

/// One instance per node.  Wire-in happens in the constructor; upper
/// layers invoke `fda_can_req` and subscribe to `fda-can.nty`.
class FdaProtocol {
 public:
  using NtyHandler = std::function<void(can::NodeId failed)>;

  explicit FdaProtocol(CanDriver& driver, const sim::Tracer* tracer = nullptr,
                       obs::Recorder* recorder = nullptr);
  FdaProtocol(const FdaProtocol&) = delete;
  FdaProtocol& operator=(const FdaProtocol&) = delete;

  /// fda-can.req — invoke the protocol for failed node `r`
  /// (Fig. 6, lines s00-s05).
  void fda_can_req(can::NodeId failed);

  /// fda-can.nty — delivered exactly once per failure-sign per node
  /// (Fig. 6, line r03).
  void set_nty_handler(NtyHandler handler) { nty_ = std::move(handler); }

  /// Passive observation of fda-can.nty deliveries, invoked alongside the
  /// handler.  The failure detector owns the handler slot; diagnostics and
  /// the checker (src/check) subscribe here without displacing it.
  void set_nty_observer(NtyHandler observer) { nty_obs_ = std::move(observer); }

  /// Ablation switch: with agreement disabled the recipient rule delivers
  /// but never echoes (Fig. 6 lines r04-r06 skipped) — "naive signalling".
  /// A failure-sign lost to an inconsistent omission whose sender crashes
  /// then stays lost at the victims; src/check uses this to demonstrate
  /// the resulting membership split.  Normal deployments leave it on.
  void set_agreement(bool enabled) { agreement_ = enabled; }
  [[nodiscard]] bool agreement() const { return agreement_; }

  /// Forget a previously agreed failure-sign so a reintegrated node can be
  /// detected again.  The paper assumes a removed node does not attempt
  /// reintegration before a period much longer than Tm (§6.4); the
  /// membership layer calls this when the node rejoins.
  void reset(can::NodeId node);

  /// Counters exposed for tests (Fig. 6 state).
  [[nodiscard]] int fs_ndup(can::NodeId r) const { return fs_ndup_[r]; }
  [[nodiscard]] int fs_nreq(can::NodeId r) const { return fs_nreq_[r]; }

  /// Failure-signs delivered upward at this node (diagnostics).
  [[nodiscard]] std::uint64_t ntys_delivered() const { return ntys_; }

  /// Canonical protocol state for the checker's equivalence dedup: the
  /// per-mid duplicate/request counters of Fig. 6.  ntys_ is excluded
  /// (diagnostic count); agreement_ is excluded (immutable scenario
  /// configuration, identical across all placements of one exploration).
  void hash_state(sim::StateHasher& h) const {
    for (std::size_t r = 0; r < can::kMaxNodes; ++r) {
      h.feed(static_cast<std::uint64_t>(fs_ndup_[r]));
      h.feed(static_cast<std::uint64_t>(fs_nreq_[r]));
    }
  }

 private:
  void on_rtr_ind(const Mid& mid);  // lines r00-r09

  CanDriver& driver_;
  const sim::Tracer* tracer_;
  obs::Recorder* recorder_;
  obs::Counter* ctr_rounds_{nullptr};
  obs::Counter* ctr_ntys_{nullptr};
  NtyHandler nty_;
  NtyHandler nty_obs_;
  bool agreement_{true};
  // Per-mid state; the FDA mid is fully determined by the failed node id.
  std::array<int, can::kMaxNodes> fs_ndup_{};  // failure-sign duplicates (i00)
  std::array<int, can::kMaxNodes> fs_nreq_{};  // transmit requests (i01)
  std::uint64_t ntys_{0};
};

}  // namespace canely
