#pragma once
// Node failure detection protocol (paper §6.3, Figure 8).
//
// One surveillance timer per monitored node.  Node activity is signalled
// *implicitly* by normal data traffic — the driver's can-data.nty
// extension reports every data-frame arrival, own transmissions included —
// so explicit life-sign (ELS) remote frames are issued only by nodes whose
// own timer expires first, i.e. nodes that transmitted nothing for a whole
// heartbeat period Th.  A remote node silent for Th + Ttd is declared
// failed, and the FDA micro-protocol disseminates the failure-sign
// consistently to every correct node.

#include <array>
#include <functional>

#include "can/types.hpp"
#include "canely/driver.hpp"
#include "canely/fda.hpp"
#include "canely/params.hpp"
#include "obs/recorder.hpp"
#include "sim/hash.hpp"
#include "sim/timer.hpp"

namespace canely {

/// One instance per node.
class FailureDetector {
 public:
  using NtyHandler = std::function<void(can::NodeId failed)>;

  FailureDetector(CanDriver& driver, sim::TimerService& timers,
                  FdaProtocol& fda, const Params& params,
                  const sim::Tracer* tracer = nullptr,
                  obs::Recorder* recorder = nullptr);
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// fd-can.req(START, r) — begin surveillance of node `r` (lines f00-f02).
  /// For the local node the timer runs for Th (it drives ELS emission);
  /// for remote nodes it runs for Th + Ttd (line a04).
  void fd_can_req_start(can::NodeId r);

  /// fd-can.req(STOP, r) — end surveillance (lines f17-f19).
  void fd_can_req_stop(can::NodeId r);

  /// fd-can.nty — consistent node-failure notification (line f15).
  void set_nty_handler(NtyHandler handler) { nty_ = std::move(handler); }

  [[nodiscard]] bool monitoring(can::NodeId r) const { return monitored_[r]; }

  /// Count of explicit life-signs this node has broadcast (diagnostics —
  /// the bandwidth evaluation of Fig. 10 cares about this number).
  [[nodiscard]] std::uint64_t els_sent() const { return els_sent_; }

  /// Canonical surveillance state for the checker's equivalence dedup:
  /// per-node monitored flag + alarm deadline.  Raw timer ids are
  /// allocation-order handles and deliberately not fed; the deadline is
  /// Time::max() for inactive alarms, so activeness is covered.
  /// els_sent_ / els_credit_ are excluded — pure diagnostics feeding obs
  /// counters, never read back by the protocol.
  void hash_state(sim::StateHasher& h) const {
    for (std::size_t r = 0; r < can::kMaxNodes; ++r) {
      h.feed_bool(monitored_[r]);
      h.feed_time(timers_.deadline(tid_[r]));
    }
  }

 private:
  void fd_alarm_start(can::NodeId r);            // a00-a06
  void on_activity(can::NodeId r, bool implicit);  // f03-f05
  void on_expiry(can::NodeId r);                 // f06-f12
  void on_fda_nty(can::NodeId r);                // f13-f16

  CanDriver& driver_;
  sim::TimerService& timers_;
  FdaProtocol& fda_;
  const Params& params_;
  const sim::Tracer* tracer_;
  obs::Recorder* recorder_;
  obs::Counter* ctr_els_sent_{nullptr};
  obs::Counter* ctr_els_suppressed_{nullptr};
  obs::Counter* ctr_heartbeat_implicit_{nullptr};
  obs::Counter* ctr_suspicions_{nullptr};
  NtyHandler nty_;
  std::array<sim::TimerId, can::kMaxNodes> tid_{};   // i00
  std::array<bool, can::kMaxNodes> monitored_{};
  std::uint64_t els_sent_{0};
  /// Start of the current explicit-life-sign accounting window (obs:
  /// els.suppressed credits one avoided ELS per Th of implicit coverage).
  sim::Time els_credit_{};
};

}  // namespace canely
