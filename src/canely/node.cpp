#include "canely/node.hpp"

namespace canely {

Node::Node(can::Bus& bus, can::NodeId id, const Params& params,
           const sim::Tracer* tracer, obs::Recorder* recorder)
    : engine_{bus.engine()},
      params_{params},
      recorder_{recorder},
      controller_{id, bus},
      driver_{controller_, engine_, tracer},
      timers_{engine_},
      fda_{driver_, tracer, recorder},
      rha_{driver_, timers_, params_, tracer, recorder},
      fd_{driver_, timers_, fda_, params_, tracer, recorder},
      msh_{driver_, timers_, rha_, fd_, fda_, params_, tracer, recorder},
      groups_{driver_, msh_} {
  controller_.set_recorder(recorder);
  fda_.set_agreement(params_.fda_agreement);
  // Site membership changes fan out to the process-group layer first,
  // then to the application handler.
  msh_.set_change_handler([this](can::NodeSet active, can::NodeSet failed) {
    groups_.on_site_change(active, failed);
    if (site_change_) site_change_(active, failed);
  });
  driver_.on_data_ind(MsgType::kApp,
                      [this](const Mid& mid,
                             std::span<const std::uint8_t> data, bool own) {
                        if (app_) app_(mid.node, mid.ref, data, own);
                      });
}

void Node::emit_lifecycle(obs::EventKind kind) {
  if (recorder_ == nullptr) return;
  obs::Event ev;
  ev.when = engine_.now();
  ev.kind = kind;
  ev.node = id();
  ev.u.view = {msh_.view().bits()};
  recorder_->emit(ev);
}

void Node::join() {
  emit_lifecycle(obs::EventKind::kNodeJoin);
  msh_.msh_can_req_join();
}

void Node::leave() {
  emit_lifecycle(obs::EventKind::kNodeLeave);
  msh_.msh_can_req_leave();
}

void Node::send(std::uint8_t stream, std::span<const std::uint8_t> data) {
  if (crashed_) return;
  driver_.can_data_req(Mid{MsgType::kApp, stream, id()}, data);
}

void Node::start_periodic(std::uint8_t stream, sim::Time period,
                          std::vector<std::uint8_t> payload) {
  PeriodicStream& s = periodic_[stream];
  timers_.cancel_alarm(s.timer);
  s.active = true;
  s.period = period;
  s.payload = std::move(payload);
  s.timer = timers_.start_alarm(period, [this, stream] {
    periodic_tick(stream);
  });
}

void Node::stop_periodic(std::uint8_t stream) {
  PeriodicStream& s = periodic_[stream];
  s.active = false;
  timers_.cancel_alarm(s.timer);
  s.timer = sim::kNullTimer;
}

void Node::periodic_tick(std::uint8_t stream) {
  PeriodicStream& s = periodic_[stream];
  if (!s.active || crashed_) return;
  send(stream, s.payload);
  s.timer = timers_.start_alarm(s.period, [this, stream] {
    periodic_tick(stream);
  });
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  emit_lifecycle(obs::EventKind::kNodeCrash);
  controller_.crash();
  timers_.cancel_all();  // every protocol timer and traffic stream dies
}

void Node::crash_at(sim::Time when) {
  engine_.schedule_at(when, [this] { crash(); });
}

void Node::hash_state(sim::StateHasher& h) const {
  // Fixed feed order: liveness, controller, then the stack bottom-up
  // (fd, fda, rha, msh, groups), then the periodic traffic streams.
  // Exclusions beyond what each component documents: crash_at() events
  // (never used by the checked harness — it crashes nodes synchronously
  // from the bus observer) and the tracer/recorder wiring (pure
  // observation).
  h.feed_bool(crashed_);
  controller_.hash_state(h);
  fd_.hash_state(h);
  fda_.hash_state(h);
  rha_.hash_state(h);
  msh_.hash_state(h);
  groups_.hash_state(h);
  std::uint64_t active_streams = 0;
  for (const PeriodicStream& s : periodic_) {
    if (s.active) ++active_streams;
  }
  h.feed(active_streams);
  for (std::size_t i = 0; i < periodic_.size(); ++i) {
    const PeriodicStream& s = periodic_[i];
    if (!s.active) continue;
    h.feed(i);
    h.feed_time(s.period);
    h.feed(s.payload.size());
    h.feed_bytes(s.payload);
    h.feed_time(timers_.deadline(s.timer));
  }
}

}  // namespace canely
