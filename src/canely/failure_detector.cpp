#include "canely/failure_detector.hpp"

namespace canely {

FailureDetector::FailureDetector(CanDriver& driver, sim::TimerService& timers,
                                 FdaProtocol& fda, const Params& params,
                                 const sim::Tracer* tracer,
                                 obs::Recorder* recorder)
    : driver_{driver}, timers_{timers}, fda_{fda}, params_{params},
      tracer_{tracer}, recorder_{recorder} {
  if (recorder_ != nullptr) {
    obs::MetricsRegistry& m = recorder_->metrics();
    ctr_els_sent_ = &m.counter("els.frames_sent");
    ctr_els_suppressed_ = &m.counter("els.suppressed");
    ctr_heartbeat_implicit_ = &m.counter("heartbeat.implicit");
    ctr_suspicions_ = &m.counter("fd.suspicions");
  }
  // f03: any data frame (own included) is implicit node activity; the
  // sender is identified by the node field of the mid.
  driver_.on_data_nty([this](const Mid& mid) { on_activity(mid.node, true); });
  // f03: explicit life-signs arrive as ELS remote frames.
  driver_.on_rtr_ind(MsgType::kEls, [this](const Mid& mid, bool /*own*/) {
    on_activity(mid.node, false);
  });
  // f13: FDA delivers agreed failure-signs.
  fda_.set_nty_handler([this](can::NodeId r) { on_fda_nty(r); });
}

void FailureDetector::fd_can_req_start(can::NodeId r) {
  monitored_[r] = true;
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.when = driver_.engine().now();
    ev.kind = obs::EventKind::kFdTimerArm;
    ev.node = driver_.node();
    ev.u.peer = {r};
    recorder_->emit(ev);
    if (r == driver_.node()) els_credit_ = driver_.engine().now();
  }
  fd_alarm_start(r);  // f00-f01
}

void FailureDetector::fd_can_req_stop(can::NodeId r) {
  monitored_[r] = false;
  timers_.cancel_alarm(tid_[r]);  // f17-f18
  tid_[r] = sim::kNullTimer;
  if (r == driver_.node()) {
    // Withdraw a still-pending explicit life-sign: a node whose self-
    // surveillance stops (it left, or was expelled) must not leave an
    // ELS behind — on a bus with no other live node the frame would
    // never be acknowledged and would retry forever.
    driver_.can_abort_req(Mid{MsgType::kEls, 0, r});
  }
}

void FailureDetector::fd_alarm_start(can::NodeId r) {
  timers_.cancel_alarm(tid_[r]);  // restart semantics (f04)
  const sim::Time duration =
      (r == driver_.node())
          ? params_.heartbeat_period                              // a02
          : params_.heartbeat_period + params_.tx_delay_bound +   // a04
                params_.fd_skew_quantum * driver_.node();         // osc. skew
  tid_[r] = timers_.start_alarm(duration, [this, r] {
    tid_[r] = sim::kNullTimer;
    on_expiry(r);
  });
}

void FailureDetector::on_activity(can::NodeId r, bool implicit) {
  // f03-f05: restart the surveillance timer of an actively monitored node.
  // (Activity of nodes the service was not started for is ignored —
  // starting/stopping surveillance is the upper layer's decision,
  // lines f00/f17.)
  if (!monitored_[r]) return;
  // Fig. 10 accounting, counted once system-wide at the originator's own
  // detector (every data frame loops back to its sender):
  // `heartbeat.implicit` is every data frame that doubled as a life-sign;
  // `els.suppressed` credits one avoided explicit life-sign per heartbeat
  // period Th covered by implicit traffic — what a CANopen-style
  // always-explicit heartbeat would have transmitted in the same span.
  if (implicit && r == driver_.node() && recorder_ != nullptr) {
    ctr_heartbeat_implicit_->add_node(r);
    const sim::Time now = driver_.engine().now();
    const std::int64_t periods = (now - els_credit_) / params_.heartbeat_period;
    if (periods >= 1) {
      ctr_els_suppressed_->add_node(r, static_cast<std::uint64_t>(periods));
      els_credit_ = now;
    }
  }
  fd_alarm_start(r);
}

void FailureDetector::on_expiry(can::NodeId r) {
  if (recorder_ != nullptr) {
    obs::Event ev;
    ev.when = driver_.engine().now();
    ev.kind = obs::EventKind::kFdTimerExpire;
    ev.node = driver_.node();
    ev.u.peer = {r};
    recorder_->emit(ev);
  }
  if (r == driver_.node()) {
    // f07-f08: the local node stayed silent for a whole heartbeat period;
    // broadcast an explicit life-sign.  The loopback can-rtr.ind normally
    // restarts the timer, but the ELS can die before reaching the wire
    // (bus-off clears the controller queue; an abort can race it), so the
    // timer is re-armed HERE, unconditionally: if the ELS never loops
    // back, the next expiry retries the life-sign instead of leaving the
    // node silent until its peers falsely suspect it.
    ++els_sent_;
    if (recorder_ != nullptr) {
      obs::Event ev;
      ev.when = driver_.engine().now();
      ev.kind = obs::EventKind::kElsSent;
      ev.node = driver_.node();
      ev.u.peer = {r};
      recorder_->emit(ev);
      ctr_els_sent_->add_node(r);
      els_credit_ = driver_.engine().now();
    }
    driver_.can_rtr_req(Mid{MsgType::kEls, 0, r});
    fd_alarm_start(r);
  } else {
    // f09-f10: remote node silent beyond Th + Ttd => it has failed;
    // disseminate consistently through FDA.
    if (tracer_ != nullptr) {
      tracer_->emit(driver_.engine().now(), sim::TraceLevel::kInfo, "fd", [&] {
        return sim::cat_str("n", int{driver_.node()}, " suspects node ",
                            int{r});
      });
    }
    if (recorder_ != nullptr) {
      obs::Event ev;
      ev.when = driver_.engine().now();
      ev.kind = obs::EventKind::kFdSuspect;
      ev.node = driver_.node();
      ev.u.peer = {r};
      recorder_->emit(ev);
      ctr_suspicions_->add_node(driver_.node());
    }
    fda_.fda_can_req(r);
  }
}

void FailureDetector::on_fda_nty(can::NodeId r) {
  // f13-f16: an agreed failure-sign arrived (possibly before our own timer
  // expired): stop surveillance and notify the membership layer.
  timers_.cancel_alarm(tid_[r]);
  tid_[r] = sim::kNullTimer;
  monitored_[r] = false;
  if (nty_) nty_(r);  // f15
}

}  // namespace canely
