#pragma once
// The CAN standard layer and its CANELy extension (paper §5, Figure 4).
//
// This is the *only* interface the protocol suite sees: the Figure 4
// primitive set —
//
//   can-data.req / can-data.cnf / can-data.ind / can-data.nty
//   can-rtr.req  / can-rtr.cnf  / can-rtr.ind
//   can-abort.req
//
// `.ind` signals frame arrivals *including own transmissions* (the paper
// notes some controllers need low-level engineering for this; our
// controller model provides it).  `.nty` is the CANELy extension: it
// signals the arrival of any data frame without delivering the data —
// just the message control field — and is what lets ordinary application
// traffic double as heartbeats (§6.3).

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "can/controller.hpp"
#include "can/frame.hpp"
#include "canely/mid.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace canely {

/// The CAN standard layer + extension of Figure 4, bound to one node's
/// controller.  Multiple protocol entities (FDA, RHA, FD, MSH, clock
/// sync, application) register per-message-type handlers; the driver
/// demultiplexes by the type field of the mid.
class CanDriver final : public can::ControllerClient {
 public:
  using DataIndHandler =
      std::function<void(const Mid&, std::span<const std::uint8_t>, bool own)>;
  using RtrIndHandler = std::function<void(const Mid&, bool own)>;
  using CnfHandler = std::function<void(const Mid&)>;
  using DataNtyHandler = std::function<void(const Mid&)>;

  CanDriver(can::Controller& controller, sim::Engine& engine,
            const sim::Tracer* tracer = nullptr);

  [[nodiscard]] can::NodeId node() const { return controller_.node(); }
  [[nodiscard]] can::Controller& controller() { return controller_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  // -- request primitives ---------------------------------------------------

  /// can-data.req — queue a data frame carrying `data` under `mid`.
  void can_data_req(const Mid& mid, std::span<const std::uint8_t> data);

  /// can-rtr.req — queue a remote frame.  Several nodes may request the
  /// same remote frame simultaneously; the bus clusters them (§6.2).
  void can_rtr_req(const Mid& mid);

  /// can-abort.req — abort pending transmit requests with exactly this
  /// mid; returns how many were dropped ("effect only on pending
  /// requests", Fig. 4).
  std::size_t can_abort_req(const Mid& mid);

  // -- handler registration ---------------------------------------------------

  /// can-data.ind for a given message type (payload delivered).
  void on_data_ind(MsgType type, DataIndHandler handler);

  /// can-rtr.ind for a given message type.
  void on_rtr_ind(MsgType type, RtrIndHandler handler);

  /// can-data.cnf / can-rtr.cnf for a given message type.
  void on_data_cnf(MsgType type, CnfHandler handler);
  void on_rtr_cnf(MsgType type, CnfHandler handler);

  /// can-data.nty — arrival of ANY data frame (own included), control
  /// field only.  More than one subscriber allowed (failure detector,
  /// diagnostics, ...).
  void on_data_nty(DataNtyHandler handler);

  // -- ControllerClient (bus-facing) ----------------------------------------
  void on_rx(const can::Frame& frame, bool own) override;
  void on_tx_confirm(const can::Frame& frame) override;
  void on_bus_off() override;

  /// Bus-off notification for diagnostics / node facade.
  void set_bus_off_handler(std::function<void()> handler) {
    bus_off_ = std::move(handler);
  }

 private:
  static constexpr std::size_t kTypeSlots = 32;
  static std::size_t slot(MsgType t) { return static_cast<std::size_t>(t) % kTypeSlots; }
  void trace(const char* what, const Mid& mid) const;

  can::Controller& controller_;
  sim::Engine& engine_;
  const sim::Tracer* tracer_;
  std::array<DataIndHandler, kTypeSlots> data_ind_{};
  std::array<RtrIndHandler, kTypeSlots> rtr_ind_{};
  std::array<CnfHandler, kTypeSlots> data_cnf_{};
  std::array<CnfHandler, kTypeSlots> rtr_cnf_{};
  std::vector<DataNtyHandler> data_nty_;
  std::function<void()> bus_off_;
};

}  // namespace canely
