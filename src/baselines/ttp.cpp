#include "baselines/ttp.hpp"

namespace canely::baselines {

TtpCluster::TtpCluster(sim::Engine& engine, TtpParams params)
    : engine_{engine}, params_{params},
      crashed_(params.n, false), view_(params.n) {
  for (auto& v : view_) v = can::NodeSet::first_n(params_.n);
}

void TtpCluster::start() {
  if (running_) return;
  running_ = true;
  engine_.schedule_after(params_.slot_time, [this] { run_slot(0); });
}

void TtpCluster::crash(can::NodeId node) { crashed_[node] = true; }

void TtpCluster::restart(can::NodeId node) {
  crashed_[node] = false;
  view_[node] = can::NodeSet{node};  // relearns by listening
}

void TtpCluster::run_slot(std::size_t slot) {
  if (!running_) return;
  const auto sender = static_cast<can::NodeId>(slot);
  const bool channel_ok = params_.channel_a_ok || params_.channel_b_ok;
  const bool heard = !crashed_[sender] && channel_ok &&
                     view_[sender].contains(sender);
  // End of slot: every live receiver updates its membership vector; the
  // sender itself keeps its own entry alive by transmitting.
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (crashed_[i] || i == slot) continue;
    const bool was_member = view_[i].contains(sender);
    if (heard) {
      view_[i].insert(sender);
    } else if (was_member) {
      view_[i].erase(sender);
      if (on_failure_) {
        on_failure_(static_cast<can::NodeId>(i), sender);
      }
    }
  }
  // The sender also observes the acknowledgment of its successors; a
  // silent (crashed) node simply stops updating its view.
  const std::size_t next = (slot + 1) % params_.n;
  if (next == 0) ++rounds_;
  engine_.schedule_after(params_.slot_time, [this, next] { run_slot(next); });
}

bool TtpCluster::views_consistent() const {
  bool first = true;
  can::NodeSet ref;
  for (std::size_t i = 0; i < params_.n; ++i) {
    if (crashed_[i]) continue;
    if (first) {
      ref = view_[i];
      first = false;
    } else if (view_[i] != ref) {
      return false;
    }
  }
  return true;
}

}  // namespace canely::baselines
