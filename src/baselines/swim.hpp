#pragma once
// SWIM failure detection and membership (Das, Gupta & Motivala, DSN
// 2002) on the net::Transport seam — the random-probing baseline of the
// membership shootout (DESIGN.md §13).
//
// Per protocol period each node probes one peer (randomized round-robin
// order, so expected detection time is O(1) periods and worst case one
// traversal): PING; on ack silence, PING-REQ through k proxies for an
// indirect probe; still silent by period end => SUSPECT.  Suspicion
// (Lifeguard-less, fixed timeout) gives the accused node time to refute
// with a higher incarnation before the verdict becomes CONFIRM (dead,
// final).  All membership updates travel as piggyback on the protocol's
// own ping/ack traffic — epidemic dissemination, each update forwarded
// O(lambda * log2 n) times — so SWIM's bandwidth is O(1) messages per
// node per period regardless of n, the property the shootout curves
// exhibit against all-to-all gossip.

#include <cstdint>
#include <vector>

#include "baselines/membership_baseline.hpp"
#include "sim/rng.hpp"

namespace canely::baselines {

struct SwimParams {
  sim::Time period{sim::Time::ms(200)};       ///< protocol period T'
  sim::Time ack_timeout{sim::Time::ms(50)};   ///< direct-probe RTT bound
  std::size_t ping_req_fanout{3};             ///< k indirect proxies
  std::size_t suspicion_periods{3};           ///< suspect -> confirm
  std::size_t piggyback_limit{8};             ///< updates per message
  double dissemination_lambda{3.0};           ///< resend factor (x log2 n)
};

class SwimCluster final : public MembershipBaseline {
 public:
  SwimCluster(Transport& net, std::size_t n, SwimParams params,
              std::uint64_t seed, obs::Recorder* recorder = nullptr);

  /// Arm every node's protocol period (staggered start phases).
  void start() override;

  /// Fail-stop crash: the node stops probing, acking and disseminating.
  void crash(NodeId node) override;

  [[nodiscard]] const SwimParams& params() const { return params_; }

 private:
  enum class Status : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

  /// A disseminating membership update: retransmitted `sends_left` more
  /// times as piggyback, highest-remaining first.
  struct Update {
    NodeId subject{0};
    Status status{Status::kAlive};
    std::uint32_t incarnation{0};
    std::uint32_t sends_left{0};
  };

  struct NodeState {
    sim::Rng rng{0};
    std::vector<Status> status;              // per peer
    std::vector<std::uint32_t> incarnation;  // per peer
    std::vector<sim::Time> suspect_since;    // valid while kSuspect
    std::vector<NodeId> probe_order;         // shuffled round-robin
    std::size_t probe_idx{0};
    std::vector<Update> updates;             // dissemination buffer
    std::uint32_t own_incarnation{0};
    std::uint32_t probe_seq{0};   // id of the in-flight probe round
    NodeId probe_target{0};
    bool ack_pending{false};      // a probe round is awaiting its ack
  };

  void tick(NodeId self);
  void on_message(NodeId self, const Message& msg);
  void apply_update(NodeId self, NodeId subject, Status status,
                    std::uint32_t incarnation);
  void queue_update(NodeId self, NodeId subject, Status status,
                    std::uint32_t incarnation);
  void send_with_piggyback(NodeId self, NodeId to, std::uint32_t kind,
                           std::vector<std::uint8_t> head);
  void confirm_dead(NodeId self, NodeId subject, std::uint32_t incarnation,
                    bool local_verdict);
  [[nodiscard]] NodeId next_probe_target(NodeState& st, NodeId self);
  [[nodiscard]] std::uint32_t dissemination_budget() const;

  SwimParams params_;
  std::vector<NodeState> nodes_;
};

}  // namespace canely::baselines
