#include "baselines/canopen.hpp"

namespace canely::baselines {

// ---------------------------------------------------------------- slave --

CanopenSlave::CanopenSlave(can::Bus& bus, can::NodeId id,
                           sim::TimerService& timers)
    : controller_{id, bus}, timers_{timers} {
  controller_.set_client(this);
}

void CanopenSlave::boot() {
  if (crashed_) return;
  state_ = NmtState::kBootUp;
  const std::uint8_t payload[] = {static_cast<std::uint8_t>(state_)};
  controller_.request_tx(can::Frame::make_data(
      kErrorControlBase + controller_.node(), payload));
  state_ = NmtState::kPreOperational;  // CiA-301: autonomous transition
}

void CanopenSlave::start_heartbeat(sim::Time producer_time) {
  producer_time_ = producer_time;
  heartbeat_tick();
}

void CanopenSlave::heartbeat_tick() {
  if (crashed_) return;
  const std::uint8_t payload[] = {static_cast<std::uint8_t>(state_)};
  controller_.request_tx(can::Frame::make_data(
      kErrorControlBase + controller_.node(), payload));
  timers_.start_alarm(producer_time_, [this] { heartbeat_tick(); });
}

void CanopenSlave::crash() {
  crashed_ = true;
  controller_.crash();
}

void CanopenSlave::on_rx(const can::Frame& frame, bool own) {
  if (crashed_ || own) return;
  // Guard poll: remote frame on our own error-control COB-ID.
  if (frame.remote && frame.id == kErrorControlBase + controller_.node()) {
    toggle_ = !toggle_;
    const std::uint8_t payload[] = {static_cast<std::uint8_t>(
        (toggle_ ? 0x80 : 0x00) | static_cast<std::uint8_t>(state_))};
    controller_.request_tx(can::Frame::make_data(
        kErrorControlBase + controller_.node(), payload));
    return;
  }
  // NMT module-control command: COB-ID 0, payload [cs, target].
  if (!frame.remote && frame.id == kNmtCommand && frame.dlc >= 2) {
    const auto target = static_cast<can::NodeId>(frame.data[1]);
    if (target != 0 && target != controller_.node()) return;
    switch (static_cast<NmtCommand>(frame.data[0])) {
      case NmtCommand::kStart:
        state_ = NmtState::kOperational;
        break;
      case NmtCommand::kStop:
        state_ = NmtState::kStopped;
        break;
      case NmtCommand::kEnterPreOperational:
        state_ = NmtState::kPreOperational;
        break;
      case NmtCommand::kResetNode:
        boot();
        break;
    }
  }
}

// ------------------------------------------------------------ NMT master --

CanopenNmtMaster::CanopenNmtMaster(can::Bus& bus, can::NodeId id)
    : controller_{id, bus} {
  controller_.set_client(this);
}

void CanopenNmtMaster::command(NmtCommand cmd, can::NodeId target) {
  const std::uint8_t payload[] = {static_cast<std::uint8_t>(cmd), target};
  controller_.request_tx(can::Frame::make_data(kNmtCommand, payload));
}

// --------------------------------------------------------------- master --

CanopenMaster::CanopenMaster(can::Bus& bus, can::NodeId id,
                             sim::TimerService& timers, sim::Time guard_time,
                             sim::Time response_timeout)
    : controller_{id, bus}, timers_{timers}, guard_time_{guard_time},
      response_timeout_{response_timeout} {
  controller_.set_client(this);
}

void CanopenMaster::start_guarding(const std::vector<can::NodeId>& slaves) {
  slaves_ = slaves;
  next_ = 0;
  poll_next();
}

void CanopenMaster::poll_next() {
  if (slaves_.empty()) return;
  const can::NodeId target = slaves_[next_];
  next_ = (next_ + 1) % slaves_.size();
  answered_[target] = false;
  controller_.request_tx(can::Frame::make_remote(
      kErrorControlBase + target, 1));
  timers_.start_alarm(response_timeout_, [this, target] {
    if (!answered_[target] && !declared_[target]) {
      declared_[target] = true;  // node guarding event (master-local!)
      if (on_failure_) on_failure_(target);
    }
  });
  // Next slave one guard interval later (cyclic inquiry).
  timers_.start_alarm(guard_time_, [this] { poll_next(); });
}

void CanopenMaster::on_rx(const can::Frame& frame, bool own) {
  if (own || frame.remote) return;
  if (frame.id >= kErrorControlBase &&
      frame.id < kErrorControlBase + can::kMaxNodes) {
    const auto node = static_cast<can::NodeId>(frame.id - kErrorControlBase);
    answered_[node] = true;
    declared_[node] = false;  // a reply rehabilitates the node
  }
}

// ------------------------------------------------------------- consumer --

HeartbeatConsumer::HeartbeatConsumer(can::Bus& bus, can::NodeId id,
                                     sim::TimerService& timers)
    : controller_{id, bus}, timers_{timers} {
  controller_.set_client(this);
}

void HeartbeatConsumer::watch(can::NodeId producer, sim::Time consumer_time) {
  consumer_time_[producer] = consumer_time;
  timers_.cancel_alarm(watch_[producer]);
  watch_[producer] = timers_.start_alarm(consumer_time, [this, producer] {
    watch_[producer] = sim::kNullTimer;
    if (on_failure_) on_failure_(producer);  // heartbeat event (local!)
  });
}

void HeartbeatConsumer::on_rx(const can::Frame& frame, bool own) {
  if (own || frame.remote) return;
  if (frame.id >= kErrorControlBase &&
      frame.id < kErrorControlBase + can::kMaxNodes) {
    const auto node = static_cast<can::NodeId>(frame.id - kErrorControlBase);
    if (consumer_time_[node] != sim::Time::zero() &&
        watch_[node] != sim::kNullTimer) {
      watch(node, consumer_time_[node]);  // re-arm
    }
  }
}

}  // namespace canely::baselines
