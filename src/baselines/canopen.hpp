#pragma once
// CANopen network management baselines (paper §6.6; CiA DS-301 / [1]).
//
// The industry-standard CAN Application Layer detects node failures with
// either of two schemes, both reproduced here over the same simulated bus
// as CANELy:
//
//  * Node guarding (master/slave): one NMT master cyclically polls each
//    slave with a remote frame (COB-ID 0x700 + node); the slave answers
//    with its state and a toggle bit.  A missing answer raises a *local*
//    node-guarding event at the master only.
//  * Heartbeat (producer/consumer): each producer broadcasts its state
//    every producer_time; each consumer monitors each producer with its
//    own consumer_time watchdog.  Detection is local and unsynchronized —
//    different consumers notice at different times, and nothing
//    reconciles their views.
//
// The paper's criticism — centralized nature, no fault-tolerant agreement
// on failures, no site membership — is exactly what the comparison
// benchmark measures: detection latency spread across observers and the
// bandwidth cost of the polling traffic.

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "sim/timer.hpp"

namespace canely::baselines {

/// CANopen COB-ID base for NMT error control (node guarding + heartbeat).
inline constexpr std::uint32_t kErrorControlBase = 0x700;
/// NMT command COB-ID (module control services).
inline constexpr std::uint32_t kNmtCommand = 0x000;

/// CiA-301 NMT slave states.
enum class NmtState : std::uint8_t {
  kBootUp = 0x00,
  kStopped = 0x04,
  kOperational = 0x05,
  kPreOperational = 0x7F,
};

/// NMT command specifiers (CiA-301 §7.2.8.2).
enum class NmtCommand : std::uint8_t {
  kStart = 0x01,
  kStop = 0x02,
  kEnterPreOperational = 0x80,
  kResetNode = 0x81,
};

/// NMT slave / heartbeat producer: boots into pre-operational, obeys NMT
/// module-control commands, answers guard polls, emits heartbeats with
/// its current state.
class CanopenSlave final : public can::ControllerClient {
 public:
  CanopenSlave(can::Bus& bus, can::NodeId id, sim::TimerService& timers);

  /// Emit the CiA-301 boot-up message (state 0x00 on the error-control
  /// COB-ID) and enter pre-operational.
  void boot();

  [[nodiscard]] NmtState state() const { return state_; }

  /// Enable heartbeat production every `producer_time`.
  void start_heartbeat(sim::Time producer_time);

  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] can::NodeId id() const { return controller_.node(); }
  [[nodiscard]] can::Controller& controller() { return controller_; }

  // ControllerClient
  void on_rx(const can::Frame& frame, bool own) override;
  void on_tx_confirm(const can::Frame&) override {}

 private:
  void heartbeat_tick();

  can::Controller controller_;
  sim::TimerService& timers_;
  bool toggle_{false};
  bool crashed_{false};
  NmtState state_{NmtState::kOperational};
  sim::Time producer_time_{sim::Time::zero()};
};

/// NMT master command sender (module control: start/stop/pre-op/reset).
class CanopenNmtMaster final : public can::ControllerClient {
 public:
  CanopenNmtMaster(can::Bus& bus, can::NodeId id);

  /// Send an NMT command to `target` (0 = all nodes).
  void command(NmtCommand cmd, can::NodeId target);

  [[nodiscard]] can::Controller& controller() { return controller_; }

  // ControllerClient
  void on_rx(const can::Frame&, bool) override {}
  void on_tx_confirm(const can::Frame&) override {}

 private:
  can::Controller controller_;
};

/// NMT master performing node guarding over a set of slaves.
class CanopenMaster final : public can::ControllerClient {
 public:
  /// `on_failure(node, when)` fires when a guarded slave misses its
  /// answer deadline (a *local* event — only the master learns).
  using FailureHandler = std::function<void(can::NodeId)>;

  CanopenMaster(can::Bus& bus, can::NodeId id, sim::TimerService& timers,
                sim::Time guard_time, sim::Time response_timeout);

  /// Begin cyclic guarding of `slaves`.
  void start_guarding(const std::vector<can::NodeId>& slaves);

  void set_failure_handler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }

  [[nodiscard]] can::Controller& controller() { return controller_; }

  // ControllerClient
  void on_rx(const can::Frame& frame, bool own) override;
  void on_tx_confirm(const can::Frame&) override {}

 private:
  void poll_next();

  can::Controller controller_;
  sim::TimerService& timers_;
  sim::Time guard_time_;
  sim::Time response_timeout_;
  FailureHandler on_failure_;
  std::vector<can::NodeId> slaves_;
  std::size_t next_{0};
  std::array<bool, can::kMaxNodes> answered_{};
  std::array<bool, can::kMaxNodes> declared_{};
};

/// Heartbeat consumer: watches producers, local timeouts only.
class HeartbeatConsumer final : public can::ControllerClient {
 public:
  using FailureHandler = std::function<void(can::NodeId)>;

  HeartbeatConsumer(can::Bus& bus, can::NodeId id, sim::TimerService& timers);

  /// Watch `producer` with the given consumer time (> its producer time).
  void watch(can::NodeId producer, sim::Time consumer_time);

  void set_failure_handler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }

  [[nodiscard]] can::Controller& controller() { return controller_; }

  // ControllerClient
  void on_rx(const can::Frame& frame, bool own) override;
  void on_tx_confirm(const can::Frame&) override {}

 private:
  can::Controller controller_;
  sim::TimerService& timers_;
  FailureHandler on_failure_;
  std::array<sim::TimerId, can::kMaxNodes> watch_{};
  std::array<sim::Time, can::kMaxNodes> consumer_time_{};
};

}  // namespace canely::baselines
