#pragma once
// OSEK/VDX direct Network Management baseline (paper §6.6; [13]).
//
// OSEK NM monitors nodes *distributedly* through a logical ring: the set
// of present nodes is ordered by address; each node, upon receiving the
// ring message addressed to it, forwards it to its logical successor
// after TTyp.  All nodes eavesdrop on the bus, so every NM message
// doubles as a liveness proof of its sender:
//
//  * a node that observes no NM traffic for TMax broadcasts an ALIVE
//    message (and eventually enters limphome);
//  * when the ring stalls because the token holder died, the previous
//    sender retries towards the *next* successor after TMax, and every
//    observer removes the dead node from its (transient) configuration.
//
// The paper's criticism: bandwidth is consumed permanently (one ring
// message every TTyp even when idle) and failure detection latency is
// high — the crash of a node is only noticed when the ring reaches it,
// i.e. up to n * TTyp + TMax; "for a reference value of TTyp = 100 ms,
// the period required to detect the failure of a node may be in the
// order of one second" (§6.6).

#include <array>
#include <cstdint>
#include <functional>

#include "can/bus.hpp"
#include "can/controller.hpp"
#include "can/types.hpp"
#include "sim/timer.hpp"

namespace canely::baselines {

/// COB-ID base of NM messages (0x500 + source address, per OSEK practice).
inline constexpr std::uint32_t kNmBase = 0x500;

struct OsekNmParams {
  sim::Time t_typ{sim::Time::ms(100)};  ///< ring forwarding delay
  sim::Time t_max{sim::Time::ms(260)};  ///< silence / stall tolerance
};

/// One OSEK NM endpoint.
class OsekNmNode final : public can::ControllerClient {
 public:
  /// Fires when this node removes `dead` from its configuration.
  using LeaveHandler = std::function<void(can::NodeId dead)>;

  OsekNmNode(can::Bus& bus, can::NodeId id, sim::TimerService& timers,
             OsekNmParams params);

  /// Join the network management (broadcast ALIVE, start timers).
  void start();

  void crash();
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// The node's current stable configuration (the OSEK "config").
  [[nodiscard]] can::NodeSet config() const { return config_; }
  [[nodiscard]] can::NodeId id() const { return controller_.node(); }

  /// True when the node is in the OSEK limp-home state: it has observed
  /// no NM traffic for several TMax periods and assumes it is cut off.
  [[nodiscard]] bool limp_home() const { return limp_home_; }

  void set_leave_handler(LeaveHandler handler) {
    on_leave_ = std::move(handler);
  }

  // ControllerClient
  void on_rx(const can::Frame& frame, bool own) override;
  void on_tx_confirm(const can::Frame&) override {}

 private:
  enum class OpCode : std::uint8_t { kAlive = 1, kRing = 2, kLimpHome = 3 };

  void send(OpCode op, can::NodeId dest);
  void forward_ring();
  void arm_tmax();
  void on_tmax();
  [[nodiscard]] can::NodeId successor_of(can::NodeId node) const;

  can::Controller controller_;
  sim::TimerService& timers_;
  OsekNmParams params_;
  LeaveHandler on_leave_;
  can::NodeSet config_;
  can::NodeId awaited_{0};      ///< node expected to act next in the ring
  bool awaiting_{false};
  bool crashed_{false};
  bool started_{false};
  bool limp_home_{false};
  int silent_tmax_{0};
  sim::TimerId tmax_timer_{sim::kNullTimer};
  sim::TimerId ttyp_timer_{sim::kNullTimer};
};

}  // namespace canely::baselines
