#pragma once
// Rapid-style stable membership via multi-observer cut detection
// (Suresh et al., "Stable and Consistent Membership at Scale with
// Rapid", USENIX ATC 2018) on the net::Transport seam — the
// view-stability baseline of the membership shootout (DESIGN.md §13).
//
// The expander-graph monitoring topology is modelled as K independent
// ring permutations: in ring r, each node is observed by its
// predecessor, so every node has K observers and observes K subjects.
// Observers that miss `miss_threshold` consecutive heartbeats broadcast
// an ALERT(ring, subject); hearing the subject again before the cut
// retracts it.  Every node tallies alerts per subject as a ring
// bitmask and applies the almost-everywhere agreement rule:
//
//   * tally >= H            -> subject is in the proposed cut
//   * L < tally < H         -> unstable: delay, more reports coming
//   * proposal non-empty, nothing unstable, tallies quiet for `settle`
//                           -> install the WHOLE proposal as ONE view
//                              change (the multi-node batch that keeps
//                              Rapid's view count low under correlated
//                              failure)
//
// H is lowered per subject by the number of its observers that are
// themselves in the proposal (a dead observer can never report), so
// correlated crashes that take out observers still converge.

#include <cstdint>
#include <vector>

#include "baselines/membership_baseline.hpp"
#include "sim/rng.hpp"

namespace canely::baselines {

struct RapidParams {
  std::size_t rings{8};             ///< K observers per subject (<= 32)
  sim::Time period{sim::Time::ms(200)};  ///< heartbeat interval
  std::size_t miss_threshold{3};    ///< silent periods before ALERT
  std::size_t high_watermark{6};    ///< H: tally that joins the proposal
  std::size_t low_watermark{2};     ///< L: below = noise, above = unstable
  sim::Time settle{sim::Time::ms(400)};  ///< quiet time before the cut
};

class RapidCluster final : public MembershipBaseline {
 public:
  RapidCluster(Transport& net, std::size_t n, RapidParams params,
               std::uint64_t seed, obs::Recorder* recorder = nullptr);

  /// Arm every node's heartbeat/observation period (staggered phases).
  void start() override;

  /// Fail-stop crash: stops heartbeating, observing and tallying.
  void crash(NodeId node) override;

  [[nodiscard]] const RapidParams& params() const { return params_; }

  /// Cut batches installed by `node` so far (each is one view change
  /// covering >= 1 subjects — the stability metric's denominator).
  [[nodiscard]] std::uint64_t cuts_installed(NodeId node) const {
    return nodes_[node].cuts;
  }

 private:
  struct Watch {              // one (ring, subject) observation duty
    std::uint32_t ring{0};
    NodeId subject{0};
    sim::Time last_heard{sim::Time::zero()};
    bool alerted{false};
  };

  struct NodeState {
    sim::Rng rng{0};
    std::vector<Watch> watches;          // the K subjects this node observes
    std::vector<std::uint32_t> tally;    // per subject: ring bitmask of alerts
    std::vector<bool> dead;              // locally cut subjects (final)
    sim::Time last_tally_change{sim::Time::zero()};
    std::uint64_t cuts{0};
  };

  void tick(NodeId self);
  void on_message(NodeId self, const Message& msg);
  void apply_alert(NodeId self, NodeId subject, std::uint32_t ring, bool raise);
  void maybe_cut(NodeId self);
  [[nodiscard]] std::size_t high_watermark_for(const NodeState& st,
                                               NodeId subject) const;

  RapidParams params_;
  std::vector<NodeState> nodes_;
  /// observers_[r][s] = the node observing subject s in ring r.
  std::vector<std::vector<NodeId>> observers_;
};

}  // namespace canely::baselines
