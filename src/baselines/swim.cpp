#include "baselines/swim.hpp"

#include <algorithm>
#include <bit>

namespace canely::baselines {
namespace {

constexpr std::uint32_t kPing = 1;     // head: [seq u32]
constexpr std::uint32_t kAck = 2;      // head: [seq u32]
constexpr std::uint32_t kPingReq = 3;  // head: [seq u32][target u32]
constexpr std::uint32_t kPingFwd = 4;  // head: [seq u32][origin u32]

constexpr std::size_t kUpdateBytes = 9;  // subject u32, status u8, inc u32

}  // namespace

SwimCluster::SwimCluster(Transport& net, std::size_t n, SwimParams params,
                         std::uint64_t seed, obs::Recorder* recorder)
    : MembershipBaseline{net, n, recorder}, params_{params}, nodes_(n) {
  sim::Rng master{seed};
  for (NodeId self = 0; self < n; ++self) {
    NodeState& st = nodes_[self];
    st.rng = master.fork();
    st.status.assign(n, Status::kAlive);
    st.incarnation.assign(n, 0);
    st.suspect_since.assign(n, sim::Time::zero());
    st.probe_order.reserve(n - 1);
    for (NodeId peer = 0; peer < n; ++peer) {
      if (peer != self) st.probe_order.push_back(peer);
    }
    // Initial shuffle; re-shuffled after every full traversal (the
    // SWIM paper's randomized round-robin: worst-case detection is one
    // traversal, expected is O(1) periods).
    for (std::size_t i = st.probe_order.size(); i > 1; --i) {
      std::swap(st.probe_order[i - 1],
                st.probe_order[static_cast<std::size_t>(st.rng.below(i))]);
    }
    net_.attach(self, [this, self](const Message& m) { on_message(self, m); });
  }
}

std::uint32_t SwimCluster::dissemination_budget() const {
  const auto log2n =
      static_cast<double>(std::bit_width(nodes_.size()));  // ceil log2(n+1)
  const double b = params_.dissemination_lambda * log2n;
  return b < 1.0 ? 1 : static_cast<std::uint32_t>(b + 0.999999);
}

void SwimCluster::start() {
  for (NodeId self = 0; self < nodes_.size(); ++self) {
    // Random start phase: real deployments' periods are unsynchronized,
    // and lockstep probing would make every node suspect simultaneously.
    const auto phase = sim::Time::ns(static_cast<std::int64_t>(
        nodes_[self].rng.below(
            static_cast<std::uint64_t>(params_.period.to_ns()))));
    net_.engine().schedule_after(phase, [this, self] { tick(self); });
  }
}

void SwimCluster::crash(NodeId node) { note_crash(node); }

NodeId SwimCluster::next_probe_target(NodeState& st, NodeId self) {
  for (std::size_t tries = 0; tries < st.probe_order.size(); ++tries) {
    if (st.probe_idx >= st.probe_order.size()) {
      st.probe_idx = 0;
      for (std::size_t i = st.probe_order.size(); i > 1; --i) {
        std::swap(st.probe_order[i - 1],
                  st.probe_order[static_cast<std::size_t>(st.rng.below(i))]);
      }
    }
    const NodeId t = st.probe_order[st.probe_idx++];
    if (st.status[t] != Status::kDead) return t;
  }
  return self;  // nobody left to probe
}

void SwimCluster::tick(NodeId self) {
  if (crashed_[self]) return;
  NodeState& st = nodes_[self];

  // Verdict of the previous period's probe: total silence => suspect.
  if (st.ack_pending) {
    st.ack_pending = false;
    apply_update(self, st.probe_target, Status::kSuspect,
                 st.incarnation[st.probe_target]);
  }

  // Suspicion timeouts: suspect -> confirmed dead (final).
  const sim::Time deadline =
      params_.period * static_cast<std::int64_t>(params_.suspicion_periods);
  for (NodeId p = 0; p < st.status.size(); ++p) {
    if (st.status[p] == Status::kSuspect &&
        net_.engine().now() - st.suspect_since[p] >= deadline) {
      confirm_dead(self, p, st.incarnation[p], /*local_verdict=*/true);
    }
  }

  // Probe the next round-robin target.
  const NodeId target = next_probe_target(st, self);
  if (target != self) {
    const std::uint32_t seq = ++st.probe_seq;
    st.probe_target = target;
    st.ack_pending = true;
    std::vector<std::uint8_t> head;
    put_u32(head, seq);
    send_with_piggyback(self, target, kPing, std::move(head));
    net_.engine().schedule_after(params_.ack_timeout, [this, self, seq] {
      if (crashed_[self]) return;
      NodeState& s2 = nodes_[self];
      if (!s2.ack_pending || s2.probe_seq != seq) return;
      // Direct probe silent: ask k proxies for an indirect probe.
      std::vector<NodeId> candidates;
      for (NodeId p = 0; p < s2.status.size(); ++p) {
        if (p != self && p != s2.probe_target &&
            s2.status[p] == Status::kAlive) {
          candidates.push_back(p);
        }
      }
      const std::size_t k =
          std::min(params_.ping_req_fanout, candidates.size());
      for (std::size_t i = 0; i < k; ++i) {
        const std::size_t pick =
            i + static_cast<std::size_t>(
                    s2.rng.below(candidates.size() - i));
        std::swap(candidates[i], candidates[pick]);
        std::vector<std::uint8_t> h;
        put_u32(h, seq);
        put_u32(h, s2.probe_target);
        send_with_piggyback(self, candidates[i], kPingReq, std::move(h));
      }
    });
  }

  net_.engine().schedule_after(params_.period, [this, self] { tick(self); });
}

void SwimCluster::on_message(NodeId self, const Message& msg) {
  if (crashed_[self]) return;
  NodeState& st = nodes_[self];
  const std::vector<std::uint8_t>& b = msg.bytes;

  std::size_t head_len = 4;                        // [seq]
  if (msg.kind == kPingReq || msg.kind == kPingFwd) head_len = 8;
  if (b.size() < head_len + 1) return;

  // Piggybacked updates first: they may refute a suspicion the head's
  // handling would otherwise act on.
  const std::size_t count = b[head_len];
  std::size_t at = head_len + 1;
  for (std::size_t i = 0; i < count && at + kUpdateBytes <= b.size();
       ++i, at += kUpdateBytes) {
    const NodeId subject = get_u32(b, at);
    const auto status = static_cast<Status>(b[at + 4]);
    const std::uint32_t inc = get_u32(b, at + 5);
    if (subject < st.status.size()) {
      apply_update(self, subject, status, inc);
    }
  }

  const std::uint32_t seq = get_u32(b, 0);
  switch (msg.kind) {
    case kPing: {
      std::vector<std::uint8_t> head;
      put_u32(head, seq);
      send_with_piggyback(self, msg.from, kAck, std::move(head));
      break;
    }
    case kPingReq: {  // we are the proxy: forward the probe
      const NodeId target = get_u32(b, 4);
      if (target >= st.status.size()) break;
      std::vector<std::uint8_t> head;
      put_u32(head, seq);
      put_u32(head, msg.from);  // origin: the target acks it directly
      send_with_piggyback(self, target, kPingFwd, std::move(head));
      break;
    }
    case kPingFwd: {  // we are the probed target of an indirect probe
      const NodeId origin = get_u32(b, 4);
      if (origin >= st.status.size()) break;
      std::vector<std::uint8_t> head;
      put_u32(head, seq);
      send_with_piggyback(self, origin, kAck, std::move(head));
      break;
    }
    case kAck: {
      if (st.ack_pending && st.probe_seq == seq) {
        st.ack_pending = false;
        // Firsthand liveness: clear any local suspicion of the target
        // (dissemination-level refutation still needs the incarnation
        // bump, which the suspect update delivers to the target itself).
        if (st.status[st.probe_target] == Status::kSuspect) {
          st.status[st.probe_target] = Status::kAlive;
        }
      }
      break;
    }
    default:
      break;
  }
}

void SwimCluster::apply_update(NodeId self, NodeId subject, Status status,
                               std::uint32_t incarnation) {
  NodeState& st = nodes_[self];
  if (subject == self) {
    // Someone suspects (or worse, buried) us: refute with a higher
    // incarnation.  A node cannot refute its own confirmed death — by
    // then the cluster has moved on, exactly as SWIM specifies.
    if (status == Status::kSuspect && incarnation >= st.own_incarnation) {
      st.own_incarnation = incarnation + 1;
      queue_update(self, self, Status::kAlive, st.own_incarnation);
    }
    return;
  }
  if (st.status[subject] == Status::kDead) return;  // dead is final

  switch (status) {
    case Status::kAlive:
      if (incarnation > st.incarnation[subject]) {
        st.incarnation[subject] = incarnation;
        st.status[subject] = Status::kAlive;
        queue_update(self, subject, Status::kAlive, incarnation);
      }
      break;
    case Status::kSuspect:
      if (incarnation >= st.incarnation[subject]) {
        if (st.status[subject] == Status::kAlive) {
          st.status[subject] = Status::kSuspect;
          st.suspect_since[subject] = net_.engine().now();
          queue_update(self, subject, Status::kSuspect, incarnation);
        }
        st.incarnation[subject] = incarnation;
      }
      break;
    case Status::kDead:
      confirm_dead(self, subject, incarnation, /*local_verdict=*/false);
      break;
  }
}

void SwimCluster::confirm_dead(NodeId self, NodeId subject,
                               std::uint32_t incarnation, bool local_verdict) {
  (void)local_verdict;
  NodeState& st = nodes_[self];
  if (st.status[subject] == Status::kDead) return;
  st.status[subject] = Status::kDead;
  if (incarnation > st.incarnation[subject]) {
    st.incarnation[subject] = incarnation;
  }
  views_[self].erase(subject);
  note_view_change(self);
  queue_update(self, subject, Status::kDead, st.incarnation[subject]);
  notify_failure(self, subject);
}

void SwimCluster::queue_update(NodeId self, NodeId subject, Status status,
                               std::uint32_t incarnation) {
  NodeState& st = nodes_[self];
  for (Update& u : st.updates) {
    if (u.subject == subject) {  // one slot per subject: supersede
      u.status = status;
      u.incarnation = incarnation;
      u.sends_left = dissemination_budget();
      return;
    }
  }
  st.updates.push_back(
      Update{subject, status, incarnation, dissemination_budget()});
}

void SwimCluster::send_with_piggyback(NodeId self, NodeId to,
                                      std::uint32_t kind,
                                      std::vector<std::uint8_t> head) {
  NodeState& st = nodes_[self];
  // Freshest-first: updates with the most remaining retransmissions are
  // the youngest news.  Stable sort keeps ties in queue order, so the
  // selection is deterministic.
  std::stable_sort(st.updates.begin(), st.updates.end(),
                   [](const Update& a, const Update& b) {
                     return a.sends_left > b.sends_left;
                   });
  const std::size_t take = std::min(params_.piggyback_limit,
                                    st.updates.size());
  head.push_back(static_cast<std::uint8_t>(take));
  for (std::size_t i = 0; i < take; ++i) {
    Update& u = st.updates[i];
    put_u32(head, u.subject);
    head.push_back(static_cast<std::uint8_t>(u.status));
    put_u32(head, u.incarnation);
    --u.sends_left;
  }
  st.updates.erase(std::remove_if(st.updates.begin(), st.updates.end(),
                                  [](const Update& u) {
                                    return u.sends_left == 0;
                                  }),
                   st.updates.end());
  Message msg;
  msg.from = self;
  msg.to = to;
  msg.kind = kind;
  msg.bytes = std::move(head);
  net_.send(std::move(msg));
}

}  // namespace canely::baselines
