#pragma once
// TTP/C-style TDMA membership baseline (paper §2, Fig. 1 and Fig. 11;
// Kopetz & Grünsteidl [10], Kopetz et al. [11]).
//
// A minimal model of the Time-Triggered Protocol's membership service,
// sufficient for the comparison rows of Figures 1 and 11:
//
//  * fail-silent nodes, a TDMA round of n slots (one per node), two
//    replicated channels (a slot succeeds if either channel carries it);
//  * every frame carries the sender's membership vector; receivers check
//    agreement (modelled via direct comparison — TTP encodes the vector
//    in the CRC);
//  * a node that stays silent in its slot is removed from every receiver's
//    membership at the end of that slot: detection latency is at most one
//    TDMA round + one slot;
//  * media access is conflict-free, so bandwidth is fixed by the schedule
//    regardless of load — the flip side of CAN's event-triggered
//    flexibility.
//
// The model drives the shared discrete-event engine directly (TTP is not
// a CAN upper layer; it replaces the MAC), which is precisely the
// substitution DESIGN.md documents for the TTP hardware column.

#include <cstdint>
#include <functional>
#include <vector>

#include "can/types.hpp"
#include "sim/engine.hpp"

namespace canely::baselines {

struct TtpParams {
  std::size_t n{4};                    ///< nodes == slots per round
  sim::Time slot_time{sim::Time::us(200)};
  bool channel_a_ok{true};             ///< replicated channel health
  bool channel_b_ok{true};
};

/// A TTP cluster: engine-driven slotted rounds with implicit membership.
class TtpCluster {
 public:
  /// Fires at `observer` when it removes `failed` from its membership.
  using FailureHandler =
      std::function<void(can::NodeId observer, can::NodeId failed)>;

  TtpCluster(sim::Engine& engine, TtpParams params);

  /// Start the TDMA schedule.
  void start();

  void crash(can::NodeId node);
  [[nodiscard]] bool crashed(can::NodeId node) const {
    return crashed_[node];
  }

  /// Reintegrate a previously crashed node: it restarts with a minimal
  /// view ({itself}), transmits in its slot again, and relearns the
  /// membership by listening for one TDMA round, while the others
  /// re-admit it the first time its slot is heard.
  void restart(can::NodeId node);

  /// Change replicated-channel health at runtime (a slot succeeds while
  /// either channel carries it).
  void set_channels(bool a_ok, bool b_ok) {
    params_.channel_a_ok = a_ok;
    params_.channel_b_ok = b_ok;
  }

  /// Membership view held by `node`.
  [[nodiscard]] can::NodeSet membership(can::NodeId node) const {
    return view_[node];
  }

  /// True when all live nodes hold identical membership vectors.
  [[nodiscard]] bool views_consistent() const;

  void set_failure_handler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }

  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }
  [[nodiscard]] const TtpParams& params() const { return params_; }

 private:
  void run_slot(std::size_t slot);

  sim::Engine& engine_;
  TtpParams params_;
  FailureHandler on_failure_;
  std::vector<bool> crashed_;
  std::vector<can::NodeSet> view_;
  std::uint64_t rounds_{0};
  bool running_{false};
};

}  // namespace canely::baselines
