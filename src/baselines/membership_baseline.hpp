#pragma once
// Shared scaffolding of the distributed-membership baselines
// (DESIGN.md §13): per-node views, fail-stop ground truth, failure
// notification and view-change accounting, identical across SWIM,
// gossip and the Rapid-style cut detector so the shootout compares
// protocols, not harness plumbing.

#include <functional>
#include <vector>

#include "net/transport.hpp"
#include "obs/recorder.hpp"

namespace canely::baselines {

// The baselines speak the media-agnostic transport vocabulary directly.
using net::get_u32;
using net::get_u64;
using net::kBroadcast;
using net::Members;
using net::Message;
using net::NodeId;
using net::put_u32;
using net::put_u64;
using net::Transport;

class MembershipBaseline {
 public:
  /// Fires when `observer` declares `failed` faulty and removes it from
  /// its view.  Fires once per (observer, failed) declaration — a
  /// later rejoin (false-positive recovery) re-arms it.
  using FailureHandler = std::function<void(NodeId observer, NodeId failed)>;

  virtual ~MembershipBaseline() = default;

  /// Arm every node's protocol timers (staggered start phases).
  virtual void start() = 0;

  /// Fail-stop crash at the protocol level: the node's timers and
  /// handlers go silent (pair with Medium::crash for the wire side).
  virtual void crash(NodeId node) = 0;

  void set_failure_handler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }

  /// Membership view currently held by `node`.
  [[nodiscard]] const Members& view(NodeId node) const {
    return views_[node];
  }

  /// Ground truth: has the harness crashed this node?
  [[nodiscard]] bool crashed(NodeId node) const { return crashed_[node]; }

  /// Total view installations across all nodes since start (the view-
  /// stability metric: a protocol that batches a multi-node failure into
  /// one cut counts once per node, one that trickles counts once per
  /// failure per node, and flapping counts every flap).
  [[nodiscard]] std::uint64_t view_changes() const { return view_changes_; }

  /// True when every non-crashed node's view equals `expect`.
  [[nodiscard]] bool views_agree(const Members& expect) const {
    for (NodeId i = 0; i < views_.size(); ++i) {
      if (!crashed_[i] && !(views_[i] == expect)) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const { return views_.size(); }

 protected:
  MembershipBaseline(Transport& net, std::size_t n, obs::Recorder* recorder)
      : net_{net},
        recorder_{recorder},
        views_(n, Members::all(n)),
        crashed_(n, false) {}

  /// One view installation at `node` (counter + obs wiring).  The ring
  /// event reuses CANELy's kViewInstall vocabulary so the Perfetto
  /// writer renders baseline timelines on the same tracks; the payload
  /// bitmap carries word 0 of the view (the whole view for n <= 64 —
  /// the only sizes the shootout records rings for).
  void note_view_change(NodeId node) {
    ++view_changes_;
    if (recorder_ != nullptr) {
      recorder_->metrics().counter("msh.view_changes").add();
      obs::Event e;
      e.when = net_.engine().now();
      e.kind = obs::EventKind::kViewInstall;
      e.node = static_cast<std::uint8_t>(node);
      e.u.view.members =
          views_[node].words().empty() ? 0 : views_[node].words().front();
      recorder_->emit(e);
    }
  }

  void notify_failure(NodeId observer, NodeId failed) {
    if (recorder_ != nullptr) {
      obs::Event e;
      e.when = net_.engine().now();
      e.kind = obs::EventKind::kFdSuspect;
      e.node = static_cast<std::uint8_t>(observer);
      e.u.peer.peer = static_cast<std::uint8_t>(failed);
      recorder_->emit(e);
    }
    if (on_failure_) on_failure_(observer, failed);
  }

  /// Fail-stop bookkeeping shared by every subclass's crash().
  void note_crash(NodeId node) {
    crashed_[node] = true;
    if (recorder_ != nullptr) {
      obs::Event e;
      e.when = net_.engine().now();
      e.kind = obs::EventKind::kNodeCrash;
      e.node = static_cast<std::uint8_t>(node);
      recorder_->emit(e);
    }
  }

  Transport& net_;
  obs::Recorder* recorder_;
  std::vector<Members> views_;
  std::vector<bool> crashed_;

 private:
  FailureHandler on_failure_;
  std::uint64_t view_changes_{0};
};

}  // namespace canely::baselines
