#include "baselines/osek_nm.hpp"

namespace canely::baselines {

OsekNmNode::OsekNmNode(can::Bus& bus, can::NodeId id,
                       sim::TimerService& timers, OsekNmParams params)
    : controller_{id, bus}, timers_{timers}, params_{params} {
  controller_.set_client(this);
}

void OsekNmNode::start() {
  started_ = true;
  config_.insert(id());
  send(OpCode::kAlive, id());
  arm_tmax();
}

void OsekNmNode::crash() {
  crashed_ = true;
  controller_.crash();
  timers_.cancel_alarm(tmax_timer_);
  timers_.cancel_alarm(ttyp_timer_);
}

void OsekNmNode::send(OpCode op, can::NodeId dest) {
  const std::uint8_t payload[] = {static_cast<std::uint8_t>(op), dest};
  controller_.request_tx(
      can::Frame::make_data(kNmBase + controller_.node(), payload));
}

can::NodeId OsekNmNode::successor_of(can::NodeId node) const {
  // Next-higher address in the configuration, wrapping around.
  can::NodeId best_above = node;
  can::NodeId lowest = node;
  for (can::NodeId m : config_) {
    if (m < lowest) lowest = m;
    if (m > node && (best_above == node || m < best_above)) best_above = m;
  }
  return best_above != node ? best_above : lowest;
}

void OsekNmNode::forward_ring() {
  if (crashed_ || !started_) return;
  send(OpCode::kRing, successor_of(id()));
}

void OsekNmNode::arm_tmax() {
  timers_.cancel_alarm(tmax_timer_);
  tmax_timer_ = timers_.start_alarm(params_.t_max, [this] {
    tmax_timer_ = sim::kNullTimer;
    on_tmax();
  });
}

void OsekNmNode::on_tmax() {
  if (crashed_ || !started_) return;
  if (awaiting_) {
    // The node expected to act stayed silent: it left / crashed.  Every
    // observer removes it; the last ring sender (which is the only node
    // with `ttyp_timer_` idle and `awaiting_` set on its own message...
    // simplified: the dead node's predecessor) restarts the ring towards
    // the next successor.  This mirrors OSEK's skipped-node handling in
    // the transient configuration.
    const can::NodeId dead = awaited_;
    config_.erase(dead);
    awaiting_ = false;
    if (on_leave_) on_leave_(dead);
    if (successor_of(dead) == id() || config_.size() == 1) {
      // We follow the dead node in ring order (or we are alone):
      // resume the ring.
      timers_.cancel_alarm(ttyp_timer_);
      ttyp_timer_ = timers_.start_alarm(params_.t_typ, [this] {
        ttyp_timer_ = sim::kNullTimer;
        forward_ring();
      });
    }
    arm_tmax();
  } else {
    // General silence: announce ourselves; after repeated silent periods
    // enter limp-home (we are probably cut off from the network).
    if (++silent_tmax_ >= 2) {
      limp_home_ = true;
      send(OpCode::kLimpHome, id());
    } else {
      send(OpCode::kAlive, id());
    }
    arm_tmax();
  }
}

void OsekNmNode::on_rx(const can::Frame& frame, bool own) {
  if (crashed_ || !started_ || frame.remote) return;
  if (frame.id < kNmBase || frame.id >= kNmBase + can::kMaxNodes) return;
  const auto src = static_cast<can::NodeId>(frame.id - kNmBase);
  const auto op = static_cast<OpCode>(frame.data[0]);
  const can::NodeId dest = frame.data[1];

  // Every NM message proves its sender alive — and proves we are not cut
  // off: leave limp-home.
  config_.insert(src);
  if (awaiting_ && src == awaited_) awaiting_ = false;
  silent_tmax_ = 0;
  if (limp_home_ && !own) limp_home_ = false;
  arm_tmax();

  switch (op) {
    case OpCode::kRing:
      // All nodes track whose turn it is, to detect ring stalls.
      awaiting_ = true;
      awaited_ = dest;
      if (dest == id() && !own) {
        timers_.cancel_alarm(ttyp_timer_);
        ttyp_timer_ = timers_.start_alarm(params_.t_typ, [this] {
          ttyp_timer_ = sim::kNullTimer;
          forward_ring();
        });
      }
      break;
    case OpCode::kAlive:
    case OpCode::kLimpHome:
      // If no ring is circulating, the lowest-address node starts one.
      if (!awaiting_ && ttyp_timer_ == sim::kNullTimer &&
          id() <= *config_.begin()) {
        ttyp_timer_ = timers_.start_alarm(params_.t_typ, [this] {
          ttyp_timer_ = sim::kNullTimer;
          forward_ring();
        });
      }
      break;
  }
}

}  // namespace canely::baselines
