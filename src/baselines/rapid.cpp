#include "baselines/rapid.hpp"

#include <algorithm>
#include <bit>

namespace canely::baselines {
namespace {

constexpr std::uint32_t kHeartbeat = 1;  // payload: none (from = subject)
constexpr std::uint32_t kAlert = 2;      // payload: [subject u32][ring u8]
constexpr std::uint32_t kRetract = 3;    // payload: [subject u32][ring u8]

}  // namespace

RapidCluster::RapidCluster(Transport& net, std::size_t n, RapidParams params,
                           std::uint64_t seed, obs::Recorder* recorder)
    : MembershipBaseline{net, n, recorder}, params_{params}, nodes_(n) {
  params_.rings = std::min<std::size_t>(params_.rings, 32);
  params_.high_watermark =
      std::min(params_.high_watermark, params_.rings);

  sim::Rng master{seed};
  sim::Rng topo = master.fork();  // monitoring topology, shared by all

  observers_.assign(params_.rings, std::vector<NodeId>(n, 0));
  for (NodeId self = 0; self < n; ++self) {
    NodeState& st = nodes_[self];
    st.rng = master.fork();
    st.tally.assign(n, 0);
    st.dead.assign(n, false);
  }

  std::vector<NodeId> perm(n);
  for (std::uint32_t ring = 0; ring < params_.rings; ++ring) {
    for (NodeId i = 0; i < n; ++i) perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[static_cast<std::size_t>(topo.below(i))]);
    }
    // Ring r: perm[i] observes its successor perm[i+1].
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId watcher = perm[i];
      const NodeId subject = perm[(i + 1) % n];
      if (watcher == subject) continue;  // n == 1 degenerate
      observers_[ring][subject] = watcher;
      nodes_[watcher].watches.push_back(Watch{ring, subject,
                                              sim::Time::zero(), false});
    }
  }

  for (NodeId self = 0; self < n; ++self) {
    net_.attach(self, [this, self](const Message& m) { on_message(self, m); });
  }
}

void RapidCluster::start() {
  for (NodeId self = 0; self < nodes_.size(); ++self) {
    NodeState& st = nodes_[self];
    for (Watch& w : st.watches) w.last_heard = net_.engine().now();
    const auto phase = sim::Time::ns(static_cast<std::int64_t>(
        st.rng.below(static_cast<std::uint64_t>(params_.period.to_ns()))));
    net_.engine().schedule_after(phase, [this, self] { tick(self); });
  }
}

void RapidCluster::crash(NodeId node) { note_crash(node); }

std::size_t RapidCluster::high_watermark_for(const NodeState& st,
                                             NodeId subject) const {
  // A ring whose observer is itself condemned (locally dead, or its own
  // tally already at H) can never contribute an alert: lower H by one
  // for each such ring, so correlated crashes that take out observers
  // still cross the watermark.
  std::size_t vacant = 0;
  for (std::uint32_t ring = 0; ring < params_.rings; ++ring) {
    const NodeId o = observers_[ring][subject];
    if (st.dead[o] ||
        static_cast<std::size_t>(std::popcount(st.tally[o])) >=
            params_.high_watermark) {
      ++vacant;
    }
  }
  return params_.high_watermark > vacant + 1
             ? params_.high_watermark - vacant
             : 1;
}

void RapidCluster::tick(NodeId self) {
  if (crashed_[self]) return;
  NodeState& st = nodes_[self];
  const sim::Time now = net_.engine().now();

  // Heartbeat to each distinct observer of this node.
  std::vector<NodeId> targets;
  for (std::uint32_t ring = 0; ring < params_.rings; ++ring) {
    const NodeId o = observers_[ring][self];
    if (o != self && !st.dead[o]) targets.push_back(o);
  }
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (const NodeId o : targets) {
    Message msg;
    msg.from = self;
    msg.to = o;
    msg.kind = kHeartbeat;
    net_.send(std::move(msg));
  }

  // Observation duties: raise an alert after miss_threshold silent
  // periods (retraction happens on the next heartbeat received).
  const sim::Time deadline =
      params_.period * static_cast<std::int64_t>(params_.miss_threshold);
  for (Watch& w : st.watches) {
    if (st.dead[w.subject] || w.alerted) continue;
    if (now - w.last_heard >= deadline) {
      w.alerted = true;
      std::vector<std::uint8_t> bytes;
      put_u32(bytes, w.subject);
      bytes.push_back(static_cast<std::uint8_t>(w.ring));
      Message msg;
      msg.from = self;
      msg.to = kBroadcast;
      msg.kind = kAlert;
      msg.bytes = std::move(bytes);
      net_.send(std::move(msg));
      apply_alert(self, w.subject, w.ring, /*raise=*/true);
    }
  }

  maybe_cut(self);
  net_.engine().schedule_after(params_.period, [this, self] { tick(self); });
}

void RapidCluster::on_message(NodeId self, const Message& msg) {
  if (crashed_[self]) return;
  NodeState& st = nodes_[self];
  switch (msg.kind) {
    case kHeartbeat: {
      for (Watch& w : st.watches) {
        if (w.subject != msg.from) continue;
        w.last_heard = net_.engine().now();
        if (w.alerted && !st.dead[w.subject]) {
          // The subject is back before the cut: retract our alert.
          w.alerted = false;
          std::vector<std::uint8_t> bytes;
          put_u32(bytes, w.subject);
          bytes.push_back(static_cast<std::uint8_t>(w.ring));
          Message retract;
          retract.from = self;
          retract.to = kBroadcast;
          retract.kind = kRetract;
          retract.bytes = std::move(bytes);
          net_.send(std::move(retract));
          apply_alert(self, w.subject, w.ring, /*raise=*/false);
        }
      }
      break;
    }
    case kAlert:
    case kRetract: {
      if (msg.bytes.size() < 5) break;
      const NodeId subject = get_u32(msg.bytes, 0);
      const std::uint32_t ring = msg.bytes[4];
      if (subject < st.tally.size() && ring < params_.rings &&
          observers_[ring][subject] == msg.from) {
        apply_alert(self, subject, ring, msg.kind == kAlert);
      }
      break;
    }
    default:
      break;
  }
}

void RapidCluster::apply_alert(NodeId self, NodeId subject, std::uint32_t ring,
                               bool raise) {
  NodeState& st = nodes_[self];
  if (st.dead[subject]) return;
  const std::uint32_t bit = 1u << ring;
  const std::uint32_t before = st.tally[subject];
  st.tally[subject] = raise ? before | bit : before & ~bit;
  if (st.tally[subject] != before) {
    st.last_tally_change = net_.engine().now();
    maybe_cut(self);
  }
}

void RapidCluster::maybe_cut(NodeId self) {
  NodeState& st = nodes_[self];

  std::vector<NodeId> proposal;
  for (NodeId s = 0; s < st.tally.size(); ++s) {
    if (st.dead[s] || st.tally[s] == 0) continue;
    const auto count = static_cast<std::size_t>(std::popcount(st.tally[s]));
    if (count >= high_watermark_for(st, s)) {
      proposal.push_back(s);
    } else if (count > params_.low_watermark) {
      return;  // unstable region: more reports are coming, delay the cut
    }
  }
  if (proposal.empty()) return;
  if (net_.engine().now() - st.last_tally_change < params_.settle) {
    return;  // quiet period not yet elapsed; rechecked every tick
  }

  // Install the whole proposal as ONE view change — Rapid's batching.
  for (const NodeId s : proposal) {
    st.dead[s] = true;
    st.tally[s] = 0;
    views_[self].erase(s);
    notify_failure(self, s);
  }
  note_view_change(self);
  ++st.cuts;
}

}  // namespace canely::baselines
