#include "baselines/gossip.hpp"

namespace canely::baselines {
namespace {

constexpr std::uint32_t kPush = 1;  // payload: [count u32] count x entry
constexpr std::size_t kEntryBytes = 12;  // subject u32, heartbeat u64

}  // namespace

GossipCluster::GossipCluster(Transport& net, std::size_t n,
                             GossipParams params, std::uint64_t seed,
                             obs::Recorder* recorder)
    : MembershipBaseline{net, n, recorder}, params_{params}, nodes_(n) {
  sim::Rng master{seed};
  for (NodeId self = 0; self < n; ++self) {
    NodeState& st = nodes_[self];
    st.rng = master.fork();
    st.table.assign(n, Entry{});
    net_.attach(self, [this, self](const Message& m) { on_message(self, m); });
  }
}

void GossipCluster::start() {
  for (NodeId self = 0; self < nodes_.size(); ++self) {
    NodeState& st = nodes_[self];
    // Grace: every row starts "just heard" so nobody times out a peer
    // before one full fail_timeout has elapsed.
    for (Entry& e : st.table) e.last_updated = net_.engine().now();
    const auto phase = sim::Time::ns(static_cast<std::int64_t>(
        st.rng.below(static_cast<std::uint64_t>(params_.period.to_ns()))));
    net_.engine().schedule_after(phase, [this, self] { tick(self); });
  }
}

void GossipCluster::crash(NodeId node) { note_crash(node); }

std::vector<std::uint8_t> GossipCluster::encode_own(NodeId self) const {
  std::vector<std::uint8_t> bytes;
  put_u32(bytes, 1);
  put_u32(bytes, self);
  put_u64(bytes, nodes_[self].table[self].heartbeat);
  return bytes;
}

std::vector<std::uint8_t> GossipCluster::encode_table(NodeId self) const {
  const NodeState& st = nodes_[self];
  std::vector<std::uint8_t> bytes;
  std::uint32_t count = 0;
  put_u32(bytes, 0);  // patched below
  for (NodeId p = 0; p < st.table.size(); ++p) {
    if (st.table[p].state == State::kRemoved) continue;  // tombstoned
    put_u32(bytes, p);
    put_u64(bytes, st.table[p].heartbeat);
    ++count;
  }
  bytes[0] = static_cast<std::uint8_t>(count);
  bytes[1] = static_cast<std::uint8_t>(count >> 8);
  bytes[2] = static_cast<std::uint8_t>(count >> 16);
  bytes[3] = static_cast<std::uint8_t>(count >> 24);
  return bytes;
}

void GossipCluster::tick(NodeId self) {
  if (crashed_[self]) return;
  NodeState& st = nodes_[self];
  const sim::Time now = net_.engine().now();

  ++st.table[self].heartbeat;
  st.table[self].last_updated = now;

  // Timeout sweep over this node's local clock view of every peer.
  for (NodeId p = 0; p < st.table.size(); ++p) {
    if (p == self) continue;
    Entry& e = st.table[p];
    if (e.state == State::kAlive && now - e.last_updated >= params_.fail_timeout) {
      e.state = State::kFailed;
      views_[self].erase(p);
      note_view_change(self);
      notify_failure(self, p);
    } else if (e.state == State::kFailed &&
               now - e.last_updated >= params_.cleanup_timeout) {
      e.state = State::kRemoved;  // tombstone: stale counters can't flap
    }
  }

  if (params_.fanout == 0) {
    // All-to-all heartbeating: own counter to everyone, one broadcast.
    Message msg;
    msg.from = self;
    msg.to = kBroadcast;
    msg.kind = kPush;
    msg.bytes = encode_own(self);
    net_.send(std::move(msg));
  } else {
    // Epidemic push: full table to `fanout` random distinct peers.
    std::vector<NodeId> candidates;
    for (NodeId p = 0; p < st.table.size(); ++p) {
      if (p != self && st.table[p].state == State::kAlive) {
        candidates.push_back(p);
      }
    }
    const std::size_t k = std::min(params_.fanout, candidates.size());
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pick =
          i + static_cast<std::size_t>(st.rng.below(candidates.size() - i));
      std::swap(candidates[i], candidates[pick]);
      Message msg;
      msg.from = self;
      msg.to = candidates[i];
      msg.kind = kPush;
      msg.bytes = encode_table(self);
      net_.send(std::move(msg));
    }
  }

  net_.engine().schedule_after(params_.period, [this, self] { tick(self); });
}

void GossipCluster::on_message(NodeId self, const Message& msg) {
  if (crashed_[self] || msg.kind != kPush || msg.bytes.size() < 4) return;
  const std::uint32_t count = get_u32(msg.bytes, 0);
  std::size_t at = 4;
  for (std::uint32_t i = 0;
       i < count && at + kEntryBytes <= msg.bytes.size();
       ++i, at += kEntryBytes) {
    const NodeId subject = get_u32(msg.bytes, at);
    const std::uint64_t heartbeat = get_u64(msg.bytes, at + 4);
    if (subject < nodes_[self].table.size() && subject != self) {
      merge_entry(self, subject, heartbeat);
    }
  }
}

void GossipCluster::merge_entry(NodeId self, NodeId subject,
                                std::uint64_t heartbeat) {
  Entry& e = nodes_[self].table[subject];
  if (e.state == State::kRemoved) return;  // tombstone is final
  if (heartbeat <= e.heartbeat) return;
  e.heartbeat = heartbeat;
  e.last_updated = net_.engine().now();
  if (e.state == State::kFailed) {
    // False-positive recovery: the peer was alive after all.
    e.state = State::kAlive;
    views_[self].insert(subject);
    note_view_change(self);
  }
}

}  // namespace canely::baselines
