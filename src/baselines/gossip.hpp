#pragma once
// Gossip-style heartbeat membership (van Renesse, Minsky & Hayden 1998;
// the SWIM paper's "heartbeating" strawman) on the net::Transport seam —
// the bandwidth-hungry baseline of the membership shootout
// (DESIGN.md §13).
//
// Every node keeps a table of per-peer heartbeat counters.  Each period
// it bumps its own counter and pushes state to the cluster:
//
//  * fanout == 0 — all-to-all heartbeating: broadcast just the node's
//    own entry.  O(n^2) messages per period cluster-wide, but detection
//    is direct (every node times out every peer independently).
//  * fanout  > 0 — epidemic push: send the full table to `fanout`
//    randomly chosen peers; entries spread in O(log n) rounds.
//
// A peer whose counter stalls for `fail_timeout` is declared failed and
// dropped from the view; if a newer counter arrives before
// `cleanup_timeout` expires the peer is reinstated (false-positive
// recovery), after which the entry is tombstoned for good.  Detection
// latency is timeout-bound rather than probe-bound, the trade the
// shootout curves show against SWIM.

#include <cstdint>
#include <vector>

#include "baselines/membership_baseline.hpp"
#include "sim/rng.hpp"

namespace canely::baselines {

struct GossipParams {
  sim::Time period{sim::Time::ms(200)};            ///< heartbeat interval
  std::size_t fanout{0};                           ///< 0 = all-to-all
  sim::Time fail_timeout{sim::Time::ms(1000)};     ///< stall -> failed
  sim::Time cleanup_timeout{sim::Time::ms(2000)};  ///< failed -> tombstone
};

class GossipCluster final : public MembershipBaseline {
 public:
  GossipCluster(Transport& net, std::size_t n, GossipParams params,
                std::uint64_t seed, obs::Recorder* recorder = nullptr);

  /// Arm every node's heartbeat period (staggered start phases).
  void start() override;

  /// Fail-stop crash: the node stops heartbeating and gossiping.
  void crash(NodeId node) override;

  [[nodiscard]] const GossipParams& params() const { return params_; }

 private:
  enum class State : std::uint8_t { kAlive = 0, kFailed = 1, kRemoved = 2 };

  struct Entry {
    std::uint64_t heartbeat{0};
    sim::Time last_updated{sim::Time::zero()};
    State state{State::kAlive};
  };

  struct NodeState {
    sim::Rng rng{0};
    std::vector<Entry> table;  // one row per peer (and self)
  };

  void tick(NodeId self);
  void on_message(NodeId self, const Message& msg);
  void merge_entry(NodeId self, NodeId subject, std::uint64_t heartbeat);
  [[nodiscard]] std::vector<std::uint8_t> encode_own(NodeId self) const;
  [[nodiscard]] std::vector<std::uint8_t> encode_table(NodeId self) const;

  GossipParams params_;
  std::vector<NodeState> nodes_;
};

}  // namespace canely::baselines
