#pragma once
// Canonical state hashing for simulation components.
//
// The checker's equivalence dedup (src/check/explore.cpp) collapses fault
// placements whose pre-injection universe state is identical: equal hash +
// equal remaining script implies an identical continuation, because every
// component of a checked run is a deterministic function of its state.
// Components expose `hash_state(sim::StateHasher&) const` methods that feed
// their canonical state — everything that influences future behavior, and
// nothing that doesn't (diagnostic counters, trace history) — into this
// accumulator in a fixed, documented order.
//
// The hash is a seeded byte-wise FNV-1a over typed feeds.  Every feed
// mixes a full 64-bit word, so adjacent fields never alias (a bool is a
// whole word, not one bit), and the digest is a pure function of the fed
// sequence — independent of platform, thread count, and process.  The
// seed keeps independently-keyed hash domains (state classes vs. script
// keys) from colliding structurally.

#include <cstdint>
#include <span>

#include "sim/time.hpp"

namespace canely::sim {

/// Seeded FNV-1a accumulator for canonical component state.
class StateHasher {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  explicit constexpr StateHasher(std::uint64_t seed = 0) {
    feed(seed);
  }

  /// Mix one 64-bit word, byte-wise little-endian.
  constexpr void feed(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xFF;
      hash_ *= kPrime;
    }
  }

  constexpr void feed_bool(bool value) { feed(value ? 1 : 0); }

  /// Times feed as their raw nanosecond count; Time::max() (the "timer
  /// not pending" deadline) hashes like any other value, so activeness is
  /// covered by the deadline feed alone.
  constexpr void feed_time(Time t) {
    feed(static_cast<std::uint64_t>(t.to_ns()));
  }

  /// Raw bytes, each mixed as one word (length must be framed by the
  /// caller when ambiguity is possible — feed the count first).
  constexpr void feed_bytes(std::span<const std::uint8_t> bytes) {
    for (std::uint8_t b : bytes) feed(b);
  }

  [[nodiscard]] constexpr std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_{kOffset};
};

}  // namespace canely::sim
