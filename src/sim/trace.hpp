#pragma once
// Lightweight tracing for the simulator and protocol stack.
//
// Traces are invaluable when debugging agreement protocols; they are also
// how the examples narrate what the stack is doing.  The tracer is a plain
// object handed down through constructors (no globals), with an is-enabled
// fast path so disabled tracing costs one branch.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace canely::sim {

enum class TraceLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// A single trace record.
struct TraceRecord {
  Time when;
  TraceLevel level;
  std::string category;  // e.g. "bus", "fda", "msh"
  std::string text;
};

/// Collects/dispatches trace records.  A sink may print them, store them
/// (tests assert on traces), or drop them.
class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  Tracer() = default;
  explicit Tracer(TraceLevel level, Sink sink = {})
      : level_{level}, sink_{std::move(sink)} {}

  [[nodiscard]] bool enabled(TraceLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void set_level(TraceLevel level) { level_ = level; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void emit(Time when, TraceLevel level, std::string_view category,
            std::string text) const {
    if (!enabled(level)) return;
    sink_(TraceRecord{when, level, std::string{category}, std::move(text)});
  }

  /// Lazy overload: the message is built by a callable, invoked only when
  /// the record will actually reach a sink.  Hot-path call sites use this
  /// so disabled tracing costs one branch and zero allocations (no
  /// ostringstream, no std::string) — see the cat_str sites in src/can and
  /// src/canely.
  template <typename MakeText>
    requires std::is_invocable_r_v<std::string, MakeText>
  void emit(Time when, TraceLevel level, std::string_view category,
            MakeText&& make_text) const {
    if (!enabled(level)) return;
    sink_(TraceRecord{when, level, std::string{category},
                      std::forward<MakeText>(make_text)()});
  }

 private:
  TraceLevel level_{TraceLevel::kOff};
  Sink sink_{};
};

/// Build a string from streamable pieces: cat_str("node ", 3, " failed").
template <typename... Args>
[[nodiscard]] std::string cat_str(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// A sink that collects records into a bounded buffer (for tests and
/// debug soaks).  Capacity is explicit; once full, the oldest record is
/// overwritten and `dropped()` counts the overwrites — a long soak with a
/// debug sink holds the most recent `capacity()` records instead of
/// growing without limit.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity)
      : capacity_{capacity == 0 ? 1 : capacity} {}

  [[nodiscard]] Tracer::Sink sink() {
    return [this](const TraceRecord& r) { push(r); };
  }

  /// Records in arrival order, oldest first.  Lazily linearizes the ring
  /// (a rotate, amortized over reads) so callers keep the familiar
  /// vector view.
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    if (next_ != 0) {
      std::rotate(records_.begin(),
                  records_.begin() + static_cast<std::ptrdiff_t>(next_),
                  records_.end());
      next_ = 0;
    }
    return records_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    records_.clear();
    next_ = 0;
    dropped_ = 0;
  }

 private:
  void push(const TraceRecord& r) {
    if (records_.size() < capacity_) {
      records_.push_back(r);
      return;
    }
    records_[next_] = r;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
  }

  std::size_t capacity_;
  // Mutable: records() linearizes in place without changing the logical
  // contents.
  mutable std::vector<TraceRecord> records_;
  mutable std::size_t next_{0};
  std::uint64_t dropped_{0};
};

/// A sink that prints to an ostream as "[   123.4us] cat: text".
[[nodiscard]] Tracer::Sink ostream_sink(std::ostream& os);

}  // namespace canely::sim
