#pragma once
// Lightweight tracing for the simulator and protocol stack.
//
// Traces are invaluable when debugging agreement protocols; they are also
// how the examples narrate what the stack is doing.  The tracer is a plain
// object handed down through constructors (no globals), with an is-enabled
// fast path so disabled tracing costs one branch.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace canely::sim {

enum class TraceLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// A single trace record.
struct TraceRecord {
  Time when;
  TraceLevel level;
  std::string category;  // e.g. "bus", "fda", "msh"
  std::string text;
};

/// Collects/dispatches trace records.  A sink may print them, store them
/// (tests assert on traces), or drop them.
class Tracer {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  Tracer() = default;
  explicit Tracer(TraceLevel level, Sink sink = {})
      : level_{level}, sink_{std::move(sink)} {}

  [[nodiscard]] bool enabled(TraceLevel level) const {
    return sink_ && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void set_level(TraceLevel level) { level_ = level; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void emit(Time when, TraceLevel level, std::string_view category,
            std::string text) const {
    if (!enabled(level)) return;
    sink_(TraceRecord{when, level, std::string{category}, std::move(text)});
  }

  /// Lazy overload: the message is built by a callable, invoked only when
  /// the record will actually reach a sink.  Hot-path call sites use this
  /// so disabled tracing costs one branch and zero allocations (no
  /// ostringstream, no std::string) — see the cat_str sites in src/can and
  /// src/canely.
  template <typename MakeText>
    requires std::is_invocable_r_v<std::string, MakeText>
  void emit(Time when, TraceLevel level, std::string_view category,
            MakeText&& make_text) const {
    if (!enabled(level)) return;
    sink_(TraceRecord{when, level, std::string{category},
                      std::forward<MakeText>(make_text)()});
  }

 private:
  TraceLevel level_{TraceLevel::kOff};
  Sink sink_{};
};

/// Build a string from streamable pieces: cat_str("node ", 3, " failed").
template <typename... Args>
[[nodiscard]] std::string cat_str(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// A sink that appends records to a vector (for tests).
class TraceBuffer {
 public:
  [[nodiscard]] Tracer::Sink sink() {
    return [this](const TraceRecord& r) { records_.push_back(r); };
  }
  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

/// A sink that prints to an ostream as "[   123.4us] cat: text".
[[nodiscard]] Tracer::Sink ostream_sink(std::ostream& os);

}  // namespace canely::sim
