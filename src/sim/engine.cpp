#include "sim/engine.hpp"

#include <stdexcept>
#include <utility>

namespace canely::sim {

EventId Engine::schedule_at(Time t, Callback cb) {
  if (t < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  if (!cb) {
    throw std::logic_error("Engine::schedule_at: empty callback");
  }
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(cb)});
  live_.insert(seq);
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  // An event is cancellable exactly while it is still queued: its seq is in
  // `live_`.  Erasing it both reports success and makes dispatch skip the
  // stale queue entry when it surfaces.
  if (!id.valid()) return false;
  return live_.erase(id.seq) == 1;
}

bool Engine::dispatch_next() {
  while (!queue_.empty()) {
    // const_cast: priority_queue::top() is const but we must move the
    // callback out before pop; the element is removed immediately after.
    Event& ev = const_cast<Event&>(queue_.top());
    if (!live_.contains(ev.seq)) {  // cancelled
      queue_.pop();
      continue;
    }
    Callback cb = std::move(ev.cb);
    now_ = ev.t;
    live_.erase(ev.seq);
    queue_.pop();
    ++dispatched_;
    cb();
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    // Drop leading cancelled entries so the next live event time is visible.
    while (!queue_.empty() && !live_.contains(queue_.top().seq)) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().t > t) break;
    if (dispatch_next()) ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && dispatch_next()) ++n;
  return n;
}

}  // namespace canely::sim
