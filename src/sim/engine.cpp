#include "sim/engine.hpp"

#include <utility>

// canely-lint: hot-path
// (whole file: the schedule→dispatch loop is the simulator's innermost
// loop and must stay allocation-free — DESIGN.md §8)

namespace canely::sim {

bool Engine::dispatch_next() {
  while (!queue_.empty()) {
    const QEntry e = queue_.top();
    queue_.pop();
    if (!entry_live(e)) continue;  // cancelled; stale entry
    Slot& slot = slots_[e.slot()];
    Callback cb = std::move(slot.cb);
    slot.cur_seq = 0;
    free_slot(e.slot());
    --live_;
    now_ = e.t;
    ++dispatched_;
    cb();  // may reallocate slots_; `slot` is dead from here
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time t) {
  stopped_ = false;
  std::size_t n = 0;
  // One flat loop instead of peek + dispatch_next(): each entry is
  // popped and checked exactly once.  Stale (cancelled) entries are
  // dropped no matter their timestamp; a live entry past `t` ends the
  // run (it stays queued — only top() was read).
  while (!stopped_ && !queue_.empty()) {
    const QEntry e = queue_.top();
    if (!entry_live(e)) {
      queue_.pop();
      continue;
    }
    if (e.t > t) break;
    queue_.pop();
    Slot& slot = slots_[e.slot()];
    Callback cb = std::move(slot.cb);
    slot.cur_seq = 0;
    free_slot(e.slot());
    --live_;
    now_ = e.t;
    ++dispatched_;
    cb();  // may reallocate slots_; `slot` is dead from here
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && dispatch_next()) ++n;
  return n;
}

}  // namespace canely::sim
