#include "sim/engine.hpp"

#include <utility>

// canely-lint: hot-path
// (whole file: the schedule→dispatch loop is the simulator's innermost
// loop and must stay allocation-free — DESIGN.md §8)

namespace canely::sim {

bool Engine::dispatch_next() {
  while (const QEntry* pe = queue_.peek()) {
    const QEntry e = *pe;
    queue_.pop();
    if (!entry_live(e)) continue;  // cancelled; stale entry
    Slot& slot = slot_ref(e.slot());
    slot.cur_seq = 0;
    --live_;
    now_ = e.t;
    ++dispatched_;
    slot.cb();  // chunk storage is stable: safe even if it schedules
    slot.cb.reset();
    free_slot(e.slot());
    return true;
  }
  return false;
}

std::size_t Engine::run_until(Time t) {
  stopped_ = false;
  std::size_t n = 0;
  // One flat loop instead of peek + dispatch_next(): each entry is
  // popped and checked exactly once.  Stale (cancelled) entries are
  // dropped no matter their timestamp; a live entry past `t` ends the
  // run (it stays queued — only peek() was read).  `stopped_` can only
  // change inside a callback, so it is tested after dispatch rather
  // than on every queue probe.
  while (const QEntry* pe = queue_.peek()) {
    const QEntry e = *pe;
    Slot& slot = slot_ref(e.slot());  // one lookup serves liveness + dispatch
    if (slot.cur_seq != e.seq_lo()) {
      queue_.pop();  // cancelled; stale entry
      continue;
    }
    if (e.t > t) break;
    queue_.pop();
    slot.cur_seq = 0;
    --live_;
    now_ = e.t;
    ++dispatched_;
    slot.cb();  // chunk storage is stable: safe even if it schedules
    slot.cb.reset();
    free_slot(e.slot());
    ++n;
    if (stopped_) break;
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && dispatch_next()) ++n;
  return n;
}

}  // namespace canely::sim
