#pragma once
// Simulated time for the CANELy discrete-event substrate.
//
// All of the simulator, the CAN model and the CANELy protocol stack share a
// single notion of time: a signed 64-bit count of nanoseconds since the
// start of the simulation.  A strong type keeps raw integers from leaking
// through interfaces and gives us readable factories (`Time::ms(30)`),
// arithmetic, and conversion helpers for CAN bit-times.

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace canely::sim {

/// A point in simulated time, or a duration; nanosecond resolution.
///
/// The same type is deliberately used for both points and durations (the
/// protocols in the paper manipulate both interchangeably: heartbeat
/// periods, timer deadlines, transmission delays).
class Time {
 public:
  constexpr Time() = default;

  /// Factories -------------------------------------------------------------
  [[nodiscard]] static constexpr Time ns(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time us(std::int64_t v) { return Time{v * 1'000}; }
  [[nodiscard]] static constexpr Time ms(std::int64_t v) { return Time{v * 1'000'000}; }
  [[nodiscard]] static constexpr Time sec(std::int64_t v) { return Time{v * 1'000'000'000}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  /// Accessors -------------------------------------------------------------
  [[nodiscard]] constexpr std::int64_t to_ns() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t to_us() const { return ns_ / 1'000; }
  [[nodiscard]] constexpr std::int64_t to_ms() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double to_us_f() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_ms_f() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_sec_f() const { return static_cast<double>(ns_) / 1e9; }

  /// Arithmetic ------------------------------------------------------------
  constexpr Time& operator+=(Time rhs) { ns_ += rhs.ns_; return *this; }
  constexpr Time& operator-=(Time rhs) { ns_ -= rhs.ns_; return *this; }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  friend constexpr Time operator%(Time a, Time b) { return Time{a.ns_ % b.ns_}; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend std::ostream& operator<<(std::ostream& os, Time t) {
    return os << t.to_us_f() << "us";
  }

 private:
  explicit constexpr Time(std::int64_t v) : ns_{v} {}
  std::int64_t ns_{0};
};

/// Duration of one bit on a CAN bus running at `bit_rate_bps` bits/second.
/// Typical CANELy deployments use 1 Mbps (1 us bit-time, 40 m bus).
[[nodiscard]] constexpr Time bit_time(std::int64_t bit_rate_bps) {
  return Time::ns(1'000'000'000 / bit_rate_bps);
}

/// Convert a length expressed in bit-times into simulated time.
[[nodiscard]] constexpr Time bits_to_time(std::int64_t bits, std::int64_t bit_rate_bps) {
  return bit_time(bit_rate_bps) * bits;
}

}  // namespace canely::sim
