#pragma once
// Deterministic random number generation (xoshiro256** + splitmix64).
//
// Fault injectors and workload generators draw from per-component streams
// seeded from a master seed, so runs are reproducible and components'
// randomness is independent of evaluation order.

#include <cstdint>
#include <vector>

namespace canely::sim {

/// splitmix64 — used to expand a single seed into xoshiro state and to
/// derive independent child seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — small, fast, high-quality PRNG.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) — bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Unbiased rejection sampling (Lemire-style threshold simplified).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (stable given call order).
  constexpr Rng fork() { return Rng{next_u64()}; }

  /// Sample `k` distinct values from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample(std::size_t n, std::size_t k) {
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pick = i + static_cast<std::size_t>(below(n - i));
      std::swap(pool[i], pool[pick]);
    }
    pool.resize(k);
    return pool;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace canely::sim
