#pragma once
// Per-node alarm service, mirroring the `start alarm` / `cancel alarm`
// primitives used throughout the paper's pseudo-code (Figures 7, 8, 9).
//
// Each protocol entity owns a TimerService; a timer is identified by a
// TimerId ("tid" in the paper), with kNullTimer playing the role of the
// pseudo-code's `tid := NULL`.

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace canely::sim {

/// Opaque timer identifier.  0 is the distinguished "no timer" value.
using TimerId = std::uint64_t;
inline constexpr TimerId kNullTimer = 0;

/// One-shot alarms on top of the discrete-event engine.
class TimerService {
 public:
  explicit TimerService(Engine& engine) : engine_{engine} {}
  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Start a one-shot alarm that fires `duration` from now.
  /// The expiry callback runs at most once; the timer is considered
  /// inactive from the moment the callback begins executing.
  TimerId start_alarm(Time duration, std::function<void()> on_expiry);

  /// Cancel a pending alarm; no-op (returns false) if it already fired,
  /// was cancelled, or `id` is kNullTimer.
  bool cancel_alarm(TimerId id);

  /// True while the alarm is pending.
  [[nodiscard]] bool active(TimerId id) const { return pending_.contains(id); }

  /// Expiry instant of a pending alarm; Time::max() if not pending.
  [[nodiscard]] Time deadline(TimerId id) const;

  /// Number of pending alarms.
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// Cancel every pending alarm (used when a node crashes).
  void cancel_all();

 private:
  struct Entry {
    EventId event;
    Time deadline;
  };
  Engine& engine_;
  std::unordered_map<TimerId, Entry> pending_;
  TimerId next_id_{1};
};

}  // namespace canely::sim
