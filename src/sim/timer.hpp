#pragma once
// Per-node alarm service, mirroring the `start alarm` / `cancel alarm`
// primitives used throughout the paper's pseudo-code (Figures 7, 8, 9).
//
// Each protocol entity owns a TimerService; a timer is identified by a
// TimerId ("tid" in the paper), with kNullTimer playing the role of the
// pseudo-code's `tid := NULL`.
//
// Storage is a slot vector recycled through a free list — the same
// (slot, generation) scheme as the engine's event pool, so every
// operation is an index instead of a hash lookup.  The user's expiry
// callback stays in the timer slot; the engine-side event is a 16-byte
// [this, slot, gen] closure, so arming an alarm never heap-allocates.

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace canely::sim {

/// Opaque timer identifier.  0 is the distinguished "no timer" value.
/// Encodes (slot + 1, generation); stale ids from fired or cancelled
/// alarms are rejected by the generation check, never recycled.
using TimerId = std::uint64_t;
inline constexpr TimerId kNullTimer = 0;

/// One-shot alarms on top of the discrete-event engine.
class TimerService {
 public:
  using Callback = sim::Callback;

  explicit TimerService(Engine& engine) : engine_{engine} {}
  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Start a one-shot alarm that fires `duration` from now.
  /// The expiry callback runs at most once; the timer is considered
  /// inactive from the moment the callback begins executing.
  TimerId start_alarm(Time duration, Callback on_expiry);

  /// Cancel a pending alarm; no-op (returns false) if it already fired,
  /// was cancelled, or `id` is kNullTimer.
  bool cancel_alarm(TimerId id);

  /// True while the alarm is pending.
  [[nodiscard]] bool active(TimerId id) const { return lookup(id) != nullptr; }

  /// Expiry instant of a pending alarm; Time::max() if not pending.
  [[nodiscard]] Time deadline(TimerId id) const;

  /// Number of pending alarms.
  [[nodiscard]] std::size_t pending_count() const { return live_; }

  /// Cancel every pending alarm (used when a node crashes).
  void cancel_all();

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFF;

  struct Slot {
    Callback cb;
    EventId event{};
    Time when{};
    std::uint32_t gen{0};
    std::uint32_t next_free{kNoSlot};
    bool armed{false};
  };

  [[nodiscard]] const Slot* lookup(TimerId id) const;
  void fire(std::uint32_t s, std::uint32_t gen);
  void release(std::uint32_t s);

  Engine& engine_;
  std::vector<Slot> slots_;  // grows to the max concurrent alarm count
  std::uint32_t free_head_{kNoSlot};
  std::size_t live_{0};
};

}  // namespace canely::sim
