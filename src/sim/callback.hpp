#pragma once
// Small-buffer-optimized, move-only `void()` callable — the event payload
// type of the discrete-event engine.
//
// Every simulated action (timer expiry, frame completion, protocol step)
// is one of these; a campaign dispatches hundreds of millions.  The
// std::function it replaces heap-allocates any capture over ~16 bytes,
// and the common CANELy callbacks ([this, id, cb] timer wrappers, bus
// completion closures) all exceed that.  With 48 bytes of inline storage
// they never touch the heap, which together with the engine's pooled
// event slots makes the steady-state schedule->dispatch path
// allocation-free (asserted by tests/test_sim_alloc.cpp).
//
// Callables larger than the inline buffer (or with throwing moves) fall
// back to the heap; the per-thread `heap_constructions()` counter exists
// so tests can pin down which paths stay inline.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace canely::sim {

class Callback {
 public:
  /// Inline capture capacity.  Sized to hold the stack's biggest hot
  /// callables (a std::function copy is 32 bytes; the timer-service and
  /// bus closures are 16-32) with headroom.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  Callback() = default;
  Callback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Destroy any held callable and construct `f` in place (no
  /// intermediate Callback, no move of the capture).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    reset();
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ++heap_constructions_;
      // canely-lint: allow(hot-path-transitive) — heap fallback is the cold branch; hot-path callables fit the inline buffer (tests/test_sim_alloc.cpp)
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }
  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Callback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  ~Callback() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(buf_); }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// Test hook: per-thread count of callables that exceeded the inline
  /// buffer and were boxed on the heap.
  [[nodiscard]] static std::uint64_t heap_constructions() {
    return heap_constructions_;
  }

 private:
  // A null `relocate` means the storage is trivially relocatable (fixed
  // 48-byte memcpy — branchless, no indirect call); a null `destroy`
  // means nothing to destroy.  Hot callables (lambdas over references
  // and scalars) hit both null paths.
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to);  // move-construct + destroy from
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* from, void* to) {
              D* src = std::launder(reinterpret_cast<D*>(from));
              ::new (to) D(std::move(*src));
              src->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* storage) {
              std::launder(reinterpret_cast<D*>(storage))->~D();
            },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* storage) { (**reinterpret_cast<D**>(storage))(); },
      nullptr,  // boxed pointer: memcpy relocates it
      [](void* storage) { delete *reinterpret_cast<D**>(storage); },
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.buf_, buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_{nullptr};

  static inline thread_local std::uint64_t heap_constructions_ = 0;
};

}  // namespace canely::sim
