#pragma once
// Deterministic discrete-event engine.
//
// Every component of the reproduction — CAN bus, controllers, protocol
// timers, traffic generators, fault injectors — schedules work on a single
// `Engine`.  Determinism rule: two events scheduled for the same instant
// fire in scheduling order (FIFO, via a monotonically increasing sequence
// number).  A whole run is therefore a pure function of its inputs, which
// the property-test suites rely on.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace canely::sim {

/// Handle returned by Engine::schedule_*; usable to cancel the event.
struct EventId {
  std::uint64_t seq{0};
  [[nodiscard]] constexpr bool valid() const { return seq != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Single-threaded discrete-event simulation engine.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (>= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `delay` after now().
  EventId schedule_after(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event.  Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Run all events with timestamp <= `t`; afterwards now() == max(t, now).
  /// Returns the number of events dispatched.
  std::size_t run_until(Time t);

  /// Run for a further duration `d` of simulated time.
  std::size_t run_for(Time d) { return run_until(now_ + d); }

  /// Run until the event queue drains (or stop() is called).
  std::size_t run();

  /// Request the current run_*() call to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Number of live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool dispatch_next();  // pops and runs one live event; false if none.

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // seqs of queued, not-cancelled events
  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t dispatched_{0};
  bool stopped_{false};
};

}  // namespace canely::sim
