#pragma once
// Deterministic discrete-event engine.
//
// Every component of the reproduction — CAN bus, controllers, protocol
// timers, traffic generators, fault injectors — schedules work on a single
// `Engine`.  Determinism rule: two events scheduled for the same instant
// fire in scheduling order (FIFO, via a monotonically increasing sequence
// number).  A whole run is therefore a pure function of its inputs, which
// the property-test suites rely on.
//
// Internals (DESIGN.md "Engine internals"): callbacks live in pooled
// slots recycled through a free list; slots are stored in fixed-size
// chunks whose addresses never move, so dispatch invokes the callback
// in place instead of moving the 48-byte payload out first.  The
// priority queue holds only 16-byte POD entries ordered by (time, seq).
// An EventId encodes (slot, generation): cancel() bumps nothing but
// frees the slot, and the stale queue entry is skipped at pop time when
// its generation no longer matches (lazy deletion, exactly as the seed
// implementation skipped seqs missing from its live-set — dispatch
// order is unchanged).  With the small-buffer `sim::Callback` payload,
// steady-state schedule->dispatch performs no heap allocation.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace canely::sim {

/// Handle returned by Engine::schedule_*; usable to cancel the event.
/// Opaque: encodes the event's pool slot and a generation tag (the
/// scheduling sequence number's low 32 bits).  A handle outlives its
/// event safely — cancel() on a dispatched, cancelled, or recycled slot
/// sees a generation mismatch and returns false.
struct EventId {
  std::uint64_t raw{0};
  [[nodiscard]] constexpr bool valid() const { return raw != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;
};

/// Single-threaded discrete-event simulation engine.
class Engine {
 public:
  using Callback = sim::Callback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (>= now()).
  /// Defined inline: schedule/cancel are the simulator's hottest calls
  /// and must fold into their call sites.  The callable is constructed
  /// directly in the event slot — no intermediate Callback move.
  template <typename F, typename = std::enable_if_t<
                            std::is_constructible_v<Callback, F&&>>>
  EventId schedule_at(Time t, F&& cb) {
    if (t < now_) {
      throw std::logic_error("Engine::schedule_at: time in the past");
    }
    const std::uint64_t seq = next_seq_++;
    const auto seq_lo = static_cast<std::uint32_t>(seq);
    const std::uint32_t s = alloc_slot();
    Slot& slot = slot_ref(s);
    if constexpr (std::is_same_v<std::decay_t<F>, Callback>) {
      slot.cb = std::forward<F>(cb);
      // Only a moved-in Callback can be empty; emplace of a raw
      // callable always arms the slot, so skip the check there.
      if (!slot.cb) {
        free_slot(s);
        --next_seq_;
        throw std::logic_error("Engine::schedule_at: empty callback");
      }
    } else {
      slot.cb.emplace(std::forward<F>(cb));
    }
    slot.cur_seq = seq_lo;
    queue_.push(QEntry{t, static_cast<std::uint64_t>(seq_lo) << 32 | s});
    ++live_;
    return EventId{encode(s, seq_lo)};
  }

  /// Schedule `cb` to run `delay` after now().
  template <typename F, typename = std::enable_if_t<
                            std::is_constructible_v<Callback, F&&>>>
  EventId schedule_after(Time delay, F&& cb) {
    return schedule_at(now_ + delay, std::forward<F>(cb));
  }

  /// Cancel a pending event.  Returns false if it already ran, was already
  /// cancelled, or the id is invalid.  An event is cancellable exactly
  /// while its slot is armed under the handle's generation; disarming
  /// both reports success and makes dispatch skip the stale queue entry
  /// when it surfaces (lazy deletion).
  bool cancel(EventId id) {
    const std::uint64_t hi = id.raw >> 32;
    if (hi == 0 || hi > slot_count_) return false;
    const auto s = static_cast<std::uint32_t>(hi - 1);
    Slot& slot = slot_ref(s);
    const auto lo = static_cast<std::uint32_t>(id.raw);
    if (lo == 0 || slot.cur_seq != lo) return false;
    slot.cb.reset();  // release captured resources now, not at slot reuse
    slot.cur_seq = 0;
    queue_.remove_staged(static_cast<std::uint64_t>(lo) << 32 | s);
    free_slot(s);
    --live_;
    return true;
  }

  /// Run all events with timestamp <= `t`; afterwards now() == max(t, now).
  /// Returns the number of events dispatched.
  std::size_t run_until(Time t);

  /// Run for a further duration `d` of simulated time.
  std::size_t run_for(Time d) { return run_until(now_ + d); }

  /// Run until the event queue drains (or stop() is called).
  std::size_t run();

  /// Request the current run_*() call to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events dispatched since construction.
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Number of live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t pending() const { return live_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFF'FFFF;

  // EventId layout: (slot + 1) in the high 32 bits — so 0 stays the
  // distinguished invalid handle — and the slot generation in the low 32.
  static constexpr std::uint64_t encode(std::uint32_t slot,
                                        std::uint32_t gen) {
    return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
  }

  // 64 bytes — one cache line.  cur_seq doubles as the armed flag and
  // the generation tag: 0 = free/disarmed (seq numbers start at 1),
  // otherwise the low 32 bits of the owning event's sequence number.
  struct Slot {
    Callback cb;
    std::uint32_t cur_seq{0};
    std::uint32_t next_free{kNoSlot};
  };

  // What the priority queue actually shuffles: 16 trivially copyable
  // bytes — no callback, so a sift level is one SSE move, and four
  // entries share a cache line.  `key` packs (seq_lo << 32 | slot).
  struct QEntry {
    Time t;
    std::uint64_t key;
    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key);
    }
    [[nodiscard]] std::uint32_t seq_lo() const {
      return static_cast<std::uint32_t>(key >> 32);
    }
  };

  // Strict total dispatch order.  FIFO tie-break on the truncated
  // sequence number: wraparound-safe subtraction, exact as long as
  // same-instant events coexisting in the queue span fewer than 2^31
  // schedule calls — which a queue that fits in memory always satisfies.
  static bool before(const QEntry& a, const QEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return static_cast<std::int32_t>(a.seq_lo() - b.seq_lo()) < 0;
  }

  // Two-level priority queue: a small unordered staging array in front
  // of a binary heap.  Most simulation events are dispatched or
  // cancelled soon after they are scheduled, so they enter and leave
  // through the staging array and never pay the heap's sift costs; the
  // heap only absorbs overflow when more than kStage events are in
  // flight.  push() is a branch-free append; top() finds the staging
  // minimum with a conditional-move scan — with randomized timestamps
  // an insertion sort mispredicts its shift length on nearly every
  // push, and those flushes cost more than a short branchless scan.
  // Dispatch order is identical to a single heap: `before` is one
  // strict total order with no ties ((time, seq) pairs are unique), so
  // *any* correct priority queue extracts the same sequence, and top()
  // always compares the staging minimum against the heap minimum.
  class EventQueue {
   public:
    [[nodiscard]] bool empty() const {
      return stage_n_ == 0 && heap_.empty();
    }
    void push(const QEntry& e) {
      if (stage_n_ == kStage) flush();
      stage_[stage_n_++] = e;  // append: no shift, no data-dependent branch
    }
    // peek() records which structure holds the minimum so pop()
    // doesn't repeat the scan.  Contract: pop() must directly follow a
    // peek() call with no intervening push() — which is how the
    // engine's dispatch loops use the queue.
    [[nodiscard]] const QEntry& top() { return *peek(); }
    /// top() and empty() folded into one read: nullptr when empty.
    [[nodiscard]] const QEntry* peek() {
      if (stage_n_ == 0) {
        top_in_stage_ = false;
        return heap_.empty() ? nullptr : &heap_.front();
      }
      std::size_t best = 0;
      for (std::size_t i = 1; i < stage_n_; ++i) {
        if (before(stage_[i], stage_[best])) best = i;
      }
      if (!heap_.empty() && before(heap_.front(), stage_[best])) {
        top_in_stage_ = false;
        return &heap_.front();
      }
      top_in_stage_ = true;
      top_idx_ = best;
      return &stage_[best];
    }
    void pop() {  // removes top()
      if (top_in_stage_) {
        stage_[top_idx_] = stage_[--stage_n_];  // swap-remove: order-free
        return;
      }
      std::pop_heap(heap_.begin(), heap_.end(), after);
      heap_.pop_back();
    }
    // Eagerly drop a cancelled event if it still sits in staging (the
    // common case: surveillance timers are cancelled soon after being
    // armed).  Keeps stale entries out of every later peek() scan; a
    // miss means the entry overflowed to the heap and stays lazily
    // deleted there.
    bool remove_staged(std::uint64_t key) {
      for (std::size_t i = 0; i < stage_n_; ++i) {
        if (stage_[i].key == key) {
          stage_[i] = stage_[--stage_n_];
          return true;
        }
      }
      return false;
    }

   private:
    static constexpr std::size_t kStage = 16;
    static bool after(const QEntry& a, const QEntry& b) {
      return before(b, a);
    }
    void flush() {
      for (std::size_t i = 0; i < stage_n_; ++i) {
        heap_.push_back(stage_[i]);
        std::push_heap(heap_.begin(), heap_.end(), after);
      }
      stage_n_ = 0;
    }
    QEntry stage_[kStage];
    std::size_t stage_n_{0};
    std::size_t top_idx_{0};
    bool top_in_stage_{false};
    std::vector<QEntry> heap_;
  };

  bool dispatch_next();  // pops and runs one live event; false if none.

  // Slots live in fixed-size chunks; growing appends a chunk and never
  // moves an existing Slot.  Stable addresses let dispatch invoke the
  // callback in place — a scheduling callback may grow the pool under
  // its own feet without invalidating the reference it runs from.
  static constexpr std::uint32_t kChunkBits = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;

  // First-chunk fast path: most runs never outgrow 1024 slots, and the
  // chunk's address is stable for the Engine's lifetime, so one cached
  // pointer replaces the vector -> unique_ptr -> slot load chain with a
  // single perfectly-predicted branch and one load.
  [[nodiscard]] Slot& slot_ref(std::uint32_t s) {
    return s < kChunkSize ? chunk0_[s]
                          : chunks_[s >> kChunkBits][s & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t s) const {
    return s < kChunkSize ? chunk0_[s]
                          : chunks_[s >> kChunkBits][s & (kChunkSize - 1)];
  }
  std::uint32_t alloc_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slot_ref(s).next_free;
      return s;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0) {
      // canely-lint: allow(hot-path-transitive) — chunk growth is amortized (every 256th slot); steady-state scheduling reuses freed slots allocation-free
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      if (slot_count_ == 0) chunk0_ = chunks_.front().get();
    }
    return slot_count_++;
  }
  void free_slot(std::uint32_t s) {
    slot_ref(s).next_free = free_head_;
    free_head_ = s;
  }
  [[nodiscard]] bool entry_live(const QEntry& e) const {
    return slot_ref(e.slot()).cur_seq == e.seq_lo();
  }

  EventQueue queue_;
  Slot* chunk0_{nullptr};  // cached chunks_[0].get(); address is stable
  std::vector<std::unique_ptr<Slot[]>> chunks_;  // stable slot storage
  std::uint32_t slot_count_{0};    // slots ever allocated (high-water mark)
  std::uint32_t free_head_{kNoSlot};
  std::size_t live_{0};
  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t dispatched_{0};
  bool stopped_{false};
};

}  // namespace canely::sim
