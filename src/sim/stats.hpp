#pragma once
// Small statistics helpers for benchmarks and tests: running summaries
// (min/mean/max/stddev) and exact percentiles over collected samples of
// simulated time.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace canely::sim {

/// Collects Time samples; answers summary questions.
class TimeSeries {
 public:
  void add(Time sample) { samples_.push_back(sample); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] Time min() const {
    return empty() ? Time::zero() : *std::min_element(samples_.begin(),
                                                      samples_.end());
  }
  [[nodiscard]] Time max() const {
    return empty() ? Time::zero() : *std::max_element(samples_.begin(),
                                                      samples_.end());
  }
  [[nodiscard]] Time mean() const {
    if (empty()) return Time::zero();
    __int128 sum = 0;
    for (Time t : samples_) sum += t.to_ns();
    return Time::ns(static_cast<std::int64_t>(
        sum / static_cast<__int128>(samples_.size())));
  }
  [[nodiscard]] double stddev_us() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean().to_us_f();
    double acc = 0;
    for (Time t : samples_) {
      const double d = t.to_us_f() - m;
      acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// Exact percentile by nearest-rank (p in [0, 100]).
  [[nodiscard]] Time percentile(double p) const {
    if (empty()) return Time::zero();
    std::vector<Time> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  void clear() { samples_.clear(); }

 private:
  std::vector<Time> samples_;
};

}  // namespace canely::sim
