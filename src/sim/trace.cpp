#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace canely::sim {

Tracer::Sink ostream_sink(std::ostream& os) {
  return [&os](const TraceRecord& r) {
    os << "[" << std::setw(12) << std::fixed << std::setprecision(1)
       << r.when.to_us_f() << "us] " << r.category << ": " << r.text << "\n";
  };
}

}  // namespace canely::sim
