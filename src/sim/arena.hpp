#pragma once
// Bump-pointer arena for per-run simulation objects (DESIGN.md §8).
//
// A checker or campaign run builds a full universe — engine, bus, nodes,
// protocol stacks — uses it for one trajectory, and throws it away.
// Allocating those objects individually makes teardown a long chain of
// frees and the next run a long chain of mallocs.  The arena turns both
// into pointer arithmetic: make<T>() carves aligned storage out of
// fixed-size blocks, reset() destroys everything in reverse construction
// order and *retains* the blocks, so a campaign worker's second run
// allocates out of warm, already-owned memory.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace canely::sim {

class Arena {
 public:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena() { reset(); }

  /// Construct a T in arena storage.  The object lives until reset();
  /// it is never freed individually.  Non-trivially-destructible types
  /// register a finalizer; trivially-destructible ones cost nothing at
  /// teardown.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    T* obj = ::new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      finalizers_.push_back(
          Finalizer{obj, [](void* q) { static_cast<T*>(q)->~T(); }});
    }
    return obj;
  }

  /// Carve an uninitialized-then-value-initialized array of `count` Ts
  /// out of arena storage.  Restricted to trivially destructible element
  /// types so the span needs no finalizer — the prefix cache
  /// (src/check/prefix_cache.cpp) copies probe payloads into per-cell
  /// arenas with this, and eviction is a plain reset().
  template <typename T>
  [[nodiscard]] std::span<T> alloc_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "alloc_span elements are never finalized");
    if (count == 0) return {};
    T* p = static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
    for (std::size_t i = 0; i < count; ++i) ::new (p + i) T();
    return {p, count};
  }

  /// Destroy every object (reverse construction order — dependents die
  /// before their dependencies, mirroring stack unwind) and rewind the
  /// bump pointer.  Blocks are kept for the next run.
  void reset() {
    for (auto it = finalizers_.rbegin(); it != finalizers_.rend(); ++it) {
      it->destroy(it->obj);
    }
    finalizers_.clear();
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes of block storage currently owned (retained across
  /// reset()) — observability for tests and metrics.
  [[nodiscard]] std::size_t bytes_retained() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  [[nodiscard]] std::size_t live_finalizers() const {
    return finalizers_.size();
  }

 private:
  struct Finalizer {
    void* obj;
    void (*destroy)(void*);
  };
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size;
  };

  void* allocate(std::size_t size, std::size_t align) {
    while (true) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const auto base = reinterpret_cast<std::uintptr_t>(b.mem.get());
        const std::uintptr_t p =
            (base + used_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
        if (p + size <= base + b.size) {
          used_ = p + size - base;
          return reinterpret_cast<void*>(p);
        }
        ++block_;  // does not fit: spill into the next block
        used_ = 0;
        continue;
      }
      // Oversize requests get a block of their own size.
      const std::size_t want = std::max(kBlockBytes, size + align);
      blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
    }
  }

  std::vector<Block> blocks_;
  std::vector<Finalizer> finalizers_;
  std::size_t block_{0};  ///< index of the block being bumped
  std::size_t used_{0};   ///< bytes consumed in that block
};

}  // namespace canely::sim
