#include "sim/timer.hpp"

#include <utility>

// canely-lint: hot-path
// (whole file: every protocol timer start/fire/cancel runs through here;
// slots + free list keep it allocation-free in steady state)

namespace canely::sim {

namespace {
constexpr TimerId encode(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<TimerId>(slot) + 1) << 32 | gen;
}
}  // namespace

const TimerService::Slot* TimerService::lookup(TimerId id) const {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return nullptr;
  const Slot& slot = slots_[hi - 1];
  if (!slot.armed || slot.gen != static_cast<std::uint32_t>(id)) {
    return nullptr;
  }
  return &slot;
}

void TimerService::release(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.armed = false;
  slot.next_free = free_head_;
  free_head_ = s;
  --live_;
}

TimerId TimerService::start_alarm(Time duration, Callback on_expiry) {
  std::uint32_t s;
  if (free_head_ != kNoSlot) {
    s = free_head_;
    free_head_ = slots_[s].next_free;
  } else {
    slots_.emplace_back();
    s = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  Slot& slot = slots_[s];
  ++slot.gen;
  const std::uint32_t gen = slot.gen;
  slot.cb = std::move(on_expiry);
  slot.when = engine_.now() + duration;
  slot.armed = true;
  slot.event =
      engine_.schedule_at(slot.when, [this, s, gen] { fire(s, gen); });
  ++live_;
  return encode(s, gen);
}

void TimerService::fire(std::uint32_t s, std::uint32_t gen) {
  Slot& slot = slots_[s];
  if (!slot.armed || slot.gen != gen) return;  // defensive; cancel unschedules
  Callback cb = std::move(slot.cb);
  // Release before invoking so the callback observes the timer as
  // inactive and may immediately restart it (possibly reusing this slot
  // under a fresh generation).
  release(s);
  cb();  // may reallocate slots_; `slot` is dead from here
}

bool TimerService::cancel_alarm(TimerId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return false;
  const auto s = static_cast<std::uint32_t>(hi - 1);
  Slot& slot = slots_[s];
  if (!slot.armed || slot.gen != static_cast<std::uint32_t>(id)) {
    return false;
  }
  engine_.cancel(slot.event);
  slot.cb.reset();
  release(s);
  return true;
}

Time TimerService::deadline(TimerId id) const {
  const Slot* slot = lookup(id);
  return slot == nullptr ? Time::max() : slot->when;
}

void TimerService::cancel_all() {
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = slots_[s];
    if (!slot.armed) continue;
    engine_.cancel(slot.event);
    slot.cb.reset();
    release(s);
  }
}

}  // namespace canely::sim
