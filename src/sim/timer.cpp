#include "sim/timer.hpp"

#include <utility>

namespace canely::sim {

TimerId TimerService::start_alarm(Time duration, std::function<void()> on_expiry) {
  const TimerId id = next_id_++;
  const Time when = engine_.now() + duration;
  EventId ev = engine_.schedule_at(
      when, [this, id, cb = std::move(on_expiry)]() mutable {
        // Remove before invoking so the callback observes the timer as
        // inactive and may immediately restart it under a fresh id.
        pending_.erase(id);
        cb();
      });
  pending_.emplace(id, Entry{ev, when});
  return id;
}

bool TimerService::cancel_alarm(TimerId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  engine_.cancel(it->second.event);
  pending_.erase(it);
  return true;
}

Time TimerService::deadline(TimerId id) const {
  auto it = pending_.find(id);
  return it == pending_.end() ? Time::max() : it->second.deadline;
}

void TimerService::cancel_all() {
  for (auto& [id, entry] : pending_) {
    engine_.cancel(entry.event);
  }
  pending_.clear();
}

}  // namespace canely::sim
