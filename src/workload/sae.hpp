#pragma once
// Automotive-style CAN workloads.
//
// The paper's efficiency argument (§6.3) leans on CAN applications
// exhibiting "a cyclic traffic pattern [20]" with periods below the
// failure-detection latency.  This module provides representative message
// sets in the tradition of the SAE class-C benchmark that Tindell & Burns
// used to validate CAN response-time analysis — the same sets feed our
// analysis/response_time and drive simulated nodes as live traffic.

#include <cstdint>
#include <vector>

#include "analysis/response_time.hpp"
#include "can/types.hpp"
#include "sim/time.hpp"

namespace canely::workload {

/// A periodic application stream bound to a sending node.
struct Stream {
  std::string name;
  can::NodeId sender{};
  std::uint8_t stream_id{};   ///< CANELy app stream (mid ref)
  std::size_t dlc{};          ///< payload bytes
  sim::Time period{};
  sim::Time jitter{};         ///< release jitter bound
  std::uint32_t priority{};   ///< relative priority among app streams
};

/// A reduced SAE-class-C-flavoured control workload: a mix of fast
/// control loops, medium-rate sensor data and slow status traffic,
/// spread over `n` nodes.  Periods follow the classic 5/10/100/1000 ms
/// buckets; utilization at 1 Mbps stays well under 40%.
[[nodiscard]] std::vector<Stream> sae_like_set(std::size_t n_nodes);

/// A uniform cyclic set: every node sends one `dlc`-byte message with the
/// given period (the §6.3 "cyclic traffic pattern" in its purest form).
[[nodiscard]] std::vector<Stream> uniform_cyclic_set(std::size_t n_nodes,
                                                     sim::Time period,
                                                     std::size_t dlc = 8);

/// Convert a workload into the message-spec form consumed by the
/// Tindell-Burns response-time analysis.  Protocol frames (types below
/// kApp) outrank all application streams; `include_protocol_overlay`
/// adds the CANELy life-sign/failure-sign/RHV streams with worst-case
/// rates so Ttd can be budgeted for the full system.
[[nodiscard]] std::vector<analysis::MessageSpec> to_message_specs(
    const std::vector<Stream>& streams, bool include_protocol_overlay,
    std::size_t n_nodes, sim::Time heartbeat_period,
    sim::Time membership_cycle);

/// Total bus utilization of a workload at `bit_rate_bps` (worst-case
/// frame lengths).
[[nodiscard]] double utilization(const std::vector<Stream>& streams,
                                 std::int64_t bit_rate_bps);

}  // namespace canely::workload
