#include "workload/sae.hpp"

#include "can/bitstream.hpp"

namespace canely::workload {

std::vector<Stream> sae_like_set(std::size_t n_nodes) {
  // Period/size buckets in the spirit of the SAE class-C set: a handful
  // of hard 5 ms control signals, 10-20 ms sensor values, and slow
  // 100 ms-1 s status messages, round-robined over the nodes.
  struct Bucket {
    const char* tag;
    std::size_t count;
    std::size_t dlc;
    sim::Time period;
    sim::Time jitter;
  };
  const Bucket buckets[] = {
      {"ctrl", 4, 2, sim::Time::ms(5), sim::Time::us(100)},
      {"sens", 6, 4, sim::Time::ms(10), sim::Time::us(200)},
      {"stat", 6, 8, sim::Time::ms(100), sim::Time::ms(1)},
      {"diag", 4, 8, sim::Time::ms(1000), sim::Time::ms(2)},
  };
  std::vector<Stream> out;
  std::uint32_t prio = 0;
  std::uint8_t stream_id = 1;
  can::NodeId sender = 0;
  for (const Bucket& b : buckets) {
    for (std::size_t i = 0; i < b.count; ++i) {
      Stream s;
      s.name = std::string(b.tag) + "-" + std::to_string(i);
      s.sender = sender;
      s.stream_id = stream_id++;
      s.dlc = b.dlc;
      s.period = b.period;
      s.jitter = b.jitter;
      s.priority = prio++;
      out.push_back(s);
      sender = static_cast<can::NodeId>((sender + 1) % n_nodes);
    }
  }
  return out;
}

std::vector<Stream> uniform_cyclic_set(std::size_t n_nodes, sim::Time period,
                                       std::size_t dlc) {
  std::vector<Stream> out;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Stream s;
    s.name = "cyclic-" + std::to_string(i);
    s.sender = static_cast<can::NodeId>(i);
    s.stream_id = 1;
    s.dlc = dlc;
    s.period = period;
    s.priority = static_cast<std::uint32_t>(i);
    out.push_back(s);
  }
  return out;
}

std::vector<analysis::MessageSpec> to_message_specs(
    const std::vector<Stream>& streams, bool include_protocol_overlay,
    std::size_t n_nodes, sim::Time heartbeat_period,
    sim::Time membership_cycle) {
  std::vector<analysis::MessageSpec> specs;
  std::uint32_t prio_base = 0;
  if (include_protocol_overlay) {
    // Worst-case protocol streams, all above application priority
    // (MsgType order): per heartbeat period up to n life-signs; per cycle
    // up to n FDA signs and j+1 RHV signals.  Modelled as aggregate
    // streams with the according periods.
    specs.push_back({"els*", prio_base++, 0, can::IdFormat::kExtended, true,
                     heartbeat_period / static_cast<std::int64_t>(n_nodes),
                     sim::Time::zero(), sim::Time::zero()});
    specs.push_back({"fda*", prio_base++, 0, can::IdFormat::kExtended, true,
                     membership_cycle / static_cast<std::int64_t>(n_nodes),
                     sim::Time::zero(), sim::Time::zero()});
    specs.push_back({"rhv*", prio_base++, 8, can::IdFormat::kExtended, false,
                     membership_cycle / 4, sim::Time::zero(),
                     sim::Time::zero()});
  }
  for (const Stream& s : streams) {
    specs.push_back({s.name, prio_base + s.priority, s.dlc,
                     can::IdFormat::kExtended, false, s.period, s.jitter,
                     sim::Time::zero()});
  }
  return specs;
}

double utilization(const std::vector<Stream>& streams,
                   std::int64_t bit_rate_bps) {
  double u = 0;
  for (const Stream& s : streams) {
    const auto bits = can::max_frame_bits_on_wire(
        s.dlc, can::IdFormat::kExtended) + can::kIntermissionBits;
    u += sim::bits_to_time(static_cast<std::int64_t>(bits), bit_rate_bps)
             .to_sec_f() /
         s.period.to_sec_f();
  }
  return u;
}

}  // namespace canely::workload
