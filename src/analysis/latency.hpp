#pragma once
// Analytic latency bounds for the CANELy failure detection and membership
// services (the "membership: tens of ms latency" row of Fig. 11).
//
// Failure detection (crash -> every correct node notified):
//
//   T_detect <= Th + Ttd + (n-1) * skew + T_fda
//
//   Th        the victim's heartbeat period: its last life-sign may have
//             been sent right before the crash;
//   Ttd       MCAN4 delay bound on that life-sign (already inside the
//             surveillance timers);
//   skew      per-observer surveillance skew (Params::fd_skew_quantum) —
//             the worst observer is the last to suspect, but FDA's
//             agreed sign usually arrives first;
//   T_fda     one failure-sign broadcast + clustered echo, each within
//             Ttd under load (and the sign outranks all other traffic).
//
// Join latency (request -> every member installed the new view):
//
//   T_join <= Ttd + Tm + Trha
//
//   the JOIN frame needs up to Ttd; it then waits for the next cycle
//   boundary (up to Tm); the RHA execution takes Trha.
//
// Leave latency: same bound (leaves ride the same cycle machinery).

#include <cstddef>

#include "canely/params.hpp"
#include "sim/time.hpp"

namespace canely::analysis {

struct LatencyBounds {
  sim::Time detection;  ///< crash -> last correct node notified
  sim::Time join;       ///< msh-can.req(JOIN) -> view installed
  sim::Time leave;      ///< msh-can.req(LEAVE) -> view installed
};

/// Worst-case bounds for a deployment with parameters `p` and `n` nodes.
[[nodiscard]] inline LatencyBounds latency_bounds(const Params& p,
                                                  std::size_t n) {
  const sim::Time skew_total =
      p.fd_skew_quantum * static_cast<std::int64_t>(n > 0 ? n - 1 : 0);
  const sim::Time t_fda = p.tx_delay_bound * 2;  // sign + clustered echo
  LatencyBounds b;
  b.detection =
      p.heartbeat_period + p.tx_delay_bound + skew_total + t_fda;
  b.join = p.tx_delay_bound + p.membership_cycle + p.rha_timeout;
  b.leave = b.join;
  return b;
}

}  // namespace canely::analysis
