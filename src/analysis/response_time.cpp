#include "analysis/response_time.hpp"

#include <algorithm>

namespace canely::analysis {

ResponseTimeAnalysis::ResponseTimeAnalysis(std::vector<MessageSpec> messages,
                                           std::int64_t bit_rate_bps,
                                           ErrorHypothesis errors)
    : msgs_{std::move(messages)}, bit_rate_{bit_rate_bps}, errors_{errors} {
  std::sort(msgs_.begin(), msgs_.end(),
            [](const MessageSpec& a, const MessageSpec& b) {
              return a.priority < b.priority;
            });
  analyze();
}

sim::Time ResponseTimeAnalysis::tx_time(const MessageSpec& m) const {
  // C includes the interframe space, per the usual convention (an 8-byte
  // base frame costs the classic 135 bit-times: 132 + 3 IFS).
  return sim::bits_to_time(
      static_cast<std::int64_t>(
          can::max_frame_bits_on_wire(m.dlc, m.format, m.remote) +
          can::kIntermissionBits),
      bit_rate_);
}

void ResponseTimeAnalysis::analyze() {
  const sim::Time tau = sim::bit_time(bit_rate_);
  utilization_ = 0;
  for (const auto& m : msgs_) {
    utilization_ += tx_time(m).to_sec_f() / m.period.to_sec_f();
  }

  // Worst error-recovery cost: signaling + retransmission of the longest
  // frame in the set.
  sim::Time c_max = sim::Time::zero();
  for (const auto& m : msgs_) c_max = std::max(c_max, tx_time(m));
  const sim::Time c_err =
      sim::bits_to_time(static_cast<std::int64_t>(can::kErrorFlagMaxBits +
                                                  can::kErrorDelimiterBits),
                        bit_rate_) +
      c_max;

  results_.clear();
  for (std::size_t i = 0; i < msgs_.size(); ++i) {
    const MessageSpec& m = msgs_[i];
    const sim::Time c = tx_time(m);

    // Blocking: longest lower-priority frame already on the wire.
    sim::Time b = sim::Time::zero();
    for (std::size_t k = i + 1; k < msgs_.size(); ++k) {
      b = std::max(b, tx_time(msgs_[k]));
    }

    // Fixed-point iteration on the queuing delay w.
    sim::Time w = b;
    bool schedulable = true;
    const sim::Time horizon = sim::Time::sec(10);  // divergence cut-off
    for (;;) {
      sim::Time next = b;
      if (errors_.omissions_k > 0) {
        const std::int64_t intervals =
            ((w + c).to_ns() + errors_.reference_interval.to_ns() - 1) /
            errors_.reference_interval.to_ns();
        next += c_err * (intervals * errors_.omissions_k);
      }
      for (std::size_t k = 0; k < i; ++k) {
        const MessageSpec& hp = msgs_[k];
        const std::int64_t releases =
            ((w + hp.jitter + tau).to_ns() + hp.period.to_ns() - 1) /
            hp.period.to_ns();
        next += tx_time(hp) * releases;
      }
      if (next == w) break;
      w = next;
      if (w > horizon) {
        schedulable = false;
        break;
      }
    }

    const sim::Time r = m.jitter + w + c;
    const sim::Time deadline =
        m.deadline == sim::Time::zero() ? m.period : m.deadline;
    results_.push_back(
        ResponseTime{m.name, c, b, r, schedulable && r <= deadline});
  }
}

std::optional<sim::Time> ResponseTimeAnalysis::worst_response() const {
  if (!all_schedulable()) return std::nullopt;
  sim::Time worst = sim::Time::zero();
  for (const auto& r : results_) worst = std::max(worst, r.r);
  return worst;
}

bool ResponseTimeAnalysis::all_schedulable() const {
  return std::all_of(results_.begin(), results_.end(),
                     [](const ResponseTime& r) { return r.schedulable; });
}

}  // namespace canely::analysis
